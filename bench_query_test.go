// Query-aggregation microbenchmark for the pushdown path (PR 9): a
// dashboard-style windowed aggregation over one sensor's trailing span,
// evaluated either by streaming the raw 1 KiB rows to the client and
// folding there (the PR 3 baseline) or pushed down into the region servers
// so only per-window partials cross the client boundary. Results are
// captured in results/BENCH_PR9.json and discussed in EXPERIMENTS.md.
package tpcxiot

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"strconv"
	"sync"
	"testing"

	"tpcxiot/internal/hbase"
	"tpcxiot/internal/kvp"
	"tpcxiot/internal/lsm"
	"tpcxiot/internal/wal"
)

// BenchmarkClusterQueryAggregate measures one windowed aggregation query —
// count/min/max/sum/avg over 10 windows of a fixed time span — on a 3-node,
// 3-way-replicated table holding kvp-format readings, split mid-series so
// the pushed-down path also exercises cross-region partial merging.
//
// Swept dimensions:
//
//	path    streamed (chunked Scanner + client-side fold, the dashboard
//	        baseline) vs pushdown (Client.Aggregate, server-side fold)
//	rows    readings the query covers (1000, 10000)
//	ingest  idle vs a concurrent full-rate writer appending fresh readings
//	        to the same sensors — the query-during-ingest shape
//
// Beyond ns/op: rows/s is aggregation throughput, clientB/op is the payload
// the client actually received — the byte-reduction headline.
func BenchmarkClusterQueryAggregate(b *testing.B) {
	const (
		substation = "sub0"
		sensor     = "pmu-000"
		seeded     = 10_000 // readings for the queried sensor, 1 per ms
		windows    = 10
	)

	encodePair := func(ts int64, reading float64) (k, v []byte) {
		key := kvp.Key{Substation: substation, Sensor: sensor, Timestamp: ts}
		rs := strconv.FormatFloat(reading, 'f', 2, 64)
		pad, err := kvp.PaddingFor(key, rs, "volt")
		if err != nil {
			b.Fatal(err)
		}
		val := kvp.Value{Reading: rs, Unit: "volt", Padding: bytes.Repeat([]byte("p"), pad)}
		return key.Encode(), val.Encode()
	}

	newSeededCluster := func(b *testing.B) *hbase.Cluster {
		b.Helper()
		dir, err := os.MkdirTemp("", "tpcxiot-agg-*")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { os.RemoveAll(dir) })
		// Split inside the sensor's time run: partials for the boundary
		// window arrive from two regions and must merge client-side.
		splits := [][]byte{
			kvp.Key{Substation: substation, Sensor: sensor, Timestamp: seeded / 2}.Encode(),
		}
		cluster, err := hbase.NewCluster(hbase.Config{
			Nodes:   3,
			DataDir: dir,
			Store:   lsm.Options{WALSync: wal.SyncNever, MemtableSize: 8 << 20},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { cluster.Close() })
		if _, err := cluster.CreateTable("agg", splits); err != nil {
			b.Fatal(err)
		}
		seedClient, err := cluster.NewClient("agg", 256<<10)
		if err != nil {
			b.Fatal(err)
		}
		for ts := int64(0); ts < seeded; ts++ {
			k, v := encodePair(ts, float64(ts%997))
			if err := seedClient.Put(k, v); err != nil {
				b.Fatal(err)
			}
		}
		if err := seedClient.FlushCommits(); err != nil {
			b.Fatal(err)
		}
		return cluster
	}

	// startIngest appends fresh readings for the same sensor above the
	// queried time range, at full rate, while queries run.
	startIngest := func(cluster *hbase.Cluster) (stop func()) {
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			wc, err := cluster.NewClient("agg", 64<<10)
			if err != nil {
				return
			}
			defer wc.Close()
			for ts := int64(seeded); ; ts++ {
				select {
				case <-done:
					wc.FlushCommits()
					return
				default:
				}
				k, v := encodePair(ts, float64(ts%997))
				if err := wc.Put(k, v); err != nil {
					return
				}
			}
		}()
		return func() { close(done); wg.Wait() }
	}

	const allFuncs = lsm.AggCount | lsm.AggMin | lsm.AggMax | lsm.AggSum | lsm.AggAvg

	for _, ingest := range []string{"idle", "live"} {
		for _, path := range []string{"streamed", "pushdown"} {
			for _, rows := range []int{1_000, 10_000} {
				name := fmt.Sprintf("ingest=%s/path=%s/rows=%d", ingest, path, rows)
				b.Run(name, func(b *testing.B) {
					cluster := newSeededCluster(b)
					client, err := cluster.NewClient("agg", 0)
					if err != nil {
						b.Fatal(err)
					}
					minTS, maxTS := int64(0), int64(rows)
					windowMS := (maxTS - minTS) / windows
					lo, hi := kvp.RangeFor(substation, sensor, minTS, maxTS)
					var stop func()
					if ingest == "live" {
						stop = startIngest(cluster)
					}
					var clientBytes int64
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						var folded int64
						switch path {
						case "pushdown":
							res, err := client.Aggregate(lo, hi, minTS, maxTS, windowMS, allFuncs)
							if err != nil {
								b.Fatal(err)
							}
							folded = res.RowsFolded
							for _, w := range res.Windows {
								// Series bytes + window start, count and the
								// three float64 fields.
								clientBytes += int64(len(w.Series)) + 8*5
							}
						case "streamed":
							sc, err := client.NewScanner(lo, hi, 0)
							if err != nil {
								b.Fatal(err)
							}
							var agg []lsm.WindowAgg
							for {
								row, ok, err := sc.Next()
								if err != nil {
									b.Fatal(err)
								}
								if !ok {
									break
								}
								clientBytes += int64(len(row.Key) + len(row.Value))
								ts, tsOK := kvp.TimestampOf(row.Key)
								if !tsOK || ts < minTS || ts >= maxTS {
									continue
								}
								v, err := kvp.ReadingOf(row.Value)
								if err != nil {
									b.Fatal(err)
								}
								wstart := minTS + (ts-minTS)/windowMS*windowMS
								n := len(agg)
								if n == 0 || agg[n-1].WindowStart != wstart {
									agg = append(agg, lsm.WindowAgg{
										WindowStart: wstart,
										Min:         math.Inf(1),
										Max:         math.Inf(-1),
									})
									n++
								}
								w := &agg[n-1]
								w.Count++
								if v < w.Min {
									w.Min = v
								}
								if v > w.Max {
									w.Max = v
								}
								w.Sum += v
								folded++
							}
							if err := sc.Close(); err != nil {
								b.Fatal(err)
							}
						}
						if folded != int64(rows) {
							b.Fatalf("query folded %d rows, want %d", folded, rows)
						}
					}
					b.StopTimer()
					if stop != nil {
						stop()
					}
					b.ReportMetric(float64(clientBytes)/float64(b.N), "clientB/op")
					if el := b.Elapsed().Seconds(); el > 0 {
						b.ReportMetric(float64(b.N)*float64(rows)/el, "rows/s")
					}
				})
			}
		}
	}
}
