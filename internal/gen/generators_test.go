package gen

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterSequential(t *testing.T) {
	c := NewCounter(10)
	for want := int64(10); want < 20; want++ {
		if got := c.Next(); got != want {
			t.Fatalf("Next = %d, want %d", got, want)
		}
		if got := c.Last(); got != want {
			t.Fatalf("Last = %d, want %d", got, want)
		}
	}
}

func TestCounterConcurrentUnique(t *testing.T) {
	c := NewCounter(0)
	const workers = 8
	const perWorker = 1000
	results := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals := make([]int64, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				vals = append(vals, c.Next())
			}
			results[w] = vals
		}(w)
	}
	wg.Wait()
	seen := make(map[int64]bool, workers*perWorker)
	for _, vals := range results {
		for _, v := range vals {
			if seen[v] {
				t.Fatalf("duplicate ordinal %d", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("issued %d ordinals, want %d", len(seen), workers*perWorker)
	}
}

func TestUniformBounds(t *testing.T) {
	u := NewUniform(NewRNG(1), 5, 15)
	for i := 0; i < 10000; i++ {
		v := u.Next()
		if v < 5 || v > 15 {
			t.Fatalf("uniform value %d outside [5,15]", v)
		}
		if u.Last() != v {
			t.Fatalf("Last %d != Next %d", u.Last(), v)
		}
	}
}

func TestUniformCoversRange(t *testing.T) {
	u := NewUniform(NewRNG(2), 0, 9)
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		seen[u.Next()] = true
	}
	if len(seen) != 10 {
		t.Fatalf("uniform over 10 values hit only %d", len(seen))
	}
}

func TestUniformSingleton(t *testing.T) {
	u := NewUniform(NewRNG(3), 7, 7)
	for i := 0; i < 10; i++ {
		if v := u.Next(); v != 7 {
			t.Fatalf("singleton uniform returned %d", v)
		}
	}
}

func TestUniformPanicsOnInvertedRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for hi < lo")
		}
	}()
	NewUniform(NewRNG(4), 10, 5)
}

func TestZipfianBounds(t *testing.T) {
	z := NewZipfian(NewRNG(5), 1000)
	f := func(uint8) bool {
		v := z.Next()
		return v >= 0 && v < 1000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(NewRNG(6), 10000)
	const n = 100000
	low := 0
	for i := 0; i < n; i++ {
		if z.Next() < 100 {
			low++
		}
	}
	// With theta=0.99 over 10k items, the first 1% of items should receive
	// well over a third of the mass.
	if frac := float64(low) / n; frac < 0.35 {
		t.Fatalf("zipfian head mass %.3f, want > 0.35", frac)
	}
}

func TestZipfianPanicsOnZeroItems(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n = 0")
		}
	}()
	NewZipfian(NewRNG(7), 0)
}

func TestDiscreteWeights(t *testing.T) {
	d := NewDiscrete(NewRNG(8), []int64{1, 2, 3}, []float64{1, 1, 2})
	counts := map[int64]int{}
	const n = 40000
	for i := 0; i < n; i++ {
		v := d.Next()
		counts[v]++
		if d.Last() != v {
			t.Fatal("Last does not track Next")
		}
	}
	if counts[1]+counts[2]+counts[3] != n {
		t.Fatalf("unexpected values: %v", counts)
	}
	p3 := float64(counts[3]) / n
	if p3 < 0.45 || p3 > 0.55 {
		t.Fatalf("value 3 frequency %.3f, want ~0.5", p3)
	}
}

func TestDiscretePanicsOnBadInput(t *testing.T) {
	cases := []struct {
		name    string
		values  []int64
		weights []float64
	}{
		{"empty", nil, nil},
		{"mismatched", []int64{1}, []float64{1, 2}},
		{"negative", []int64{1}, []float64{-1}},
		{"zero-total", []int64{1, 2}, []float64{0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %s", tc.name)
				}
			}()
			NewDiscrete(NewRNG(9), tc.values, tc.weights)
		})
	}
}

func TestTextAlphabetAndLength(t *testing.T) {
	r := NewRNG(10)
	for _, n := range []int{0, 1, 7, 8, 9, 63, 955, 970} {
		buf := Text(r, make([]byte, n))
		if len(buf) != n {
			t.Fatalf("Text length %d, want %d", len(buf), n)
		}
		for i, b := range buf {
			if !strings.ContainsRune(paddingAlphabet, rune(b)) {
				t.Fatalf("byte %q at %d outside alphabet", b, i)
			}
		}
	}
}

func TestTextDeterministic(t *testing.T) {
	a := TextString(NewRNG(11), 256)
	b := TextString(NewRNG(11), 256)
	if a != b {
		t.Fatal("Text is not deterministic for equal seeds")
	}
}

func TestDigits(t *testing.T) {
	r := NewRNG(12)
	buf := Digits(r, make([]byte, 100))
	for i, b := range buf {
		if b < '0' || b > '9' {
			t.Fatalf("non-digit %q at %d", b, i)
		}
	}
}
