// Package gen provides deterministic random-number and text generation
// utilities used by the TPCx-IoT workload driver.
//
// Every generator in this package is seeded explicitly and is therefore
// reproducible: two driver instances constructed with the same seed emit
// identical streams. Reproducibility matters for the benchmark's data check
// (the driver must be able to re-derive how many readings each substation
// produced) and for the repeatability requirement of a TPC result.
package gen

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic pseudo-random number generator.
//
// It implements xoshiro256**, seeded via SplitMix64 so that any 64-bit seed
// (including zero) yields a well-mixed initial state. RNG is not safe for
// concurrent use; give each goroutine its own instance, typically derived
// with Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// NewRNG returns a generator seeded from the given value.
func NewRNG(seed uint64) *RNG {
	var r RNG
	r.Seed(seed)
	return &r
}

// Seed resets the generator state from a 64-bit seed.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0, r.s1, r.s2, r.s3 = next(), next(), next(), next()
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s1*5, 7) * 9

	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)

	return result
}

// Int63 returns a non-negative 63-bit value.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("gen: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("gen: Int63n with non-positive n")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("gen: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed value with mean 0 and standard
// deviation 1, using the polar (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Split derives an independent generator from the current one. The derived
// stream is decorrelated from the parent by hashing the parent's next output.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
