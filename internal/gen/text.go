package gen

import "math"

// mathPow adapts math.Pow for the generators in this package.
func mathPow(x, y float64) float64 { return math.Pow(x, y) }

// paddingAlphabet is the character set used for kvp padding text. It matches
// the printable-ASCII style of the TPCx-IoT kit's random field filler.
const paddingAlphabet = "abcdefghijklmnopqrstuvwxyz" +
	"ABCDEFGHIJKLMNOPQRSTUVWXYZ" +
	"0123456789 "

// Text fills dst with deterministic pseudo-random padding text drawn from
// the padding alphabet and returns dst. Eight characters are derived per
// RNG draw, so filling the ~960-byte padding field of a kvp costs about 120
// generator calls.
func Text(rng *RNG, dst []byte) []byte {
	const n = uint64(len(paddingAlphabet))
	i := 0
	for i+8 <= len(dst) {
		v := rng.Uint64()
		for j := 0; j < 8; j++ {
			dst[i] = paddingAlphabet[(v>>(8*uint(j)))%n]
			i++
		}
	}
	if i < len(dst) {
		v := rng.Uint64()
		for ; i < len(dst); i++ {
			dst[i] = paddingAlphabet[v%n]
			v /= n
		}
	}
	return dst
}

// TextString returns n bytes of padding text as a string.
func TextString(rng *RNG, n int) string {
	return string(Text(rng, make([]byte, n)))
}

// Digits fills dst with random decimal digits and returns dst. Used for
// numeric identifier fields.
func Digits(rng *RNG, dst []byte) []byte {
	i := 0
	for i+8 <= len(dst) {
		v := rng.Uint64()
		for j := 0; j < 8; j++ {
			dst[i] = '0' + byte((v>>(8*uint(j)))%10)
			i++
		}
	}
	if i < len(dst) {
		v := rng.Uint64()
		for ; i < len(dst); i++ {
			dst[i] = '0' + byte(v%10)
			v /= 10
		}
	}
	return dst
}
