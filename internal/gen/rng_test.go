package gen

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d vs %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestRNGZeroSeedNotDegenerate(t *testing.T) {
	r := NewRNG(0)
	zeros := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("zero seed produced %d zero outputs", zeros)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := NewRNG(9)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(17)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v, want ~1", variance)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(23)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream tracks parent: %d/100 identical", same)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(29)
	xs := make([]int, 50)
	for i := range xs {
		xs[i] = i
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool, len(xs))
	for _, x := range xs {
		if x < 0 || x >= len(xs) || seen[x] {
			t.Fatalf("shuffle lost permutation property at %d", x)
		}
		seen[x] = true
	}
}

func TestUint64Distribution(t *testing.T) {
	// Chi-square sanity check over 16 buckets of the top nibble.
	r := NewRNG(31)
	var counts [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		counts[r.Uint64()>>60]++
	}
	expected := float64(n) / 16
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.9th percentile is ~37.7.
	if chi2 > 40 {
		t.Fatalf("chi-square %v too high; distribution skewed: %v", chi2, counts)
	}
}
