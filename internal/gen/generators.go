package gen

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// IntGenerator produces a stream of int64 values. It is the building block
// for key-choosing distributions in the YCSB-style workload layer.
type IntGenerator interface {
	// Next returns the next value in the stream.
	Next() int64
	// Last returns the most recently generated value without advancing.
	Last() int64
}

// Counter is a monotonically increasing generator, safe for concurrent use.
// It is used to hand out unique insertion ordinals to driver threads.
type Counter struct {
	next atomic.Int64
	last atomic.Int64
}

// NewCounter returns a Counter whose first Next value is start.
func NewCounter(start int64) *Counter {
	c := &Counter{}
	c.next.Store(start)
	c.last.Store(start - 1)
	return c
}

// Next returns the next ordinal.
func (c *Counter) Next() int64 {
	v := c.next.Add(1) - 1
	c.last.Store(v)
	return v
}

// Last returns the most recently issued ordinal.
func (c *Counter) Last() int64 { return c.last.Load() }

// Uniform generates values uniformly distributed in [lo, hi].
type Uniform struct {
	lo, hi int64
	rng    *RNG
	last   int64
}

// NewUniform returns a uniform generator over the inclusive range [lo, hi].
// It panics if hi < lo.
func NewUniform(rng *RNG, lo, hi int64) *Uniform {
	if hi < lo {
		panic(fmt.Sprintf("gen: NewUniform with hi %d < lo %d", hi, lo))
	}
	return &Uniform{lo: lo, hi: hi, rng: rng, last: lo}
}

// Next returns the next uniform value.
func (u *Uniform) Next() int64 {
	u.last = u.lo + u.rng.Int63n(u.hi-u.lo+1)
	return u.last
}

// Last returns the most recent value.
func (u *Uniform) Last() int64 { return u.last }

// Zipfian generates values in [0, n) with a Zipfian (power-law) popularity
// distribution, matching YCSB's ZipfianGenerator (Gray et al.'s algorithm).
// Classic YCSB workloads use it for read hot-spotting; TPCx-IoT itself uses
// uniform interval selection but the framework keeps Zipfian available for
// custom workloads and for framework tests.
type Zipfian struct {
	rng *RNG

	items          int64
	base           int64
	constant       float64
	alpha          float64
	zetan          float64
	eta            float64
	theta          float64
	zeta2theta     float64
	countForZeta   int64
	allowItemCount bool
	last           int64
}

// ZipfianConstant is the default skew used by YCSB.
const ZipfianConstant = 0.99

// NewZipfian returns a Zipfian generator over [0, n) with the default skew.
func NewZipfian(rng *RNG, n int64) *Zipfian {
	return NewZipfianWithConstant(rng, n, ZipfianConstant)
}

// NewZipfianWithConstant returns a Zipfian generator over [0, n) with the
// given skew constant. It panics for n <= 0 or a constant of exactly 1.
func NewZipfianWithConstant(rng *RNG, n int64, constant float64) *Zipfian {
	if n <= 0 {
		panic("gen: NewZipfian with non-positive n")
	}
	z := &Zipfian{
		rng:          rng,
		items:        n,
		base:         0,
		constant:     constant,
		theta:        constant,
		countForZeta: n,
	}
	z.zeta2theta = zetaStatic(2, constant)
	z.alpha = 1.0 / (1.0 - z.theta)
	z.zetan = zetaStatic(n, constant)
	z.eta = (1 - powf(2.0/float64(n), 1-z.theta)) / (1 - z.zeta2theta/z.zetan)
	z.Next()
	return z
}

// Next returns the next Zipf-distributed value.
func (z *Zipfian) Next() int64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	var v int64
	switch {
	case uz < 1.0:
		v = z.base
	case uz < 1.0+powf(0.5, z.theta):
		v = z.base + 1
	default:
		v = z.base + int64(float64(z.items)*powf(z.eta*u-z.eta+1, z.alpha))
	}
	if v >= z.base+z.items {
		v = z.base + z.items - 1
	}
	z.last = v
	return v
}

// Last returns the most recent value.
func (z *Zipfian) Last() int64 { return z.last }

func zetaStatic(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(0); i < n; i++ {
		sum += 1 / powf(float64(i+1), theta)
	}
	return sum
}

func powf(x, y float64) float64 {
	// x^y = exp(y ln x); delegate to math via small wrapper kept local so
	// callers in this file read naturally.
	return mathPow(x, y)
}

// Discrete picks among a fixed set of values with given weights. The TPCx-IoT
// query workload uses it to choose uniformly among the four query templates;
// the weights make it reusable for skewed operation mixes.
type Discrete struct {
	rng     *RNG
	values  []int64
	cum     []float64
	total   float64
	lastVal int64
}

// NewDiscrete returns a generator choosing values[i] with probability
// weights[i]/sum(weights). It panics on mismatched lengths, empty input, or
// non-positive total weight.
func NewDiscrete(rng *RNG, values []int64, weights []float64) *Discrete {
	if len(values) == 0 || len(values) != len(weights) {
		panic("gen: NewDiscrete with empty or mismatched values/weights")
	}
	d := &Discrete{rng: rng, values: append([]int64(nil), values...)}
	d.cum = make([]float64, len(weights))
	running := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("gen: NewDiscrete with negative weight")
		}
		running += w
		d.cum[i] = running
	}
	if running <= 0 {
		panic("gen: NewDiscrete with non-positive total weight")
	}
	d.total = running
	return d
}

// Next returns the next weighted choice.
func (d *Discrete) Next() int64 {
	x := d.rng.Float64() * d.total
	i := sort.SearchFloat64s(d.cum, x)
	if i >= len(d.values) {
		i = len(d.values) - 1
	}
	d.lastVal = d.values[i]
	return d.lastVal
}

// Last returns the most recent choice.
func (d *Discrete) Last() int64 { return d.lastVal }
