package testbed

import (
	"errors"
	"testing"

	"tpcxiot/internal/audit"
)

// execN runs a scaled-down execution against the default model. Stalls are
// disabled: scaled-down runs last tens of virtual seconds, so a single
// multi-second stall would dominate them, whereas at paper scale (30+
// minute runs) stalls only shape the latency tail. execStalls keeps them
// for tail tests.
func execN(t *testing.T, nodes, substations int, kvps int64) Execution {
	t.Helper()
	p := DefaultParams()
	p.StallMeanInterval = 0
	e, err := Execute(Config{Nodes: nodes, Substations: substations, TotalKVPs: kvps, Seed: 7, Params: &p})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// execStalls runs with the full stall model for latency-tail tests.
func execStalls(t *testing.T, nodes, substations int, kvps int64) Execution {
	t.Helper()
	e, err := Execute(Config{Nodes: nodes, Substations: substations, TotalKVPs: kvps, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Nodes: 0, Substations: 1, TotalKVPs: 100},
		{Nodes: 2, Substations: 0, TotalKVPs: 100},
		{Nodes: 2, Substations: 1, TotalKVPs: 0},
	}
	for i, c := range cases {
		if _, err := Execute(c); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d: %v", i, err)
		}
	}
	bad := DefaultParams()
	bad.GenPerThread = 0
	if _, err := Execute(Config{Nodes: 2, Substations: 1, TotalKVPs: 100, Params: &bad}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestExecutionCompletesExactVolume(t *testing.T) {
	const k = 500_000
	e := execN(t, 8, 4, k)
	if e.KVPs != k {
		t.Fatalf("ingested %d kvps, want %d", e.KVPs, k)
	}
	if e.Elapsed <= 0 {
		t.Fatal("non-positive elapsed")
	}
	if len(e.DriverElapsed) != 4 {
		t.Fatalf("driver elapsed entries: %d", len(e.DriverElapsed))
	}
	for i, d := range e.DriverElapsed {
		if d <= 0 {
			t.Fatalf("driver %d elapsed %v", i, d)
		}
	}
	if len(e.NodeUtilisation) != 8 {
		t.Fatalf("utilisation entries: %d", len(e.NodeUtilisation))
	}
	for i, u := range e.NodeUtilisation {
		if u < 0 || u > 1 {
			t.Fatalf("node %d utilisation %v", i, u)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := execN(t, 8, 4, 200_000)
	b := execN(t, 8, 4, 200_000)
	if a.Elapsed != b.Elapsed || a.Queries != b.Queries || a.Events != b.Events {
		t.Fatalf("same seed diverged: %v/%v, %d/%d, %d/%d",
			a.Elapsed, b.Elapsed, a.Queries, b.Queries, a.Events, b.Events)
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, _ := Execute(Config{Nodes: 8, Substations: 4, TotalKVPs: 200_000, Seed: 1})
	b, _ := Execute(Config{Nodes: 8, Substations: 4, TotalKVPs: 200_000, Seed: 2})
	if a.Elapsed == b.Elapsed {
		t.Fatal("different seeds produced identical elapsed times")
	}
}

func TestQueryRatio(t *testing.T) {
	// Five queries per 10 000 readings.
	const k = 1_000_000
	e := execN(t, 8, 2, k)
	want := int64(k / 2000)
	if e.Queries < want*95/100 || e.Queries > want {
		t.Fatalf("queries = %d, want ~%d", e.Queries, want)
	}
	if e.QueryLatency.Count() != e.Queries {
		t.Fatalf("latency count %d != queries %d", e.QueryLatency.Count(), e.Queries)
	}
}

// TestSubstationScalingShape asserts Figure 10's structure on 8 nodes:
// super-linear scaling at low substation counts, saturation by 32, and no
// meaningful growth from 32 to 48.
func TestSubstationScalingShape(t *testing.T) {
	iotps := map[int]float64{}
	for _, p := range []int{1, 2, 4, 8, 16, 32, 48} {
		iotps[p] = execN(t, 8, p, 2_000_000).IoTps()
	}
	if s2 := iotps[2] / iotps[1]; s2 < 2.2 {
		t.Fatalf("S_2 = %.2f, want super-linear (> 2.2; paper: 2.8)", s2)
	}
	if s4 := iotps[4] / iotps[1]; s4 < 4.5 {
		t.Fatalf("S_4 = %.2f, want super-linear (paper: 5.5)", s4)
	}
	// Monotone growth until 32.
	for _, pair := range [][2]int{{1, 2}, {2, 4}, {4, 8}, {8, 16}, {16, 32}} {
		if iotps[pair[1]] <= iotps[pair[0]] {
			t.Fatalf("throughput fell from P=%d (%.0f) to P=%d (%.0f)",
				pair[0], iotps[pair[0]], pair[1], iotps[pair[1]])
		}
	}
	// Saturation: 48 within ±10% of 32 (paper: 182.8k vs 186.1k).
	if r := iotps[48] / iotps[32]; r < 0.90 || r > 1.10 {
		t.Fatalf("P=48/P=32 ratio %.2f, want saturation (~1.0)", r)
	}
}

// TestPerSensorFloorCrossing asserts Figure 11: the 20 kvps/s/sensor
// execution rule passes at 32 substations and fails at 48.
func TestPerSensorFloorCrossing(t *testing.T) {
	e32 := execN(t, 8, 32, 2_000_000)
	e48 := execN(t, 8, 48, 2_000_000)
	if r := e32.PerSensorIoTps(32); r < audit.MinPerSensorRate {
		t.Fatalf("32 substations: %.1f kvps/s/sensor, paper passes the floor (29.1)", r)
	}
	if r := e48.PerSensorIoTps(48); r >= audit.MinPerSensorRate {
		t.Fatalf("48 substations: %.1f kvps/s/sensor, paper fails the floor (19.0)", r)
	}
	// Per-sensor rate peaks at low substation counts (paper: peak at 4).
	e1 := execN(t, 8, 1, 500_000)
	e4 := execN(t, 8, 4, 2_000_000)
	if e4.PerSensorIoTps(4) <= e1.PerSensorIoTps(1) {
		t.Fatal("per-sensor rate should rise from 1 to 4 substations (super-linear region)")
	}
}

// TestSingleSubstationInversion asserts Table III's inversion: with one
// substation, the SMALLER cluster is faster (2-node 21.9k > 4-node 15.7k >
// 8-node 9.8k in the paper).
func TestSingleSubstationInversion(t *testing.T) {
	i2 := execN(t, 2, 1, 300_000).IoTps()
	i4 := execN(t, 4, 1, 300_000).IoTps()
	i8 := execN(t, 8, 1, 300_000).IoTps()
	if !(i2 > i4 && i4 > i8) {
		t.Fatalf("inversion lost: 2-node %.0f, 4-node %.0f, 8-node %.0f", i2, i4, i8)
	}
	// Roughly the paper's 2.2x spread between 2 and 8 nodes.
	if ratio := i2 / i8; ratio < 1.6 || ratio > 3.0 {
		t.Fatalf("2-node/8-node single-substation ratio %.2f, paper ~2.2", ratio)
	}
}

// TestScaleOutCrossover asserts Figure 16: the 8-node cluster overtakes the
// 2-node cluster between 8 and 16 substations, and peak capacities order
// 2-node < 4-node < 8-node.
func TestScaleOutCrossover(t *testing.T) {
	at := func(nodes, subs int) float64 {
		return execN(t, nodes, subs, 2_000_000).IoTps()
	}
	if !(at(2, 8) > at(8, 8)*0.95) {
		t.Fatal("at 8 substations the 2-node config should still be competitive (paper: 105.9k vs 84.6k)")
	}
	if !(at(8, 16) > at(2, 16)) {
		t.Fatal("by 16 substations the 8-node config must lead (paper: 133.9k vs 114.5k)")
	}
	peak2, peak4, peak8 := at(2, 48), at(4, 48), at(8, 48)
	if !(peak2 < peak4 && peak4 < peak8) {
		t.Fatalf("peak ordering broken: %.0f, %.0f, %.0f", peak2, peak4, peak8)
	}
}

// TestIngestSkewGrowsWithSubstations asserts Table II: the fastest-vs-
// slowest substation ingest-time spread grows with substation count,
// reaching tens of percent at 48.
func TestIngestSkewGrowsWithSubstations(t *testing.T) {
	rel := func(subs int) float64 {
		e := execN(t, 8, subs, 2_000_000)
		min, max, _ := e.IngestSkew()
		if min <= 0 {
			t.Fatalf("non-positive min ingest time at %d substations", subs)
		}
		return float64(max-min) / float64(min)
	}
	small, large := rel(4), rel(48)
	if large < 0.40 {
		t.Fatalf("48-substation skew %.0f%%, paper ~81%%", large*100)
	}
	if large < 2*small {
		t.Fatalf("skew did not grow: %.0f%% at 4 vs %.0f%% at 48", small*100, large*100)
	}
}

// TestQueryLatencyKnee asserts Figure 13: average query latency is in the
// low tens of milliseconds at small substation counts and rises
// substantially near saturation.
func TestQueryLatencyKnee(t *testing.T) {
	low := execN(t, 8, 2, 2_000_000).QueryLatency.Mean() / 1e6
	high := execN(t, 8, 32, 4_000_000).QueryLatency.Mean() / 1e6
	if low < 5 || low > 30 {
		t.Fatalf("light-load query latency %.1fms, paper ~12-14ms", low)
	}
	if high < low*1.4 {
		t.Fatalf("no latency knee: %.1fms at 2 subs vs %.1fms at 32", low, high)
	}
}

// TestQueryLatencyTail asserts Figure 14's character on a long-enough run:
// maxima far above the mean (compaction stalls) and CV > 1.
func TestQueryLatencyTail(t *testing.T) {
	// A bigger K so the virtual run spans several stall intervals.
	e := execStalls(t, 8, 16, 20_000_000)
	q := e.QueryLatency
	if q.Count() == 0 {
		t.Fatal("no queries")
	}
	if maxMs := float64(q.Max()) / 1e6; maxMs < 500 {
		t.Fatalf("max query latency %.0fms; paper sees >1000ms stalls", maxMs)
	}
	if cv := q.CV(); cv <= 1 {
		t.Fatalf("CV = %.2f, paper reports CV > 1 for every run", cv)
	}
}

func TestRowsPerQueryTracksPerSensorRate(t *testing.T) {
	// Figure 12: aggregated rows per query follow the per-sensor rate.
	e4 := execN(t, 8, 4, 2_000_000)
	e48 := execN(t, 8, 48, 2_000_000)
	if e4.AvgRowsPerQuery <= e48.AvgRowsPerQuery {
		t.Fatalf("rows/query should fall with substation count: %.0f vs %.0f",
			e4.AvgRowsPerQuery, e48.AvgRowsPerQuery)
	}
	if e4.AvgRowsPerQuery <= 0 {
		t.Fatal("zero rows aggregated")
	}
}

func TestRunBenchmarkChecks(t *testing.T) {
	// Full-scale-ish volume so the 1800s duration rule is genuinely
	// evaluated by virtual time: 32 substations at ~160k IoTps needs
	// ~300M kvps for 1800s; use a smaller volume and expect the duration
	// check to FAIL while rate checks pass.
	res, err := RunBenchmark(Config{Nodes: 8, Substations: 8, TotalKVPs: 2_000_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]audit.Check{}
	for _, c := range res.Checks {
		byName[c.Name] = c
	}
	if c := byName["data-check"]; !c.Passed {
		t.Fatalf("data check failed: %s", c.Detail)
	}
	if c := byName["per-sensor-ingest-rate"]; !c.Passed {
		t.Fatalf("per-sensor rate check failed at 8 substations: %s", c.Detail)
	}
	if c := byName["measured-duration"]; c.Passed {
		t.Fatal("short scaled run should fail the 1800s duration rule")
	}
	if res.Warmup.Elapsed == res.Measured.Elapsed {
		t.Fatal("warmup and measured runs should differ stochastically")
	}
}

func TestEventBudgetGuard(t *testing.T) {
	p := DefaultParams()
	p.MaxEvents = 100
	_, err := Execute(Config{Nodes: 8, Substations: 4, TotalKVPs: 1_000_000, Seed: 1, Params: &p})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("tiny budget: %v", err)
	}
}

func TestNodeRateInterpolation(t *testing.T) {
	p := DefaultParams()
	r2, r4, r8 := p.nodeRate(2), p.nodeRate(4), p.nodeRate(8)
	if r2 != p.NodeWriteRate[2] || r4 != p.NodeWriteRate[4] || r8 != p.NodeWriteRate[8] {
		t.Fatal("calibrated sizes must resolve exactly")
	}
	r3 := p.nodeRate(3)
	if r3 >= r2 || r3 <= r4 {
		t.Fatalf("interpolated rate %v outside (%v, %v)", r3, r4, r2)
	}
	if p.nodeRate(16) != p.NodeWriteRate[8] {
		t.Fatal("extrapolation above range should clamp to the largest calibrated size")
	}
	if p.nodeRate(1) != p.NodeWriteRate[2] {
		t.Fatal("extrapolation below range should clamp to the smallest calibrated size")
	}
}

func TestHostGenerationFigure8(t *testing.T) {
	p := DefaultHostGenParams()
	one := DriverHostGeneration(1, p)
	if one.ThroughputKVPs < 110_000 || one.ThroughputKVPs > 130_000 {
		t.Fatalf("1 driver: %.0f kvps/s, paper ~120k", one.ThroughputKVPs)
	}
	if one.CPUUtilPct < 2 || one.CPUUtilPct > 8 {
		t.Fatalf("1 driver: %.1f%% CPU, paper ~4%%", one.CPUUtilPct)
	}
	d32 := DriverHostGeneration(32, p)
	if d32.ThroughputKVPs < 1_000_000 || d32.ThroughputKVPs > 1_200_000 {
		t.Fatalf("32 drivers: %.0f kvps/s, paper ~1.1M", d32.ThroughputKVPs)
	}
	if d32.CPUUtilPct < 65 || d32.CPUUtilPct > 85 {
		t.Fatalf("32 drivers: %.1f%% CPU, paper ~75%%", d32.CPUUtilPct)
	}
	d64 := DriverHostGeneration(64, p)
	if d64.ThroughputKVPs >= d32.ThroughputKVPs {
		t.Fatal("64 drivers must be slower than 32 (paper: 0.9M vs 1.1M)")
	}
	if d64.ThroughputKVPs < 800_000 || d64.ThroughputKVPs > 1_000_000 {
		t.Fatalf("64 drivers: %.0f kvps/s, paper ~0.9M", d64.ThroughputKVPs)
	}
	if d64.CPUUtilPct < 95 {
		t.Fatalf("64 drivers: %.1f%% CPU, paper ~100%%", d64.CPUUtilPct)
	}
	if d64.SystemPct < 12 || d64.SystemPct > 18 {
		t.Fatalf("64 drivers: %.1f%% system share, paper ~15%%", d64.SystemPct)
	}
	if d32.SystemPct > 6 {
		t.Fatalf("32 drivers: %.1f%% system share, paper ~5%%", d32.SystemPct)
	}
	// Monotone growth until 32.
	sweep := HostGenerationSweep(p)
	for i := 1; i < len(sweep)-1; i++ {
		if sweep[i].ThroughputKVPs <= sweep[i-1].ThroughputKVPs {
			t.Fatalf("throughput fell at %d drivers", sweep[i].Drivers)
		}
	}
}

func TestExpSampler(t *testing.T) {
	s := newSim(1)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := s.exp(2.0)
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 1.9 || mean > 2.1 {
		t.Fatalf("exponential mean %v, want ~2", mean)
	}
	if s.exp(0) != 0 || s.exp(-1) != 0 {
		t.Fatal("non-positive mean must yield 0")
	}
}
