package testbed

import (
	"errors"
	"fmt"
	"time"

	"tpcxiot/internal/audit"
	"tpcxiot/internal/histogram"
	"tpcxiot/internal/metrics"
)

// Sentinel errors.
var (
	ErrBadConfig = errors.New("testbed: invalid configuration")
	ErrBudget    = errors.New("testbed: event budget exhausted before completion")
)

// Config parametrises one simulated benchmark execution.
type Config struct {
	// Nodes is the cluster size (the paper evaluates 2, 4 and 8).
	Nodes int
	// Substations is the number of TPCx-IoT driver instances.
	Substations int
	// TotalKVPs is the fixed ingest volume K.
	TotalKVPs int64
	// Seed drives all stochastic elements.
	Seed uint64
	// Params overrides the calibrated model constants; nil uses defaults.
	Params *Params
}

func (c Config) withDefaults() (Config, Params, error) {
	p := DefaultParams()
	if c.Params != nil {
		p = *c.Params
	}
	if err := p.validate(); err != nil {
		return c, p, err
	}
	if c.Nodes <= 0 {
		return c, p, fmt.Errorf("%w: Nodes must be positive", ErrBadConfig)
	}
	if c.Substations <= 0 {
		return c, p, fmt.Errorf("%w: Substations must be positive", ErrBadConfig)
	}
	if c.TotalKVPs <= 0 {
		return c, p, fmt.Errorf("%w: TotalKVPs must be positive", ErrBadConfig)
	}
	return c, p, nil
}

// Execution is the outcome of one simulated workload execution. All times
// are virtual.
type Execution struct {
	// Elapsed is the workload execution time (TS_end - TS_start).
	Elapsed time.Duration
	// KVPs is the total ingested (always the configured K on success).
	KVPs int64
	// DriverElapsed is each substation's ingest completion time, the
	// statistic behind Table II.
	DriverElapsed []time.Duration
	// Queries is the number of dashboard queries executed.
	Queries int64
	// AvgRowsPerQuery is the mean readings aggregated per query across
	// both 5-second intervals (Figure 12; a run is invalid below 200,
	// which matches Equation 2's 100-reading floor per interval).
	AvgRowsPerQuery float64
	// QueryLatency and InsertLatency are virtual-time distributions in
	// nanoseconds.
	QueryLatency  histogram.Snapshot
	InsertLatency histogram.Snapshot
	// NodeUtilisation is each server's busy fraction.
	NodeUtilisation []float64
	// Events is the number of simulation events processed.
	Events uint64
}

// IoTps is the execution's system-wide throughput.
func (e Execution) IoTps() float64 {
	if e.Elapsed <= 0 {
		return 0
	}
	return float64(e.KVPs) / e.Elapsed.Seconds()
}

// PerSensorIoTps is the per-sensor ingest rate given the substation count.
func (e Execution) PerSensorIoTps(substations int) float64 {
	return metrics.PerSensorIoTps(e.IoTps(), substations)
}

// IngestSkew returns the fastest, slowest and mean substation ingest times
// (Table II).
func (e Execution) IngestSkew() (min, max, avg time.Duration) {
	if len(e.DriverElapsed) == 0 {
		return 0, 0, 0
	}
	min, max = e.DriverElapsed[0], e.DriverElapsed[0]
	var sum time.Duration
	for _, d := range e.DriverElapsed {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
		sum += d
	}
	return min, max, sum / time.Duration(len(e.DriverElapsed))
}

// Execute simulates one workload execution and returns its measurements.
func Execute(cfg Config) (Execution, error) {
	c, p, err := cfg.withDefaults()
	if err != nil {
		return Execution{}, err
	}
	r := newRun(p, c.Nodes, c.Substations, c.TotalKVPs, c.Seed)
	r.start()
	if !r.s.runUntil(func() bool { return r.remaining == 0 }, p.MaxEvents) {
		return Execution{}, fmt.Errorf("%w: %d events", ErrBudget, p.MaxEvents)
	}

	out := Execution{
		Elapsed: time.Duration(r.endAt * float64(time.Second)),
		Events:  r.s.events,
	}
	var rows, queries int64
	for _, d := range r.drivers {
		out.KVPs += d.done
		out.DriverElapsed = append(out.DriverElapsed,
			time.Duration((d.finishAt-d.startAt)*float64(time.Second)))
		rows += d.rowsRecent + d.rowsHistoric
		queries += d.queries
	}
	out.Queries = queries
	if queries > 0 {
		out.AvgRowsPerQuery = float64(rows) / float64(queries)
	}
	out.QueryLatency = r.queryLat.Snapshot()
	out.InsertLatency = r.insertLat.Snapshot()
	for _, n := range r.nodes {
		util := 0.0
		if r.endAt > 0 {
			util = n.busyTime / r.endAt
			if util > 1 {
				util = 1
			}
		}
		out.NodeUtilisation = append(out.NodeUtilisation, util)
	}
	return out, nil
}

// BenchmarkResult is a full simulated benchmark iteration: warmup plus
// measured execution with the execution-rule checks applied to the
// measured run.
type BenchmarkResult struct {
	Warmup   Execution
	Measured Execution
	Checks   audit.Checklist
}

// RunBenchmark simulates the warmup and measured executions of one
// iteration (distinct stochastic seeds) and evaluates the execution rules
// against the measured run, exactly as the live driver does.
func RunBenchmark(cfg Config) (BenchmarkResult, error) {
	var res BenchmarkResult
	warm, err := Execute(Config{
		Nodes: cfg.Nodes, Substations: cfg.Substations,
		TotalKVPs: cfg.TotalKVPs, Seed: cfg.Seed*2 + 1, Params: cfg.Params,
	})
	if err != nil {
		return res, fmt.Errorf("testbed: warmup: %w", err)
	}
	meas, err := Execute(Config{
		Nodes: cfg.Nodes, Substations: cfg.Substations,
		TotalKVPs: cfg.TotalKVPs, Seed: cfg.Seed*2 + 2, Params: cfg.Params,
	})
	if err != nil {
		return res, fmt.Errorf("testbed: measured: %w", err)
	}
	res.Warmup = warm
	res.Measured = meas
	res.Checks = audit.Checklist{
		audit.DurationCheck("warmup-duration", warm.Elapsed, audit.MinWorkloadSeconds),
		audit.DurationCheck("measured-duration", meas.Elapsed, audit.MinWorkloadSeconds),
		audit.DataCheck(meas.KVPs, cfg.TotalKVPs),
		audit.PerSensorRateCheck(meas.PerSensorIoTps(cfg.Substations), audit.MinPerSensorRate),
		audit.QueryAggregateCheck(meas.AvgRowsPerQuery, audit.MinRowsPerQuery),
	}
	return res, nil
}
