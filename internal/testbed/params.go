package testbed

import (
	"fmt"
	"math"
)

func logf(x float64) float64 { return math.Log(x) }

func powf(x, y float64) float64 { return math.Pow(x, y) }

func expf(x float64) float64 { return math.Exp(x) }

// Params are the calibrated scalar constants of the testbed model. The
// defaults are fitted to the paper's published envelope (Table I, Table
// III, Figures 8 and 13); every experiment shape then emerges from the
// event dynamics, not from these numbers directly.
type Params struct {
	// GenPerThread is a driver thread's bare kvp generation rate in
	// kvps/s. Figure 8 measures ~120 000 kvps/s for one driver of ten
	// threads writing to /dev/null.
	GenPerThread float64
	// HostContentionMax and HostContentionScale inflate client-side
	// generation and flush costs as more driver instances share the single
	// driver host: with s substations the client runs
	// 1 + Max*(1-exp(-(s-1)/Scale)) times slower. This is the saturating
	// shared-resource contention Figure 8 measures for bare generation.
	HostContentionMax   float64
	HostContentionScale float64
	// ThreadsPerDriver is the worker threads per driver instance (the
	// paper's 64 drivers spawn 640 threads).
	ThreadsPerDriver int
	// BatchKVPs is the client write-buffer flush size in sensor readings.
	BatchKVPs int
	// FlushCost is the client-side cost of preparing one buffer flush, in
	// seconds, paid once per flush regardless of cluster size.
	FlushCost float64
	// PerRPCCost is the client-side cost of serialising and dispatching
	// ONE per-region-server sub-RPC, in seconds. A flush pays it once per
	// node, which is why a single driver is slower against a larger
	// cluster (the paper's single-substation inversion across 2/4/8
	// nodes).
	PerRPCCost float64
	// RTT is the per-sub-RPC network round trip in seconds.
	RTT float64
	// ParallelFlush dispatches a flush's sub-RPCs concurrently (a modern
	// asynchronous client) instead of serially (the HBase 1.x write path).
	// The serial default is what produces Table III's single-substation
	// inversion; the parallel mode exists for ablation studies.
	ParallelFlush bool
	// SyncLatBase is the group-commit (WAL sync) response latency seen by
	// an isolated writer, in seconds. With s substations the expected
	// latency is SyncLatBase / (1 + SyncAmortize*(s-1)): concurrent
	// writers share syncs, which is what makes low-substation scaling
	// super-linear. The sync costs latency, not server capacity.
	SyncLatBase  float64
	SyncAmortize float64
	// NodeWriteRate is each region server's raw write service rate in
	// kvps/s (including replication work) for a cluster of n nodes,
	// indexed by node count. Unlisted sizes interpolate geometrically.
	NodeWriteRate map[int]float64
	// ReadPriorityDepth is how many queued write batches a query scan
	// still waits behind: the handler pool serves reads concurrently with
	// writes, so a read does not sink to the back of a saturated write
	// queue, but it does contend with the requests already in flight.
	ReadPriorityDepth int
	// ReadSync is the per-read-request fixed service cost in seconds.
	ReadSync float64
	// ReadRowsPerSec is the scan service rate in rows/s.
	ReadRowsPerSec float64
	// StallMeanInterval is the mean seconds between compaction/GC stalls
	// per node; StallMeanDuration is the mean stall length. Stalls create
	// the >1 s maximum query latencies and CV > 1 of Figure 14.
	StallMeanInterval float64
	StallMeanDuration float64
	// PlacementNoise is the relative spread of a driver's key distribution
	// across nodes (0 = perfectly uniform hashing).
	PlacementNoise float64
	// DriverNoiseBase and DriverNoiseOversub set per-driver-instance client
	// slowdowns (each instance is its own JVM on the shared host, with its
	// own GC and scheduling luck): instance d runs its client work
	// (1 + |N(0,1)| * (Base + Oversub*(threads/640)^1.7)) slower. Order
	// statistics plus host oversubscription make the fastest-vs-slowest
	// ingest spread grow with substation count, reproducing Table II.
	DriverNoiseBase    float64
	DriverNoiseOversub float64
	// MaxEvents bounds a simulation run.
	MaxEvents uint64
}

// DefaultParams returns the calibration fitted to the paper's testbed.
func DefaultParams() Params {
	return Params{
		GenPerThread:        12_000,
		HostContentionMax:   3.3,
		HostContentionScale: 30,
		ThreadsPerDriver:    10,
		BatchKVPs:           500,
		FlushCost:           0.089,
		PerRPCCost:          0.0195,
		RTT:                 0.0003,
		SyncLatBase:         0.025,
		SyncAmortize:        1.5,
		NodeWriteRate: map[int]float64{
			2: 76_000,
			4: 44_000,
			8: 40_000,
		},
		ReadPriorityDepth:  4,
		ReadSync:           0.0032,
		ReadRowsPerSec:     90_000,
		StallMeanInterval:  60,
		StallMeanDuration:  0.6,
		PlacementNoise:     0.10,
		DriverNoiseBase:    0.04,
		DriverNoiseOversub: 0.95,
		MaxEvents:          200_000_000,
	}
}

// nodeRate resolves the per-node write rate for an n-node cluster,
// interpolating geometrically between calibrated sizes.
func (p Params) nodeRate(n int) float64 {
	if r, ok := p.NodeWriteRate[n]; ok {
		return r
	}
	// Find the nearest calibrated sizes below and above.
	loN, hiN := 0, 0
	for k := range p.NodeWriteRate {
		if k <= n && (loN == 0 || k > loN) {
			loN = k
		}
		if k >= n && (hiN == 0 || k < hiN) {
			hiN = k
		}
	}
	switch {
	case loN == 0 && hiN == 0:
		return 25_000
	case loN == 0:
		return p.NodeWriteRate[hiN]
	case hiN == 0:
		return p.NodeWriteRate[loN]
	}
	// Geometric interpolation in log(n).
	lo, hi := p.NodeWriteRate[loN], p.NodeWriteRate[hiN]
	frac := (logf(float64(n)) - logf(float64(loN))) / (logf(float64(hiN)) - logf(float64(loN)))
	return lo * math.Pow(hi/lo, frac)
}

func (p Params) validate() error {
	switch {
	case p.GenPerThread <= 0:
		return fmt.Errorf("testbed: GenPerThread must be positive")
	case p.ThreadsPerDriver <= 0:
		return fmt.Errorf("testbed: ThreadsPerDriver must be positive")
	case p.BatchKVPs <= 0:
		return fmt.Errorf("testbed: BatchKVPs must be positive")
	case len(p.NodeWriteRate) == 0:
		return fmt.Errorf("testbed: NodeWriteRate calibration missing")
	case p.MaxEvents == 0:
		return fmt.Errorf("testbed: MaxEvents must be positive")
	}
	return nil
}
