package testbed

import "testing"

// The ablation tests verify DESIGN.md's central claim about the simulator:
// each of the paper's qualitative shapes is produced by one specific
// mechanism in the model, not baked into the outputs. Turning a mechanism
// off must make its shape disappear while the rest of the model still runs.

// ablate runs an execution with a modified parameter set.
func ablate(t *testing.T, mutate func(*Params), nodes, subs int, kvps int64) Execution {
	t.Helper()
	p := DefaultParams()
	p.StallMeanInterval = 0 // baseline without stall noise
	mutate(&p)
	e, err := Execute(Config{
		Nodes: nodes, Substations: subs, TotalKVPs: kvps, Seed: 7, Params: &p,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestAblationGroupCommitDrivesSuperLinearity: without WAL-sync
// amortisation (sync latency constant regardless of concurrency), the
// super-linear scaling region of Figure 10 must vanish.
func TestAblationGroupCommitDrivesSuperLinearity(t *testing.T) {
	noop := func(*Params) {}
	base1 := ablate(t, noop, 8, 1, 500_000)
	base2 := ablate(t, noop, 8, 2, 1_000_000)
	withS2 := base2.IoTps() / base1.IoTps()

	noAmortize := func(p *Params) { p.SyncAmortize = 0 }
	flat1 := ablate(t, noAmortize, 8, 1, 500_000)
	flat2 := ablate(t, noAmortize, 8, 2, 1_000_000)
	withoutS2 := flat2.IoTps() / flat1.IoTps()

	if withS2 < 2.2 {
		t.Fatalf("baseline S_2 = %.2f, expected super-linear", withS2)
	}
	if withoutS2 > 2.1 {
		t.Fatalf("S_2 = %.2f with group commit ablated; super-linearity should disappear", withoutS2)
	}
}

// TestAblationSerialFlushDrivesInversion: the HBase 1.x client's SERIAL
// per-node flush (a per-sub-RPC cost plus a per-node wait, repeated n
// times) is what makes a single substation faster on the SMALLER cluster.
// A modern asynchronous client (parallel dispatch, negligible per-RPC
// serialisation) must erase Table III's inversion.
func TestAblationSerialFlushDrivesInversion(t *testing.T) {
	noop := func(*Params) {}
	if i2, i8 := ablate(t, noop, 2, 1, 300_000).IoTps(),
		ablate(t, noop, 8, 1, 300_000).IoTps(); i2 <= i8 {
		t.Fatalf("baseline inversion missing: 2-node %.0f vs 8-node %.0f", i2, i8)
	}

	asyncClient := func(p *Params) {
		p.ParallelFlush = true
		p.PerRPCCost = 0
	}
	i2 := ablate(t, asyncClient, 2, 1, 300_000).IoTps()
	i8 := ablate(t, asyncClient, 8, 1, 300_000).IoTps()
	// With overlapped sub-RPCs the larger cluster serves smaller
	// sub-batches per node; the 2-node advantage must be gone (allow ~10%
	// tolerance for queueing noise).
	if i2 > i8*1.1 {
		t.Fatalf("inversion persists with an async client: %.0f vs %.0f", i2, i8)
	}
}

// TestAblationDriverNoiseDrivesSkew: without per-driver-instance client
// heterogeneity, Table II's ingest-time spread must collapse.
func TestAblationDriverNoiseDrivesSkew(t *testing.T) {
	skew := func(e Execution) float64 {
		min, max, _ := e.IngestSkew()
		if min <= 0 {
			return 0
		}
		return float64(max-min) / float64(min)
	}
	base := skew(ablate(t, func(*Params) {}, 8, 48, 2_000_000))
	flat := skew(ablate(t, func(p *Params) {
		p.DriverNoiseBase = 0
		p.DriverNoiseOversub = 0
	}, 8, 48, 2_000_000))

	if base < 0.40 {
		t.Fatalf("baseline 48-substation skew %.0f%%, expected tens of percent", base*100)
	}
	if flat > base/3 {
		t.Fatalf("skew %.0f%% with driver noise ablated (baseline %.0f%%); should collapse",
			flat*100, base*100)
	}
}

// TestAblationHostContentionCapsMidRange: without shared driver-host
// contention, mid-range throughput must exceed the calibrated model's
// (the paper's early per-driver decline comes from the shared host).
func TestAblationHostContentionCapsMidRange(t *testing.T) {
	base := ablate(t, func(*Params) {}, 8, 16, 2_000_000).IoTps()
	free := ablate(t, func(p *Params) { p.HostContentionMax = 0 }, 8, 16, 2_000_000).IoTps()
	if free < base*1.3 {
		t.Fatalf("removing host contention changed 16-substation throughput only %.0f -> %.0f",
			base, free)
	}
}

// TestAblationStallsDriveLatencyTail: without compaction stalls the
// latency maxima shrink by orders of magnitude and CV drops below 1
// (Figure 14's character disappears).
func TestAblationStallsDriveLatencyTail(t *testing.T) {
	withStalls, err := Execute(Config{
		Nodes: 8, Substations: 16, TotalKVPs: 20_000_000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	noStalls := ablate(t, func(*Params) {}, 8, 16, 20_000_000)

	if withStalls.QueryLatency.CV() <= 1 {
		t.Fatalf("baseline CV = %.2f, expected > 1", withStalls.QueryLatency.CV())
	}
	if noStalls.QueryLatency.CV() >= 1 {
		t.Fatalf("CV = %.2f with stalls ablated, expected < 1", noStalls.QueryLatency.CV())
	}
	if noStalls.QueryLatency.Max() > withStalls.QueryLatency.Max()/4 {
		t.Fatalf("max latency barely moved: %.0fms -> %.0fms",
			float64(withStalls.QueryLatency.Max())/1e6,
			float64(noStalls.QueryLatency.Max())/1e6)
	}
}

// TestAblationReadContentionDrivesKnee: the handler-contention inflation is
// driven by node utilisation, so at LOW load query latency must sit near
// its base cost, while saturation raises it — removing the load (fewer
// substations) must flatten the knee.
func TestAblationReadContentionDrivesKnee(t *testing.T) {
	low := ablate(t, func(*Params) {}, 8, 2, 2_000_000).QueryLatency.Mean()
	high := ablate(t, func(*Params) {}, 8, 32, 4_000_000).QueryLatency.Mean()
	if high < low*1.4 {
		t.Fatalf("no knee: %.1fms at 2 substations vs %.1fms at 32", low/1e6, high/1e6)
	}
}
