package testbed

import (
	"tpcxiot/internal/gen"
	"tpcxiot/internal/histogram"
	"tpcxiot/internal/metrics"
	"tpcxiot/internal/workload"
)

// simDriver models one TPCx-IoT driver instance: ThreadsPerDriver client
// threads generating batches for one substation and flushing them across
// the cluster, with a dashboard query after every 2 000 readings.
type simDriver struct {
	id      int
	share   int64 // kvps this instance must ingest (Equation 3)
	claimed int64 // kvps handed to threads so far
	done    int64 // kvps acknowledged by the cluster

	weights      []float64 // per-node share of this driver's keys
	clientFactor float64   // this instance's JVM slowdown on the shared host
	startAt      float64
	finishAt     float64
	active       int // running threads

	sinceQuery   int64
	lastRateKV   int64
	lastRateAt   float64
	windowRate   float64
	queries      int64
	rowsRecent   int64
	rowsHistoric int64
}

// run orchestrates one workload execution over the virtual cluster.
type run struct {
	s       *sim
	p       Params
	nodes   []*simNode
	drivers []*simDriver

	queryLat   *histogram.Histogram
	insertLat  *histogram.Histogram
	remaining  int
	endAt      float64
	hostFactor float64 // client-cost inflation from shared driver host
}

// newRun wires up the cluster and drivers for one workload execution.
func newRun(p Params, nodes, substations int, totalKVPs int64, seed uint64) *run {
	s := newSim(seed)
	r := &run{
		s:         s,
		p:         p,
		queryLat:  histogram.New(),
		insertLat: histogram.New(),
		remaining: substations,
	}
	r.hostFactor = 1 + p.HostContentionMax*(1-expf(-float64(substations-1)/p.HostContentionScale))
	// Group-commit response latency, amortised over concurrent substations.
	syncLat := p.SyncLatBase / (1 + p.SyncAmortize*float64(substations-1))
	for i := 0; i < nodes; i++ {
		n := newSimNode(s, p, nodes, syncLat)
		n.scheduleStalls(p)
		r.nodes = append(r.nodes, n)
	}
	threads := float64(substations * p.ThreadsPerDriver)
	noise := p.DriverNoiseBase + p.DriverNoiseOversub*powf(threads/640, 1.7)
	for d := 0; d < substations; d++ {
		u := s.rng.NormFloat64()
		if u < 0 {
			u = -u
		}
		if u > 2.2 {
			u = 2.2 // truncate so the slowest instance is not seed-volatile
		}
		drv := &simDriver{
			id:           d,
			share:        workload.KVPShare(totalKVPs, substations, d+1),
			weights:      placementWeights(s.rng, nodes, p.PlacementNoise),
			clientFactor: 1 + u*noise,
		}
		r.drivers = append(r.drivers, drv)
	}
	return r
}

// placementWeights draws the fraction of a driver's keys hashed to each
// node: uniform plus multiplicative noise, renormalised.
func placementWeights(rng *gen.RNG, nodes int, noise float64) []float64 {
	w := make([]float64, nodes)
	total := 0.0
	for i := range w {
		f := 1 + noise*rng.NormFloat64()
		if f < 0.1 {
			f = 0.1
		}
		w[i] = f
		total += f
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// start launches every driver thread, staggered across roughly one batch
// cycle so the closed-loop system does not run in artificial lockstep.
func (r *run) start() {
	cycle := (float64(r.p.BatchKVPs)/r.p.GenPerThread + r.p.FlushCost) * r.hostFactor
	for _, d := range r.drivers {
		d.startAt = r.s.now
		d.lastRateAt = r.s.now
		d.active = r.p.ThreadsPerDriver
		for t := 0; t < r.p.ThreadsPerDriver; t++ {
			drv := d
			r.s.after(r.s.rng.Float64()*cycle, func() { r.threadCycle(drv) })
		}
	}
}

// threadCycle is one client thread's loop: claim a batch, generate it,
// flush it node by node, account it, maybe run the owed query, repeat.
func (r *run) threadCycle(d *simDriver) {
	if d.claimed >= d.share {
		d.active--
		if d.active == 0 && d.finishAt == 0 {
			d.finishAt = r.s.now
			r.remaining--
			if r.remaining == 0 {
				r.endAt = r.s.now
			}
		}
		return
	}
	batch := int64(r.p.BatchKVPs)
	if left := d.share - d.claimed; left < batch {
		batch = left
	}
	d.claimed += batch

	// ±10% generation jitter keeps threads from re-synchronising; the
	// shared driver host inflates generation and flush work as more
	// driver instances contend for it.
	genTime := float64(batch) / r.p.GenPerThread * (0.9 + 0.2*r.s.rng.Float64())
	flushStart := r.s.now
	r.s.after((genTime+r.p.FlushCost)*r.hostFactor*d.clientFactor, func() {
		r.flushSub(d, 0, batch, flushStart)
	})
}

// flushSub ships sub-batch i of the flush, serially across nodes: the
// client pays PerRPCCost to serialise each sub-RPC, sends it, and waits
// for the acknowledgement before preparing the next (the HBase 1.x client
// write path). After the last acknowledgement the batch is accounted and
// the thread continues.
func (r *run) flushSub(d *simDriver, i int, batch int64, flushStart float64) {
	if r.p.ParallelFlush {
		r.flushParallel(d, batch, flushStart)
		return
	}
	if i >= len(r.nodes) {
		r.finishFlush(d, batch, flushStart)
		return
	}
	size := int(float64(batch)*d.weights[i] + 0.5)
	if size == 0 {
		r.flushSub(d, i+1, batch, flushStart)
		return
	}
	req := &request{kvps: size}
	req.done = func() {
		r.s.after(r.p.RTT/2, func() { r.flushSub(d, i+1, batch, flushStart) })
	}
	r.s.after(r.p.PerRPCCost+r.p.RTT/2, func() { r.nodes[i].submit(req) })
}

// finishFlush accounts a completed flush and continues the thread's loop,
// running the owed query first when one is due.
func (r *run) finishFlush(d *simDriver, batch int64, flushStart float64) {
	r.insertLat.Record(int64((r.s.now - flushStart) * 1e9))
	d.done += batch
	d.sinceQuery += batch
	if d.sinceQuery >= workload.ReadingsPerQueryPair {
		d.sinceQuery -= workload.ReadingsPerQueryPair
		r.runQuery(d)
		return
	}
	r.threadCycle(d)
}

// flushParallel is the ablation client: sub-RPCs are serialised on the
// client thread (PerRPCCost each, back to back) but their network and
// server time overlaps; the thread continues when the LAST acknowledgement
// arrives.
func (r *run) flushParallel(d *simDriver, batch int64, flushStart float64) {
	pending := 0
	serialise := 0.0
	for i := range r.nodes {
		size := int(float64(batch)*d.weights[i] + 0.5)
		if size == 0 {
			continue
		}
		pending++
		serialise += r.p.PerRPCCost
		node := r.nodes[i]
		req := &request{kvps: size}
		req.done = func() {
			r.s.after(r.p.RTT/2, func() {
				pending--
				if pending == 0 {
					r.finishFlush(d, batch, flushStart)
				}
			})
		}
		r.s.after(serialise+r.p.RTT/2, func() { node.submit(req) })
	}
	if pending == 0 {
		r.finishFlush(d, batch, flushStart)
	}
}

// driverRate estimates the driver's current ingest rate in kvps/s: a
// windowed estimate refreshed at most once per virtual second, falling back
// to the cumulative rate before the first full window.
func (r *run) driverRate(d *simDriver) float64 {
	if el := r.s.now - d.lastRateAt; el >= 1 {
		d.windowRate = float64(d.done-d.lastRateKV) / el
		d.lastRateKV = d.done
		d.lastRateAt = r.s.now
	}
	if d.windowRate > 0 {
		return d.windowRate
	}
	return float64(d.done) / maxf(r.s.now-d.startAt, 0.1)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// runQuery issues one dashboard query: a scan of the last 5 s of one
// sensor plus a scan of a random historical 5 s window, serially, through
// the same server queues as the writes.
func (r *run) runQuery(d *simDriver) {
	rate := r.driverRate(d)
	perSensor := rate / metrics.SensorsPerSubstation
	recentRows := int(perSensor*workload.RecentWindow.Seconds() + 0.5)

	// Historical window: empty if the run has not yet covered the chosen
	// offset into the previous 1 800 s.
	offset := workload.RecentWindow.Seconds() +
		r.s.rng.Float64()*(workload.HistoryWindow.Seconds()-workload.RecentWindow.Seconds())
	histRows := 0
	if r.s.now-d.startAt > offset {
		histRows = recentRows
	}

	issueAt := r.s.now
	first := &request{rows: recentRows, read: true}
	second := &request{rows: histRows, read: true}

	node1 := r.weightedNode(d)
	node2 := r.weightedNode(d)
	first.done = func() {
		r.s.after(r.p.RTT/2, func() {
			r.s.after(r.p.RTT/2, func() { r.nodes[node2].submit(second) })
		})
	}
	second.done = func() {
		r.s.after(r.p.RTT/2, func() {
			r.queryLat.Record(int64((r.s.now - issueAt) * 1e9))
			d.queries++
			d.rowsRecent += int64(recentRows)
			d.rowsHistoric += int64(histRows)
			r.threadCycle(d)
		})
	}
	r.s.after(r.p.RTT/2, func() { r.nodes[node1].submit(first) })
}

// weightedNode samples a node according to the driver's key distribution.
func (r *run) weightedNode(d *simDriver) int {
	x := r.s.rng.Float64()
	for i, w := range d.weights {
		if x < w {
			return i
		}
		x -= w
	}
	return len(d.weights) - 1
}
