// Package testbed is a discrete-event simulator of the paper's evaluation
// testbeds: clusters of 2, 4 and 8 Cisco UCS blades running HBase 1.2.0
// behind TPCx-IoT driver instances, plus the standalone driver host of
// Figure 8.
//
// The simulator exists because the paper's experiments ingest up to 400
// million 1 KiB sensor readings on eight dual-socket servers — far beyond a
// laptop — while the *analysis* the paper performs (scaling curves,
// execution-rule floors, latency knees, ingest skew) depends on system
// dynamics, not absolute hardware speed. The model reproduces those
// dynamics structurally:
//
//   - client driver threads generate fixed-size batches, then flush them
//     with one sub-RPC per region server, serially (the HBase 1.x client
//     write path), so per-driver throughput FALLS as servers are added —
//     the paper's single-substation inversion across 2/4/8 nodes;
//   - region servers group-commit: a busy server serves its whole queue
//     under one sync cost, so concurrency amortises the sync and
//     throughput scales SUPER-linearly at low substation counts before
//     node capacity saturates it — Figure 10's S₂=2.8 through S₈=8.6;
//   - dashboard queries ride the same handler queues as writes, so query
//     latency jumps when the cluster saturates (Figure 13's knee at 16
//     substations) and rare compaction stalls produce second-long maxima
//     and a coefficient of variation above 1 (Figure 14);
//   - each driver hashes its keys across servers with placement noise, so
//     queueing near saturation amplifies small imbalances into the large
//     fastest-vs-slowest ingest spreads of Table II.
//
// Virtual time advances by event scheduling: a "30-minute" measured run
// completes in seconds of wall time.
package testbed

import (
	"container/heap"

	"tpcxiot/internal/gen"
)

// event is one scheduled callback.
type event struct {
	at  float64 // virtual seconds
	seq uint64  // tie-break for deterministic ordering
	fn  func()
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// sim is the event loop: a virtual clock plus a pending-event heap.
type sim struct {
	now    float64
	seq    uint64
	queue  eventQueue
	rng    *gen.RNG
	events uint64
}

func newSim(seed uint64) *sim {
	return &sim{rng: gen.NewRNG(seed)}
}

// after schedules fn delay virtual seconds from now.
func (s *sim) after(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.queue, &event{at: s.now + delay, seq: s.seq, fn: fn})
}

// runUntil processes events, advancing virtual time, until stop() reports
// true, the queue empties, or the event budget is exhausted (a
// runaway-model guard). Returns false only on budget exhaustion.
func (s *sim) runUntil(stop func() bool, maxEvents uint64) bool {
	for len(s.queue) > 0 && !stop() {
		if s.events >= maxEvents {
			return false
		}
		e := heap.Pop(&s.queue).(*event)
		s.now = e.at
		s.events++
		e.fn()
	}
	return true
}

// exp draws an exponential variate with the given mean.
func (s *sim) exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	// Inverse CDF with a guard against log(0).
	u := s.rng.Float64()
	if u >= 0.999999999 {
		u = 0.999999999
	}
	return -mean * ln1m(u)
}

// ln1m computes ln(1-u) via the math package; kept as a helper so the
// sampling site reads naturally.
func ln1m(u float64) float64 {
	return logf(1 - u)
}
