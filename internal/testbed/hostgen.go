package testbed

import "math"

// HostGenPoint is one data point of the Figure 8 experiment: raw kvp
// generation throughput and CPU utilisation of the driver host as the
// number of TPCx-IoT driver instances grows.
type HostGenPoint struct {
	// Drivers is the number of driver instances on the host.
	Drivers int
	// Threads is the total worker-thread count (ten per driver).
	Threads int
	// ThroughputKVPs is the aggregate generation rate in kvps/s with the
	// output redirected to /dev/null.
	ThroughputKVPs float64
	// CPUUtilPct is total CPU utilisation of the host in percent.
	CPUUtilPct float64
	// SystemPct is the system-time share of that utilisation in percent.
	SystemPct float64
}

// HostGenParams model the paper's driver host: a Cisco UCS C220 M4 with
// two 14-core/28-thread Xeon E5-2680 v4 processors.
type HostGenParams struct {
	// PerDriverRate is one driver's bare generation rate in kvps/s.
	PerDriverRate float64
	// ThreadsPerDriver matches the workload driver (ten).
	ThreadsPerDriver int
	// Contention is the per-additional-driver service-demand inflation
	// from memory/allocator contention.
	Contention float64
	// OversubscribeThreads is the software-thread count beyond which
	// scheduling and GC overheads start collapsing throughput (the paper
	// observes the collapse between 320 and 640 threads on a 56-hardware-
	// thread host).
	OversubscribeThreads int
	// SchedPenalty is the throughput collapse per software thread beyond
	// OversubscribeThreads.
	SchedPenalty float64
	// UtilScale shapes the utilisation saturation curve.
	UtilScale float64
}

// DefaultHostGenParams is calibrated to Figure 8's anchors: 120 000 kvps/s
// at 1 driver (4% CPU), ~1.1 M kvps/s at 32 drivers (75% CPU), ~0.9 M at 64
// drivers (100% CPU, system share 5% -> 15%).
func DefaultHostGenParams() HostGenParams {
	return HostGenParams{
		PerDriverRate:        120_000,
		ThreadsPerDriver:     10,
		Contention:           0.0803,
		OversubscribeThreads: 320,
		SchedPenalty:         1.28e-3,
		UtilScale:            24.5,
	}
}

// DriverHostGeneration evaluates the Figure 8 model at one driver count.
func DriverHostGeneration(drivers int, p HostGenParams) HostGenPoint {
	if drivers < 1 {
		drivers = 1
	}
	threads := drivers * p.ThreadsPerDriver

	// Linear scaling damped by shared-resource contention
	// (X(d) = d*r / (1 + c*(d-1)), the classic closed-system form)…
	x := float64(drivers) * p.PerDriverRate /
		(1 + p.Contention*float64(drivers-1))
	// …and collapsed further once software threads oversubscribe the
	// hardware threads, where scheduling and GC overheads dominate.
	if over := threads - p.OversubscribeThreads; over > 0 {
		x /= 1 + p.SchedPenalty*float64(over)
	}

	util := 100 * (1 - math.Exp(-float64(drivers)/p.UtilScale))
	sys := 5.0
	if over := threads - p.OversubscribeThreads; over > 0 {
		frac := math.Min(1, float64(over)/float64(p.OversubscribeThreads))
		sys += 10 * frac
		util += 10 * frac
	}
	if util > 100 {
		util = 100
	}
	return HostGenPoint{
		Drivers:        drivers,
		Threads:        threads,
		ThroughputKVPs: x,
		CPUUtilPct:     util,
		SystemPct:      sys,
	}
}

// HostGenerationSweep evaluates the model at the paper's driver counts
// (1 through 64 by powers of two).
func HostGenerationSweep(p HostGenParams) []HostGenPoint {
	var out []HostGenPoint
	for d := 1; d <= 64; d *= 2 {
		out = append(out, DriverHostGeneration(d, p))
	}
	return out
}
