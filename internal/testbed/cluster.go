package testbed

// request is one unit of server work: a write sub-batch or a query scan.
type request struct {
	kvps int    // write payload in sensor readings (0 for reads)
	rows int    // rows to scan (0 for writes)
	read bool   // query scan rather than write
	done func() // invoked when the request completes
}

// simNode models one region server as a FIFO queue over its write/scan
// work. Two latency effects ride on top of the queue:
//
//   - group-commit latency: a write's response additionally waits for a WAL
//     sync whose expected latency shrinks as concurrent writers share syncs
//     (the syncLat the run computes from the substation count). The sync
//     does not occupy the server, so it costs latency, not capacity —
//     amortising it is what produces the paper's super-linear scaling
//     region;
//   - compaction/GC stalls: a recurring background process blocks the
//     server entirely for the stall duration, so requests queued behind a
//     stall observe second-long latencies (Figure 14's maxima and CV > 1).
type simNode struct {
	s *sim

	writeRate float64 // kvps/s service rate (includes replication work)
	readSync  float64 // fixed cost per scan
	readRate  float64 // rows/s scan rate
	syncLat   float64 // group-commit response latency for writes
	readDepth int     // queue positions a read may jump to

	queue      []*request
	busy       bool
	stallUntil float64

	busyTime float64
	servedKV int64
}

func newSimNode(s *sim, p Params, nodes int, syncLat float64) *simNode {
	return &simNode{
		s:         s,
		writeRate: p.nodeRate(nodes),
		readSync:  p.ReadSync,
		readRate:  p.ReadRowsPerSec,
		syncLat:   syncLat,
		readDepth: p.ReadPriorityDepth,
	}
}

// submit enqueues a request; the server starts serving if idle. Reads are
// admitted at most readDepth positions deep: the handler pool lets them
// run alongside the write backlog rather than behind all of it.
func (n *simNode) submit(r *request) {
	if r.read && len(n.queue) > n.readDepth {
		pos := n.readDepth
		n.queue = append(n.queue, nil)
		copy(n.queue[pos+1:], n.queue[pos:])
		n.queue[pos] = r
	} else {
		n.queue = append(n.queue, r)
	}
	if !n.busy {
		n.serveNext()
	}
}

// serveNext serves the queue head, honouring any in-progress stall.
func (n *simNode) serveNext() {
	if len(n.queue) == 0 {
		n.busy = false
		return
	}
	n.busy = true
	r := n.queue[0]
	n.queue = n.queue[1:]

	delay := 0.0
	if n.stallUntil > n.s.now {
		delay = n.stallUntil - n.s.now
	}
	var service, respDelay float64
	if r.read {
		service = n.readSync + float64(r.rows)/n.readRate
		// Handler contention: a scan's RESPONSE slows as the server's
		// write load grows (shared CPU, cache and disk) — Figure 13's
		// latency knee near saturation. The extra time is borne by the
		// scanning handler, not the write path, so it adds latency
		// without consuming write capacity.
		if util := n.utilisation(); util > 0 {
			respDelay = service * (1/(1-0.6*util) - 1)
		}
	} else {
		service = float64(r.kvps) / n.writeRate
		// The WAL sync completes the write off the service path.
		respDelay = n.syncLat
		n.servedKV += int64(r.kvps)
	}
	n.busyTime += delay + service
	n.s.after(delay+service, func() {
		n.s.after(respDelay, r.done)
		n.serveNext()
	})
}

// utilisation reports the server's cumulative busy fraction.
func (n *simNode) utilisation() float64 {
	if n.s.now <= 0 {
		return 0
	}
	u := n.busyTime / n.s.now
	if u > 1 {
		u = 1
	}
	return u
}

// scheduleStalls installs the recurring compaction/GC stall process.
func (n *simNode) scheduleStalls(p Params) {
	if p.StallMeanInterval <= 0 || p.StallMeanDuration <= 0 {
		return
	}
	var next func()
	next = func() {
		d := n.s.exp(p.StallMeanDuration)
		// One in five stalls is a major compaction, a few times longer:
		// the heavy tail behind Figure 14's CV > 1. Durations are capped —
		// real HBase flush/compaction pauses top out at a few seconds.
		if n.s.rng.Float64() < 0.2 {
			d *= 3
		}
		if d > 3 {
			d = 3
		}
		if end := n.s.now + d; end > n.stallUntil {
			n.stallUntil = end
		}
		n.s.after(n.s.exp(p.StallMeanInterval), next)
	}
	n.s.after(n.s.exp(p.StallMeanInterval), next)
}
