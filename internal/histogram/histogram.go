// Package histogram provides latency and throughput statistics for the
// benchmark's measurement layer: exact count/min/max/mean/standard
// deviation plus approximate percentiles from log-scale buckets.
//
// The paper's evaluation reports exactly these statistics — Figure 14 shows
// min/max/avg query latency with the coefficient of variation printed above
// each bar and discusses 95th percentiles — so the histogram exposes each
// of them directly.
package histogram

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync"
)

// subBucketBits fixes the per-power-of-two resolution: 2^subBucketBits
// linear sub-buckets per binary order of magnitude (~1.5% relative error
// with 6 bits).
const subBucketBits = 6

const (
	subBuckets  = 1 << subBucketBits
	groupCount  = 64 - subBucketBits
	bucketCount = groupCount * subBuckets
)

// Histogram accumulates non-negative int64 observations (typically latency
// in nanoseconds). Safe for concurrent use; for hot paths, keep one
// histogram per worker and Merge at the end.
type Histogram struct {
	mu      sync.Mutex
	buckets [bucketCount]int64
	count   int64
	sum     float64
	sumSq   float64
	min     int64
	max     int64
}

// New returns an empty histogram.
func New() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	// Highest set bit selects the group; the next subBucketBits bits select
	// the linear sub-bucket within it.
	msb := bits.Len64(u) - 1
	group := msb - subBucketBits + 1
	sub := (u >> (uint(msb) - subBucketBits)) & (subBuckets - 1)
	idx := group*subBuckets + int(sub)
	if idx >= bucketCount {
		idx = bucketCount - 1
	}
	return idx
}

// bucketLowerBound returns the smallest value that maps to bucket i.
func bucketLowerBound(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	group := i / subBuckets
	sub := uint64(i % subBuckets)
	msb := group + subBucketBits - 1
	base := uint64(1) << uint(msb)
	step := base >> subBucketBits
	v := base + sub*step
	if v > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(v)
}

// bucketUpperBound returns a representative (upper-bound) value for bucket i.
func bucketUpperBound(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	group := i / subBuckets
	sub := uint64(i % subBuckets)
	msb := group + subBucketBits - 1
	base := uint64(1) << uint(msb)
	step := base >> subBucketBits
	v := base + (sub+1)*step - 1
	if v > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(v)
}

// Record adds one observation. Negative values are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	h.buckets[bucketIndex(v)]++
	h.count++
	f := float64(v)
	h.sum += f
	h.sumSq += f * f
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Merge adds all observations of other into h.
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	var o snapshotState
	o.load(other)
	other.mu.Unlock()

	h.mu.Lock()
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	h.sumSq += o.sumSq
	if o.count > 0 {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	h.mu.Unlock()
}

type snapshotState struct {
	buckets [bucketCount]int64
	count   int64
	sum     float64
	sumSq   float64
	min     int64
	max     int64
}

func (s *snapshotState) load(h *Histogram) {
	s.buckets = h.buckets
	s.count = h.count
	s.sum = h.sum
	s.sumSq = h.sumSq
	s.min = h.min
	s.max = h.max
}

// Snapshot is an immutable view of a histogram's statistics.
type Snapshot struct {
	state snapshotState
}

// Snapshot captures the current statistics.
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	var s Snapshot
	s.state.load(h)
	return s
}

// Count returns the number of observations.
func (s Snapshot) Count() int64 { return s.state.count }

// Min returns the smallest observation, or 0 when empty.
func (s Snapshot) Min() int64 {
	if s.state.count == 0 {
		return 0
	}
	return s.state.min
}

// Max returns the largest observation, or 0 when empty.
func (s Snapshot) Max() int64 { return s.state.max }

// Mean returns the arithmetic mean, or 0 when empty.
func (s Snapshot) Mean() float64 {
	if s.state.count == 0 {
		return 0
	}
	return s.state.sum / float64(s.state.count)
}

// Stdev returns the population standard deviation, or 0 when empty.
func (s Snapshot) Stdev() float64 {
	n := float64(s.state.count)
	if n == 0 {
		return 0
	}
	mean := s.state.sum / n
	v := s.state.sumSq/n - mean*mean
	if v < 0 {
		v = 0 // guard tiny negative from floating-point cancellation
	}
	return math.Sqrt(v)
}

// CV returns the coefficient of variation (stdev/mean), the statistic the
// paper prints above each bar of Figure 14. Returns 0 when the mean is 0.
func (s Snapshot) CV() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return s.Stdev() / m
}

// Percentile returns an upper bound on the p-th percentile (0 < p <= 100).
// Resolution is ~1.5%. Returns 0 when empty.
func (s Snapshot) Percentile(p float64) int64 {
	if s.state.count == 0 {
		return 0
	}
	if p <= 0 {
		return s.Min()
	}
	if p >= 100 {
		return s.Max()
	}
	rank := int64(math.Ceil(p / 100 * float64(s.state.count)))
	var seen int64
	for i, c := range s.state.buckets {
		seen += c
		if seen >= rank {
			ub := bucketUpperBound(i)
			if ub > s.state.max {
				return s.state.max
			}
			return ub
		}
	}
	return s.state.max
}

// Sum returns the sum of all observations.
func (s Snapshot) Sum() float64 { return s.state.sum }

// MergeSnapshots combines immutable snapshots into one, as if all their
// observations had been recorded into a single histogram. Used to aggregate
// per-driver-instance measurements into system-wide statistics.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	var out Snapshot
	out.state.min = math.MaxInt64
	for _, s := range snaps {
		if s.state.count == 0 {
			continue
		}
		for i, c := range s.state.buckets {
			out.state.buckets[i] += c
		}
		out.state.count += s.state.count
		out.state.sum += s.state.sum
		out.state.sumSq += s.state.sumSq
		if s.state.min < out.state.min {
			out.state.min = s.state.min
		}
		if s.state.max > out.state.max {
			out.state.max = s.state.max
		}
	}
	return out
}

// Sub returns the distribution of the observations recorded after prev was
// taken, assuming prev is an earlier snapshot of the same (or a merged)
// histogram. This is how the telemetry ticker converts cumulative
// distributions into per-interval ones. Count, mean, standard deviation and
// percentiles of the difference are exact to bucket resolution; Min and Max
// are bucket-bound approximations because the extremes of the interval are
// not recoverable from cumulative state.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	var out Snapshot
	out.state.min = math.MaxInt64
	if s.state.count <= prev.state.count {
		return out
	}
	first, last := -1, -1
	for i := range s.state.buckets {
		d := s.state.buckets[i] - prev.state.buckets[i]
		if d < 0 {
			d = 0
		}
		out.state.buckets[i] = d
		if d > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	out.state.count = s.state.count - prev.state.count
	out.state.sum = s.state.sum - prev.state.sum
	out.state.sumSq = s.state.sumSq - prev.state.sumSq
	if out.state.sum < 0 {
		out.state.sum = 0
	}
	if out.state.sumSq < 0 {
		out.state.sumSq = 0
	}
	if first >= 0 {
		out.state.min = bucketLowerBound(first)
		if out.state.min < s.state.min {
			out.state.min = s.state.min
		}
		out.state.max = bucketUpperBound(last)
		if out.state.max > s.state.max {
			out.state.max = s.state.max
		}
	}
	return out
}

// String summarises the distribution on one line:
// count/min/mean/p50/p95/p99/max. Values are in the recorded unit
// (nanoseconds throughout the kit).
func (s Snapshot) String() string {
	return fmt.Sprintf("count=%d min=%d mean=%.1f p50=%d p95=%d p99=%d max=%d",
		s.Count(), s.Min(), s.Mean(),
		s.Percentile(50), s.Percentile(95), s.Percentile(99), s.Max())
}

// WriteTo writes the String rendering to w, implementing io.WriterTo so
// report builders can stream snapshot lines without intermediate buffers.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, s.String())
	return int64(n), err
}
