package histogram

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"tpcxiot/internal/gen"
)

func TestEmpty(t *testing.T) {
	s := New().Snapshot()
	if s.Count() != 0 || s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 ||
		s.Stdev() != 0 || s.CV() != 0 || s.Percentile(50) != 0 {
		t.Fatalf("empty histogram not all-zero: %v", s)
	}
}

func TestExactStatistics(t *testing.T) {
	h := New()
	for _, v := range []int64{10, 20, 30, 40, 50} {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count() != 5 || s.Min() != 10 || s.Max() != 50 {
		t.Fatalf("count/min/max wrong: %v", s)
	}
	if s.Mean() != 30 {
		t.Fatalf("mean = %v, want 30", s.Mean())
	}
	wantStdev := math.Sqrt(200) // population stdev of 10..50
	if math.Abs(s.Stdev()-wantStdev) > 1e-9 {
		t.Fatalf("stdev = %v, want %v", s.Stdev(), wantStdev)
	}
	if math.Abs(s.CV()-wantStdev/30) > 1e-9 {
		t.Fatalf("cv = %v", s.CV())
	}
	if s.Sum() != 150 {
		t.Fatalf("sum = %v", s.Sum())
	}
}

func TestNegativeClamped(t *testing.T) {
	h := New()
	h.Record(-5)
	s := h.Snapshot()
	if s.Min() != 0 || s.Max() != 0 || s.Count() != 1 {
		t.Fatalf("negative not clamped: %v", s)
	}
}

func TestPercentileAccuracy(t *testing.T) {
	h := New()
	// 1..10000: p50 ~ 5000, p95 ~ 9500, p99 ~ 9900.
	for i := int64(1); i <= 10000; i++ {
		h.Record(i)
	}
	s := h.Snapshot()
	cases := []struct {
		p    float64
		want int64
	}{
		{50, 5000}, {90, 9000}, {95, 9500}, {99, 9900}, {100, 10000},
	}
	for _, tc := range cases {
		got := s.Percentile(tc.p)
		if relErr := math.Abs(float64(got-tc.want)) / float64(tc.want); relErr > 0.02 {
			t.Fatalf("p%.0f = %d, want ~%d (err %.3f)", tc.p, got, tc.want, relErr)
		}
	}
	if s.Percentile(0) != s.Min() {
		t.Fatal("p0 should equal min")
	}
}

func TestPercentileMonotonic(t *testing.T) {
	h := New()
	rng := gen.NewRNG(1)
	for i := 0; i < 10000; i++ {
		h.Record(int64(rng.Uint64n(1_000_000)))
	}
	s := h.Snapshot()
	prev := int64(-1)
	for p := 1.0; p <= 100; p++ {
		v := s.Percentile(p)
		if v < prev {
			t.Fatalf("percentiles not monotonic at p%.0f: %d < %d", p, v, prev)
		}
		prev = v
	}
}

func TestBucketIndexMonotonicProperty(t *testing.T) {
	f := func(a, b int64) bool {
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		if a > b {
			a, b = b, a
		}
		return bucketIndex(a) <= bucketIndex(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketBoundsContainValues(t *testing.T) {
	f := func(v int64) bool {
		if v < 0 {
			v = -v
		}
		idx := bucketIndex(v)
		return bucketUpperBound(idx) >= v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	for i := int64(1); i <= 100; i++ {
		a.Record(i)
	}
	for i := int64(101); i <= 200; i++ {
		b.Record(i)
	}
	a.Merge(b)
	s := a.Snapshot()
	if s.Count() != 200 || s.Min() != 1 || s.Max() != 200 {
		t.Fatalf("merge stats: %v", s)
	}
	if math.Abs(s.Mean()-100.5) > 1e-9 {
		t.Fatalf("merged mean = %v", s.Mean())
	}
}

func TestMergeEmpty(t *testing.T) {
	a := New()
	a.Record(42)
	a.Merge(New())
	s := a.Snapshot()
	if s.Count() != 1 || s.Min() != 42 {
		t.Fatalf("merge with empty corrupted stats: %v", s)
	}
}

func TestConcurrentRecord(t *testing.T) {
	h := New()
	var wg sync.WaitGroup
	const workers = 8
	const per = 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count() != workers*per {
		t.Fatalf("lost observations: %d/%d", s.Count(), workers*per)
	}
	if s.Min() != 0 || s.Max() != workers*per-1 {
		t.Fatalf("min/max wrong: %v", s)
	}
}

func TestCVGreaterThanOneForSkewedData(t *testing.T) {
	// Mirrors Figure 14: a mass of ~12 ms latencies with rare >1 s outliers
	// produces CV > 1.
	h := New()
	for i := 0; i < 10000; i++ {
		h.Record(12_000_000) // 12 ms in ns
	}
	for i := 0; i < 40; i++ {
		h.Record(1_500_000_000) // 1.5 s stalls
	}
	if cv := h.Snapshot().CV(); cv <= 1 {
		t.Fatalf("CV = %v, want > 1 for stall-dominated tail", cv)
	}
}

func TestStringDoesNotPanic(t *testing.T) {
	h := New()
	h.Record(5)
	if s := h.Snapshot().String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestStringAndWriteToRenderer(t *testing.T) {
	h := New()
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
	}
	s := h.Snapshot()
	line := s.String()
	want := fmt.Sprintf("count=100 min=1 mean=50.5 p50=%d p95=%d p99=%d max=100",
		s.Percentile(50), s.Percentile(95), s.Percentile(99))
	if line != want {
		t.Fatalf("String() = %q, want %q", line, want)
	}
	var b strings.Builder
	n, err := s.WriteTo(&b)
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != line || n != int64(len(line)) {
		t.Fatalf("WriteTo wrote %q (%d bytes), want %q", b.String(), n, line)
	}
}

// TestConcurrentRecordSnapshotMerge hammers Record, Snapshot and Merge
// concurrently; run under -race this verifies the histogram's locking
// discipline, and afterwards no observation may be lost.
func TestConcurrentRecordSnapshotMerge(t *testing.T) {
	main := New()
	side := New()
	var wg sync.WaitGroup
	const writers = 4
	const per = 5000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				main.Record(int64(w*per + i + 1))
				if i%8 == 0 {
					side.Record(int64(i + 1))
				}
			}
		}(w)
	}
	// Concurrent snapshotters: counts must be consistent (sum of buckets ==
	// count) in every observed snapshot.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := main.Snapshot()
				var inBuckets int64
				for _, c := range s.state.buckets {
					inBuckets += c
				}
				if inBuckets != s.Count() {
					t.Errorf("torn snapshot: buckets sum %d, count %d", inBuckets, s.Count())
					return
				}
			}
		}()
	}
	// Concurrent merger pulling side into main while writers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			main.Merge(side)
		}
	}()
	wg.Wait()
	if got := main.Snapshot().Count(); got < writers*per {
		t.Fatalf("lost observations: %d < %d", got, writers*per)
	}
}

func TestSnapshotSub(t *testing.T) {
	h := New()
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	prev := h.Snapshot()
	for i := int64(100_001); i <= 101_000; i++ {
		h.Record(i)
	}
	delta := h.Snapshot().Sub(prev)
	if delta.Count() != 1000 {
		t.Fatalf("delta count = %d, want 1000", delta.Count())
	}
	if m := delta.Mean(); math.Abs(m-100_500.5) > 1 {
		t.Fatalf("delta mean = %v, want ~100500.5", m)
	}
	// Percentiles of the delta must reflect only the second batch.
	if p50 := delta.Percentile(50); p50 < 100_000 {
		t.Fatalf("delta p50 = %d, want >= 100000 (first batch leaked in)", p50)
	}
	// Min/Max are bucket approximations but must bracket the second batch.
	if delta.Min() < 100_001-2048 || delta.Max() > 102_000 {
		t.Fatalf("delta min/max = %d/%d out of range", delta.Min(), delta.Max())
	}
}

func TestSnapshotSubEmptyAndIdentity(t *testing.T) {
	h := New()
	h.Record(7)
	s := h.Snapshot()
	if d := s.Sub(s); d.Count() != 0 || d.Min() != 0 || d.Percentile(95) != 0 {
		t.Fatalf("identity delta not empty: %v", d)
	}
	if d := s.Sub(Snapshot{}); d.Count() != 1 || d.Percentile(50) != s.Percentile(50) {
		t.Fatalf("delta from zero snapshot should equal original: %v", d)
	}
}

func BenchmarkRecord(b *testing.B) {
	h := New()
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			h.Record(i % 1_000_000)
			i++
		}
	})
}
