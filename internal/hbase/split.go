package hbase

import (
	"bytes"
	"errors"
	"fmt"

	"tpcxiot/internal/region"
	"tpcxiot/internal/replication"
)

// Sentinel errors for split administration.
var (
	ErrBadSplitKey = errors.New("hbase: split key outside region or at its boundary")
)

// SplitRegion splits the region containing splitKey into two children at
// that key, on every replica, and installs the children in the routing
// table. It is an administrative operation: run it without concurrent
// clients (clients caching the parent's routing will fail and must be
// recreated, the analogue of HBase's NotServingRegionException).
//
// TPCx-IoT deployments pre-split instead of splitting under load; this
// operation exists for completeness (growing a table beyond its original
// layout) and for split-policy experiments.
func (cl *Cluster) SplitRegion(table string, splitKey []byte) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return ErrClusterClosed
	}
	t, ok := cl.tables[table]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchTable, table)
	}

	// Locate the parent region.
	idx := 0
	for idx < len(t.splits) && bytes.Compare(splitKey, t.splits[idx]) >= 0 {
		idx++
	}
	parent := t.regions[idx]
	if !parent.info.Contains(splitKey) ||
		(parent.info.StartKey != nil && bytes.Equal(splitKey, parent.info.StartKey)) {
		return fmt.Errorf("%w: %q in %s", ErrBadSplitKey, splitKey, parent.info)
	}

	// Retire the parent's pipeline first: Close drains every straggler's
	// catch-up queue, so each replica's store holds all acknowledged writes
	// before its contents are copied into the children.
	if err := parent.group.Close(); err != nil {
		return fmt.Errorf("hbase: drain %s before split: %w", parent.info.Name, err)
	}

	// Split every replica on its own server, collecting the children.
	type pair struct {
		srv         *RegionServer
		left, right *region.Region
	}
	var pairs []pair
	rollback := func() {
		for _, p := range pairs {
			p.left.Destroy()
			p.right.Destroy()
			p.srv.forgetRegion(p.left.Info().Name)
			p.srv.forgetRegion(p.right.Info().Name)
		}
	}
	for _, rep := range parent.replicas {
		srv := cl.serverHosting(rep)
		if srv == nil {
			rollback()
			return fmt.Errorf("hbase: no server hosts replica %s", rep.Info().Name)
		}
		left, right, err := rep.Split(splitKey, srv.dir, cl.cfg.Store)
		if err != nil {
			rollback()
			return fmt.Errorf("hbase: split %s on server %d: %w", rep.Info().Name, srv.id, err)
		}
		srv.adoptRegion(left)
		srv.adoptRegion(right)
		pairs = append(pairs, pair{srv: srv, left: left, right: right})
	}

	// Build the two routing entries; the children inherit the parent's
	// placement (primary first in replicas by construction).
	leftTR := &tableRegion{info: pairs[0].left.Info(), primary: parent.primary}
	rightTR := &tableRegion{info: pairs[0].right.Info(), primary: parent.primary}
	var leftAppliers, rightAppliers []replication.Applier
	for _, p := range pairs {
		leftTR.replicas = append(leftTR.replicas, p.left)
		rightTR.replicas = append(rightTR.replicas, p.right)
		leftAppliers = append(leftAppliers, p.left)
		rightAppliers = append(rightAppliers, p.right)
	}
	leftTR.group = cl.newGroup(leftTR.info.Name, leftAppliers)
	rightTR.group = cl.newGroup(rightTR.info.Name, rightAppliers)
	cl.cfg.Registry.Counter("region.splits").Inc()

	// Install: splice the children in place of the parent and record the
	// new boundary.
	t.regions = append(t.regions[:idx],
		append([]*tableRegion{leftTR, rightTR}, t.regions[idx+1:]...)...)
	t.splits = append(t.splits[:idx],
		append([][]byte{append([]byte(nil), splitKey...)}, t.splits[idx:]...)...)

	// Retire the parent.
	var firstErr error
	for _, rep := range parent.replicas {
		if srv := cl.serverHosting(rep); srv != nil {
			srv.forgetRegion(rep.Info().Name)
		}
		if err := rep.Destroy(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// serverHosting finds the server whose region map holds this replica.
func (cl *Cluster) serverHosting(r *region.Region) *RegionServer {
	name := r.Info().Name
	for _, srv := range cl.servers {
		srv.mu.RLock()
		hosted, ok := srv.regions[name]
		srv.mu.RUnlock()
		if ok && hosted == r {
			return srv
		}
	}
	return nil
}

// adoptRegion registers an already-open region on the server.
func (s *RegionServer) adoptRegion(r *region.Region) {
	s.mu.Lock()
	s.regions[r.Info().Name] = r
	s.mu.Unlock()
}

// MedianSplitKey returns the median key of the region containing sample,
// the split point a size-based policy would choose. Exposed so operators
// (and tests) can split where the data actually is.
func (cl *Cluster) MedianSplitKey(table string, sample []byte) ([]byte, error) {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	t, ok := cl.tables[table]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, table)
	}
	tr := t.locate(sample)
	return tr.replicas[0].SplitPoint()
}
