package hbase

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The cluster's clients can reach region servers two ways: direct
// in-process calls (the default) or a loopback TCP wire protocol that
// models the benchmark's client-to-region-server network path. Both routes
// execute the same handler-gated server methods.
//
// Wire format: every message is a frame
//
//	uint32  payload length (little endian)
//	byte    opcode (request) or status (response)
//	payload fields, each length-prefixed with a uvarint
//
// Requests carry the region name followed by op-specific fields; responses
// carry a status byte (statusOK/statusErr) and either results or an error
// string. The protocol is deliberately minimal: one outstanding request
// per connection, matching the one-client-per-worker-thread model.

// opcodes. Scans are a session of three ops (open, a next per chunk,
// close), the wire form of the server's scanner sessions; the retired
// one-shot scan op (formerly opcode 3) shipped a whole region scan as a
// single frame.
const (
	opMutate    byte = 1
	opGet       byte = 2
	opScanOpen  byte = 3
	opScanNext  byte = 4
	opScanClose byte = 5
)

// response statuses.
const (
	statusOK  byte = 0
	statusErr byte = 1
)

// maxFrame bounds a single message (a scan of a full region easily fits).
const maxFrame = 256 << 20

// ErrBadFrame reports a malformed wire message.
var ErrBadFrame = errors.New("hbase: malformed wire frame")

// frameWriter accumulates one frame's payload.
type frameWriter struct {
	buf []byte
}

func (f *frameWriter) reset(op byte) {
	f.buf = append(f.buf[:0], 0, 0, 0, 0, op)
}

func (f *frameWriter) bytes(b []byte) {
	f.buf = binary.AppendUvarint(f.buf, uint64(len(b)))
	f.buf = append(f.buf, b...)
}

func (f *frameWriter) str(s string) {
	f.buf = binary.AppendUvarint(f.buf, uint64(len(s)))
	f.buf = append(f.buf, s...)
}

func (f *frameWriter) uvarint(v uint64) {
	f.buf = binary.AppendUvarint(f.buf, v)
}

// flush writes the frame to w.
func (f *frameWriter) flush(w io.Writer) error {
	binary.LittleEndian.PutUint32(f.buf[:4], uint32(len(f.buf)-4))
	_, err := w.Write(f.buf)
	return err
}

// frameReader parses one frame's payload.
type frameReader struct {
	op  byte
	buf []byte
	off int
}

// readFrame reads a whole frame from r.
func (f *frameReader) readFrame(r io.Reader) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err // io.EOF signals clean connection close
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrame {
		return fmt.Errorf("%w: frame length %d", ErrBadFrame, n)
	}
	if cap(f.buf) < int(n) {
		f.buf = make([]byte, n)
	}
	f.buf = f.buf[:n]
	if _, err := io.ReadFull(r, f.buf); err != nil {
		return fmt.Errorf("%w: truncated frame: %v", ErrBadFrame, err)
	}
	f.op = f.buf[0]
	f.off = 1
	return nil
}

func (f *frameReader) bytes() ([]byte, error) {
	n, sz := binary.Uvarint(f.buf[f.off:])
	if sz <= 0 || uint64(len(f.buf)-f.off-sz) < n {
		return nil, fmt.Errorf("%w: bad field length", ErrBadFrame)
	}
	f.off += sz
	out := f.buf[f.off : f.off+int(n)]
	f.off += int(n)
	return out, nil
}

func (f *frameReader) str() (string, error) {
	b, err := f.bytes()
	return string(b), err
}

func (f *frameReader) uvarint() (uint64, error) {
	v, sz := binary.Uvarint(f.buf[f.off:])
	if sz <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", ErrBadFrame)
	}
	f.off += sz
	return v, nil
}

// nilMarker distinguishes nil scan bounds from empty ones on the wire.
const (
	markerNil   byte = 0
	markerBytes byte = 1
)

func (f *frameWriter) optBytes(b []byte) {
	if b == nil {
		f.buf = append(f.buf, markerNil)
		return
	}
	f.buf = append(f.buf, markerBytes)
	f.bytes(b)
}

func (f *frameReader) optBytes() ([]byte, error) {
	if f.off >= len(f.buf) {
		return nil, fmt.Errorf("%w: missing optional marker", ErrBadFrame)
	}
	marker := f.buf[f.off]
	f.off++
	if marker == markerNil {
		return nil, nil
	}
	return f.bytes()
}
