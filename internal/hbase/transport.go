package hbase

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"tpcxiot/internal/telemetry"
)

// The cluster's clients can reach region servers two ways: direct
// in-process calls (the default) or a loopback TCP wire protocol that
// models the benchmark's client-to-region-server network path. Both routes
// execute the same handler-gated server methods.
//
// Wire format: every message is a frame
//
//	uint32  payload length (little endian)
//	byte    opcode (request) or status (response)
//	byte    flags (trace header / span block present)
//	payload fields, each length-prefixed with a uvarint
//
// Requests carry an optional trace header (trace id + parent span id, when
// the operation is sampled), then the region name followed by op-specific
// fields; responses carry a status byte (statusOK/statusErr), an optional
// span block (the server-side spans of a sampled operation, shipped back
// for client-side stitching), and either results or an error string. The
// protocol is deliberately minimal: one outstanding request per connection,
// matching the one-client-per-worker-thread model.

// opcodes. Scans are a session of three ops (open, a next per chunk,
// close), the wire form of the server's scanner sessions; the retired
// one-shot scan op (formerly opcode 3) shipped a whole region scan as a
// single frame.
const (
	opMutate    byte = 1
	opGet       byte = 2
	opScanOpen  byte = 3
	opScanNext  byte = 4
	opScanClose byte = 5
	// opAggregate is the aggregation-pushdown RPC: the request carries the
	// key range, time range, window width and function mask; the response
	// carries per-(series, window) partial aggregates instead of rows.
	opAggregate byte = 6
)

// response statuses. statusOverloaded is a load-shed: the typed retryable
// refusal (an *OverloadedError), carrying its retry-after hint in
// microseconds, so remote clients reconstruct the same error value the
// in-process transport returns.
const (
	statusOK         byte = 0
	statusErr        byte = 1
	statusOverloaded byte = 2
)

// frame flags. Requests use flagTrace (a trace header follows the flags
// byte); responses use flagSpans (a span block follows the status).
const (
	flagTrace byte = 1 << 0
	flagSpans byte = 1 << 1
)

// maxFrame bounds a single message (a scan of a full region easily fits).
const maxFrame = 256 << 20

// ErrBadFrame reports a malformed wire message.
var ErrBadFrame = errors.New("hbase: malformed wire frame")

// frameWriter accumulates one frame's payload.
type frameWriter struct {
	buf []byte
}

func (f *frameWriter) reset(op byte) {
	f.buf = append(f.buf[:0], 0, 0, 0, 0, op, 0)
}

// flagsIdx locates the flags byte inside the writer's buffer (after the
// 4-byte length prefix and the op/status byte).
const flagsIdx = 5

// trace writes the request trace header for a sampled operation. Must be
// called immediately after reset, before any other field. A no-op for
// untraced spans, so every request path can call it unconditionally.
func (f *frameWriter) trace(sp telemetry.TSpan) {
	ctx := sp.Context()
	if !ctx.Sampled {
		return
	}
	f.buf[flagsIdx] |= flagTrace
	f.uvarint(ctx.TraceID)
	f.uvarint(ctx.SpanID)
}

// spans writes the response span block: the server-side spans of a sampled
// operation, shipped back for client-side stitching. Must be called
// immediately after reset, before any result field. A no-op for an empty
// slice. Trace ids are omitted — the client rewrites them on stitch.
func (f *frameWriter) spans(spans []telemetry.SpanRecord) {
	if len(spans) == 0 {
		return
	}
	f.buf[flagsIdx] |= flagSpans
	f.uvarint(uint64(len(spans)))
	for i := range spans {
		s := &spans[i]
		f.uvarint(s.SpanID)
		f.uvarint(s.ParentID)
		f.uvarint(uint64(s.StartNs))
		f.uvarint(uint64(s.DurNs))
		f.str(s.Name)
		f.str(s.Service)
	}
}

func (f *frameWriter) bytes(b []byte) {
	f.buf = binary.AppendUvarint(f.buf, uint64(len(b)))
	f.buf = append(f.buf, b...)
}

func (f *frameWriter) str(s string) {
	f.buf = binary.AppendUvarint(f.buf, uint64(len(s)))
	f.buf = append(f.buf, s...)
}

func (f *frameWriter) uvarint(v uint64) {
	f.buf = binary.AppendUvarint(f.buf, v)
}

// flush writes the frame to w.
func (f *frameWriter) flush(w io.Writer) error {
	binary.LittleEndian.PutUint32(f.buf[:4], uint32(len(f.buf)-4))
	_, err := w.Write(f.buf)
	return err
}

// frameReader parses one frame's payload.
type frameReader struct {
	op    byte
	flags byte
	buf   []byte
	off   int
}

// readFrame reads a whole frame from r.
func (f *frameReader) readFrame(r io.Reader) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err // io.EOF signals clean connection close
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 2 || n > maxFrame {
		return fmt.Errorf("%w: frame length %d", ErrBadFrame, n)
	}
	if cap(f.buf) < int(n) {
		f.buf = make([]byte, n)
	}
	f.buf = f.buf[:n]
	if _, err := io.ReadFull(r, f.buf); err != nil {
		return fmt.Errorf("%w: truncated frame: %v", ErrBadFrame, err)
	}
	f.op = f.buf[0]
	f.flags = f.buf[1]
	f.off = 2
	return nil
}

// traceContext parses the request trace header, if present. Must be called
// before any other field read.
func (f *frameReader) traceContext() (telemetry.TraceContext, error) {
	if f.flags&flagTrace == 0 {
		return telemetry.TraceContext{}, nil
	}
	tid, err := f.uvarint()
	if err != nil {
		return telemetry.TraceContext{}, err
	}
	sid, err := f.uvarint()
	if err != nil {
		return telemetry.TraceContext{}, err
	}
	return telemetry.TraceContext{TraceID: tid, SpanID: sid, Sampled: true}, nil
}

// spans parses the response span block, if present. Must be called before
// any result field read.
func (f *frameReader) spans() ([]telemetry.SpanRecord, error) {
	if f.flags&flagSpans == 0 {
		return nil, nil
	}
	n, err := f.uvarint()
	if err != nil {
		return nil, err
	}
	capHint := n
	if capHint > 1024 {
		capHint = 1024 // bound the pre-allocation; a bogus count fails below
	}
	out := make([]telemetry.SpanRecord, 0, capHint)
	for i := uint64(0); i < n; i++ {
		var s telemetry.SpanRecord
		if s.SpanID, err = f.uvarint(); err != nil {
			return nil, err
		}
		if s.ParentID, err = f.uvarint(); err != nil {
			return nil, err
		}
		start, err := f.uvarint()
		if err != nil {
			return nil, err
		}
		dur, err := f.uvarint()
		if err != nil {
			return nil, err
		}
		s.StartNs, s.DurNs = int64(start), int64(dur)
		if s.Name, err = f.str(); err != nil {
			return nil, err
		}
		if s.Service, err = f.str(); err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (f *frameReader) bytes() ([]byte, error) {
	n, sz := binary.Uvarint(f.buf[f.off:])
	if sz <= 0 || uint64(len(f.buf)-f.off-sz) < n {
		return nil, fmt.Errorf("%w: bad field length", ErrBadFrame)
	}
	f.off += sz
	out := f.buf[f.off : f.off+int(n)]
	f.off += int(n)
	return out, nil
}

func (f *frameReader) str() (string, error) {
	b, err := f.bytes()
	return string(b), err
}

func (f *frameReader) uvarint() (uint64, error) {
	v, sz := binary.Uvarint(f.buf[f.off:])
	if sz <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", ErrBadFrame)
	}
	f.off += sz
	return v, nil
}

// nilMarker distinguishes nil scan bounds from empty ones on the wire.
const (
	markerNil   byte = 0
	markerBytes byte = 1
)

func (f *frameWriter) optBytes(b []byte) {
	if b == nil {
		f.buf = append(f.buf, markerNil)
		return
	}
	f.buf = append(f.buf, markerBytes)
	f.bytes(b)
}

func (f *frameReader) optBytes() ([]byte, error) {
	if f.off >= len(f.buf) {
		return nil, fmt.Errorf("%w: missing optional marker", ErrBadFrame)
	}
	marker := f.buf[f.off]
	f.off++
	if marker == markerNil {
		return nil, nil
	}
	return f.bytes()
}
