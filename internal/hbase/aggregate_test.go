package hbase

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"tpcxiot/internal/kvp"
	"tpcxiot/internal/lsm"
	"tpcxiot/internal/telemetry"
	"tpcxiot/internal/wal"
)

const allAggFuncs = lsm.AggCount | lsm.AggMin | lsm.AggMax | lsm.AggSum | lsm.AggAvg

// aggKVP encodes one kvp-format reading.
func aggKVP(t testing.TB, substation, sensor string, ts int64, reading float64) (k, v []byte) {
	t.Helper()
	key := kvp.Key{Substation: substation, Sensor: sensor, Timestamp: ts}
	rs := strconv.FormatFloat(reading, 'f', 2, 64)
	pad, err := kvp.PaddingFor(key, rs, "volt")
	if err != nil {
		t.Fatal(err)
	}
	val := kvp.Value{Reading: rs, Unit: "volt", Padding: bytes.Repeat([]byte("p"), pad)}
	return key.Encode(), val.Encode()
}

// seriesRange covers all sensors of one substation.
func seriesRange(substation string) (lo, hi []byte) {
	return append([]byte(substation), 0), append([]byte(substation), 1)
}

// TestAggregateAcrossRegionSplitInSeries splits the table in the middle of
// one sensor's time run, so the same (series, window) surfaces from two
// adjacent regions and the client must merge the tail partials exactly —
// count and sum add, min/max extrema, avg from the merged (sum, count).
func TestAggregateAcrossRegionSplitInSeries(t *testing.T) {
	// Split at sa's t=5500: window [5000,10000) spans the region boundary.
	split := kvp.Key{Substation: "sub0", Sensor: "sa", Timestamp: 5500}.Encode()
	_, c := newTestCluster(t, 3, [][]byte{split})

	for ts := int64(0); ts < 10_000; ts += 1000 {
		k, v := aggKVP(t, "sub0", "sa", ts, float64(ts)/1000)
		if err := c.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	lo, hi := seriesRange("sub0")
	res, err := c.Aggregate(lo, hi, 0, 10_000, 5000, allAggFuncs)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsFolded != 10 {
		t.Fatalf("RowsFolded = %d, want 10", res.RowsFolded)
	}
	if len(res.Windows) != 2 {
		t.Fatalf("windows = %d, want 2 (boundary partials must merge)", len(res.Windows))
	}
	w := res.Windows[1] // [5000,10000), rows 5..9 split 5500 across regions
	if w.Count != 5 || w.Min != 5 || w.Max != 9 || math.Abs(w.Sum-35) > 1e-9 {
		t.Fatalf("boundary window = %+v, want count 5 min 5 max 9 sum 35", w)
	}
	if got := w.Avg(); math.Abs(got-7) > 1e-9 {
		t.Fatalf("boundary window avg = %g, want 7 (must not be mean of means)", got)
	}
}

// TestAggregateTCPMatchesInproc drives the same data through the in-process
// transport and the TCP wire protocol: identical results, including exact
// float round-trips and the count-only fast path.
func TestAggregateTCPMatchesInproc(t *testing.T) {
	split := kvp.Key{Substation: "sub0", Sensor: "sb", Timestamp: 0}.Encode()
	cl, tcpClient := newTCPCluster(t, 3, [][]byte{split})
	inproc, err := cl.NewClient("iot", 0)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	for _, sensor := range []string{"sa", "sb", "sc"} {
		for ts := int64(0); ts < 20_000; ts += 500 {
			k, v := aggKVP(t, "sub0", sensor, ts, math.Round(rng.Float64()*1e4)/100)
			if err := tcpClient.Put(k, v); err != nil {
				t.Fatal(err)
			}
		}
	}

	lo, hi := seriesRange("sub0")
	for _, funcs := range []lsm.AggFuncs{lsm.AggCount, allAggFuncs} {
		got, err := tcpClient.Aggregate(lo, hi, 1000, 19_000, 2500, funcs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := inproc.Aggregate(lo, hi, 1000, 19_000, 2500, funcs)
		if err != nil {
			t.Fatal(err)
		}
		if got.RowsFolded != want.RowsFolded || len(got.Windows) != len(want.Windows) {
			t.Fatalf("funcs %v: tcp folded %d rows / %d windows, inproc %d / %d",
				funcs, got.RowsFolded, len(got.Windows), want.RowsFolded, len(want.Windows))
		}
		for i := range want.Windows {
			g, w := got.Windows[i], want.Windows[i]
			if !bytes.Equal(g.Series, w.Series) || g.WindowStart != w.WindowStart ||
				g.Count != w.Count || g.Min != w.Min || g.Max != w.Max || g.Sum != w.Sum {
				t.Fatalf("funcs %v window %d:\n tcp    %+v\n inproc %+v", funcs, i, g, w)
			}
		}
		if got.RowsFolded == 0 {
			t.Fatalf("funcs %v folded no rows", funcs)
		}
	}
}

// TestAggregateFlushesOnlyOverlappingRegions is the buffered-write
// regression: an aggregate over one region must flush that region's buffer
// (read-your-writes) and must NOT flush a non-overlapping region's buffer.
func TestAggregateFlushesOnlyOverlappingRegions(t *testing.T) {
	cl, _ := newTestCluster(t, 3, [][]byte{[]byte("m")})
	c, err := cl.NewClient("iot", 1<<30) // buffer everything, no autoflush
	if err != nil {
		t.Fatal(err)
	}

	// Buffer kvp rows into the low region ("a...") and plain rows into the
	// high region ("z...").
	for ts := int64(0); ts < 5000; ts += 1000 {
		k, v := aggKVP(t, "aaa", "s0", ts, 1)
		if err := c.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := c.Put([]byte(fmt.Sprintf("z%03d", i)), []byte("high")); err != nil {
			t.Fatal(err)
		}
	}
	before := c.BufferedBytes()
	if before == 0 {
		t.Fatal("writes were not buffered")
	}

	lo, hi := seriesRange("aaa")
	res, err := c.Aggregate(lo, hi, 0, 5000, 0, lsm.AggCount)
	if err != nil {
		t.Fatal(err)
	}
	// Read-your-writes: the aggregate sees the rows buffered for its region.
	if res.RowsFolded != 5 {
		t.Fatalf("RowsFolded = %d, want 5 (own buffered writes must be visible)", res.RowsFolded)
	}
	// The non-overlapping region's batch must still be buffered, untouched.
	tbl, _ := cl.Table("iot")
	highRegion := tbl.RegionFor([]byte("z000"))
	var highBuffered int
	for tr, batch := range c.buffers {
		if tr.info.Name == highRegion {
			highBuffered = len(batch)
		}
	}
	if highBuffered != 4 {
		t.Fatalf("non-overlapping region has %d buffered mutations, want 4 intact", highBuffered)
	}
	if got := c.BufferedBytes(); got == 0 || got >= before {
		t.Fatalf("BufferedBytes = %d (before %d): only the overlapping region may flush", got, before)
	}
	// And its rows are not stored yet.
	if _, found, err := c.Get([]byte("z000")); err != nil {
		t.Fatal(err)
	} else if !found {
		// Get flushes the target region first, so by now it IS found; the
		// real assertion is the buffer count above. Reaching here means the
		// flush-on-read path works too.
		t.Fatal("Get after flush-on-read did not find the row")
	}
}

// TestAggregatePushdownParityUnderIngest is the end-to-end parity property
// (the PR's acceptance test): while concurrent writers ingest into the same
// table — forcing memtable flushes and compactions under a small memtable —
// a pushed-down aggregate over a settled time range must exactly match a
// client-side fold over a streamed scan of the same range, per window and
// per field. Writers only append timestamps above the queried range, so the
// queried windows are immutable while physical storage churns beneath them.
// Run with -race.
func TestAggregatePushdownParityUnderIngest(t *testing.T) {
	split := kvp.Key{Substation: "sub0", Sensor: "sb", Timestamp: 7000}.Encode()
	cl, err := NewCluster(Config{
		Nodes:   3,
		DataDir: t.TempDir(),
		Store:   lsm.Options{WALSync: wal.SyncNever, MemtableSize: 64 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if _, err := cl.CreateTable("iot", [][]byte{split}); err != nil {
		t.Fatal(err)
	}
	c, err := cl.NewClient("iot", 0)
	if err != nil {
		t.Fatal(err)
	}

	// Settled data: sparse, includes empty and single-row windows, and the
	// small memtable spreads it across several SSTable tiers.
	rng := rand.New(rand.NewSource(11))
	const settledMax = int64(30_000)
	sensors := []string{"sa", "sb", "sc"}
	for i := 0; i < 400; i++ {
		sensor := sensors[rng.Intn(len(sensors))]
		ts := int64(rng.Intn(int(settledMax)))
		k, v := aggKVP(t, "sub0", sensor, ts, math.Round(rng.Float64()*1e3)/10)
		if err := c.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}

	// Concurrent ingest: two writers appending strictly above settledMax.
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc, err := cl.NewClient("iot", 32<<10)
			if err != nil {
				t.Error(err)
				return
			}
			defer wc.Close()
			sensor := sensors[w]
			for ts := settledMax + int64(w); ; ts += 2 {
				select {
				case <-done:
					return
				default:
				}
				k, v := aggKVP(t, "sub0", sensor, ts, float64(ts%977))
				if err := wc.Put(k, v); err != nil {
					// Full-rate ingest is allowed to be shed; back off and
					// keep churning — load shedding is not a parity failure.
					if errors.Is(err, ErrOverloaded) {
						time.Sleep(10 * time.Millisecond)
						continue
					}
					t.Error(err)
					return
				}
			}
		}(w)
	}
	t.Cleanup(func() { close(done); wg.Wait() })

	lo, hi := seriesRange("sub0")
	const minTS, maxTS, windowMS = int64(500), int64(29_500), int64(3000)
	for round := 0; round < 8; round++ {
		pushed, err := c.Aggregate(lo, hi, minTS, maxTS, windowMS, allAggFuncs)
		if err != nil {
			t.Fatal(err)
		}

		// Streamed baseline: scan the same range through the chunked scanner
		// and fold client-side.
		sc, err := c.NewScanner(lo, hi, 0)
		if err != nil {
			t.Fatal(err)
		}
		var oracle []lsm.WindowAgg
		var rows int64
		for {
			row, ok, err := sc.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			ts, tsOK := kvp.TimestampOf(row.Key)
			if !tsOK || ts < minTS || ts >= maxTS {
				continue
			}
			series, _ := kvp.SeriesOf(row.Key)
			v, err := kvp.ReadingOf(row.Value)
			if err != nil {
				t.Fatal(err)
			}
			wstart := minTS + (ts-minTS)/windowMS*windowMS
			n := len(oracle)
			if n == 0 || oracle[n-1].WindowStart != wstart || !bytes.Equal(oracle[n-1].Series, series) {
				oracle = append(oracle, lsm.WindowAgg{
					Series:      append([]byte(nil), series...),
					WindowStart: wstart,
					Min:         math.Inf(1),
					Max:         math.Inf(-1),
				})
				n++
			}
			ow := &oracle[n-1]
			ow.Count++
			if v < ow.Min {
				ow.Min = v
			}
			if v > ow.Max {
				ow.Max = v
			}
			ow.Sum += v
			rows++
		}
		if err := sc.Close(); err != nil {
			t.Fatal(err)
		}

		if pushed.RowsFolded != rows || len(pushed.Windows) != len(oracle) {
			t.Fatalf("round %d: pushed %d rows / %d windows, streamed %d / %d",
				round, pushed.RowsFolded, len(pushed.Windows), rows, len(oracle))
		}
		for i := range oracle {
			g, w := pushed.Windows[i], oracle[i]
			if !bytes.Equal(g.Series, w.Series) || g.WindowStart != w.WindowStart ||
				g.Count != w.Count || g.Min != w.Min || g.Max != w.Max ||
				math.Abs(g.Sum-w.Sum) > 1e-6 {
				t.Fatalf("round %d window %d:\n pushed   %+v\n streamed %+v", round, i, g, w)
			}
		}
		if rows == 0 {
			t.Fatal("settled range folded no rows; test data broken")
		}
	}
}

// TestAggregateCounters verifies the server-side aggregation telemetry:
// hbase.agg_queries counts RPCs (one per overlapping region), agg_rows_folded
// counts rows reduced server-side, agg_windows counts returned partials.
func TestAggregateCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	cl, err := NewCluster(Config{
		Nodes:    3,
		DataDir:  t.TempDir(),
		Store:    lsm.Options{WALSync: wal.SyncNever},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.CreateTable("iot", nil); err != nil {
		t.Fatal(err)
	}
	c, err := cl.NewClient("iot", 0)
	if err != nil {
		t.Fatal(err)
	}
	for ts := int64(0); ts < 10_000; ts += 1000 {
		k, v := aggKVP(t, "sub0", "sa", ts, 1)
		if err := c.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	lo, hi := seriesRange("sub0")
	res, err := c.Aggregate(lo, hi, 0, 10_000, 5000, allAggFuncs)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsFolded != 10 || len(res.Windows) != 2 {
		t.Fatalf("res = %d rows / %d windows, want 10 / 2", res.RowsFolded, len(res.Windows))
	}
	if got := reg.Counter("hbase.agg_queries").Load(); got != 1 {
		t.Fatalf("hbase.agg_queries = %d, want 1", got)
	}
	if got := reg.Counter("hbase.agg_rows_folded").Load(); got != 10 {
		t.Fatalf("hbase.agg_rows_folded = %d, want 10", got)
	}
	if got := reg.Counter("hbase.agg_windows").Load(); got != 2 {
		t.Fatalf("hbase.agg_windows = %d, want 2", got)
	}
}

func TestAggregateBadWindowAndClosedClient(t *testing.T) {
	_, c := newTestCluster(t, 3, nil)
	k, v := aggKVP(t, "sub0", "sa", 1000, 5)
	if err := c.Put(k, v); err != nil {
		t.Fatal(err)
	}
	lo, hi := seriesRange("sub0")
	if _, err := c.Aggregate(lo, hi, 0, 10_000, -5, allAggFuncs); err == nil {
		t.Fatal("negative window accepted")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Aggregate(lo, hi, 0, 10_000, 0, allAggFuncs); err != ErrClientClosed {
		t.Fatalf("closed client: %v, want ErrClientClosed", err)
	}
}
