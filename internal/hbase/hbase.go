// Package hbase implements a miniature HBase-style cluster: the System
// Under Test of the live TPCx-IoT benchmark.
//
// The cluster consists of N region servers, each hosting key-range regions
// backed by the LSM engine (WAL + memstore + store files). A table's
// keyspace is pre-split into regions; each region is replicated three ways
// across distinct servers through a synchronous pipeline, which is what the
// benchmark driver's data-replication prerequisite check verifies. Clients
// buffer writes per region server (hbase.client.write.buffer) and flush
// them as batched RPCs; every server bounds concurrent request processing
// with a handler pool (hbase.regionserver.handler.count).
//
// The cluster runs in-process: an RPC is a handler-gated method call. The
// companion testbed package models the paper's physical clusters instead;
// this package is the real, durable engine used by the CLI, the examples,
// and laptop-scale shape checks.
package hbase

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"tpcxiot/internal/lsm"
	"tpcxiot/internal/region"
	"tpcxiot/internal/replication"
	"tpcxiot/internal/telemetry"
)

// Sentinel errors.
var (
	ErrBadConfig     = errors.New("hbase: invalid configuration")
	ErrTableExists   = errors.New("hbase: table already exists")
	ErrNoSuchTable   = errors.New("hbase: no such table")
	ErrClusterClosed = errors.New("hbase: cluster is closed")
	ErrBadSplits     = errors.New("hbase: split keys not strictly ascending")
)

// Config describes a cluster.
type Config struct {
	// Nodes is the number of region servers. Must be at least
	// ReplicationFactor. The paper evaluates 2, 4 and 8 nodes (with the
	// 2-node minimum imposed by replication in the real kit; our in-process
	// replicas are stores, so the factor bounds Nodes here too).
	Nodes int
	// ReplicationFactor is the synchronous copy count. Defaults to 3.
	ReplicationFactor int
	// HandlerCount bounds concurrently executing requests per server
	// (hbase.regionserver.handler.count). Defaults to 32.
	HandlerCount int
	// QuorumAcks is how many replication members (always including the
	// primary) must durably apply a write before it is acknowledged.
	// 0 selects the majority, ⌈(factor+1)/2⌉; set it to
	// ReplicationFactor for the legacy full-fan-out ack.
	QuorumAcks int
	// CatchUpQueue bounds each member's straggler catch-up queue in
	// batches; a full queue sheds writes with ErrOverloaded. Defaults to
	// replication.DefaultMaxQueue.
	CatchUpQueue int
	// ShedWatermark is how many mutate requests may queue for a handler
	// slot per server before further mutates are shed with ErrOverloaded.
	// 0 selects 4×HandlerCount; negative disables shedding (mutates block,
	// the pre-admission-control behavior). Reads never shed.
	ShedWatermark int
	// RetryMax is how many times a client retries a shed mutate before
	// surfacing ErrOverloaded. 0 selects 5; negative disables retries.
	RetryMax int
	// RetryBaseDelay seeds the client's capped exponential backoff with
	// jitter (doubling per attempt, floored at the server's retry-after
	// hint). Defaults to 1ms.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the backoff. Defaults to 100ms.
	RetryMaxDelay time.Duration
	// MemberWrapper, when non-nil, wraps each replication pipeline member
	// as the group is built — the fault-injection hook saturation
	// benchmarks and straggler tests use to slow or block one replica.
	// memberIdx 0 is the primary.
	MemberWrapper func(regionName string, memberIdx int, app replication.Applier) replication.Applier
	// ScannerLeaseTimeout bounds how long an idle scanner session survives
	// between next calls before the server reclaims it
	// (hbase.client.scanner.timeout.period). Defaults to 60s.
	ScannerLeaseTimeout time.Duration
	// DataDir is the root directory for all stores. Required.
	DataDir string
	// Store is the per-region LSM configuration (Dir is set internally).
	Store lsm.Options
	// Registry, when non-nil, collects cluster-wide telemetry: it is handed
	// to every region's LSM store (and through it the WAL), to replication
	// groups ("replication.acks"), to clients ("hbase.buffer_flushes",
	// "put.client_flush") and to splits ("region.splits").
	Registry *telemetry.Registry
	// Tracer, when non-nil, samples client operations into distributed
	// traces: each sampled Put/Get/scan chunk yields one span tree covering
	// client, RPC, server, region, LSM, WAL and replication work. Nil
	// disables tracing entirely (zero per-op cost).
	Tracer *telemetry.Tracer
	// Logger, when non-nil, receives structured events from every region's
	// engine (WAL replay warnings, flush/compaction failures). It is copied
	// into Store.Logger unless one is already set.
	Logger *telemetry.Logger
}

func (c Config) withDefaults() (Config, error) {
	if c.DataDir == "" {
		return c, fmt.Errorf("%w: DataDir is required", ErrBadConfig)
	}
	if c.ReplicationFactor == 0 {
		c.ReplicationFactor = replication.DefaultFactor
	}
	if c.ReplicationFactor < 1 {
		return c, fmt.Errorf("%w: replication factor %d", ErrBadConfig, c.ReplicationFactor)
	}
	if c.Nodes <= 0 {
		c.Nodes = c.ReplicationFactor
	}
	if c.Nodes < c.ReplicationFactor {
		return c, fmt.Errorf("%w: %d nodes cannot hold %d replicas",
			ErrBadConfig, c.Nodes, c.ReplicationFactor)
	}
	if c.HandlerCount <= 0 {
		c.HandlerCount = 32
	}
	if c.QuorumAcks == 0 {
		c.QuorumAcks = replication.MajorityQuorum(c.ReplicationFactor)
	}
	if c.QuorumAcks < 1 || c.QuorumAcks > c.ReplicationFactor {
		return c, fmt.Errorf("%w: quorum %d with replication factor %d",
			ErrBadConfig, c.QuorumAcks, c.ReplicationFactor)
	}
	if c.CatchUpQueue <= 0 {
		c.CatchUpQueue = replication.DefaultMaxQueue
	}
	if c.ShedWatermark == 0 {
		c.ShedWatermark = 4 * c.HandlerCount
	}
	if c.RetryMax == 0 {
		c.RetryMax = 5
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = 100 * time.Millisecond
	}
	if c.ScannerLeaseTimeout <= 0 {
		c.ScannerLeaseTimeout = 60 * time.Second
	}
	if c.Store.Registry == nil {
		c.Store.Registry = c.Registry
	}
	if c.Store.Logger == nil {
		c.Store.Logger = c.Logger
	}
	return c, nil
}

// Cluster is the SUT: a set of region servers plus the master metadata.
type Cluster struct {
	cfg Config

	mu      sync.RWMutex
	servers []*RegionServer
	tables  map[string]*Table
	tcp     *tcpState
	closed  bool
}

// Table is the cluster-side routing state for one table.
type Table struct {
	name    string
	splits  [][]byte       // region boundaries, ascending; len = len(regions)-1
	regions []*tableRegion // ordered by key range
}

// tableRegion binds a key range to its primary server and replication group.
type tableRegion struct {
	info    region.Info
	primary *RegionServer
	group   *replication.Group
	// replicas holds every hosted copy (primary first) for teardown.
	replicas []*region.Region
}

// NewCluster starts an in-process cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(c.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("hbase: create data dir: %w", err)
	}
	cl := &Cluster{cfg: c, tables: make(map[string]*Table)}
	for i := 0; i < c.Nodes; i++ {
		cl.servers = append(cl.servers, newRegionServer(i,
			filepath.Join(c.DataDir, fmt.Sprintf("node-%02d", i)),
			c.HandlerCount, c.ShedWatermark, c.ScannerLeaseTimeout, c.Registry))
	}
	if c.Registry != nil {
		// Live pipeline gauges: the deepest straggler catch-up queue and the
		// worst member lag behind the quorum watermark, across every region.
		c.Registry.Gauge("replication.catchup_depth", func() int64 {
			var max int64
			for _, g := range cl.groups() {
				if d := int64(g.MaxQueueDepth()); d > max {
					max = d
				}
			}
			return max
		})
		c.Registry.Gauge("replication.quorum_lag", func() int64 {
			var max int64
			for _, g := range cl.groups() {
				if l := int64(g.QuorumLag()); l > max {
					max = l
				}
			}
			return max
		})
	}
	return cl, nil
}

// NodeCount returns the number of region servers.
func (cl *Cluster) NodeCount() int { return cl.cfg.Nodes }

// ReplicationFactor returns the configured synchronous copy count. The
// benchmark driver's prerequisite check calls this.
func (cl *Cluster) ReplicationFactor() int { return cl.cfg.ReplicationFactor }

// Servers returns the region servers, for stats collection.
func (cl *Cluster) Servers() []*RegionServer {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	return append([]*RegionServer(nil), cl.servers...)
}

// CreateTable creates a table pre-split at the given keys. With k split
// keys the table has k+1 regions; nil splits yield a single region. Regions
// are assigned round-robin with chained replica placement.
func (cl *Cluster) CreateTable(name string, splits [][]byte) (*Table, error) {
	for i := 1; i < len(splits); i++ {
		if bytes.Compare(splits[i-1], splits[i]) >= 0 {
			return nil, fmt.Errorf("%w: %q then %q", ErrBadSplits, splits[i-1], splits[i])
		}
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return nil, ErrClusterClosed
	}
	if _, ok := cl.tables[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrTableExists, name)
	}

	t := &Table{name: name}
	for _, s := range splits {
		t.splits = append(t.splits, append([]byte(nil), s...))
	}

	nRegions := len(splits) + 1
	for i := 0; i < nRegions; i++ {
		info := region.Info{
			Table: name,
			Name:  fmt.Sprintf("%s,%05d", name, i),
		}
		if i > 0 {
			info.StartKey = t.splits[i-1]
		}
		if i < len(t.splits) {
			info.EndKey = t.splits[i]
		}
		placement, err := replication.Placement(i, cl.cfg.Nodes, cl.cfg.ReplicationFactor)
		if err != nil {
			cl.destroyTableLocked(t)
			return nil, err
		}
		tr := &tableRegion{info: info, primary: cl.servers[placement[0]]}
		var appliers []replication.Applier
		for _, nodeIdx := range placement {
			srv := cl.servers[nodeIdx]
			r, err := srv.openRegion(info, cl.cfg.Store)
			if err != nil {
				cl.destroyTableLocked(t)
				return nil, err
			}
			tr.replicas = append(tr.replicas, r)
			// The region (not its bare store) is the pipeline member, so
			// every replica bounds-checks what it applies — one pass per
			// batch on the batched path.
			appliers = append(appliers, r)
		}
		tr.group = cl.newGroup(info.Name, appliers)
		t.regions = append(t.regions, tr)
	}
	cl.tables[name] = t
	return t, nil
}

// newGroup builds one region's replication pipeline from the cluster
// config: quorum and queue bound from Config, the fault-injection wrapper
// applied per member, and the group's instruments resolved.
func (cl *Cluster) newGroup(regionName string, appliers []replication.Applier) *replication.Group {
	if w := cl.cfg.MemberWrapper; w != nil {
		wrapped := make([]replication.Applier, len(appliers))
		for i, app := range appliers {
			wrapped[i] = w(regionName, i, app)
		}
		appliers = wrapped
	}
	g := replication.NewGroupOptions(replication.Options{
		Quorum:   cl.cfg.QuorumAcks,
		MaxQueue: cl.cfg.CatchUpQueue,
	}, appliers[0], appliers[1:]...)
	g.Instrument(cl.cfg.Registry)
	return g
}

// groups snapshots every live replication group with its region name.
func (cl *Cluster) groups() map[string]*replication.Group {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	out := make(map[string]*replication.Group)
	for _, t := range cl.tables {
		for _, tr := range t.regions {
			out[tr.info.Name] = tr.group
		}
	}
	return out
}

// Quiesce blocks until every region's stragglers have caught up (all
// catch-up queues drained) — the settle point for tests, benchmarks, and
// teardown that must observe fully converged replicas.
func (cl *Cluster) Quiesce() error {
	var firstErr error
	for _, g := range cl.groups() {
		if err := g.Quiesce(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Table returns routing state for an existing table.
func (cl *Cluster) Table(name string) (*Table, error) {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	if cl.closed {
		return nil, ErrClusterClosed
	}
	t, ok := cl.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	return t, nil
}

// DropTable destroys a table and all replica data. This is the "purge all
// ingested data" step of the benchmark's system cleanup.
func (cl *Cluster) DropTable(name string) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return ErrClusterClosed
	}
	t, ok := cl.tables[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	delete(cl.tables, name)
	return cl.destroyTableLocked(t)
}

func (cl *Cluster) destroyTableLocked(t *Table) error {
	var firstErr error
	for _, tr := range t.regions {
		// Stop the pipeline first: stragglers drain (or are abandoned on a
		// dead member) before the stores go away underneath them.
		if tr.group != nil {
			tr.group.Close()
		}
		for _, r := range tr.replicas {
			if err := r.Destroy(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		for _, srv := range cl.servers {
			srv.forgetRegion(tr.info.Name)
		}
	}
	return firstErr
}

// Close shuts down every region on every server.
func (cl *Cluster) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return nil
	}
	cl.closed = true
	cl.stopTCPLocked()
	var firstErr error
	for _, t := range cl.tables {
		for _, tr := range t.regions {
			// Drain each pipeline before closing its stores: quorum-acked
			// batches still in a straggler's catch-up queue reach disk, so a
			// clean shutdown leaves every replica converged.
			if tr.group != nil {
				if err := tr.group.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			for _, r := range tr.replicas {
				if err := r.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	return firstErr
}

// RegionCount returns the number of regions in the table.
func (t *Table) RegionCount() int { return len(t.regions) }

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// locate returns the region whose range contains key.
func (t *Table) locate(key []byte) *tableRegion {
	// First split greater than key identifies the region index.
	idx := sort.Search(len(t.splits), func(i int) bool {
		return bytes.Compare(key, t.splits[i]) < 0
	})
	return t.regions[idx]
}

// RegionFor reports the region name covering key, for observability.
func (t *Table) RegionFor(key []byte) string { return t.locate(key).info.Name }
