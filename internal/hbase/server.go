package hbase

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tpcxiot/internal/lsm"
	"tpcxiot/internal/region"
	"tpcxiot/internal/replication"
	"tpcxiot/internal/telemetry"
)

// ErrUnknownScanner is returned by next/close for a scanner id the server
// does not hold — never issued, already exhausted, or reclaimed by lease
// expiry.
var ErrUnknownScanner = errors.New("hbase: unknown scanner (closed or lease expired)")

// ErrOverloaded is the retryable load-shed sentinel: the server refused a
// mutate because its handler queue or a replication catch-up queue exceeded
// its watermark. Match with errors.Is; the concrete *OverloadedError
// carries the retry-after hint.
var ErrOverloaded = errors.New("hbase: server overloaded")

// OverloadedError is the typed retryable error a load-shed returns:
// errors.Is(err, ErrOverloaded) identifies it, RetryAfter hints how long
// the client should back off before retrying. It crosses the TCP protocol
// as a dedicated status frame, so remote clients see the same type.
type OverloadedError struct {
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("hbase: server overloaded, retry after %s", e.RetryAfter)
}

func (e *OverloadedError) Unwrap() error { return ErrOverloaded }

// RegionServer hosts region replicas and bounds request concurrency with a
// handler pool, mirroring hbase.regionserver.handler.count.
type RegionServer struct {
	id       int
	dir      string
	service  string // trace-span service label, e.g. "server-2"
	handlers chan struct{}

	// Admission control: mutates queueing for a handler slot beyond
	// shedWatermark are refused with a retryable OverloadedError instead of
	// blocking without bound. shedWatermark < 0 disables shedding.
	shedWatermark int
	waiting       atomic.Int64 // mutates currently queued for a slot
	sheds         atomic.Int64 // mutates refused
	shedStreak    atomic.Int64 // consecutive sheds since the last admit

	mu      sync.RWMutex
	regions map[string]*region.Region // every replica hosted here

	// Scanner sessions: long-lived server-side scanners (HBase's
	// RegionScanner), each pinning an LSM snapshot. Sessions are leased;
	// ones a client abandons are reclaimed on the next sweep.
	scanMu     sync.Mutex
	scanners   map[uint64]*scannerSession
	nextScanID uint64
	leaseDur   time.Duration

	requests  atomic.Int64
	mutations atomic.Int64
	rowsRead  atomic.Int64

	met serverMetrics
}

// serverMetrics holds the read-path instruments, resolved once at server
// construction. All nil-safe.
type serverMetrics struct {
	scannerOpens  *telemetry.Counter // hbase.scanner_opens
	scanChunks    *telemetry.Counter // hbase.scan_chunks
	rowsStreamed  *telemetry.Counter // hbase.scan_rows_streamed
	leaseExpiries *telemetry.Counter // hbase.scanner_lease_expiries
	nextSpan      *telemetry.Timer   // scan.next: one chunk fetch

	// Per-server tagged variants ({server=N}) of the scan counters, so the
	// registry can break the read path down per region server. The untagged
	// instruments above remain the cluster-wide roll-up.
	scanChunksTagged   *telemetry.Counter
	rowsStreamedTagged *telemetry.Counter

	// Admission-control instruments.
	shedsC      *telemetry.Counter // hbase.sheds: mutates refused under overload
	shedsTagged *telemetry.Counter // hbase.sheds{server=N}

	// Aggregation-pushdown instruments: queries served, rows folded into
	// partial aggregates inside the server (rows that never crossed the
	// wire), and window partials returned. aggSpan times one server-side
	// fold ("agg.fold" in the trace tree).
	aggQueries    *telemetry.Counter // hbase.agg_queries
	aggRowsFolded *telemetry.Counter // hbase.agg_rows_folded
	aggWindows    *telemetry.Counter // hbase.agg_windows
	aggSpan       *telemetry.Timer   // agg.fold: one region fold

	aggQueriesTagged    *telemetry.Counter
	aggRowsFoldedTagged *telemetry.Counter
}

// scannerSession is one open server-side scanner. While a next call is
// advancing it, the session is checked out of the table, so the lease
// sweeper never closes an iterator mid-use; the single-caller client
// contract means no second next for the same id runs concurrently.
type scannerSession struct {
	id        uint64
	it        *lsm.Iter
	limited   bool
	remaining int // rows the scan may still return; meaningful when limited
	deadline  time.Time
}

// ServerStats is a snapshot of one server's counters.
type ServerStats struct {
	ID           int
	Regions      int
	Requests     int64
	Mutations    int64
	RowsRead     int64
	OpenScanners int
	// Sheds counts mutates refused under overload; ShedStreak is the run of
	// consecutive sheds since the last mutate that was admitted and applied
	// — the sustained-overload signal /healthz keys its 503 on.
	Sheds      int64
	ShedStreak int64
}

func newRegionServer(id int, dir string, handlerCount, shedWatermark int, leaseDur time.Duration, reg *telemetry.Registry) *RegionServer {
	serverTag := telemetry.Tag{Key: "server", Value: strconv.Itoa(id)}
	return &RegionServer{
		id:            id,
		dir:           dir,
		service:       "server-" + strconv.Itoa(id),
		handlers:      make(chan struct{}, handlerCount),
		shedWatermark: shedWatermark,
		regions:       make(map[string]*region.Region),
		scanners:      make(map[uint64]*scannerSession),
		leaseDur:      leaseDur,
		met: serverMetrics{
			scannerOpens:       reg.Counter("hbase.scanner_opens"),
			scanChunks:         reg.Counter("hbase.scan_chunks"),
			rowsStreamed:       reg.Counter("hbase.scan_rows_streamed"),
			leaseExpiries:      reg.Counter("hbase.scanner_lease_expiries"),
			nextSpan:           reg.Timer("scan.next"),
			scanChunksTagged:   reg.CounterTagged("hbase.scan_chunks", serverTag),
			rowsStreamedTagged: reg.CounterTagged("hbase.scan_rows_streamed", serverTag),
			shedsC:             reg.Counter("hbase.sheds"),
			shedsTagged:        reg.CounterTagged("hbase.sheds", serverTag),

			aggQueries:          reg.Counter("hbase.agg_queries"),
			aggRowsFolded:       reg.Counter("hbase.agg_rows_folded"),
			aggWindows:          reg.Counter("hbase.agg_windows"),
			aggSpan:             reg.Timer("agg.fold"),
			aggQueriesTagged:    reg.CounterTagged("hbase.agg_queries", serverTag),
			aggRowsFoldedTagged: reg.CounterTagged("hbase.agg_rows_folded", serverTag),
		},
	}
}

// ID returns the server's index in the cluster.
func (s *RegionServer) ID() int { return s.id }

// acquire blocks until a handler is free; release returns it.
func (s *RegionServer) acquire() { s.handlers <- struct{}{} }
func (s *RegionServer) release() { <-s.handlers }

// admit is acquire with load shedding, used by the write path: a free
// handler slot is always taken, but once shedWatermark mutates are already
// queued the request is refused with a retryable OverloadedError instead of
// deepening the queue. The retry-after hint scales with the queue depth,
// spreading the retry herd.
func (s *RegionServer) admit() error {
	select {
	case s.handlers <- struct{}{}:
		return nil
	default:
	}
	waiting := s.waiting.Load()
	if s.shedWatermark >= 0 && waiting >= int64(s.shedWatermark) {
		return s.shed(waiting)
	}
	s.waiting.Add(1)
	s.handlers <- struct{}{}
	s.waiting.Add(-1)
	return nil
}

// shed records one refused mutate and builds its typed retryable error.
func (s *RegionServer) shed(depth int64) error {
	s.sheds.Add(1)
	s.shedStreak.Add(1)
	s.met.shedsC.Inc()
	s.met.shedsTagged.Inc()
	hint := time.Duration(depth+1) * time.Millisecond
	if hint > 50*time.Millisecond {
		hint = 50 * time.Millisecond
	}
	return &OverloadedError{RetryAfter: hint}
}

// openRegion creates or reopens a region replica on this server. The
// replica's store registers its instruments under {region=..., server=...}
// tags in addition to the cluster-wide roll-up.
func (s *RegionServer) openRegion(info region.Info, storeOpts lsm.Options) (*region.Region, error) {
	storeOpts.Tags = []telemetry.Tag{
		{Key: "region", Value: info.Name},
		{Key: "server", Value: strconv.Itoa(s.id)},
	}
	r, err := region.Open(info, s.dir, storeOpts)
	if err != nil {
		return nil, fmt.Errorf("hbase: server %d: %w", s.id, err)
	}
	s.mu.Lock()
	s.regions[info.Name] = r
	s.mu.Unlock()
	return r, nil
}

// forgetRegion drops the routing entry for a destroyed region.
func (s *RegionServer) forgetRegion(name string) {
	s.mu.Lock()
	delete(s.regions, name)
	s.mu.Unlock()
}

// Regions returns the replicas hosted on this server, sorted by region
// name, for introspection (the cluster's /storage and /healthz documents).
func (s *RegionServer) Regions() []*region.Region {
	s.mu.RLock()
	out := make([]*region.Region, 0, len(s.regions))
	for _, r := range s.regions {
		out = append(out, r)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Info().Name < out[j].Info().Name })
	return out
}

// Mutation is one write in a batched RPC. It is an alias for the engine's
// batch element, so a client batch flows through replication into the LSM
// stores without per-layer conversion or copying.
type Mutation = lsm.Write

// mutate is the server-side write RPC: the whole batch executes under one
// handler slot and ships through the region's replication group as a single
// batched round — one WAL group append and one memtable critical section
// per replica, with the replica fan-out running in parallel.
func (s *RegionServer) mutate(g *replication.Group, batch []Mutation) error {
	return s.mutateTraced(g, batch, telemetry.TSpan{})
}

// mutateTraced is mutate under a trace span: the RPC appears as a
// "server.mutate" span in this server's service, with a
// "server.handler_wait" child covering time queued for a handler slot and
// the replication/engine spans beneath.
func (s *RegionServer) mutateTraced(g *replication.Group, batch []Mutation, parent telemetry.TSpan) error {
	sp := parent.ChildIn(s.service, "server.mutate")
	defer sp.End()
	waitSp := sp.Child("server.handler_wait")
	if err := s.admit(); err != nil {
		waitSp.End()
		return err
	}
	waitSp.End()
	defer s.release()
	s.requests.Add(1)
	if err := g.ApplyBatchTraced(sp, batch); err != nil {
		// A full catch-up queue is the replication layer's overload signal:
		// surface it as the same retryable shed the handler queue produces.
		if errors.Is(err, replication.ErrCatchUpFull) {
			return s.shed(int64(g.MaxQueueDepth()))
		}
		return err
	}
	s.mutations.Add(int64(len(batch)))
	// A mutate that was admitted AND applied ends any shed streak — the
	// streak measures sheds with no successful write in between, whichever
	// layer (handler queue or catch-up queue) produced them.
	s.shedStreak.Store(0)
	return nil
}

// get is the server-side point-read RPC, served from the primary replica.
func (s *RegionServer) get(r *region.Region, key []byte) ([]byte, bool, error) {
	return s.getTraced(r, key, telemetry.TSpan{})
}

// getTraced is get under a trace span ("server.get").
func (s *RegionServer) getTraced(r *region.Region, key []byte, parent telemetry.TSpan) ([]byte, bool, error) {
	sp := parent.ChildIn(s.service, "server.get")
	defer sp.End()
	waitSp := sp.Child("server.handler_wait")
	s.acquire()
	waitSp.End()
	defer s.release()
	s.requests.Add(1)
	v, ok, err := r.Get(key)
	if ok {
		s.rowsRead.Add(1)
	}
	return v, ok, err
}

// Row is one key-value pair returned by a scan chunk. Rows are owned
// copies, safe to retain.
type Row struct {
	Key   []byte
	Value []byte
}

// openScanner is the scanner-session open RPC: it pins an LSM snapshot over
// [lo, hi) on the region and registers a leased session. limit <= 0 means
// unlimited. The scanner id is only meaningful on this server.
func (s *RegionServer) openScanner(r *region.Region, lo, hi []byte, limit int) (uint64, error) {
	return s.openScannerTraced(r, lo, hi, limit, telemetry.TSpan{})
}

// openScannerTraced is openScanner under a trace span ("server.scan_open").
func (s *RegionServer) openScannerTraced(r *region.Region, lo, hi []byte, limit int, parent telemetry.TSpan) (uint64, error) {
	sp := parent.ChildIn(s.service, "server.scan_open")
	defer sp.End()
	waitSp := sp.Child("server.handler_wait")
	s.acquire()
	waitSp.End()
	defer s.release()
	s.requests.Add(1)
	it, err := r.NewIterator(lo, hi)
	if err != nil {
		return 0, err
	}
	sess := &scannerSession{it: it, limited: limit > 0, remaining: limit}
	s.scanMu.Lock()
	s.sweepExpiredLocked(time.Now())
	s.nextScanID++
	sess.id = s.nextScanID
	sess.deadline = time.Now().Add(s.leaseDur)
	s.scanners[sess.id] = sess
	s.scanMu.Unlock()
	s.met.scannerOpens.Inc()
	return sess.id, nil
}

// next is the scanner-session read RPC: it returns up to chunk rows under
// ONE handler slot — a long scan occupies a handler per chunk, not for its
// whole lifetime, so concurrent ingest keeps flowing between chunks.
// more=false means the scan is finished (bound, limit or error) and the
// server has already closed the session.
func (s *RegionServer) next(id uint64, chunk int) (rows []Row, more bool, err error) {
	return s.nextTraced(id, chunk, telemetry.TSpan{})
}

// nextTraced is next under a trace span ("server.scan_next").
func (s *RegionServer) nextTraced(id uint64, chunk int, parent telemetry.TSpan) (rows []Row, more bool, err error) {
	tsp := parent.ChildIn(s.service, "server.scan_next")
	defer tsp.End()
	waitSp := tsp.Child("server.handler_wait")
	s.acquire()
	waitSp.End()
	defer s.release()
	s.requests.Add(1)
	sp := s.met.nextSpan.Start()
	defer sp.End()
	if chunk <= 0 {
		chunk = defaultScanChunk
	}

	sess, err := s.checkoutScanner(id)
	if err != nil {
		return nil, false, err
	}
	if sess.limited && chunk > sess.remaining {
		chunk = sess.remaining
	}

	// Copy once at the ownership boundary: the iterator's slices are only
	// valid until its next advance, so each key/value is appended to a
	// per-chunk arena the returned rows alias — one copy, one allocation,
	// per chunk (plus the row headers).
	it := sess.it
	var (
		arena []byte
		meta  []int // interleaved key/value lengths
	)
	n := 0
	for it.Valid() && n < chunk {
		arena = append(arena, it.Key()...)
		arena = append(arena, it.Value()...)
		meta = append(meta, len(it.Key()), len(it.Value()))
		n++
		it.Next()
	}
	rows = make([]Row, n)
	off := 0
	for i := 0; i < n; i++ {
		kl, vl := meta[2*i], meta[2*i+1]
		rows[i] = Row{
			Key:   arena[off : off+kl : off+kl],
			Value: arena[off+kl : off+kl+vl : off+kl+vl],
		}
		off += kl + vl
	}

	if sess.limited {
		sess.remaining -= n
	}
	iterErr := it.Error()
	finished := iterErr != nil || !it.Valid() || (sess.limited && sess.remaining <= 0)
	if finished {
		it.Close()
	} else {
		s.checkinScanner(sess)
	}

	s.rowsRead.Add(int64(n))
	s.met.scanChunks.Inc()
	s.met.rowsStreamed.Add(int64(n))
	s.met.scanChunksTagged.Inc()
	s.met.rowsStreamedTagged.Add(int64(n))
	return rows, !finished, iterErr
}

// aggregate is the server-side aggregation RPC: one handler slot covers the
// whole fold, which runs inside the region against a snapshot-pinned
// iterator with file-level key/time/Bloom pruning, and only the per-window
// partials come back — the rows are reduced where they live. Reads take
// acquire (never shed), consistent with get and the scanner RPCs.
func (s *RegionServer) aggregate(r *region.Region, lo, hi []byte, minTS, maxTS, windowMS int64, funcs lsm.AggFuncs) (lsm.AggResult, error) {
	return s.aggregateTraced(r, lo, hi, minTS, maxTS, windowMS, funcs, telemetry.TSpan{})
}

// aggregateTraced is aggregate under a trace span: the RPC appears as
// "server.aggregate" in this server's service with the handler wait and the
// fold ("agg.fold") as children.
func (s *RegionServer) aggregateTraced(r *region.Region, lo, hi []byte, minTS, maxTS, windowMS int64, funcs lsm.AggFuncs, parent telemetry.TSpan) (lsm.AggResult, error) {
	tsp := parent.ChildIn(s.service, "server.aggregate")
	defer tsp.End()
	waitSp := tsp.Child("server.handler_wait")
	s.acquire()
	waitSp.End()
	defer s.release()
	s.requests.Add(1)

	foldSp := tsp.Child("agg.fold")
	sp := s.met.aggSpan.Start()
	res, err := r.AggregateTime(lo, hi, minTS, maxTS, windowMS, funcs)
	sp.End()
	foldSp.End()
	if err != nil {
		return lsm.AggResult{}, err
	}
	s.rowsRead.Add(res.RowsFolded)
	s.met.aggQueries.Inc()
	s.met.aggRowsFolded.Add(res.RowsFolded)
	s.met.aggWindows.Add(int64(len(res.Windows)))
	s.met.aggQueriesTagged.Inc()
	s.met.aggRowsFoldedTagged.Add(res.RowsFolded)
	return res, nil
}

// closeScanner is the scanner-session close RPC. Closing an id the server
// no longer holds (already exhausted, or lease-reclaimed) is a no-op:
// close is how clients abandon scans, and the race with expiry is benign.
func (s *RegionServer) closeScanner(id uint64) error {
	s.acquire()
	defer s.release()
	s.requests.Add(1)
	sess, err := s.checkoutScanner(id)
	if err != nil {
		return nil
	}
	return sess.it.Close()
}

// checkoutScanner removes the session from the table for exclusive use;
// callers must check it back in (or close it) before returning.
func (s *RegionServer) checkoutScanner(id uint64) (*scannerSession, error) {
	s.scanMu.Lock()
	defer s.scanMu.Unlock()
	s.sweepExpiredLocked(time.Now())
	sess, ok := s.scanners[id]
	if !ok {
		return nil, ErrUnknownScanner
	}
	delete(s.scanners, id)
	return sess, nil
}

// checkinScanner returns a checked-out session with a renewed lease.
func (s *RegionServer) checkinScanner(sess *scannerSession) {
	s.scanMu.Lock()
	sess.deadline = time.Now().Add(s.leaseDur)
	s.scanners[sess.id] = sess
	s.scanMu.Unlock()
}

// sweepExpiredLocked reclaims sessions whose lease lapsed, releasing their
// pinned snapshots. Caller holds scanMu. The sweep runs on every scanner
// RPC, so an abandoned scanner survives at most one lease period past the
// next scanner activity on the server.
func (s *RegionServer) sweepExpiredLocked(now time.Time) {
	for id, sess := range s.scanners {
		if now.After(sess.deadline) {
			sess.it.Close()
			delete(s.scanners, id)
			s.met.leaseExpiries.Inc()
		}
	}
}

// OpenScannerCount reports live scanner sessions, for tests and stats.
func (s *RegionServer) OpenScannerCount() int {
	s.scanMu.Lock()
	defer s.scanMu.Unlock()
	return len(s.scanners)
}

// Stats snapshots the server's counters.
func (s *RegionServer) Stats() ServerStats {
	s.mu.RLock()
	regions := len(s.regions)
	s.mu.RUnlock()
	return ServerStats{
		ID:           s.id,
		Regions:      regions,
		Requests:     s.requests.Load(),
		Mutations:    s.mutations.Load(),
		RowsRead:     s.rowsRead.Load(),
		OpenScanners: s.OpenScannerCount(),
		Sheds:        s.sheds.Load(),
		ShedStreak:   s.shedStreak.Load(),
	}
}
