package hbase

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tpcxiot/internal/lsm"
	"tpcxiot/internal/region"
	"tpcxiot/internal/replication"
)

// RegionServer hosts region replicas and bounds request concurrency with a
// handler pool, mirroring hbase.regionserver.handler.count.
type RegionServer struct {
	id       int
	dir      string
	handlers chan struct{}

	mu      sync.RWMutex
	regions map[string]*region.Region // every replica hosted here

	requests  atomic.Int64
	mutations atomic.Int64
	rowsRead  atomic.Int64
}

// ServerStats is a snapshot of one server's counters.
type ServerStats struct {
	ID        int
	Regions   int
	Requests  int64
	Mutations int64
	RowsRead  int64
}

func newRegionServer(id int, dir string, handlerCount int) *RegionServer {
	return &RegionServer{
		id:       id,
		dir:      dir,
		handlers: make(chan struct{}, handlerCount),
		regions:  make(map[string]*region.Region),
	}
}

// ID returns the server's index in the cluster.
func (s *RegionServer) ID() int { return s.id }

// acquire blocks until a handler is free; release returns it.
func (s *RegionServer) acquire() { s.handlers <- struct{}{} }
func (s *RegionServer) release() { <-s.handlers }

// openRegion creates or reopens a region replica on this server.
func (s *RegionServer) openRegion(info region.Info, storeOpts lsm.Options) (*region.Region, error) {
	r, err := region.Open(info, s.dir, storeOpts)
	if err != nil {
		return nil, fmt.Errorf("hbase: server %d: %w", s.id, err)
	}
	s.mu.Lock()
	s.regions[info.Name] = r
	s.mu.Unlock()
	return r, nil
}

// forgetRegion drops the routing entry for a destroyed region.
func (s *RegionServer) forgetRegion(name string) {
	s.mu.Lock()
	delete(s.regions, name)
	s.mu.Unlock()
}

// Mutation is one write in a batched RPC. It is an alias for the engine's
// batch element, so a client batch flows through replication into the LSM
// stores without per-layer conversion or copying.
type Mutation = lsm.Write

// mutate is the server-side write RPC: the whole batch executes under one
// handler slot and ships through the region's replication group as a single
// batched round — one WAL group append and one memtable critical section
// per replica, with the replica fan-out running in parallel.
func (s *RegionServer) mutate(g *replication.Group, batch []Mutation) error {
	s.acquire()
	defer s.release()
	s.requests.Add(1)
	if err := g.ApplyBatch(batch); err != nil {
		return err
	}
	s.mutations.Add(int64(len(batch)))
	return nil
}

// get is the server-side point-read RPC, served from the primary replica.
func (s *RegionServer) get(r *region.Region, key []byte) ([]byte, bool, error) {
	s.acquire()
	defer s.release()
	s.requests.Add(1)
	v, ok, err := r.Get(key)
	if ok {
		s.rowsRead.Add(1)
	}
	return v, ok, err
}

// Row is one key-value pair returned by a scan RPC.
type Row struct {
	Key   []byte
	Value []byte
}

// scan is the server-side range-read RPC over [lo, hi); limit <= 0 means
// unlimited. Results are copies, safe to retain.
func (s *RegionServer) scan(r *region.Region, lo, hi []byte, limit int) ([]Row, error) {
	s.acquire()
	defer s.release()
	s.requests.Add(1)
	var rows []Row
	err := r.Scan(lo, hi, func(k, v []byte) error {
		rows = append(rows, Row{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), v...),
		})
		if limit > 0 && len(rows) >= limit {
			return errScanLimit
		}
		return nil
	})
	if err == errScanLimit {
		err = nil
	}
	s.rowsRead.Add(int64(len(rows)))
	return rows, err
}

// errScanLimit terminates a limited scan early; never returned to callers.
var errScanLimit = fmt.Errorf("hbase: scan limit reached")

// Stats snapshots the server's counters.
func (s *RegionServer) Stats() ServerStats {
	s.mu.RLock()
	regions := len(s.regions)
	s.mu.RUnlock()
	return ServerStats{
		ID:        s.id,
		Regions:   regions,
		Requests:  s.requests.Load(),
		Mutations: s.mutations.Load(),
		RowsRead:  s.rowsRead.Load(),
	}
}
