package hbase

import (
	"bytes"
	"fmt"

	"tpcxiot/internal/lsm"
)

// Aggregate runs an aggregation-pushdown query over [lo, hi) restricted to
// key timestamps in [minTS, maxTS): each overlapping region folds its rows
// into per-(series, window) partial aggregates inside the region server,
// and the client merges the partials — count and sum add, min/max take
// extrema, and avg is derived from the merged (sum, count), never averaged
// across partials. windowMS = 0 folds the whole time range into one window
// per series; see lsm.AggregateTime for windowing semantics.
//
// Before reading, only the overlapping regions' write buffers are flushed
// (the same read-your-writes rule Get and Scanner follow), so an aggregate
// over one key range never forces unrelated regions' batches out early.
//
// The fan-out walks regions in key order. A region split can land inside a
// series' key run, so the same (series, window) may surface from adjacent
// regions; because partials arrive in key order the collision is always
// between the accumulated tail and the next region's head, and Merge
// resolves it exactly.
func (c *Client) Aggregate(lo, hi []byte, minTS, maxTS, windowMS int64, funcs lsm.AggFuncs) (lsm.AggResult, error) {
	if c.closed {
		return lsm.AggResult{}, ErrClientClosed
	}
	_, sp := c.tracer.StartTrace("client.aggregate")
	defer sp.End()

	var out lsm.AggResult
	for _, tr := range c.table.regions {
		if !rangesOverlap(lo, hi, tr.info.StartKey, tr.info.EndKey) {
			continue
		}
		if len(c.buffers[tr]) > 0 {
			if err := c.flushRegion(tr, sp); err != nil {
				return lsm.AggResult{}, err
			}
		}
		asp := sp.Child("rpc.aggregate")
		res, err := c.rpc.aggregate(tr, lo, hi, minTS, maxTS, windowMS, funcs, asp)
		asp.End()
		if err != nil {
			return lsm.AggResult{}, fmt.Errorf("hbase: aggregate %s: %w", tr.info.Name, err)
		}
		out.RowsFolded += res.RowsFolded
		for _, w := range res.Windows {
			if n := len(out.Windows); n > 0 &&
				out.Windows[n-1].WindowStart == w.WindowStart &&
				bytes.Equal(out.Windows[n-1].Series, w.Series) {
				out.Windows[n-1].Merge(w)
				continue
			}
			out.Windows = append(out.Windows, w)
		}
	}
	return out, nil
}
