package hbase

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func newTCPCluster(t *testing.T, nodes int, splits [][]byte) (*Cluster, *Client) {
	t.Helper()
	cl, err := NewCluster(testConfig(t, nodes))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if _, err := cl.CreateTable("iot", splits); err != nil {
		t.Fatal(err)
	}
	if err := cl.ServeTCP(); err != nil {
		t.Fatal(err)
	}
	c, err := cl.NewTCPClient("iot", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return cl, c
}

func TestTCPRequiresServing(t *testing.T) {
	cl, err := NewCluster(testConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.CreateTable("iot", nil)
	if _, err := cl.NewTCPClient("iot", 0); !errors.Is(err, ErrNoTCP) {
		t.Fatalf("TCP client before ServeTCP: %v", err)
	}
	if err := cl.ServeTCP(); err != nil {
		t.Fatal(err)
	}
	if err := cl.ServeTCP(); err != nil {
		t.Fatalf("idempotent ServeTCP: %v", err)
	}
	if addrs := cl.ServerAddrs(); len(addrs) != 3 {
		t.Fatalf("ServerAddrs = %v", addrs)
	}
}

func TestTCPPutGetDelete(t *testing.T) {
	_, c := newTCPCluster(t, 3, nil)
	if err := c.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get([]byte("k1"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get over TCP = %q,%v,%v", v, ok, err)
	}
	if _, ok, _ := c.Get([]byte("absent")); ok {
		t.Fatal("absent key present over TCP")
	}
	if err := c.Delete([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get([]byte("k1")); ok {
		t.Fatal("deleted key visible over TCP")
	}
}

func TestTCPScanAcrossRegions(t *testing.T) {
	splits := [][]byte{[]byte("k050"), []byte("k100")}
	_, c := newTCPCluster(t, 4, splits)
	for i := 0; i < 150; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%03d", i)), bytes.Repeat([]byte{'v'}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := c.Scan([]byte("k025"), []byte("k125"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("TCP cross-region scan = %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if bytes.Compare(rows[i-1].Key, rows[i].Key) >= 0 {
			t.Fatal("TCP scan out of order")
		}
	}
	// Nil and empty bounds behave like the in-process client.
	all, err := c.Scan(nil, nil, 0)
	if err != nil || len(all) != 150 {
		t.Fatalf("unbounded TCP scan = %d rows, %v", len(all), err)
	}
	limited, err := c.Scan(nil, nil, 7)
	if err != nil || len(limited) != 7 {
		t.Fatalf("limited TCP scan = %d rows, %v", len(limited), err)
	}
}

func TestTCPParityWithInproc(t *testing.T) {
	cl, tcpClient := newTCPCluster(t, 3, [][]byte{[]byte("m")})
	inproc, err := cl.NewClient("iot", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer inproc.Close()

	// Writes through TCP are visible in-process and vice versa.
	if err := tcpClient.Put([]byte("from-tcp"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := inproc.Put([]byte("zz-from-inproc"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := inproc.Get([]byte("from-tcp")); !ok || string(v) != "1" {
		t.Fatal("in-process client cannot see TCP write")
	}
	if v, ok, _ := tcpClient.Get([]byte("zz-from-inproc")); !ok || string(v) != "2" {
		t.Fatal("TCP client cannot see in-process write")
	}
	a, err := tcpClient.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := inproc.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("scan parity broken: %d vs %d rows", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
			t.Fatalf("row %d differs between transports", i)
		}
	}
}

func TestTCPBatchedMutations(t *testing.T) {
	cl, _ := newTCPCluster(t, 3, nil)
	c, err := cl.NewTCPClient("iot", 8*1024)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	val := bytes.Repeat([]byte{'v'}, 512)
	for i := 0; i < 64; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%03d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	check, _ := cl.NewClient("iot", 0)
	rows, err := check.Scan(nil, nil, 0)
	if err != nil || len(rows) != 64 {
		t.Fatalf("batched TCP writes: %d rows, %v", len(rows), err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	cl, _ := newTCPCluster(t, 4, [][]byte{[]byte("c"), []byte("g")})
	const workers = 6
	const per = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := cl.NewTCPClient("iot", 4*1024)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < per; i++ {
				k := []byte(fmt.Sprintf("%c-%02d-%04d", 'a'+w, w, i))
				if err := c.Put(k, bytes.Repeat([]byte{'x'}, 64)); err != nil {
					t.Errorf("tcp put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	c, _ := cl.NewClient("iot", 0)
	rows, err := c.Scan(nil, nil, 0)
	if err != nil || len(rows) != workers*per {
		t.Fatalf("concurrent TCP writes: %d rows, %v", len(rows), err)
	}
}

func TestTCPLargeValues(t *testing.T) {
	// Full 1 KiB kvp-sized values across the wire.
	_, c := newTCPCluster(t, 3, nil)
	val := bytes.Repeat([]byte{0xab}, 1024)
	for i := 0; i < 200; i++ {
		if err := c.Put([]byte(fmt.Sprintf("pair-%06d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := c.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 200 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !bytes.Equal(r.Value, val) {
			t.Fatal("value corrupted over the wire")
		}
	}
}

func TestTCPServerSideErrorKeepsConnection(t *testing.T) {
	// A server-side error (scan of a dropped region) must surface as an
	// error without poisoning the connection for subsequent requests.
	cl, c := newTCPCluster(t, 3, nil)
	c.Put([]byte("k"), []byte("v"))

	// Drop the table and recreate it under a DIFFERENT name: the old
	// client's routing entries now name regions no server knows, so its
	// reads must fail with a server-side error.
	if err := cl.DropTable("iot"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CreateTable("iot2", nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get([]byte("k")); err == nil {
		t.Fatal("stale region read should fail")
	}
	// The same client's connection survives the error: a second request
	// over it gets a clean response too (another server-side error here).
	if _, err := c.Scan(nil, nil, 0); err == nil {
		t.Fatal("stale region scan should fail")
	}
	// A fresh client for the new table over the same listeners works.
	fresh, err := cl.NewTCPClient("iot2", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if err := fresh.Put([]byte("k2"), []byte("v2")); err != nil {
		t.Fatalf("connection pool poisoned: %v", err)
	}
	if v, ok, err := fresh.Get([]byte("k2")); err != nil || !ok || string(v) != "v2" {
		t.Fatalf("fresh client read: %q,%v,%v", v, ok, err)
	}
}

func TestClusterCloseStopsTCP(t *testing.T) {
	cl, c := newTCPCluster(t, 3, nil)
	c.Put([]byte("k"), []byte("v"))
	cl.Close()
	if _, err := cl.NewTCPClient("iot", 0); err == nil {
		t.Fatal("TCP client creatable after close")
	}
}

func TestWireFormatRoundTrip(t *testing.T) {
	var fw frameWriter
	fw.reset(opScanOpen)
	fw.str("region-name")
	fw.optBytes(nil)
	fw.optBytes([]byte{})
	fw.optBytes([]byte("bound"))
	fw.uvarint(12345)
	fw.bytes([]byte("payload"))

	var buf bytes.Buffer
	if err := fw.flush(&buf); err != nil {
		t.Fatal(err)
	}
	var fr frameReader
	if err := fr.readFrame(&buf); err != nil {
		t.Fatal(err)
	}
	if fr.op != opScanOpen {
		t.Fatalf("op = %d", fr.op)
	}
	if s, _ := fr.str(); s != "region-name" {
		t.Fatalf("str = %q", s)
	}
	if b, err := fr.optBytes(); err != nil || b != nil {
		t.Fatalf("nil optional = %v, %v", b, err)
	}
	if b, err := fr.optBytes(); err != nil || b == nil || len(b) != 0 {
		t.Fatalf("empty optional = %v, %v", b, err)
	}
	if b, _ := fr.optBytes(); string(b) != "bound" {
		t.Fatalf("bound optional = %q", b)
	}
	if v, _ := fr.uvarint(); v != 12345 {
		t.Fatalf("uvarint = %d", v)
	}
	if b, _ := fr.bytes(); string(b) != "payload" {
		t.Fatalf("bytes = %q", b)
	}
}

func TestWireFormatRejectsGarbage(t *testing.T) {
	var fr frameReader
	// Oversized frame length.
	junk := []byte{0xff, 0xff, 0xff, 0xff, 0x01}
	if err := fr.readFrame(bytes.NewReader(junk)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversize frame: %v", err)
	}
	// Truncated body.
	short := []byte{0x10, 0, 0, 0, 0x01, 0x02}
	if err := fr.readFrame(bytes.NewReader(short)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated frame: %v", err)
	}
	// Field length overruns payload.
	var fw frameWriter
	fw.reset(opGet)
	fw.buf = append(fw.buf, 0xff, 0x01) // declares a 255-byte field
	var buf bytes.Buffer
	fw.flush(&buf)
	if err := fr.readFrame(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := fr.bytes(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("overrunning field: %v", err)
	}
}
