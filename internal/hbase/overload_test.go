package hbase

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tpcxiot/internal/lsm"
	"tpcxiot/internal/replication"
	"tpcxiot/internal/wal"
)

// gatedMember wraps a replication member and blocks every apply until
// released, turning one replica into a controllable straggler.
type gatedMember struct {
	inner replication.Applier
	mu    sync.Mutex
	open  bool
	gate  chan struct{}
}

func newGatedMember(inner replication.Applier) *gatedMember {
	return &gatedMember{inner: inner, gate: make(chan struct{})}
}

func (g *gatedMember) Unblock() {
	g.mu.Lock()
	if !g.open {
		g.open = true
		close(g.gate)
	}
	g.mu.Unlock()
}

func (g *gatedMember) wait() {
	g.mu.Lock()
	open, ch := g.open, g.gate
	g.mu.Unlock()
	if !open {
		<-ch
	}
}

func (g *gatedMember) Put(key, value []byte) error {
	g.wait()
	return g.inner.Put(key, value)
}

func (g *gatedMember) Delete(key []byte) error {
	g.wait()
	return g.inner.Delete(key)
}

func (g *gatedMember) ApplyBatch(writes []lsm.Write) error {
	g.wait()
	if ba, ok := g.inner.(replication.BatchApplier); ok {
		return ba.ApplyBatch(writes)
	}
	for i := range writes {
		var err error
		if writes[i].Delete {
			err = g.inner.Delete(writes[i].Key)
		} else {
			err = g.inner.Put(writes[i].Key, writes[i].Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// stragglerCluster builds a 3-node cluster whose member 2 (the second
// replica — never needed for a majority quorum) is gated behind the
// returned gatedMember, with a small catch-up queue so overload arrives
// quickly.
func stragglerCluster(t testing.TB, cfg Config) (*Cluster, *gatedMember) {
	t.Helper()
	var gated *gatedMember
	var gatedMu sync.Mutex
	cfg.Nodes = 3
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	cfg.Store = lsm.Options{WALSync: wal.SyncNever}
	cfg.MemberWrapper = func(region string, idx int, app replication.Applier) replication.Applier {
		if idx != 2 {
			return app
		}
		gatedMu.Lock()
		defer gatedMu.Unlock()
		if gated == nil {
			gated = newGatedMember(app)
			return gated
		}
		// Single-region tests only: reuse would cross-wire gates.
		t.Fatalf("second gated member requested (region %s)", region)
		return app
	}
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		gatedMu.Lock()
		if gated != nil {
			gated.Unblock()
		}
		gatedMu.Unlock()
		cl.Close()
	})
	if _, err := cl.CreateTable("iot", nil); err != nil {
		t.Fatal(err)
	}
	gatedMu.Lock()
	defer gatedMu.Unlock()
	if gated == nil {
		t.Fatal("member wrapper never saw member 2")
	}
	return cl, gated
}

// fillToShed puts through c until the stalled straggler's catch-up queue
// fills and the server sheds, returning the shed error.
func fillToShed(t *testing.T, c *Client, limit int) error {
	t.Helper()
	for i := 0; i < limit; i++ {
		if err := c.Put([]byte(fmt.Sprintf("fill%04d", i)), []byte("v")); err != nil {
			return err
		}
	}
	t.Fatalf("no shed after %d puts against a stalled straggler", limit)
	return nil
}

// A stalled straggler fills its catch-up queue; the next mutate is refused
// with a typed retryable OverloadedError carrying a retry-after hint —
// while writes keep acking at quorum right up to the bound.
func TestServerShedsOnStalledStraggler(t *testing.T) {
	cl, gated := stragglerCluster(t, Config{CatchUpQueue: 4, RetryMax: -1})
	c, err := cl.NewClient("iot", 0)
	if err != nil {
		t.Fatal(err)
	}

	shedErr := fillToShed(t, c, 64)
	if !errors.Is(shedErr, ErrOverloaded) {
		t.Fatalf("shed error = %v, want ErrOverloaded", shedErr)
	}
	var over *OverloadedError
	if !errors.As(shedErr, &over) {
		t.Fatalf("shed error %v is not an *OverloadedError", shedErr)
	}
	if over.RetryAfter <= 0 {
		t.Fatalf("retry-after hint = %s, want > 0", over.RetryAfter)
	}

	// The shed is accounted on the server and in the health document.
	h := cl.Health()
	if h.Sheds == 0 {
		t.Fatal("health reports no sheds after a refused mutate")
	}
	if h.CatchUpDepth == 0 {
		t.Fatal("health reports no catch-up depth with a stalled straggler")
	}
	if h.QuorumLag == 0 {
		t.Fatal("health reports no quorum lag with a stalled straggler")
	}
	// One shed is a pressure valve, not an outage: still healthy.
	if h.Overloaded || !h.OK {
		t.Fatalf("single shed flipped health: overloaded=%v ok=%v", h.Overloaded, h.OK)
	}

	// Backpressure is retryable: drain the straggler and the same batch
	// (still buffered client-side) flushes through.
	gated.Unblock()
	if err := cl.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushCommits(); err != nil {
		t.Fatalf("flush after drain: %v", err)
	}
	if got, _ := c.RetryStats(); got != 0 {
		t.Fatalf("retries = %d with retries disabled", got)
	}
}

// Sustained overload — a run of sheds with no successful write in between —
// flips /healthz to 503; the storage report exposes the per-member queues.
func TestHealthSustainedOverload(t *testing.T) {
	cl, gated := stragglerCluster(t, Config{CatchUpQueue: 2, RetryMax: -1})
	c, err := cl.NewClient("iot", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(fillToShed(t, c, 64), ErrOverloaded) {
		t.Fatal("no shed")
	}
	// Keep hammering: every attempt sheds, so the streak grows.
	for i := 0; i < SustainedShedStreak+4; i++ {
		if err := c.FlushCommits(); err == nil {
			t.Fatal("flush succeeded against a full catch-up queue")
		}
	}
	h := cl.Health()
	if !h.Overloaded || h.OK {
		t.Fatalf("sustained sheds (streak %d) did not flip health: %+v", h.ShedStreak, h)
	}
	if h.ShedStreak < SustainedShedStreak {
		t.Fatalf("shed streak = %d, want >= %d", h.ShedStreak, SustainedShedStreak)
	}

	// The storage report names the lagging member and its queue.
	st := cl.Storage()
	if len(st.Replication) == 0 {
		t.Fatal("storage report has no replication section")
	}
	var sawQueue bool
	for _, rr := range st.Replication {
		if rr.MaxLag > 0 {
			sawQueue = true
		}
	}
	if !sawQueue {
		t.Fatal("storage report shows no member lag despite a stalled straggler")
	}

	// Recovery: drain, write once, health clears.
	gated.Unblock()
	if err := cl.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushCommits(); err != nil {
		t.Fatal(err)
	}
	h = cl.Health()
	if h.Overloaded || !h.OK {
		t.Fatalf("health still overloaded after recovery: %+v", h)
	}
}

// The overloaded status crosses the TCP wire as its own frame: remote
// clients reconstruct the same typed error, hint included, and the
// connection survives for the retry.
func TestOverloadedErrorOverTCP(t *testing.T) {
	cl, gated := stragglerCluster(t, Config{CatchUpQueue: 4, RetryMax: -1})
	if err := cl.ServeTCP(); err != nil {
		t.Fatal(err)
	}
	c, err := cl.NewTCPClient("iot", 0)
	if err != nil {
		t.Fatal(err)
	}

	shedErr := fillToShed(t, c, 64)
	var over *OverloadedError
	if !errors.As(shedErr, &over) {
		t.Fatalf("TCP shed error %v did not reconstruct *OverloadedError", shedErr)
	}
	if !errors.Is(shedErr, ErrOverloaded) {
		t.Fatalf("TCP shed error %v does not unwrap to ErrOverloaded", shedErr)
	}
	if over.RetryAfter <= 0 {
		t.Fatalf("retry-after hint lost on the wire: %s", over.RetryAfter)
	}

	// The connection stays usable: a read through a second client (whose
	// buffer is empty, so no flush precedes it) works mid-overload, and the
	// shed client's own connection carries the successful retry after the
	// straggler drains.
	reader, err := cl.NewTCPClient("iot", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := reader.Get([]byte("fill0000")); err != nil {
		t.Fatalf("reads failing during write overload: %v", err)
	}
	if err := reader.Close(); err != nil {
		t.Fatal(err)
	}
	gated.Unblock()
	if err := cl.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushCommits(); err != nil {
		t.Fatalf("flush after drain over TCP: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// The client's capped, jittered exponential backoff rides out a transient
// overload: a shed flush is retried and eventually succeeds, with the
// retries counted.
func TestClientBackoffRetriesThroughOverload(t *testing.T) {
	cl, gated := stragglerCluster(t, Config{
		CatchUpQueue:   2,
		RetryMax:       20,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  10 * time.Millisecond,
	})
	c, err := cl.NewClient("iot", 0)
	if err != nil {
		t.Fatal(err)
	}

	// Release the straggler shortly after the first sheds hit, while the
	// client is inside its backoff loop.
	go func() {
		time.Sleep(20 * time.Millisecond)
		gated.Unblock()
	}()

	for i := 0; i < 64; i++ {
		if err := c.Put([]byte(fmt.Sprintf("rk%04d", i)), []byte("v")); err != nil {
			t.Fatalf("put %d failed despite retries: %v", i, err)
		}
	}
	retries, exhausted := c.RetryStats()
	if retries == 0 {
		t.Fatal("no retries recorded: the straggler never caused a shed (timing too generous?)")
	}
	if exhausted != 0 {
		t.Fatalf("%d mutates exhausted retries; all should have recovered", exhausted)
	}
	if err := cl.Quiesce(); err != nil {
		t.Fatal(err)
	}
	// Every put landed exactly once on every member.
	tbl, _ := cl.Table("iot")
	for _, tr := range tbl.regions {
		for ri, rep := range tr.replicas {
			for i := 0; i < 64; i++ {
				key := []byte(fmt.Sprintf("rk%04d", i))
				if _, ok, err := rep.Store().Get(key); err != nil || !ok {
					t.Fatalf("replica %d missing %q after retries: ok=%v err=%v", ri, key, ok, err)
				}
			}
		}
	}
}

// backoffDelay grows exponentially, respects the cap, jitters inside
// [d/2, d], and never undercuts the server's hint.
func TestBackoffDelayShape(t *testing.T) {
	cl, _ := newTestCluster(t, 3, nil)
	c, err := cl.NewClient("iot", 0)
	if err != nil {
		t.Fatal(err)
	}
	c.retryBase = time.Millisecond
	c.retryCap = 32 * time.Millisecond
	for attempt := 0; attempt < 12; attempt++ {
		want := c.retryBase << uint(attempt)
		if want > c.retryCap || want <= 0 {
			want = c.retryCap
		}
		for i := 0; i < 100; i++ {
			d := c.backoffDelay(attempt, 0)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: delay %s outside [%s, %s]", attempt, d, want/2, want)
			}
		}
	}
	// The server hint floors the delay.
	if d := c.backoffDelay(0, 500*time.Millisecond); d < 500*time.Millisecond {
		t.Fatalf("delay %s below the 500ms server hint", d)
	}
}
