package hbase

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tpcxiot/internal/lsm"
	"tpcxiot/internal/telemetry"
	"tpcxiot/internal/wal"
)

// seedKey/seedVal are the deterministic fixture rows used by the scanner
// tests: zero-padded keys sort in insertion order.
func seedKey(i int) []byte { return []byte(fmt.Sprintf("k%04d", i)) }
func seedVal(i int) []byte { return []byte(fmt.Sprintf("v%04d", i)) }

func seedRows(t *testing.T, c *Client, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := c.Put(seedKey(i), seedVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushCommits(); err != nil {
		t.Fatal(err)
	}
}

// drainScanner consumes a scanner to exhaustion, checking strict key order.
func drainScanner(t *testing.T, sc *Scanner) []Row {
	t.Helper()
	var rows []Row
	for {
		row, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return rows
		}
		if len(rows) > 0 && bytes.Compare(rows[len(rows)-1].Key, row.Key) >= 0 {
			t.Fatalf("rows out of order: %q then %q", rows[len(rows)-1].Key, row.Key)
		}
		rows = append(rows, row)
	}
}

func totalOpenScanners(cl *Cluster) int {
	n := 0
	for _, s := range cl.Servers() {
		n += s.OpenScannerCount()
	}
	return n
}

// TestScannerCrossRegionMidLimit streams across three regions with a limit
// that lands mid-way through the second region, on chunk sizes small
// enough to force several chunks per region.
func TestScannerCrossRegionMidLimit(t *testing.T) {
	splits := [][]byte{seedKey(30), seedKey(60)}
	cl, c := newTestCluster(t, 3, splits)
	seedRows(t, c, 90)

	sc, err := c.NewScannerChunk(nil, nil, 45, 7)
	if err != nil {
		t.Fatal(err)
	}
	rows := drainScanner(t, sc)
	if len(rows) != 45 {
		t.Fatalf("limited scan returned %d rows, want 45", len(rows))
	}
	for i, r := range rows {
		if !bytes.Equal(r.Key, seedKey(i)) || !bytes.Equal(r.Value, seedVal(i)) {
			t.Fatalf("row %d = %q/%q, want %q/%q", i, r.Key, r.Value, seedKey(i), seedVal(i))
		}
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}

	// A bounded, unlimited scan that starts and ends mid-region.
	sc, err = c.NewScannerChunk(seedKey(10), seedKey(70), 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	rows = drainScanner(t, sc)
	if len(rows) != 60 || !bytes.Equal(rows[0].Key, seedKey(10)) ||
		!bytes.Equal(rows[len(rows)-1].Key, seedKey(69)) {
		t.Fatalf("range scan: %d rows [%q..%q], want 60 [k0010..k0069]",
			len(rows), rows[0].Key, rows[len(rows)-1].Key)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}

	// Every server-side session must be released once scans finish.
	if n := totalOpenScanners(cl); n != 0 {
		t.Fatalf("%d scanner sessions left open after close", n)
	}
}

// TestScannerCrossRegionMidLimitTCP is the same cross-region mid-limit
// walk over the wire protocol, exercising the three scan frame types.
func TestScannerCrossRegionMidLimitTCP(t *testing.T) {
	splits := [][]byte{seedKey(30), seedKey(60)}
	cl, c := newTCPCluster(t, 3, splits)
	seedRows(t, c, 90)

	sc, err := c.NewScannerChunk(nil, nil, 45, 5)
	if err != nil {
		t.Fatal(err)
	}
	rows := drainScanner(t, sc)
	if len(rows) != 45 {
		t.Fatalf("limited TCP scan returned %d rows, want 45", len(rows))
	}
	for i, r := range rows {
		if !bytes.Equal(r.Key, seedKey(i)) || !bytes.Equal(r.Value, seedVal(i)) {
			t.Fatalf("row %d = %q/%q, want %q/%q", i, r.Key, r.Value, seedKey(i), seedVal(i))
		}
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}

	// The connection must be quiescent again: a second scan and a Get both
	// work on the same client after the first scanner closes.
	if v, ok, err := c.Get(seedKey(77)); err != nil || !ok || !bytes.Equal(v, seedVal(77)) {
		t.Fatalf("Get after scan = %q,%v,%v", v, ok, err)
	}
	sc, err = c.NewScannerChunk(seedKey(55), seedKey(65), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	rows = drainScanner(t, sc)
	if len(rows) != 10 {
		t.Fatalf("second TCP scan returned %d rows, want 10", len(rows))
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	if n := totalOpenScanners(cl); n != 0 {
		t.Fatalf("%d scanner sessions left open after close", n)
	}
}

// TestScannerEarlyCloseReleasesSession abandons a scan mid-region and
// checks Close releases the server-side session immediately.
func TestScannerEarlyCloseReleasesSession(t *testing.T) {
	cl, c := newTestCluster(t, 3, nil)
	seedRows(t, c, 100)

	sc, err := c.NewScannerChunk(nil, nil, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, ok, err := sc.Next(); err != nil || !ok {
			t.Fatalf("Next %d = %v,%v", i, ok, err)
		}
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	if n := totalOpenScanners(cl); n != 0 {
		t.Fatalf("%d scanner sessions left open after early close", n)
	}
	// Close is idempotent and Next after Close terminates cleanly.
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := sc.Next(); ok || err != nil {
		t.Fatalf("Next after Close = %v,%v", ok, err)
	}
}

// TestScannerSnapshotUnderFlushCompactSplit opens a scanner, then flushes,
// writes fresh rows, compacts, and finally splits the region underneath
// it. The scanner must return exactly the rows that existed when it
// opened: the pinned snapshot survives every maintenance operation,
// including the parent region's retirement after the split.
func TestScannerSnapshotUnderFlushCompactSplit(t *testing.T) {
	const n = 200
	cl, c := newTestCluster(t, 3, nil)
	seedRows(t, c, n)

	sc, err := c.NewScannerChunk(nil, nil, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	var rows []Row
	for i := 0; i < 20; i++ {
		row, ok, err := sc.Next()
		if err != nil || !ok {
			t.Fatalf("Next %d = %v,%v", i, ok, err)
		}
		rows = append(rows, row)
	}

	// Flush every replica first so later writes land in a memtable the
	// scanner never pinned.
	tbl, err := cl.Table("iot")
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range tbl.regions[0].replicas {
		if err := rep.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Post-snapshot writes interleaved through the scanned range.
	w, err := cl.NewClient("iot", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 4 {
		if err := w.Put([]byte(fmt.Sprintf("k%04d-new", i)), []byte("late")); err != nil {
			t.Fatal(err)
		}
	}

	// Compact the primary the scanner is reading from, then split the
	// region, which destroys the parent store entirely.
	if err := tbl.regions[0].replicas[0].Store().Compact(); err != nil {
		t.Fatal(err)
	}
	if err := cl.SplitRegion("iot", seedKey(n/2)); err != nil {
		t.Fatal(err)
	}

	rows = append(rows, drainScanner(t, sc)...)
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != n {
		t.Fatalf("snapshot scan returned %d rows, want %d", len(rows), n)
	}
	for i, r := range rows {
		if !bytes.Equal(r.Key, seedKey(i)) {
			t.Fatalf("row %d = %q, want %q (post-snapshot write leaked or row lost)",
				i, r.Key, seedKey(i))
		}
	}

	// The split table routes reads; the new rows are visible to a fresh
	// client created after the split.
	r, err := cl.NewClient("iot", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := r.Get([]byte("k0004-new")); err != nil || !ok {
		t.Fatalf("post-split Get = %v,%v", ok, err)
	}
}

// TestScannerConcurrentIngestRace streams a seeded range while a second
// client ingests at full rate into the same region, with a memtable small
// enough to force flushes and compactions mid-scan. Run under -race; the
// scan must still return exactly the seeded snapshot in order.
func TestScannerConcurrentIngestRace(t *testing.T) {
	const seeded = 300
	cfg := Config{
		Nodes:   3,
		DataDir: t.TempDir(),
		Store: lsm.Options{
			WALSync:        wal.SyncNever,
			MemtableSize:   32 << 10,
			CompactTrigger: 3,
		},
	}
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.CreateTable("iot", nil); err != nil {
		t.Fatal(err)
	}
	c, err := cl.NewClient("iot", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < seeded; i++ {
		if err := c.Put([]byte(fmt.Sprintf("s%05d", i)), seedVal(i)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wc, err := cl.NewClient("iot", 0)
		if err != nil {
			t.Error(err)
			return
		}
		val := bytes.Repeat([]byte("x"), 256)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := wc.Put([]byte(fmt.Sprintf("w%07d", i)), val); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for round := 0; round < 10; round++ {
		sc, err := c.NewScannerChunk([]byte("s"), []byte("t"), 0, 16)
		if err != nil {
			t.Fatal(err)
		}
		rows := drainScanner(t, sc)
		if err := sc.Close(); err != nil {
			t.Fatal(err)
		}
		if len(rows) != seeded {
			t.Fatalf("round %d: scan returned %d rows, want %d", round, len(rows), seeded)
		}
	}
	close(stop)
	wg.Wait()
}

// TestScannerLeaseExpiry abandons a server-side scanner session and checks
// the lease sweep reclaims it: the session count drops, the stale id is
// rejected, and the expiry counter ticks.
func TestScannerLeaseExpiry(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := Config{
		Nodes:               3,
		DataDir:             t.TempDir(),
		Store:               lsm.Options{WALSync: wal.SyncNever},
		ScannerLeaseTimeout: 50 * time.Millisecond,
		Registry:            reg,
	}
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.CreateTable("iot", nil); err != nil {
		t.Fatal(err)
	}
	c, err := cl.NewClient("iot", 0)
	if err != nil {
		t.Fatal(err)
	}
	seedRows(t, c, 50)

	tbl, err := cl.Table("iot")
	if err != nil {
		t.Fatal(err)
	}
	srv, reg0 := tbl.regions[0].primary, tbl.regions[0].replicas[0]

	// Open and pull one chunk, then abandon the session without closing.
	stale, err := srv.openScanner(reg0, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rows, more, err := srv.next(stale, 4); err != nil || !more || len(rows) != 4 {
		t.Fatalf("next = %d rows, more=%v, err=%v", len(rows), more, err)
	}
	if n := srv.OpenScannerCount(); n != 1 {
		t.Fatalf("OpenScannerCount = %d, want 1", n)
	}

	time.Sleep(120 * time.Millisecond) // let the lease lapse

	// Any scanner operation sweeps expired sessions.
	fresh, err := srv.openScanner(reg0, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := srv.OpenScannerCount(); n != 1 {
		t.Fatalf("OpenScannerCount after sweep = %d, want 1 (the fresh session)", n)
	}
	if _, _, err := srv.next(stale, 4); !errors.Is(err, ErrUnknownScanner) {
		t.Fatalf("next on expired id = %v, want ErrUnknownScanner", err)
	}
	if got := reg.Counter("hbase.scanner_lease_expiries").Load(); got < 1 {
		t.Fatalf("scanner_lease_expiries = %d, want >= 1", got)
	}

	// The fresh session is unaffected and closes cleanly.
	if rows, _, err := srv.next(fresh, 4); err != nil || len(rows) != 4 {
		t.Fatalf("fresh next = %d rows, err=%v", len(rows), err)
	}
	if err := srv.closeScanner(fresh); err != nil {
		t.Fatal(err)
	}
	if n := srv.OpenScannerCount(); n != 0 {
		t.Fatalf("OpenScannerCount after close = %d, want 0", n)
	}
}
