package hbase

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"net"
	"time"

	"tpcxiot/internal/lsm"
	"tpcxiot/internal/telemetry"
)

// transport is how a client reaches region servers: direct in-process calls
// or the TCP wire protocol. Scans are sessions: openScanner pins a
// server-side snapshot scanner, scanNext streams one chunk (more=false
// means the server already closed the session), closeScanner abandons one
// early. Every call carries the client-side span to parent server work
// under — inert for unsampled operations; the TCP transport propagates it
// as the frame trace header and stitches the returned server spans back in.
type transport interface {
	mutate(tr *tableRegion, batch []Mutation, sp telemetry.TSpan) error
	get(tr *tableRegion, key []byte, sp telemetry.TSpan) ([]byte, bool, error)
	openScanner(tr *tableRegion, lo, hi []byte, limit int, sp telemetry.TSpan) (uint64, error)
	scanNext(tr *tableRegion, id uint64, chunk int, sp telemetry.TSpan) ([]Row, bool, error)
	closeScanner(tr *tableRegion, id uint64, sp telemetry.TSpan) error
	aggregate(tr *tableRegion, lo, hi []byte, minTS, maxTS, windowMS int64, funcs lsm.AggFuncs, sp telemetry.TSpan) (lsm.AggResult, error)
	close() error
}

// inprocTransport calls the server methods directly (still handler-gated).
// The span flows straight through — server spans land in the same trace
// with no wire crossing.
type inprocTransport struct{}

func (inprocTransport) mutate(tr *tableRegion, batch []Mutation, sp telemetry.TSpan) error {
	return tr.primary.mutateTraced(tr.group, batch, sp)
}

func (inprocTransport) get(tr *tableRegion, key []byte, sp telemetry.TSpan) ([]byte, bool, error) {
	return tr.primary.getTraced(tr.replicas[0], key, sp)
}

func (inprocTransport) openScanner(tr *tableRegion, lo, hi []byte, limit int, sp telemetry.TSpan) (uint64, error) {
	return tr.primary.openScannerTraced(tr.replicas[0], lo, hi, limit, sp)
}

func (inprocTransport) scanNext(tr *tableRegion, id uint64, chunk int, sp telemetry.TSpan) ([]Row, bool, error) {
	return tr.primary.nextTraced(id, chunk, sp)
}

func (inprocTransport) closeScanner(tr *tableRegion, id uint64, sp telemetry.TSpan) error {
	return tr.primary.closeScanner(id)
}

func (inprocTransport) aggregate(tr *tableRegion, lo, hi []byte, minTS, maxTS, windowMS int64, funcs lsm.AggFuncs, sp telemetry.TSpan) (lsm.AggResult, error) {
	return tr.primary.aggregateTraced(tr.replicas[0], lo, hi, minTS, maxTS, windowMS, funcs, sp)
}

func (inprocTransport) close() error { return nil }

// tcpTransport speaks the wire protocol, one lazily dialled connection per
// region server. Like a Client, a tcpTransport serves a single worker
// thread, so no locking is needed.
type tcpTransport struct {
	addrs map[*RegionServer]string
	conns map[*RegionServer]*tcpConn
}

type tcpConn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

func newTCPTransport(cl *Cluster) (*tcpTransport, error) {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	if cl.tcp == nil {
		return nil, ErrNoTCP
	}
	t := &tcpTransport{
		addrs: make(map[*RegionServer]string, len(cl.servers)),
		conns: make(map[*RegionServer]*tcpConn),
	}
	for i, srv := range cl.servers {
		t.addrs[srv] = cl.tcp.addrs[i]
	}
	return t, nil
}

func (t *tcpTransport) conn(srv *RegionServer) (*tcpConn, error) {
	if c, ok := t.conns[srv]; ok {
		return c, nil
	}
	addr, ok := t.addrs[srv]
	if !ok {
		return nil, fmt.Errorf("hbase: no address for server %d", srv.ID())
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("hbase: dial %s: %w", addr, err)
	}
	c := &tcpConn{
		c: nc,
		r: bufio.NewReaderSize(nc, 256<<10),
		w: bufio.NewWriterSize(nc, 256<<10),
	}
	t.conns[srv] = c
	return c, nil
}

// call sends the request frame and reads the response into resp. On
// transport errors the connection is discarded so the next call redials.
// For sampled operations the server's span block is parsed off the response
// and stitched under sp's trace before any result field is read.
func (t *tcpTransport) call(srv *RegionServer, req *frameWriter, resp *frameReader, sp telemetry.TSpan) error {
	c, err := t.conn(srv)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		c.c.Close()
		delete(t.conns, srv)
		return err
	}
	if err := req.flush(c.w); err != nil {
		return fail(err)
	}
	if err := c.w.Flush(); err != nil {
		return fail(err)
	}
	if err := resp.readFrame(c.r); err != nil {
		return fail(err)
	}
	if resp.op == statusErr {
		msg, err := resp.str()
		if err != nil {
			return fail(err)
		}
		return errors.New(msg) // server-side error; connection stays usable
	}
	if resp.op == statusOverloaded {
		us, err := resp.uvarint()
		if err != nil {
			return fail(err)
		}
		// A shed is a healthy refusal: reconstruct the typed retryable
		// error; the connection stays usable for the retry.
		return &OverloadedError{RetryAfter: time.Duration(us) * time.Microsecond}
	}
	if resp.op != statusOK {
		return fail(fmt.Errorf("%w: status %d", ErrBadFrame, resp.op))
	}
	spans, err := resp.spans()
	if err != nil {
		return fail(err)
	}
	sp.AddRemoteSpans(spans)
	return nil
}

func (t *tcpTransport) mutate(tr *tableRegion, batch []Mutation, sp telemetry.TSpan) error {
	var req frameWriter
	var resp frameReader
	req.reset(opMutate)
	req.trace(sp)
	req.str(tr.info.Name)
	req.uvarint(uint64(len(batch)))
	for _, m := range batch {
		if m.Delete {
			req.uvarint(1)
		} else {
			req.uvarint(0)
		}
		req.bytes(m.Key)
		req.bytes(m.Value)
	}
	return t.call(tr.primary, &req, &resp, sp)
}

func (t *tcpTransport) get(tr *tableRegion, key []byte, sp telemetry.TSpan) ([]byte, bool, error) {
	var req frameWriter
	var resp frameReader
	req.reset(opGet)
	req.trace(sp)
	req.str(tr.info.Name)
	req.bytes(key)
	if err := t.call(tr.primary, &req, &resp, sp); err != nil {
		return nil, false, err
	}
	found, err := resp.uvarint()
	if err != nil {
		return nil, false, err
	}
	if found == 0 {
		return nil, false, nil
	}
	v, err := resp.bytes()
	if err != nil {
		return nil, false, err
	}
	return append([]byte(nil), v...), true, nil
}

func (t *tcpTransport) openScanner(tr *tableRegion, lo, hi []byte, limit int, sp telemetry.TSpan) (uint64, error) {
	var req frameWriter
	var resp frameReader
	req.reset(opScanOpen)
	req.trace(sp)
	req.str(tr.info.Name)
	req.optBytes(lo)
	req.optBytes(hi)
	req.uvarint(uint64(limit))
	if err := t.call(tr.primary, &req, &resp, sp); err != nil {
		return 0, err
	}
	return resp.uvarint()
}

func (t *tcpTransport) scanNext(tr *tableRegion, id uint64, chunk int, sp telemetry.TSpan) ([]Row, bool, error) {
	var req frameWriter
	var resp frameReader
	req.reset(opScanNext)
	req.trace(sp)
	req.str(tr.info.Name)
	req.uvarint(id)
	req.uvarint(uint64(chunk))
	if err := t.call(tr.primary, &req, &resp, sp); err != nil {
		return nil, false, err
	}
	more, err := resp.uvarint()
	if err != nil {
		return nil, false, err
	}
	n, err := resp.uvarint()
	if err != nil {
		return nil, false, err
	}
	rows := make([]Row, 0, n)
	for i := uint64(0); i < n; i++ {
		k, err := resp.bytes()
		if err != nil {
			return nil, false, err
		}
		v, err := resp.bytes()
		if err != nil {
			return nil, false, err
		}
		rows = append(rows, Row{Key: k, Value: v})
	}
	// The rows alias the frame buffer; hand its ownership to them instead
	// of re-copying every key and value. resp is stack-local, so dropping
	// the reference is all the detaching needed.
	return rows, more == 1, nil
}

func (t *tcpTransport) aggregate(tr *tableRegion, lo, hi []byte, minTS, maxTS, windowMS int64, funcs lsm.AggFuncs, sp telemetry.TSpan) (lsm.AggResult, error) {
	var req frameWriter
	var resp frameReader
	req.reset(opAggregate)
	req.trace(sp)
	req.str(tr.info.Name)
	req.optBytes(lo)
	req.optBytes(hi)
	req.uvarint(uint64(minTS))
	req.uvarint(uint64(maxTS))
	req.uvarint(uint64(windowMS))
	req.uvarint(uint64(funcs))
	if err := t.call(tr.primary, &req, &resp, sp); err != nil {
		return lsm.AggResult{}, err
	}
	var res lsm.AggResult
	folded, err := resp.uvarint()
	if err != nil {
		return lsm.AggResult{}, err
	}
	res.RowsFolded = int64(folded)
	n, err := resp.uvarint()
	if err != nil {
		return lsm.AggResult{}, err
	}
	capHint := n
	if capHint > 4096 {
		capHint = 4096 // bound the pre-allocation; a bogus count fails below
	}
	res.Windows = make([]lsm.WindowAgg, 0, capHint)
	for i := uint64(0); i < n; i++ {
		var w lsm.WindowAgg
		series, err := resp.bytes()
		if err != nil {
			return lsm.AggResult{}, err
		}
		w.Series = append([]byte(nil), series...)
		ws, err := resp.uvarint()
		if err != nil {
			return lsm.AggResult{}, err
		}
		w.WindowStart = int64(ws)
		count, err := resp.uvarint()
		if err != nil {
			return lsm.AggResult{}, err
		}
		w.Count = int64(count)
		for _, dst := range []*float64{&w.Min, &w.Max, &w.Sum} {
			bits, err := resp.uvarint()
			if err != nil {
				return lsm.AggResult{}, err
			}
			*dst = math.Float64frombits(bits)
		}
		res.Windows = append(res.Windows, w)
	}
	return res, nil
}

func (t *tcpTransport) closeScanner(tr *tableRegion, id uint64, sp telemetry.TSpan) error {
	var req frameWriter
	var resp frameReader
	req.reset(opScanClose)
	req.str(tr.info.Name)
	req.uvarint(id)
	return t.call(tr.primary, &req, &resp, sp)
}

func (t *tcpTransport) close() error {
	var firstErr error
	for srv, c := range t.conns {
		if err := c.c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(t.conns, srv)
	}
	return firstErr
}
