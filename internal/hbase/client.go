package hbase

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"tpcxiot/internal/telemetry"
)

// ErrClientClosed is returned by operations on a closed client.
var ErrClientClosed = errors.New("hbase: client is closed")

// Client is a table handle with a client-side write buffer, the analogue of
// an HBase Table/BufferedMutator pair. Puts accumulate per region until the
// buffer exceeds WriteBufferBytes (hbase.client.write.buffer) and are then
// shipped as one batched RPC per region. A Client is NOT safe for
// concurrent use — create one per worker goroutine, exactly as YCSB binds
// one HBase client per driver thread.
type Client struct {
	table  *Table
	rpc    transport
	tracer *telemetry.Tracer // nil disables tracing

	// WriteBufferBytes is the autoflush threshold. Non-positive disables
	// buffering (every Put flushes immediately).
	writeBufferBytes int64

	buffers  map[*tableRegion][]Mutation
	buffered int64
	closed   bool

	// Overload-retry policy (Config.RetryMax/RetryBaseDelay/RetryMaxDelay):
	// a shed mutate is retried with capped exponential backoff plus jitter,
	// never below the server's retry-after hint.
	retryMax   int
	retryBase  time.Duration
	retryCap   time.Duration
	rng        *rand.Rand
	retries    int64 // sheds this client retried
	shedFails  int64 // mutates that stayed shed after every retry

	flushesC   *telemetry.Counter // hbase.buffer_flushes
	retriesC   *telemetry.Counter // hbase.client_retries
	shedFailsC *telemetry.Counter // hbase.client_retry_exhausted
	flushSpan  *telemetry.Timer   // put.client_flush
}

// NewClient returns an in-process client for the table with the given
// write buffer size in bytes. The paper's tuning sets an 8 GB client
// buffer; realistic values here are a few MiB.
func (cl *Cluster) NewClient(tableName string, writeBufferBytes int64) (*Client, error) {
	return cl.newClient(tableName, writeBufferBytes, inprocTransport{})
}

// NewTCPClient returns a client that reaches the region servers over the
// loopback TCP wire protocol. The cluster must be serving (ServeTCP).
func (cl *Cluster) NewTCPClient(tableName string, writeBufferBytes int64) (*Client, error) {
	rpc, err := newTCPTransport(cl)
	if err != nil {
		return nil, err
	}
	return cl.newClient(tableName, writeBufferBytes, rpc)
}

func (cl *Cluster) newClient(tableName string, writeBufferBytes int64, rpc transport) (*Client, error) {
	t, err := cl.Table(tableName)
	if err != nil {
		return nil, err
	}
	return &Client{
		table:            t,
		rpc:              rpc,
		tracer:           cl.cfg.Tracer,
		writeBufferBytes: writeBufferBytes,
		buffers:          make(map[*tableRegion][]Mutation),
		retryMax:         cl.cfg.RetryMax,
		retryBase:        cl.cfg.RetryBaseDelay,
		retryCap:         cl.cfg.RetryMaxDelay,
		rng:              rand.New(rand.NewSource(time.Now().UnixNano())),
		flushesC:         cl.cfg.Registry.Counter("hbase.buffer_flushes"),
		retriesC:         cl.cfg.Registry.Counter("hbase.client_retries"),
		shedFailsC:       cl.cfg.Registry.Counter("hbase.client_retry_exhausted"),
		flushSpan:        cl.cfg.Registry.Timer("put.client_flush"),
	}, nil
}

// Put buffers a write. The key and value are copied. When the put is the
// sampled one, its whole span tree — buffer, flush, RPC, and the server-side
// engine work stitched back from the response — lands in the tracer.
func (c *Client) Put(key, value []byte) error {
	_, sp := c.tracer.StartTrace("client.put")
	err := c.buffer(Mutation{
		Key:   append([]byte(nil), key...),
		Value: append([]byte(nil), value...),
	}, sp)
	sp.End()
	return err
}

// Delete buffers a tombstone.
func (c *Client) Delete(key []byte) error {
	_, sp := c.tracer.StartTrace("client.delete")
	err := c.buffer(Mutation{Key: append([]byte(nil), key...), Delete: true}, sp)
	sp.End()
	return err
}

func (c *Client) buffer(m Mutation, sp telemetry.TSpan) error {
	if c.closed {
		return ErrClientClosed
	}
	tr := c.table.locate(m.Key)
	c.buffers[tr] = append(c.buffers[tr], m)
	c.buffered += int64(len(m.Key) + len(m.Value))
	if c.buffered >= c.writeBufferBytes {
		fl := sp.Child("client.flush")
		err := c.flushCommits(fl)
		fl.End()
		return err
	}
	return nil
}

// FlushCommits ships all buffered mutations, one batched RPC per region.
// On a mid-flush failure the already-shipped regions stay flushed and the
// failed region's batch stays buffered, with BufferedBytes reflecting
// exactly what remains — a later FlushCommits retries just the remainder.
func (c *Client) FlushCommits() error {
	_, sp := c.tracer.StartTrace("client.flush")
	err := c.flushCommits(sp)
	sp.End()
	return err
}

func (c *Client) flushCommits(sp telemetry.TSpan) error {
	if c.closed {
		return ErrClientClosed
	}
	tsp := c.flushSpan.Start()
	for tr := range c.buffers {
		if err := c.flushRegion(tr, sp); err != nil {
			return err
		}
	}
	tsp.End()
	c.flushesC.Inc()
	return nil
}

// flushRegion ships one region's buffered batch, leaving every other
// region's buffer untouched. Reads flush this way: only the region being
// read needs its writes visible, so a Get or Scan over one key range no
// longer forces every region's batch out early.
func (c *Client) flushRegion(tr *tableRegion, sp telemetry.TSpan) error {
	batch := c.buffers[tr]
	if len(batch) == 0 {
		delete(c.buffers, tr)
		return nil
	}
	var err error
	for attempt := 0; ; attempt++ {
		rpcSp := sp.Child("rpc.mutate")
		err = c.rpc.mutate(tr, batch, rpcSp)
		rpcSp.End()
		if err == nil {
			break
		}
		var over *OverloadedError
		if !errors.As(err, &over) || c.retryMax < 0 || attempt >= c.retryMax {
			if over != nil {
				c.shedFails++
				c.shedFailsC.Inc()
			}
			return fmt.Errorf("hbase: flush to %s: %w", tr.info.Name, err)
		}
		c.retries++
		c.retriesC.Inc()
		time.Sleep(c.backoffDelay(attempt, over.RetryAfter))
	}
	c.buffered -= mutationBytes(batch)
	delete(c.buffers, tr)
	return nil
}

// backoffDelay computes the wait before retry #attempt: exponential from
// RetryBaseDelay, capped at RetryMaxDelay, jittered over [d/2, d) so
// concurrent shed clients don't retry in lockstep, and never below the
// server's retry-after hint.
func (c *Client) backoffDelay(attempt int, hint time.Duration) time.Duration {
	d := c.retryBase << uint(attempt)
	if d > c.retryCap || d <= 0 { // <= 0: shift overflow
		d = c.retryCap
	}
	if half := d / 2; half > 0 {
		d = half + time.Duration(c.rng.Int63n(int64(half)+1))
	}
	if d < hint {
		d = hint
	}
	return d
}

// RetryStats reports how many shed mutates this client retried and how many
// exhausted their retries, for retry-aware op accounting upstream.
func (c *Client) RetryStats() (retries, exhausted int64) {
	return c.retries, c.shedFails
}

// mutationBytes is the buffer accounting for a batch: the same per-mutation
// size buffer() adds.
func mutationBytes(batch []Mutation) int64 {
	var n int64
	for i := range batch {
		n += int64(len(batch[i].Key) + len(batch[i].Value))
	}
	return n
}

// BufferedBytes reports the current client-side buffer occupancy.
func (c *Client) BufferedBytes() int64 { return c.buffered }

// Get reads one key from the region's primary, after flushing any buffered
// write for that region so the client reads its own writes. Only the
// target region's batch is shipped — other regions keep batching.
func (c *Client) Get(key []byte) ([]byte, bool, error) {
	if c.closed {
		return nil, false, ErrClientClosed
	}
	_, sp := c.tracer.StartTrace("client.get")
	defer sp.End()
	tr := c.table.locate(key)
	if len(c.buffers[tr]) > 0 {
		if err := c.flushRegion(tr, sp); err != nil {
			return nil, false, err
		}
	}
	gsp := sp.Child("rpc.get")
	v, ok, err := c.rpc.get(tr, key, gsp)
	gsp.End()
	return v, ok, err
}

// Scan reads all rows with lo <= key < hi (nil hi scans to the table end)
// and materializes the whole result. It is a thin wrapper over Scanner for
// callers that want a slice; use NewScanner to stream in O(chunk) memory.
// limit <= 0 is unlimited.
func (c *Client) Scan(lo, hi []byte, limit int) ([]Row, error) {
	sc, err := c.NewScanner(lo, hi, limit)
	if err != nil {
		return nil, err
	}
	defer sc.Close()
	var out []Row
	for {
		row, ok, err := sc.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}

// rangesOverlap reports whether scan range [lo,hi) intersects region range
// [start,end), treating nil as unbounded.
func rangesOverlap(lo, hi, start, end []byte) bool {
	if hi != nil && start != nil && bytes.Compare(hi, start) <= 0 {
		return false
	}
	if end != nil && lo != nil && bytes.Compare(lo, end) >= 0 {
		return false
	}
	return true
}

// Close flushes outstanding writes, releases the transport and invalidates
// the client.
func (c *Client) Close() error {
	if c.closed {
		return nil
	}
	err := c.FlushCommits()
	c.closed = true
	if cerr := c.rpc.close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
