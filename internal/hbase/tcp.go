package hbase

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"

	"tpcxiot/internal/lsm"
	"tpcxiot/internal/telemetry"
)

// ErrNoTCP is returned when TCP clients are requested before ServeTCP.
var ErrNoTCP = errors.New("hbase: cluster is not serving TCP")

// tcpState holds the cluster's network listeners.
type tcpState struct {
	listeners []net.Listener
	addrs     []string
	wg        sync.WaitGroup
}

// ServeTCP starts one loopback TCP listener per region server, making the
// cluster reachable over the wire protocol. Call before creating TCP
// clients; Close (or the returned stop function) shuts the listeners down.
func (cl *Cluster) ServeTCP() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return ErrClusterClosed
	}
	if cl.tcp != nil {
		return nil
	}
	st := &tcpState{}
	for _, srv := range cl.servers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			st.stop()
			return fmt.Errorf("hbase: listen for server %d: %w", srv.ID(), err)
		}
		st.listeners = append(st.listeners, ln)
		st.addrs = append(st.addrs, ln.Addr().String())
		st.wg.Add(1)
		go cl.acceptLoop(st, ln, srv)
	}
	cl.tcp = st
	return nil
}

func (st *tcpState) stop() {
	for _, ln := range st.listeners {
		ln.Close()
	}
}

// ServerAddrs returns the TCP address of each region server, index-aligned
// with Servers(). Empty until ServeTCP.
func (cl *Cluster) ServerAddrs() []string {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	if cl.tcp == nil {
		return nil
	}
	return append([]string(nil), cl.tcp.addrs...)
}

func (cl *Cluster) acceptLoop(st *tcpState, ln net.Listener, srv *RegionServer) {
	defer st.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		go cl.serveConn(conn, srv)
	}
}

// serveConn handles one client connection: a loop of request frames.
func (cl *Cluster) serveConn(conn net.Conn, srv *RegionServer) {
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 256<<10)
	w := bufio.NewWriterSize(conn, 256<<10)
	var req frameReader
	var resp frameWriter
	for {
		if err := req.readFrame(r); err != nil {
			return // EOF or broken frame: drop the connection
		}
		cl.dispatch(&req, &resp, srv)
		if err := resp.flush(w); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// dispatch executes one request against the server and builds the response.
// A sampled request (trace header present) gets its server-side work
// collected in a joined trace whose spans are shipped back on the response
// frame, right after the status, for client-side stitching.
func (cl *Cluster) dispatch(req *frameReader, resp *frameWriter, srv *RegionServer) {
	fail := func(err error) {
		var over *OverloadedError
		if errors.As(err, &over) {
			resp.reset(statusOverloaded)
			resp.uvarint(uint64(over.RetryAfter.Microseconds()))
			return
		}
		resp.reset(statusErr)
		resp.str(err.Error())
	}
	tctx, err := req.traceContext()
	if err != nil {
		fail(err)
		return
	}
	rop := telemetry.JoinRemote(tctx)
	parent := rop.RemoteParent(tctx)
	ok := func() {
		resp.reset(statusOK)
		resp.spans(rop.TakeSpans())
	}
	regionName, err := req.str()
	if err != nil {
		fail(err)
		return
	}
	tr := cl.findRegion(regionName)
	if tr == nil {
		fail(fmt.Errorf("hbase: unknown region %q", regionName))
		return
	}

	switch req.op {
	case opMutate:
		n, err := req.uvarint()
		if err != nil {
			fail(err)
			return
		}
		batch := make([]Mutation, 0, n)
		for i := uint64(0); i < n; i++ {
			del, err := req.uvarint()
			if err != nil {
				fail(err)
				return
			}
			key, err := req.bytes()
			if err != nil {
				fail(err)
				return
			}
			value, err := req.bytes()
			if err != nil {
				fail(err)
				return
			}
			batch = append(batch, Mutation{
				Key:    append([]byte(nil), key...),
				Value:  append([]byte(nil), value...),
				Delete: del == 1,
			})
		}
		if err := srv.mutateTraced(tr.group, batch, parent); err != nil {
			fail(err)
			return
		}
		ok()

	case opGet:
		key, err := req.bytes()
		if err != nil {
			fail(err)
			return
		}
		v, found, err := srv.getTraced(tr.replicas[0], key, parent)
		if err != nil {
			fail(err)
			return
		}
		ok()
		if found {
			resp.uvarint(1)
			resp.bytes(v)
		} else {
			resp.uvarint(0)
		}

	case opScanOpen:
		lo, err := req.optBytes()
		if err != nil {
			fail(err)
			return
		}
		hi, err := req.optBytes()
		if err != nil {
			fail(err)
			return
		}
		limit, err := req.uvarint()
		if err != nil {
			fail(err)
			return
		}
		id, err := srv.openScannerTraced(tr.replicas[0], lo, hi, int(limit), parent)
		if err != nil {
			fail(err)
			return
		}
		ok()
		resp.uvarint(id)

	case opScanNext:
		id, err := req.uvarint()
		if err != nil {
			fail(err)
			return
		}
		chunk, err := req.uvarint()
		if err != nil {
			fail(err)
			return
		}
		rows, more, err := srv.nextTraced(id, int(chunk), parent)
		if err != nil {
			fail(err)
			return
		}
		ok()
		if more {
			resp.uvarint(1)
		} else {
			resp.uvarint(0)
		}
		resp.uvarint(uint64(len(rows)))
		for _, row := range rows {
			resp.bytes(row.Key)
			resp.bytes(row.Value)
		}

	case opAggregate:
		lo, err := req.optBytes()
		if err != nil {
			fail(err)
			return
		}
		hi, err := req.optBytes()
		if err != nil {
			fail(err)
			return
		}
		var minTS, maxTS, windowMS uint64
		for _, dst := range []*uint64{&minTS, &maxTS, &windowMS} {
			if *dst, err = req.uvarint(); err != nil {
				fail(err)
				return
			}
		}
		funcs, err := req.uvarint()
		if err != nil {
			fail(err)
			return
		}
		res, err := srv.aggregateTraced(tr.replicas[0], lo, hi,
			int64(minTS), int64(maxTS), int64(windowMS), lsm.AggFuncs(funcs), parent)
		if err != nil {
			fail(err)
			return
		}
		ok()
		resp.uvarint(uint64(res.RowsFolded))
		resp.uvarint(uint64(len(res.Windows)))
		for i := range res.Windows {
			w := &res.Windows[i]
			resp.bytes(w.Series)
			resp.uvarint(uint64(w.WindowStart))
			resp.uvarint(uint64(w.Count))
			resp.uvarint(math.Float64bits(w.Min))
			resp.uvarint(math.Float64bits(w.Max))
			resp.uvarint(math.Float64bits(w.Sum))
		}

	case opScanClose:
		id, err := req.uvarint()
		if err != nil {
			fail(err)
			return
		}
		if err := srv.closeScanner(id); err != nil {
			fail(err)
			return
		}
		ok()

	default:
		fail(fmt.Errorf("hbase: unknown opcode %d", req.op))
	}
}

// findRegion resolves a region name to its routing entry.
func (cl *Cluster) findRegion(name string) *tableRegion {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	for _, t := range cl.tables {
		for _, tr := range t.regions {
			if tr.info.Name == name {
				return tr
			}
		}
	}
	return nil
}

// stopTCPLocked closes listeners; caller holds cl.mu.
func (cl *Cluster) stopTCPLocked() {
	if cl.tcp != nil {
		cl.tcp.stop()
		cl.tcp = nil
	}
}
