package hbase

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestSplitRegionRedistributesData(t *testing.T) {
	cl, c := newTestCluster(t, 4, nil)
	const n = 400
	for i := 0; i < n; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	tbl, _ := cl.Table("iot")
	if tbl.RegionCount() != 1 {
		t.Fatalf("precondition: %d regions", tbl.RegionCount())
	}

	mid, err := cl.MedianSplitKey("iot", []byte("k0000"))
	if err != nil {
		t.Fatal(err)
	}
	if string(mid) != fmt.Sprintf("k%04d", n/2) {
		t.Fatalf("median split key = %q", mid)
	}
	if err := cl.SplitRegion("iot", mid); err != nil {
		t.Fatal(err)
	}
	if tbl.RegionCount() != 2 {
		t.Fatalf("RegionCount after split = %d", tbl.RegionCount())
	}

	// A fresh client sees all data, correctly routed across the children.
	c2, err := cl.NewClient("iot", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	rows, err := c2.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != n {
		t.Fatalf("post-split scan = %d rows, want %d", len(rows), n)
	}
	for i := 1; i < len(rows); i++ {
		if bytes.Compare(rows[i-1].Key, rows[i].Key) >= 0 {
			t.Fatal("post-split scan out of order")
		}
	}
	// Point reads on both sides, and new writes route to the children.
	for _, k := range []string{"k0010", "k0350"} {
		if _, ok, err := c2.Get([]byte(k)); err != nil || !ok {
			t.Fatalf("Get(%q) after split: %v", k, err)
		}
	}
	if err := c2.Put([]byte("k0005a"), []byte("new-left")); err != nil {
		t.Fatal(err)
	}
	if err := c2.Put([]byte("k0399a"), []byte("new-right")); err != nil {
		t.Fatal(err)
	}
	if tbl.RegionFor([]byte("k0005a")) == tbl.RegionFor([]byte("k0399a")) {
		t.Fatal("post-split writes landed in the same region")
	}
}

func TestSplitRegionPreservesReplication(t *testing.T) {
	cl, c := newTestCluster(t, 5, nil)
	for i := 0; i < 100; i++ {
		c.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	if err := cl.SplitRegion("iot", []byte("k050")); err != nil {
		t.Fatal(err)
	}
	tbl, _ := cl.Table("iot")
	for _, tr := range tbl.regions {
		if tr.group.Factor() != 3 {
			t.Fatalf("child %s has factor %d", tr.info.Name, tr.group.Factor())
		}
		// Every replica holds the child's full data.
		var counts []int
		for _, rep := range tr.replicas {
			count := 0
			if err := rep.Scan(nil, nil, func(k, v []byte) error { count++; return nil }); err != nil {
				t.Fatal(err)
			}
			counts = append(counts, count)
		}
		for _, ct := range counts[1:] {
			if ct != counts[0] {
				t.Fatalf("child %s replicas diverge: %v", tr.info.Name, counts)
			}
		}
		if counts[0] != 50 {
			t.Fatalf("child %s holds %d rows, want 50", tr.info.Name, counts[0])
		}
	}
}

func TestSplitRegionValidation(t *testing.T) {
	cl, c := newTestCluster(t, 3, [][]byte{[]byte("m")})
	c.Put([]byte("a"), []byte("v"))
	if err := cl.SplitRegion("nope", []byte("x")); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("unknown table: %v", err)
	}
	// Splitting at an existing boundary is rejected.
	if err := cl.SplitRegion("iot", []byte("m")); !errors.Is(err, ErrBadSplitKey) {
		t.Fatalf("boundary split: %v", err)
	}
}

func TestSplitThenSplitAgain(t *testing.T) {
	cl, c := newTestCluster(t, 3, nil)
	for i := 0; i < 300; i++ {
		c.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	if err := cl.SplitRegion("iot", []byte("k0100")); err != nil {
		t.Fatal(err)
	}
	if err := cl.SplitRegion("iot", []byte("k0200")); err != nil {
		t.Fatal(err)
	}
	tbl, _ := cl.Table("iot")
	if tbl.RegionCount() != 3 {
		t.Fatalf("RegionCount = %d after two splits", tbl.RegionCount())
	}
	c2, _ := cl.NewClient("iot", 0)
	rows, err := c2.Scan(nil, nil, 0)
	if err != nil || len(rows) != 300 {
		t.Fatalf("scan after repeated splits: %d rows, %v", len(rows), err)
	}
}
