package hbase

import (
	"sort"
	"time"

	"tpcxiot/internal/lsm"
	"tpcxiot/internal/replication"
)

// RegionStorage is one hosted replica's view in a StorageReport: the
// engine's cumulative stats plus its live table files.
type RegionStorage struct {
	Region string          `json:"region"`
	Server int             `json:"server"`
	Stats  lsm.Stats       `json:"stats"`
	Tables []lsm.TableStat `json:"tables"`
	// Tiers groups the same tables by compaction time window (newest
	// first): the hot window still absorbing flushes, and cold windows
	// settled to (or converging on) one table each.
	Tiers []lsm.TierStat `json:"tiers,omitempty"`
	// Watermark is the replica's applied replication sequence — how far
	// this copy has caught up with its group's WAL order.
	Watermark uint64 `json:"watermark"`
}

// RegionReplication is one region's quorum-pipeline snapshot in a
// StorageReport: the commit watermark, each member's applied watermark and
// catch-up queue depth, and the worst member lag.
type RegionReplication struct {
	Region string                 `json:"region"`
	Group  replication.GroupStats `json:"group"`
	MaxLag uint64                 `json:"max_lag"`
}

// StorageReport is the /storage document: the cluster-wide amplification
// ledger with per-replica breakdowns. Totals sums every replica's stats, so
// with replication factor R the physical write traffic is roughly R× a
// single copy's — that is the point: the report shows what the cluster
// actually wrote, not what one store did.
type StorageReport struct {
	Timestamp time.Time `json:"timestamp"`
	Servers   int       `json:"servers"`

	// Totals is the component-wise sum over every hosted replica.
	Totals lsm.Stats `json:"totals"`

	// Derived ratios over Totals, precomputed so consumers need no math.
	WriteAmplification     float64 `json:"write_amplification"`
	ReadAmplification      float64 `json:"read_amplification"`
	CacheHitRate           float64 `json:"cache_hit_rate"`
	BloomFalsePositiveRate float64 `json:"bloom_false_positive_rate"`

	Regions []RegionStorage `json:"regions"`

	// Replication is the per-region quorum-pipeline view: watermarks and
	// catch-up queue depths for every replication group.
	Replication []RegionReplication `json:"replication,omitempty"`
}

// addStats accumulates b into a component-wise. Ratios are recomputed from
// the summed ledger by the caller, never summed themselves.
func addStats(a *lsm.Stats, b lsm.Stats) {
	a.Puts += b.Puts
	a.Deletes += b.Deletes
	a.Gets += b.Gets
	a.Scans += b.Scans
	a.Flushes += b.Flushes
	a.Compactions += b.Compactions
	a.StallEvents += b.StallEvents
	a.BatchApplies += b.BatchApplies
	a.LogicalBytes += b.LogicalBytes
	a.WALBytes += b.WALBytes
	a.FlushBytes += b.FlushBytes
	a.CompactReadBytes += b.CompactReadBytes
	a.CompactWriteBytes += b.CompactWriteBytes
	a.LogicalReadBytes += b.LogicalReadBytes
	a.DiskReadBytes += b.DiskReadBytes
	a.BloomHits += b.BloomHits
	a.BloomSkips += b.BloomSkips
	a.BloomFalsePositives += b.BloomFalsePositives
	a.CacheHits += b.CacheHits
	a.CacheMisses += b.CacheMisses
	a.CacheEvictions += b.CacheEvictions
	a.CacheUsedBytes += b.CacheUsedBytes
	a.CompressRawBytes += b.CompressRawBytes
	a.CompressStoredBytes += b.CompressStoredBytes
	a.PruneKeySkips += b.PruneKeySkips
	a.PruneTimeSkips += b.PruneTimeSkips
	a.Tables += b.Tables
	a.TableBytes += b.TableBytes
	a.MemtableBytes += b.MemtableBytes
	a.CompactionDebtBytes += b.CompactionDebtBytes
}

// Storage snapshots every hosted replica's engine stats and table files
// into one report. Safe to call concurrently with ingest; each replica is
// snapshotted independently, so the totals are approximate under load.
func (cl *Cluster) Storage() StorageReport {
	rep := StorageReport{Timestamp: time.Now()}
	for _, srv := range cl.Servers() {
		rep.Servers++
		for _, r := range srv.Regions() {
			rep.Regions = append(rep.Regions, RegionStorage{
				Region:    r.Info().Name,
				Server:    srv.ID(),
				Stats:     r.Stats(),
				Tables:    r.TableStats(),
				Tiers:     r.TierStats(),
				Watermark: r.AppliedWatermark(),
			})
		}
	}
	sort.Slice(rep.Regions, func(i, j int) bool {
		if rep.Regions[i].Region != rep.Regions[j].Region {
			return rep.Regions[i].Region < rep.Regions[j].Region
		}
		return rep.Regions[i].Server < rep.Regions[j].Server
	})
	for name, g := range cl.groups() {
		st := g.Stats()
		rep.Replication = append(rep.Replication, RegionReplication{
			Region: name,
			Group:  st,
			MaxLag: st.MaxLag(),
		})
	}
	sort.Slice(rep.Replication, func(i, j int) bool {
		return rep.Replication[i].Region < rep.Replication[j].Region
	})
	for i := range rep.Regions {
		addStats(&rep.Totals, rep.Regions[i].Stats)
	}
	rep.WriteAmplification = rep.Totals.WriteAmplification()
	rep.ReadAmplification = rep.Totals.ReadAmplification()
	rep.CacheHitRate = rep.Totals.CacheHitRate()
	rep.BloomFalsePositiveRate = rep.Totals.BloomFalsePositiveRate()
	return rep
}

// RegionHealth is one replica's liveness in a HealthReport.
type RegionHealth struct {
	Region string     `json:"region"`
	Server int        `json:"server"`
	Health lsm.Health `json:"health"`
}

// SustainedShedStreak is how many consecutive load-sheds (with no admit in
// between) on one server mark the cluster overloaded in /healthz. Isolated
// sheds are a healthy pressure valve — retryable, invisible to the status
// code; only a sustained run of them turns the endpoint 503.
const SustainedShedStreak = 16

// HealthReport is the /healthz document. OK means every replica is open,
// no writer is blocked on store-file backpressure, and no server is under
// sustained overload; Unhealthy lists only the replicas that are not OK, so
// a healthy cluster's report is small no matter its size.
type HealthReport struct {
	Timestamp    time.Time `json:"timestamp"`
	OK           bool      `json:"ok"`
	Regions      int       `json:"regions"`
	Stalled      int       `json:"stalled"`       // replicas with blocked writers
	StallWaiters int64     `json:"stall_waiters"` // writers blocked cluster-wide
	FlushPending int       `json:"flush_pending"` // replicas with an immutable memtable

	// Admission-control and quorum-pipeline signals.
	Sheds         int64  `json:"sheds"`          // mutates refused under overload, cluster-wide
	ShedStreak    int64  `json:"shed_streak"`    // worst per-server run of consecutive sheds
	Overloaded    bool   `json:"overloaded"`     // a server's streak reached SustainedShedStreak
	CatchUpDepth  int    `json:"catchup_depth"`  // deepest member catch-up queue, in batches
	QuorumLag     uint64 `json:"quorum_lag"`     // worst member lag behind a commit watermark
	StoppedCopies int    `json:"stopped_copies"` // members whose apply worker died

	Unhealthy []RegionHealth `json:"unhealthy,omitempty"`
}

// Health reports cluster liveness: stalls, flush backlog, admission-control
// pressure and replication lag across every hosted replica. OK goes false —
// and the HTTP endpoint 503 — only on conditions that persist: blocked
// writers, dead members, or a sustained shed streak; a transient shed or a
// straggler mid-catch-up keeps the cluster healthy.
func (cl *Cluster) Health() HealthReport {
	rep := HealthReport{Timestamp: time.Now(), OK: true}
	for _, srv := range cl.Servers() {
		st := srv.Stats()
		rep.Sheds += st.Sheds
		if st.ShedStreak > rep.ShedStreak {
			rep.ShedStreak = st.ShedStreak
		}
		if st.ShedStreak >= SustainedShedStreak {
			rep.Overloaded = true
			rep.OK = false
		}
		for _, r := range srv.Regions() {
			h := r.Health()
			rep.Regions++
			if h.Stalled {
				rep.Stalled++
			}
			rep.StallWaiters += h.StallWaiters
			if h.FlushPending {
				rep.FlushPending++
			}
			if !h.OK() {
				rep.OK = false
				rep.Unhealthy = append(rep.Unhealthy, RegionHealth{
					Region: r.Info().Name,
					Server: srv.ID(),
					Health: h,
				})
			}
		}
	}
	for _, g := range cl.groups() {
		st := g.Stats()
		if lag := st.MaxLag(); lag > rep.QuorumLag {
			rep.QuorumLag = lag
		}
		for _, q := range st.Queue {
			if q > rep.CatchUpDepth {
				rep.CatchUpDepth = q
			}
		}
		for _, stopped := range st.Stopped {
			if stopped {
				rep.StoppedCopies++
				rep.OK = false
			}
		}
	}
	sort.Slice(rep.Unhealthy, func(i, j int) bool {
		if rep.Unhealthy[i].Region != rep.Unhealthy[j].Region {
			return rep.Unhealthy[i].Region < rep.Unhealthy[j].Region
		}
		return rep.Unhealthy[i].Server < rep.Unhealthy[j].Server
	})
	return rep
}
