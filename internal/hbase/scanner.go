package hbase

import (
	"fmt"

	"tpcxiot/internal/telemetry"
)

// DefaultScanChunk is the number of rows fetched per scanner-session next
// call when the caller does not choose a chunk size. TPCx-IoT's dashboard
// intervals hold a few hundred readings, so the default streams a typical
// query in one or two chunks without ever materializing a large range.
const DefaultScanChunk = 128

// defaultScanChunk is the server-side fallback for a next call that asks
// for a non-positive chunk.
const defaultScanChunk = DefaultScanChunk

// Scanner streams rows with lo <= key < hi in key order, region by region —
// the client half of the scanner-session protocol, mirroring HBase's
// ClientScanner. Each overlapping region is scanned through a server-side
// snapshot scanner in fixed-size chunks, and while the caller consumes one
// chunk the Scanner prefetches the next, overlapping aggregation with the
// chunk RPC. Memory use is O(chunk), independent of the result size.
//
// A Scanner belongs to its Client and, like the Client, serves a single
// goroutine. While a Scanner is open the owning client must not issue
// other operations (the prefetched chunk may be in flight on the shared
// connection); fully drain or Close it first.
type Scanner struct {
	c      *Client
	lo, hi []byte
	chunk  int

	limited   bool
	remaining int // rows still to hand out when limited

	regions []*tableRegion // overlapping regions in key order
	ri      int            // index of the region being scanned
	id      uint64         // open scanner-session id on regions[ri]
	open    bool           // a server-side session is open
	pre     chan chunkResult

	cur    []Row
	curIdx int
	done   bool
	closed bool
	err    error
}

// chunkResult is one prefetched chunk.
type chunkResult struct {
	rows []Row
	more bool
	err  error
}

// NewScanner opens a streaming scan over [lo, hi) with the default chunk
// size. limit <= 0 is unlimited. Buffered writes are flushed for the
// overlapping regions only, so the scan reads its own writes without
// forcing unrelated regions' batches out early.
func (c *Client) NewScanner(lo, hi []byte, limit int) (*Scanner, error) {
	return c.NewScannerChunk(lo, hi, limit, DefaultScanChunk)
}

// NewScannerChunk is NewScanner with an explicit rows-per-chunk size.
func (c *Client) NewScannerChunk(lo, hi []byte, limit, chunk int) (*Scanner, error) {
	if c.closed {
		return nil, ErrClientClosed
	}
	if chunk <= 0 {
		chunk = DefaultScanChunk
	}
	s := &Scanner{
		c:         c,
		lo:        lo,
		hi:        hi,
		chunk:     chunk,
		limited:   limit > 0,
		remaining: limit,
	}
	_, sp := c.tracer.StartTrace("client.scan_setup")
	defer sp.End()
	for _, tr := range c.table.regions {
		if !rangesOverlap(lo, hi, tr.info.StartKey, tr.info.EndKey) {
			continue
		}
		if err := c.flushRegion(tr, sp); err != nil {
			return nil, err
		}
		s.regions = append(s.regions, tr)
	}
	return s, nil
}

// Next returns the next row in key order. ok=false without an error means
// the scan is exhausted. Rows are owned copies, safe to retain.
func (s *Scanner) Next() (Row, bool, error) {
	for {
		if s.err != nil || s.closed || s.done {
			return Row{}, false, s.err
		}
		if s.curIdx < len(s.cur) {
			row := s.cur[s.curIdx]
			s.curIdx++
			if s.limited {
				s.remaining--
				if s.remaining <= 0 {
					// The server closed the session when its own limit hit;
					// nothing remains to release.
					s.done = true
					s.open = false
					s.drainPrefetch()
				}
			}
			return row, true, nil
		}
		s.fill()
	}
}

// fill advances to the next non-empty chunk: receiving the prefetched
// chunk of the current region, moving to the next region, or finishing.
func (s *Scanner) fill() {
	for {
		if s.open {
			res := <-s.pre
			s.pre = nil
			if res.err != nil {
				s.open = false
				s.err = fmt.Errorf("hbase: scan %s: %w", s.regions[s.ri].info.Name, res.err)
				return
			}
			if res.more {
				// Overlap the caller's consumption of this chunk with the
				// next chunk's RPC.
				s.prefetch()
			} else {
				s.open = false
				s.ri++
			}
			if len(res.rows) > 0 {
				s.cur, s.curIdx = res.rows, 0
				return
			}
			continue
		}
		if s.ri >= len(s.regions) || (s.limited && s.remaining <= 0) {
			s.done = true
			return
		}
		tr := s.regions[s.ri]
		lim := 0
		if s.limited {
			lim = s.remaining
		}
		_, sp := s.c.tracer.StartTrace("client.scan_open")
		osp := sp.Child("rpc.scan_open")
		id, err := s.c.rpc.openScanner(tr, s.lo, s.hi, lim, osp)
		osp.End()
		sp.End()
		if err != nil {
			s.err = fmt.Errorf("hbase: scan %s: %w", tr.info.Name, err)
			return
		}
		s.id = id
		s.open = true
		s.prefetch()
	}
}

// prefetch launches the next chunk fetch. Exactly one fetch is ever in
// flight, so the single-outstanding-request transport contract holds. Each
// chunk fetch is its own trace root — a sampled chunk carries the server's
// scan_next spans beneath its rpc.scan_next span.
func (s *Scanner) prefetch() {
	ch := make(chan chunkResult, 1)
	s.pre = ch
	tr, id, chunk, rpc, tracer := s.regions[s.ri], s.id, s.chunk, s.c.rpc, s.c.tracer
	go func() {
		_, sp := tracer.StartTrace("client.scan_chunk")
		nsp := sp.Child("rpc.scan_next")
		rows, more, err := rpc.scanNext(tr, id, chunk, nsp)
		nsp.End()
		sp.End()
		ch <- chunkResult{rows: rows, more: more, err: err}
	}()
}

// drainPrefetch waits out an in-flight chunk fetch so the transport is
// quiescent; the result is discarded but updates session-open state.
func (s *Scanner) drainPrefetch() {
	if s.pre == nil {
		return
	}
	res := <-s.pre
	s.pre = nil
	if res.err != nil || !res.more {
		s.open = false
	} else {
		s.open = true
	}
}

// Close releases the scanner, abandoning any open server-side session.
// Safe to call more than once and after exhaustion.
func (s *Scanner) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.drainPrefetch()
	if s.open {
		s.open = false
		if err := s.c.rpc.closeScanner(s.regions[s.ri], s.id, telemetry.TSpan{}); err != nil {
			return err
		}
	}
	return nil
}
