package hbase

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"tpcxiot/internal/lsm"
	"tpcxiot/internal/telemetry"
	"tpcxiot/internal/wal"
)

// newTracedTCPCluster builds a TCP cluster that samples every client
// operation into the returned tracer.
func newTracedTCPCluster(t *testing.T, nodes int, splits [][]byte) (*Client, *telemetry.Tracer) {
	t.Helper()
	tracer := telemetry.NewTracer(telemetry.TracerOptions{SampleEvery: 1})
	cl, err := NewCluster(Config{
		Nodes:   nodes,
		DataDir: t.TempDir(),
		Store:   lsm.Options{WALSync: wal.SyncNever},
		Tracer:  tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if _, err := cl.CreateTable("iot", splits); err != nil {
		t.Fatal(err)
	}
	if err := cl.ServeTCP(); err != nil {
		t.Fatal(err)
	}
	c, err := cl.NewTCPClient("iot", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, tracer
}

// traceByRoot finds the first completed trace whose root span has the name.
func traceByRoot(tr *telemetry.Tracer, root string) *telemetry.Trace {
	for _, trace := range tr.Traces() {
		if trace.Root().Name == root {
			return trace
		}
	}
	return nil
}

// spanNames collects the set of span names in a trace.
func spanNames(tr *telemetry.Trace) map[string]telemetry.SpanRecord {
	out := make(map[string]telemetry.SpanRecord, len(tr.Spans))
	for _, s := range tr.Spans {
		out[s.Name] = s
	}
	return out
}

// TestTCPPutTraceStitched is the acceptance test for the tracing tentpole:
// one Put over the TCP wire protocol must yield a single stitched trace
// whose client-side span tree contains the server's WAL and LSM child spans,
// all sharing the client's trace id.
func TestTCPPutTraceStitched(t *testing.T) {
	c, tracer := newTracedTCPCluster(t, 3, nil)

	if err := c.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}

	trace := traceByRoot(tracer, "client.put")
	if trace == nil {
		t.Fatalf("no client.put trace; have %d traces", len(tracer.Traces()))
	}
	names := spanNames(trace)
	for _, want := range []string{
		"client.put", "client.flush", "rpc.mutate", // client side
		"server.mutate", "replication.fanout", // server side, shipped back
		"region.apply", "lsm.apply_batch", "wal.append", "lsm.memtable_insert",
	} {
		if _, ok := names[want]; !ok {
			t.Errorf("trace missing span %q; has %v", want, keys(names))
		}
	}
	root := trace.Root()
	for name, s := range names {
		if s.TraceID != root.TraceID {
			t.Errorf("span %q trace id %x, want %x", name, s.TraceID, root.TraceID)
		}
	}
	// The server span parents under the client's RPC span: the tree is
	// stitched, not two disjoint fragments.
	if names["server.mutate"].ParentID != names["rpc.mutate"].SpanID {
		t.Errorf("server.mutate parent %x, want rpc.mutate %x",
			names["server.mutate"].ParentID, names["rpc.mutate"].SpanID)
	}
	if names["wal.append"].ParentID != names["lsm.apply_batch"].SpanID {
		t.Errorf("wal.append parent %x, want lsm.apply_batch %x",
			names["wal.append"].ParentID, names["lsm.apply_batch"].SpanID)
	}
	// Engine spans carry the region's service (node/region), not the client's.
	if svc := names["lsm.apply_batch"].Service; !strings.Contains(svc, "/iot") {
		t.Errorf("lsm.apply_batch service = %q, want node-NN/region", svc)
	}

	// The whole buffer must export as valid Chrome trace-event JSON.
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, tracer.Traces()); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("chrome trace export is not valid JSON")
	}
}

// TestTCPScanChunkTraced asserts each scanner chunk fetch produces its own
// stitched trace containing the server's scan_next span.
func TestTCPScanChunkTraced(t *testing.T) {
	c, tracer := newTracedTCPCluster(t, 3, nil)
	for i := 0; i < 64; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := c.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 64 {
		t.Fatalf("scanned %d rows", len(rows))
	}

	trace := traceByRoot(tracer, "client.scan_chunk")
	if trace == nil {
		t.Fatal("no client.scan_chunk trace")
	}
	names := spanNames(trace)
	for _, want := range []string{"client.scan_chunk", "rpc.scan_next", "server.scan_next"} {
		if _, ok := names[want]; !ok {
			t.Errorf("chunk trace missing span %q; has %v", want, keys(names))
		}
	}
	if names["server.scan_next"].ParentID != names["rpc.scan_next"].SpanID {
		t.Error("server.scan_next not parented under rpc.scan_next")
	}
}

// TestInprocPutTraced asserts the in-process transport threads spans through
// without a wire crossing: same tree shape as TCP, no span block involved.
func TestInprocPutTraced(t *testing.T) {
	tracer := telemetry.NewTracer(telemetry.TracerOptions{SampleEvery: 1})
	cl, err := NewCluster(Config{
		Nodes:   3,
		DataDir: t.TempDir(),
		Store:   lsm.Options{WALSync: wal.SyncNever},
		Tracer:  tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.CreateTable("iot", nil); err != nil {
		t.Fatal(err)
	}
	c, err := cl.NewClient("iot", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	trace := traceByRoot(tracer, "client.put")
	if trace == nil {
		t.Fatal("no client.put trace")
	}
	names := spanNames(trace)
	for _, want := range []string{"server.mutate", "replication.fanout", "lsm.apply_batch", "wal.append"} {
		if _, ok := names[want]; !ok {
			t.Errorf("in-process trace missing %q; has %v", want, keys(names))
		}
	}
}

func keys(m map[string]telemetry.SpanRecord) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
