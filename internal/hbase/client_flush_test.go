package hbase

import (
	"errors"
	"fmt"
	"testing"

	"tpcxiot/internal/telemetry"
)

// failingTransport fails mutate RPCs for one region; everything else passes
// through to the in-process transport.
type failingTransport struct {
	inprocTransport
	failRegion string
	err        error
}

func (f *failingTransport) mutate(tr *tableRegion, batch []Mutation, sp telemetry.TSpan) error {
	if tr.info.Name == f.failRegion {
		return f.err
	}
	return f.inprocTransport.mutate(tr, batch, sp)
}

// TestFlushCommitsPartialFailureAccounting: a mid-flush RPC failure must
// leave BufferedBytes equal to exactly the bytes still buffered — regions
// flushed before the failure no longer count — so the autoflush threshold
// and a later retry behave correctly.
func TestFlushCommitsPartialFailureAccounting(t *testing.T) {
	cl, _ := newTestCluster(t, 3, [][]byte{[]byte("m")})
	c, err := cl.NewClient("iot", 1<<30) // no autoflush
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := cl.Table("iot")
	sentinel := errors.New("region server unreachable")
	failing := &failingTransport{failRegion: tbl.RegionFor([]byte("a")), err: sentinel}
	c.rpc = failing

	// Buffer writes to both regions.
	for i := 0; i < 8; i++ {
		if err := c.Put([]byte(fmt.Sprintf("a%03d", i)), []byte("low")); err != nil {
			t.Fatal(err)
		}
		if err := c.Put([]byte(fmt.Sprintf("z%03d", i)), []byte("high")); err != nil {
			t.Fatal(err)
		}
	}
	before := c.BufferedBytes()
	if before == 0 {
		t.Fatal("writes were not buffered")
	}

	if err := c.FlushCommits(); !errors.Is(err, sentinel) {
		t.Fatalf("flush with one region down: %v", err)
	}
	// Invariant: the accounting matches the surviving buffers exactly,
	// whether or not the healthy region flushed before the failure hit.
	var remaining int64
	for _, batch := range c.buffers {
		remaining += mutationBytes(batch)
	}
	if got := c.BufferedBytes(); got != remaining {
		t.Fatalf("BufferedBytes = %d, buffers hold %d", got, remaining)
	}
	if remaining == 0 || remaining > before {
		t.Fatalf("remaining = %d of %d: failed region's batch must stay buffered", remaining, before)
	}

	// Heal the transport: the retry flushes the remainder and zeroes the
	// accounting.
	c.rpc = inprocTransport{}
	if err := c.FlushCommits(); err != nil {
		t.Fatal(err)
	}
	if got := c.BufferedBytes(); got != 0 {
		t.Fatalf("BufferedBytes = %d after successful retry, want 0", got)
	}
	for i := 0; i < 8; i++ {
		for _, k := range []string{fmt.Sprintf("a%03d", i), fmt.Sprintf("z%03d", i)} {
			if _, ok, err := c.Get([]byte(k)); err != nil || !ok {
				t.Fatalf("key %q lost across failed flush + retry: ok=%v err=%v", k, ok, err)
			}
		}
	}
}

// TestMutateBatchSingleEngineRound: one client flush of N buffered writes to
// one region must reach the engine as one batch apply per replica (not N),
// with replication acks counted per member per write.
func TestMutateBatchSingleEngineRound(t *testing.T) {
	cl, _ := newTestCluster(t, 3, nil)
	c, err := cl.NewClient("iot", 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushCommits(); err != nil {
		t.Fatal(err)
	}
	// The flush acks at quorum; wait for the straggler's one catch-up round
	// before counting engine rounds.
	if err := cl.Quiesce(); err != nil {
		t.Fatal(err)
	}
	tbl, _ := cl.Table("iot")
	for i, rep := range tbl.regions[0].replicas {
		st := rep.Store().Stats()
		if st.BatchApplies != 1 {
			t.Fatalf("replica %d applied %d rounds for one flush, want 1", i, st.BatchApplies)
		}
		if st.Puts != n {
			t.Fatalf("replica %d holds %d puts, want %d", i, st.Puts, n)
		}
	}
}
