package hbase

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"tpcxiot/internal/lsm"
	"tpcxiot/internal/wal"
)

func testConfig(t testing.TB, nodes int) Config {
	t.Helper()
	return Config{
		Nodes:   nodes,
		DataDir: t.TempDir(),
		Store:   lsm.Options{WALSync: wal.SyncNever},
	}
}

func newTestCluster(t testing.TB, nodes int, splits [][]byte) (*Cluster, *Client) {
	t.Helper()
	cl, err := NewCluster(testConfig(t, nodes))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if _, err := cl.CreateTable("iot", splits); err != nil {
		t.Fatal(err)
	}
	c, err := cl.NewClient("iot", 0) // autoflush for most tests
	if err != nil {
		t.Fatal(err)
	}
	return cl, c
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewCluster(Config{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("missing DataDir: %v", err)
	}
	if _, err := NewCluster(Config{DataDir: t.TempDir(), Nodes: 2}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("2 nodes with factor 3: %v", err)
	}
	cl, err := NewCluster(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.NodeCount() != 3 || cl.ReplicationFactor() != 3 {
		t.Fatalf("defaults: nodes=%d factor=%d", cl.NodeCount(), cl.ReplicationFactor())
	}
}

func TestPutGetSingleRegion(t *testing.T) {
	_, c := newTestCluster(t, 3, nil)
	if err := c.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get([]byte("k1"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get = %q,%v,%v", v, ok, err)
	}
	if _, ok, _ := c.Get([]byte("absent")); ok {
		t.Fatal("absent key reported present")
	}
}

func TestRoutingAcrossRegions(t *testing.T) {
	splits := [][]byte{[]byte("g"), []byte("p")}
	cl, c := newTestCluster(t, 4, splits)
	tbl, _ := cl.Table("iot")
	if tbl.RegionCount() != 3 {
		t.Fatalf("RegionCount = %d, want 3", tbl.RegionCount())
	}
	// Keys in each range route to distinct regions.
	names := map[string]bool{}
	for _, k := range []string{"apple", "grape", "zebra"} {
		names[tbl.RegionFor([]byte(k))] = true
	}
	if len(names) != 3 {
		t.Fatalf("3 keys in 3 ranges hit %d regions", len(names))
	}
	// Boundary key belongs to the upper region (start inclusive).
	if tbl.RegionFor([]byte("g")) != tbl.RegionFor([]byte("h")) {
		t.Fatal("split key must route to the region it starts")
	}
	for _, k := range []string{"apple", "grape", "zebra", "g", "p"} {
		if err := c.Put([]byte(k), []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []string{"apple", "grape", "zebra", "g", "p"} {
		v, ok, err := c.Get([]byte(k))
		if err != nil || !ok || string(v) != "v-"+k {
			t.Fatalf("Get(%q) = %q,%v,%v", k, v, ok, err)
		}
	}
}

func TestWriteBufferBatching(t *testing.T) {
	cl, _ := newTestCluster(t, 3, nil)
	c, err := cl.NewClient("iot", 10*1024)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{'v'}, 1000)
	// Below threshold: nothing flushed yet, reads of other keys see nothing.
	for i := 0; i < 5; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if c.BufferedBytes() == 0 {
		t.Fatal("writes were not buffered")
	}
	// Crossing the threshold must autoflush.
	for i := 5; i < 15; i++ {
		c.Put([]byte(fmt.Sprintf("k%d", i)), val)
	}
	if c.BufferedBytes() >= 10*1024 {
		t.Fatalf("buffer never autoflushed: %d bytes", c.BufferedBytes())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// All rows visible through a fresh client.
	c2, _ := cl.NewClient("iot", 0)
	for i := 0; i < 15; i++ {
		if _, ok, _ := c2.Get([]byte(fmt.Sprintf("k%d", i))); !ok {
			t.Fatalf("k%d lost", i)
		}
	}
}

func TestReadYourOwnBufferedWrites(t *testing.T) {
	cl, _ := newTestCluster(t, 3, nil)
	c, err := cl.NewClient("iot", 1<<30) // effectively never autoflush
	if err != nil {
		t.Fatal(err)
	}
	c.Put([]byte("mine"), []byte("v"))
	v, ok, err := c.Get([]byte("mine"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("client cannot read its own buffered write: %q,%v,%v", v, ok, err)
	}
	rows, err := c.Scan(nil, nil, 0)
	if err != nil || len(rows) != 1 {
		t.Fatalf("scan after buffered write: %d rows, %v", len(rows), err)
	}
}

func TestScanSpansRegions(t *testing.T) {
	splits := [][]byte{[]byte("k050"), []byte("k100"), []byte("k150")}
	_, c := newTestCluster(t, 4, splits)
	for i := 0; i < 200; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := c.Scan([]byte("k025"), []byte("k175"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 150 {
		t.Fatalf("cross-region scan returned %d rows, want 150", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if bytes.Compare(rows[i-1].Key, rows[i].Key) >= 0 {
			t.Fatal("cross-region scan out of order")
		}
	}
}

func TestScanLimit(t *testing.T) {
	_, c := newTestCluster(t, 3, [][]byte{[]byte("k050")})
	for i := 0; i < 100; i++ {
		c.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	rows, err := c.Scan(nil, nil, 30)
	if err != nil || len(rows) != 30 {
		t.Fatalf("limited scan: %d rows, %v", len(rows), err)
	}
	// Limit spanning a region boundary.
	rows, err = c.Scan([]byte("k045"), nil, 10)
	if err != nil || len(rows) != 10 {
		t.Fatalf("boundary-limited scan: %d rows, %v", len(rows), err)
	}
	if string(rows[0].Key) != "k045" || string(rows[9].Key) != "k054" {
		t.Fatalf("boundary scan rows %q..%q", rows[0].Key, rows[9].Key)
	}
}

func TestDelete(t *testing.T) {
	_, c := newTestCluster(t, 3, nil)
	c.Put([]byte("k"), []byte("v"))
	if err := c.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get([]byte("k")); ok {
		t.Fatal("deleted key visible")
	}
}

func TestReplicationFactorOnAllReplicas(t *testing.T) {
	cl, c := newTestCluster(t, 5, [][]byte{[]byte("m")})
	c.Put([]byte("alpha"), []byte("1"))
	c.Put([]byte("zulu"), []byte("2"))
	// Writes ack at quorum; drain the catch-up queues before asserting
	// all-replica convergence.
	if err := cl.Quiesce(); err != nil {
		t.Fatal(err)
	}

	tbl, _ := cl.Table("iot")
	for _, tr := range tbl.regions {
		if got := tr.group.Factor(); got != 3 {
			t.Fatalf("region %s factor = %d", tr.info.Name, got)
		}
		if len(tr.replicas) != 3 {
			t.Fatalf("region %s has %d replicas", tr.info.Name, len(tr.replicas))
		}
		// Every replica store holds the same data as the primary.
		for _, key := range []string{"alpha", "zulu"} {
			if !tr.info.Contains([]byte(key)) {
				continue
			}
			for ri, rep := range tr.replicas {
				v, ok, err := rep.Store().Get([]byte(key))
				if err != nil || !ok {
					t.Fatalf("replica %d of %s missing %q: %v", ri, tr.info.Name, key, err)
				}
				if want := map[string]string{"alpha": "1", "zulu": "2"}[key]; string(v) != want {
					t.Fatalf("replica %d diverged on %q: %q", ri, key, v)
				}
			}
		}
	}
}

func TestReplicaPlacementDistinctServers(t *testing.T) {
	cl, err := NewCluster(testConfig(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	splits := make([][]byte, 15)
	for i := range splits {
		splits[i] = []byte(fmt.Sprintf("s%02d", i))
	}
	tbl, err := cl.CreateTable("iot", splits)
	if err != nil {
		t.Fatal(err)
	}
	// Count regions per server; 16 regions x 3 replicas over 8 nodes = 6 each.
	for _, srv := range cl.Servers() {
		if got := srv.Stats().Regions; got != 6 {
			t.Fatalf("server %d hosts %d region replicas, want 6", srv.ID(), got)
		}
	}
	if tbl.RegionCount() != 16 {
		t.Fatalf("RegionCount = %d", tbl.RegionCount())
	}
}

func TestDropTablePurgesData(t *testing.T) {
	cl, c := newTestCluster(t, 3, nil)
	c.Put([]byte("k"), []byte("v"))
	if err := cl.DropTable("iot"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Table("iot"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("dropped table still resolvable: %v", err)
	}
	// Recreate: must start empty (system cleanup semantics).
	if _, err := cl.CreateTable("iot", nil); err != nil {
		t.Fatal(err)
	}
	c2, _ := cl.NewClient("iot", 0)
	if _, ok, _ := c2.Get([]byte("k")); ok {
		t.Fatal("data survived drop + recreate")
	}
}

func TestCreateTableValidation(t *testing.T) {
	cl, err := NewCluster(testConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.CreateTable("t", [][]byte{[]byte("b"), []byte("a")}); !errors.Is(err, ErrBadSplits) {
		t.Fatalf("unsorted splits: %v", err)
	}
	if _, err := cl.CreateTable("t", [][]byte{[]byte("a"), []byte("a")}); !errors.Is(err, ErrBadSplits) {
		t.Fatalf("duplicate splits: %v", err)
	}
	if _, err := cl.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CreateTable("t", nil); !errors.Is(err, ErrTableExists) {
		t.Fatalf("duplicate table: %v", err)
	}
}

func TestClosedClusterRejectsOps(t *testing.T) {
	cl, err := NewCluster(testConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if _, err := cl.CreateTable("t", nil); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("CreateTable after close: %v", err)
	}
	if _, err := cl.Table("t"); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("Table after close: %v", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestClosedClientRejectsOps(t *testing.T) {
	_, c := newTestCluster(t, 3, nil)
	c.Close()
	if err := c.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Put after close: %v", err)
	}
	if _, _, err := c.Get([]byte("k")); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Get after close: %v", err)
	}
	if _, err := c.Scan(nil, nil, 0); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Scan after close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	splits := [][]byte{[]byte("c"), []byte("f"), []byte("i")}
	cl, _ := newTestCluster(t, 4, splits)
	const workers = 8
	const per = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := cl.NewClient("iot", 8*1024)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			prefix := string(rune('a' + w%10))
			for i := 0; i < per; i++ {
				k := []byte(fmt.Sprintf("%s-%02d-%04d", prefix, w, i))
				if err := c.Put(k, bytes.Repeat([]byte{'x'}, 128)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	c, _ := cl.NewClient("iot", 0)
	rows, err := c.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != workers*per {
		t.Fatalf("scan found %d rows, want %d", len(rows), workers*per)
	}
}

func TestServerStatsAccumulate(t *testing.T) {
	cl, c := newTestCluster(t, 3, nil)
	for i := 0; i < 10; i++ {
		c.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	c.Scan(nil, nil, 0)
	var mutations, rows int64
	for _, s := range cl.Servers() {
		st := s.Stats()
		mutations += st.Mutations
		rows += st.RowsRead
	}
	if mutations != 10 {
		t.Fatalf("total mutations = %d, want 10", mutations)
	}
	if rows != 10 {
		t.Fatalf("total rows read = %d, want 10", rows)
	}
}
