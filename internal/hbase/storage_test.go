package hbase

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"tpcxiot/internal/lsm"
	"tpcxiot/internal/telemetry"
	"tpcxiot/internal/wal"
)

func TestStorageReport(t *testing.T) {
	cl, c := newTestCluster(t, 3, nil)
	value := bytes.Repeat([]byte("v"), 512)
	const rows = 200
	for i := 0; i < rows; i++ {
		if err := c.Put([]byte(fmt.Sprintf("row%05d", i)), value); err != nil {
			t.Fatal(err)
		}
	}
	// Quorum-acked writes may still be catching up on the third replica;
	// byte accounting below assumes full convergence.
	if err := cl.Quiesce(); err != nil {
		t.Fatal(err)
	}
	for _, srv := range cl.Servers() {
		for _, r := range srv.Regions() {
			if err := r.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}

	rep := cl.Storage()
	if rep.Servers != 3 {
		t.Errorf("servers = %d, want 3", rep.Servers)
	}
	// One region, replication factor 3: three replica entries.
	if len(rep.Regions) != 3 {
		t.Fatalf("replica entries = %d, want 3", len(rep.Regions))
	}
	wantLogical := 3 * int64(rows*(len("row00000")+len(value)))
	if rep.Totals.LogicalBytes != wantLogical {
		t.Errorf("total logical bytes = %d, want %d (3 replicas)", rep.Totals.LogicalBytes, wantLogical)
	}
	if rep.WriteAmplification < 2 {
		t.Errorf("write amp = %.3f, want >= 2 after WAL + flush", rep.WriteAmplification)
	}
	for _, rs := range rep.Regions {
		if len(rs.Tables) == 0 {
			t.Errorf("replica %s@%d has no table stats after flush", rs.Region, rs.Server)
		}
	}
}

func TestHealthReport(t *testing.T) {
	cl, c := newTestCluster(t, 3, nil)
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	rep := cl.Health()
	if !rep.OK {
		t.Fatalf("live cluster unhealthy: %+v", rep)
	}
	if rep.Regions != 3 {
		t.Errorf("replicas = %d, want 3", rep.Regions)
	}
	if len(rep.Unhealthy) != 0 {
		t.Errorf("unhealthy list = %v, want empty", rep.Unhealthy)
	}
}

// TestStorageEndpointsUnderLoad scrapes /storage and /healthz repeatedly
// while writers ingest and forced flush+compaction churns every replica —
// the introspection surface must stay consistent under the race detector.
func TestStorageEndpointsUnderLoad(t *testing.T) {
	cl, err := NewCluster(Config{
		Nodes:   3,
		DataDir: t.TempDir(),
		Store: lsm.Options{
			WALSync:      wal.SyncNever,
			MemtableSize: 64 << 10,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.CreateTable("iot", nil); err != nil {
		t.Fatal(err)
	}

	mux := http.NewServeMux()
	telemetry.MountJSON(mux, "/storage", func() any { return cl.Storage() })
	telemetry.MountHealth(mux, "/healthz", func() (any, bool) {
		h := cl.Health()
		return h, h.OK
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var wg sync.WaitGroup
	value := bytes.Repeat([]byte("v"), 1024)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := cl.NewClient("iot", 0)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 300; i++ {
				if err := c.Put([]byte(fmt.Sprintf("w%d-%05d", w, i)), value); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			for _, s := range cl.Servers() {
				for _, r := range s.Regions() {
					r.Flush()
					r.Store().Compact()
				}
			}
		}
	}()

	scrape := func(path string) (int, []byte) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}
	for i := 0; i < 20; i++ {
		code, body := scrape("/storage")
		if code != http.StatusOK {
			t.Fatalf("/storage status %d", code)
		}
		var st StorageReport
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("/storage not valid JSON: %v", err)
		}
		if st.Servers != 3 || len(st.Regions) != 3 {
			t.Fatalf("/storage shape: servers=%d regions=%d", st.Servers, len(st.Regions))
		}
		code, body = scrape("/healthz")
		var h HealthReport
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("/healthz not valid JSON: %v", err)
		}
		// Backpressure can legitimately stall a replica mid-churn; the
		// status code just has to agree with the document.
		if h.OK != (code == http.StatusOK) {
			t.Fatalf("/healthz status %d disagrees with ok=%v", code, h.OK)
		}
	}
	wg.Wait()

	// After the dust settles the cluster must be healthy and the ledger
	// must reflect both writers on every replica.
	if rep := cl.Health(); !rep.OK {
		t.Errorf("post-load health: %+v", rep)
	}
	st := cl.Storage()
	wantLogical := 3 * int64(2*300*(len("w0-00000")+len(value)))
	if st.Totals.LogicalBytes != wantLogical {
		t.Errorf("total logical bytes = %d, want %d", st.Totals.LogicalBytes, wantLogical)
	}
}
