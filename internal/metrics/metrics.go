// Package metrics implements the three primary TPCx-IoT metrics of Section
// III-F: the performance metric IoTps (Equation 4), the price-performance
// metric $/IoTps (Equation 5), and the system-availability date.
package metrics

import (
	"errors"
	"fmt"
	"time"
)

// ErrNoRuns is returned when a result holds no measured runs.
var ErrNoRuns = errors.New("metrics: result has no measured runs")

// Run is one measured workload execution: the kvps ingested between the
// start and end timestamps (TS_start and TS_end in the paper's notation).
type Run struct {
	// KVPs is N_i, the total number of key-value pairs ingested.
	KVPs int64
	// Start and End bound the measured interval.
	Start, End time.Time
}

// Elapsed is TS_end - TS_start.
func (r Run) Elapsed() time.Duration { return r.End.Sub(r.Start) }

// IoTps computes Equation 4 for this run: N / (TS_end - TS_start) in
// seconds. Returns 0 for a degenerate interval.
func (r Run) IoTps() float64 {
	secs := r.Elapsed().Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(r.KVPs) / secs
}

// Result combines the two measured runs of a benchmark execution with the
// priced configuration's cost and availability.
type Result struct {
	// Runs holds the measured run of each benchmark iteration.
	Runs []Run
	// OwnershipCost is the total 3-year cost of the priced configuration
	// in the pricing currency.
	OwnershipCost float64
	// Availability is the date all priced components are generally
	// available.
	Availability time.Time
}

// PerformanceRun selects the run that defines the reported metric. The
// specification picks the measured run m with N_m < N_n; because TPCx-IoT
// ingests a fixed kvp total, the two runs usually tie on N and the reported
// metric is then the slower (lower-IoTps) run, which keeps the reported
// number conservative and repeatable.
func (res Result) PerformanceRun() (Run, error) {
	if len(res.Runs) == 0 {
		return Run{}, ErrNoRuns
	}
	best := res.Runs[0]
	for _, r := range res.Runs[1:] {
		switch {
		case r.KVPs < best.KVPs:
			best = r
		case r.KVPs == best.KVPs && r.IoTps() < best.IoTps():
			best = r
		}
	}
	return best, nil
}

// IoTps returns the reported performance metric.
func (res Result) IoTps() (float64, error) {
	r, err := res.PerformanceRun()
	if err != nil {
		return 0, err
	}
	return r.IoTps(), nil
}

// PricePerformance computes Equation 5: ownership cost divided by the
// reported IoTps.
func (res Result) PricePerformance() (float64, error) {
	iotps, err := res.IoTps()
	if err != nil {
		return 0, err
	}
	if iotps <= 0 {
		return 0, fmt.Errorf("metrics: non-positive IoTps %v", iotps)
	}
	return res.OwnershipCost / iotps, nil
}

// PerSensorIoTps converts a system-wide rate into the per-sensor rate the
// 20 kvps/s execution rule constrains, given the simulated substation count
// (200 sensors each).
func PerSensorIoTps(systemIoTps float64, substations int) float64 {
	if substations <= 0 {
		return 0
	}
	return systemIoTps / float64(substations*SensorsPerSubstation)
}

// SensorsPerSubstation mirrors the specification's fixed sensor count.
const SensorsPerSubstation = 200

// ScalingFactor returns S_i = IoTps_i / IoTps_1, the normalised scaling the
// paper annotates on Figure 10.
func ScalingFactor(iotpsI, iotps1 float64) float64 {
	if iotps1 <= 0 {
		return 0
	}
	return iotpsI / iotps1
}

// BytesPerSecond converts an IoTps rate to a data rate, using the 1 KiB
// pair size (Equation 1 renders 4 000 kvps/s as 3.91 MB/s).
func BytesPerSecond(iotps float64) float64 { return iotps * 1024 }
