package metrics

import (
	"errors"
	"math"
	"testing"
	"time"
)

func run(kvps int64, secs float64) Run {
	start := time.UnixMilli(1_700_000_000_000)
	return Run{KVPs: kvps, Start: start, End: start.Add(time.Duration(secs * float64(time.Second)))}
}

func TestIoTpsEquation4(t *testing.T) {
	r := run(400_000_000, 2149)
	want := 400_000_000.0 / 2149.0 // the paper's 32-substation row: ~186,109
	if got := r.IoTps(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("IoTps = %v, want %v", got, want)
	}
	if math.Abs(r.IoTps()-186_109) > 100 {
		t.Fatalf("expected ~186109 IoTps for the paper's Table I row, got %v", r.IoTps())
	}
}

func TestIoTpsDegenerateInterval(t *testing.T) {
	r := Run{KVPs: 100, Start: time.Unix(5, 0), End: time.Unix(5, 0)}
	if r.IoTps() != 0 {
		t.Fatal("zero-length run must yield 0 IoTps")
	}
	r.End = time.Unix(4, 0)
	if r.IoTps() != 0 {
		t.Fatal("negative-length run must yield 0 IoTps")
	}
}

func TestPerformanceRunPicksLowerKVPs(t *testing.T) {
	res := Result{Runs: []Run{run(1000, 10), run(900, 5)}}
	pr, err := res.PerformanceRun()
	if err != nil {
		t.Fatal(err)
	}
	if pr.KVPs != 900 {
		t.Fatalf("picked run with %d kvps, want 900", pr.KVPs)
	}
}

func TestPerformanceRunTieBreaksOnSlower(t *testing.T) {
	// Equal N (the normal TPCx-IoT case): report the slower run.
	res := Result{Runs: []Run{run(1000, 5), run(1000, 8)}}
	pr, err := res.PerformanceRun()
	if err != nil {
		t.Fatal(err)
	}
	if pr.Elapsed() != 8*time.Second {
		t.Fatalf("tie-break picked the faster run (%v)", pr.Elapsed())
	}
	iotps, err := res.IoTps()
	if err != nil {
		t.Fatal(err)
	}
	if iotps != 125 {
		t.Fatalf("reported IoTps = %v, want 125 (slower run)", iotps)
	}
}

func TestPerformanceRunTieBreakEdgeCases(t *testing.T) {
	t.Run("equal kvps equal iotps keeps first", func(t *testing.T) {
		// Fully tied runs: the selection is deterministic — the first run
		// is reported, never an arbitrary later one.
		res := Result{Runs: []Run{run(1000, 10), run(1000, 10)}}
		pr, err := res.PerformanceRun()
		if err != nil {
			t.Fatal(err)
		}
		if !pr.Start.Equal(res.Runs[0].Start) || pr.Elapsed() != res.Runs[0].Elapsed() {
			t.Fatalf("tied runs must report the first, got %+v", pr)
		}
	})
	t.Run("zero duration loses nothing but reports zero", func(t *testing.T) {
		// A degenerate (zero-length) run has IoTps 0, which is strictly
		// lower than any real run's: on equal kvps the tie-break selects it
		// and the reported metric collapses to 0 — conservative, and a loud
		// signal that one measured run was broken.
		res := Result{Runs: []Run{run(1000, 10), run(1000, 0)}}
		pr, err := res.PerformanceRun()
		if err != nil {
			t.Fatal(err)
		}
		if pr.IoTps() != 0 {
			t.Fatalf("zero-duration run must win the equal-kvp tie-break, got IoTps %v", pr.IoTps())
		}
		iotps, err := res.IoTps()
		if err != nil || iotps != 0 {
			t.Fatalf("reported IoTps = %v, %v; want 0", iotps, err)
		}
	})
	t.Run("lower kvps beats lower iotps", func(t *testing.T) {
		// N_m < N_n dominates the comparison even when the larger run was
		// slower in rate terms.
		res := Result{Runs: []Run{run(900, 100), run(800, 10)}} // 9 vs 80 IoTps
		pr, err := res.PerformanceRun()
		if err != nil {
			t.Fatal(err)
		}
		if pr.KVPs != 800 {
			t.Fatalf("picked %d kvps, want 800 (lower N wins regardless of rate)", pr.KVPs)
		}
	})
	t.Run("zero duration on unequal kvps", func(t *testing.T) {
		// The degenerate run only matters when it survives the N
		// comparison; with strictly more kvps it is never selected.
		res := Result{Runs: []Run{run(900, 10), run(1000, 0)}}
		pr, err := res.PerformanceRun()
		if err != nil {
			t.Fatal(err)
		}
		if pr.KVPs != 900 {
			t.Fatalf("picked %d kvps, want 900", pr.KVPs)
		}
	})
}

func TestEmptyResult(t *testing.T) {
	var res Result
	if _, err := res.PerformanceRun(); !errors.Is(err, ErrNoRuns) {
		t.Fatalf("empty result: %v", err)
	}
	if _, err := res.IoTps(); !errors.Is(err, ErrNoRuns) {
		t.Fatalf("empty result IoTps: %v", err)
	}
	if _, err := res.PricePerformance(); !errors.Is(err, ErrNoRuns) {
		t.Fatalf("empty result price-perf: %v", err)
	}
}

func TestPricePerformanceEquation5(t *testing.T) {
	res := Result{
		Runs:          []Run{run(100_000, 10), run(100_000, 10)},
		OwnershipCost: 500_000,
	}
	// IoTps = 10,000; $/IoTps = 50.
	pp, err := res.PricePerformance()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pp-50) > 1e-9 {
		t.Fatalf("price-performance = %v, want 50", pp)
	}
}

func TestPricePerformanceRejectsZeroThroughput(t *testing.T) {
	res := Result{Runs: []Run{{KVPs: 0, Start: time.Unix(0, 0), End: time.Unix(1, 0)}}}
	if _, err := res.PricePerformance(); err == nil {
		t.Fatal("zero-throughput price-performance accepted")
	}
}

func TestPerSensorIoTps(t *testing.T) {
	// Paper Table I: 186,109 system-wide over 32 substations = 29.1/sensor.
	got := PerSensorIoTps(186_109, 32)
	if math.Abs(got-29.08) > 0.05 {
		t.Fatalf("per-sensor = %v, want ~29.1", got)
	}
	if PerSensorIoTps(1000, 0) != 0 {
		t.Fatal("zero substations must yield 0")
	}
}

func TestScalingFactor(t *testing.T) {
	// Figure 10: S_32 = 186,109 / 9,806 = 19.0.
	if s := ScalingFactor(186_109, 9_806); math.Abs(s-18.98) > 0.05 {
		t.Fatalf("S_32 = %v, want ~19.0", s)
	}
	if ScalingFactor(5, 0) != 0 {
		t.Fatal("zero base must yield 0")
	}
}

func TestBytesPerSecondEquation1(t *testing.T) {
	// Equation 1: 4,000 kvps/s == 3.91 MB/s (MiB-style, 1024^2).
	mbps := BytesPerSecond(4000) / (1024 * 1024)
	if math.Abs(mbps-3.906) > 0.01 {
		t.Fatalf("4000 kvps/s = %.3f MB/s, want ~3.91", mbps)
	}
}
