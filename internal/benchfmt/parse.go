package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseGoBench reads `go test -bench` output and returns one File per
// benchmark family found, in first-appearance order. A result line looks
// like
//
//	BenchmarkClusterIngest/sync=append/batch=64-8  5000  23046 ns/op  45.08 MB/s  1.000 fsyncs/batch
//
// The family name is the first path component (GOMAXPROCS suffix stripped),
// key=value components become the variant, non-key=value components are
// appended to the result name, and each "value unit" pair becomes a metric
// under its canonical name. Non-benchmark lines (goos/pkg headers, PASS,
// ok) are skipped.
func ParseGoBench(r io.Reader) ([]*File, error) {
	var files []*File
	byName := make(map[string]*File)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Shortest valid line: name, iters, value, unit.
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // "Benchmark..." line that is not a result row
		}

		family, res := splitBenchName(fields[0])
		res.Iters = iters
		res.Metrics = make(map[string]float64)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad value %q in %q", fields[i], line)
			}
			res.Metrics[canonicalUnit(fields[i+1])] = v
		}

		f, ok := byName[family]
		if !ok {
			f = &File{Benchmark: family}
			byName[family] = f
			files = append(files, f)
		}
		f.Results = append(f.Results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: read: %w", err)
	}
	return files, nil
}

// splitBenchName decomposes a benchmark path like
// "BenchmarkClusterIngest/sync=append/batch=64-8" into the family name and
// a Result carrying the variant. The trailing -N GOMAXPROCS suffix is
// stripped from the last component.
func splitBenchName(full string) (family string, res Result) {
	parts := strings.Split(full, "/")
	// Strip the GOMAXPROCS suffix from the final component: a trailing
	// "-<digits>".
	last := parts[len(parts)-1]
	if i := strings.LastIndexByte(last, '-'); i > 0 {
		if _, err := strconv.Atoi(last[i+1:]); err == nil {
			parts[len(parts)-1] = last[:i]
		}
	}
	family = parts[0]
	var nameParts []string
	for _, p := range parts[1:] {
		if k, v, ok := strings.Cut(p, "="); ok && k != "" {
			if res.Variant == nil {
				res.Variant = make(map[string]string)
			}
			res.Variant[k] = v
		} else {
			nameParts = append(nameParts, p)
		}
	}
	res.Name = strings.Join(nameParts, "/")
	return family, res
}
