// Package benchfmt defines the canonical schema for the repository's
// committed benchmark results (results/BENCH_*.json), a parser that turns
// `go test -bench` output into that schema, and a direction-aware differ
// used as the CI perf-regression gate.
//
// One result file holds one benchmark family: identification (name,
// description, date, command, environment), a list of results — each a
// variant (the identifying sub-benchmark dimensions, as strings) plus a
// metrics map (all numeric) — and a free-form summary. Keeping variants and
// metrics in separate maps is what makes files diffable: two runs match
// results by (name, variant) and compare metric-by-metric, with the
// direction of "better" inferred from the metric name.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// File is one canonical benchmark result document.
type File struct {
	// Benchmark is the Go benchmark family name, e.g. "BenchmarkClusterIngest".
	Benchmark   string         `json:"benchmark"`
	Description string         `json:"description,omitempty"`
	Date        string         `json:"date,omitempty"`
	Command     string         `json:"command,omitempty"`
	Environment map[string]any `json:"environment,omitempty"`
	Results     []Result       `json:"results"`
	Summary     map[string]any `json:"summary,omitempty"`
}

// Result is one sub-benchmark's measurements.
type Result struct {
	// Name is the sub-benchmark path when it carries non-key=value parts;
	// usually empty because the dimensions live in Variant.
	Name string `json:"name,omitempty"`
	// Variant identifies the sub-benchmark: its key=value path components,
	// values kept as strings ("batch": "64").
	Variant map[string]string `json:"variant,omitempty"`
	// Iters is the b.N the numbers were averaged over, when known.
	Iters int64 `json:"iters,omitempty"`
	// Metrics holds every numeric measurement under canonical names:
	// ns_per_op, mb_per_s, b_per_op, allocs_per_op, and custom go-bench
	// units x/y as x_per_y.
	Metrics map[string]float64 `json:"metrics"`
}

// Key canonically identifies a result for cross-file matching: the name
// plus the variant pairs in sorted key order.
func (r Result) Key() string {
	parts := make([]string, 0, len(r.Variant)+1)
	if r.Name != "" {
		parts = append(parts, r.Name)
	}
	keys := make([]string, 0, len(r.Variant))
	for k := range r.Variant {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts = append(parts, k+"="+r.Variant[k])
	}
	return strings.Join(parts, "/")
}

// ReadFile loads a canonical result document.
func ReadFile(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return &f, nil
}

// Write renders the document as indented JSON.
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// canonicalUnit maps a go-bench unit to the schema's metric name:
// the standard units get their conventional names, and any custom
// "x/y" ReportMetric unit becomes x_per_y (lowercased, non-alphanumerics
// folded to underscores).
func canonicalUnit(unit string) string {
	switch unit {
	case "ns/op":
		return "ns_per_op"
	case "MB/s":
		return "mb_per_s"
	case "B/op":
		return "b_per_op"
	case "allocs/op":
		return "allocs_per_op"
	}
	var b strings.Builder
	for _, r := range strings.ToLower(unit) {
		switch {
		case r == '/':
			b.WriteString("_per_")
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Direction classifies which way a metric improves.
type Direction int

const (
	// Informational metrics carry context (bytes moved, rows touched) and
	// never gate a diff.
	Informational Direction = iota
	// LowerBetter: latencies, allocation costs, amplification factors.
	LowerBetter
	// HigherBetter: throughputs.
	HigherBetter
)

// String names the direction for diff output.
func (d Direction) String() string {
	switch d {
	case LowerBetter:
		return "lower-better"
	case HigherBetter:
		return "higher-better"
	default:
		return "informational"
	}
}

// MetricDirection infers how a canonical metric improves from its name.
// Unknown names are Informational, so a new metric never breaks the gate
// until someone teaches the differ its direction.
func MetricDirection(name string) Direction {
	switch name {
	case "ns_per_op", "b_per_op", "allocs_per_op", "write_amp", "read_amp":
		return LowerBetter
	}
	switch {
	case strings.HasSuffix(name, "_ns"):
		return LowerBetter
	case strings.HasSuffix(name, "_per_s"):
		return HigherBetter
	case strings.HasSuffix(name, "_amp"):
		return LowerBetter
	}
	return Informational
}
