package benchfmt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseGoBench(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: tpcxiot
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkClusterIngest/sync=append/batch=64-8  	5000	23046 ns/op	45.08 MB/s	1.000 fsyncs/batch
BenchmarkClusterIngest/sync=never/batch=64-8   	5000	6241 ns/op	166.48 MB/s	0 fsyncs/batch
BenchmarkClusterAmplification/memtable=256k    	1	22662289 ns/op	91.69 MB/s	3.018 write_amp
BenchmarkOther/plain-8                         	100	1234 ns/op	512 B/op	7 allocs/op
PASS
ok  	tpcxiot	0.300s
`
	files, err := ParseGoBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("families = %d, want 3", len(files))
	}
	ingest := files[0]
	if ingest.Benchmark != "BenchmarkClusterIngest" {
		t.Fatalf("family[0] = %q", ingest.Benchmark)
	}
	if len(ingest.Results) != 2 {
		t.Fatalf("ingest results = %d, want 2", len(ingest.Results))
	}
	r := ingest.Results[0]
	if r.Iters != 5000 {
		t.Errorf("iters = %d, want 5000", r.Iters)
	}
	if r.Variant["sync"] != "append" || r.Variant["batch"] != "64" {
		t.Errorf("variant = %v", r.Variant)
	}
	if r.Name != "" {
		t.Errorf("name = %q, want empty (all components are key=value)", r.Name)
	}
	for m, want := range map[string]float64{
		"ns_per_op": 23046, "mb_per_s": 45.08, "fsyncs_per_batch": 1.0,
	} {
		if got := r.Metrics[m]; got != want {
			t.Errorf("metric %s = %v, want %v", m, got, want)
		}
	}
	if got := r.Key(); got != "batch=64/sync=append" {
		t.Errorf("key = %q", got)
	}

	amp := files[1]
	if amp.Benchmark != "BenchmarkClusterAmplification" {
		t.Fatalf("family[1] = %q", amp.Benchmark)
	}
	// "256k" ends in a letter, so the GOMAXPROCS strip must not eat it; and
	// the custom ReportMetric unit keeps its name verbatim.
	if got := amp.Results[0].Variant["memtable"]; got != "256k" {
		t.Errorf("memtable variant = %q", got)
	}
	if got := amp.Results[0].Metrics["write_amp"]; got != 3.018 {
		t.Errorf("write_amp = %v", got)
	}

	other := files[2]
	if other.Results[0].Name != "plain" {
		t.Errorf("non-key=value component: name = %q, want plain", other.Results[0].Name)
	}
	if got := other.Results[0].Metrics["b_per_op"]; got != 512 {
		t.Errorf("b_per_op = %v", got)
	}
}

func TestCanonicalUnit(t *testing.T) {
	for unit, want := range map[string]string{
		"ns/op":        "ns_per_op",
		"MB/s":         "mb_per_s",
		"B/op":         "b_per_op",
		"allocs/op":    "allocs_per_op",
		"rows/s":       "rows_per_s",
		"fsyncs/batch": "fsyncs_per_batch",
		"write_amp":    "write_amp",
	} {
		if got := canonicalUnit(unit); got != want {
			t.Errorf("canonicalUnit(%q) = %q, want %q", unit, got, want)
		}
	}
}

func TestMetricDirection(t *testing.T) {
	for name, want := range map[string]Direction{
		"ns_per_op":     LowerBetter,
		"b_per_op":      LowerBetter,
		"allocs_per_op": LowerBetter,
		"write_amp":     LowerBetter,
		"read_amp":      LowerBetter,
		"gc_pause_ns":   LowerBetter,
		"mb_per_s":      HigherBetter,
		"rows_per_s":    HigherBetter,
		"cache_hit_pct": Informational,
		"debt_mb":       Informational,
	} {
		if got := MetricDirection(name); got != want {
			t.Errorf("MetricDirection(%q) = %v, want %v", name, got, want)
		}
	}
}

func result(variant map[string]string, metrics map[string]float64) Result {
	return Result{Variant: variant, Metrics: metrics}
}

func TestDiffDirections(t *testing.T) {
	old := &File{Benchmark: "B", Results: []Result{
		result(map[string]string{"v": "a"}, map[string]float64{
			"ns_per_op": 100, "rows_per_s": 1000, "debt_mb": 5,
		}),
	}}
	// Everything got dramatically worse — but only directional metrics may
	// regress, and only past the threshold.
	worse := &File{Benchmark: "B", Results: []Result{
		result(map[string]string{"v": "a"}, map[string]float64{
			"ns_per_op": 300, "rows_per_s": 100, "debt_mb": 500,
		}),
	}}
	rep := Diff(old, worse, 2.0)
	if rep.Regressions != 2 {
		t.Fatalf("regressions = %d, want 2 (ns_per_op and rows_per_s; debt_mb is informational)", rep.Regressions)
	}
	for _, d := range rep.Diffs {
		wantReg := d.Metric != "debt_mb"
		if d.Regression != wantReg {
			t.Errorf("%s regression = %v, want %v", d.Metric, d.Regression, wantReg)
		}
	}

	// Within threshold: 1.5x worse on a 2x gate passes.
	within := &File{Benchmark: "B", Results: []Result{
		result(map[string]string{"v": "a"}, map[string]float64{
			"ns_per_op": 150, "rows_per_s": 667, "debt_mb": 5,
		}),
	}}
	if rep := Diff(old, within, 2.0); rep.Regressions != 0 {
		t.Fatalf("within-threshold regressions = %d, want 0", rep.Regressions)
	}

	// Collapsed throughput (new = 0) must regress even though the ratio
	// division is degenerate.
	dead := &File{Benchmark: "B", Results: []Result{
		result(map[string]string{"v": "a"}, map[string]float64{"rows_per_s": 0}),
	}}
	if rep := Diff(old, dead, 2.0); rep.Regressions != 1 {
		t.Fatalf("collapsed throughput regressions = %d, want 1", rep.Regressions)
	}
}

func TestDiffCoverage(t *testing.T) {
	old := &File{Benchmark: "B", Results: []Result{
		result(map[string]string{"v": "a"}, map[string]float64{"ns_per_op": 1}),
		result(map[string]string{"v": "b"}, map[string]float64{"ns_per_op": 1}),
	}}
	new := &File{Benchmark: "B", Results: []Result{
		result(map[string]string{"v": "a"}, map[string]float64{"ns_per_op": 1}),
		result(map[string]string{"v": "c"}, map[string]float64{"ns_per_op": 1}),
	}}
	rep := Diff(old, new, 0) // non-positive selects DefaultThreshold
	if rep.Threshold != DefaultThreshold {
		t.Errorf("threshold = %v, want %v", rep.Threshold, DefaultThreshold)
	}
	if len(rep.MissingInNew) != 1 || rep.MissingInNew[0] != "v=b" {
		t.Errorf("missing = %v", rep.MissingInNew)
	}
	if len(rep.OnlyInNew) != 1 || rep.OnlyInNew[0] != "v=c" {
		t.Errorf("only-in-new = %v", rep.OnlyInNew)
	}
	// Coverage loss is reported but never fails the gate.
	if rep.Regressions != 0 {
		t.Errorf("regressions = %d, want 0", rep.Regressions)
	}
}

// TestFileSchemaGolden pins the canonical JSON shape: the committed
// results/BENCH_*.json files and the benchdiff matcher both depend on these
// exact field names, so a rename must fail loudly here.
func TestFileSchemaGolden(t *testing.T) {
	f := &File{
		Benchmark:   "BenchmarkX",
		Description: "d",
		Date:        "2026-08-08",
		Command:     "go test -bench=X",
		Environment: map[string]any{"goos": "linux"},
		Results: []Result{{
			Variant: map[string]string{"memtable": "256k"},
			Iters:   1,
			Metrics: map[string]float64{"ns_per_op": 100, "write_amp": 3.018},
		}},
		Summary: map[string]any{"acceptance": "ok"},
	}
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "benchmark": "BenchmarkX",
  "description": "d",
  "date": "2026-08-08",
  "command": "go test -bench=X",
  "environment": {
    "goos": "linux"
  },
  "results": [
    {
      "variant": {
        "memtable": "256k"
      },
      "iters": 1,
      "metrics": {
        "ns_per_op": 100,
        "write_amp": 3.018
      }
    }
  ],
  "summary": {
    "acceptance": "ok"
  }
}
`
	if got := buf.String(); got != golden {
		t.Errorf("canonical JSON drifted from golden schema:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}

	// Round-trip: the document must load back identically through the same
	// path the differ uses.
	var back File
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Benchmark != f.Benchmark || len(back.Results) != 1 ||
		back.Results[0].Metrics["write_amp"] != 3.018 ||
		back.Results[0].Variant["memtable"] != "256k" {
		t.Errorf("round-trip mismatch: %+v", back)
	}
}
