package benchfmt

import (
	"fmt"
	"io"
	"sort"
)

// MetricDiff compares one metric of one matched result across two files.
type MetricDiff struct {
	Result    string  `json:"result"` // the matched Result.Key()
	Metric    string  `json:"metric"`
	Direction string  `json:"direction"`
	Old       float64 `json:"old"`
	New       float64 `json:"new"`
	// Ratio is new/old (+Inf rendered as 0 when old is 0).
	Ratio float64 `json:"ratio"`
	// Regression marks a directional metric that got worse by more than the
	// diff threshold.
	Regression bool `json:"regression"`
}

// DiffReport is the full comparison of two canonical result files.
type DiffReport struct {
	Benchmark string `json:"benchmark"`
	// Threshold is the worse-by factor a directional metric may move before
	// it counts as a regression (2.0 = twice as bad).
	Threshold float64      `json:"threshold"`
	Diffs     []MetricDiff `json:"diffs"`
	// MissingInNew lists baseline results with no counterpart in the new
	// file; coverage loss is reported but does not fail the gate (CI smoke
	// runs legitimately exercise fewer variants than a full baseline run).
	MissingInNew []string `json:"missing_in_new,omitempty"`
	// OnlyInNew lists new results with no baseline counterpart.
	OnlyInNew   []string `json:"only_in_new,omitempty"`
	Regressions int      `json:"regressions"`
}

// DefaultThreshold is the generous CI gate: a directional metric must get
// more than 2× worse before the diff fails. Shared-runner noise routinely
// moves single benchmarks tens of percent; a 2× move is a real regression.
const DefaultThreshold = 2.0

// Diff compares new against the old baseline, matching results by Key and
// comparing every metric present in both. Directional metrics (see
// MetricDirection) regress when they get worse by more than threshold
// (non-positive selects DefaultThreshold); informational metrics are
// reported but never regress.
func Diff(old, new *File, threshold float64) *DiffReport {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	rep := &DiffReport{Benchmark: old.Benchmark, Threshold: threshold}

	newByKey := make(map[string]Result, len(new.Results))
	for _, r := range new.Results {
		newByKey[r.Key()] = r
	}
	oldKeys := make(map[string]bool, len(old.Results))

	for _, or := range old.Results {
		key := or.Key()
		oldKeys[key] = true
		nr, ok := newByKey[key]
		if !ok {
			rep.MissingInNew = append(rep.MissingInNew, key)
			continue
		}
		metrics := make([]string, 0, len(or.Metrics))
		for m := range or.Metrics {
			if _, ok := nr.Metrics[m]; ok {
				metrics = append(metrics, m)
			}
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			ov, nv := or.Metrics[m], nr.Metrics[m]
			dir := MetricDirection(m)
			d := MetricDiff{
				Result: key, Metric: m, Direction: dir.String(),
				Old: ov, New: nv,
			}
			if ov != 0 {
				d.Ratio = nv / ov
			}
			switch dir {
			case LowerBetter:
				d.Regression = nv > ov*threshold
			case HigherBetter:
				// old/new > threshold, written multiplication-only so a
				// zero new value (collapsed throughput) regresses too.
				d.Regression = ov > nv*threshold && ov > 0
			}
			if d.Regression {
				rep.Regressions++
			}
			rep.Diffs = append(rep.Diffs, d)
		}
	}
	for _, r := range new.Results {
		if key := r.Key(); !oldKeys[key] {
			rep.OnlyInNew = append(rep.OnlyInNew, key)
		}
	}
	sort.Strings(rep.MissingInNew)
	sort.Strings(rep.OnlyInNew)
	return rep
}

// Format renders the report as an aligned text table, regressions marked,
// for CI logs and humans.
func (rep *DiffReport) Format(w io.Writer) {
	fmt.Fprintf(w, "benchdiff: %s (threshold %.2fx)\n", rep.Benchmark, rep.Threshold)
	if len(rep.Diffs) == 0 {
		fmt.Fprintln(w, "  no comparable results")
	}
	cur := ""
	for _, d := range rep.Diffs {
		if d.Result != cur {
			cur = d.Result
			fmt.Fprintf(w, "  %s\n", cur)
		}
		mark := " "
		if d.Regression {
			mark = "!"
		}
		fmt.Fprintf(w, "  %s %-24s %14.4g -> %14.4g  (%.3fx, %s)\n",
			mark, d.Metric, d.Old, d.New, d.Ratio, d.Direction)
	}
	for _, k := range rep.MissingInNew {
		fmt.Fprintf(w, "  - missing in new run: %s\n", k)
	}
	for _, k := range rep.OnlyInNew {
		fmt.Fprintf(w, "  + only in new run: %s\n", k)
	}
	if rep.Regressions > 0 {
		fmt.Fprintf(w, "FAIL: %d metric(s) regressed beyond %.2fx\n", rep.Regressions, rep.Threshold)
	} else {
		fmt.Fprintf(w, "ok: no regressions beyond %.2fx\n", rep.Threshold)
	}
}
