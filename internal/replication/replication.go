// Package replication implements the quorum-acknowledged replication
// pipeline that the TPCx-IoT prerequisite check verifies.
//
// In the paper's SUT, durability comes from HDFS: every WAL block and HFile
// is stored on three data nodes, and the benchmark driver's "data
// replication check" aborts the run if the factor is below three. This
// package models the same guarantee one level up: each region has a primary
// applier and replicaFactor-1 replica appliers on distinct nodes.
//
// Writes are acknowledged at quorum, not at full fan-out. Every batch is
// assigned a sequence number and enqueued — atomically, in one critical
// section — onto a bounded per-member catch-up queue. One long-lived worker
// per member drains its queue strictly in sequence order (the member's WAL
// order), so every member applies the same batches in the same order.
// Apply/ApplyBatch return once quorum members — always including the
// primary — have durably applied the batch; members still behind (the
// stragglers) catch up asynchronously from their queues, off the caller's
// critical path.
//
// Watermarks make the divergence observable and safe:
//
//   - each member carries an applied high-water mark (the last sequence it
//     durably applied);
//   - the group carries a commit watermark (the highest sequence
//     acknowledged at quorum).
//
// Because the primary is required for quorum, primary.applied >= commit
// always holds — reads served by the primary see every acknowledged write.
// A replica may lag: CaughtUp/WaitCaughtUp gate reads-from-replica behind
// the applied-watermark check (wait until the member reaches the commit
// watermark, or redirect to the primary).
//
// The catch-up queue is bounded. When any member's queue is full the group
// refuses new batches with ErrCatchUpFull — a retryable overload signal the
// server layer converts into a load-shed response — so a stalled straggler
// costs bounded memory and visible backpressure instead of unbounded queue
// growth. A member whose apply fails stops draining (its queue and
// watermark freeze, preserving its WAL order); RestartMember re-attaches a
// recovered applier and replays the retained queue from the watermark.
package replication

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tpcxiot/internal/lsm"
	"tpcxiot/internal/telemetry"
)

// DefaultFactor is the replication factor TPCx-IoT requires.
const DefaultFactor = 3

// DefaultMaxQueue bounds each member's catch-up queue (in batches) unless
// Options says otherwise.
const DefaultMaxQueue = 256

// Sentinel errors.
var (
	ErrFactorTooLow  = errors.New("replication: factor below requirement")
	ErrShortPipeline = errors.New("replication: fewer appliers than the factor requires")
	// ErrCatchUpFull is returned when a member's bounded catch-up queue is
	// full: the group refuses the batch rather than queueing unboundedly.
	// Retryable — the server layer surfaces it as a load-shed.
	ErrCatchUpFull = errors.New("replication: catch-up queue full")
	// ErrClosed is returned by writes against a closed group.
	ErrClosed = errors.New("replication: group closed")
	// ErrLagging is returned by WaitCaughtUp when the member does not reach
	// the commit watermark within the timeout.
	ErrLagging = errors.New("replication: member lagging behind commit watermark")
	// ErrMemberRunning is returned by RestartMember for a member whose
	// worker is still draining.
	ErrMemberRunning = errors.New("replication: member worker still running")
)

// Applier receives replicated mutations. Both the primary store and the
// replica stores satisfy it.
type Applier interface {
	Put(key, value []byte) error
	Delete(key []byte) error
}

// BatchApplier is satisfied by members that can apply a whole batch in one
// engine round (one WAL group append, one memtable critical section) —
// lsm.Store and region.Region both do. The pipeline uses it when available
// and falls back to per-key Put/Delete otherwise.
type BatchApplier interface {
	ApplyBatch(writes []lsm.Write) error
}

// TracedBatchApplier is satisfied by members that can carry a trace span
// through the batch apply (region.Region and lsm.Store), so each member's
// engine work shows up in the operation's span tree; members without it are
// applied untraced.
type TracedBatchApplier interface {
	ApplyBatchTraced(parent telemetry.TSpan, writes []lsm.Write) error
}

// WatermarkObserver is satisfied by members that track their own applied
// high-water mark (region.Region). The worker notifies it after each
// durable apply, so the member's watermark is visible through /storage
// without reaching back into the group.
type WatermarkObserver interface {
	NoteApplied(seq uint64)
}

// Options configures a pipeline.
type Options struct {
	// Quorum is how many members (always including the primary) must
	// durably apply a batch before it is acknowledged. 0 selects the
	// majority, ⌈(n+1)/2⌉. Clamped to [1, members].
	Quorum int
	// MaxQueue bounds each member's catch-up queue in batches; a full
	// queue makes the group refuse writes with ErrCatchUpFull. <= 0
	// selects DefaultMaxQueue.
	MaxQueue int
}

// MajorityQuorum is ⌈(n+1)/2⌉ for n members: 1→1, 2→2, 3→2, 4→3, 5→3.
func MajorityQuorum(members int) int { return members/2 + 1 }

// groupMetrics holds the pipeline's instruments, all nil-safe.
type groupMetrics struct {
	acks       *telemetry.Counter // replication.acks: per-member durable write applies
	quorumAcks *telemetry.Counter // replication.quorum_acks: batches acknowledged at quorum
	catchup    *telemetry.Counter // replication.catchup_batches: member batch applies after the ack
	queueFull  *telemetry.Counter // replication.catchup_full: batches refused on a full queue
	quorumT    *telemetry.Timer   // replication.quorum_ack: batch submit → quorum
	fullT      *telemetry.Timer   // replication.full_ack: batch submit → all members
}

// Group is a quorum-acknowledged replication pipeline. See the package
// comment for the model. Safe for concurrent use.
type Group struct {
	members  []*member
	quorum   int
	maxQueue int
	wg       sync.WaitGroup

	mu      sync.Mutex // serializes sequence assignment + fan-out enqueue
	nextSeq uint64     // last assigned sequence number
	closed  bool

	commit atomic.Uint64 // highest sequence acknowledged at quorum

	met groupMetrics
}

// member is one pipeline member: an applier, its bounded catch-up queue,
// and the worker state draining it.
type member struct {
	idx int

	mu      sync.Mutex
	cond    *sync.Cond      // signals the worker: work queued or closing
	app     Applier         // swappable via RestartMember
	queue   []*pendingBatch // WAL order; head is in-flight or next to apply
	running bool            // worker goroutine alive
	closing bool
	err     error         // first apply error; non-nil ⇒ worker stopped
	advance chan struct{} // closed+replaced on watermark advance or stop

	applied atomic.Uint64 // high-water mark: last sequence durably applied
}

// bumpLocked wakes watermark watchers. Caller holds m.mu.
func (m *member) bumpLocked() {
	close(m.advance)
	m.advance = make(chan struct{})
}

// pendingBatch is one replicated batch in flight: the writes, the trace
// parent, and the shared acknowledgement state. The group retains the
// writes until the slowest member applied them — callers must not reuse
// the backing arrays after submitting a batch.
type pendingBatch struct {
	seq    uint64
	writes []lsm.Write
	parent telemetry.TSpan
	st     *ackState
}

// ackState tracks one batch's progress toward quorum. Each member reports
// exactly once (replays after RestartMember are suppressed); the batch
// resolves on the first of: primary failed, quorum reached (primary
// included), or quorum arithmetically unreachable.
type ackState struct {
	members int
	quorum  int

	mu       sync.Mutex
	reported []bool
	reports  int
	acked    int // successful member applies
	failures int
	primary  int8 // 0 pending, 1 ok, 2 failed
	errIdx   int
	err      error // lowest-indexed member error at resolution
	resolved bool
	failed   bool
	done     chan struct{}

	quorumSpan telemetry.Span // started at submit, ended at quorum
	fullSpan   telemetry.Span // started at submit, ended when all members applied
}

// reportSuccess records one member's durable apply. It returns whether the
// batch had already resolved (the apply was catch-up work, off the critical
// path). Duplicate reports (queue replay after restart) are ignored.
func (st *ackState) reportSuccess(idx int) (late bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.reported[idx] {
		return st.resolved
	}
	st.reported[idx] = true
	st.reports++
	st.acked++
	if idx == 0 {
		st.primary = 1
	}
	late = st.resolved
	st.resolveLocked()
	if st.reports == st.members && st.failures == 0 {
		st.fullSpan.End()
	}
	return late
}

// reportFailure records one member's apply failure (or its standing failure,
// for batches routed to a stopped member).
func (st *ackState) reportFailure(idx int, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.reported[idx] {
		return
	}
	st.reported[idx] = true
	st.reports++
	st.failures++
	if idx == 0 {
		st.primary = 2
	}
	if st.err == nil || idx < st.errIdx {
		st.err, st.errIdx = err, idx
	}
	st.resolveLocked()
}

// resolveLocked applies the resolution rules. Caller holds st.mu.
func (st *ackState) resolveLocked() {
	if st.resolved {
		return
	}
	switch {
	case st.primary == 2:
		// The primary is required for quorum; its failure fails the batch.
		st.resolved, st.failed = true, true
	case st.primary == 1 && st.acked >= st.quorum:
		st.resolved = true
		st.quorumSpan.End()
	case st.failures > st.members-st.quorum:
		// Too many members failed for quorum to ever form.
		st.resolved, st.failed = true, true
	default:
		return
	}
	close(st.done)
}

// NewGroup builds a pipeline with default options (majority quorum,
// DefaultMaxQueue). The first member is the primary; the number of members
// is the replication factor. Member workers start immediately — Close the
// group to stop them and drain the catch-up queues.
func NewGroup(primary Applier, replicas ...Applier) *Group {
	return NewGroupOptions(Options{}, primary, replicas...)
}

// NewGroupOptions is NewGroup with explicit quorum and queue-bound options.
func NewGroupOptions(o Options, primary Applier, replicas ...Applier) *Group {
	n := 1 + len(replicas)
	if o.Quorum <= 0 {
		o.Quorum = MajorityQuorum(n)
	}
	if o.Quorum > n {
		o.Quorum = n
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = DefaultMaxQueue
	}
	g := &Group{quorum: o.Quorum, maxQueue: o.MaxQueue}
	apps := append([]Applier{primary}, replicas...)
	for i, app := range apps {
		m := &member{idx: i, app: app, running: true, advance: make(chan struct{})}
		m.cond = sync.NewCond(&m.mu)
		g.members = append(g.members, m)
	}
	g.wg.Add(len(g.members))
	for _, m := range g.members {
		go g.runMember(m)
	}
	return g
}

// runMember drains one member's catch-up queue in sequence order. The head
// batch stays queued while it applies, so a worker that dies (apply error)
// leaves the queue positioned exactly at the watermark for replay.
func (g *Group) runMember(m *member) {
	defer g.wg.Done()
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.closing {
			m.cond.Wait()
		}
		if len(m.queue) == 0 {
			m.running = false
			m.bumpLocked()
			m.mu.Unlock()
			return
		}
		pb := m.queue[0]
		app := m.app
		m.mu.Unlock()

		var sp telemetry.TSpan
		if pb.parent.Traced() {
			sp = pb.parent.Child("replicate." + strconv.Itoa(m.idx))
		}
		err := applyBatchTo(app, pb.writes, sp)
		sp.End()

		if err != nil {
			m.mu.Lock()
			m.err = err
			m.running = false
			queued := append([]*pendingBatch(nil), m.queue...)
			m.bumpLocked()
			m.mu.Unlock()
			// Every retained batch fails for quorum purposes; the queue
			// itself is kept for replay after RestartMember.
			for _, qb := range queued {
				qb.st.reportFailure(m.idx, err)
			}
			return
		}

		m.applied.Store(pb.seq)
		if wo, ok := app.(WatermarkObserver); ok {
			wo.NoteApplied(pb.seq)
		}
		// Satellite fix: acks counts actual per-member acknowledgements at
		// the point the member durably applies — one per write per member —
		// instead of being bumped wholesale before/after the fan-out.
		g.met.acks.Add(int64(len(pb.writes)))
		m.mu.Lock()
		m.queue = m.queue[1:]
		m.bumpLocked()
		m.mu.Unlock()
		if late := pb.st.reportSuccess(m.idx); late {
			g.met.catchup.Inc()
		}
	}
}

// Factor returns the group's replication factor (pipeline length).
func (g *Group) Factor() int { return len(g.members) }

// Quorum returns how many members must apply before a write acks.
func (g *Group) Quorum() int { return g.quorum }

// Instrument resolves the group's counters and stage timers from the
// registry: replication.acks / quorum_acks / catchup_batches / catchup_full
// and the replication.quorum_ack / full_ack latency histograms. A nil
// registry leaves the group uninstrumented.
func (g *Group) Instrument(reg *telemetry.Registry) {
	g.met = groupMetrics{
		acks:       reg.Counter("replication.acks"),
		quorumAcks: reg.Counter("replication.quorum_acks"),
		catchup:    reg.Counter("replication.catchup_batches"),
		queueFull:  reg.Counter("replication.catchup_full"),
		quorumT:    reg.Timer("replication.quorum_ack"),
		fullT:      reg.Timer("replication.full_ack"),
	}
}

// Put replicates one write through the pipeline (a batch of one),
// returning at quorum.
func (g *Group) Put(key, value []byte) error {
	return g.ApplyBatch([]lsm.Write{{Key: key, Value: value}})
}

// Delete replicates one tombstone through the pipeline, returning at quorum.
func (g *Group) Delete(key []byte) error {
	return g.ApplyBatch([]lsm.Write{{Key: key, Delete: true}})
}

// ApplyBatch submits the batch to every member's catch-up queue and returns
// once quorum members — always including the primary — have durably applied
// it; stragglers finish in the background. The batch fails if the primary
// fails or quorum becomes unreachable (lowest-indexed member error wins);
// members that already applied keep the writes, the same partial state a
// crashed fan-out leaves. The group retains the batch until the slowest
// member applied it, so callers must not reuse the key/value arrays.
func (g *Group) ApplyBatch(writes []lsm.Write) error {
	return g.ApplyBatchTraced(telemetry.TSpan{}, writes)
}

// ApplyBatchTraced is ApplyBatch under a trace span: when parent is live the
// pipeline appears as a "replication.fanout" span with a
// "replication.quorum_wait" child covering the blocking portion and one
// "replicate.N" child per member — a straggler's span completes after the
// fan-out span, which is exactly the point. With an inert parent this is
// exactly ApplyBatch.
func (g *Group) ApplyBatchTraced(parent telemetry.TSpan, writes []lsm.Write) error {
	if len(writes) == 0 {
		return nil
	}
	fanSp := parent.Child("replication.fanout")
	defer fanSp.End()

	st := &ackState{
		members:  len(g.members),
		quorum:   g.quorum,
		reported: make([]bool, len(g.members)),
		done:     make(chan struct{}),
	}
	pb := &pendingBatch{writes: writes, parent: fanSp, st: st}

	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrClosed
	}
	// Admission: a full catch-up queue on any member refuses the batch
	// before a sequence is assigned, keeping memory bounded and the
	// overload visible.
	for _, m := range g.members {
		m.mu.Lock()
		full := len(m.queue) >= g.maxQueue
		m.mu.Unlock()
		if full {
			g.mu.Unlock()
			g.met.queueFull.Inc()
			return fmt.Errorf("replication: member %d: %w", m.idx, ErrCatchUpFull)
		}
	}
	g.nextSeq++
	pb.seq = g.nextSeq
	st.quorumSpan = g.met.quorumT.Start()
	st.fullSpan = g.met.fullT.Start()
	// Enqueue to every member inside the same critical section that
	// assigned the sequence, so every member's queue holds the same batches
	// in the same (WAL) order.
	for _, m := range g.members {
		m.mu.Lock()
		m.queue = append(m.queue, pb)
		var standing error
		if !m.running && !m.closing {
			standing = m.err
		}
		m.cond.Signal()
		m.mu.Unlock()
		if standing != nil {
			st.reportFailure(m.idx, standing)
		}
	}
	g.mu.Unlock()

	waitSp := fanSp.Child("replication.quorum_wait")
	<-st.done
	waitSp.End()

	st.mu.Lock()
	failed, err, errIdx := st.failed, st.err, st.errIdx
	st.mu.Unlock()
	if failed {
		return fmt.Errorf("replication: member %d: %w", errIdx, err)
	}
	g.met.quorumAcks.Inc()
	// Advance the commit watermark (monotonic max: concurrent batches may
	// resolve out of submit order).
	for {
		c := g.commit.Load()
		if pb.seq <= c || g.commit.CompareAndSwap(c, pb.seq) {
			break
		}
	}
	return nil
}

// applyBatchTo delivers the batch to one member: in one round when the
// member supports it, key by key otherwise.
func applyBatchTo(m Applier, writes []lsm.Write, sp telemetry.TSpan) error {
	if sp.Traced() {
		if ta, ok := m.(TracedBatchApplier); ok {
			return ta.ApplyBatchTraced(sp, writes)
		}
	}
	if ba, ok := m.(BatchApplier); ok {
		return ba.ApplyBatch(writes)
	}
	for i := range writes {
		w := &writes[i]
		var err error
		if w.Delete {
			err = m.Delete(w.Key)
		} else {
			err = m.Put(w.Key, w.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// CommitSeq returns the commit watermark: the highest sequence acknowledged
// at quorum.
func (g *Group) CommitSeq() uint64 { return g.commit.Load() }

// MemberApplied returns member i's applied high-water mark.
func (g *Group) MemberApplied(i int) uint64 { return g.members[i].applied.Load() }

// MemberErr returns the error that stopped member i's worker, if any.
func (g *Group) MemberErr(i int) error {
	m := g.members[i]
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// QueueDepth returns member i's catch-up queue depth in batches.
func (g *Group) QueueDepth(i int) int {
	m := g.members[i]
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// MaxQueueDepth returns the deepest member catch-up queue — the group's
// straggler depth.
func (g *Group) MaxQueueDepth() int {
	max := 0
	for i := range g.members {
		if d := g.QueueDepth(i); d > max {
			max = d
		}
	}
	return max
}

// QuorumLag returns how far the slowest member trails the commit watermark,
// in batches (sequence numbers).
func (g *Group) QuorumLag() uint64 {
	commit := g.commit.Load()
	var lag uint64
	for _, m := range g.members {
		if a := m.applied.Load(); a < commit && commit-a > lag {
			lag = commit - a
		}
	}
	return lag
}

// CaughtUp reports whether member i's applied watermark has reached the
// commit watermark — the gate for serving reads from that member. The
// primary is always caught up (it is required for quorum).
func (g *Group) CaughtUp(i int) bool {
	return g.members[i].applied.Load() >= g.commit.Load()
}

// WaitCaughtUp blocks until member i reaches the commit watermark observed
// at call time, the read-your-writes gate for reads-from-replica. A
// negative timeout waits indefinitely; on expiry it returns ErrLagging
// (wrapped), telling the caller to redirect to the primary. A stopped
// member returns its apply error immediately.
func (g *Group) WaitCaughtUp(i int, timeout time.Duration) error {
	m := g.members[i]
	target := g.commit.Load()
	var timeC <-chan time.Time
	if timeout >= 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeC = timer.C
	}
	for {
		if m.applied.Load() >= target {
			return nil
		}
		m.mu.Lock()
		if m.applied.Load() >= target {
			m.mu.Unlock()
			return nil
		}
		if m.err != nil {
			err := m.err
			m.mu.Unlock()
			return fmt.Errorf("replication: member %d: %w", i, err)
		}
		ch := m.advance
		m.mu.Unlock()
		select {
		case <-ch:
		case <-timeC:
			return fmt.Errorf("replication: member %d: %w", i, ErrLagging)
		}
	}
}

// Quiesce blocks until every member drained its catch-up queue (all
// stragglers converged), returning the first stopped member's error if one
// died on the way.
func (g *Group) Quiesce() error {
	var firstErr error
	for _, m := range g.members {
		for {
			m.mu.Lock()
			if m.err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("replication: member %d: %w", m.idx, m.err)
				}
				m.mu.Unlock()
				break
			}
			if len(m.queue) == 0 {
				m.mu.Unlock()
				break
			}
			ch := m.advance
			m.mu.Unlock()
			<-ch
		}
	}
	return firstErr
}

// RestartMember re-attaches a member whose worker stopped on an apply
// error: app (nil keeps the current applier) replaces the member's applier
// — typically a store reopened after a crash — and a new worker resumes
// draining the retained queue from the watermark, in the original WAL
// order. Batches the recovered store had already applied before the crash
// are re-applied idempotently (last-writer-wins on identical writes).
func (g *Group) RestartMember(i int, app Applier) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return ErrClosed
	}
	m := g.members[i]
	m.mu.Lock()
	if m.running {
		m.mu.Unlock()
		return fmt.Errorf("replication: member %d: %w", i, ErrMemberRunning)
	}
	if app != nil {
		m.app = app
	}
	m.err = nil
	m.running = true
	m.mu.Unlock()
	g.wg.Add(1)
	go g.runMember(m)
	return nil
}

// Close stops the pipeline: new writes are refused, every live worker
// drains its remaining queue (stragglers converge), and the call returns
// the first stopped member's error, if any. Idempotent.
func (g *Group) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.mu.Unlock()
	for _, m := range g.members {
		m.mu.Lock()
		m.closing = true
		m.cond.Broadcast()
		m.mu.Unlock()
	}
	g.wg.Wait()
	var firstErr error
	for _, m := range g.members {
		m.mu.Lock()
		if m.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("replication: member %d: %w", m.idx, m.err)
		}
		m.mu.Unlock()
	}
	return firstErr
}

// GroupStats is a point-in-time snapshot of the pipeline's watermarks and
// queues, for the cluster's /storage and /healthz documents.
type GroupStats struct {
	Quorum   int      `json:"quorum"`
	Assigned uint64   `json:"assigned"` // last assigned sequence
	Commit   uint64   `json:"commit"`   // quorum watermark
	Applied  []uint64 `json:"applied"`  // per-member applied watermark
	Queue    []int    `json:"queue"`    // per-member catch-up depth
	Stopped  []bool   `json:"stopped"`  // per-member worker-dead flag
}

// MaxLag returns the snapshot's worst member lag behind the commit
// watermark.
func (s GroupStats) MaxLag() uint64 {
	var lag uint64
	for _, a := range s.Applied {
		if a < s.Commit && s.Commit-a > lag {
			lag = s.Commit - a
		}
	}
	return lag
}

// Stats snapshots the group.
func (g *Group) Stats() GroupStats {
	g.mu.Lock()
	assigned := g.nextSeq
	g.mu.Unlock()
	st := GroupStats{
		Quorum:   g.quorum,
		Assigned: assigned,
		Commit:   g.commit.Load(),
	}
	for _, m := range g.members {
		m.mu.Lock()
		st.Applied = append(st.Applied, m.applied.Load())
		st.Queue = append(st.Queue, len(m.queue))
		st.Stopped = append(st.Stopped, m.err != nil)
		m.mu.Unlock()
	}
	return st
}

// Primary returns the first pipeline member's applier.
func (g *Group) Primary() Applier {
	m := g.members[0]
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.app
}

// Replicas returns the non-primary members' appliers.
func (g *Group) Replicas() []Applier {
	out := make([]Applier, 0, len(g.members)-1)
	for _, m := range g.members[1:] {
		m.mu.Lock()
		out = append(out, m.app)
		m.mu.Unlock()
	}
	return out
}

// CheckFactor returns nil when the group meets the required factor. This is
// the check the benchmark driver runs before the warmup (Figure 6's "data
// replication check").
func (g *Group) CheckFactor(required int) error {
	if g.Factor() < required {
		return fmt.Errorf("%w: have %d, require %d", ErrFactorTooLow, g.Factor(), required)
	}
	return nil
}

// Placement computes replica placement for region r of table with n nodes:
// the primary on node r mod n, replicas on the following nodes, wrapping —
// the chain placement HDFS-style pipelines use. It returns factor node
// indices, all distinct when n >= factor, or ErrShortPipeline otherwise.
func Placement(regionOrdinal, nodes, factor int) ([]int, error) {
	if nodes < factor {
		return nil, fmt.Errorf("%w: %d nodes for factor %d", ErrShortPipeline, nodes, factor)
	}
	out := make([]int, factor)
	for i := range out {
		out[i] = (regionOrdinal + i) % nodes
	}
	return out, nil
}
