// Package replication implements the synchronous 3-way replication pipeline
// that the TPCx-IoT prerequisite check verifies.
//
// In the paper's SUT, durability comes from HDFS: every WAL block and HFile
// is stored on three data nodes, and the benchmark driver's "data
// replication check" aborts the run if the factor is below three. This
// package models the same guarantee one level up: each region has a primary
// applier and replicaFactor-1 replica appliers on distinct nodes, and a
// write is acknowledged only after every member of the pipeline has applied
// it.
package replication

import (
	"errors"
	"fmt"

	"tpcxiot/internal/telemetry"
)

// DefaultFactor is the replication factor TPCx-IoT requires.
const DefaultFactor = 3

// Sentinel errors.
var (
	ErrFactorTooLow  = errors.New("replication: factor below requirement")
	ErrShortPipeline = errors.New("replication: fewer appliers than the factor requires")
)

// Applier receives replicated mutations. Both the primary store and the
// replica stores satisfy it.
type Applier interface {
	Put(key, value []byte) error
	Delete(key []byte) error
}

// Group is a synchronous replication pipeline: the primary first, then each
// replica in order. A write returns only after all members applied it, so a
// reader served by any member after the ack sees the write.
type Group struct {
	members []Applier
	acks    *telemetry.Counter
}

// NewGroup builds a pipeline whose first member is the primary. The number
// of members is the replication factor.
func NewGroup(primary Applier, replicas ...Applier) *Group {
	members := make([]Applier, 0, 1+len(replicas))
	members = append(members, primary)
	members = append(members, replicas...)
	return &Group{members: members}
}

// Factor returns the group's replication factor (pipeline length).
func (g *Group) Factor() int { return len(g.members) }

// Instrument makes the group count member acknowledgements on acks (one per
// member per successful write). A nil counter leaves the group uninstrumented.
func (g *Group) Instrument(acks *telemetry.Counter) { g.acks = acks }

// Put applies the write to every member, failing on the first error.
func (g *Group) Put(key, value []byte) error {
	for i, m := range g.members {
		if err := m.Put(key, value); err != nil {
			return fmt.Errorf("replication: member %d: %w", i, err)
		}
	}
	g.acks.Add(int64(len(g.members)))
	return nil
}

// Delete applies the tombstone to every member, failing on the first error.
func (g *Group) Delete(key []byte) error {
	for i, m := range g.members {
		if err := m.Delete(key); err != nil {
			return fmt.Errorf("replication: member %d: %w", i, err)
		}
	}
	g.acks.Add(int64(len(g.members)))
	return nil
}

// Primary returns the first pipeline member.
func (g *Group) Primary() Applier { return g.members[0] }

// Replicas returns the non-primary members.
func (g *Group) Replicas() []Applier { return g.members[1:] }

// CheckFactor returns nil when the group meets the required factor. This is
// the check the benchmark driver runs before the warmup (Figure 6's "data
// replication check").
func (g *Group) CheckFactor(required int) error {
	if g.Factor() < required {
		return fmt.Errorf("%w: have %d, require %d", ErrFactorTooLow, g.Factor(), required)
	}
	return nil
}

// Placement computes replica placement for region r of table with n nodes:
// the primary on node r mod n, replicas on the following nodes, wrapping —
// the chain placement HDFS-style pipelines use. It returns factor node
// indices, all distinct when n >= factor, or ErrShortPipeline otherwise.
func Placement(regionOrdinal, nodes, factor int) ([]int, error) {
	if nodes < factor {
		return nil, fmt.Errorf("%w: %d nodes for factor %d", ErrShortPipeline, nodes, factor)
	}
	out := make([]int, factor)
	for i := range out {
		out[i] = (regionOrdinal + i) % nodes
	}
	return out, nil
}
