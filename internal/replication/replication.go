// Package replication implements the synchronous 3-way replication pipeline
// that the TPCx-IoT prerequisite check verifies.
//
// In the paper's SUT, durability comes from HDFS: every WAL block and HFile
// is stored on three data nodes, and the benchmark driver's "data
// replication check" aborts the run if the factor is below three. This
// package models the same guarantee one level up: each region has a primary
// applier and replicaFactor-1 replica appliers on distinct nodes, and a
// write is acknowledged only after every member of the pipeline has applied
// it.
package replication

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"tpcxiot/internal/lsm"
	"tpcxiot/internal/telemetry"
)

// DefaultFactor is the replication factor TPCx-IoT requires.
const DefaultFactor = 3

// Sentinel errors.
var (
	ErrFactorTooLow  = errors.New("replication: factor below requirement")
	ErrShortPipeline = errors.New("replication: fewer appliers than the factor requires")
)

// Applier receives replicated mutations. Both the primary store and the
// replica stores satisfy it.
type Applier interface {
	Put(key, value []byte) error
	Delete(key []byte) error
}

// BatchApplier is satisfied by members that can apply a whole batch in one
// engine round (one WAL group append, one memtable critical section) —
// lsm.Store and region.Region both do. Group.ApplyBatch uses it when
// available and falls back to per-key Put/Delete otherwise.
type BatchApplier interface {
	ApplyBatch(writes []lsm.Write) error
}

// TracedBatchApplier is satisfied by members that can carry a trace span
// through the batch apply (region.Region and lsm.Store). ApplyBatchTraced
// uses it so each member's engine work shows up in the operation's span
// tree; members without it are applied untraced.
type TracedBatchApplier interface {
	ApplyBatchTraced(parent telemetry.TSpan, writes []lsm.Write) error
}

// Group is a synchronous replication pipeline. Single-key Put/Delete walk
// the members in order (primary first); ApplyBatch fans a whole batch out
// to all members in parallel. Either way a write returns only after all
// members applied it, so a reader served by any member after the ack sees
// the write.
type Group struct {
	members []Applier
	acks    *telemetry.Counter
}

// NewGroup builds a pipeline whose first member is the primary. The number
// of members is the replication factor.
func NewGroup(primary Applier, replicas ...Applier) *Group {
	members := make([]Applier, 0, 1+len(replicas))
	members = append(members, primary)
	members = append(members, replicas...)
	return &Group{members: members}
}

// Factor returns the group's replication factor (pipeline length).
func (g *Group) Factor() int { return len(g.members) }

// Instrument makes the group count member acknowledgements on acks (one per
// member per successful write). A nil counter leaves the group uninstrumented.
func (g *Group) Instrument(acks *telemetry.Counter) { g.acks = acks }

// Put applies the write to every member, failing on the first error.
func (g *Group) Put(key, value []byte) error {
	for i, m := range g.members {
		if err := m.Put(key, value); err != nil {
			return fmt.Errorf("replication: member %d: %w", i, err)
		}
	}
	g.acks.Add(int64(len(g.members)))
	return nil
}

// Delete applies the tombstone to every member, failing on the first error.
func (g *Group) Delete(key []byte) error {
	for i, m := range g.members {
		if err := m.Delete(key); err != nil {
			return fmt.Errorf("replication: member %d: %w", i, err)
		}
	}
	g.acks.Add(int64(len(g.members)))
	return nil
}

// ApplyBatch replicates the batch to every member concurrently — the fan-out
// an HDFS pipeline achieves by streaming — instead of the serial
// primary→replica→replica chain Put and Delete walk. The write is
// acknowledged only after every member has applied the whole batch; the
// lowest-numbered member error wins. Unlike the serial path, a failing
// member does not stop the others mid-flight, so on error some members may
// hold writes others rejected — the same partial state a crashed serial
// pipeline leaves, and the caller's retry/abort handles both identically.
// The ack counter is bumped once for the whole batch (members × writes).
func (g *Group) ApplyBatch(writes []lsm.Write) error {
	return g.ApplyBatchTraced(telemetry.TSpan{}, writes)
}

// ApplyBatchTraced is ApplyBatch under a trace span: when parent is live the
// fan-out appears as a "replication.fanout" span with one "replicate.N"
// child per member running concurrently, each carrying the member's own
// engine spans beneath it. With an inert parent this is exactly ApplyBatch.
func (g *Group) ApplyBatchTraced(parent telemetry.TSpan, writes []lsm.Write) error {
	if len(writes) == 0 {
		return nil
	}
	fanSp := parent.Child("replication.fanout")
	defer fanSp.End()
	if len(g.members) == 1 {
		if err := applyBatchTo(g.members[0], writes, fanSp); err != nil {
			return fmt.Errorf("replication: member 0: %w", err)
		}
		g.acks.Add(int64(len(writes)))
		return nil
	}
	errs := make([]error, len(g.members))
	var wg sync.WaitGroup
	wg.Add(len(g.members))
	for i, m := range g.members {
		go func(i int, m Applier) {
			defer wg.Done()
			memberSp := telemetry.TSpan{}
			if fanSp.Traced() {
				memberSp = fanSp.Child("replicate." + strconv.Itoa(i))
			}
			errs[i] = applyBatchTo(m, writes, memberSp)
			memberSp.End()
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("replication: member %d: %w", i, err)
		}
	}
	g.acks.Add(int64(len(g.members)) * int64(len(writes)))
	return nil
}

// applyBatchTo delivers the batch to one member: in one round when the
// member supports it, key by key otherwise.
func applyBatchTo(m Applier, writes []lsm.Write, sp telemetry.TSpan) error {
	if sp.Traced() {
		if ta, ok := m.(TracedBatchApplier); ok {
			return ta.ApplyBatchTraced(sp, writes)
		}
	}
	if ba, ok := m.(BatchApplier); ok {
		return ba.ApplyBatch(writes)
	}
	for i := range writes {
		w := &writes[i]
		var err error
		if w.Delete {
			err = m.Delete(w.Key)
		} else {
			err = m.Put(w.Key, w.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Primary returns the first pipeline member.
func (g *Group) Primary() Applier { return g.members[0] }

// Replicas returns the non-primary members.
func (g *Group) Replicas() []Applier { return g.members[1:] }

// CheckFactor returns nil when the group meets the required factor. This is
// the check the benchmark driver runs before the warmup (Figure 6's "data
// replication check").
func (g *Group) CheckFactor(required int) error {
	if g.Factor() < required {
		return fmt.Errorf("%w: have %d, require %d", ErrFactorTooLow, g.Factor(), required)
	}
	return nil
}

// Placement computes replica placement for region r of table with n nodes:
// the primary on node r mod n, replicas on the following nodes, wrapping —
// the chain placement HDFS-style pipelines use. It returns factor node
// indices, all distinct when n >= factor, or ErrShortPipeline otherwise.
func Placement(regionOrdinal, nodes, factor int) ([]int, error) {
	if nodes < factor {
		return nil, fmt.Errorf("%w: %d nodes for factor %d", ErrShortPipeline, nodes, factor)
	}
	out := make([]int, factor)
	for i := range out {
		out[i] = (regionOrdinal + i) % nodes
	}
	return out, nil
}
