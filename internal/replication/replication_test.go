package replication

import (
	"errors"
	"fmt"
	"testing"

	"tpcxiot/internal/lsm"
)

// mapApplier is an in-memory Applier for tests.
type mapApplier struct {
	data map[string]string
	fail error
}

func newMapApplier() *mapApplier { return &mapApplier{data: map[string]string{}} }

func (m *mapApplier) Put(key, value []byte) error {
	if m.fail != nil {
		return m.fail
	}
	m.data[string(key)] = string(value)
	return nil
}

func (m *mapApplier) Delete(key []byte) error {
	if m.fail != nil {
		return m.fail
	}
	delete(m.data, string(key))
	return nil
}

func TestPutReachesAllMembers(t *testing.T) {
	p, r1, r2 := newMapApplier(), newMapApplier(), newMapApplier()
	g := NewGroup(p, r1, r2)
	defer g.Close()
	if g.Factor() != 3 {
		t.Fatalf("Factor = %d, want 3", g.Factor())
	}
	if g.Quorum() != 2 {
		t.Fatalf("Quorum = %d, want 2", g.Quorum())
	}
	if err := g.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// The ack fires at quorum; quiesce so the catch-up queues drain before
	// asserting all-member convergence.
	g.Quiesce()
	for i, m := range []*mapApplier{p, r1, r2} {
		if m.data["k"] != "v" {
			t.Fatalf("member %d missing write", i)
		}
	}
}

func TestDeleteReachesAllMembers(t *testing.T) {
	p, r1, r2 := newMapApplier(), newMapApplier(), newMapApplier()
	g := NewGroup(p, r1, r2)
	defer g.Close()
	g.Put([]byte("k"), []byte("v"))
	if err := g.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	g.Quiesce()
	for i, m := range []*mapApplier{p, r1, r2} {
		if _, ok := m.data["k"]; ok {
			t.Fatalf("member %d still holds deleted key", i)
		}
	}
}

func TestMemberFailurePropagates(t *testing.T) {
	p, r1 := newMapApplier(), newMapApplier()
	sentinel := errors.New("disk gone")
	r1.fail = sentinel
	g := NewGroup(p, r1)
	if err := g.Put([]byte("k"), []byte("v")); !errors.Is(err, sentinel) {
		t.Fatalf("replica failure not surfaced: %v", err)
	}
	if err := g.Delete([]byte("k")); !errors.Is(err, sentinel) {
		t.Fatalf("replica delete failure not surfaced: %v", err)
	}
}

func TestCheckFactor(t *testing.T) {
	g := NewGroup(newMapApplier(), newMapApplier(), newMapApplier())
	if err := g.CheckFactor(DefaultFactor); err != nil {
		t.Fatalf("3-way group failed the factor check: %v", err)
	}
	small := NewGroup(newMapApplier())
	if err := small.CheckFactor(DefaultFactor); !errors.Is(err, ErrFactorTooLow) {
		t.Fatalf("1-way group passed the factor check: %v", err)
	}
}

func TestPrimaryAndReplicas(t *testing.T) {
	p, r1, r2 := newMapApplier(), newMapApplier(), newMapApplier()
	g := NewGroup(p, r1, r2)
	if g.Primary() != Applier(p) {
		t.Fatal("Primary is not the first member")
	}
	if len(g.Replicas()) != 2 {
		t.Fatalf("Replicas = %d members", len(g.Replicas()))
	}
}

func TestPlacementDistinctNodes(t *testing.T) {
	for nodes := 3; nodes <= 8; nodes++ {
		for ordinal := 0; ordinal < 20; ordinal++ {
			placement, err := Placement(ordinal, nodes, DefaultFactor)
			if err != nil {
				t.Fatal(err)
			}
			if len(placement) != DefaultFactor {
				t.Fatalf("placement length %d", len(placement))
			}
			seen := map[int]bool{}
			for _, n := range placement {
				if n < 0 || n >= nodes {
					t.Fatalf("node %d out of range for %d nodes", n, nodes)
				}
				if seen[n] {
					t.Fatalf("duplicate node in placement %v", placement)
				}
				seen[n] = true
			}
			if placement[0] != ordinal%nodes {
				t.Fatalf("primary not on expected node: %v", placement)
			}
		}
	}
}

func TestPlacementBalancesPrimaries(t *testing.T) {
	const nodes = 4
	counts := make([]int, nodes)
	for ordinal := 0; ordinal < 400; ordinal++ {
		p, err := Placement(ordinal, nodes, DefaultFactor)
		if err != nil {
			t.Fatal(err)
		}
		counts[p[0]]++
	}
	for n, c := range counts {
		if c != 100 {
			t.Fatalf("node %d hosts %d primaries, want 100: %v", n, c, counts)
		}
	}
}

func TestPlacementTooFewNodes(t *testing.T) {
	if _, err := Placement(0, 2, DefaultFactor); !errors.Is(err, ErrShortPipeline) {
		t.Fatalf("2 nodes for factor 3: %v", err)
	}
}

func TestPipelineOrdering(t *testing.T) {
	// The fan-out is parallel, so replicas may apply a write the primary
	// rejected — but the batch must FAIL, the primary's standing error must
	// be visible, and the commit watermark must not advance past it.
	p, r1 := newMapApplier(), newMapApplier()
	sentinel := errors.New("primary down")
	p.fail = sentinel
	g := NewGroup(p, r1)
	defer g.Close()
	if err := g.Put([]byte("k"), []byte("v")); !errors.Is(err, sentinel) {
		t.Fatal("primary failure not surfaced")
	}
	g.Quiesce()
	if err := g.MemberErr(0); !errors.Is(err, sentinel) {
		t.Fatalf("primary standing error = %v, want %v", err, sentinel)
	}
	if got := g.CommitSeq(); got != 0 {
		t.Fatalf("commit watermark advanced to %d past a failed primary", got)
	}
}

func TestGroupWithManyMembers(t *testing.T) {
	members := make([]*mapApplier, 5)
	appliers := make([]Applier, 4)
	members[0] = newMapApplier()
	for i := 1; i < 5; i++ {
		members[i] = newMapApplier()
		appliers[i-1] = members[i]
	}
	g := NewGroup(members[0], appliers...)
	defer g.Close()
	if g.Factor() != 5 {
		t.Fatalf("Factor = %d", g.Factor())
	}
	if g.Quorum() != 3 {
		t.Fatalf("Quorum = %d, want 3", g.Quorum())
	}
	for i := 0; i < 100; i++ {
		if err := g.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	g.Quiesce()
	if lag := g.QuorumLag(); lag != 0 {
		t.Fatalf("quorum lag %d after quiesce", lag)
	}
	for i, m := range members {
		if len(m.data) != 100 {
			t.Fatalf("member %d has %d keys, want 100", i, len(m.data))
		}
	}
}

// batchRecorder implements BatchApplier on top of mapApplier and records
// how the batch arrived (one round vs per-key fallback).
type batchRecorder struct {
	mapApplier
	batchCalls int
}

func (b *batchRecorder) ApplyBatch(writes []lsm.Write) error {
	if b.fail != nil {
		return b.fail
	}
	b.batchCalls++
	for i := range writes {
		if writes[i].Delete {
			delete(b.data, string(writes[i].Key))
		} else {
			b.data[string(writes[i].Key)] = string(writes[i].Value)
		}
	}
	return nil
}

func testBatch(n int) []lsm.Write {
	out := make([]lsm.Write, n)
	for i := range out {
		out[i] = lsm.Write{Key: []byte(fmt.Sprintf("k%03d", i)), Value: []byte("v")}
	}
	return out
}

func TestApplyBatchReachesAllMembersInOneRound(t *testing.T) {
	members := []*batchRecorder{
		{mapApplier: *newMapApplier()},
		{mapApplier: *newMapApplier()},
		{mapApplier: *newMapApplier()},
	}
	g := NewGroup(members[0], members[1], members[2])
	defer g.Close()
	if err := g.ApplyBatch(testBatch(50)); err != nil {
		t.Fatal(err)
	}
	g.Quiesce()
	for i, m := range members {
		if len(m.data) != 50 {
			t.Fatalf("member %d holds %d keys, want 50", i, len(m.data))
		}
		if m.batchCalls != 1 {
			t.Fatalf("member %d applied in %d rounds, want 1", i, m.batchCalls)
		}
	}
}

func TestApplyBatchFallsBackToPerKey(t *testing.T) {
	// Plain Appliers (no BatchApplier) still receive every write.
	p, r1 := newMapApplier(), newMapApplier()
	g := NewGroup(p, r1)
	batch := testBatch(10)
	batch = append(batch, lsm.Write{Key: []byte("k003"), Delete: true})
	if err := g.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	for i, m := range []*mapApplier{p, r1} {
		if len(m.data) != 9 {
			t.Fatalf("member %d holds %d keys, want 9", i, len(m.data))
		}
		if _, ok := m.data["k003"]; ok {
			t.Fatalf("member %d did not apply the batched delete", i)
		}
	}
}

func TestApplyBatchEmptyIsNoOp(t *testing.T) {
	g := NewGroup(newMapApplier(), newMapApplier())
	if err := g.ApplyBatch(nil); err != nil {
		t.Fatal(err)
	}
}

func TestApplyBatchMemberFailureWins(t *testing.T) {
	// At full quorum (quorum == factor) a single replica failure makes the
	// quorum unreachable, so the batch fails and the member's error wins.
	p, r1, r2 := newMapApplier(), newMapApplier(), newMapApplier()
	sentinel := errors.New("replica disk gone")
	r1.fail = sentinel
	g := NewGroupOptions(Options{Quorum: 3}, p, r1, r2)
	defer g.Close()
	if err := g.ApplyBatch(testBatch(5)); !errors.Is(err, sentinel) {
		t.Fatalf("member failure not surfaced: %v", err)
	}
	g.Quiesce()
	// The parallel fan-out still applied the batch on healthy members.
	if len(p.data) != 5 || len(r2.data) != 5 {
		t.Fatalf("healthy members hold %d/%d keys, want 5/5", len(p.data), len(r2.data))
	}
}

func TestApplyBatchQuorumToleratesReplicaFailure(t *testing.T) {
	// At majority quorum the same replica failure is absorbed: the batch
	// acks on primary+r2 and the failed member carries a standing error.
	p, r1, r2 := newMapApplier(), newMapApplier(), newMapApplier()
	sentinel := errors.New("replica disk gone")
	r1.fail = sentinel
	g := NewGroup(p, r1, r2)
	defer g.Close()
	if err := g.ApplyBatch(testBatch(5)); err != nil {
		t.Fatalf("quorum write failed despite a healthy majority: %v", err)
	}
	g.Quiesce()
	if len(p.data) != 5 || len(r2.data) != 5 {
		t.Fatalf("healthy members hold %d/%d keys, want 5/5", len(p.data), len(r2.data))
	}
	if err := g.MemberErr(1); !errors.Is(err, sentinel) {
		t.Fatalf("failed member's standing error = %v, want %v", err, sentinel)
	}
	if g.CommitSeq() != 1 {
		t.Fatalf("commit = %d, want 1", g.CommitSeq())
	}
}

func TestApplyBatchSingleMember(t *testing.T) {
	p := newMapApplier()
	g := NewGroup(p)
	if err := g.ApplyBatch(testBatch(7)); err != nil {
		t.Fatal(err)
	}
	if len(p.data) != 7 {
		t.Fatalf("single member holds %d keys, want 7", len(p.data))
	}
}
