package replication

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tpcxiot/internal/lsm"
)

// gatedApplier blocks every batch apply until released, modelling a slow or
// stalled member. Safe for concurrent use with its controls.
type gatedApplier struct {
	inner   *mapApplier
	mu      sync.Mutex
	blocked bool
	release chan struct{}
	applies int
	order   []string // first key of each applied batch, in apply order
}

func newGatedApplier() *gatedApplier {
	return &gatedApplier{inner: newMapApplier(), release: make(chan struct{})}
}

// Block makes subsequent applies wait until Unblock.
func (g *gatedApplier) Block() {
	g.mu.Lock()
	g.blocked = true
	g.release = make(chan struct{})
	g.mu.Unlock()
}

// Unblock releases every waiting and future apply.
func (g *gatedApplier) Unblock() {
	g.mu.Lock()
	g.blocked = false
	close(g.release)
	g.mu.Unlock()
}

func (g *gatedApplier) wait() {
	g.mu.Lock()
	blocked, ch := g.blocked, g.release
	g.mu.Unlock()
	if blocked {
		<-ch
	}
}

func (g *gatedApplier) ApplyBatch(writes []lsm.Write) error {
	g.wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	g.applies++
	if len(writes) > 0 {
		g.order = append(g.order, string(writes[0].Key))
	}
	for i := range writes {
		if writes[i].Delete {
			delete(g.inner.data, string(writes[i].Key))
		} else {
			g.inner.data[string(writes[i].Key)] = string(writes[i].Value)
		}
	}
	return nil
}

func (g *gatedApplier) Put(key, value []byte) error {
	return g.ApplyBatch([]lsm.Write{{Key: key, Value: value}})
}

func (g *gatedApplier) Delete(key []byte) error {
	return g.ApplyBatch([]lsm.Write{{Key: key, Delete: true}})
}

func (g *gatedApplier) snapshot() (applies int, order []string, data map[string]string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	data = make(map[string]string, len(g.inner.data))
	for k, v := range g.inner.data {
		data[k] = v
	}
	return g.applies, append([]string(nil), g.order...), data
}

// (a) A blocked member must not delay the quorum acknowledgement.
func TestQuorumAckDoesNotWaitForStraggler(t *testing.T) {
	p, r1 := newMapApplier(), newMapApplier()
	straggler := newGatedApplier()
	straggler.Block()
	g := NewGroup(p, r1, straggler)
	defer g.Close()

	done := make(chan error, 1)
	go func() { done <- g.Put([]byte("k"), []byte("v")) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("quorum put failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("quorum ack blocked on the straggler")
	}

	// The ack happened while the straggler is still behind.
	if g.CommitSeq() != 1 {
		t.Fatalf("commit = %d, want 1", g.CommitSeq())
	}
	if g.MemberApplied(2) != 0 {
		t.Fatal("straggler advanced while blocked")
	}
	if g.QuorumLag() == 0 {
		t.Fatal("quorum lag not visible while the straggler is behind")
	}
	if d := g.QueueDepth(2); d != 1 {
		t.Fatalf("straggler queue depth = %d, want 1", d)
	}

	straggler.Unblock()
	if err := g.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if _, _, data := straggler.snapshot(); data["k"] != "v" {
		t.Fatal("straggler never converged")
	}
	if g.QuorumLag() != 0 {
		t.Fatalf("quorum lag %d after convergence", g.QuorumLag())
	}
}

// (b) The catch-up queue drains in WAL order: no lost, duplicated, or
// reordered batch, even with writers racing the straggler's recovery.
func TestCatchUpDrainsInWALOrder(t *testing.T) {
	const batches = 64
	p, r1 := newMapApplier(), newMapApplier()
	straggler := newGatedApplier()
	straggler.Block()
	g := NewGroupOptions(Options{MaxQueue: batches + 1}, p, r1, straggler)
	defer g.Close()

	for i := 0; i < batches; i++ {
		batch := []lsm.Write{
			{Key: []byte(fmt.Sprintf("k%03d", i)), Value: []byte("v")},
			{Key: []byte(fmt.Sprintf("x%03d", i)), Value: []byte("v")},
		}
		if err := g.ApplyBatch(batch); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if d := g.QueueDepth(2); d != batches {
		t.Fatalf("straggler retained %d batches, want %d", d, batches)
	}

	straggler.Unblock()
	if err := g.Quiesce(); err != nil {
		t.Fatal(err)
	}

	applies, order, data := straggler.snapshot()
	if applies != batches {
		t.Fatalf("straggler applied %d batches, want %d (lost or duplicated)", applies, batches)
	}
	for i, k := range order {
		if want := fmt.Sprintf("k%03d", i); k != want {
			t.Fatalf("batch %d applied as %q, want %q (reordered)", i, k, want)
		}
	}
	if len(data) != 2*batches {
		t.Fatalf("straggler holds %d keys, want %d", len(data), 2*batches)
	}
	if got, want := g.MemberApplied(2), uint64(batches); got != want {
		t.Fatalf("straggler watermark %d, want %d", got, want)
	}
}

// crashingStore wraps a real lsm.Store and fails every apply after the trip
// point, simulating a member crash mid-stream.
type crashingStore struct {
	mu      sync.Mutex
	store   *lsm.Store
	applies int
	tripAt  int // fail once this many batches applied; <0 disables
	err     error
}

func (c *crashingStore) ApplyBatch(writes []lsm.Write) error {
	c.mu.Lock()
	if c.tripAt >= 0 && c.applies >= c.tripAt {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.applies++
	st := c.store
	c.mu.Unlock()
	return st.ApplyBatch(writes)
}

func (c *crashingStore) Put(key, value []byte) error {
	return c.ApplyBatch([]lsm.Write{{Key: key, Value: value}})
}

func (c *crashingStore) Delete(key []byte) error {
	return c.ApplyBatch([]lsm.Write{{Key: key, Delete: true}})
}

// (c) A straggler that crashes keeps its retained queue; after the store is
// reopened (WAL recovery) and the member restarted, the queue replays from
// the watermark and the member converges to the same contents as the
// primary. Runs against real lsm stores for crash-recovery parity.
func TestStragglerCrashRestartReplaysToWatermark(t *testing.T) {
	const total = 40
	const crashAfter = 10

	openStore := func(dir string) *lsm.Store {
		s, err := lsm.Open(lsm.Options{Dir: dir, DisableAutoFlush: true})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	pDir, rDir, sDir := t.TempDir(), t.TempDir(), t.TempDir()
	p, r1 := openStore(pDir), openStore(rDir)
	flaky := &crashingStore{
		store:  openStore(sDir),
		tripAt: crashAfter,
		err:    errors.New("injected crash"),
	}

	g := NewGroup(p, r1, flaky)
	for i := 0; i < total; i++ {
		if err := g.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatalf("put %d failed despite a healthy quorum: %v", i, err)
		}
	}

	// Let the straggler hit its crash point, then observe the stop.
	deadline := time.Now().Add(5 * time.Second)
	for g.MemberErr(2) == nil {
		if time.Now().After(deadline) {
			t.Fatal("straggler never crashed")
		}
		time.Sleep(time.Millisecond)
	}
	if g.MemberApplied(2) != crashAfter {
		t.Fatalf("crashed at watermark %d, want %d", g.MemberApplied(2), crashAfter)
	}
	// The retained queue resumes exactly at the watermark: every batch the
	// member never durably applied is still queued.
	if d := g.QueueDepth(2); d != total-crashAfter {
		t.Fatalf("retained queue %d batches, want %d", d, total-crashAfter)
	}

	// "Reboot" the member: close the crashed store, reopen from disk (WAL
	// recovery), re-attach, and let the replay run.
	if err := flaky.store.Close(); err != nil {
		t.Fatal(err)
	}
	recovered := openStore(sDir)
	if err := g.RestartMember(2, recovered); err != nil {
		t.Fatal(err)
	}
	if err := g.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if got, want := g.MemberApplied(2), uint64(total); got != want {
		t.Fatalf("replayed to %d, want %d", got, want)
	}

	// Parity: the recovered member serves exactly what the primary serves.
	for i := 0; i < total; i++ {
		key := []byte(fmt.Sprintf("k%03d", i))
		want := fmt.Sprintf("v%03d", i)
		v, ok, err := recovered.Get(key)
		if err != nil || !ok || string(v) != want {
			t.Fatalf("recovered member k%03d = %q ok=%v err=%v, want %q", i, v, ok, err, want)
		}
		pv, pok, perr := p.Get(key)
		if perr != nil || !pok || string(pv) != want {
			t.Fatalf("primary k%03d = %q ok=%v err=%v, want %q", i, pv, pok, perr, want)
		}
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*lsm.Store{p, r1, recovered} {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// (d) Reads routed to a lagging member must wait for its applied watermark
// to reach the commit watermark — or time out with ErrLagging so the caller
// redirects to the primary.
func TestLaggingMemberReadGate(t *testing.T) {
	p, r1 := newMapApplier(), newMapApplier()
	straggler := newGatedApplier()
	straggler.Block()
	g := NewGroup(p, r1, straggler)
	defer g.Close()

	if err := g.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if g.CaughtUp(2) {
		t.Fatal("blocked member reports caught up")
	}
	// The primary is always read-safe: quorum includes it by construction.
	if !g.CaughtUp(0) {
		t.Fatal("primary behind its own quorum ack")
	}
	if err := g.WaitCaughtUp(2, 20*time.Millisecond); !errors.Is(err, ErrLagging) {
		t.Fatalf("lagging read gate returned %v, want ErrLagging", err)
	}

	// Release the straggler while a reader is parked on the gate.
	done := make(chan error, 1)
	go func() { done <- g.WaitCaughtUp(2, -1) }()
	time.Sleep(5 * time.Millisecond)
	straggler.Unblock()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("gate did not open on catch-up: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read gate never opened")
	}
	if !g.CaughtUp(2) {
		t.Fatal("member still lagging after the gate opened")
	}
	if _, _, data := straggler.snapshot(); data["k"] != "v" {
		t.Fatal("gated read would miss the acknowledged write")
	}
}

// A stalled straggler fills its bounded catch-up queue; the group then
// refuses new writes with ErrCatchUpFull instead of queueing unboundedly.
func TestFullCatchUpQueueRefusesWrites(t *testing.T) {
	const maxQueue = 4
	p, r1 := newMapApplier(), newMapApplier()
	straggler := newGatedApplier()
	straggler.Block()
	g := NewGroupOptions(Options{MaxQueue: maxQueue}, p, r1, straggler)
	defer g.Close()

	// The straggler's worker may pull the head batch out of the queue and
	// block inside the apply, freeing one slot — so up to maxQueue+1 writes
	// can be admitted before the refusal. Everything admitted must ack.
	admitted := 0
	var refusal error
	for i := 0; i < maxQueue+2; i++ {
		err := g.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
		if err == nil {
			admitted++
			continue
		}
		refusal = err
		break
	}
	if refusal == nil {
		t.Fatal("stalled straggler never produced ErrCatchUpFull")
	}
	if !errors.Is(refusal, ErrCatchUpFull) {
		t.Fatalf("refusal = %v, want ErrCatchUpFull", refusal)
	}
	if admitted < maxQueue {
		t.Fatalf("only %d writes admitted before refusal, want >= %d", admitted, maxQueue)
	}

	// Backpressure is retryable: once the straggler drains, writes flow.
	straggler.Unblock()
	if err := g.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := g.Put([]byte("after"), []byte("v")); err != nil {
		t.Fatalf("write refused after the queue drained: %v", err)
	}
}

// Replays after a restart must not double-count quorum acknowledgements:
// the batch's ack state accepts one report per member.
func TestRestartReplayDoesNotDoubleAck(t *testing.T) {
	p, r1 := newMapApplier(), newMapApplier()
	flaky := &crashingStore{}
	sDir := t.TempDir()
	s, err := lsm.Open(lsm.Options{Dir: sDir, DisableAutoFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	flaky.store, flaky.tripAt, flaky.err = s, 0, errors.New("down from the start")

	g := NewGroup(p, r1, flaky)
	for i := 0; i < 10; i++ {
		if err := g.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.MemberErr(2) == nil {
		if time.Now().After(deadline) {
			t.Fatal("member never stopped")
		}
		time.Sleep(time.Millisecond)
	}

	flaky.mu.Lock()
	flaky.tripAt = -1 // recovered
	flaky.mu.Unlock()
	if err := g.RestartMember(2, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if got := g.MemberApplied(2); got != 10 {
		t.Fatalf("replayed to %d, want 10", got)
	}
	if g.CommitSeq() != 10 {
		t.Fatalf("commit = %d, want 10", g.CommitSeq())
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
