// Package driver implements the TPCx-IoT benchmark driver: the component
// that runs the complete benchmark against a System Under Test according to
// the execution rules of Section III-B and Figure 6.
//
// A benchmark run is two iterations. Each iteration executes the workload
// twice — an untimed warmup and the measured run — followed by a data check;
// a system cleanup separates the iterations. Before the first warmup the
// driver performs the prerequisite checks (kit file checksums, replication
// factor). The reported metric comes from the two measured runs per the
// metrics package.
package driver

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tpcxiot/internal/audit"
	"tpcxiot/internal/histogram"
	"tpcxiot/internal/metrics"
	"tpcxiot/internal/telemetry"
	"tpcxiot/internal/workload"
	"tpcxiot/internal/ycsb"
)

// Sentinel errors.
var (
	ErrBadConfig    = errors.New("driver: invalid configuration")
	ErrPrerequisite = errors.New("driver: prerequisite check failed")
)

// RowCounter is an optional SUT capability: counting the readings actually
// persisted, so the data check can verify storage rather than trusting
// client-side counters alone.
type RowCounter interface {
	// CountRows returns the number of readings currently stored.
	CountRows() (int64, error)
}

// Quiescer is an optional SUT capability: draining the replication
// pipeline's catch-up queues so every member converges. The driver calls it
// after each workload execution, outside the timed window.
type Quiescer interface {
	Quiesce() error
}

// SUT abstracts the system under test so the same driver runs against the
// live mini-HBase cluster and against test doubles.
type SUT interface {
	// Binding returns the per-thread DB factory for driver instance d.
	Binding(d int) ycsb.Binding
	// ReplicationFactor reports the storage replication for the
	// prerequisite check.
	ReplicationFactor() int
	// Cleanup purges all ingested data and restarts the data management
	// system: the system cleanup between benchmark iterations.
	Cleanup() error
	// Describe names the SUT for reports.
	Describe() string
}

// Config parametrises a benchmark run. The two required knobs mirror the
// kit's command line: the number of driver instances (simulated power
// substations) and the total number of kvps.
type Config struct {
	// Drivers is P, the number of TPCx-IoT driver instances. Required.
	Drivers int
	// TotalKVPs is K, the total sensor readings to ingest across all
	// instances. Defaults to 1e9, the kit default.
	TotalKVPs int64
	// ThreadsPerDriver is the worker threads per instance. Defaults to 10.
	ThreadsPerDriver int
	// Seed makes data generation reproducible.
	Seed uint64
	// SUT is the system under test. Required.
	SUT SUT
	// Manifest, when non-nil, is verified by the file check.
	Manifest audit.Manifest
	// Iterations is the benchmark iteration count. Defaults to 2 as the
	// specification requires; tests may use 1.
	Iterations int
	// MinWorkloadSeconds overrides the 1 800 s execution-rule floor for
	// scaled-down (non-publishable) runs. Defaults to the specification
	// value. Scaled runs are marked non-compliant in the result.
	MinWorkloadSeconds float64
	// RepeatabilityTolerance is the allowed relative difference between
	// iteration throughputs. Defaults to 0.10.
	RepeatabilityTolerance float64
	// Now supplies the clock for timestamps; defaults to time.Now.
	Now func() time.Time
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
	// StatusInterval, when positive, logs a YCSB-style status line for the
	// first driver instance on that period via Logf.
	StatusInterval time.Duration
	// Telemetry, when non-nil, collects engine counters and operation
	// latencies cluster-wide: every workload execution samples it on
	// TelemetryInterval into a per-interval time series (attached to the
	// Execution), streams each point through Logf, and the final registry
	// summary is attached to the Result. The SUT must share the same
	// registry for engine counters to appear.
	Telemetry *telemetry.Registry
	// TelemetryInterval is the sampling period. Defaults to 10 s, the YCSB
	// status-line default.
	TelemetryInterval time.Duration
	// HealthInterval is the runtime health sampler's period: with Telemetry
	// set, the run samples runtime.ReadMemStats, goroutine count and RSS
	// into the registry (gauges "runtime.*", histogram "gc.pause") so the
	// interval series and report can correlate throughput dips with GC and
	// heap behaviour. 0 selects the telemetry default (1 s); negative
	// disables the sampler (benchmarks that want a silent process).
	HealthInterval time.Duration
	// Tracer, when non-nil, is the distributed-trace sampler shared with the
	// SUT's clients. The driver itself never starts spans; it drains the
	// tracer's slow-trace list into the Result so the report can render the
	// slowest operations' span trees.
	Tracer *telemetry.Tracer
	// OnTicker, when set, receives each execution's live telemetry ticker
	// right after it starts — the hook a signal handler uses to snapshot the
	// in-flight interval series on interrupt.
	OnTicker func(*telemetry.Ticker)
	// Pushdown routes the dashboard query templates through the SUT's
	// server-side aggregation path when the binding implements
	// ycsb.Aggregator; bindings without the capability fall back to the
	// streamed scans, so the flag is safe against any SUT.
	Pushdown bool
	// Analytics adds the downsampling and group-by-window query templates to
	// the per-thread query rotation. They are reported separately and do not
	// perturb the Figure-12 dashboard validity statistics.
	Analytics bool
	// TargetRate, when positive, paces the run: the system-wide intended
	// operation rate in ops/s, split evenly across driver instances (and
	// within each instance across its threads into a fixed intended-start
	// schedule). Paced runs record a second, coordinated-omission-corrected
	// latency distribution per operation — measured from each op's scheduled
	// start instead of its actual start — so a backlog behind a stall shows
	// up as intended latency even while per-op service time stays flat.
	// 0 leaves the run open-loop (every thread issues as fast as the SUT
	// acknowledges).
	TargetRate float64
	// AuditTolerance is the live auditor's sustained-performance band: every
	// complete telemetry interval's throughput must stay within this
	// fraction of the measured run's mean interval rate. 0 selects the
	// auditor default (0.20).
	AuditTolerance float64
	// AuditShedBudget is the auditor's allowed shed-operation fraction.
	// 0 selects the auditor default (0.05).
	AuditShedBudget float64
	// OnVerdict, when set, receives each iteration's audit verdict right
	// after evaluation (iteration index first) — the hook the CLI uses to
	// refresh the /audit endpoint and stream the verdict artifact.
	OnVerdict func(iteration int, v audit.Verdict)

	// sequencer issues per-sensor monotonic timestamps shared by every
	// workload execution of this run, so a measured run never re-mints a
	// millisecond its warmup already used for the same sensor (generated keys
	// stay unique across executions and the stored-rows check is exact).
	sequencer *workload.Sequencer
}

func (c Config) withDefaults() (Config, error) {
	if c.SUT == nil {
		return c, fmt.Errorf("%w: SUT is required", ErrBadConfig)
	}
	if c.Drivers <= 0 {
		return c, fmt.Errorf("%w: Drivers must be positive", ErrBadConfig)
	}
	if c.TotalKVPs == 0 {
		c.TotalKVPs = 1_000_000_000
	}
	if c.TotalKVPs < int64(c.Drivers) {
		return c, fmt.Errorf("%w: TotalKVPs %d below driver count %d", ErrBadConfig, c.TotalKVPs, c.Drivers)
	}
	if c.ThreadsPerDriver <= 0 {
		c.ThreadsPerDriver = workload.DefaultThreads
	}
	if c.Iterations <= 0 {
		c.Iterations = 2
	}
	if c.MinWorkloadSeconds == 0 {
		c.MinWorkloadSeconds = audit.MinWorkloadSeconds
	}
	if c.RepeatabilityTolerance == 0 {
		c.RepeatabilityTolerance = 0.10
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.TelemetryInterval <= 0 {
		c.TelemetryInterval = 10 * time.Second
	}
	if c.sequencer == nil {
		c.sequencer = workload.NewSequencer()
	}
	return c, nil
}

// DriverOutcome is one driver instance's result within a workload execution.
type DriverOutcome struct {
	// Substation is the instance's substation key.
	Substation string
	// Share is the instance's kvp quota per Equation 3.
	Share int64
	// Elapsed is the instance's ingest time — the statistic behind
	// Table II's load-balance analysis.
	Elapsed time.Duration
	// Stats carries the instance's insert/query counters.
	Stats workload.InstanceStats
	// InsertLatency and QueryLatency are the instance's per-operation
	// latency distributions in nanoseconds.
	InsertLatency, QueryLatency histogram.Snapshot
	// IntendedInsert and IntendedQuery are the coordinated-omission-
	// corrected distributions (latency from each op's scheduled start).
	// Empty for open-loop runs.
	IntendedInsert, IntendedQuery histogram.Snapshot
}

// Execution is one workload execution (a warmup or a measured run).
type Execution struct {
	// Start and End are TS_start and TS_end.
	Start, End time.Time
	// KVPs is the total ingested.
	KVPs int64
	// Drivers holds each instance's outcome.
	Drivers []DriverOutcome
	// InsertLatency and QueryLatency merge all instances' distributions.
	InsertLatency, QueryLatency histogram.Snapshot
	// IntendedInsert and IntendedQuery merge the instances' coordinated-
	// omission-corrected distributions; empty for open-loop runs.
	IntendedInsert, IntendedQuery histogram.Snapshot
	// Series is the telemetry time series sampled during the execution;
	// nil when telemetry is disabled.
	Series *telemetry.Series
}

// TotalOps is the execution's completed operation count (inserts plus
// dashboard and analytic queries).
func (e Execution) TotalOps() int64 {
	var n int64
	for _, d := range e.Drivers {
		n += d.Stats.Inserted + d.Stats.Queries + d.Stats.AnalyticQueries
	}
	return n
}

// ShedOps is the execution's count of operations deferred by load shedding
// after retry exhaustion.
func (e Execution) ShedOps() int64 {
	var n int64
	for _, d := range e.Drivers {
		n += d.Stats.Shed
	}
	return n
}

// Elapsed is the execution's wall-clock duration.
func (e Execution) Elapsed() time.Duration { return e.End.Sub(e.Start) }

// IoTps is the execution's system-wide throughput.
func (e Execution) IoTps() float64 {
	return metrics.Run{KVPs: e.KVPs, Start: e.Start, End: e.End}.IoTps()
}

// IngestSkew returns the fastest, slowest and mean per-driver ingest times
// (Table II). Zero values when there are no drivers.
func (e Execution) IngestSkew() (min, max, avg time.Duration) {
	if len(e.Drivers) == 0 {
		return 0, 0, 0
	}
	var sum time.Duration
	min = e.Drivers[0].Elapsed
	for _, d := range e.Drivers {
		if d.Elapsed < min {
			min = d.Elapsed
		}
		if d.Elapsed > max {
			max = d.Elapsed
		}
		sum += d.Elapsed
	}
	return min, max, sum / time.Duration(len(e.Drivers))
}

// AvgRowsPerQuery is the system-wide mean readings aggregated per query
// over both 5-second intervals (Figure 12).
func (e Execution) AvgRowsPerQuery() float64 {
	var rows, queries int64
	for _, d := range e.Drivers {
		rows += d.Stats.RowsAggregated + d.Stats.HistoricalRows
		queries += d.Stats.Queries
	}
	if queries == 0 {
		return 0
	}
	return float64(rows) / float64(queries)
}

// Iteration is one benchmark iteration: warmup plus measured run.
type Iteration struct {
	Warmup   Execution
	Measured Execution
	Checks   audit.Checklist
	// Verdict is the live run-validity audit of the measured run: named
	// rules with structured outcomes, interval violations joined to
	// co-occurring telemetry signals. Its pass/fail is folded into Checks
	// as the "run-validity-audit" entry.
	Verdict audit.Verdict
}

// Result is the outcome of a full benchmark run.
type Result struct {
	// Config echoes the run parameters.
	Drivers   int
	TotalKVPs int64
	// TargetRate echoes the paced intended rate (0 = open loop).
	TargetRate float64
	// SUTDescription names the system under test.
	SUTDescription string
	// Prerequisites holds the pre-run checks.
	Prerequisites audit.Checklist
	// Iterations holds each benchmark iteration.
	Iterations []Iteration
	// Metric aggregates the measured runs.
	Metric metrics.Result
	// Compliant is true when the run used the specification thresholds
	// (not a scaled-down MinWorkloadSeconds).
	Compliant bool
	// Telemetry is the final cumulative registry summary (counters, gauges
	// and span histograms across the whole run); nil when disabled.
	Telemetry *telemetry.Summary
	// SlowTraces holds the span trees of the slowest sampled operations
	// (those exceeding the tracer's slow-op threshold); nil when tracing is
	// disabled.
	SlowTraces []*telemetry.Trace
}

// Checks flattens every checklist in the result.
func (r *Result) Checks() audit.Checklist {
	out := append(audit.Checklist(nil), r.Prerequisites...)
	for _, it := range r.Iterations {
		out = append(out, it.Checks...)
	}
	return out
}

// Valid reports whether every check passed.
func (r *Result) Valid() bool { return r.Checks().Passed() }

// IoTps returns the reported performance metric.
func (r *Result) IoTps() float64 {
	v, err := r.Metric.IoTps()
	if err != nil {
		return 0
	}
	return v
}

// Run executes the complete benchmark per Figure 6.
func Run(cfg Config) (*Result, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Drivers:        c.Drivers,
		TotalKVPs:      c.TotalKVPs,
		TargetRate:     c.TargetRate,
		SUTDescription: c.SUT.Describe(),
		Compliant:      c.MinWorkloadSeconds >= audit.MinWorkloadSeconds,
	}
	auditor := audit.NewAuditor(audit.Config{
		Tolerance:  c.AuditTolerance,
		MinSeconds: c.MinWorkloadSeconds,
		ShedBudget: c.AuditShedBudget,
	})

	// Runtime health sampling for the whole run; every execution's interval
	// series picks the runtime.* gauges up automatically.
	if c.Telemetry != nil && c.HealthInterval >= 0 {
		sampler := telemetry.StartHealthSampler(c.Telemetry, c.HealthInterval)
		defer sampler.Stop()
	}

	// Prerequisite checks: file check (when a manifest is supplied) and the
	// data replication check. A failure aborts the run.
	if c.Manifest != nil {
		res.Prerequisites = append(res.Prerequisites, audit.FileCheck(c.Manifest))
	}
	res.Prerequisites = append(res.Prerequisites,
		audit.ReplicationCheck(c.SUT.ReplicationFactor()))
	if !res.Prerequisites.Passed() {
		return res, fmt.Errorf("%w:\n%s", ErrPrerequisite, res.Prerequisites.Failed())
	}

	for it := 0; it < c.Iterations; it++ {
		c.Logf("iteration %d/%d: warmup run", it+1, c.Iterations)
		warmup, err := executeWorkload(c, uint64(it)*2+1)
		if err != nil {
			return res, fmt.Errorf("driver: iteration %d warmup: %w", it+1, err)
		}
		c.Logf("iteration %d/%d: measured run", it+1, c.Iterations)
		measured, err := executeWorkload(c, uint64(it)*2+2)
		if err != nil {
			return res, fmt.Errorf("driver: iteration %d measured: %w", it+1, err)
		}

		iter := Iteration{Warmup: warmup, Measured: measured}
		iter.Checks = append(iter.Checks,
			audit.DurationCheck("warmup-duration", warmup.Elapsed(), c.MinWorkloadSeconds),
			audit.DurationCheck("measured-duration", measured.Elapsed(), c.MinWorkloadSeconds),
			audit.DataCheck(measured.KVPs, c.TotalKVPs),
			audit.PerSensorRateCheck(
				metrics.PerSensorIoTps(measured.IoTps(), c.Drivers),
				audit.MinPerSensorRate),
			audit.QueryAggregateCheck(measured.AvgRowsPerQuery(), audit.MinRowsPerQuery),
		)
		// When the SUT can count stored rows, verify the storage tier holds
		// everything this iteration ingested (warmup + measured coexist
		// until the next cleanup) — a stronger data check than client-side
		// accounting.
		if counter, ok := c.SUT.(RowCounter); ok {
			stored, err := counter.CountRows()
			if err != nil {
				return res, fmt.Errorf("driver: stored-row count: %w", err)
			}
			iter.Checks = append(iter.Checks,
				audit.StoredRowsCheck(stored, warmup.KVPs+measured.KVPs))
		}
		// Live run-validity audit: the measured run's interval series plus
		// its metadata, evaluated into a structured verdict whose pass/fail
		// joins the iteration checklist.
		iter.Verdict = auditor.Evaluate(audit.RunInfo{
			WarmupSeconds:   warmup.Elapsed().Seconds(),
			MeasuredSeconds: measured.Elapsed().Seconds(),
			KVPs:            measured.KVPs,
			ExpectedKVPs:    c.TotalKVPs,
			TotalOps:        measured.TotalOps(),
			ShedOps:         measured.ShedOps(),
			TargetRate:      c.TargetRate,
			Series:          measured.Series,
		})
		iter.Checks = append(iter.Checks, iter.Verdict.Check())
		if c.OnVerdict != nil {
			c.OnVerdict(it, iter.Verdict)
		}
		res.Iterations = append(res.Iterations, iter)
		res.Metric.Runs = append(res.Metric.Runs, metrics.Run{
			KVPs: measured.KVPs, Start: measured.Start, End: measured.End,
		})

		if it < c.Iterations-1 {
			c.Logf("iteration %d/%d: system cleanup", it+1, c.Iterations)
			if err := c.SUT.Cleanup(); err != nil {
				return res, fmt.Errorf("driver: cleanup after iteration %d: %w", it+1, err)
			}
		}
	}

	if len(res.Iterations) >= 2 {
		last := len(res.Iterations) - 1
		res.Iterations[last].Checks = append(res.Iterations[last].Checks,
			audit.RepeatabilityCheck(
				res.Iterations[0].Measured.IoTps(),
				res.Iterations[1].Measured.IoTps(),
				c.RepeatabilityTolerance))
	}
	res.Telemetry = c.Telemetry.Summary()
	res.SlowTraces = c.Tracer.SlowTraces()
	return res, nil
}

// ExecuteWorkload runs a single workload execution (all driver instances
// concurrently) outside a full benchmark; the benchmark itself uses the
// same path. Exported for experiments that need one execution, such as
// warmup-free scaling probes.
func ExecuteWorkload(cfg Config) (Execution, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return Execution{}, err
	}
	return executeWorkload(c, 1)
}

func executeWorkload(c Config, salt uint64) (Execution, error) {
	type driverRun struct {
		outcome DriverOutcome
		err     error
	}
	runs := make([]driverRun, c.Drivers)
	var wg sync.WaitGroup

	// Telemetry ticker: one per execution, so each warmup/measured run gets
	// its own series while the registry stays cumulative underneath.
	var ticker *telemetry.Ticker
	if c.Telemetry != nil {
		ticker = telemetry.NewTicker(c.Telemetry, c.TelemetryInterval, func(p telemetry.Point) {
			c.Logf("telemetry %s", p)
		})
		ticker.Start()
		if c.OnTicker != nil {
			c.OnTicker(ticker)
		}
	}

	start := c.Now()
	for d := 0; d < c.Drivers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			share := workload.KVPShare(c.TotalKVPs, c.Drivers, d+1)
			inst, err := workload.NewInstance(workload.InstanceConfig{
				Substation: workload.SubstationName(d),
				Readings:   share,
				Threads:    c.ThreadsPerDriver,
				Seed:       c.Seed ^ (uint64(d)+1)*0x2545f4914f6cdd1d ^ salt*0x9e3779b97f4a7c15,
				Now:        c.Now,
				Registry:   c.Telemetry,
				Pushdown:   c.Pushdown,
				Analytics:  c.Analytics,
				Sequencer:  c.sequencer,
			})
			if err != nil {
				runs[d].err = err
				return
			}
			runCfg := ycsb.RunConfig{
				Threads:  c.ThreadsPerDriver,
				Registry: c.Telemetry,
				// The system-wide target splits evenly across instances; each
				// instance further splits it across threads into a fixed
				// intended-start schedule.
				TargetOpsPerSec: c.TargetRate / float64(c.Drivers),
			}
			if d == 0 && c.StatusInterval > 0 {
				runCfg.StatusInterval = c.StatusInterval
				runCfg.Status = func(st ycsb.Status) {
					c.Logf("driver 0 status: %s", st)
				}
			}
			rep, err := ycsb.Run(runCfg, c.SUT.Binding(d), inst)
			if err != nil {
				runs[d].err = err
				return
			}
			runs[d].outcome = DriverOutcome{
				Substation:     inst.Substation(),
				Share:          share,
				Elapsed:        rep.Elapsed(),
				Stats:          inst.Stats(),
				InsertLatency:  rep.Latencies[ycsb.OpInsert],
				QueryLatency:   rep.Latencies[ycsb.OpQuery],
				IntendedInsert: rep.Intended[ycsb.OpInsert],
				IntendedQuery:  rep.Intended[ycsb.OpQuery],
			}
		}(d)
	}
	wg.Wait()
	end := c.Now()
	// Writes acknowledge at quorum; let the SUT's stragglers converge before
	// the execution's counters and row counts are read, so per-member ack
	// accounting is deterministic. The drain is outside the timed window —
	// catch-up work is exactly what the quorum pipeline moved off the
	// critical path.
	if q, ok := c.SUT.(Quiescer); ok {
		if err := q.Quiesce(); err != nil {
			return Execution{Start: start, End: end}, fmt.Errorf("driver: quiesce: %w", err)
		}
	}

	exec := Execution{Start: start, End: end}
	if ticker != nil {
		exec.Series = ticker.Stop()
	}
	var inserts, queries, iInserts, iQueries []histogram.Snapshot
	for d, r := range runs {
		if r.err != nil {
			return exec, fmt.Errorf("driver instance %d: %w", d, r.err)
		}
		exec.Drivers = append(exec.Drivers, r.outcome)
		exec.KVPs += r.outcome.Stats.Inserted
		inserts = append(inserts, r.outcome.InsertLatency)
		queries = append(queries, r.outcome.QueryLatency)
		iInserts = append(iInserts, r.outcome.IntendedInsert)
		iQueries = append(iQueries, r.outcome.IntendedQuery)
	}
	exec.InsertLatency = histogram.MergeSnapshots(inserts...)
	exec.QueryLatency = histogram.MergeSnapshots(queries...)
	exec.IntendedInsert = histogram.MergeSnapshots(iInserts...)
	exec.IntendedQuery = histogram.MergeSnapshots(iQueries...)
	return exec, nil
}
