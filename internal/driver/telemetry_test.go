package driver

import (
	"strings"
	"testing"
	"time"

	"tpcxiot/internal/hbase"
	"tpcxiot/internal/lsm"
	"tpcxiot/internal/telemetry"
	"tpcxiot/internal/wal"
)

// TestTelemetryEndToEnd runs a benchmark with a shared registry wired
// through the cluster and the driver, and verifies every layer reported:
// engine counters, put-path stage spans, query timers, op histograms, a
// per-interval time series, and the rendered report sections.
func TestTelemetryEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	cluster, err := hbase.NewCluster(hbase.Config{
		Nodes:    3,
		DataDir:  t.TempDir(),
		Store:    lsm.Options{WALSync: wal.SyncNever, MemtableSize: 64 << 10},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	sut, err := NewClusterSUT(cluster, 1, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	var logLines []string
	res, err := Run(Config{
		Drivers:            1,
		TotalKVPs:          6_000,
		ThreadsPerDriver:   2,
		Seed:               7,
		SUT:                sut,
		Iterations:         1,
		MinWorkloadSeconds: 0.001,
		Telemetry:          reg,
		TelemetryInterval:  20 * time.Millisecond,
		Logf: func(format string, args ...any) {
			logLines = append(logLines, format)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The measured run carries a time series with real per-interval ops.
	series := res.Iterations[0].Measured.Series
	if series == nil || len(series.Points) == 0 {
		t.Fatal("measured run has no telemetry series")
	}
	var ops int64
	for _, p := range series.Points {
		ops += p.TotalOps()
	}
	if ops == 0 {
		t.Fatal("series recorded no operations")
	}

	// The registry summary holds the cumulative view across warmup and
	// measured runs.
	sum := res.Telemetry
	if sum == nil {
		t.Fatal("result has no telemetry summary")
	}
	// The iteration ran warmup + measured, 6000 readings each.
	if got := sum.Counter("wal.appends"); got == 0 {
		t.Fatalf("wal.appends = %d, want > 0", got)
	}
	if got := sum.Counter("replication.acks"); got < 3*2*6_000 {
		t.Fatalf("replication.acks = %d, want >= %d (3-way, warmup+measured)", got, 3*2*6_000)
	}
	if got := sum.Counter("hbase.buffer_flushes"); got == 0 {
		t.Fatal("no client buffer flushes counted")
	}
	if got := sum.Counter("lsm.flushes"); got == 0 {
		t.Fatal("no memtable flushes counted (64 KiB memtables must have rotated)")
	}
	// Per-stage put-path spans, in pipeline order.
	for _, stage := range []string{"put.client_flush", "put.wal_append", "put.memstore", "put.region_flush"} {
		snap, ok := sum.Histogram(stage)
		if !ok || snap.Count() == 0 {
			t.Fatalf("stage %s not measured", stage)
		}
	}
	// Op and query histograms from the ycsb/workload layers.
	if snap, ok := sum.Histogram("op.INSERT"); !ok || snap.Count() != 2*6_000 {
		t.Fatalf("op.INSERT count wrong: %+v ok=%v", snap.Count(), ok)
	}
	var queryTimed int64
	for _, h := range sum.Histograms {
		if strings.HasPrefix(h.Name, "query.") {
			queryTimed += h.Snap.Count()
		}
	}
	if queryTimed == 0 {
		t.Fatal("no dashboard queries timed")
	}

	// Report renders the telemetry sections and streams points via Logf.
	report := res.Report()
	for _, want := range []string{"Telemetry", "put.wal_append", "counters:", "time series"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	var sawPoint bool
	for _, l := range logLines {
		if strings.Contains(l, "telemetry") {
			sawPoint = true
		}
	}
	if !sawPoint {
		t.Fatal("no telemetry points streamed through Logf")
	}
}

// TestTelemetryDisabledIsInert verifies a nil registry leaves the run
// untouched: no series, no summary, no report section.
func TestTelemetryDisabledIsInert(t *testing.T) {
	cluster, err := hbase.NewCluster(hbase.Config{
		Nodes:   3,
		DataDir: t.TempDir(),
		Store:   lsm.Options{WALSync: wal.SyncNever},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	sut, err := NewClusterSUT(cluster, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Drivers: 1, TotalKVPs: 500, ThreadsPerDriver: 1, SUT: sut,
		Iterations: 1, MinWorkloadSeconds: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry != nil {
		t.Fatal("telemetry summary present despite nil registry")
	}
	if res.Iterations[0].Measured.Series != nil {
		t.Fatal("series present despite nil registry")
	}
	if strings.Contains(res.Report(), "Telemetry\n") {
		t.Fatal("report renders telemetry section for an uninstrumented run")
	}
}
