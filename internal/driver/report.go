package driver

import (
	"fmt"
	"strings"
	"time"

	"tpcxiot/internal/telemetry"
)

// Report renders the run report printed after the second iteration's data
// check (Figure 6): every number needed to audit and publish the result.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TPCx-IoT Benchmark Report\n")
	fmt.Fprintf(&b, "=========================\n")
	fmt.Fprintf(&b, "SUT:                %s\n", r.SUTDescription)
	fmt.Fprintf(&b, "Driver instances:   %d (simulated power substations)\n", r.Drivers)
	fmt.Fprintf(&b, "Total kvps:         %d\n", r.TotalKVPs)
	fmt.Fprintf(&b, "Compliant run:      %v\n\n", r.Compliant)

	fmt.Fprintf(&b, "Prerequisite checks\n-------------------\n%s\n", r.Prerequisites)

	for i, it := range r.Iterations {
		fmt.Fprintf(&b, "Iteration %d\n-----------\n", i+1)
		fmt.Fprintf(&b, "  warmup:   %10.1fs  (not timed toward the metric)\n",
			it.Warmup.Elapsed().Seconds())
		fmt.Fprintf(&b, "  measured: %10.1fs  %12.1f IoTps  %d kvps\n",
			it.Measured.Elapsed().Seconds(), it.Measured.IoTps(), it.Measured.KVPs)
		minT, maxT, avgT := it.Measured.IngestSkew()
		fmt.Fprintf(&b, "  per-substation ingest time: min %.1fs  max %.1fs  avg %.1fs\n",
			minT.Seconds(), maxT.Seconds(), avgT.Seconds())
		if ins := it.Measured.InsertLatency; ins.Count() > 0 {
			fmt.Fprintf(&b, "  insert latency (ns): %s\n", ins)
		}
		if q := it.Measured.QueryLatency; q.Count() > 0 {
			fmt.Fprintf(&b, "  query latency (ns):  %s\n", q)
			fmt.Fprintf(&b, "  queries: %d  avg %.1fms  min %.1fms  max %.1fms  p95 %.1fms  cv %.2f\n",
				q.Count(), ms(q.Mean()), msI(q.Min()), msI(q.Max()),
				msI(q.Percentile(95)), q.CV())
			fmt.Fprintf(&b, "  readings aggregated per query: %.1f\n", it.Measured.AvgRowsPerQuery())
		}
		writeSeries(&b, it.Measured.Series)
		fmt.Fprintf(&b, "%s\n", it.Checks)
	}

	writeTelemetry(&b, r.Telemetry)

	fmt.Fprintf(&b, "Primary metrics\n---------------\n")
	if iotps, err := r.Metric.IoTps(); err == nil {
		fmt.Fprintf(&b, "  Performance:        %.1f IoTps\n", iotps)
	}
	if r.Metric.OwnershipCost > 0 {
		if pp, err := r.Metric.PricePerformance(); err == nil {
			fmt.Fprintf(&b, "  Price-performance:  %.2f $/IoTps\n", pp)
		}
	}
	if !r.Metric.Availability.IsZero() {
		fmt.Fprintf(&b, "  Availability:       %s\n", r.Metric.Availability.Format(time.DateOnly))
	}
	fmt.Fprintf(&b, "  Result valid:       %v\n", r.Valid())
	return b.String()
}

func ms(ns float64) float64 { return ns / 1e6 }
func msI(ns int64) float64  { return float64(ns) / 1e6 }

// seriesPrintCap bounds the per-interval lines rendered inline; longer
// series are summarised (the full series goes to the CSV export).
const seriesPrintCap = 20

// writeSeries renders the measured run's telemetry time series: every point
// for short series, a summary for long ones.
func writeSeries(b *strings.Builder, s *telemetry.Series) {
	if s == nil || len(s.Points) == 0 {
		return
	}
	fmt.Fprintf(b, "  time series (%s intervals):\n", s.Interval)
	if len(s.Points) <= seriesPrintCap {
		for _, p := range s.Points {
			fmt.Fprintf(b, "    %s\n", p)
		}
		return
	}
	peak, trough := s.PeakRate()
	fmt.Fprintf(b, "    %d intervals; throughput peak %.1f ops/s, trough %.1f ops/s (full series in CSV export)\n",
		len(s.Points), peak, trough)
}

// putStages is the ingest pipeline in data-flow order: client buffer flush,
// WAL append, memstore insert, region flush.
var putStages = []string{"put.client_flush", "put.wal_append", "put.memstore", "put.region_flush"}

// writeTelemetry renders the run-wide registry summary: the put-path stage
// latency breakdown, query template latencies, and engine counters.
func writeTelemetry(b *strings.Builder, t *telemetry.Summary) {
	if t == nil {
		return
	}
	fmt.Fprintf(b, "Telemetry\n---------\n")
	fmt.Fprintf(b, "  put path (ns per stage, pipeline order):\n")
	for _, stage := range putStages {
		snap, ok := t.Histogram(stage)
		if !ok {
			continue
		}
		fmt.Fprintf(b, "    %-18s %s\n", stage, snap)
	}
	if snap, ok := t.Histogram("scan.next"); ok {
		fmt.Fprintf(b, "  scan path (ns per chunk fetch):\n")
		fmt.Fprintf(b, "    %-18s %s\n", "scan.next", snap)
	}
	for _, h := range t.Histograms {
		if strings.HasPrefix(h.Name, "query.") {
			fmt.Fprintf(b, "  %-20s %s\n", h.Name, h.Snap)
		}
	}
	if len(t.Counters) > 0 {
		fmt.Fprintf(b, "  counters:\n")
		for _, c := range t.Counters {
			fmt.Fprintf(b, "    %-24s %d\n", c.Name, c.Value)
		}
	}
	if batches := counterValue(t, "lsm.batch_applies"); batches > 0 {
		fmt.Fprintf(b, "  write batching: %.1f writes/batch, %.2f fsyncs/batch\n",
			float64(counterValue(t, "wal.appends"))/float64(batches),
			float64(counterValue(t, "wal.syncs"))/float64(batches))
	}
	if chunks := counterValue(t, "hbase.scan_chunks"); chunks > 0 {
		fmt.Fprintf(b, "  scan streaming: %.1f rows/chunk over %d scanners (%d lease expiries)\n",
			float64(counterValue(t, "hbase.scan_rows_streamed"))/float64(chunks),
			counterValue(t, "hbase.scanner_opens"),
			counterValue(t, "hbase.scanner_lease_expiries"))
	}
	fmt.Fprintf(b, "\n")
}

// counterValue looks up one counter in the summary (0 when absent).
func counterValue(t *telemetry.Summary, name string) int64 {
	for _, c := range t.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}
