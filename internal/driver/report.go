package driver

import (
	"fmt"
	"strings"
	"time"
)

// Report renders the run report printed after the second iteration's data
// check (Figure 6): every number needed to audit and publish the result.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TPCx-IoT Benchmark Report\n")
	fmt.Fprintf(&b, "=========================\n")
	fmt.Fprintf(&b, "SUT:                %s\n", r.SUTDescription)
	fmt.Fprintf(&b, "Driver instances:   %d (simulated power substations)\n", r.Drivers)
	fmt.Fprintf(&b, "Total kvps:         %d\n", r.TotalKVPs)
	fmt.Fprintf(&b, "Compliant run:      %v\n\n", r.Compliant)

	fmt.Fprintf(&b, "Prerequisite checks\n-------------------\n%s\n", r.Prerequisites)

	for i, it := range r.Iterations {
		fmt.Fprintf(&b, "Iteration %d\n-----------\n", i+1)
		fmt.Fprintf(&b, "  warmup:   %10.1fs  (not timed toward the metric)\n",
			it.Warmup.Elapsed().Seconds())
		fmt.Fprintf(&b, "  measured: %10.1fs  %12.1f IoTps  %d kvps\n",
			it.Measured.Elapsed().Seconds(), it.Measured.IoTps(), it.Measured.KVPs)
		minT, maxT, avgT := it.Measured.IngestSkew()
		fmt.Fprintf(&b, "  per-substation ingest time: min %.1fs  max %.1fs  avg %.1fs\n",
			minT.Seconds(), maxT.Seconds(), avgT.Seconds())
		if q := it.Measured.QueryLatency; q.Count() > 0 {
			fmt.Fprintf(&b, "  queries: %d  avg %.1fms  min %.1fms  max %.1fms  p95 %.1fms  cv %.2f\n",
				q.Count(), ms(q.Mean()), msI(q.Min()), msI(q.Max()),
				msI(q.Percentile(95)), q.CV())
			fmt.Fprintf(&b, "  readings aggregated per query: %.1f\n", it.Measured.AvgRowsPerQuery())
		}
		fmt.Fprintf(&b, "%s\n", it.Checks)
	}

	fmt.Fprintf(&b, "Primary metrics\n---------------\n")
	if iotps, err := r.Metric.IoTps(); err == nil {
		fmt.Fprintf(&b, "  Performance:        %.1f IoTps\n", iotps)
	}
	if r.Metric.OwnershipCost > 0 {
		if pp, err := r.Metric.PricePerformance(); err == nil {
			fmt.Fprintf(&b, "  Price-performance:  %.2f $/IoTps\n", pp)
		}
	}
	if !r.Metric.Availability.IsZero() {
		fmt.Fprintf(&b, "  Availability:       %s\n", r.Metric.Availability.Format(time.DateOnly))
	}
	fmt.Fprintf(&b, "  Result valid:       %v\n", r.Valid())
	return b.String()
}

func ms(ns float64) float64 { return ns / 1e6 }
func msI(ns int64) float64  { return float64(ns) / 1e6 }
