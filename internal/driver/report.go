package driver

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tpcxiot/internal/audit"
	"tpcxiot/internal/histogram"
	"tpcxiot/internal/kvp"
	"tpcxiot/internal/telemetry"
)

// aggWindowWireBytes approximates one per-window partial on the wire
// (series prefix + varint window start, count, and three float64 fields) for
// the report's bytes-saved estimate.
const aggWindowWireBytes = 64

// Report renders the run report printed after the second iteration's data
// check (Figure 6): every number needed to audit and publish the result.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TPCx-IoT Benchmark Report\n")
	fmt.Fprintf(&b, "=========================\n")
	fmt.Fprintf(&b, "SUT:                %s\n", r.SUTDescription)
	fmt.Fprintf(&b, "Driver instances:   %d (simulated power substations)\n", r.Drivers)
	fmt.Fprintf(&b, "Total kvps:         %d\n", r.TotalKVPs)
	fmt.Fprintf(&b, "Compliant run:      %v\n\n", r.Compliant)

	fmt.Fprintf(&b, "Prerequisite checks\n-------------------\n%s\n", r.Prerequisites)

	for i, it := range r.Iterations {
		fmt.Fprintf(&b, "Iteration %d\n-----------\n", i+1)
		fmt.Fprintf(&b, "  warmup:   %10.1fs  (not timed toward the metric)\n",
			it.Warmup.Elapsed().Seconds())
		fmt.Fprintf(&b, "  measured: %10.1fs  %12.1f IoTps  %d kvps\n",
			it.Measured.Elapsed().Seconds(), it.Measured.IoTps(), it.Measured.KVPs)
		minT, maxT, avgT := it.Measured.IngestSkew()
		fmt.Fprintf(&b, "  per-substation ingest time: min %.1fs  max %.1fs  avg %.1fs\n",
			minT.Seconds(), maxT.Seconds(), avgT.Seconds())
		if ins := it.Measured.InsertLatency; ins.Count() > 0 {
			fmt.Fprintf(&b, "  insert latency (ns): %s\n", ins)
			fmt.Fprintf(&b, "  insert tail: p99 %.2fms  p99.9 %.2fms\n",
				msI(ins.Percentile(99)), msI(ins.Percentile(99.9)))
			writeIntended(&b, "insert", ins, it.Measured.IntendedInsert)
		}
		if q := it.Measured.QueryLatency; q.Count() > 0 {
			fmt.Fprintf(&b, "  query latency (ns):  %s\n", q)
			fmt.Fprintf(&b, "  queries: %d  avg %.1fms  min %.1fms  max %.1fms  p95 %.1fms  cv %.2f\n",
				q.Count(), ms(q.Mean()), msI(q.Min()), msI(q.Max()),
				msI(q.Percentile(95)), q.CV())
			fmt.Fprintf(&b, "  query tail: p99 %.2fms  p99.9 %.2fms\n",
				msI(q.Percentile(99)), msI(q.Percentile(99.9)))
			writeIntended(&b, "query", q, it.Measured.IntendedQuery)
			fmt.Fprintf(&b, "  readings aggregated per query: %.1f\n", it.Measured.AvgRowsPerQuery())
		}
		writeSeries(&b, it.Measured.Series)
		writeAudit(&b, it.Verdict)
		fmt.Fprintf(&b, "%s\n", it.Checks)
	}

	writeTelemetry(&b, r.Telemetry)
	writeStorage(&b, r.Telemetry)
	writeRuntimeHealth(&b, r)
	writeSlowTraces(&b, r.SlowTraces)

	fmt.Fprintf(&b, "Primary metrics\n---------------\n")
	if iotps, err := r.Metric.IoTps(); err == nil {
		fmt.Fprintf(&b, "  Performance:        %.1f IoTps\n", iotps)
	}
	if r.Metric.OwnershipCost > 0 {
		if pp, err := r.Metric.PricePerformance(); err == nil {
			fmt.Fprintf(&b, "  Price-performance:  %.2f $/IoTps\n", pp)
		}
	}
	if !r.Metric.Availability.IsZero() {
		fmt.Fprintf(&b, "  Availability:       %s\n", r.Metric.Availability.Format(time.DateOnly))
	}
	fmt.Fprintf(&b, "  Result valid:       %v\n", r.Valid())
	return b.String()
}

func ms(ns float64) float64 { return ns / 1e6 }
func msI(ns int64) float64  { return float64(ns) / 1e6 }

// writeIntended renders the coordinated-omission-corrected tail next to the
// service-time tail, with the divergence ratio: how much latency the
// intended schedule absorbed that per-op service time never showed. Silent
// for open-loop runs (no intended distribution exists).
func writeIntended(b *strings.Builder, op string, service, intended histogram.Snapshot) {
	if intended.Count() == 0 {
		return
	}
	sp, ip := service.Percentile(99.9), intended.Percentile(99.9)
	fmt.Fprintf(b, "  %s intended (CO-corrected): p99 %.2fms  p99.9 %.2fms",
		op, msI(intended.Percentile(99)), msI(ip))
	if sp > 0 {
		fmt.Fprintf(b, "  (%.1fx service p99.9)", float64(ip)/float64(sp))
	}
	fmt.Fprintf(b, "\n")
}

// writeAudit renders the iteration's live run-validity verdict: one line
// per rule, then the interval-attribution table joining each violating
// interval to the telemetry signals active in it.
func writeAudit(b *strings.Builder, v audit.Verdict) {
	if len(v.Rules) == 0 {
		return
	}
	status := "VALID"
	if !v.Valid {
		status = "INVALID"
	}
	fmt.Fprintf(b, "  Audit\n  -----\n")
	pacing := "open-loop"
	if v.TargetRate > 0 {
		pacing = fmt.Sprintf("paced %.0f ops/s", v.TargetRate)
	}
	fmt.Fprintf(b, "  verdict: %s  (%s, %d complete intervals", status, pacing, v.Intervals)
	if v.MeanRate > 0 {
		fmt.Fprintf(b, ", mean %.1f ops/s", v.MeanRate)
	}
	fmt.Fprintf(b, ")\n")
	for _, r := range v.Rules {
		mark := "PASS"
		if !r.Passed {
			mark = "FAIL"
		}
		fmt.Fprintf(b, "    [%s] %-22s %s\n", mark, r.Rule, r.Detail)
	}
	viols := v.Violations()
	if len(viols) == 0 {
		return
	}
	fmt.Fprintf(b, "    interval attribution:\n")
	fmt.Fprintf(b, "      %-8s %9s %12s %22s  %s\n",
		"interval", "elapsed", "ops/s", "band", "co-occurring signals")
	for _, iv := range viols {
		signals := "-"
		if len(iv.Signals) > 0 {
			signals = strings.Join(iv.Signals, ", ")
		}
		fmt.Fprintf(b, "      %-8d %8.1fs %12.1f [%9.1f,%9.1f]  %s\n",
			iv.Interval, iv.ElapsedSeconds, iv.Observed, iv.Lo, iv.Hi, signals)
	}
}

// seriesPrintCap bounds the per-interval lines rendered inline; longer
// series are summarised (the full series goes to the CSV export).
const seriesPrintCap = 20

// writeSeries renders the measured run's telemetry time series: every point
// for short series, a summary for long ones.
func writeSeries(b *strings.Builder, s *telemetry.Series) {
	if s == nil || len(s.Points) == 0 {
		return
	}
	fmt.Fprintf(b, "  time series (%s intervals):\n", s.Interval)
	if len(s.Points) <= seriesPrintCap {
		for _, p := range s.Points {
			fmt.Fprintf(b, "    %s\n", p)
		}
		return
	}
	peak, trough := s.PeakRate()
	fmt.Fprintf(b, "    %d intervals; throughput peak %.1f ops/s, trough %.1f ops/s (full series in CSV export)\n",
		len(s.Points), peak, trough)
}

// putStages is the ingest pipeline in data-flow order: client buffer flush,
// WAL append, memstore insert, region flush.
var putStages = []string{"put.client_flush", "put.wal_append", "put.memstore", "put.region_flush"}

// writeTelemetry renders the run-wide registry summary: the put-path stage
// latency breakdown, query template latencies, and engine counters.
func writeTelemetry(b *strings.Builder, t *telemetry.Summary) {
	if t == nil {
		return
	}
	fmt.Fprintf(b, "Telemetry\n---------\n")
	fmt.Fprintf(b, "  put path (ns per stage, pipeline order):\n")
	for _, stage := range putStages {
		snap, ok := t.Histogram(stage)
		if !ok {
			continue
		}
		fmt.Fprintf(b, "    %-18s %s\n", stage, snap)
	}
	if snap, ok := t.Histogram("scan.next"); ok {
		fmt.Fprintf(b, "  scan path (ns per chunk fetch):\n")
		fmt.Fprintf(b, "    %-18s %s\n", "scan.next", snap)
	}
	for _, h := range t.Histograms {
		if strings.HasPrefix(h.Name, "query.") {
			fmt.Fprintf(b, "  %-20s %s\n", h.Name, h.Snap)
		}
	}
	if len(t.Counters) > 0 {
		fmt.Fprintf(b, "  counters:\n")
		for _, c := range t.Counters {
			fmt.Fprintf(b, "    %-24s %d\n", c.Name, c.Value)
		}
	}
	if batches := counterValue(t, "lsm.batch_applies"); batches > 0 {
		fmt.Fprintf(b, "  write batching: %.1f writes/batch, %.2f fsyncs/batch\n",
			float64(counterValue(t, "wal.appends"))/float64(batches),
			float64(counterValue(t, "wal.syncs"))/float64(batches))
	}
	// Quorum pipeline: the ack latency the caller saw (quorum) against what
	// a full synchronous fan-out would have charged (all members applied).
	qSnap, qOK := t.Histogram("replication.quorum_ack")
	fSnap, fOK := t.Histogram("replication.full_ack")
	if qOK && qSnap.Count() > 0 {
		fmt.Fprintf(b, "  replication ack (ns per batch):\n")
		fmt.Fprintf(b, "    %-18s %s\n", "quorum (acked)", qSnap)
		if fOK && fSnap.Count() > 0 {
			fmt.Fprintf(b, "    %-18s %s\n", "full fan-out", fSnap)
			if qp, fp := qSnap.Percentile(99.9), fSnap.Percentile(99.9); qp > 0 {
				fmt.Fprintf(b, "    p99.9 quorum %.2fms vs full %.2fms (%.1fx hidden behind the ack)\n",
					msI(qp), msI(fp), float64(fp)/float64(qp))
			}
		}
		if catchup := counterValue(t, "replication.catchup_batches"); catchup > 0 {
			fmt.Fprintf(b, "    %d member batch applies finished after the ack (catch-up)\n", catchup)
		}
	}
	if sheds := counterValue(t, "hbase.sheds"); sheds > 0 {
		fmt.Fprintf(b, "  admission control: %d sheds (%d queue-full), %d client retries, %d retry-exhausted, %d readings deferred\n",
			sheds,
			counterValue(t, "replication.catchup_full"),
			counterValue(t, "hbase.client_retries"),
			counterValue(t, "hbase.client_retry_exhausted"),
			counterValue(t, "workload.shed_ops"))
	}
	if chunks := counterValue(t, "hbase.scan_chunks"); chunks > 0 {
		fmt.Fprintf(b, "  scan streaming: %.1f rows/chunk over %d scanners (%d lease expiries)\n",
			float64(counterValue(t, "hbase.scan_rows_streamed"))/float64(chunks),
			counterValue(t, "hbase.scanner_opens"),
			counterValue(t, "hbase.scanner_lease_expiries"))
	}
	if aggQ := counterValue(t, "hbase.agg_queries"); aggQ > 0 {
		folded := counterValue(t, "hbase.agg_rows_folded")
		windows := counterValue(t, "hbase.agg_windows")
		fmt.Fprintf(b, "  aggregation pushdown: %d queries, %d rows folded server-side into %d windows\n",
			aggQ, folded, windows)
		// Every folded row would have crossed the client boundary as a full
		// kvp on the streamed path; a window partial is a few dozen bytes.
		saved := folded*kvp.PairSize - windows*aggWindowWireBytes
		if saved > 0 {
			fmt.Fprintf(b, "    est. client bytes saved: %s (%.1f rows reduced per query)\n",
				mib(saved), float64(folded)/float64(aggQ))
		}
	}
	if le := counterValue(t, "hbase.scanner_lease_expiries"); le > 0 {
		fmt.Fprintf(b, "  WARNING: %d scanner lease(s) expired mid-scan — queries may have\n"+
			"  stalled past the lease timeout; check the slow-trace section.\n", le)
	}
	writeRegionTable(b, t)
	fmt.Fprintf(b, "\n")
}

// regionColumns are the per-region engine counters tabulated in the report,
// in write-path order.
var regionColumns = []string{"lsm.batch_applies", "lsm.flushes", "lsm.write_stalls"}

// writeRegionTable renders the per-region breakdown parsed out of tagged
// counter names (lsm.batch_applies{region=...,server=...} and friends).
func writeRegionTable(b *strings.Builder, t *telemetry.Summary) {
	type row struct {
		server string
		vals   map[string]int64
	}
	rows := map[string]*row{}
	var names []string
	for _, c := range t.Counters {
		base, tags := telemetry.SplitTagged(c.Name)
		var region, server string
		for _, tag := range tags {
			switch tag.Key {
			case "region":
				region = tag.Value
			case "server":
				server = tag.Value
			}
		}
		if region == "" {
			continue
		}
		r, ok := rows[region]
		if !ok {
			r = &row{server: server, vals: map[string]int64{}}
			rows[region] = r
			names = append(names, region)
		}
		r.vals[base] += c.Value
	}
	if len(rows) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Fprintf(b, "  per-region engine activity:\n")
	fmt.Fprintf(b, "    %-16s %-6s %14s %10s %10s\n",
		"region", "server", "batch_applies", "flushes", "stalls")
	for _, name := range names {
		r := rows[name]
		fmt.Fprintf(b, "    %-16s %-6s %14d %10d %10d\n", name, r.server,
			r.vals[regionColumns[0]], r.vals[regionColumns[1]], r.vals[regionColumns[2]])
	}
}

// writeStorage renders the byte-level resource ledger: where every logical
// byte went (WAL, flush, compaction), the derived amplification factors, and
// the read-path efficiency counters (block cache, Bloom filters).
func writeStorage(b *strings.Builder, t *telemetry.Summary) {
	if t == nil {
		return
	}
	logical := counterValue(t, "lsm.logical_bytes")
	if logical == 0 {
		return
	}
	walB := counterValue(t, "wal.bytes")
	flushB := counterValue(t, "lsm.flush_bytes")
	compR := counterValue(t, "lsm.compact_read_bytes")
	compW := counterValue(t, "lsm.compact_write_bytes")

	fmt.Fprintf(b, "Storage\n-------\n")
	fmt.Fprintf(b, "  logical bytes written:   %s\n", mib(logical))
	fmt.Fprintf(b, "  WAL bytes:               %s\n", mib(walB))
	fmt.Fprintf(b, "  flush bytes:             %s\n", mib(flushB))
	fmt.Fprintf(b, "  compaction read/rewrite: %s / %s\n", mib(compR), mib(compW))
	fmt.Fprintf(b, "  write amplification:     %.3fx  ((WAL+flush+compact)/logical)\n",
		float64(walB+flushB+compW)/float64(logical))
	fmt.Fprintf(b, "  compaction debt:         %s  (tables: %d, %s on disk)\n",
		mib(gaugeValue(t, "lsm.compaction_debt_bytes")),
		gaugeValue(t, "lsm.tables"), mib(gaugeValue(t, "lsm.table_bytes")))
	if windows := gaugeValue(t, "lsm.windows"); windows > 0 {
		fmt.Fprintf(b, "  compaction windows:      %d  (%d tables in the hot window)\n",
			windows, gaugeValue(t, "lsm.hot_window_tables"))
	}
	if raw := counterValue(t, "lsm.compress_raw_bytes"); raw > 0 {
		stored := counterValue(t, "lsm.compress_stored_bytes")
		fmt.Fprintf(b, "  block compression:       %s raw -> %s stored (%.1f%%)\n",
			mib(raw), mib(stored), 100*float64(stored)/float64(raw))
	}

	if logicalRead := counterValue(t, "lsm.logical_read_bytes"); logicalRead > 0 {
		diskRead := gaugeValue(t, "lsm.disk_read_bytes")
		fmt.Fprintf(b, "  logical bytes read:      %s  (%s from disk, read amp %.3fx)\n",
			mib(logicalRead), mib(diskRead), float64(diskRead)/float64(logicalRead))
	}
	hits, misses := gaugeValue(t, "lsm.cache_hits"), gaugeValue(t, "lsm.cache_misses")
	if hits+misses > 0 {
		fmt.Fprintf(b, "  block cache:             %.1f%% hit rate (%d hits / %d misses)\n",
			100*float64(hits)/float64(hits+misses), hits, misses)
	}
	bHits := counterValue(t, "lsm.bloom_hits")
	bSkips := counterValue(t, "lsm.bloom_skips")
	bFP := counterValue(t, "lsm.bloom_false_positives")
	if probes := bHits + bSkips + bFP; probes > 0 {
		fmt.Fprintf(b, "  bloom filters:           %d tables skipped, %.2f%% false positives (%d/%d probes)\n",
			bSkips, 100*float64(bFP)/float64(probes), bFP, probes)
	}
	keyPrunes := counterValue(t, "lsm.prune_key_skips")
	timePrunes := counterValue(t, "lsm.prune_time_skips")
	if keyPrunes+timePrunes > 0 {
		fmt.Fprintf(b, "  file pruning:            %d tables skipped by key range, %d by time range\n",
			keyPrunes, timePrunes)
	}
	if saved := counterValue(t, "wal.group_commit_shared"); saved > 0 {
		fmt.Fprintf(b, "  fsyncs saved by group commit: %d (%d leader syncs)\n",
			saved, counterValue(t, "wal.group_commit_syncs"))
	}
	fmt.Fprintf(b, "\n")
}

// writeRuntimeHealth renders the health sampler's view of the run: peak and
// mean heap, RSS and goroutine count from the interval series, plus GC pause
// quantiles from the run-wide histogram. Silent when the sampler was off.
func writeRuntimeHealth(b *strings.Builder, r *Result) {
	t := r.Telemetry
	if t == nil {
		return
	}
	var s *telemetry.Series
	for i := len(r.Iterations) - 1; i >= 0; i-- {
		if ser := r.Iterations[i].Measured.Series; ser != nil && len(ser.Points) > 0 {
			s = ser
			break
		}
	}
	if s == nil {
		return
	}
	heapPeak, heapMean, ok := s.GaugeStats("runtime.heap_alloc_bytes")
	if !ok {
		return // sampler disabled for this run
	}
	fmt.Fprintf(b, "Runtime health\n--------------\n")
	fmt.Fprintf(b, "  heap alloc:  peak %s  mean %s\n", mib(heapPeak), mib(int64(heapMean)))
	if rssPeak, rssMean, ok := s.GaugeStats("runtime.rss_bytes"); ok && rssPeak > 0 {
		fmt.Fprintf(b, "  RSS:         peak %s  mean %s\n", mib(rssPeak), mib(int64(rssMean)))
	}
	if gPeak, gMean, ok := s.GaugeStats("runtime.goroutines"); ok {
		fmt.Fprintf(b, "  goroutines:  peak %d  mean %.0f\n", gPeak, gMean)
	}
	if gcs := gaugeValue(t, "runtime.gc_count"); gcs > 0 {
		fmt.Fprintf(b, "  GC cycles:   %d\n", gcs)
	}
	if pause, ok := t.Histogram("gc.pause"); ok && pause.Count() > 0 {
		fmt.Fprintf(b, "  GC pauses:   %d  p50 %.3fms  p95 %.3fms  max %.3fms\n",
			pause.Count(), msI(pause.Percentile(50)), msI(pause.Percentile(95)), msI(pause.Max()))
	}
	fmt.Fprintf(b, "\n")
}

// mib renders a byte count as mebibytes for the report.
func mib(n int64) string { return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20)) }

// slowTracePrintCap bounds the slow traces rendered in the report.
const slowTracePrintCap = 5

// writeSlowTraces renders the span trees of the slowest sampled operations:
// each trace as an indented tree, children ordered by start time, with
// per-span service attribution — where a slow put actually spent its time.
func writeSlowTraces(b *strings.Builder, traces []*telemetry.Trace) {
	if len(traces) == 0 {
		return
	}
	sorted := append([]*telemetry.Trace(nil), traces...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Duration() > sorted[j].Duration() })
	n := len(sorted)
	if n > slowTracePrintCap {
		n = slowTracePrintCap
	}
	fmt.Fprintf(b, "Slow traces\n-----------\n")
	fmt.Fprintf(b, "  %d operation(s) exceeded the slow-op threshold; slowest %d:\n", len(sorted), n)
	for _, tr := range sorted[:n] {
		root := tr.Root()
		if root.SpanID == 0 {
			continue
		}
		fmt.Fprintf(b, "  trace %016x (%.2fms):\n", root.TraceID, float64(tr.Duration())/float64(time.Millisecond))
		children := map[uint64][]telemetry.SpanRecord{}
		for _, s := range tr.Spans {
			if s.SpanID != root.SpanID {
				children[s.ParentID] = append(children[s.ParentID], s)
			}
		}
		var render func(s telemetry.SpanRecord, depth int)
		render = func(s telemetry.SpanRecord, depth int) {
			fmt.Fprintf(b, "    %s%-*s %10.3fms  [%s]\n",
				strings.Repeat("  ", depth), 28-2*depth, s.Name,
				float64(s.DurNs)/1e6, s.Service)
			kids := children[s.SpanID]
			sort.Slice(kids, func(i, j int) bool { return kids[i].StartNs < kids[j].StartNs })
			for _, k := range kids {
				render(k, depth+1)
			}
		}
		render(root, 0)
	}
	fmt.Fprintf(b, "\n")
}

// counterValue looks up one counter in the summary (0 when absent).
func counterValue(t *telemetry.Summary, name string) int64 {
	for _, c := range t.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// gaugeValue looks up one gauge in the summary (0 when absent).
func gaugeValue(t *telemetry.Summary, name string) int64 {
	for _, g := range t.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}
