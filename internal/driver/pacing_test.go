package driver

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tpcxiot/internal/audit"
	"tpcxiot/internal/hbase"
	"tpcxiot/internal/lsm"
	"tpcxiot/internal/replication"
	"tpcxiot/internal/telemetry"
	"tpcxiot/internal/wal"
)

// gatedStallApplier blocks a member's batch applies while the gate is up,
// modelling a transient stall (GC pause, disk hiccup) on that member. Applies
// entering during the stall wait for the gate to drop, then proceed.
type gatedStallApplier struct {
	inner replication.Applier
	gate  *atomic.Bool
}

func (g *gatedStallApplier) waitGate() {
	for g.gate.Load() {
		time.Sleep(2 * time.Millisecond)
	}
}

func (g *gatedStallApplier) Put(key, value []byte) error {
	g.waitGate()
	return g.inner.Put(key, value)
}

func (g *gatedStallApplier) Delete(key []byte) error {
	g.waitGate()
	return g.inner.Delete(key)
}

func (g *gatedStallApplier) ApplyBatch(writes []lsm.Write) error {
	g.waitGate()
	if ba, ok := g.inner.(replication.BatchApplier); ok {
		return ba.ApplyBatch(writes)
	}
	for i := range writes {
		var err error
		if writes[i].Delete {
			err = g.inner.Delete(writes[i].Key)
		} else {
			err = g.inner.Put(writes[i].Key, writes[i].Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// pacedRunConfig builds the shared driver config for the paced audit tests:
// one iteration, 2 drivers x 2 threads, 12000 kvps paced at 3000 ops/s
// system-wide (a ~4 s measured run), sampled on 500 ms intervals. The band is
// widened to ±30%: under the race detector a buffer flush can straddle an
// interval boundary and displace its ops into the next sample, and that
// boundary noise must not trip the clean control run — while the injected
// stall still collapses whole intervals to near zero, far outside any band.
func pacedRunConfig(sut SUT, reg *telemetry.Registry, onTicker func(*telemetry.Ticker)) Config {
	return Config{
		Drivers:            2,
		TotalKVPs:          12_000,
		ThreadsPerDriver:   2,
		Seed:               11,
		SUT:                sut,
		Iterations:         1,
		MinWorkloadSeconds: 0.001,
		TargetRate:         3000,
		AuditTolerance:     0.30,
		Telemetry:          reg,
		TelemetryInterval:  500 * time.Millisecond,
		HealthInterval:     -1,
		OnTicker:           onTicker,
	}
}

// TestPacedStallDivergenceAndAudit is the acceptance scenario: a paced run
// whose primary replica stalls mid-measured-run must (a) report intended
// p99.9 at least 5x the service p99.9 in the same report — the divergence
// coordinated-omission correction exists to expose — and (b) be flagged by
// the auditor with the offending intervals joined to a co-occurring
// admission-control signal.
func TestPacedStallDivergenceAndAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("live paced run")
	}
	reg := telemetry.NewRegistry()
	var stall atomic.Bool
	cluster, err := hbase.NewCluster(hbase.Config{
		Nodes:   3,
		DataDir: t.TempDir(),
		// Two handlers for four clients and a watermark of one: a stalled
		// primary blocks both handlers, the other clients' flushes queue
		// past the watermark, and the stall window sheds (the clients ride
		// it out with retries — nothing may be lost). Keeping a second
		// handler also lets the post-stall backlog drain in parallel, so
		// the slow *service* times stay confined to the flushes caught in
		// the stall itself.
		HandlerCount:   2,
		ShedWatermark:  1,
		RetryMax:       100_000,
		RetryBaseDelay: 200 * time.Microsecond,
		RetryMaxDelay:  5 * time.Millisecond,
		Store:          lsm.Options{WALSync: wal.SyncNever, MemtableSize: 16 << 20},
		Registry:       reg,
		// memberIdx 0 is the primary; quorum acks require it, so gating the
		// primary blocks client acks — unlike a secondary stall, which the
		// quorum pipeline absorbs off the critical path.
		MemberWrapper: func(region string, idx int, app replication.Applier) replication.Applier {
			if idx != 0 {
				return app
			}
			return &gatedStallApplier{inner: app, gate: &stall}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	sut, err := NewClusterSUT(cluster, 2, 512<<10)
	if err != nil {
		t.Fatal(err)
	}

	// The stall is armed against the measured run (the second execution):
	// 1.2 s in, the primary freezes for 800 ms.
	var executions atomic.Int32
	cfg := pacedRunConfig(sut, reg, func(*telemetry.Ticker) {
		if executions.Add(1) != 2 {
			return
		}
		go func() {
			time.Sleep(1200 * time.Millisecond)
			stall.Store(true)
			time.Sleep(800 * time.Millisecond)
			stall.Store(false)
		}()
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	it := res.Iterations[0]

	// (a) Intended vs service divergence, both in the same execution.
	service := it.Measured.InsertLatency
	intended := it.Measured.IntendedInsert
	if intended.Count() == 0 {
		t.Fatal("paced run recorded no intended latency")
	}
	sp, ip := service.Percentile(99.9), intended.Percentile(99.9)
	if sp <= 0 || float64(ip) < 5*float64(sp) {
		t.Fatalf("intended p99.9 %.2fms vs service p99.9 %.2fms: want >= 5x divergence",
			float64(ip)/1e6, float64(sp)/1e6)
	}

	// (b) The auditor flags the stall intervals and names a co-occurring
	// signal. No write may be lost to the sheds: data-check stays green.
	verdict := it.Verdict
	if verdict.Valid {
		t.Fatal("stalled run audited as valid")
	}
	rule, ok := verdict.Rule(audit.RuleSustainedThroughput)
	if !ok || rule.Passed {
		t.Fatalf("sustained-throughput must fail: %+v", rule)
	}
	if len(rule.Violations) == 0 {
		t.Fatal("no interval violations recorded")
	}
	var signalled bool
	for _, v := range rule.Violations {
		for _, s := range v.Signals {
			if strings.HasPrefix(s, "sheds=") || strings.HasPrefix(s, "client_retries=") ||
				strings.HasPrefix(s, "catchup_depth=") || strings.HasPrefix(s, "quorum_lag=") {
				signalled = true
			}
		}
	}
	if !signalled {
		t.Fatalf("no violation carries a co-occurring overload signal: %+v", rule.Violations)
	}
	if dc, _ := verdict.Rule(audit.RuleDataCheck); !dc.Passed {
		t.Fatalf("sheds lost writes: %+v", dc)
	}

	// The report renders both: the CO-corrected tail and the audit section
	// with the attribution table.
	report := res.Report()
	for _, want := range []string{"intended (CO-corrected)", "Audit", "INVALID", "interval attribution:"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

// TestPacedCleanRunAuditsValid is the control: the same paced run on an
// unperturbed cluster produces a clean verdict with no interval violations.
func TestPacedCleanRunAuditsValid(t *testing.T) {
	if testing.Short() {
		t.Skip("live paced run")
	}
	reg := telemetry.NewRegistry()
	cluster, err := hbase.NewCluster(hbase.Config{
		Nodes:    3,
		DataDir:  t.TempDir(),
		Store:    lsm.Options{WALSync: wal.SyncNever, MemtableSize: 16 << 20},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	sut, err := NewClusterSUT(cluster, 2, 512<<10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(pacedRunConfig(sut, reg, nil))
	if err != nil {
		t.Fatal(err)
	}
	verdict := res.Iterations[0].Verdict
	if !verdict.Valid {
		t.Fatalf("clean paced run audited invalid: %+v", verdict.Failed())
	}
	if n := len(verdict.Violations()); n != 0 {
		t.Fatalf("clean run has %d interval violations", n)
	}
	if verdict.Intervals < 2 {
		t.Fatalf("only %d complete intervals — sustained rule was vacuous", verdict.Intervals)
	}
	// Pacing held: the mean interval rate is near the target.
	if verdict.MeanRate < 2250 || verdict.MeanRate > 3750 {
		t.Fatalf("mean rate %.1f ops/s far from the 3000 target", verdict.MeanRate)
	}
	if !strings.Contains(res.Report(), "verdict: VALID") {
		t.Fatal("report missing clean audit verdict")
	}
}
