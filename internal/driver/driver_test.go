package driver

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tpcxiot/internal/audit"
	"tpcxiot/internal/workload"
	"tpcxiot/internal/ycsb"
)

// memSUT is a fast in-memory SUT for driver tests.
type memSUT struct {
	mu       sync.Mutex
	db       *ycsb.MemDB
	factor   int
	cleanups int
	failNext error
}

func newMemSUT() *memSUT {
	return &memSUT{db: ycsb.NewMemDB(), factor: 3}
}

func (s *memSUT) Binding(d int) ycsb.Binding {
	return func(int) (ycsb.DB, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.db, nil
	}
}

func (s *memSUT) ReplicationFactor() int { return s.factor }

func (s *memSUT) Cleanup() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cleanups++
	if s.failNext != nil {
		return s.failNext
	}
	s.db = ycsb.NewMemDB()
	return nil
}

func (s *memSUT) Describe() string { return "in-memory test SUT" }

// testClock is a concurrency-safe stepping clock.
type testClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func newTestClock(step time.Duration) *testClock {
	return &testClock{now: time.UnixMilli(1_700_000_000_000), step: step}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Drivers: 1}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("missing SUT: %v", err)
	}
	if _, err := Run(Config{SUT: newMemSUT()}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero drivers: %v", err)
	}
	if _, err := Run(Config{SUT: newMemSUT(), Drivers: 10, TotalKVPs: 5}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("kvps below drivers: %v", err)
	}
}

func TestPrerequisiteFailureAborts(t *testing.T) {
	sut := newMemSUT()
	sut.factor = 2
	res, err := Run(Config{SUT: sut, Drivers: 1, TotalKVPs: 100})
	if !errors.Is(err, ErrPrerequisite) {
		t.Fatalf("factor-2 SUT not rejected: %v", err)
	}
	if res == nil || res.Prerequisites.Passed() {
		t.Fatal("prerequisites should record the failure")
	}
	if len(res.Iterations) != 0 {
		t.Fatal("workload executed despite failed prerequisites")
	}
}

func TestFileCheckRunsWhenManifestGiven(t *testing.T) {
	dir := t.TempDir()
	kitFile := filepath.Join(dir, "kit.bin")
	os.WriteFile(kitFile, []byte("kit"), 0o644)
	manifest, err := audit.BuildManifest([]string{kitFile})
	if err != nil {
		t.Fatal(err)
	}
	// Tamper: run must abort on the file check.
	os.WriteFile(kitFile, []byte("hacked"), 0o644)
	_, err = Run(Config{SUT: newMemSUT(), Drivers: 1, TotalKVPs: 100, Manifest: manifest})
	if !errors.Is(err, ErrPrerequisite) {
		t.Fatalf("tampered kit not rejected: %v", err)
	}
}

func TestFullBenchmarkRun(t *testing.T) {
	sut := newMemSUT()
	clock := newTestClock(time.Millisecond)
	var logged []string
	res, err := Run(Config{
		SUT:                sut,
		Drivers:            2,
		TotalKVPs:          30_001, // odd so Equation 3's remainder path runs
		ThreadsPerDriver:   2,
		Seed:               7,
		MinWorkloadSeconds: 0.001, // scaled-down run
		Now:                clock.Now,
		Logf:               func(f string, a ...any) { logged = append(logged, f) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 2 {
		t.Fatalf("iterations = %d, want 2", len(res.Iterations))
	}
	if sut.cleanups != 1 {
		t.Fatalf("cleanups = %d, want exactly 1 (between iterations)", sut.cleanups)
	}
	for i, it := range res.Iterations {
		if it.Measured.KVPs != 30_001 {
			t.Fatalf("iteration %d ingested %d kvps", i, it.Measured.KVPs)
		}
		if it.Measured.Elapsed() <= 0 {
			t.Fatalf("iteration %d has non-positive elapsed", i)
		}
		// Both drivers reported.
		if len(it.Measured.Drivers) != 2 {
			t.Fatalf("iteration %d has %d driver outcomes", i, len(it.Measured.Drivers))
		}
		shares := it.Measured.Drivers[0].Share + it.Measured.Drivers[1].Share
		if shares != 30_001 {
			t.Fatalf("shares sum to %d", shares)
		}
		// Data check must pass.
		for _, c := range it.Checks {
			if c.Name == "data-check" && !c.Passed {
				t.Fatalf("data check failed: %s", c.Detail)
			}
		}
	}
	if res.Compliant {
		t.Fatal("scaled-down run marked compliant")
	}
	if res.IoTps() <= 0 {
		t.Fatal("zero reported IoTps")
	}
	if len(res.Metric.Runs) != 2 {
		t.Fatalf("metric runs = %d", len(res.Metric.Runs))
	}
	if len(logged) == 0 {
		t.Fatal("no progress logged")
	}

	rep := res.Report()
	for _, want := range []string{"TPCx-IoT Benchmark Report", "Iteration 1", "Iteration 2",
		"data-check", "per-sensor-ingest-rate", "repeatability", "IoTps"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestCleanupFailureSurfaced(t *testing.T) {
	sut := newMemSUT()
	sut.failNext = errors.New("cleanup exploded")
	clock := newTestClock(time.Millisecond)
	_, err := Run(Config{
		SUT: sut, Drivers: 1, TotalKVPs: 2_000,
		ThreadsPerDriver: 1, MinWorkloadSeconds: 0.001, Now: clock.Now,
	})
	if err == nil || !strings.Contains(err.Error(), "cleanup") {
		t.Fatalf("cleanup failure not surfaced: %v", err)
	}
}

func TestSingleIterationSkipsCleanupAndRepeatability(t *testing.T) {
	sut := newMemSUT()
	clock := newTestClock(time.Millisecond)
	res, err := Run(Config{
		SUT: sut, Drivers: 1, TotalKVPs: 2_000, Iterations: 1,
		ThreadsPerDriver: 1, MinWorkloadSeconds: 0.001, Now: clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sut.cleanups != 0 {
		t.Fatal("cleanup ran for a single iteration")
	}
	for _, c := range res.Checks() {
		if c.Name == "repeatability" {
			t.Fatal("repeatability check present with one iteration")
		}
	}
}

func TestExecutionAggregates(t *testing.T) {
	sut := newMemSUT()
	clock := newTestClock(time.Millisecond)
	exec, err := ExecuteWorkload(Config{
		SUT: sut, Drivers: 3, TotalKVPs: 12_000,
		ThreadsPerDriver: 2, MinWorkloadSeconds: 0.001, Now: clock.Now, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if exec.KVPs != 12_000 {
		t.Fatalf("execution ingested %d", exec.KVPs)
	}
	if exec.InsertLatency.Count() != 12_000 {
		t.Fatalf("insert latency count %d", exec.InsertLatency.Count())
	}
	minT, maxT, avgT := exec.IngestSkew()
	if minT <= 0 || maxT < minT || avgT < minT || avgT > maxT {
		t.Fatalf("skew stats inconsistent: min %v max %v avg %v", minT, maxT, avgT)
	}
	if exec.IoTps() <= 0 {
		t.Fatal("non-positive execution IoTps")
	}
	// 3 drivers x 4000 readings, threads of 2000 => queries fired.
	if exec.QueryLatency.Count() == 0 {
		t.Fatal("no queries measured")
	}
	if exec.AvgRowsPerQuery() < 0 {
		t.Fatal("negative rows per query")
	}
}

func TestExecutionSubstationsDistinct(t *testing.T) {
	sut := newMemSUT()
	clock := newTestClock(time.Millisecond)
	exec, err := ExecuteWorkload(Config{
		SUT: sut, Drivers: 4, TotalKVPs: 4_000,
		ThreadsPerDriver: 1, MinWorkloadSeconds: 0.001, Now: clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, d := range exec.Drivers {
		if seen[d.Substation] {
			t.Fatalf("duplicate substation %s", d.Substation)
		}
		seen[d.Substation] = true
		if d.Substation != workload.SubstationName(len(seen)-1) && !seen[workload.SubstationName(len(seen)-1)] {
			t.Fatalf("unexpected substation naming: %v", d.Substation)
		}
	}
}
