package driver

import (
	"fmt"

	"tpcxiot/internal/hbase"
	"tpcxiot/internal/workload"
	"tpcxiot/internal/ycsb"
)

// ClusterSUT drives the live in-process mini-HBase cluster as the System
// Under Test. The benchmark table is pre-split so every simulated substation
// owns its own region — the standard deployment practice for TPCx-IoT runs
// against HBase.
type ClusterSUT struct {
	cluster     *hbase.Cluster
	table       string
	splits      [][]byte
	writeBuffer int64
	useTCP      bool
}

// NewClusterSUT creates the benchmark table for `drivers` substations and
// returns the SUT. writeBufferBytes configures each client's write buffer
// (hbase.client.write.buffer).
func NewClusterSUT(cl *hbase.Cluster, drivers int, writeBufferBytes int64) (*ClusterSUT, error) {
	if drivers <= 0 {
		return nil, fmt.Errorf("driver: non-positive driver count %d", drivers)
	}
	s := &ClusterSUT{
		cluster:     cl,
		table:       "iot",
		splits:      workload.SplitKeys(workload.SubstationNames(drivers)),
		writeBuffer: writeBufferBytes,
	}
	if _, err := cl.CreateTable(s.table, s.splits); err != nil {
		return nil, err
	}
	return s, nil
}

// UseTCP switches the SUT's clients to the cluster's loopback TCP wire
// protocol, starting the listeners if needed: the benchmark then exercises
// the full client-to-region-server network path.
func (s *ClusterSUT) UseTCP() error {
	if err := s.cluster.ServeTCP(); err != nil {
		return err
	}
	s.useTCP = true
	return nil
}

// Binding implements SUT: one buffered client per worker thread.
func (s *ClusterSUT) Binding(d int) ycsb.Binding {
	if s.useTCP {
		return workload.ClusterBindingTCP(s.cluster, s.table, s.writeBuffer)
	}
	return workload.ClusterBinding(s.cluster, s.table, s.writeBuffer)
}

// ReplicationFactor implements SUT.
func (s *ClusterSUT) ReplicationFactor() int { return s.cluster.ReplicationFactor() }

// Quiesce implements Quiescer: it drains every region's replication
// catch-up queues so stragglers converge before counters are read.
func (s *ClusterSUT) Quiesce() error { return s.cluster.Quiesce() }

// Cleanup implements SUT: drop the table (purging all ingested data and
// temporary files) and recreate it empty, the system cleanup of Figure 6.
func (s *ClusterSUT) Cleanup() error {
	if err := s.cluster.DropTable(s.table); err != nil {
		return err
	}
	_, err := s.cluster.CreateTable(s.table, s.splits)
	return err
}

// CountRows implements RowCounter: it scans the benchmark table and counts
// stored readings. Intended for laptop-scale verification runs; at paper
// scale the scan itself would dwarf the benchmark.
func (s *ClusterSUT) CountRows() (int64, error) {
	client, err := s.cluster.NewClient(s.table, 0)
	if err != nil {
		return 0, err
	}
	defer client.Close()
	rows, err := client.Scan(nil, nil, 0)
	if err != nil {
		return 0, err
	}
	return int64(len(rows)), nil
}

// Describe implements SUT.
func (s *ClusterSUT) Describe() string {
	transport := "in-process"
	if s.useTCP {
		transport = "loopback TCP"
	}
	return fmt.Sprintf("mini-HBase cluster (%s): %d region servers, %d-way replication, table %q with %d regions",
		transport, s.cluster.NodeCount(), s.cluster.ReplicationFactor(), s.table, len(s.splits)+1)
}
