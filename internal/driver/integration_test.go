package driver

import (
	"testing"

	"tpcxiot/internal/hbase"
	"tpcxiot/internal/kvp"
	"tpcxiot/internal/lsm"
	"tpcxiot/internal/wal"
	"tpcxiot/internal/workload"
)

// newLiveCluster builds a real in-process cluster for integration tests.
func newLiveCluster(t *testing.T, nodes int) *hbase.Cluster {
	t.Helper()
	cl, err := hbase.NewCluster(hbase.Config{
		Nodes:   nodes,
		DataDir: t.TempDir(),
		Store:   lsm.Options{WALSync: wal.SyncNever, MemtableSize: 16 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestLiveBenchmarkEndToEnd runs the complete two-iteration benchmark
// against the real storage engine: WAL, memtables, replication, scans.
func TestLiveBenchmarkEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live end-to-end run")
	}
	cluster := newLiveCluster(t, 3)
	const drivers = 2
	const kvps = 8_000

	sut, err := NewClusterSUT(cluster, drivers, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Drivers:            drivers,
		TotalKVPs:          kvps,
		ThreadsPerDriver:   2,
		Seed:               3,
		SUT:                sut,
		MinWorkloadSeconds: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Iterations) != 2 {
		t.Fatalf("iterations = %d", len(res.Iterations))
	}
	for i, it := range res.Iterations {
		if it.Measured.KVPs != kvps {
			t.Fatalf("iteration %d ingested %d kvps", i, it.Measured.KVPs)
		}
	}
	if res.IoTps() <= 0 {
		t.Fatal("no throughput")
	}

	// The data of the second iteration must actually be in the store. Per
	// Figure 6 the cleanup runs only BETWEEN iterations, so after the run
	// the store holds iteration two's warmup AND measured data.
	client, err := cluster.NewClient("iot", 0)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := client.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*kvps {
		t.Fatalf("store holds %d rows after the final iteration, want %d (warmup + measured)", len(rows), 2*kvps)
	}
	substations := map[string]int{}
	for _, row := range rows {
		k, err := kvp.DecodeKey(row.Key)
		if err != nil {
			t.Fatalf("stored key undecodable: %v", err)
		}
		v, err := kvp.DecodeValue(row.Value)
		if err != nil {
			t.Fatalf("stored value undecodable: %v", err)
		}
		if err := (kvp.Pair{Key: k, Value: v}).Validate(); err != nil {
			t.Fatalf("stored pair violates the spec: %v", err)
		}
		substations[k.Substation]++
	}
	if len(substations) != drivers {
		t.Fatalf("data from %d substations, want %d", len(substations), drivers)
	}
	// Equation 3: first driver floor(K/P), last takes the remainder —
	// doubled because warmup and measured data coexist.
	for d := 0; d < drivers; d++ {
		want := 2 * workload.KVPShare(kvps, drivers, d+1)
		if got := substations[workload.SubstationName(d)]; int64(got) != want {
			t.Fatalf("substation %d stored %d readings, want %d", d, got, want)
		}
	}
}

// TestLiveCleanupBetweenIterations verifies the system cleanup purges all
// data: after iteration one's cleanup, the store must start empty, and the
// data check of iteration two must still pass (no leftovers double-count).
func TestLiveCleanupBetweenIterations(t *testing.T) {
	cluster := newLiveCluster(t, 3)
	sut, err := NewClusterSUT(cluster, 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Ingest, then cleanup, then check emptiness directly.
	if _, err := ExecuteWorkload(Config{
		Drivers: 1, TotalKVPs: 500, ThreadsPerDriver: 1,
		SUT: sut, MinWorkloadSeconds: 0.001,
	}); err != nil {
		t.Fatal(err)
	}
	client, _ := cluster.NewClient("iot", 0)
	rows, err := client.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 500 {
		t.Fatalf("pre-cleanup rows = %d", len(rows))
	}
	if err := sut.Cleanup(); err != nil {
		t.Fatal(err)
	}
	client2, _ := cluster.NewClient("iot", 0)
	rows, err = client2.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("cleanup left %d rows behind", len(rows))
	}
}

// TestLiveQueriesSeeIngestedData verifies the query path reads real data
// concurrently written by the ingest path.
func TestLiveQueriesSeeIngestedData(t *testing.T) {
	cluster := newLiveCluster(t, 3)
	sut, err := NewClusterSUT(cluster, 1, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := ExecuteWorkload(Config{
		Drivers: 1, TotalKVPs: 6_000, ThreadsPerDriver: 1,
		SUT: sut, MinWorkloadSeconds: 0.001, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 6000 readings on one thread => queries at 2000, 4000, 6000.
	if exec.QueryLatency.Count() != 3 {
		t.Fatalf("queries = %d, want 3", exec.QueryLatency.Count())
	}
	// The recent 5s interval must have aggregated real rows: the run takes
	// well under 5 seconds, so the interval covers part of the ingest.
	if exec.AvgRowsPerQuery() <= 0 {
		t.Fatal("queries aggregated no rows despite live ingest")
	}
}

// TestClusterSUTDescribe covers the descriptive plumbing.
func TestClusterSUTDescribe(t *testing.T) {
	cluster := newLiveCluster(t, 4)
	sut, err := NewClusterSUT(cluster, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sut.ReplicationFactor() != 3 {
		t.Fatalf("factor = %d", sut.ReplicationFactor())
	}
	desc := sut.Describe()
	if desc == "" {
		t.Fatal("empty description")
	}
	if _, err := NewClusterSUT(cluster, 0, 0); err == nil {
		t.Fatal("zero drivers accepted")
	}
}

// TestLiveBenchmarkOverTCP runs the benchmark through the cluster's TCP
// wire protocol: real sockets between every worker thread and the region
// servers.
func TestLiveBenchmarkOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP run")
	}
	cluster := newLiveCluster(t, 3)
	sut, err := NewClusterSUT(cluster, 2, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if err := sut.UseTCP(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Drivers:            2,
		TotalKVPs:          4_000,
		ThreadsPerDriver:   2,
		SUT:                sut,
		Iterations:         1,
		MinWorkloadSeconds: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations[0].Measured.KVPs != 4_000 {
		t.Fatalf("TCP run ingested %d kvps", res.Iterations[0].Measured.KVPs)
	}
	if res.IoTps() <= 0 {
		t.Fatal("no TCP throughput")
	}
	if got := sut.Describe(); got == "" || !containsTCP(got) {
		t.Fatalf("description does not mention TCP: %q", got)
	}
	// Data actually landed.
	client, _ := cluster.NewTCPClient("iot", 0)
	defer client.Close()
	rows, err := client.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8_000 { // warmup + measured
		t.Fatalf("store holds %d rows", len(rows))
	}
}

func containsTCP(s string) bool {
	for i := 0; i+3 <= len(s); i++ {
		if s[i:i+3] == "TCP" {
			return true
		}
	}
	return false
}
