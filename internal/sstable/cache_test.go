package sstable

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

func TestCacheHitAvoidsReparse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	buildTable(t, path, WriterOptions{BlockSize: 256}, seqKVs(500))
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Two reads of the same key must hit the same cached block pointer.
	if _, err := r.Get([]byte("key-000010")); err != nil {
		t.Fatal(err)
	}
	before := r.cache.Len()
	if _, err := r.Get([]byte("key-000010")); err != nil {
		t.Fatal(err)
	}
	if r.cache.Len() != before {
		t.Fatalf("repeat read grew the cache: %d -> %d", before, r.cache.Len())
	}
	if r.cache.UsedBytes() <= 0 {
		t.Fatal("cache reports zero occupancy after reads")
	}
}

func TestCacheEvictsAtCapacity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	buildTable(t, path, WriterOptions{BlockSize: 512}, seqKVs(3000))
	cache := NewBlockCache(2048) // room for ~3 blocks
	r, err := OpenWithCache(path, cache)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	it := r.NewIterator()
	it.SeekToFirst()
	for ; it.Valid(); it.Next() {
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if used := cache.UsedBytes(); used > 2048+600 {
		t.Fatalf("cache holds %d bytes, capacity 2048", used)
	}
	if cache.Len() == 0 {
		t.Fatal("cache empty after full scan")
	}
}

func TestCacheSharedAcrossReaders(t *testing.T) {
	dir := t.TempDir()
	cache := NewBlockCache(1 << 20)
	var readers []*Reader
	for i := 0; i < 3; i++ {
		path := filepath.Join(dir, fmt.Sprintf("t%d.sst", i))
		buildTable(t, path, WriterOptions{BlockSize: 256}, seqKVs(200))
		r, err := OpenWithCache(path, cache)
		if err != nil {
			t.Fatal(err)
		}
		readers = append(readers, r)
	}
	for _, r := range readers {
		if _, err := r.Get([]byte("key-000050")); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() == 0 {
		t.Fatal("shared cache empty")
	}
	// Closing one reader evicts only its entries.
	before := cache.Len()
	readers[0].Close()
	after := cache.Len()
	if after >= before {
		t.Fatalf("close did not evict owner entries: %d -> %d", before, after)
	}
	// Remaining readers still work.
	if _, err := readers[1].Get([]byte("key-000050")); err != nil {
		t.Fatal(err)
	}
	readers[1].Close()
	readers[2].Close()
	if cache.Len() != 0 {
		t.Fatalf("cache retains %d entries after all owners closed", cache.Len())
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	buildTable(t, path, WriterOptions{BlockSize: 256}, seqKVs(2000))
	r, err := OpenWithCache(path, NewBlockCache(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				key := []byte(fmt.Sprintf("key-%06d", (w*313+i*7)%2000))
				if _, err := r.Get(key); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestCacheDefaultCapacity(t *testing.T) {
	c := NewBlockCache(0)
	if c.capacity != DefaultBlockCacheBytes {
		t.Fatalf("default capacity = %d", c.capacity)
	}
	c = NewBlockCache(-5)
	if c.capacity != DefaultBlockCacheBytes {
		t.Fatalf("negative capacity = %d", c.capacity)
	}
}
