package sstable

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// BlockCache is a byte-bounded LRU cache of parsed data blocks, the
// analogue of the HBase block cache. One cache may be shared by many
// readers (e.g. all tables of a store); entries are keyed by (reader,
// offset) and evicted in least-recently-used order once the byte budget is
// exceeded. Safe for concurrent use.
//
// The cache is also the read path's byte-accounting point: every data-block
// lookup lands here, so hits, misses, evictions and the bytes its readers
// pulled from disk (on misses and metadata loads) are counted as cheap
// atomics, snapshotted by Stats.
type BlockCache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	order    *list.List // front = most recent; values are *cacheEntry
	entries  map[cacheKey]*list.Element

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	diskReadBytes atomic.Int64 // raw bytes readers fetched from disk
}

// CacheStats is a point-in-time snapshot of a cache's effectiveness
// counters. DiskReadBytes covers every disk read its readers performed:
// data-block misses plus index/filter/footer loads at open.
type CacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	DiskReadBytes int64 `json:"disk_read_bytes"`
	UsedBytes     int64 `json:"used_bytes"`
	Blocks        int64 `json:"blocks"`
}

// HitRate is hits over lookups, 0 when the cache is untouched.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the cache counters.
func (c *BlockCache) Stats() CacheStats {
	st := CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		DiskReadBytes: c.diskReadBytes.Load(),
	}
	c.mu.Lock()
	st.UsedBytes = c.used
	st.Blocks = int64(c.order.Len())
	c.mu.Unlock()
	return st
}

// recordDiskRead accounts n raw bytes read from disk by an owning reader.
func (c *BlockCache) recordDiskRead(n int64) { c.diskReadBytes.Add(n) }

type cacheKey struct {
	owner  *Reader
	offset uint64
}

type cacheEntry struct {
	key   cacheKey
	block *block
	size  int64
}

// DefaultBlockCacheBytes is the default cache budget.
const DefaultBlockCacheBytes = 8 << 20

// NewBlockCache returns a cache bounded to capacity bytes of block data.
// Non-positive capacities select the default.
func NewBlockCache(capacity int64) *BlockCache {
	if capacity <= 0 {
		capacity = DefaultBlockCacheBytes
	}
	return &BlockCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[cacheKey]*list.Element),
	}
}

// get returns the cached block for (owner, offset), if present.
func (c *BlockCache) get(owner *Reader, offset uint64) (*block, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[cacheKey{owner, offset}]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).block, true
}

// put inserts a block, evicting LRU entries beyond the capacity.
func (c *BlockCache) put(owner *Reader, offset uint64, b *block) {
	size := int64(len(b.data) + 4*len(b.restarts))
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{owner, offset}
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		_ = el
		return
	}
	el := c.order.PushFront(&cacheEntry{key: key, block: b, size: size})
	c.entries[key] = el
	c.used += size
	for c.used > c.capacity {
		back := c.order.Back()
		if back == nil || back == el {
			break // never evict the entry just inserted
		}
		e := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.entries, e.key)
		c.used -= e.size
		c.evictions.Add(1)
	}
}

// evictOwner drops every entry belonging to a reader; called on Close so a
// shared cache does not pin closed tables.
func (c *BlockCache) evictOwner(owner *Reader) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		if e.key.owner == owner {
			c.order.Remove(el)
			delete(c.entries, e.key)
			c.used -= e.size
		}
		el = next
	}
}

// UsedBytes reports the cache occupancy.
func (c *BlockCache) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len reports the number of cached blocks.
func (c *BlockCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
