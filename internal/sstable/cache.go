package sstable

import (
	"container/list"
	"sync"
)

// BlockCache is a byte-bounded LRU cache of parsed data blocks, the
// analogue of the HBase block cache. One cache may be shared by many
// readers (e.g. all tables of a store); entries are keyed by (reader,
// offset) and evicted in least-recently-used order once the byte budget is
// exceeded. Safe for concurrent use.
type BlockCache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	order    *list.List // front = most recent; values are *cacheEntry
	entries  map[cacheKey]*list.Element
}

type cacheKey struct {
	owner  *Reader
	offset uint64
}

type cacheEntry struct {
	key   cacheKey
	block *block
	size  int64
}

// DefaultBlockCacheBytes is the default cache budget.
const DefaultBlockCacheBytes = 8 << 20

// NewBlockCache returns a cache bounded to capacity bytes of block data.
// Non-positive capacities select the default.
func NewBlockCache(capacity int64) *BlockCache {
	if capacity <= 0 {
		capacity = DefaultBlockCacheBytes
	}
	return &BlockCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[cacheKey]*list.Element),
	}
}

// get returns the cached block for (owner, offset), if present.
func (c *BlockCache) get(owner *Reader, offset uint64) (*block, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[cacheKey{owner, offset}]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).block, true
}

// put inserts a block, evicting LRU entries beyond the capacity.
func (c *BlockCache) put(owner *Reader, offset uint64, b *block) {
	size := int64(len(b.data) + 4*len(b.restarts))
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{owner, offset}
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		_ = el
		return
	}
	el := c.order.PushFront(&cacheEntry{key: key, block: b, size: size})
	c.entries[key] = el
	c.used += size
	for c.used > c.capacity {
		back := c.order.Back()
		if back == nil || back == el {
			break // never evict the entry just inserted
		}
		e := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.entries, e.key)
		c.used -= e.size
	}
}

// evictOwner drops every entry belonging to a reader; called on Close so a
// shared cache does not pin closed tables.
func (c *BlockCache) evictOwner(owner *Reader) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		if e.key.owner == owner {
			c.order.Remove(el)
			delete(c.entries, e.key)
			c.used -= e.size
		}
		el = next
	}
}

// UsedBytes reports the cache occupancy.
func (c *BlockCache) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len reports the number of cached blocks.
func (c *BlockCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
