package sstable

import (
	"bytes"
	"compress/flate"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"tpcxiot/internal/bloom"
)

// Reader provides point lookups and range scans over a finished table.
// Safe for concurrent use.
type Reader struct {
	mu     sync.RWMutex
	f      *os.File
	size   int64
	closed bool

	index   *block
	filter  bloom.Filter
	entries uint64
	first   []byte // smallest key
	last    []byte // largest key

	version      int         // footer version: 1 (legacy) or 2
	compression  Compression // data-block encoding declared by the footer
	minTS, maxTS int64       // time bounds from the v2 footer
	hasTS        bool        // false for v1 tables and timestamp-less keys

	// cache holds parsed data blocks, bounded LRU-style. Private per
	// reader unless a shared cache is supplied at open.
	cache *BlockCache
}

// Open opens the table at path and loads its index and Bloom filter, with
// a private block cache of the default size.
func Open(path string) (*Reader, error) {
	return OpenWithCache(path, nil)
}

// OpenWithCache opens the table using the given shared block cache; nil
// creates a private cache of the default size.
func OpenWithCache(path string, cache *BlockCache) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sstable: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sstable: stat: %w", err)
	}
	if cache == nil {
		cache = NewBlockCache(0)
	}
	r := &Reader{f: f, size: st.Size(), cache: cache}
	if err := r.loadFooter(); err != nil {
		f.Close()
		return nil, err
	}
	if err := r.loadBounds(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func (r *Reader) loadFooter() error {
	if r.size < footerLenV1 {
		return corruptf("file of %d bytes has no footer", r.size)
	}
	// Read the largest possible footer; decodeFooter finds the version from
	// the magic in the final 8 bytes. Files shorter than a v2 footer can
	// only be v1.
	n := int64(footerLenV2)
	if r.size < n {
		n = footerLenV1
	}
	buf := make([]byte, n)
	if _, err := r.f.ReadAt(buf, r.size-n); err != nil {
		return fmt.Errorf("sstable: read footer: %w", err)
	}
	ft, err := decodeFooter(buf)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	r.entries = ft.entries
	r.version = ft.version
	r.compression = ft.compression
	r.minTS, r.maxTS, r.hasTS = ft.minTS, ft.maxTS, ft.hasTS

	rawIndex, err := r.readBlockRaw(ft.index)
	if err != nil {
		return err
	}
	r.index, err = parseBlock(rawIndex)
	if err != nil {
		return err
	}

	if ft.bloom.length > 0 {
		rawBloom, err := r.readBlockRaw(ft.bloom)
		if err != nil {
			return err
		}
		r.filter = bloom.Filter(rawBloom)
	}
	return nil
}

func (r *Reader) loadBounds() error {
	it := r.NewIterator()
	it.SeekToFirst()
	if !it.Valid() {
		return corruptf("table reports %d entries but iterates empty", r.entries)
	}
	r.first = append([]byte(nil), it.Key()...)

	// Largest key: last entry of the last data block. The index's last
	// entry key equals the table's last key by construction.
	last := r.index.iter()
	last.seekToFirst()
	var lk []byte
	for last.valid {
		lk = append(lk[:0], last.key...)
		last.next()
	}
	if last.err != nil {
		return last.err
	}
	r.last = append([]byte(nil), lk...)
	return it.Error()
}

// readBlockRaw reads, checksum-verifies and (for v2 tables) decompresses a
// block. The handle's length is the stored (possibly compressed) payload
// size; disk-read accounting records the stored bytes actually fetched.
func (r *Reader) readBlockRaw(h handle) ([]byte, error) {
	trailer := uint64(trailerLenV2)
	if r.version == 1 {
		trailer = trailerLenV1
	}
	if h.offset+h.length+trailer > uint64(r.size) {
		return nil, corruptf("block handle %d+%d beyond file size %d", h.offset, h.length, r.size)
	}
	buf := make([]byte, h.length+trailer)
	if _, err := r.f.ReadAt(buf, int64(h.offset)); err != nil {
		return nil, fmt.Errorf("sstable: read block: %w", err)
	}
	if r.cache != nil {
		r.cache.recordDiskRead(int64(len(buf)))
	}
	body := buf[:h.length]
	ctype := NoCompression
	crcOff := h.length
	if r.version != 1 {
		// v2 trailer: [type][crc32(payload+type)].
		ctype = Compression(buf[h.length])
		crcOff = h.length + 1
	}
	want := uint32(buf[crcOff]) | uint32(buf[crcOff+1])<<8 |
		uint32(buf[crcOff+2])<<16 | uint32(buf[crcOff+3])<<24
	got := checksum(body)
	if r.version != 1 {
		got = crc32.Update(got, crcTable, buf[h.length:h.length+1])
	}
	if got != want {
		return nil, corruptf("checksum mismatch for block at %d", h.offset)
	}
	switch ctype {
	case NoCompression:
		return body, nil
	case FlateCompression:
		fr := flate.NewReader(bytes.NewReader(body))
		raw, err := io.ReadAll(fr)
		if err != nil {
			return nil, corruptf("decompress block at %d: %v", h.offset, err)
		}
		if err := fr.Close(); err != nil {
			return nil, corruptf("decompress block at %d: %v", h.offset, err)
		}
		return raw, nil
	}
	return nil, corruptf("unknown block compression %d at %d", ctype, h.offset)
}

// dataBlock returns the parsed data block for a handle, consulting the cache.
func (r *Reader) dataBlock(h handle) (*block, error) {
	if b, ok := r.cache.get(r, h.offset); ok {
		return b, nil
	}
	raw, err := r.readBlockRaw(h)
	if err != nil {
		return nil, err
	}
	b, err := parseBlock(raw)
	if err != nil {
		return nil, err
	}
	r.cache.put(r, h.offset, b)
	return b, nil
}

// EntryCount returns the number of entries in the table.
func (r *Reader) EntryCount() uint64 { return r.entries }

// Size returns the table file's size in bytes.
func (r *Reader) Size() int64 { return r.size }

// FilterPresent reports whether the table carries a Bloom filter; when
// false, MayContain is vacuously true and cannot be used to classify
// lookups as filter hits or false positives.
func (r *Reader) FilterPresent() bool { return r.filter != nil }

// Bounds returns the smallest and largest keys. The slices are shared;
// callers must not modify them.
func (r *Reader) Bounds() (first, last []byte) { return r.first, r.last }

// TimeBounds returns the table's min/max key timestamps from the footer.
// ok is false for legacy v1 tables and tables whose keys carried no
// extractable timestamp; such tables can never be pruned by time.
func (r *Reader) TimeBounds() (min, max int64, ok bool) {
	return r.minTS, r.maxTS, r.hasTS
}

// Compression reports the data-block encoding declared by the footer.
func (r *Reader) Compression() Compression { return r.compression }

// MayContain consults the Bloom filter. True is probabilistic; false is
// definite. Tables written without a filter always return true.
func (r *Reader) MayContain(key []byte) bool {
	if r.filter == nil {
		return true
	}
	return r.filter.MayContain(key)
}

// Get returns the value for key, or ErrNotFound.
func (r *Reader) Get(key []byte) ([]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return nil, ErrClosed
	}
	if !r.MayContain(key) {
		return nil, ErrNotFound
	}
	it := r.NewIterator()
	it.Seek(key)
	if err := it.Error(); err != nil {
		return nil, err
	}
	if !it.Valid() || !bytes.Equal(it.Key(), key) {
		return nil, ErrNotFound
	}
	return append([]byte(nil), it.Value()...), nil
}

// Close releases the underlying file. Iterators must not be used afterwards.
func (r *Reader) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	r.cache.evictOwner(r)
	return r.f.Close()
}

// Iterator walks a table in ascending key order.
type Iterator struct {
	r       *Reader
	indexIt *blockIter
	dataIt  *blockIter
	err     error
}

// NewIterator returns an unpositioned iterator; call Seek or SeekToFirst.
func (r *Reader) NewIterator() *Iterator {
	return &Iterator{r: r, indexIt: r.index.iter()}
}

// SeekToFirst positions at the table's first entry.
func (it *Iterator) SeekToFirst() {
	it.err = nil
	it.indexIt.seekToFirst()
	it.loadDataBlock()
	if it.dataIt != nil {
		it.dataIt.seekToFirst()
	}
	it.skipForward()
}

// Seek positions at the first entry with key >= target.
func (it *Iterator) Seek(target []byte) {
	it.err = nil
	// Index entries hold the LAST key of each block, so the first index
	// entry with key >= target names the block that may contain target.
	it.indexIt.seek(target)
	it.loadDataBlock()
	if it.dataIt != nil {
		it.dataIt.seek(target)
	}
	it.skipForward()
}

// Next advances one entry.
func (it *Iterator) Next() {
	if it.dataIt == nil || it.err != nil {
		return
	}
	it.dataIt.next()
	it.skipForward()
}

// skipForward advances to the next non-empty data block when the current
// block is exhausted.
func (it *Iterator) skipForward() {
	for it.err == nil && (it.dataIt == nil || !it.dataIt.valid) {
		if it.dataIt != nil && it.dataIt.err != nil {
			it.err = it.dataIt.err
			return
		}
		it.indexIt.next()
		if it.indexIt.err != nil {
			it.err = it.indexIt.err
			return
		}
		if !it.indexIt.valid {
			it.dataIt = nil
			return
		}
		it.loadDataBlock()
		if it.dataIt != nil {
			it.dataIt.seekToFirst()
		}
	}
}

// loadDataBlock parses the block referenced by the current index entry.
func (it *Iterator) loadDataBlock() {
	it.dataIt = nil
	if !it.indexIt.valid {
		return
	}
	if len(it.indexIt.value) != 16 {
		it.err = corruptf("index value of %d bytes", len(it.indexIt.value))
		return
	}
	b, err := it.r.dataBlock(decodeHandle(it.indexIt.value))
	if err != nil {
		it.err = err
		return
	}
	it.dataIt = b.iter()
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool {
	return it.err == nil && it.dataIt != nil && it.dataIt.valid
}

// Key returns the current key; valid until the next positioning call.
func (it *Iterator) Key() []byte { return it.dataIt.key }

// Value returns the current value; valid until the next positioning call.
func (it *Iterator) Value() []byte { return it.dataIt.value }

// Error returns the first corruption or I/O error encountered.
func (it *Iterator) Error() error { return it.err }
