package sstable

import (
	"bytes"
	"encoding/binary"
	"sort"
)

// blockBuilder assembles one block of sorted entries with shared-prefix key
// compression. Every restartInterval entries the full key is stored and its
// offset recorded in the restart array, enabling binary search.
//
// Entry layout:
//
//	shared-key-len   uvarint
//	unshared-key-len uvarint
//	value-len        uvarint
//	unshared key bytes
//	value bytes
//
// Block tail: restart offsets (uint32 each) followed by the restart count.
type blockBuilder struct {
	buf      []byte
	restarts []uint32
	counter  int
	lastKey  []byte
	entries  int
}

func (b *blockBuilder) reset() {
	b.buf = b.buf[:0]
	b.restarts = b.restarts[:0]
	b.counter = 0
	b.lastKey = b.lastKey[:0]
	b.entries = 0
}

func (b *blockBuilder) add(key, value []byte) {
	shared := 0
	if b.counter < restartInterval && len(b.restarts) > 0 {
		shared = sharedPrefixLen(b.lastKey, key)
	} else {
		b.restarts = append(b.restarts, uint32(len(b.buf)))
		b.counter = 0
	}
	b.buf = binary.AppendUvarint(b.buf, uint64(shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(key)-shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(value)))
	b.buf = append(b.buf, key[shared:]...)
	b.buf = append(b.buf, value...)
	b.lastKey = append(b.lastKey[:0], key...)
	b.counter++
	b.entries++
}

// estimatedSize reports the serialised size if finished now.
func (b *blockBuilder) estimatedSize() int {
	return len(b.buf) + 4*len(b.restarts) + 4
}

func (b *blockBuilder) empty() bool { return b.entries == 0 }

// finish appends the restart array and count, returning the complete block.
func (b *blockBuilder) finish() []byte {
	if len(b.restarts) == 0 {
		b.restarts = append(b.restarts, 0)
	}
	for _, r := range b.restarts {
		b.buf = binary.LittleEndian.AppendUint32(b.buf, r)
	}
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(len(b.restarts)))
	return b.buf
}

// block is a parsed read-only block.
type block struct {
	data     []byte // entry region only
	restarts []uint32
}

func parseBlock(raw []byte) (*block, error) {
	if len(raw) < 4 {
		return nil, corruptf("block shorter than restart count")
	}
	n := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	tail := 4 * (int(n) + 1)
	if n == 0 || tail > len(raw) {
		return nil, corruptf("restart array (%d entries) exceeds block", n)
	}
	restartOff := len(raw) - tail
	restarts := make([]uint32, n)
	for i := range restarts {
		restarts[i] = binary.LittleEndian.Uint32(raw[restartOff+4*i:])
		if int(restarts[i]) >= restartOff && !(restarts[i] == 0 && restartOff == 0) {
			return nil, corruptf("restart offset %d beyond entries", restarts[i])
		}
	}
	return &block{data: raw[:restartOff], restarts: restarts}, nil
}

// blockIter iterates over a parsed block.
type blockIter struct {
	b     *block
	off   int // offset of the NEXT entry to decode
	key   []byte
	value []byte
	valid bool
	err   error
}

func (b *block) iter() *blockIter { return &blockIter{b: b} }

// next decodes the entry at off. Returns false at end of block or on error.
func (it *blockIter) next() bool {
	if it.err != nil || it.off >= len(it.b.data) {
		it.valid = false
		return false
	}
	data := it.b.data[it.off:]
	shared, n1 := binary.Uvarint(data)
	if n1 <= 0 {
		it.fail("bad shared length")
		return false
	}
	unshared, n2 := binary.Uvarint(data[n1:])
	if n2 <= 0 {
		it.fail("bad unshared length")
		return false
	}
	vlen, n3 := binary.Uvarint(data[n1+n2:])
	if n3 <= 0 {
		it.fail("bad value length")
		return false
	}
	hdr := n1 + n2 + n3
	if uint64(len(data)) < uint64(hdr)+unshared+vlen {
		it.fail("entry overruns block")
		return false
	}
	if shared > uint64(len(it.key)) {
		it.fail("shared length exceeds previous key")
		return false
	}
	it.key = append(it.key[:shared], data[hdr:hdr+int(unshared)]...)
	it.value = data[hdr+int(unshared) : hdr+int(unshared)+int(vlen)]
	it.off += hdr + int(unshared) + int(vlen)
	it.valid = true
	return true
}

func (it *blockIter) fail(msg string) {
	it.err = corruptf("%s at offset %d", msg, it.off)
	it.valid = false
}

// seek positions the iterator at the first entry with key >= target.
func (it *blockIter) seek(target []byte) {
	// Binary search the restart points for the last restart whose full key
	// is <= target, then scan forward.
	idx := sort.Search(len(it.b.restarts), func(i int) bool {
		k, ok := it.b.keyAtRestart(int(it.b.restarts[i]))
		if !ok {
			return true // force the linear scan to surface the corruption
		}
		return bytes.Compare(k, target) > 0
	})
	start := 0
	if idx > 0 {
		start = int(it.b.restarts[idx-1])
	}
	it.off = start
	it.key = it.key[:0]
	it.valid = false
	for it.next() {
		if bytes.Compare(it.key, target) >= 0 {
			return
		}
	}
}

// seekToFirst positions the iterator at the first entry.
func (it *blockIter) seekToFirst() {
	it.off = 0
	it.key = it.key[:0]
	it.valid = false
	it.next()
}

// keyAtRestart decodes the full key stored at a restart offset.
func (b *block) keyAtRestart(off int) ([]byte, bool) {
	if off >= len(b.data) {
		return nil, false
	}
	data := b.data[off:]
	shared, n1 := binary.Uvarint(data)
	if n1 <= 0 || shared != 0 {
		return nil, false
	}
	unshared, n2 := binary.Uvarint(data[n1:])
	if n2 <= 0 {
		return nil, false
	}
	_, n3 := binary.Uvarint(data[n1+n2:])
	if n3 <= 0 {
		return nil, false
	}
	hdr := n1 + n2 + n3
	if uint64(len(data)) < uint64(hdr)+unshared {
		return nil, false
	}
	return data[hdr : hdr+int(unshared)], true
}
