package sstable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"
)

func buildTable(t testing.TB, path string, opts WriterOptions, kvs map[string]string) {
	t.Helper()
	w, err := NewWriter(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(kvs))
	for k := range kvs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := w.Add([]byte(k), []byte(kvs[k])); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
}

func seqKVs(n int) map[string]string {
	kvs := make(map[string]string, n)
	for i := 0; i < n; i++ {
		kvs[fmt.Sprintf("key-%06d", i)] = fmt.Sprintf("value-%06d", i)
	}
	return kvs
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	kvs := seqKVs(5000)
	buildTable(t, path, WriterOptions{}, kvs)

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if r.EntryCount() != uint64(len(kvs)) {
		t.Fatalf("EntryCount = %d, want %d", r.EntryCount(), len(kvs))
	}
	for k, v := range kvs {
		got, err := r.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("Get(%q) = %q, want %q", k, got, v)
		}
	}
}

func TestGetAbsentKey(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	buildTable(t, path, WriterOptions{}, seqKVs(1000))
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, k := range []string{"", "aaa", "key-000500x", "zzz"} {
		if _, err := r.Get([]byte(k)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get(%q) error = %v, want ErrNotFound", k, err)
		}
	}
}

func TestIterationOrderComplete(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	kvs := seqKVs(3000)
	buildTable(t, path, WriterOptions{BlockSize: 512}, kvs) // many blocks
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	it := r.NewIterator()
	it.SeekToFirst()
	count := 0
	var prev []byte
	for ; it.Valid(); it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatalf("unsorted: %q then %q", prev, it.Key())
		}
		want := kvs[string(it.Key())]
		if string(it.Value()) != want {
			t.Fatalf("value for %q = %q, want %q", it.Key(), it.Value(), want)
		}
		prev = append(prev[:0], it.Key()...)
		count++
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if count != len(kvs) {
		t.Fatalf("iterated %d entries, want %d", count, len(kvs))
	}
}

func TestSeekSemantics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	kvs := map[string]string{}
	for i := 0; i < 1000; i += 2 { // even keys only
		kvs[fmt.Sprintf("k%06d", i)] = "v"
	}
	buildTable(t, path, WriterOptions{BlockSize: 256}, kvs)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	it := r.NewIterator()

	it.Seek([]byte("k000501")) // odd: lands on next even
	if !it.Valid() || string(it.Key()) != "k000502" {
		t.Fatalf("Seek between keys landed on %q", it.Key())
	}
	it.Seek([]byte("k000500")) // exact
	if !it.Valid() || string(it.Key()) != "k000500" {
		t.Fatalf("Seek exact landed on %q", it.Key())
	}
	it.Seek([]byte("")) // before first
	if !it.Valid() || string(it.Key()) != "k000000" {
		t.Fatalf("Seek before first landed on %q", it.Key())
	}
	it.Seek([]byte("zzz")) // past last
	if it.Valid() {
		t.Fatal("Seek past last should be invalid")
	}
}

func TestRangeScanAcrossBlocks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	kvs := seqKVs(2000)
	buildTable(t, path, WriterOptions{BlockSize: 300}, kvs)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	lo, hi := []byte("key-000500"), []byte("key-001500")
	it := r.NewIterator()
	it.Seek(lo)
	count := 0
	for ; it.Valid() && bytes.Compare(it.Key(), hi) < 0; it.Next() {
		count++
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if count != 1000 {
		t.Fatalf("range scan returned %d entries, want 1000", count)
	}
}

func TestBounds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	buildTable(t, path, WriterOptions{BlockSize: 128}, seqKVs(500))
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	first, last := r.Bounds()
	if string(first) != "key-000000" || string(last) != "key-000499" {
		t.Fatalf("Bounds = %q..%q", first, last)
	}
}

func TestOutOfOrderAddRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	w, err := NewWriter(path, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.Add([]byte("b"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]byte("a"), []byte("2")); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("out-of-order add: %v", err)
	}
	if err := w.Add([]byte("b"), []byte("dup")); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("duplicate add: %v", err)
	}
}

func TestEmptyTableRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	w, err := NewWriter(path, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); !errors.Is(err, ErrEmptyTable) {
		t.Fatalf("Finish on empty table: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("empty table file not removed")
	}
}

func TestAbortRemovesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	w, err := NewWriter(path, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w.Add([]byte("k"), []byte("v"))
	w.Abort()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("aborted table file not removed")
	}
}

func TestCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	buildTable(t, path, WriterOptions{BlockSize: 256}, seqKVs(500))

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte early in the file (inside the first data block).
	data[16] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path) // footer and index are at the tail: still intact
	if err != nil {
		t.Skipf("corruption already caught at open: %v", err)
	}
	defer r.Close()
	it := r.NewIterator()
	it.SeekToFirst()
	for it.Valid() {
		it.Next()
	}
	if !errors.Is(it.Error(), ErrCorrupt) {
		t.Fatalf("iterator over corrupt block: %v", it.Error())
	}
}

func TestTruncatedFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	buildTable(t, path, WriterOptions{}, seqKVs(100))
	if err := os.Truncate(path, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open truncated file: %v", err)
	}
}

func TestGarbageFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	if err := os.WriteFile(path, bytes.Repeat([]byte{0xab}, 1000), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open garbage file: %v", err)
	}
}

func TestNoBloomFilter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	buildTable(t, path, WriterOptions{BloomBitsPerKey: -1}, seqKVs(100))
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.MayContain([]byte("anything")) {
		t.Fatal("filterless table must answer maybe")
	}
	if _, err := r.Get([]byte("key-000050")); err != nil {
		t.Fatalf("Get without filter: %v", err)
	}
}

func TestBloomSkipsAbsent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	buildTable(t, path, WriterOptions{}, seqKVs(5000))
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	skipped := 0
	for i := 0; i < 1000; i++ {
		if !r.MayContain([]byte(fmt.Sprintf("absent-%d", i))) {
			skipped++
		}
	}
	if skipped < 900 {
		t.Fatalf("bloom filter skipped only %d/1000 absent keys", skipped)
	}
}

func TestClosedReaderRejectsGet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	buildTable(t, path, WriterOptions{}, seqKVs(10))
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if _, err := r.Get([]byte("key-000001")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestBinaryKeysRoundTripProperty(t *testing.T) {
	f := func(raw [][]byte) bool {
		// Dedup and sort arbitrary binary keys.
		set := map[string]bool{}
		for _, k := range raw {
			set[string(k)] = true
		}
		delete(set, "") // writer requires non-empty progression from first add
		if len(set) == 0 {
			return true
		}
		keys := make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)

		path := filepath.Join(t.TempDir(), "p.sst")
		w, err := NewWriter(path, WriterOptions{BlockSize: 64})
		if err != nil {
			return false
		}
		for i, k := range keys {
			if err := w.Add([]byte(k), []byte(fmt.Sprintf("v%d", i))); err != nil {
				w.Abort()
				return false
			}
		}
		if err := w.Finish(); err != nil {
			return false
		}
		r, err := Open(path)
		if err != nil {
			return false
		}
		defer r.Close()
		for i, k := range keys {
			got, err := r.Get([]byte(k))
			if err != nil || string(got) != fmt.Sprintf("v%d", i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func Test1KiBValuesManyBlocks(t *testing.T) {
	// Mirror the kvp shape: 1 KiB values, ordered time-series keys.
	path := filepath.Join(t.TempDir(), "t.sst")
	w, err := NewWriter(path, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{'x'}, 1024)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := w.Add([]byte(fmt.Sprintf("PS\x00s1\x00%012d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	it := r.NewIterator()
	it.Seek([]byte(fmt.Sprintf("PS\x00s1\x00%012d", 500)))
	count := 0
	for ; it.Valid() && count < 100; it.Next() {
		if len(it.Value()) != 1024 {
			t.Fatalf("value length %d", len(it.Value()))
		}
		count++
	}
	if count != 100 {
		t.Fatalf("scanned %d entries, want 100", count)
	}
}

func BenchmarkWriter1KiB(b *testing.B) {
	path := filepath.Join(b.TempDir(), "b.sst")
	w, err := NewWriter(path, WriterOptions{})
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Add([]byte(fmt.Sprintf("key-%012d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	w.Finish()
}

func BenchmarkReaderGet(b *testing.B) {
	path := filepath.Join(b.TempDir(), "b.sst")
	const n = 100000
	w, err := NewWriter(path, WriterOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		w.Add([]byte(fmt.Sprintf("key-%012d", i)), []byte("value"))
	}
	if err := w.Finish(); err != nil {
		b.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Get([]byte(fmt.Sprintf("key-%012d", i%n))); err != nil {
			b.Fatal(err)
		}
	}
}
