// Package sstable implements the immutable on-disk table format of the
// storage engine, in the spirit of HBase HFiles and LevelDB tables.
//
// A table is a sequence of blocks:
//
//	[data block]*
//	[bloom filter block]
//	[index block]
//	[footer]
//
// Data blocks hold key-value entries in sorted order with shared-prefix key
// compression and restart points for binary search. The index block maps
// the last key of every data block to its file position. The Bloom filter
// covers all keys in the table and lets point reads skip the table without
// touching a data block. Every block is protected by a CRC32C checksum.
package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Sentinel errors.
var (
	ErrCorrupt     = errors.New("sstable: corrupt table")
	ErrClosed      = errors.New("sstable: reader is closed")
	ErrOutOfOrder  = errors.New("sstable: keys added out of order")
	ErrEmptyTable  = errors.New("sstable: table has no entries")
	ErrNotFound    = errors.New("sstable: key not found")
	errBadMagic    = errors.New("sstable: bad magic")
	errShortFooter = errors.New("sstable: short footer")
)

const (
	// magicV1 marks a v1 footer ("IoTSSTb1"): no time bounds, no
	// compression, 4-byte block trailers. Still readable, never written.
	magicV1 uint64 = 0x496f545353546231

	// magicV2 marks a v2 footer ("IoTSSTb2"): adds per-table min/max
	// timestamps and a compression kind, and every block carries a 5-byte
	// trailer (compression type + CRC).
	magicV2 uint64 = 0x496f545353546232

	// footerLenV1: index handle (16) + bloom handle (16) + entry count (8) +
	// magic (8).
	footerLenV1 = 48

	// footerLenV2 adds min timestamp (8) + max timestamp (8) + compression
	// kind (1) + flags (1) + reserved (6) before the magic.
	footerLenV2 = footerLenV1 + 24

	// restartInterval is the number of entries between restart points in a
	// data block.
	restartInterval = 16

	// trailerLenV1: 4-byte CRC32C appended to every block.
	trailerLenV1 = 4

	// trailerLenV2: 1-byte compression type + 4-byte CRC32C over the stored
	// payload plus the type byte.
	trailerLenV2 = 5
)

// Compression selects the per-block encoding of data blocks. Index, filter
// and footer blocks are always stored raw so table opens stay cheap.
type Compression uint8

const (
	// NoCompression stores blocks raw.
	NoCompression Compression = 0
	// FlateCompression DEFLATE-compresses data blocks (stdlib compress/flate
	// at BestSpeed), keeping a block raw when compression does not shrink it.
	FlateCompression Compression = 1
)

// String renders the compression kind for flags and reports.
func (c Compression) String() string {
	switch c {
	case NoCompression:
		return "none"
	case FlateCompression:
		return "flate"
	}
	return fmt.Sprintf("compression(%d)", uint8(c))
}

// ParseCompression maps a flag value to a Compression kind.
func ParseCompression(s string) (Compression, error) {
	switch s {
	case "", "none":
		return NoCompression, nil
	case "flate":
		return FlateCompression, nil
	}
	return NoCompression, fmt.Errorf("sstable: unknown compression %q (want none or flate)", s)
}

// footer flag bits.
const flagHasTimeBounds = 1 << 0

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// handle locates a block within the file.
type handle struct {
	offset uint64
	length uint64 // excluding the checksum trailer
}

func (h handle) encode(dst []byte) {
	binary.LittleEndian.PutUint64(dst[0:8], h.offset)
	binary.LittleEndian.PutUint64(dst[8:16], h.length)
}

func decodeHandle(b []byte) handle {
	return handle{
		offset: binary.LittleEndian.Uint64(b[0:8]),
		length: binary.LittleEndian.Uint64(b[8:16]),
	}
}

// footer is the fixed-size tail of the file. minTS/maxTS are POSIX-ms
// timestamps extracted from the keys at write time; hasTS is false when no
// key carried an extractable timestamp (the bounds are then meaningless).
type footer struct {
	index       handle
	bloom       handle
	entries     uint64
	minTS       int64
	maxTS       int64
	hasTS       bool
	compression Compression
	version     int // 1 or 2
}

func (f footer) encode() []byte {
	out := make([]byte, footerLenV2)
	f.index.encode(out[0:16])
	f.bloom.encode(out[16:32])
	binary.LittleEndian.PutUint64(out[32:40], f.entries)
	binary.LittleEndian.PutUint64(out[40:48], uint64(f.minTS))
	binary.LittleEndian.PutUint64(out[48:56], uint64(f.maxTS))
	out[56] = byte(f.compression)
	if f.hasTS {
		out[57] |= flagHasTimeBounds
	}
	binary.LittleEndian.PutUint64(out[64:72], magicV2)
	return out
}

// decodeFooter parses the tail bytes of a file: b must be the last
// footerLenV2 bytes (or the last footerLenV1 bytes of a file too short for
// a v2 footer). The magic in the final 8 bytes selects the version.
func decodeFooter(b []byte) (footer, error) {
	if len(b) < footerLenV1 {
		return footer{}, errShortFooter
	}
	switch binary.LittleEndian.Uint64(b[len(b)-8:]) {
	case magicV2:
		if len(b) < footerLenV2 {
			return footer{}, errShortFooter
		}
		b = b[len(b)-footerLenV2:]
		return footer{
			index:       decodeHandle(b[0:16]),
			bloom:       decodeHandle(b[16:32]),
			entries:     binary.LittleEndian.Uint64(b[32:40]),
			minTS:       int64(binary.LittleEndian.Uint64(b[40:48])),
			maxTS:       int64(binary.LittleEndian.Uint64(b[48:56])),
			compression: Compression(b[56]),
			hasTS:       b[57]&flagHasTimeBounds != 0,
			version:     2,
		}, nil
	case magicV1:
		b = b[len(b)-footerLenV1:]
		return footer{
			index:   decodeHandle(b[0:16]),
			bloom:   decodeHandle(b[16:32]),
			entries: binary.LittleEndian.Uint64(b[32:40]),
			version: 1,
		}, nil
	}
	return footer{}, errBadMagic
}

func checksum(block []byte) uint32 {
	return crc32.Checksum(block, crcTable)
}

func sharedPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}
