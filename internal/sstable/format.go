// Package sstable implements the immutable on-disk table format of the
// storage engine, in the spirit of HBase HFiles and LevelDB tables.
//
// A table is a sequence of blocks:
//
//	[data block]*
//	[bloom filter block]
//	[index block]
//	[footer]
//
// Data blocks hold key-value entries in sorted order with shared-prefix key
// compression and restart points for binary search. The index block maps
// the last key of every data block to its file position. The Bloom filter
// covers all keys in the table and lets point reads skip the table without
// touching a data block. Every block is protected by a CRC32C checksum.
package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Sentinel errors.
var (
	ErrCorrupt     = errors.New("sstable: corrupt table")
	ErrClosed      = errors.New("sstable: reader is closed")
	ErrOutOfOrder  = errors.New("sstable: keys added out of order")
	ErrEmptyTable  = errors.New("sstable: table has no entries")
	ErrNotFound    = errors.New("sstable: key not found")
	errBadMagic    = errors.New("sstable: bad magic")
	errShortFooter = errors.New("sstable: short footer")
)

const (
	// magic marks a well-formed footer ("IoTSSTb1").
	magic uint64 = 0x496f545353546231

	// footerLen: index handle (16) + bloom handle (16) + entry count (8) +
	// magic (8).
	footerLen = 48

	// restartInterval is the number of entries between restart points in a
	// data block.
	restartInterval = 16

	// blockTrailerLen: 4-byte CRC32C appended to every block.
	blockTrailerLen = 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// handle locates a block within the file.
type handle struct {
	offset uint64
	length uint64 // excluding the checksum trailer
}

func (h handle) encode(dst []byte) {
	binary.LittleEndian.PutUint64(dst[0:8], h.offset)
	binary.LittleEndian.PutUint64(dst[8:16], h.length)
}

func decodeHandle(b []byte) handle {
	return handle{
		offset: binary.LittleEndian.Uint64(b[0:8]),
		length: binary.LittleEndian.Uint64(b[8:16]),
	}
}

// footer is the fixed-size tail of the file.
type footer struct {
	index   handle
	bloom   handle
	entries uint64
}

func (f footer) encode() []byte {
	out := make([]byte, footerLen)
	f.index.encode(out[0:16])
	f.bloom.encode(out[16:32])
	binary.LittleEndian.PutUint64(out[32:40], f.entries)
	binary.LittleEndian.PutUint64(out[40:48], magic)
	return out
}

func decodeFooter(b []byte) (footer, error) {
	if len(b) != footerLen {
		return footer{}, errShortFooter
	}
	if binary.LittleEndian.Uint64(b[40:48]) != magic {
		return footer{}, errBadMagic
	}
	return footer{
		index:   decodeHandle(b[0:16]),
		bloom:   decodeHandle(b[16:32]),
		entries: binary.LittleEndian.Uint64(b[32:40]),
	}, nil
}

func checksum(block []byte) uint32 {
	return crc32.Checksum(block, crcTable)
}

func sharedPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}
