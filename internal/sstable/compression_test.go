package sstable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tpcxiot/internal/kvp"
)

// compressibleKVs returns n entries whose values are highly repetitive, so
// flate should shrink them dramatically.
func compressibleKVs(n int) map[string]string {
	kvs := make(map[string]string, n)
	pad := strings.Repeat("temperature=23.5C humidity=40% ", 16)
	for i := 0; i < n; i++ {
		kvs[fmt.Sprintf("key-%06d", i)] = pad
	}
	return kvs
}

func TestFlateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	kvs := compressibleKVs(2000)

	raw := filepath.Join(dir, "raw.sst")
	buildTable(t, raw, WriterOptions{}, kvs)
	comp := filepath.Join(dir, "comp.sst")
	buildTable(t, comp, WriterOptions{Compression: FlateCompression}, kvs)

	rawInfo, err := os.Stat(raw)
	if err != nil {
		t.Fatal(err)
	}
	compInfo, err := os.Stat(comp)
	if err != nil {
		t.Fatal(err)
	}
	if compInfo.Size() >= rawInfo.Size() {
		t.Fatalf("compressed table %d B is not smaller than raw %d B", compInfo.Size(), rawInfo.Size())
	}

	r, err := Open(comp)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Compression() != FlateCompression {
		t.Fatalf("Compression() = %v, want flate", r.Compression())
	}
	for k, v := range kvs {
		got, err := r.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("Get(%q) = %d bytes, want %d", k, len(got), len(v))
		}
	}
	// Full iteration decompresses every block.
	it := r.NewIterator()
	n := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		n++
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if n != len(kvs) {
		t.Fatalf("iterated %d entries, want %d", n, len(kvs))
	}
}

func TestCompressionStatsLedger(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	w, err := NewWriter(path, WriterOptions{Compression: FlateCompression})
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", 256)
	for i := 0; i < 1000; i++ {
		if err := w.Add([]byte(fmt.Sprintf("key-%06d", i)), []byte(pad)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	rawIn, storedOut := w.CompressionStats()
	if rawIn == 0 || storedOut == 0 {
		t.Fatalf("empty compression ledger: raw=%d stored=%d", rawIn, storedOut)
	}
	if storedOut >= rawIn {
		t.Fatalf("compressible data did not shrink: raw=%d stored=%d", rawIn, storedOut)
	}
}

// TestIncompressibleBlocksStayRaw: blocks that flate cannot shrink must be
// stored raw (the ledger shows stored == raw for them) and still read back.
func TestIncompressibleBlocksStayRaw(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	w, err := NewWriter(path, WriterOptions{Compression: FlateCompression, BlockSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// Pseudo-random bytes defeat DEFLATE at BestSpeed.
	rnd := uint64(0x9e3779b97f4a7c15)
	val := make([]byte, 512)
	kvs := map[string]string{}
	for i := 0; i < 200; i++ {
		for j := range val {
			rnd ^= rnd << 13
			rnd ^= rnd >> 7
			rnd ^= rnd << 17
			val[j] = byte(rnd)
		}
		k := fmt.Sprintf("key-%06d", i)
		kvs[k] = string(val)
		if err := w.Add([]byte(k), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	rawIn, storedOut := w.CompressionStats()
	if storedOut < rawIn {
		t.Logf("some blocks compressed anyway: raw=%d stored=%d", rawIn, storedOut)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for k, v := range kvs {
		got, err := r.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if !bytes.Equal(got, []byte(v)) {
			t.Fatalf("Get(%q) mismatch", k)
		}
	}
}

func TestCompressedCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	buildTable(t, path, WriterOptions{Compression: FlateCompression}, compressibleKVs(3000))

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte early in the file: inside a compressed data block.
	data[len(data)/8] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		// Corruption in the first block may surface at open (bounds load).
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open error %v, want ErrCorrupt", err)
		}
		return
	}
	defer r.Close()
	it := r.NewIterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
	}
	if err := it.Error(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("iterating corrupted table: err=%v, want ErrCorrupt", err)
	}
}

func TestTimeBoundsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	w, err := NewWriter(path, WriterOptions{TimestampOf: kvp.TimestampOf})
	if err != nil {
		t.Fatal(err)
	}
	const lo, hi = 10_000, 19_000
	for ts := int64(lo); ts <= hi; ts += 1000 {
		k := kvp.Key{Substation: "sub", Sensor: "s1", Timestamp: ts}.Encode()
		if err := w.Add(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if minTS, maxTS, ok := w.TimeBounds(); !ok || minTS != lo || maxTS != hi {
		t.Fatalf("writer TimeBounds = (%d,%d,%v), want (%d,%d,true)", minTS, maxTS, ok, lo, hi)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if minTS, maxTS, ok := r.TimeBounds(); !ok || minTS != lo || maxTS != hi {
		t.Fatalf("reader TimeBounds = (%d,%d,%v), want (%d,%d,true)", minTS, maxTS, ok, lo, hi)
	}
}

// TestTimeBoundsAbsentWithoutTimestamps: keys the extractor rejects leave the
// table unwindowed — ok must be false on both writer and reader.
func TestTimeBoundsAbsentWithoutTimestamps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	w, err := NewWriter(path, WriterOptions{TimestampOf: kvp.TimestampOf})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Add([]byte(fmt.Sprintf("plain-%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := w.TimeBounds(); ok {
		t.Fatal("writer reports time bounds for timestamp-free keys")
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, ok := r.TimeBounds(); ok {
		t.Fatal("reader reports time bounds for timestamp-free keys")
	}
}
