package sstable

import (
	"bufio"
	"bytes"
	"fmt"
	"os"

	"tpcxiot/internal/bloom"
)

// WriterOptions configures table construction.
type WriterOptions struct {
	// BlockSize is the uncompressed data-block target in bytes.
	// Defaults to 4 KiB.
	BlockSize int
	// BloomBitsPerKey sizes the table's Bloom filter; 0 selects the
	// package default, negative disables the filter.
	BloomBitsPerKey int
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.BlockSize <= 0 {
		o.BlockSize = 4 << 10
	}
	return o
}

// Writer builds a table from keys added in strictly ascending order.
type Writer struct {
	w    *bufio.Writer
	file *os.File
	opts WriterOptions

	offset  uint64
	data    blockBuilder
	index   blockBuilder
	keys    [][]byte // retained for the bloom filter
	lastKey []byte
	entries uint64
	first   []byte
	done    bool
}

// NewWriter creates the table file at path (truncating any existing file).
func NewWriter(path string, opts WriterOptions) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("sstable: create: %w", err)
	}
	return &Writer{
		w:    bufio.NewWriterSize(f, 256<<10),
		file: f,
		opts: opts.withDefaults(),
	}, nil
}

// Add appends a key-value entry. Keys must be strictly ascending.
func (w *Writer) Add(key, value []byte) error {
	if w.done {
		return ErrClosed
	}
	if w.entries > 0 && bytes.Compare(key, w.lastKey) <= 0 {
		return fmt.Errorf("%w: %q after %q", ErrOutOfOrder, key, w.lastKey)
	}
	if w.entries == 0 {
		w.first = append([]byte(nil), key...)
	}
	w.data.add(key, value)
	w.lastKey = append(w.lastKey[:0], key...)
	if w.opts.BloomBitsPerKey >= 0 {
		w.keys = append(w.keys, append([]byte(nil), key...))
	}
	w.entries++
	if w.data.estimatedSize() >= w.opts.BlockSize {
		return w.flushDataBlock()
	}
	return nil
}

func (w *Writer) flushDataBlock() error {
	if w.data.empty() {
		return nil
	}
	h, err := w.writeBlock(w.data.finish())
	if err != nil {
		return err
	}
	w.data.reset()
	var hb [16]byte
	h.encode(hb[:])
	w.index.add(w.lastKey, hb[:])
	return nil
}

// writeBlock emits a block plus checksum trailer and returns its handle.
func (w *Writer) writeBlock(raw []byte) (handle, error) {
	h := handle{offset: w.offset, length: uint64(len(raw))}
	if _, err := w.w.Write(raw); err != nil {
		return handle{}, fmt.Errorf("sstable: write block: %w", err)
	}
	var tr [blockTrailerLen]byte
	putU32(tr[:], checksum(raw))
	if _, err := w.w.Write(tr[:]); err != nil {
		return handle{}, fmt.Errorf("sstable: write trailer: %w", err)
	}
	w.offset += uint64(len(raw)) + blockTrailerLen
	return h, nil
}

func putU32(dst []byte, v uint32) {
	dst[0] = byte(v)
	dst[1] = byte(v >> 8)
	dst[2] = byte(v >> 16)
	dst[3] = byte(v >> 24)
}

// Finish flushes remaining entries, writes the filter, index and footer,
// syncs and closes the file. The Writer is unusable afterwards.
func (w *Writer) Finish() error {
	if w.done {
		return ErrClosed
	}
	w.done = true
	if w.entries == 0 {
		w.file.Close()
		os.Remove(w.file.Name())
		return ErrEmptyTable
	}
	if err := w.flushDataBlock(); err != nil {
		w.file.Close()
		return err
	}

	var ft footer
	ft.entries = w.entries

	if w.opts.BloomBitsPerKey >= 0 {
		filter := bloom.New(w.keys, w.opts.BloomBitsPerKey)
		h, err := w.writeBlock(filter)
		if err != nil {
			w.file.Close()
			return err
		}
		ft.bloom = h
	}

	ih, err := w.writeBlock(w.index.finish())
	if err != nil {
		w.file.Close()
		return err
	}
	ft.index = ih

	if _, err := w.w.Write(ft.encode()); err != nil {
		w.file.Close()
		return fmt.Errorf("sstable: write footer: %w", err)
	}
	if err := w.w.Flush(); err != nil {
		w.file.Close()
		return fmt.Errorf("sstable: flush: %w", err)
	}
	if err := w.file.Sync(); err != nil {
		w.file.Close()
		return fmt.Errorf("sstable: sync: %w", err)
	}
	return w.file.Close()
}

// Abort discards the partially written table.
func (w *Writer) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.file.Close()
	os.Remove(w.file.Name())
}

// EntryCount returns the number of entries added so far.
func (w *Writer) EntryCount() uint64 { return w.entries }

// EstimatedSize returns the bytes written plus the pending block.
func (w *Writer) EstimatedSize() uint64 {
	return w.offset + uint64(w.data.estimatedSize())
}
