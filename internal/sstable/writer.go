package sstable

import (
	"bufio"
	"bytes"
	"compress/flate"
	"fmt"
	"hash/crc32"
	"os"

	"tpcxiot/internal/bloom"
)

// WriterOptions configures table construction.
type WriterOptions struct {
	// BlockSize is the uncompressed data-block target in bytes.
	// Defaults to 4 KiB.
	BlockSize int
	// BloomBitsPerKey sizes the table's Bloom filter; 0 selects the
	// package default, negative disables the filter.
	BloomBitsPerKey int
	// Compression selects the data-block encoding. Index and filter blocks
	// stay raw regardless, and a data block that does not shrink is stored
	// raw with its type byte saying so.
	Compression Compression
	// TimestampOf, when non-nil, extracts a timestamp from each added key;
	// the table's min/max time bounds are recorded in the footer and let
	// time-range reads prune the whole file. Keys for which it returns
	// false contribute no bounds.
	TimestampOf func(key []byte) (int64, bool)
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.BlockSize <= 0 {
		o.BlockSize = 4 << 10
	}
	return o
}

// Writer builds a table from keys added in strictly ascending order.
type Writer struct {
	w    *bufio.Writer
	file *os.File
	opts WriterOptions

	offset  uint64
	data    blockBuilder
	index   blockBuilder
	keys    [][]byte // retained for the bloom filter
	lastKey []byte
	entries uint64
	first   []byte
	done    bool

	// Time bounds accumulated from TimestampOf over added keys.
	minTS, maxTS int64
	hasTS        bool

	// Compression ledger over data blocks: raw bytes in, stored bytes out.
	// Both stay zero when compression is off.
	rawIn     int64
	storedOut int64
	flate     *flate.Writer
	cbuf      bytes.Buffer
}

// NewWriter creates the table file at path (truncating any existing file).
func NewWriter(path string, opts WriterOptions) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("sstable: create: %w", err)
	}
	return &Writer{
		w:    bufio.NewWriterSize(f, 256<<10),
		file: f,
		opts: opts.withDefaults(),
	}, nil
}

// Add appends a key-value entry. Keys must be strictly ascending.
func (w *Writer) Add(key, value []byte) error {
	if w.done {
		return ErrClosed
	}
	if w.entries > 0 && bytes.Compare(key, w.lastKey) <= 0 {
		return fmt.Errorf("%w: %q after %q", ErrOutOfOrder, key, w.lastKey)
	}
	if w.entries == 0 {
		w.first = append([]byte(nil), key...)
	}
	if w.opts.TimestampOf != nil {
		if ts, ok := w.opts.TimestampOf(key); ok {
			if !w.hasTS || ts < w.minTS {
				w.minTS = ts
			}
			if !w.hasTS || ts > w.maxTS {
				w.maxTS = ts
			}
			w.hasTS = true
		}
	}
	w.data.add(key, value)
	w.lastKey = append(w.lastKey[:0], key...)
	if w.opts.BloomBitsPerKey >= 0 {
		w.keys = append(w.keys, append([]byte(nil), key...))
	}
	w.entries++
	if w.data.estimatedSize() >= w.opts.BlockSize {
		return w.flushDataBlock()
	}
	return nil
}

func (w *Writer) flushDataBlock() error {
	if w.data.empty() {
		return nil
	}
	h, err := w.writeBlock(w.data.finish(), true)
	if err != nil {
		return err
	}
	w.data.reset()
	var hb [16]byte
	h.encode(hb[:])
	w.index.add(w.lastKey, hb[:])
	return nil
}

// writeBlock emits a block plus its v2 trailer (compression type + CRC over
// payload and type) and returns its handle. Only data blocks are
// compressible; a block that does not shrink stays raw.
func (w *Writer) writeBlock(raw []byte, compressible bool) (handle, error) {
	stored := raw
	ctype := NoCompression
	if compressible && w.opts.Compression == FlateCompression {
		w.rawIn += int64(len(raw))
		if cb, ok := w.compress(raw); ok {
			stored, ctype = cb, FlateCompression
		}
		w.storedOut += int64(len(stored))
	}
	h := handle{offset: w.offset, length: uint64(len(stored))}
	if _, err := w.w.Write(stored); err != nil {
		return handle{}, fmt.Errorf("sstable: write block: %w", err)
	}
	var tr [trailerLenV2]byte
	tr[0] = byte(ctype)
	putU32(tr[1:], crc32.Update(checksum(stored), crcTable, tr[:1]))
	if _, err := w.w.Write(tr[:]); err != nil {
		return handle{}, fmt.Errorf("sstable: write trailer: %w", err)
	}
	w.offset += uint64(len(stored)) + trailerLenV2
	return h, nil
}

// compress DEFLATE-encodes raw into the reusable buffer, reporting false
// when the result would not be smaller (the block is then stored raw).
func (w *Writer) compress(raw []byte) ([]byte, bool) {
	w.cbuf.Reset()
	if w.flate == nil {
		fw, err := flate.NewWriter(&w.cbuf, flate.BestSpeed)
		if err != nil {
			return nil, false
		}
		w.flate = fw
	} else {
		w.flate.Reset(&w.cbuf)
	}
	if _, err := w.flate.Write(raw); err != nil {
		return nil, false
	}
	if err := w.flate.Close(); err != nil {
		return nil, false
	}
	if w.cbuf.Len() >= len(raw) {
		return nil, false
	}
	return w.cbuf.Bytes(), true
}

func putU32(dst []byte, v uint32) {
	dst[0] = byte(v)
	dst[1] = byte(v >> 8)
	dst[2] = byte(v >> 16)
	dst[3] = byte(v >> 24)
}

// Finish flushes remaining entries, writes the filter, index and footer,
// syncs and closes the file. The Writer is unusable afterwards.
func (w *Writer) Finish() error {
	if w.done {
		return ErrClosed
	}
	w.done = true
	if w.entries == 0 {
		w.file.Close()
		os.Remove(w.file.Name())
		return ErrEmptyTable
	}
	if err := w.flushDataBlock(); err != nil {
		w.file.Close()
		return err
	}

	ft := footer{
		entries:     w.entries,
		minTS:       w.minTS,
		maxTS:       w.maxTS,
		hasTS:       w.hasTS,
		compression: w.opts.Compression,
	}

	if w.opts.BloomBitsPerKey >= 0 {
		filter := bloom.New(w.keys, w.opts.BloomBitsPerKey)
		h, err := w.writeBlock(filter, false)
		if err != nil {
			w.file.Close()
			return err
		}
		ft.bloom = h
	}

	ih, err := w.writeBlock(w.index.finish(), false)
	if err != nil {
		w.file.Close()
		return err
	}
	ft.index = ih

	if _, err := w.w.Write(ft.encode()); err != nil {
		w.file.Close()
		return fmt.Errorf("sstable: write footer: %w", err)
	}
	if err := w.w.Flush(); err != nil {
		w.file.Close()
		return fmt.Errorf("sstable: flush: %w", err)
	}
	if err := w.file.Sync(); err != nil {
		w.file.Close()
		return fmt.Errorf("sstable: sync: %w", err)
	}
	return w.file.Close()
}

// Abort discards the partially written table.
func (w *Writer) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.file.Close()
	os.Remove(w.file.Name())
}

// EntryCount returns the number of entries added so far.
func (w *Writer) EntryCount() uint64 { return w.entries }

// EstimatedSize returns the bytes written plus the pending block.
func (w *Writer) EstimatedSize() uint64 {
	return w.offset + uint64(w.data.estimatedSize())
}

// TimeBounds reports the min/max timestamps extracted from added keys so
// far; ok is false when no key carried one.
func (w *Writer) TimeBounds() (min, max int64, ok bool) {
	return w.minTS, w.maxTS, w.hasTS
}

// CompressionStats reports the data-block compression ledger: raw bytes
// offered to the compressor and bytes actually stored. Both are zero when
// compression is off.
func (w *Writer) CompressionStats() (rawIn, storedOut int64) {
	return w.rawIn, w.storedOut
}
