package ycsb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tpcxiot/internal/telemetry"
)

// fixedWorkload issues a fixed number of inserts per thread.
type fixedWorkload struct {
	perThread int
}

type fixedThread struct {
	id, done, quota int
}

func (w *fixedWorkload) NewThread(id, of int) ThreadWorkload {
	return &fixedThread{id: id, quota: w.perThread}
}

func (t *fixedThread) Next(db DB) (OpKind, bool, error) {
	if t.done >= t.quota {
		return 0, true, nil
	}
	t.done++
	key := []byte(fmt.Sprintf("t%d-%06d", t.id, t.done))
	return OpInsert, false, db.Insert(key, []byte("v"))
}

func TestRunCompletesAllThreads(t *testing.T) {
	db := NewMemDB()
	rep, err := Run(
		RunConfig{Threads: 4},
		func(int) (DB, error) { return db, nil },
		&fixedWorkload{perThread: 100},
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops[OpInsert] != 400 {
		t.Fatalf("ops = %d, want 400", rep.Ops[OpInsert])
	}
	if db.Len() != 400 {
		t.Fatalf("db has %d records", db.Len())
	}
	if len(rep.ThreadElapsed) != 4 {
		t.Fatalf("thread elapsed entries: %d", len(rep.ThreadElapsed))
	}
	for i, e := range rep.ThreadElapsed {
		if e <= 0 {
			t.Fatalf("thread %d elapsed %v", i, e)
		}
	}
	if rep.TotalOps() != 400 {
		t.Fatalf("TotalOps = %d", rep.TotalOps())
	}
	if rep.Throughput() <= 0 {
		t.Fatal("zero throughput")
	}
	if rep.Latencies[OpInsert].Count() != 400 {
		t.Fatal("latency histogram missing observations")
	}
}

func TestRunDefaultsToOneThread(t *testing.T) {
	rep, err := Run(RunConfig{}, func(int) (DB, error) { return NewMemDB(), nil },
		&fixedWorkload{perThread: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops[OpInsert] != 5 {
		t.Fatalf("ops = %d", rep.Ops[OpInsert])
	}
}

func TestRunRequiresBindingAndWorkload(t *testing.T) {
	if _, err := Run(RunConfig{}, nil, &fixedWorkload{}); err == nil {
		t.Fatal("nil binding accepted")
	}
	if _, err := Run(RunConfig{}, func(int) (DB, error) { return NewMemDB(), nil }, nil); err == nil {
		t.Fatal("nil workload accepted")
	}
}

// errWorkload fails on the Nth operation of thread 0.
type errWorkload struct {
	failAt int32
	count  atomic.Int32
}

func (w *errWorkload) NewThread(id, of int) ThreadWorkload { return (*errThread)(w) }

type errThread errWorkload

func (t *errThread) Next(db DB) (OpKind, bool, error) {
	n := t.count.Add(1)
	if n == t.failAt {
		return 0, false, errors.New("injected failure")
	}
	if n > 1000 {
		return 0, true, nil
	}
	return OpInsert, false, db.Insert([]byte(fmt.Sprintf("k%d", n)), []byte("v"))
}

func TestRunStopsOnWorkerError(t *testing.T) {
	w := &errWorkload{failAt: 50}
	rep, err := Run(RunConfig{Threads: 4}, func(int) (DB, error) { return NewMemDB(), nil }, w)
	if err == nil {
		t.Fatal("worker error not surfaced")
	}
	if rep.Err == nil {
		t.Fatal("report missing error")
	}
	// All threads must have stopped well short of their quotas.
	if total := w.count.Load(); total > 3000 {
		t.Fatalf("threads kept running after error: %d ops", total)
	}
}

func TestBindingErrorSurfaced(t *testing.T) {
	_, err := Run(RunConfig{Threads: 2},
		func(th int) (DB, error) {
			if th == 1 {
				return nil, errors.New("no connection")
			}
			return NewMemDB(), nil
		},
		&fixedWorkload{perThread: 10})
	if err == nil {
		t.Fatal("binding error not surfaced")
	}
}

func TestThrottleLimitsThroughput(t *testing.T) {
	rep, err := Run(
		RunConfig{Threads: 2, TargetOpsPerSec: 200},
		func(int) (DB, error) { return NewMemDB(), nil },
		&fixedWorkload{perThread: 30}, // 60 ops at 200/s => >= 300 ms
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elapsed() < 250*time.Millisecond {
		t.Fatalf("throttled run finished in %v, want >= 250ms", rep.Elapsed())
	}
}

func TestPacedRunRecordsIntendedLatency(t *testing.T) {
	reg := telemetry.NewRegistry()
	rep, err := Run(
		RunConfig{Threads: 2, TargetOpsPerSec: 2000, Registry: reg},
		func(int) (DB, error) { return NewMemDB(), nil },
		&fixedWorkload{perThread: 50},
	)
	if err != nil {
		t.Fatal(err)
	}
	in, ok := rep.Intended[OpInsert]
	if !ok || in.Count() != 100 {
		t.Fatalf("intended distribution missing or short: %d obs", in.Count())
	}
	// Intended latency is measured from the scheduled start, which never
	// follows the actual start: every observation dominates its service
	// counterpart, so the distributions' means are ordered.
	if in.Mean() < rep.Latencies[OpInsert].Mean() {
		t.Fatalf("intended mean %.0fns below service mean %.0fns",
			in.Mean(), rep.Latencies[OpInsert].Mean())
	}
	// The registry carries the same split for the telemetry ticker.
	sum := reg.Summary()
	if snap, ok := sum.Histogram("intended.INSERT"); !ok || snap.Count() != 100 {
		t.Fatalf("registry intended.INSERT missing: ok=%v count=%d", ok, snap.Count())
	}
}

func TestUnpacedRunHasNoIntendedDistribution(t *testing.T) {
	rep, err := Run(RunConfig{Threads: 2},
		func(int) (DB, error) { return NewMemDB(), nil },
		&fixedWorkload{perThread: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Intended) != 0 {
		t.Fatalf("open-loop run recorded intended latency: %v", rep.Intended)
	}
}

// stallDB delays exactly one insert (the stallAt-th) by stallFor, leaving
// every other operation fast — the canonical coordinated-omission shape.
type stallDB struct {
	DB
	n        atomic.Int64
	stallAt  int64
	stallFor time.Duration
}

func (s *stallDB) Insert(key, value []byte) error {
	if s.n.Add(1) == s.stallAt {
		time.Sleep(s.stallFor)
	}
	return s.DB.Insert(key, value)
}

func TestIntendedLatencyExposesStall(t *testing.T) {
	// One thread paced at 1000 ops/s issues 600 ops; op 100 stalls 300 ms.
	// Exactly one op has a slow service time, but the fixed schedule puts
	// ~300 subsequent ops behind their intended starts, so the intended
	// distribution carries the backlog the service histogram hides: its
	// mean is dominated by the stall while the service median stays tiny.
	db := &stallDB{DB: NewMemDB(), stallAt: 100, stallFor: 300 * time.Millisecond}
	rep, err := Run(
		RunConfig{Threads: 1, TargetOpsPerSec: 1000},
		func(int) (DB, error) { return db, nil },
		&fixedWorkload{perThread: 600},
	)
	if err != nil {
		t.Fatal(err)
	}
	service := rep.Latencies[OpInsert]
	in := rep.Intended[OpInsert]
	if service.Percentile(50) > (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("service median %.2fms — stall leaked into unrelated ops",
			float64(service.Percentile(50))/1e6)
	}
	if in.Mean() < (30 * time.Millisecond).Seconds()*1e9 {
		t.Fatalf("intended mean %.2fms too low — backlog not charged to the schedule",
			in.Mean()/1e6)
	}
	if in.Mean() < 10*float64(service.Percentile(50)) {
		t.Fatalf("intended mean %.2fms does not dominate service median %.2fms",
			in.Mean()/1e6, float64(service.Percentile(50))/1e6)
	}
}

func TestOpKindString(t *testing.T) {
	want := map[OpKind]string{
		OpInsert: "INSERT", OpRead: "READ", OpScan: "SCAN", OpQuery: "QUERY",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
	if OpKind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestMemDBScanSemantics(t *testing.T) {
	db := NewMemDB()
	for i := 0; i < 10; i++ {
		db.Insert([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	rows, err := db.Scan([]byte("k03"), []byte("k07"), 0)
	if err != nil || len(rows) != 4 {
		t.Fatalf("scan = %d rows, %v", len(rows), err)
	}
	if string(rows[0].Key) != "k03" || string(rows[3].Key) != "k06" {
		t.Fatalf("scan bounds wrong: %q..%q", rows[0].Key, rows[3].Key)
	}
	rows, _ = db.Scan([]byte("k00"), nil, 3)
	if len(rows) != 3 {
		t.Fatalf("limited scan = %d rows", len(rows))
	}
	// Overwrite does not duplicate keys.
	db.Insert([]byte("k05"), []byte("new"))
	if db.Len() != 10 {
		t.Fatalf("overwrite changed Len to %d", db.Len())
	}
	v, ok, _ := db.Read([]byte("k05"))
	if !ok || string(v) != "new" {
		t.Fatalf("overwrite lost: %q", v)
	}
}

func TestCoreWorkloadMix(t *testing.T) {
	db := NewMemDB()
	w := &CoreWorkload{
		RecordCount:      1000,
		OperationCount:   3000,
		ReadProportion:   0.5,
		InsertProportion: 0.3,
		ScanProportion:   0.2,
		Zipfian:          true,
		Seed:             7,
	}
	if err := w.Load(db); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1000 {
		t.Fatalf("load phase stored %d records", db.Len())
	}
	rep, err := Run(RunConfig{Threads: 3}, func(int) (DB, error) { return db, nil }, w)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalOps() != 3000 {
		t.Fatalf("TotalOps = %d, want 3000", rep.TotalOps())
	}
	// Proportions should be roughly honoured.
	frac := func(k OpKind) float64 { return float64(rep.Ops[k]) / 3000 }
	if f := frac(OpRead); f < 0.42 || f > 0.58 {
		t.Fatalf("read fraction %.3f, want ~0.5", f)
	}
	if f := frac(OpInsert); f < 0.23 || f > 0.37 {
		t.Fatalf("insert fraction %.3f, want ~0.3", f)
	}
	if f := frac(OpScan); f < 0.14 || f > 0.26 {
		t.Fatalf("scan fraction %.3f, want ~0.2", f)
	}
	// Inserts grew the population and never collided with loaded keys.
	if int64(db.Len()) != 1000+rep.Ops[OpInsert] {
		t.Fatalf("db has %d records after %d inserts", db.Len(), rep.Ops[OpInsert])
	}
}

func TestCoreWorkloadQuotaSplit(t *testing.T) {
	// 10 ops across 4 threads: 3+3+2+2.
	w := &CoreWorkload{RecordCount: 10, OperationCount: 10, ReadProportion: 1, Seed: 1}
	db := NewMemDB()
	w.Load(db)
	rep, err := Run(RunConfig{Threads: 4}, func(int) (DB, error) { return db, nil }, w)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalOps() != 10 {
		t.Fatalf("TotalOps = %d, want exactly 10", rep.TotalOps())
	}
}

func TestStatusReporting(t *testing.T) {
	var mu sync.Mutex
	var snaps []Status
	_, err := Run(
		RunConfig{
			Threads:         2,
			TargetOpsPerSec: 2000, // stretch the run past a few intervals
			StatusInterval:  20 * time.Millisecond,
			Status: func(s Status) {
				mu.Lock()
				snaps = append(snaps, s)
				mu.Unlock()
			},
		},
		func(int) (DB, error) { return NewMemDB(), nil },
		&fixedWorkload{perThread: 120},
	)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) == 0 {
		t.Fatal("no status snapshots delivered")
	}
	last := snaps[len(snaps)-1]
	if last.Total() == 0 || last.Ops[OpInsert] == 0 {
		t.Fatalf("status counters empty: %+v", last)
	}
	if last.Elapsed <= 0 {
		t.Fatal("status elapsed not positive")
	}
	if last.String() == "" {
		t.Fatal("empty status line")
	}
	// Counts must be monotone across snapshots.
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Total() < snaps[i-1].Total() {
			t.Fatal("status counters went backwards")
		}
	}
}

func TestStatusDisabledByDefault(t *testing.T) {
	called := false
	_, err := Run(
		RunConfig{Threads: 1, Status: func(Status) { called = true }},
		func(int) (DB, error) { return NewMemDB(), nil },
		&fixedWorkload{perThread: 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("status callback fired without an interval")
	}
}
