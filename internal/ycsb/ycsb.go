// Package ycsb is a YCSB-style workload framework: a database interface
// layer, a pluggable workload abstraction, a multi-threaded client runner,
// and latency/throughput measurement.
//
// TPCx-IoT built its workload driver by adapting the Yahoo! Cloud Serving
// Benchmark (Section III-C of the paper): YCSB supplies the client
// architecture — N worker threads per driver instance issuing operations
// against a DB binding, with per-operation-type latency measurement — and
// TPCx-IoT adds sensor-key generation and range-scan queries. This package
// is that framework; the TPCx-IoT specifics live in the workload package.
package ycsb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tpcxiot/internal/histogram"
	"tpcxiot/internal/telemetry"
)

// KV is one row returned by a scan.
type KV struct {
	Key   []byte
	Value []byte
}

// DB is the database interface layer. Implementations ("bindings") connect
// the framework to a concrete store: the live mini-HBase cluster, the
// discrete-event testbed, or an in-memory stub for tests.
//
// Bindings returned by a Binding factory are used by a single thread at a
// time; the factory is called once per worker thread.
type DB interface {
	// Insert stores one key-value pair.
	Insert(key, value []byte) error
	// Read fetches one key.
	Read(key []byte) (value []byte, found bool, err error)
	// Scan returns rows with lo <= key < hi, at most limit (0 = unlimited),
	// materialized as one slice.
	Scan(lo, hi []byte, limit int) ([]KV, error)
	// ScanIter streams the same rows one at a time, in O(1) binding-side
	// memory for backends with a streaming scan path. The caller must
	// Close the iterator.
	ScanIter(lo, hi []byte, limit int) (RowIter, error)
	// Close releases the binding.
	Close() error
}

// AggFuncs is a bitmask of server-side aggregate functions. The values
// mirror the storage engine's lsm.AggFuncs one for one, so bindings convert
// with a plain cast.
type AggFuncs uint8

// Aggregate function flags.
const (
	AggCount AggFuncs = 1 << iota
	AggMin
	AggMax
	AggSum
	AggAvg
)

// AggWindow is one per-series, per-window partial aggregate returned by an
// aggregating binding. Partials merge exactly: counts and sums add, min/max
// take extrema, and the mean is always derived from (Sum, Count).
type AggWindow struct {
	Series      []byte
	WindowStart int64 // unix ms, inclusive
	Count       int64
	Min         float64
	Max         float64
	Sum         float64
}

// Avg derives the window mean; 0 for an empty window.
func (w AggWindow) Avg() float64 {
	if w.Count == 0 {
		return 0
	}
	return w.Sum / float64(w.Count)
}

// Aggregator is an optional DB capability: bindings whose backend evaluates
// windowed aggregation inside the storage tier implement it, and workloads
// route dashboard queries through it instead of streaming raw rows.
// Aggregate folds rows with lo <= key < hi and minTS <= timestamp < maxTS
// into per-(series, window) partials (windowMS = 0 means one window
// spanning the whole range) and reports how many rows were reduced
// server-side. Workloads must fall back to the streamed scan path when the
// binding does not implement this interface.
type Aggregator interface {
	Aggregate(lo, hi []byte, minTS, maxTS, windowMS int64, funcs AggFuncs) (windows []AggWindow, rowsFolded int64, err error)
}

// RowIter streams scan rows in key order. Next returns ok=false with a nil
// error when the scan is exhausted. The returned KV's slices are only valid
// until the following Next or Close call — callers that retain rows must
// copy them. A RowIter serves a single goroutine and must be closed.
type RowIter interface {
	Next() (kv KV, ok bool, err error)
	Close() error
}

// SliceIter adapts a materialized row slice to RowIter, for bindings whose
// backend has no streaming scan (rows are owned, so they stay valid across
// calls).
func SliceIter(rows []KV) RowIter { return &sliceIter{rows: rows} }

type sliceIter struct {
	rows []KV
	i    int
}

func (s *sliceIter) Next() (KV, bool, error) {
	if s.i >= len(s.rows) {
		return KV{}, false, nil
	}
	kv := s.rows[s.i]
	s.i++
	return kv, true, nil
}

func (s *sliceIter) Close() error { return nil }

// Binding creates one DB connection per worker thread.
type Binding func(thread int) (DB, error)

// OpKind classifies operations for measurement.
type OpKind int

// Operation kinds.
const (
	OpInsert OpKind = iota
	OpRead
	OpScan
	OpQuery // TPCx-IoT analytic query (two scans + aggregation)
	opKinds
)

// String names the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "INSERT"
	case OpRead:
		return "READ"
	case OpScan:
		return "SCAN"
	case OpQuery:
		return "QUERY"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// ThreadWorkload issues a thread's operations. Next executes the next
// operation against db and reports its kind; done=true (with the other
// results ignored) signals the thread's quota is exhausted.
type ThreadWorkload interface {
	Next(db DB) (kind OpKind, done bool, err error)
}

// Workload builds per-thread operation streams. NewThread is called once
// for each worker, with the worker's index and the total worker count.
type Workload interface {
	NewThread(id, of int) ThreadWorkload
}

// RunConfig configures a client run.
type RunConfig struct {
	// Threads is the number of worker goroutines. Defaults to 1.
	Threads int
	// TargetOpsPerSec paces the aggregate operation rate across all
	// threads against a fixed intended-start schedule: thread t's i-th
	// operation is *supposed* to start at threadStart + i/perThreadRate,
	// and the worker sleeps until that instant when it is early. Pacing
	// makes two latencies measurable per operation: service time (from
	// the actual start) and intended latency (from the scheduled start,
	// the coordinated-omission-corrected number — a stalled system delays
	// the ops queued behind the stall, and only the intended measurement
	// charges that delay to the system instead of silently not issuing
	// them). 0 means unpaced open-loop (the classic TPCx-IoT mode), which
	// records service time only.
	TargetOpsPerSec float64
	// StatusInterval, when positive, invokes Status on that period with a
	// progress snapshot — YCSB's periodic status line.
	StatusInterval time.Duration
	// Status receives the periodic snapshots; ignored when StatusInterval
	// is zero. Called from a dedicated goroutine.
	Status func(Status)
	// Registry, when non-nil, additionally receives every operation latency
	// in the shared histograms "op.INSERT", "op.READ", "op.SCAN" and
	// "op.QUERY" — and, when the run is paced, every intended latency in
	// "intended.INSERT" etc., so a telemetry Ticker surfaces both
	// distributions per interval. The run's own Report is unaffected; the
	// registry gives the Ticker a cluster-wide cross-instance view.
	Registry *telemetry.Registry
}

// Status is one periodic progress snapshot of a running workload.
type Status struct {
	// Elapsed is time since the run started.
	Elapsed time.Duration
	// Ops counts operations completed so far, per kind.
	Ops [4]int64
	// CurrentOpsPerSec is the throughput over the last interval.
	CurrentOpsPerSec float64
}

// Total sums the snapshot's per-kind counters.
func (s Status) Total() int64 {
	var n int64
	for _, c := range s.Ops {
		n += c
	}
	return n
}

// String renders the snapshot as a YCSB-style status line.
func (s Status) String() string {
	return fmt.Sprintf("%8.0fs: %d ops, %.0f ops/s (insert %d, read %d, scan %d, query %d)",
		s.Elapsed.Seconds(), s.Total(), s.CurrentOpsPerSec,
		s.Ops[OpInsert], s.Ops[OpRead], s.Ops[OpScan], s.Ops[OpQuery])
}

// Report is the outcome of one client run.
type Report struct {
	// Start and End bound the measured interval.
	Start, End time.Time
	// Latencies holds one service-time distribution per operation kind
	// (nanoseconds, measured from the operation's actual start).
	Latencies map[OpKind]histogram.Snapshot
	// Intended holds one intended-latency distribution per operation kind
	// (nanoseconds, measured from the operation's scheduled start — the
	// coordinated-omission-corrected view). Empty for unpaced runs.
	Intended map[OpKind]histogram.Snapshot
	// Ops counts completed operations per kind.
	Ops map[OpKind]int64
	// ThreadElapsed records each worker's wall-clock run time.
	ThreadElapsed []time.Duration
	// Err is the first worker error, if any.
	Err error
}

// Elapsed returns the run's wall-clock duration.
func (r *Report) Elapsed() time.Duration { return r.End.Sub(r.Start) }

// TotalOps sums completed operations across kinds.
func (r *Report) TotalOps() int64 {
	var n int64
	for _, c := range r.Ops {
		n += c
	}
	return n
}

// Throughput returns completed operations per second over the run.
func (r *Report) Throughput() float64 {
	el := r.Elapsed().Seconds()
	if el <= 0 {
		return 0
	}
	return float64(r.TotalOps()) / el
}

// Run drives the workload with cfg.Threads workers and collects measurement.
// Each worker gets its own DB from the binding and its own ThreadWorkload.
// Run returns when every thread's workload reports done or any thread fails.
func Run(cfg RunConfig, binding Binding, w Workload) (*Report, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if binding == nil || w == nil {
		return nil, errors.New("ycsb: binding and workload are required")
	}

	hists := make([]*histogram.Histogram, opKinds)
	shared := make([]*histogram.Histogram, opKinds)
	intended := make([]*histogram.Histogram, opKinds)
	sharedIntended := make([]*histogram.Histogram, opKinds)
	for i := range hists {
		hists[i] = histogram.New()
		if cfg.Registry != nil {
			shared[i] = cfg.Registry.Histogram("op." + OpKind(i).String())
		}
		if cfg.TargetOpsPerSec > 0 {
			intended[i] = histogram.New()
			if cfg.Registry != nil {
				sharedIntended[i] = cfg.Registry.Histogram("intended." + OpKind(i).String())
			}
		}
	}
	var opCounts [opKinds]atomic.Int64

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		elapsed  = make([]time.Duration, cfg.Threads)
	)
	perThreadTarget := 0.0
	if cfg.TargetOpsPerSec > 0 {
		perThreadTarget = cfg.TargetOpsPerSec / float64(cfg.Threads)
	}

	start := time.Now()

	// Periodic status reporting, YCSB-style.
	statusDone := make(chan struct{})
	statusStopped := make(chan struct{})
	if cfg.StatusInterval > 0 && cfg.Status != nil {
		go func() {
			defer close(statusStopped)
			ticker := time.NewTicker(cfg.StatusInterval)
			defer ticker.Stop()
			var lastTotal int64
			for {
				select {
				case <-statusDone:
					return
				case <-ticker.C:
					var snap Status
					snap.Elapsed = time.Since(start)
					for k := 0; k < int(opKinds); k++ {
						snap.Ops[k] = opCounts[k].Load()
					}
					total := snap.Total()
					snap.CurrentOpsPerSec = float64(total-lastTotal) /
						cfg.StatusInterval.Seconds()
					lastTotal = total
					cfg.Status(snap)
				}
			}
		}()
	} else {
		close(statusStopped)
	}

	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			threadStart := time.Now()
			defer func() { elapsed[t] = time.Since(threadStart) }()

			db, err := binding(t)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("ycsb: thread %d binding: %w", t, err)
				}
				mu.Unlock()
				return
			}
			defer db.Close()

			tw := w.NewThread(t, cfg.Threads)
			var opsDone int64
			for {
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					return
				}

				// Intended-start schedule: op i of this thread is due at
				// threadStart + i/perThreadTarget. An early worker sleeps
				// until the due time; a late worker issues immediately and
				// the schedule does NOT slip — the backlog shows up as
				// intended latency on every delayed op.
				var intendedStart time.Time
				if perThreadTarget > 0 {
					intendedStart = threadStart.Add(
						time.Duration(float64(opsDone) / perThreadTarget * float64(time.Second)))
					if wait := time.Until(intendedStart); wait > 0 {
						time.Sleep(wait)
					}
				}

				opStart := time.Now()
				kind, done, err := tw.Next(db)
				if done {
					return
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("ycsb: thread %d op: %w", t, err)
					}
					mu.Unlock()
					return
				}
				opEnd := time.Now()
				lat := opEnd.Sub(opStart).Nanoseconds()
				hists[kind].Record(lat)
				if shared[kind] != nil {
					shared[kind].Record(lat)
				}
				if perThreadTarget > 0 {
					// opStart >= intendedStart always, so the intended
					// latency dominates the service time: the two agree on
					// a healthy run and diverge exactly when the system
					// pushes the schedule behind.
					ilat := opEnd.Sub(intendedStart).Nanoseconds()
					intended[kind].Record(ilat)
					if sharedIntended[kind] != nil {
						sharedIntended[kind].Record(ilat)
					}
				}
				opCounts[kind].Add(1)
				opsDone++
			}
		}(t)
	}
	wg.Wait()
	close(statusDone)
	<-statusStopped
	end := time.Now()

	rep := &Report{
		Start:         start,
		End:           end,
		Latencies:     make(map[OpKind]histogram.Snapshot, opKinds),
		Intended:      make(map[OpKind]histogram.Snapshot, opKinds),
		Ops:           make(map[OpKind]int64, opKinds),
		ThreadElapsed: elapsed,
		Err:           firstErr,
	}
	for k := OpKind(0); k < opKinds; k++ {
		snap := hists[k].Snapshot()
		if snap.Count() > 0 {
			rep.Latencies[k] = snap
			rep.Ops[k] = snap.Count()
		}
		if intended[k] != nil {
			if isnap := intended[k].Snapshot(); isnap.Count() > 0 {
				rep.Intended[k] = isnap
			}
		}
	}
	return rep, firstErr
}
