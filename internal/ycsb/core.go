package ycsb

import (
	"fmt"
	"sync"

	"tpcxiot/internal/gen"
)

// CoreWorkload is a classic YCSB-style mixed workload over numbered records:
// a load phase of sequential inserts followed by a transaction phase mixing
// reads, inserts and short scans. TPCx-IoT replaces it with the sensor
// workload; it is retained because the framework is general and because it
// exercises the generator layer end to end.
type CoreWorkload struct {
	// RecordCount is the initially loaded key population.
	RecordCount int64
	// OperationCount is the number of transaction-phase ops per run
	// (divided across threads).
	OperationCount int64
	// ReadProportion, InsertProportion and ScanProportion must sum to ~1.
	ReadProportion   float64
	InsertProportion float64
	ScanProportion   float64
	// MaxScanLength bounds scan sizes. Defaults to 100.
	MaxScanLength int
	// Zipfian selects hot-spot key choice for reads; false = uniform.
	Zipfian bool
	// ValueSize is the payload size in bytes. Defaults to 100.
	ValueSize int
	// Seed makes runs reproducible.
	Seed uint64

	counterOnce   sync.Once
	insertCounter *gen.Counter
}

// CoreKey renders record ordinal n as its key.
func CoreKey(n int64) []byte {
	return []byte(fmt.Sprintf("user%019d", n))
}

// Load performs the load phase through db, inserting RecordCount records.
func (c *CoreWorkload) Load(db DB) error {
	rng := gen.NewRNG(c.Seed)
	val := make([]byte, c.valueSize())
	for i := int64(0); i < c.RecordCount; i++ {
		gen.Text(rng, val)
		if err := db.Insert(CoreKey(i), val); err != nil {
			return fmt.Errorf("ycsb: core load at %d: %w", i, err)
		}
	}
	return nil
}

func (c *CoreWorkload) valueSize() int {
	if c.ValueSize <= 0 {
		return 100
	}
	return c.ValueSize
}

// NewThread implements Workload.
func (c *CoreWorkload) NewThread(id, of int) ThreadWorkload {
	c.counterOnce.Do(func() {
		c.insertCounter = gen.NewCounter(c.RecordCount)
	})
	quota := c.OperationCount / int64(of)
	if int64(id) < c.OperationCount%int64(of) {
		quota++
	}
	rng := gen.NewRNG(c.Seed + uint64(id)*0x9e37 + 1)
	t := &coreThread{
		w:     c,
		rng:   rng,
		quota: quota,
		val:   make([]byte, c.valueSize()),
	}
	if c.RecordCount > 0 {
		if c.Zipfian {
			t.chooser = gen.NewZipfian(rng.Split(), c.RecordCount)
		} else {
			t.chooser = gen.NewUniform(rng.Split(), 0, c.RecordCount-1)
		}
	}
	t.opPicker = gen.NewDiscrete(rng.Split(),
		[]int64{int64(OpRead), int64(OpInsert), int64(OpScan)},
		[]float64{c.ReadProportion, c.InsertProportion, c.ScanProportion})
	return t
}

type coreThread struct {
	w        *CoreWorkload
	rng      *gen.RNG
	chooser  gen.IntGenerator
	opPicker *gen.Discrete
	quota    int64
	done     int64
	val      []byte
}

// Next implements ThreadWorkload.
func (t *coreThread) Next(db DB) (OpKind, bool, error) {
	if t.done >= t.quota {
		return 0, true, nil
	}
	t.done++
	switch OpKind(t.opPicker.Next()) {
	case OpInsert:
		n := t.w.insertCounter.Next()
		gen.Text(t.rng, t.val)
		return OpInsert, false, db.Insert(CoreKey(n), t.val)
	case OpScan:
		n := t.chooser.Next()
		maxLen := t.w.MaxScanLength
		if maxLen <= 0 {
			maxLen = 100
		}
		length := int(t.rng.Int63n(int64(maxLen))) + 1
		_, err := db.Scan(CoreKey(n), nil, length)
		return OpScan, false, err
	default: // OpRead
		n := t.chooser.Next()
		_, _, err := db.Read(CoreKey(n))
		return OpRead, false, err
	}
}
