package ycsb

import (
	"bytes"
	"sort"
	"sync"
)

// MemDB is a sorted in-memory DB binding used by framework tests and as a
// reference implementation for bindings. Safe for concurrent use, so one
// instance may back every thread. Inserts are O(1); the sorted view is
// rebuilt lazily on the first scan after a write.
type MemDB struct {
	mu    sync.RWMutex
	keys  [][]byte // sorted when !dirty
	dirty bool
	vals  map[string][]byte
}

// NewMemDB returns an empty in-memory binding.
func NewMemDB() *MemDB {
	return &MemDB{vals: make(map[string][]byte)}
}

// Insert implements DB.
func (m *MemDB) Insert(key, value []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.vals[string(key)]; !exists {
		m.keys = append(m.keys, append([]byte(nil), key...))
		m.dirty = true
	}
	m.vals[string(key)] = append([]byte(nil), value...)
	return nil
}

// Read implements DB.
func (m *MemDB) Read(key []byte) ([]byte, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, ok := m.vals[string(key)]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// sortLocked re-sorts the key index if needed. Caller holds the write lock.
func (m *MemDB) sortLocked() {
	if !m.dirty {
		return
	}
	sort.Slice(m.keys, func(i, j int) bool { return bytes.Compare(m.keys[i], m.keys[j]) < 0 })
	m.dirty = false
}

// Scan implements DB.
func (m *MemDB) Scan(lo, hi []byte, limit int) ([]KV, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sortLocked()
	start := sort.Search(len(m.keys), func(i int) bool {
		return bytes.Compare(m.keys[i], lo) >= 0
	})
	var out []KV
	for i := start; i < len(m.keys); i++ {
		if hi != nil && bytes.Compare(m.keys[i], hi) >= 0 {
			break
		}
		if limit > 0 && len(out) >= limit {
			break
		}
		k := m.keys[i]
		out = append(out, KV{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), m.vals[string(k)]...),
		})
	}
	return out, nil
}

// ScanIter implements DB by materializing under the lock and streaming the
// copy — the reference binding has no streaming backend.
func (m *MemDB) ScanIter(lo, hi []byte, limit int) (RowIter, error) {
	rows, err := m.Scan(lo, hi, limit)
	if err != nil {
		return nil, err
	}
	return SliceIter(rows), nil
}

// Len returns the number of stored records.
func (m *MemDB) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.keys)
}

// Close implements DB; it is a no-op so one MemDB can serve many threads.
func (m *MemDB) Close() error { return nil }
