package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"tpcxiot/internal/telemetry"
	"tpcxiot/internal/wal"
)

func TestApplyBatchBasics(t *testing.T) {
	s := openTest(t, Options{})
	if err := s.ApplyBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	batch := []Write{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("b"), Value: []byte("2")},
		{Key: []byte("c"), Value: []byte("3")},
		{Key: []byte("b"), Delete: true},
	}
	if err := s.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	for _, kv := range []struct{ k, v string }{{"a", "1"}, {"c", "3"}} {
		got, ok, err := s.Get([]byte(kv.k))
		if err != nil || !ok || string(got) != kv.v {
			t.Fatalf("Get(%q) = %q,%v,%v", kv.k, got, ok, err)
		}
	}
	if _, ok, _ := s.Get([]byte("b")); ok {
		t.Fatal("in-batch delete did not shadow the preceding put")
	}
	st := s.Stats()
	if st.Puts != 3 || st.Deletes != 1 || st.BatchApplies != 1 {
		t.Fatalf("stats = %+v, want 3 puts, 1 delete, 1 batch apply", st)
	}
}

func TestApplyBatchRejectsEmptyKeyAtomically(t *testing.T) {
	s := openTest(t, Options{})
	batch := []Write{
		{Key: []byte("good"), Value: []byte("v")},
		{Key: nil, Value: []byte("v")},
	}
	if err := s.ApplyBatch(batch); !errors.Is(err, ErrBadKey) {
		t.Fatalf("batch with empty key: %v", err)
	}
	// Validation happens before the WAL append, so nothing landed.
	if _, ok, _ := s.Get([]byte("good")); ok {
		t.Fatal("rejected batch partially applied")
	}
}

func TestApplyBatchTelemetryAndWALGrouping(t *testing.T) {
	reg := telemetry.NewRegistry()
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, WALSync: wal.SyncOnAppend, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const batches, perBatch = 5, 32
	for b := 0; b < batches; b++ {
		batch := make([]Write, perBatch)
		for i := range batch {
			batch[i] = Write{
				Key:   []byte(fmt.Sprintf("k-%02d-%03d", b, i)),
				Value: []byte("v"),
			}
		}
		if err := s.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("lsm.batch_applies").Load(); got != batches {
		t.Fatalf("lsm.batch_applies = %d, want %d", got, batches)
	}
	if got := reg.Counter("wal.appends").Load(); got != batches*perBatch {
		t.Fatalf("wal.appends = %d, want %d records", got, batches*perBatch)
	}
	// One group append per batch means ~one fsync per batch, never one per
	// record (a lone writer gets exactly one per batch).
	if syncs := reg.Counter("wal.syncs").Load(); syncs > batches {
		t.Fatalf("wal.syncs = %d for %d batches; batch appends are not group-committed", syncs, batches)
	}
}

func TestApplyBatchAutoFlush(t *testing.T) {
	s := openTest(t, Options{MemtableSize: 4 << 10})
	big := bytes.Repeat([]byte{'x'}, 512)
	batch := make([]Write, 16) // 16 * (512+12) > 4 KiB: crosses the threshold
	for i := range batch {
		batch[i] = Write{Key: []byte(fmt.Sprintf("flush-key-%03d", i)), Value: big}
	}
	if err := s.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil { // drain any in-flight rotation
		t.Fatal(err)
	}
	if s.Stats().Flushes == 0 {
		t.Fatal("batch crossing the memtable threshold never flushed")
	}
	for i := range batch {
		if _, ok, _ := s.Get(batch[i].Key); !ok {
			t.Fatalf("key %d lost across batch-triggered flush", i)
		}
	}
}

// TestBatchCrashRecoveryParity writes the same mutation sequence through
// ApplyBatch and through per-key Put/Delete, crashes both stores before any
// flush, and asserts WAL replay recovers identical contents: a batch is one
// group append on the wire but record-per-mutation for recovery.
func TestBatchCrashRecoveryParity(t *testing.T) {
	var ops []Write
	for i := 0; i < 200; i++ {
		ops = append(ops, Write{
			Key:   []byte(fmt.Sprintf("key-%03d", i%64)), // collisions: overwrites
			Value: []byte(fmt.Sprintf("val-%04d", i)),
		})
		if i%7 == 0 {
			ops = append(ops, Write{Key: []byte(fmt.Sprintf("key-%03d", (i+3)%64)), Delete: true})
		}
	}

	batchDir, keyDir := t.TempDir(), t.TempDir()
	open := func(dir string) *Store {
		s, err := Open(Options{Dir: dir, WALSync: wal.SyncNever, DisableAutoFlush: true})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	sb := open(batchDir)
	// Apply in batches of 16.
	for i := 0; i < len(ops); i += 16 {
		end := i + 16
		if end > len(ops) {
			end = len(ops)
		}
		if err := sb.ApplyBatch(ops[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	crashStore(t, sb)

	sk := open(keyDir)
	for _, w := range ops {
		var err error
		if w.Delete {
			err = sk.Delete(w.Key)
		} else {
			err = sk.Put(w.Key, w.Value)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	crashStore(t, sk)

	rb, rk := open(batchDir), open(keyDir)
	defer rb.Close()
	defer rk.Close()
	collect := func(s *Store) map[string]string {
		out := map[string]string{}
		if err := s.Scan(nil, nil, func(k, v []byte) error {
			out[string(k)] = string(v)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	got, want := collect(rb), collect(rk)
	if len(got) != len(want) {
		t.Fatalf("batched path recovered %d keys, per-key path %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %q: batched path recovered %q, per-key path %q", k, got[k], v)
		}
	}
}

// TestConcurrentApplyBatchScanCompact races batched writers against scans
// and forced compactions; run under -race it checks the single-critical-
// section apply publishes safely.
func TestConcurrentApplyBatchScanCompact(t *testing.T) {
	s := openTest(t, Options{MemtableSize: 16 << 10, CompactTrigger: 3})
	const writers, batchesPerWriter, batchSize = 3, 60, 24
	const totalWrites = writers * batchesPerWriter * batchSize

	var writeWG, auxWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			val := bytes.Repeat([]byte{'v'}, 128)
			for i := 0; i < batchesPerWriter; i++ {
				batch := make([]Write, batchSize)
				for j := range batch {
					batch[j] = Write{
						Key:   []byte(fmt.Sprintf("w%d-%04d-%02d", w, i, j)),
						Value: val,
					}
				}
				if err := s.ApplyBatch(batch); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Scan(nil, nil, func(k, v []byte) error { return nil }); err != nil {
				t.Errorf("scan: %v", err)
				return
			}
		}
	}()
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()

	writeWG.Wait()
	close(stop)
	auxWG.Wait()
	if t.Failed() {
		return
	}
	n := 0
	if err := s.Scan(nil, nil, func(k, v []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != totalWrites {
		t.Fatalf("scan found %d keys, want %d", n, totalWrites)
	}
}
