// Package lsm implements the log-structured storage engine beneath a region
// server: an in-memory memtable in front of a write-ahead log and a set of
// immutable SSTables, with background flush and compaction.
//
// The moving parts correspond one-to-one with the HBase store the paper
// benchmarks:
//
//   - the memtable is the memstore; MemtableSize plays the role of the
//     flush threshold,
//   - the WAL segment cap models "maximum number of WAL files = 128",
//   - MaxStoreFiles models hbase.hstore.blockingStoreFiles: when a store
//     accumulates that many files, writes block until compaction catches up.
//
// Writes are durable (per the WAL sync policy) before they are visible.
// Reads merge the active memtable, the flushing memtable, and the store
// files newest-first. Deletes are tombstones that full compactions drop.
package lsm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tpcxiot/internal/kvp"
	"tpcxiot/internal/memtable"
	"tpcxiot/internal/sstable"
	"tpcxiot/internal/telemetry"
	"tpcxiot/internal/wal"
)

// Sentinel errors.
var (
	ErrClosed   = errors.New("lsm: store is closed")
	ErrBadKey   = errors.New("lsm: empty key")
	ErrCorrupt  = errors.New("lsm: corrupt store")
	ErrBadRange = errors.New("lsm: scan bounds inverted")
)

// Options configures a store.
type Options struct {
	// Dir holds the WAL and table files. Required.
	Dir string
	// MemtableSize is the flush threshold in bytes. Defaults to 4 MiB.
	MemtableSize int64
	// MaxStoreFiles blocks writes when this many table files accumulate
	// (hbase.hstore.blockingStoreFiles). Defaults to 28, the paper's tuning.
	MaxStoreFiles int
	// CompactTrigger is how many similar-sized tables inside the hot time
	// window make a tier worth merging (and, for stores recovered from older
	// versions, the legacy full-compaction trigger). Defaults to 6.
	CompactTrigger int
	// WindowDuration is the width of the time windows the compaction picker
	// partitions the table set into. Tables are windowed by their newest key
	// timestamp (file creation time when keys carry none); only the hot
	// window churns, and cold windows are merged once and never rewritten.
	// Defaults to 5 minutes — at the benchmark cadence of one reading per
	// sensor per second, that is a few memtable flushes per window.
	WindowDuration time.Duration
	// Compression selects the SSTable data-block encoding for tables written
	// by flushes and compactions (existing tables are readable either way).
	// Defaults to no compression.
	Compression sstable.Compression
	// KeyTimestamp extracts the event timestamp (unix ms) from a key, used
	// to window tables for compaction, record per-table time bounds, and
	// prune files from time-range scans. Keys for which it reports false are
	// unwindowed. Defaults to kvp.TimestampOf, the benchmark key layout.
	KeyTimestamp func(key []byte) (int64, bool)
	// KeySeries extracts the series identifier from a key — the prefix that
	// groups rows of one logical time series (one sensor). The aggregation
	// fold reports partial aggregates per (series, window). The returned
	// slice may alias the key; the fold copies it when it must retain it.
	// Keys for which it reports false belong to no series and are skipped by
	// aggregation. Must be a key prefix so a key-ordered scan yields each
	// series contiguously. Defaults to kvp.SeriesOf.
	KeySeries func(key []byte) ([]byte, bool)
	// ValueReading extracts the numeric reading from a stored value for
	// min/max/sum/avg aggregation. Count-only aggregations never call it.
	// Defaults to kvp.ReadingOf.
	ValueReading func(value []byte) (float64, error)
	// BlockSize is the SSTable data-block size. Defaults to 4 KiB.
	BlockSize int
	// BloomBitsPerKey sizes table Bloom filters. 0 selects the default.
	BloomBitsPerKey int
	// BlockCacheBytes bounds the store's shared block cache (the HBase
	// block cache). 0 selects the sstable default.
	BlockCacheBytes int64
	// WALSync selects log durability. Defaults to wal.SyncOnAppend.
	WALSync wal.SyncPolicy
	// MaxWALSegments caps live WAL segments (max WAL files). 0 = unlimited.
	MaxWALSegments int
	// DisableAutoFlush turns off size-triggered flushes; Flush must be
	// called explicitly. Used by tests to control timing.
	DisableAutoFlush bool
	// Registry, when non-nil, receives engine telemetry: the counters
	// "lsm.flushes", "lsm.compactions", "lsm.stalls", "lsm.batch_applies"
	// and "wal.truncate_errors", the byte-accounting counters
	// "lsm.logical_bytes", "lsm.logical_read_bytes", "lsm.flush_bytes",
	// "lsm.compact_read_bytes" and "lsm.compact_write_bytes", the
	// Bloom-filter counters "lsm.bloom_hits", "lsm.bloom_skips" and
	// "lsm.bloom_false_positives", the gauges "lsm.memtable_bytes",
	// "lsm.table_bytes", "lsm.tables", "lsm.compaction_debt_bytes",
	// "lsm.cache_hits", "lsm.cache_misses" and "lsm.disk_read_bytes", and
	// the put-path stage histograms "put.memstore" and "put.region_flush".
	// The registry is also handed to the store's WAL. A nil registry keeps
	// the hot paths free of clock reads.
	Registry *telemetry.Registry
	// Tags, when non-empty, additionally registers the engine's counters
	// and gauge under tagged names (e.g. "lsm.batch_applies{region=...,
	// server=...}") so the shared registry can break activity down per
	// region and per server. Untagged roll-ups keep updating alongside.
	Tags []telemetry.Tag
	// Logger, when non-nil, receives structured events from cold paths:
	// recovery warnings (orphaned temp tables, torn WAL tails) and
	// background flush/compaction failures that would otherwise be
	// silently retried. Tags are attached to every event.
	Logger *telemetry.Logger
}

func (o Options) withDefaults() (Options, error) {
	if o.Dir == "" {
		return o, errors.New("lsm: Dir is required")
	}
	if o.MemtableSize <= 0 {
		o.MemtableSize = 4 << 20
	}
	if o.MaxStoreFiles <= 0 {
		o.MaxStoreFiles = 28
	}
	if o.CompactTrigger <= 0 {
		o.CompactTrigger = 6
	}
	if o.CompactTrigger > o.MaxStoreFiles {
		o.CompactTrigger = o.MaxStoreFiles
	}
	if o.WindowDuration <= 0 {
		o.WindowDuration = 5 * time.Minute
	}
	if o.KeyTimestamp == nil {
		o.KeyTimestamp = kvp.TimestampOf
	}
	if o.KeySeries == nil {
		o.KeySeries = kvp.SeriesOf
	}
	if o.ValueReading == nil {
		o.ValueReading = kvp.ReadingOf
	}
	return o, nil
}

// value encoding inside memtables and tables: first byte tags live values
// versus tombstones.
const (
	tagValue     = 1
	tagTombstone = 0
)

// tmpSuffix marks in-progress table files. Flush and compaction write to
// the temporary name and rename once the table is complete and synced, so
// a crash mid-write can never leave a partial .sst visible to recovery.
const tmpSuffix = ".tmp"

// Store is a single LSM tree. Safe for concurrent use.
type Store struct {
	opts Options
	log  *wal.Log

	mu     sync.RWMutex
	active *memtable.Memtable
	imm    *memtable.Memtable // being flushed; nil when none
	tables []*tableHandle     // newest first
	nextID uint64
	closed bool

	flushCond *sync.Cond          // signalled when a flush or compaction completes
	cache     *sstable.BlockCache // shared across all table files

	maintMu   sync.Mutex // serialises flushes
	compactMu sync.Mutex // serialises compactions, independently of flushes
	seedCount uint64

	// manifest is the versioned table-set log; manMu serialises manifest
	// commits with the in-memory installs they authorise, so a rotation
	// snapshot can never miss a committed-but-uninstalled table. Lock order:
	// manMu before mu.
	manifest *manifest
	manMu    sync.Mutex

	// Background compaction goroutine plumbing: flushes and stalls kick,
	// Close closes quit and waits.
	compactKick chan struct{}
	quit        chan struct{}
	bg          sync.WaitGroup
	stopOnce    sync.Once

	encPool sync.Pool // *encodeBuf; scratch space for batch record encoding

	puts, deletes, gets, scans   atomic.Int64
	flushes, compactions, stalls atomic.Int64
	batchApplies                 atomic.Int64

	// Byte-level resource accounting (the amplification ledger). All are
	// cumulative atomics updated on the paths that move the bytes: logical
	// bytes are user keys+values accepted into the store; WAL bytes are what
	// those writes cost in log framing; flush and compaction bytes are the
	// physical SSTable traffic; logical read bytes are user bytes returned
	// by gets and iterators (disk read bytes live on the block cache).
	logicalBytes      atomic.Int64
	walBytes          atomic.Int64
	flushBytes        atomic.Int64
	compactReadBytes  atomic.Int64
	compactWriteBytes atomic.Int64
	logicalReadBytes  atomic.Int64

	// Bloom-filter effectiveness on the table read path: skips are definite
	// negatives (a table ruled out without a block read), hits are positive
	// probes where the key was found, false positives are positive probes
	// where it was not.
	bloomHits, bloomSkips, bloomFP atomic.Int64

	// stallWaiters counts writers currently blocked on MaxStoreFiles
	// backpressure; nonzero means the store is stalled right now.
	stallWaiters atomic.Int64

	// Block-compression ledger: raw data-block bytes offered to the
	// compressor versus bytes actually stored, summed over every table
	// written. Zero when Options.Compression is off.
	compressRaw, compressStored atomic.Int64

	// File-pruning ledger: table files skipped without any I/O because the
	// requested key range (pruneKey) or time range (pruneTime) cannot
	// intersect the table's footer bounds.
	pruneKey, pruneTime atomic.Int64

	met  storeMetrics
	elog *telemetry.Logger // structured event log; nil-safe
}

// storeMetrics holds the registry-backed instruments, resolved once at
// Open. Every field is nil-safe, so an uninstrumented store pays only
// pointer tests.
type storeMetrics struct {
	flushes      *telemetry.Counter
	compactions  *telemetry.Counter
	stalls       *telemetry.Counter
	truncErrs    *telemetry.Counter
	batchApplies *telemetry.Counter
	memSpan      *telemetry.Timer // put.memstore: WAL-ack to memtable-visible
	flushSpan    *telemetry.Timer // put.region_flush: memtable to table file

	// Byte-accounting and Bloom counters (see the atomics on Store).
	logicalBytesC   *telemetry.Counter
	logicalReadC    *telemetry.Counter
	flushBytesC     *telemetry.Counter
	compactReadC    *telemetry.Counter
	compactWriteC   *telemetry.Counter
	bloomHitsC      *telemetry.Counter
	bloomSkipsC     *telemetry.Counter
	bloomFPC        *telemetry.Counter
	compressRawC    *telemetry.Counter
	compressStoredC *telemetry.Counter
	pruneKeyC       *telemetry.Counter
	pruneTimeC      *telemetry.Counter

	// Per-region tagged variants, resolved only when Options.Tags is set
	// (nil — and thus free — otherwise). The untagged instruments above are
	// the cluster-wide roll-up; these carry the region/server breakdown.
	flushesTagged      *telemetry.Counter
	stallsTagged       *telemetry.Counter
	batchAppliesTagged *telemetry.Counter
	logicalBytesTagged *telemetry.Counter
	flushBytesTagged   *telemetry.Counter
	compactReadTagged  *telemetry.Counter
	compactWriteTagged *telemetry.Counter
}

// tableHandle pairs a reader with its file path. Handles are reference
// counted: the table set holds one reference and every in-flight read
// (get, scan, compaction merge) holds another, so a compaction retiring a
// table never closes its reader under a concurrent reader.
type tableHandle struct {
	id     uint64
	path   string
	reader *sstable.Reader
	refs   atomic.Int32
	doomed atomic.Bool // delete the file once the last reference drops

	// Introspection metadata, immutable after construction. size mirrors
	// reader.Size so stats never touch a possibly-closed reader; tombstones
	// is counted at write time (flush knows, full-compaction output has
	// none) and is -1 for tables recovered from a legacy directory, where
	// counting would mean a scan.
	size       int64
	tombstones int64
	created    time.Time

	// Pruning metadata mirrored from the reader's footer so Get and
	// iterator open never touch the reader for tables they will skip.
	// firstKey/lastKey are the inclusive key bounds; minTS/maxTS the key
	// timestamp bounds, meaningless when hasTS is false (legacy tables or
	// keys without timestamps — such tables are never pruned by time).
	firstKey, lastKey []byte
	minTS, maxTS      int64
	hasTS             bool
}

func newTableHandle(id uint64, path string, reader *sstable.Reader) *tableHandle {
	t := &tableHandle{
		id: id, path: path, reader: reader,
		size: reader.Size(), tombstones: -1, created: time.Now(),
	}
	t.firstKey, t.lastKey = reader.Bounds()
	t.minTS, t.maxTS, t.hasTS = reader.TimeBounds()
	t.refs.Store(1) // the table set's reference
	return t
}

func (t *tableHandle) acquire() { t.refs.Add(1) }

// release drops one reference, closing the reader (and removing a doomed
// file) when the last one goes.
func (t *tableHandle) release() {
	if t.refs.Add(-1) > 0 {
		return
	}
	t.reader.Close()
	if t.doomed.Load() {
		os.Remove(t.path)
	}
}

// Stats reports cumulative engine activity: operation counts, the
// byte-level amplification ledger, Bloom-filter and block-cache
// effectiveness, and the current shape of the table set. It is the one-stop
// snapshot — prefer it over the per-facet getters.
type Stats struct {
	Puts         int64 `json:"puts"`
	Deletes      int64 `json:"deletes"`
	Gets         int64 `json:"gets"`
	Scans        int64 `json:"scans"`
	Flushes      int64 `json:"flushes"`
	Compactions  int64 `json:"compactions"`
	StallEvents  int64 `json:"stall_events"`  // writes that blocked on MaxStoreFiles
	BatchApplies int64 `json:"batch_applies"` // apply rounds; (Puts+Deletes)/BatchApplies = mean batch size

	// Write-side amplification ledger. LogicalBytes is the user payload
	// accepted (keys + live values); WALBytes, FlushBytes and
	// CompactWriteBytes are the physical writes that payload cost; their sum
	// over LogicalBytes is the write amplification. CompactReadBytes is what
	// compactions re-read and measures churn (it appears in read traffic, not
	// write amplification).
	LogicalBytes      int64 `json:"logical_bytes"`
	WALBytes          int64 `json:"wal_bytes"`
	FlushBytes        int64 `json:"flush_bytes"`
	CompactReadBytes  int64 `json:"compact_read_bytes"`
	CompactWriteBytes int64 `json:"compact_write_bytes"`

	// Read-side ledger: user bytes returned by gets and scans, versus raw
	// bytes the table readers pulled from disk (block-cache misses plus
	// metadata loads). Their ratio is the read amplification.
	LogicalReadBytes int64 `json:"logical_read_bytes"`
	DiskReadBytes    int64 `json:"disk_read_bytes"`

	// Bloom-filter effectiveness on table lookups: skips are definite
	// negatives, hits found the key, false positives probed and missed.
	BloomHits           int64 `json:"bloom_hits"`
	BloomSkips          int64 `json:"bloom_skips"`
	BloomFalsePositives int64 `json:"bloom_false_positives"`

	// Block-compression ledger: raw data-block bytes offered to the
	// compressor versus bytes actually stored. Zero with compression off;
	// their ratio is the achieved compression ratio.
	CompressRawBytes    int64 `json:"compress_raw_bytes"`
	CompressStoredBytes int64 `json:"compress_stored_bytes"`

	// File-pruning effectiveness: table files skipped with zero I/O because
	// the lookup's key (PruneKeySkips) or a time-range scan's bounds
	// (PruneTimeSkips) cannot intersect the table's footer bounds.
	PruneKeySkips  int64 `json:"prune_key_skips"`
	PruneTimeSkips int64 `json:"prune_time_skips"`

	// Block-cache effectiveness (shared across the store's tables).
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`
	CacheUsedBytes int64 `json:"cache_used_bytes"`

	// Current shape: live table files, their total size, the active
	// memtable's occupancy, and the compaction debt — bytes the windowed
	// picker would rewrite right now: cold windows not yet merged to one
	// table plus a hot window holding a mergeable tier. 0 when settled,
	// and no longer proportional to total data volume.
	Tables              int   `json:"tables"`
	TableBytes          int64 `json:"table_bytes"`
	MemtableBytes       int64 `json:"memtable_bytes"`
	CompactionDebtBytes int64 `json:"compaction_debt_bytes"`
}

// CompressionRatio is stored over raw data-block bytes (e.g. 0.4 means
// blocks shrank to 40%); 0 before any compressed write.
func (st Stats) CompressionRatio() float64 {
	if st.CompressRawBytes == 0 {
		return 0
	}
	return float64(st.CompressStoredBytes) / float64(st.CompressRawBytes)
}

// WriteAmplification is physical write bytes (WAL + flush + compaction
// rewrite) over logical bytes; 0 before any write.
func (st Stats) WriteAmplification() float64 {
	if st.LogicalBytes == 0 {
		return 0
	}
	return float64(st.WALBytes+st.FlushBytes+st.CompactWriteBytes) / float64(st.LogicalBytes)
}

// ReadAmplification is disk read bytes over logical read bytes; 0 before
// any read.
func (st Stats) ReadAmplification() float64 {
	if st.LogicalReadBytes == 0 {
		return 0
	}
	return float64(st.DiskReadBytes) / float64(st.LogicalReadBytes)
}

// BloomFalsePositiveRate is false positives over all positive probes plus
// skips — the fraction of filter consultations that cost a wasted table
// read; 0 before any filtered lookup.
func (st Stats) BloomFalsePositiveRate() float64 {
	total := st.BloomHits + st.BloomSkips + st.BloomFalsePositives
	if total == 0 {
		return 0
	}
	return float64(st.BloomFalsePositives) / float64(total)
}

// CacheHitRate is block-cache hits over lookups; 0 before any lookup.
func (st Stats) CacheHitRate() float64 {
	total := st.CacheHits + st.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(st.CacheHits) / float64(total)
}

// Open opens (creating or recovering) the store in opts.Dir.
func Open(opts Options) (*Store, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: create dir: %w", err)
	}

	s := &Store{opts: o, active: memtable.New(1)}
	s.cache = sstable.NewBlockCache(o.BlockCacheBytes)
	s.flushCond = sync.NewCond(&s.mu)
	s.seedCount = 1
	s.encPool.New = func() any { return new(encodeBuf) }
	s.met = storeMetrics{
		flushes:       o.Registry.Counter("lsm.flushes"),
		compactions:   o.Registry.Counter("lsm.compactions"),
		stalls:        o.Registry.Counter("lsm.stalls"),
		truncErrs:     o.Registry.Counter("wal.truncate_errors"),
		batchApplies:  o.Registry.Counter("lsm.batch_applies"),
		memSpan:       o.Registry.Timer("put.memstore"),
		flushSpan:     o.Registry.Timer("put.region_flush"),
		logicalBytesC: o.Registry.Counter("lsm.logical_bytes"),
		logicalReadC:  o.Registry.Counter("lsm.logical_read_bytes"),
		flushBytesC:   o.Registry.Counter("lsm.flush_bytes"),
		compactReadC:  o.Registry.Counter("lsm.compact_read_bytes"),
		compactWriteC: o.Registry.Counter("lsm.compact_write_bytes"),
		bloomHitsC:      o.Registry.Counter("lsm.bloom_hits"),
		bloomSkipsC:     o.Registry.Counter("lsm.bloom_skips"),
		bloomFPC:        o.Registry.Counter("lsm.bloom_false_positives"),
		compressRawC:    o.Registry.Counter("lsm.compress_raw_bytes"),
		compressStoredC: o.Registry.Counter("lsm.compress_stored_bytes"),
		pruneKeyC:       o.Registry.Counter("lsm.prune_key_skips"),
		pruneTimeC:      o.Registry.Counter("lsm.prune_time_skips"),
	}
	o.Registry.Gauge("lsm.memtable_bytes", s.MemtableBytes)
	o.Registry.Gauge("lsm.table_bytes", s.tableBytesGauge)
	o.Registry.Gauge("lsm.tables", func() int64 { return int64(s.TableCount()) })
	o.Registry.Gauge("lsm.compaction_debt_bytes", s.compactionDebtGauge)
	o.Registry.Gauge("lsm.windows", func() int64 { return int64(len(s.TierStats())) })
	o.Registry.Gauge("lsm.hot_window_tables", s.hotWindowTablesGauge)
	o.Registry.Gauge("lsm.cache_hits", func() int64 { return s.cache.Stats().Hits })
	o.Registry.Gauge("lsm.cache_misses", func() int64 { return s.cache.Stats().Misses })
	o.Registry.Gauge("lsm.disk_read_bytes", func() int64 { return s.cache.Stats().DiskReadBytes })
	RegisterDerivedGauges(o.Registry)
	if len(o.Tags) > 0 {
		s.met.flushesTagged = o.Registry.CounterTagged("lsm.flushes", o.Tags...)
		s.met.stallsTagged = o.Registry.CounterTagged("lsm.stalls", o.Tags...)
		s.met.batchAppliesTagged = o.Registry.CounterTagged("lsm.batch_applies", o.Tags...)
		s.met.logicalBytesTagged = o.Registry.CounterTagged("lsm.logical_bytes", o.Tags...)
		s.met.flushBytesTagged = o.Registry.CounterTagged("lsm.flush_bytes", o.Tags...)
		s.met.compactReadTagged = o.Registry.CounterTagged("lsm.compact_read_bytes", o.Tags...)
		s.met.compactWriteTagged = o.Registry.CounterTagged("lsm.compact_write_bytes", o.Tags...)
		o.Registry.GaugeTagged("lsm.memtable_bytes", s.MemtableBytes, o.Tags...)
		o.Registry.GaugeTagged("lsm.table_bytes", s.tableBytesGauge, o.Tags...)
	}
	s.elog = o.Logger
	if s.elog != nil && len(o.Tags) > 0 {
		fields := make([]telemetry.Field, len(o.Tags))
		for i, t := range o.Tags {
			fields[i] = telemetry.F(t.Key, t.Value)
		}
		s.elog = s.elog.With(fields...)
	}

	if err := s.recoverTables(); err != nil {
		return nil, err
	}

	// Recover unflushed writes from the log, then open it for appending.
	if err := wal.ReplayLog(filepath.Join(o.Dir, "wal"), s.elog, func(rec []byte) error {
		return s.applyRecord(rec)
	}); err != nil {
		return nil, fmt.Errorf("lsm: wal recovery: %w", err)
	}
	s.log, err = wal.Open(wal.Options{
		Dir:         filepath.Join(o.Dir, "wal"),
		Sync:        o.WALSync,
		MaxSegments: o.MaxWALSegments,
		Registry:    o.Registry,
		Logger:      s.elog,
	})
	if err != nil {
		return nil, err
	}

	s.compactKick = make(chan struct{}, 1)
	s.quit = make(chan struct{})
	s.bg.Add(1)
	go s.compactLoop()
	// Recovery may have left compactable debt (e.g. a crash mid-merge).
	s.kickCompactor()
	return s, nil
}

// tablePath names table id's file within the store directory.
func (s *Store) tablePath(id uint64) string {
	return filepath.Join(s.opts.Dir, fmt.Sprintf("%012d.sst", id))
}

// recoverTables rebuilds the table set at open. The manifest is
// authoritative: when one exists, exactly the tables it lists are opened and
// every other .sst (plus .tmp residue and superseded MANIFEST files) is an
// orphan from an interrupted transition, removed. A directory without a
// manifest — fresh, or written by an older version that recovered by
// directory scan — is scanned once and a manifest bootstrapped from the
// findings.
func (s *Store) recoverTables() error {
	man, live, err := openManifest(s.opts.Dir, s.elog)
	if err != nil {
		return err
	}
	s.manifest = man

	if live == nil {
		if err := s.loadLegacyTables(); err != nil {
			return err
		}
		metas := make([]tableMeta, 0, len(s.tables))
		for _, t := range s.tables {
			metas = append(metas, t.meta())
		}
		if err := man.bootstrap(metas); err != nil {
			return err
		}
	} else {
		metas := make([]tableMeta, 0, len(live))
		for _, m := range live {
			metas = append(metas, m)
		}
		// Higher ids are newer; order newest first.
		sort.Slice(metas, func(i, j int) bool { return metas[i].ID > metas[j].ID })
		for _, m := range metas {
			path := s.tablePath(m.ID)
			r, err := sstable.OpenWithCache(path, s.cache)
			if err != nil {
				return fmt.Errorf("%w: manifest table %s: %v", ErrCorrupt, path, err)
			}
			h := newTableHandle(m.ID, path, r)
			h.tombstones = m.Tombstones
			h.created = time.UnixMilli(m.CreatedMS)
			s.tables = append(s.tables, h)
			if m.ID >= s.nextID {
				s.nextID = m.ID + 1
			}
		}
	}
	return s.removeOrphans(live != nil)
}

// loadLegacyTables scans the directory for .sst files — the pre-manifest
// recovery path, kept for migrating existing stores in place.
func (s *Store) loadLegacyTables() error {
	entries, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		return fmt.Errorf("lsm: read dir: %w", err)
	}
	type idPath struct {
		id   uint64
		path string
	}
	var files []idPath
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".sst") {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(name, ".sst"), 10, 64)
		if err != nil {
			continue
		}
		files = append(files, idPath{id, filepath.Join(s.opts.Dir, name)})
	}
	// Higher ids are newer; order newest first.
	sort.Slice(files, func(i, j int) bool { return files[i].id > files[j].id })
	for _, f := range files {
		r, err := sstable.OpenWithCache(f.path, s.cache)
		if err != nil {
			return fmt.Errorf("%w: table %s: %v", ErrCorrupt, f.path, err)
		}
		h := newTableHandle(f.id, f.path, r)
		// Recovered tables predate this process; their write time is the
		// file's mtime, not now.
		if st, err := os.Stat(f.path); err == nil {
			h.created = st.ModTime()
		}
		s.tables = append(s.tables, h)
		if f.id >= s.nextID {
			s.nextID = f.id + 1
		}
	}
	return nil
}

// removeOrphans sweeps the directory after recovery: .tmp files from
// interrupted writes, superseded MANIFEST files, and — only when an
// authoritative manifest was replayed — .sst files the manifest does not
// reference (committed-but-unlinked compaction inputs, or a flush that
// renamed its table but crashed before the manifest commit; the WAL still
// holds the latter's contents). Any orphan id seen advances nextID so a new
// table can never reuse a name that just held different bytes.
func (s *Store) removeOrphans(haveManifest bool) error {
	entries, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		return fmt.Errorf("lsm: read dir: %w", err)
	}
	liveTables := make(map[string]bool, len(s.tables))
	for _, t := range s.tables {
		liveTables[filepath.Base(t.path)] = true
	}
	curManifest := manifestName(s.manifest.seq)
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			s.elog.Warn("removing orphaned temp file from interrupted write",
				telemetry.F("file", name))
		case strings.HasPrefix(name, manifestPrefix) && name != curManifest:
			s.elog.Warn("removing superseded manifest",
				telemetry.F("file", name))
		case strings.HasSuffix(name, ".sst") && haveManifest && !liveTables[name]:
			s.elog.Warn("removing orphaned table not referenced by manifest",
				telemetry.F("file", name))
			if id, err := strconv.ParseUint(strings.TrimSuffix(name, ".sst"), 10, 64); err == nil && id >= s.nextID {
				s.nextID = id + 1
			}
		default:
			continue
		}
		os.Remove(filepath.Join(s.opts.Dir, name))
	}
	return nil
}

// Record encoding: op byte, uvarint key length, key, value. Encoding lives
// in encodeBuf.encode; applyRecord below is the decoder used by replay.
//
// encodeBuf is per-batch scratch space, pooled on the store so steady-state
// ingest encodes WAL records and memtable values without fresh allocations.
type encodeBuf struct {
	arena []byte   // backing storage for every record in the batch
	recs  [][]byte // slices into arena, one per write
	val   []byte   // tagged-value scratch for memtable inserts
}

// encode lays the batch's WAL records out in the arena and returns one slice
// per record. The arena is sized up front so it never reallocates mid-batch
// (which would invalidate earlier record slices).
func (b *encodeBuf) encode(writes []Write) [][]byte {
	need := 0
	for i := range writes {
		need += 1 + binary.MaxVarintLen32 + len(writes[i].Key) + len(writes[i].Value)
	}
	if cap(b.arena) < need {
		b.arena = make([]byte, 0, need)
	}
	b.arena = b.arena[:0]
	b.recs = b.recs[:0]
	for i := range writes {
		w := &writes[i]
		start := len(b.arena)
		if w.Delete {
			b.arena = append(b.arena, tagTombstone)
			b.arena = binary.AppendUvarint(b.arena, uint64(len(w.Key)))
			b.arena = append(b.arena, w.Key...)
		} else {
			b.arena = append(b.arena, tagValue)
			b.arena = binary.AppendUvarint(b.arena, uint64(len(w.Key)))
			b.arena = append(b.arena, w.Key...)
			b.arena = append(b.arena, w.Value...)
		}
		b.recs = append(b.recs, b.arena[start:len(b.arena)])
	}
	return b.recs
}

func (s *Store) applyRecord(rec []byte) error {
	if len(rec) < 2 {
		return fmt.Errorf("%w: wal record of %d bytes", ErrCorrupt, len(rec))
	}
	op := rec[0]
	klen, n := binary.Uvarint(rec[1:])
	if n <= 0 || uint64(len(rec)-1-n) < klen {
		return fmt.Errorf("%w: wal record key length", ErrCorrupt)
	}
	key := rec[1+n : 1+n+int(klen)]
	value := rec[1+n+int(klen):]
	switch op {
	case tagValue:
		s.active.Put(key, append([]byte{tagValue}, value...))
	case tagTombstone:
		s.active.Put(key, []byte{tagTombstone})
	default:
		return fmt.Errorf("%w: wal op %d", ErrCorrupt, op)
	}
	return nil
}

// Write is one mutation in a batch: a put of Value under Key, or a
// tombstone for Key when Delete is set (Value is then ignored).
type Write struct {
	Key    []byte
	Value  []byte
	Delete bool
}

// Put stores value under key, durably per the WAL policy.
func (s *Store) Put(key, value []byte) error {
	return s.ApplyBatch([]Write{{Key: key, Value: value}})
}

// Delete removes key by writing a tombstone.
func (s *Store) Delete(key []byte) error {
	return s.ApplyBatch([]Write{{Key: key, Delete: true}})
}

// tombstoneValue is the stored form of a delete; memtable.Put copies it.
var tombstoneValue = []byte{tagTombstone}

// ApplyBatch applies the writes as one engine round: a single WAL append
// covering every record (one fsync group under SyncOnAppend), then a single
// memtable critical section with one flush/backpressure check for the whole
// batch. Crash recovery replays the batch record-by-record, so a batch is
// equivalent to — just much cheaper than — the same writes applied one at a
// time. An empty batch is a no-op.
func (s *Store) ApplyBatch(writes []Write) error {
	return s.ApplyBatchTraced(telemetry.TSpan{}, writes)
}

// ApplyBatchTraced is ApplyBatch under a trace span. When parent is live the
// engine round appears as an "lsm.apply_batch" span with children for each
// stage that actually ran: "lsm.stall_wait" (backpressure blocking, only when
// the store stalled), "wal.append" (with the group-commit "wal.fsync"
// beneath it, recorded by the WAL), and "lsm.memtable_insert". With an inert
// parent this is exactly ApplyBatch — no clock reads, no allocations.
func (s *Store) ApplyBatchTraced(parent telemetry.TSpan, writes []Write) error {
	if len(writes) == 0 {
		return nil
	}
	// Validation doubles as the logical-byte count: the user payload this
	// batch asks the store to persist, before any log framing or table
	// encoding. Tombstones carry only their key.
	var logical int64
	for i := range writes {
		if len(writes[i].Key) == 0 {
			return ErrBadKey
		}
		logical += int64(len(writes[i].Key))
		if !writes[i].Delete {
			logical += int64(len(writes[i].Value))
		}
	}
	batchSp := parent.Child("lsm.apply_batch")
	defer batchSp.End()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	// Backpressure: block while the store-file count is at the cap, exactly
	// like hbase.hstore.blockingStoreFiles. Checked once per batch.
	if len(s.tables) >= s.opts.MaxStoreFiles && !s.closed {
		stallSp := batchSp.Child("lsm.stall_wait")
		s.stallWaiters.Add(1)
		for len(s.tables) >= s.opts.MaxStoreFiles && !s.closed {
			s.stalls.Add(1)
			s.met.stalls.Inc()
			s.met.stallsTagged.Inc()
			s.startMaintenanceLocked()
			// With stallWaiters nonzero the picker always finds work, so a
			// kick is guaranteed to shrink the table count.
			s.kickCompactor()
			s.flushCond.Wait()
		}
		s.stallWaiters.Add(-1)
		stallSp.End()
	}
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	log := s.log
	s.mu.Unlock()

	// WAL first. Records are encoded once into pooled scratch space and the
	// whole batch goes down in one group append; the ErrLogFull retry reuses
	// the already-encoded records.
	eb := s.encPool.Get().(*encodeBuf)
	defer s.encPool.Put(eb)
	recs := eb.encode(writes)
	var walCost int64
	for _, rec := range recs {
		walCost += int64(len(rec)) + wal.RecordOverhead
	}
	walSp := batchSp.Child("wal.append")
	err := log.AppendTraced(walSp, recs...)
	walSp.End()
	if err != nil {
		if !errors.Is(err, wal.ErrLogFull) {
			return fmt.Errorf("lsm: wal append: %w", err)
		}
		// Force a flush so Truncate can reclaim segments, then retry once.
		if ferr := s.Flush(); ferr != nil {
			return fmt.Errorf("lsm: wal full and flush failed: %w", ferr)
		}
		retrySp := batchSp.Child("wal.append")
		err = log.AppendTraced(retrySp, recs...)
		retrySp.End()
		if err != nil {
			return fmt.Errorf("lsm: wal append after flush: %w", err)
		}
	}

	memSp := s.met.memSpan.Start()
	insertSp := batchSp.Child("lsm.memtable_insert")
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	var puts, deletes int64
	for i := range writes {
		w := &writes[i]
		if w.Delete {
			s.active.Put(w.Key, tombstoneValue)
			deletes++
		} else {
			// Build the tagged value in scratch; the memtable copies it.
			eb.val = append(eb.val[:0], tagValue)
			eb.val = append(eb.val, w.Value...)
			s.active.Put(w.Key, eb.val)
			puts++
		}
	}
	s.puts.Add(puts)
	s.deletes.Add(deletes)
	insertSp.End()
	memSp.End()
	s.batchApplies.Add(1)
	s.met.batchApplies.Inc()
	s.met.batchAppliesTagged.Inc()
	s.logicalBytes.Add(logical)
	s.walBytes.Add(walCost)
	s.met.logicalBytesC.Add(logical)
	s.met.logicalBytesTagged.Add(logical)
	shouldFlush := !s.opts.DisableAutoFlush &&
		s.active.Size() >= s.opts.MemtableSize && s.imm == nil
	if shouldFlush {
		s.rotateMemtableLocked()
		s.startMaintenanceLocked()
	}
	s.mu.Unlock()
	return nil
}

// rotateMemtableLocked moves the active memtable to the immutable slot.
// Caller holds mu and has checked imm == nil.
func (s *Store) rotateMemtableLocked() {
	s.imm = s.active
	s.seedCount++
	s.active = memtable.New(s.seedCount)
}

// startMaintenanceLocked launches the background flush worker if there is
// work. Caller holds mu. Compaction is not maintenance any more — it runs on
// its own goroutine (compactLoop), kicked by each flush install.
func (s *Store) startMaintenanceLocked() {
	go s.maintain()
}

// maintain performs at most one flush pass.
func (s *Store) maintain() {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()

	s.mu.Lock()
	imm := s.imm
	s.mu.Unlock()
	if imm != nil {
		if err := s.flushMemtable(imm); err != nil {
			// Leave imm in place; a later Flush call will retry and report.
			s.elog.Error("background memtable flush failed; will retry",
				telemetry.F("error", err))
		}
	}
}

// Flush synchronously persists all memtable contents to table files.
func (s *Store) Flush() error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.imm == nil {
		if s.active.Len() == 0 {
			s.mu.Unlock()
			return nil
		}
		s.rotateMemtableLocked()
	}
	imm := s.imm
	s.mu.Unlock()

	return s.flushMemtable(imm)
}

// flushMemtable writes imm to a new table file and installs it.
func (s *Store) flushMemtable(imm *memtable.Memtable) error {
	sp := s.met.flushSpan.Start()
	err := s.doFlushMemtable(imm)
	sp.End()
	return err
}

func (s *Store) doFlushMemtable(imm *memtable.Memtable) error {
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.mu.Unlock()

	path := s.tablePath(id)
	w, err := sstable.NewWriter(path+tmpSuffix, sstable.WriterOptions{
		BlockSize:       s.opts.BlockSize,
		BloomBitsPerKey: s.opts.BloomBitsPerKey,
		Compression:     s.opts.Compression,
		TimestampOf:     s.opts.KeyTimestamp,
	})
	if err != nil {
		return err
	}
	it := imm.NewIterator()
	it.SeekToFirst()
	var tombs int64
	for ; it.Valid(); it.Next() {
		if v := it.Value(); len(v) > 0 && v[0] == tagTombstone {
			tombs++
		}
		if err := w.Add(it.Key(), it.Value()); err != nil {
			w.Abort()
			return err
		}
	}
	if err := w.Finish(); err != nil {
		if errors.Is(err, sstable.ErrEmptyTable) {
			// Nothing to persist; just clear the immutable slot.
			s.mu.Lock()
			s.imm = nil
			s.flushCond.Broadcast()
			s.mu.Unlock()
			return nil
		}
		return err
	}
	if err := os.Rename(path+tmpSuffix, path); err != nil {
		return fmt.Errorf("lsm: install table: %w", err)
	}
	r, err := sstable.OpenWithCache(path, s.cache)
	if err != nil {
		return err
	}
	h := newTableHandle(id, path, r)
	h.tombstones = tombs
	s.accountCompression(w)

	// The manifest commit is the transition: if it fails (or we crash before
	// it) the renamed file is an unreferenced orphan, the WAL still holds the
	// data, and a retry flushes under a fresh id.
	err = s.commitAndInstall(manifestEdit{Added: []tableMeta{h.meta()}}, func() {
		s.tables = append([]*tableHandle{h}, s.tables...)
		s.imm = nil
		s.flushes.Add(1)
		s.met.flushes.Inc()
		s.met.flushesTagged.Inc()
		s.flushBytes.Add(h.size)
		s.met.flushBytesC.Add(h.size)
		s.met.flushBytesTagged.Add(h.size)
		s.flushCond.Broadcast()
	})
	if err != nil {
		h.release()
		return fmt.Errorf("lsm: manifest commit after flush: %w", err)
	}
	s.kickCompactor()

	if err := s.truncateWALIfQuiescent(); err != nil {
		// The flush itself succeeded — the table is installed — but leaked
		// WAL segments consume the segment budget, so the caller must know.
		return fmt.Errorf("lsm: wal truncate after flush: %w", err)
	}
	return nil
}

// commitAndInstall logs one manifest edit and, only if the commit succeeds,
// runs install (which must take s.mu itself and update s.tables to match the
// edit). Holding manMu across both means a concurrent edit's rotation
// snapshot always reflects every previously committed transition.
func (s *Store) commitAndInstall(edit manifestEdit, install func()) error {
	s.manMu.Lock()
	defer s.manMu.Unlock()
	s.mu.RLock()
	live := make([]tableMeta, 0, len(s.tables))
	for _, t := range s.tables {
		live = append(live, t.meta())
	}
	s.mu.RUnlock()
	if err := s.manifest.logEdit(edit, live); err != nil {
		return err
	}
	s.mu.Lock()
	install()
	s.mu.Unlock()
	return nil
}

// accountCompression folds one finished writer's compression ledger into
// the store's counters.
func (s *Store) accountCompression(w *sstable.Writer) {
	raw, stored := w.CompressionStats()
	if raw == 0 && stored == 0 {
		return
	}
	s.compressRaw.Add(raw)
	s.compressStored.Add(stored)
	s.met.compressRawC.Add(raw)
	s.met.compressStoredC.Add(stored)
}

// truncateWALIfQuiescent drops all but the active WAL segment when there is
// no unflushed data at all (active memtable empty and no immutable table).
// This conservative rule is always safe: if any unflushed record existed it
// would be lost by truncation, so we only truncate when none exists.
func (s *Store) truncateWALIfQuiescent() error {
	s.mu.Lock()
	quiescent := s.imm == nil && s.active.Len() == 0 && !s.closed
	var log *wal.Log
	var upTo uint64
	if quiescent {
		log = s.log
		upTo = s.log.ActiveSegment()
	}
	s.mu.Unlock()
	if log == nil {
		return nil
	}
	if err := log.Truncate(upTo); err != nil {
		s.met.truncErrs.Inc()
		return err
	}
	return nil
}

// compactOnce asks the picker for one unit of work and runs it. It returns
// whether a compaction happened. Serialised by compactMu; flushes proceed
// concurrently under maintMu and are re-merged at install time.
func (s *Store) compactOnce() (bool, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return false, nil
	}
	pick := s.pickCompactionLocked()
	if pick != nil {
		for _, t := range pick.inputs {
			t.acquire() // hold for the merge read
		}
	}
	s.mu.RUnlock()
	if pick == nil {
		return false, nil
	}
	return true, s.compactPick(pick)
}

// compactPick merges one picked span of tables into a single output and
// swaps it into the span's position. Caller holds compactMu and has
// acquired every input; compactPick releases them. Tombstones survive the
// merge unless the pick says nothing older exists.
func (s *Store) compactPick(pick *compactionPick) error {
	old := pick.inputs
	defer func() {
		for _, t := range old {
			t.release()
		}
	}()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	id := s.nextID
	s.nextID++
	s.mu.Unlock()

	path := s.tablePath(id)
	w, err := sstable.NewWriter(path+tmpSuffix, sstable.WriterOptions{
		BlockSize:       s.opts.BlockSize,
		BloomBitsPerKey: s.opts.BloomBitsPerKey,
		Compression:     s.opts.Compression,
		TimestampOf:     s.opts.KeyTimestamp,
	})
	if err != nil {
		return err
	}

	// Inputs are a contiguous span of the newest-first table list, in order,
	// so the merge's "earlier source wins" rule preserves shadowing.
	iters := make([]iterator, len(old))
	for i, t := range old {
		it := t.reader.NewIterator()
		it.SeekToFirst()
		iters[i] = it
	}
	merged := newMergeIterator(iters)
	wrote := 0
	var tombs int64
	for merged.Valid() {
		v := merged.Value()
		live := len(v) > 0 && v[0] == tagValue
		if live || !pick.dropTombstones {
			if err := w.Add(merged.Key(), v); err != nil {
				w.Abort()
				return err
			}
			wrote++
			if !live {
				tombs++
			}
		}
		merged.Next()
	}
	if err := merged.Error(); err != nil {
		w.Abort()
		return err
	}
	// The merge read every input in full; account those bytes whether or not
	// anything survives (an all-tombstone merge still did the I/O).
	var readBytes int64
	for _, t := range old {
		readBytes += t.size
	}
	s.compactReadBytes.Add(readBytes)
	s.met.compactReadC.Add(readBytes)
	s.met.compactReadTagged.Add(readBytes)

	var out *tableHandle
	var writeBytes int64
	edit := manifestEdit{Deleted: make([]uint64, 0, len(old))}
	for _, t := range old {
		edit.Deleted = append(edit.Deleted, t.id)
	}
	if wrote == 0 {
		w.Abort()
	} else {
		if err := w.Finish(); err != nil {
			return err
		}
		if err := os.Rename(path+tmpSuffix, path); err != nil {
			return fmt.Errorf("lsm: install table: %w", err)
		}
		r, err := sstable.OpenWithCache(path, s.cache)
		if err != nil {
			return err
		}
		out = newTableHandle(id, path, r)
		out.tombstones = tombs
		writeBytes = out.size
		s.accountCompression(w)
		edit.Added = []tableMeta{out.meta()}
	}
	s.compactWriteBytes.Add(writeBytes)
	s.met.compactWriteC.Add(writeBytes)
	s.met.compactWriteTagged.Add(writeBytes)

	// Manifest commit, then the in-memory swap it authorises. A crash before
	// the commit leaves the output an orphan; after it, the inputs are the
	// orphans — either way the next open converges.
	err = s.commitAndInstall(edit, func() {
		s.replaceTablesLocked(old, out)
		s.compactions.Add(1)
		s.met.compactions.Inc()
		s.flushCond.Broadcast()
	})
	if err != nil {
		if out != nil {
			out.release()
		}
		return fmt.Errorf("lsm: manifest commit after compaction: %w", err)
	}

	// Retire the inputs: drop the table set's reference. The reader closes
	// and the file is removed once the last concurrent scan releases it.
	for _, t := range old {
		t.doomed.Store(true)
		t.release()
	}
	return nil
}

// replaceTablesLocked swaps the tables of a compacted span (matched by
// identity — flushes may have prepended newer tables since the pick) for the
// merged output, which takes the span's position. A nil out (everything
// merged away) just removes the span. Caller holds mu.
func (s *Store) replaceTablesLocked(old []*tableHandle, out *tableHandle) {
	oldSet := make(map[*tableHandle]bool, len(old))
	for _, t := range old {
		oldSet[t] = true
	}
	ns := make([]*tableHandle, 0, len(s.tables))
	inserted := false
	for _, t := range s.tables {
		if oldSet[t] {
			if !inserted && out != nil {
				ns = append(ns, out)
			}
			inserted = true
			continue
		}
		ns = append(ns, t)
	}
	s.tables = ns
}

// Compact forces a full compaction: every table merges into one and every
// tombstone is dropped. The heavy hammer — benchmarks settling to a known
// state use CompactPending, which respects window boundaries.
func (s *Store) Compact() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.mu.RLock()
	if s.closed || len(s.tables) < 2 {
		s.mu.RUnlock()
		return nil
	}
	pick := s.pickSpanLocked(0, len(s.tables), "full")
	for _, t := range pick.inputs {
		t.acquire()
	}
	s.mu.RUnlock()
	return s.compactPick(pick)
}

// Get returns the value for key, or ok=false.
func (s *Store) Get(key []byte) (value []byte, ok bool, err error) {
	if len(key) == 0 {
		return nil, false, ErrBadKey
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, false, ErrClosed
	}
	active, imm := s.active, s.imm
	tables := append([]*tableHandle(nil), s.tables...)
	for _, t := range tables {
		t.acquire()
	}
	s.mu.RUnlock()
	defer func() {
		for _, t := range tables {
			t.release()
		}
	}()
	s.gets.Add(1)

	if v, found := active.Get(key); found {
		return s.returnLive(key, v)
	}
	if imm != nil {
		if v, found := imm.Get(key); found {
			return s.returnLive(key, v)
		}
	}
	for _, t := range tables {
		// Key-range pruning: the footer bounds rule the table out without
		// touching its reader (no bloom probe, no block read).
		if bytes.Compare(key, t.firstKey) < 0 || bytes.Compare(key, t.lastKey) > 0 {
			s.pruneKey.Add(1)
			s.met.pruneKeyC.Inc()
			continue
		}
		r := t.reader
		// Classify the Bloom probe ourselves (Reader.Get would consult the
		// filter too, but cannot tell us which way it went). Only tables that
		// actually carry a filter can score a hit, skip or false positive.
		filtered := r.FilterPresent()
		if filtered && !r.MayContain(key) {
			s.bloomSkips.Add(1)
			s.met.bloomSkipsC.Inc()
			continue
		}
		v, err := r.Get(key)
		if err == nil {
			if filtered {
				s.bloomHits.Add(1)
				s.met.bloomHitsC.Inc()
			}
			return s.returnLive(key, v)
		}
		if !errors.Is(err, sstable.ErrNotFound) {
			return nil, false, err
		}
		if filtered {
			s.bloomFP.Add(1)
			s.met.bloomFPC.Inc()
		}
	}
	return nil, false, nil
}

// returnLive decodes a stored value and accounts the user bytes returned.
// Tombstone hits return no payload and count nothing.
func (s *Store) returnLive(key, stored []byte) ([]byte, bool, error) {
	v, ok, err := decodeLive(stored)
	if ok {
		n := int64(len(key) + len(v))
		s.logicalReadBytes.Add(n)
		s.met.logicalReadC.Add(n)
	}
	return v, ok, err
}

func decodeLive(stored []byte) ([]byte, bool, error) {
	if len(stored) == 0 {
		return nil, false, fmt.Errorf("%w: empty stored value", ErrCorrupt)
	}
	if stored[0] == tagTombstone {
		return nil, false, nil
	}
	return stored[1:], true, nil
}

// Entry is one key-value pair returned by Scan.
type Entry struct {
	Key   []byte
	Value []byte
}

// Scan returns all live entries with lo <= key < hi in ascending order,
// calling fn for each. fn's slices are only valid during the call. A nil hi
// scans to the end of the keyspace. Scan is a materializing loop over
// NewIterator and shares its snapshot semantics.
func (s *Store) Scan(lo, hi []byte, fn func(key, value []byte) error) error {
	it, err := s.NewIterator(lo, hi)
	if err != nil {
		return err
	}
	defer it.Close()
	for ; it.Valid(); it.Next() {
		if err := fn(it.Key(), it.Value()); err != nil {
			return err
		}
	}
	return it.Error()
}

// ScanTime is Scan restricted to entries whose key timestamp satisfies
// minTS <= ts < maxTS (unix ms). Table files whose footer time bounds fall
// entirely outside the range are pruned without any I/O; see
// NewIteratorTime for the exact semantics.
func (s *Store) ScanTime(lo, hi []byte, minTS, maxTS int64, fn func(key, value []byte) error) error {
	it, err := s.NewIteratorTime(lo, hi, minTS, maxTS)
	if err != nil {
		return err
	}
	defer it.Close()
	for ; it.Valid(); it.Next() {
		if err := fn(it.Key(), it.Value()); err != nil {
			return err
		}
	}
	return it.Error()
}

// Stats returns a snapshot of cumulative counters, the amplification
// ledger, and the store's current shape.
func (s *Store) Stats() Stats {
	st := Stats{
		Puts:         s.puts.Load(),
		Deletes:      s.deletes.Load(),
		Gets:         s.gets.Load(),
		Scans:        s.scans.Load(),
		Flushes:      s.flushes.Load(),
		Compactions:  s.compactions.Load(),
		StallEvents:  s.stalls.Load(),
		BatchApplies: s.batchApplies.Load(),

		LogicalBytes:      s.logicalBytes.Load(),
		WALBytes:          s.walBytes.Load(),
		FlushBytes:        s.flushBytes.Load(),
		CompactReadBytes:  s.compactReadBytes.Load(),
		CompactWriteBytes: s.compactWriteBytes.Load(),
		LogicalReadBytes:  s.logicalReadBytes.Load(),

		BloomHits:           s.bloomHits.Load(),
		BloomSkips:          s.bloomSkips.Load(),
		BloomFalsePositives: s.bloomFP.Load(),

		CompressRawBytes:    s.compressRaw.Load(),
		CompressStoredBytes: s.compressStored.Load(),
		PruneKeySkips:       s.pruneKey.Load(),
		PruneTimeSkips:      s.pruneTime.Load(),
	}
	cs := s.cache.Stats()
	st.DiskReadBytes = cs.DiskReadBytes
	st.CacheHits = cs.Hits
	st.CacheMisses = cs.Misses
	st.CacheEvictions = cs.Evictions
	st.CacheUsedBytes = cs.UsedBytes

	s.mu.RLock()
	st.Tables = len(s.tables)
	for _, t := range s.tables {
		st.TableBytes += t.size
	}
	st.CompactionDebtBytes = s.compactionDebtLocked()
	st.MemtableBytes = s.active.Size()
	s.mu.RUnlock()
	return st
}

// TableStat describes one live store file for introspection endpoints.
// Keys are reported as strings (the benchmark keyspace is printable).
// Tombstones is -1 for tables recovered at open, where the count is unknown
// without a scan.
type TableStat struct {
	ID         uint64  `json:"id"`
	Path       string  `json:"path"`
	FirstKey   string  `json:"first_key"`
	LastKey    string  `json:"last_key"`
	SizeBytes  int64   `json:"size_bytes"`
	Entries    uint64  `json:"entries"`
	Tombstones int64   `json:"tombstones"`
	AgeSeconds float64 `json:"age_seconds"`
	HasBloom   bool    `json:"has_bloom"`

	// Time-window placement: the key timestamp bounds from the footer (unix
	// ms; meaningless when HasTimeBounds is false) and the compaction window
	// the table falls in.
	MinTS         int64  `json:"min_ts"`
	MaxTS         int64  `json:"max_ts"`
	HasTimeBounds bool   `json:"has_time_bounds"`
	Window        int64  `json:"window"`
	Compression   string `json:"compression"`
}

// TableStats reports every live table, newest first. The table set holds a
// reference on each handle for as long as it is listed, so the readers are
// open for the duration of the snapshot.
func (s *Store) TableStats() []TableStat {
	now := time.Now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]TableStat, 0, len(s.tables))
	windowMS := s.opts.WindowDuration.Milliseconds()
	for _, t := range s.tables {
		out = append(out, TableStat{
			ID:            t.id,
			Path:          t.path,
			FirstKey:      string(t.firstKey),
			LastKey:       string(t.lastKey),
			SizeBytes:     t.size,
			Entries:       t.reader.EntryCount(),
			Tombstones:    t.tombstones,
			AgeSeconds:    now.Sub(t.created).Seconds(),
			HasBloom:      t.reader.FilterPresent(),
			MinTS:         t.minTS,
			MaxTS:         t.maxTS,
			HasTimeBounds: t.hasTS,
			Window:        t.window(windowMS),
			Compression:   t.reader.Compression().String(),
		})
	}
	return out
}

// Health is a point-in-time liveness view of the store, cheap enough for a
// health endpoint to poll.
type Health struct {
	// Stalled reports writers blocked on MaxStoreFiles backpressure right
	// now; StallWaiters is how many.
	Stalled      bool  `json:"stalled"`
	StallWaiters int64 `json:"stall_waiters"`
	// FlushPending reports an immutable memtable waiting on (or in) flush.
	FlushPending bool `json:"flush_pending"`
	// Tables against the backpressure cap and compaction trigger.
	Tables         int `json:"tables"`
	MaxStoreFiles  int `json:"max_store_files"`
	CompactTrigger int `json:"compact_trigger"`
	// Active memtable fill against its flush threshold.
	MemtableBytes int64 `json:"memtable_bytes"`
	MemtableCap   int64 `json:"memtable_cap"`
	Closed        bool  `json:"closed"`
}

// OK reports whether the store is open and accepting writes without
// backpressure.
func (h Health) OK() bool { return !h.Closed && !h.Stalled }

// Health reports the store's current liveness.
func (s *Store) Health() Health {
	h := Health{
		StallWaiters:   s.stallWaiters.Load(),
		MaxStoreFiles:  s.opts.MaxStoreFiles,
		CompactTrigger: s.opts.CompactTrigger,
		MemtableCap:    s.opts.MemtableSize,
	}
	h.Stalled = h.StallWaiters > 0
	s.mu.RLock()
	h.FlushPending = s.imm != nil
	h.Tables = len(s.tables)
	h.MemtableBytes = s.active.Size()
	h.Closed = s.closed
	s.mu.RUnlock()
	return h
}

// tableBytesGauge sums live table file sizes ("lsm.table_bytes").
func (s *Store) tableBytesGauge() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, t := range s.tables {
		n += t.size
	}
	return n
}

// compactionDebtGauge reports the windowed picker's pending rewrite bytes
// ("lsm.compaction_debt_bytes"); see compactionDebtLocked.
func (s *Store) compactionDebtGauge() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.compactionDebtLocked()
}

// hotWindowTablesGauge counts tables in the hot time window
// ("lsm.hot_window_tables").
func (s *Store) hotWindowTablesGauge() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.tables) == 0 {
		return 0
	}
	windowMS := s.opts.WindowDuration.Milliseconds()
	hot := s.tables[0].window(windowMS)
	var n int64
	for _, t := range s.tables {
		if t.window(windowMS) == hot {
			n++
		}
	}
	return n
}

// RegisterDerivedGauges registers the cluster-level amplification ratios on
// reg as milli-unit gauges (a value of 3200 means 3.2×): "lsm.write_amp_milli"
// is (wal.bytes + lsm.flush_bytes + lsm.compact_write_bytes) over
// lsm.logical_bytes, and "lsm.read_amp_milli" is lsm.disk_read_bytes over
// lsm.logical_read_bytes. Registration is once-only (Registry.GaugeOnce):
// ratios must not be registered per store, or a registry shared by N stores
// would report N× the true value. Open calls this; exported for callers that
// assemble registries without opening a store first. Nil-safe.
func RegisterDerivedGauges(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	logical := reg.Counter("lsm.logical_bytes")
	walB := reg.Counter("wal.bytes")
	flushB := reg.Counter("lsm.flush_bytes")
	compW := reg.Counter("lsm.compact_write_bytes")
	reg.GaugeOnce("lsm.write_amp_milli", func() int64 {
		l := logical.Load()
		if l == 0 {
			return 0
		}
		return (walB.Load() + flushB.Load() + compW.Load()) * 1000 / l
	})
	logicalRead := reg.Counter("lsm.logical_read_bytes")
	reg.GaugeOnce("lsm.read_amp_milli", func() int64 {
		lr := logicalRead.Load()
		if lr == 0 {
			return 0
		}
		return reg.GaugeValue("lsm.disk_read_bytes") * 1000 / lr
	})
}

// TableCount returns the number of live store files.
//
// Deprecated: Stats().Tables reports the same value alongside the rest of
// the store's shape; prefer one Stats call over per-facet getters.
func (s *Store) TableCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tables)
}

// MemtableBytes returns the active memtable's approximate size.
//
// Deprecated: Stats().MemtableBytes reports the same value; prefer one
// Stats call over per-facet getters.
func (s *Store) MemtableBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.active.Size()
}

// Close flushes and shuts the store down.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	// Final flush while still open.
	if err := s.Flush(); err != nil && !errors.Is(err, ErrClosed) {
		return err
	}

	// Stop the background compactor before tearing the table set down; an
	// in-flight compaction finishes and installs normally first.
	s.stopOnce.Do(func() { close(s.quit) })
	s.bg.Wait()

	s.mu.Lock()
	s.closed = true
	s.flushCond.Broadcast()
	tables := s.tables
	s.tables = nil
	log := s.log
	s.mu.Unlock()

	err := log.Close()
	if merr := s.manifest.close(); err == nil {
		err = merr
	}
	for _, t := range tables {
		t.release()
	}
	return err
}

// Destroy closes the store and removes all files. For benchmark cleanup
// (the TPCx-IoT system cleanup between iterations purges all ingested data).
func (s *Store) Destroy() error {
	if err := s.Close(); err != nil {
		return err
	}
	return os.RemoveAll(s.opts.Dir)
}
