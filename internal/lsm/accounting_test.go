package lsm

import (
	"bytes"
	"fmt"
	"testing"
)

// TestAmplificationInvariants checks the byte ledger's structural
// invariants over repeated equal-size ingest + flush + forced-compaction
// rounds: physical write traffic can never undercut the logical bytes it
// carries, and write amplification only grows as compaction re-rewrites an
// ever-larger store.
func TestAmplificationInvariants(t *testing.T) {
	s := openTest(t, Options{DisableAutoFlush: true})
	value := bytes.Repeat([]byte("v"), 1024)
	const rows = 64

	var prevAmp float64
	for round := 0; round < 3; round++ {
		for i := 0; i < rows; i++ {
			key := fmt.Sprintf("r%d-%04d", round, i)
			if err := s.Put([]byte(key), value); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := s.Compact(); err != nil {
			t.Fatal(err)
		}

		st := s.Stats()
		if st.LogicalBytes == 0 {
			t.Fatal("no logical bytes accounted")
		}
		// Every logical byte crosses the WAL with framing on top, and is
		// flushed into a table with encoding overhead on top.
		if st.WALBytes < st.LogicalBytes {
			t.Errorf("round %d: WAL bytes %d < logical bytes %d", round, st.WALBytes, st.LogicalBytes)
		}
		if st.FlushBytes < st.LogicalBytes {
			t.Errorf("round %d: flush bytes %d < logical bytes %d", round, st.FlushBytes, st.LogicalBytes)
		}
		amp := st.WriteAmplification()
		if amp < 2 {
			t.Errorf("round %d: write amp %.3f < 2 (WAL + flush alone double every byte)", round, amp)
		}
		if amp < prevAmp {
			t.Errorf("round %d: write amp %.3f decreased from %.3f — compaction rewrites must only add", round, amp, prevAmp)
		}
		prevAmp = amp
	}

	st := s.Stats()
	wantLogical := int64(3 * rows * (len("r0-0000") + len(value)))
	if st.LogicalBytes != wantLogical {
		t.Errorf("logical bytes = %d, want %d", st.LogicalBytes, wantLogical)
	}
	// The forced compactions merged multi-table states, so both sides of
	// the compaction ledger must have moved.
	if st.CompactReadBytes == 0 || st.CompactWriteBytes == 0 {
		t.Errorf("compaction ledger empty: read=%d write=%d", st.CompactReadBytes, st.CompactWriteBytes)
	}
	// Everything was folded into one table: debt is zero by definition.
	if st.Tables != 1 {
		t.Fatalf("tables = %d, want 1 after full compaction", st.Tables)
	}
	if st.CompactionDebtBytes != 0 {
		t.Errorf("compaction debt = %d with a single table, want 0", st.CompactionDebtBytes)
	}
}

// TestReadLedgerAndBloom checks the read-side counters: point reads of
// present keys count logical read bytes and Bloom hits, absent keys are
// skipped by the filter without touching the table.
func TestReadLedgerAndBloom(t *testing.T) {
	s := openTest(t, Options{DisableAutoFlush: true})
	value := bytes.Repeat([]byte("v"), 128)
	const rows = 32
	for i := 0; i < rows; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%04d", i)), value); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < rows; i++ {
		v, ok, err := s.Get([]byte(fmt.Sprintf("k%04d", i)))
		if err != nil || !ok || len(v) != len(value) {
			t.Fatalf("get k%04d: ok=%v err=%v", i, ok, err)
		}
	}
	// Absent keys sorting below the table's key range never reach the
	// filter: the footer bounds prune the table with zero I/O.
	for i := 0; i < rows; i++ {
		if _, ok, err := s.Get([]byte(fmt.Sprintf("absent%04d", i))); err != nil || ok {
			t.Fatalf("absent get: ok=%v err=%v", ok, err)
		}
	}
	// Absent keys inside the key range do consult the filter. "_" sorts
	// after the digits, so k0000_ .. k0030_ all fall strictly between the
	// table's first and last keys.
	const inRange = rows - 1
	for i := 0; i < inRange; i++ {
		if _, ok, err := s.Get([]byte(fmt.Sprintf("k%04d_", i))); err != nil || ok {
			t.Fatalf("in-range absent get: ok=%v err=%v", ok, err)
		}
	}

	st := s.Stats()
	wantRead := int64(rows * (len("k0000") + len(value)))
	if st.LogicalReadBytes != wantRead {
		t.Errorf("logical read bytes = %d, want %d", st.LogicalReadBytes, wantRead)
	}
	if st.BloomHits != rows {
		t.Errorf("bloom hits = %d, want %d", st.BloomHits, rows)
	}
	// Every out-of-range probe was answered by key-range pruning alone.
	if st.PruneKeySkips != rows {
		t.Errorf("prune key skips = %d, want %d", st.PruneKeySkips, rows)
	}
	// The filter may false-positive occasionally, but most in-range absent
	// probes must be skipped without a table read.
	if st.BloomSkips+st.BloomFalsePositives != inRange {
		t.Errorf("bloom skips+fp = %d, want %d", st.BloomSkips+st.BloomFalsePositives, inRange)
	}
	if st.BloomSkips == 0 {
		t.Error("no bloom skips: absent keys should miss the filter")
	}
	if fp := st.BloomFalsePositiveRate(); fp < 0 || fp > 0.5 {
		t.Errorf("bloom FP rate = %.3f, want a small fraction", fp)
	}
}

// TestTableStatsIntrospection checks the /storage building block: per-table
// key ranges, entry and tombstone counts.
func TestTableStatsIntrospection(t *testing.T) {
	s := openTest(t, Options{DisableAutoFlush: true})
	const rows = 16
	for i := 0; i < rows; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	const dels = 3
	for i := 0; i < dels; i++ {
		if err := s.Delete([]byte(fmt.Sprintf("x%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	ts := s.TableStats()
	if len(ts) != 1 {
		t.Fatalf("tables = %d, want 1", len(ts))
	}
	tab := ts[0]
	if tab.Entries != rows+dels {
		t.Errorf("entries = %d, want %d", tab.Entries, rows+dels)
	}
	if tab.Tombstones != dels {
		t.Errorf("tombstones = %d, want %d", tab.Tombstones, dels)
	}
	if tab.FirstKey != "k0000" || tab.LastKey != fmt.Sprintf("x%04d", dels-1) {
		t.Errorf("key range = [%q, %q]", tab.FirstKey, tab.LastKey)
	}
	if tab.SizeBytes <= 0 {
		t.Errorf("size = %d, want > 0", tab.SizeBytes)
	}
	if !tab.HasBloom {
		t.Error("table should carry a Bloom filter by default")
	}
	if tab.AgeSeconds < 0 {
		t.Errorf("age = %f, want >= 0", tab.AgeSeconds)
	}
}

// TestHealthDocument checks the /healthz building block across the store
// lifecycle.
func TestHealthDocument(t *testing.T) {
	s := openTest(t, Options{DisableAutoFlush: true})
	h := s.Health()
	if !h.OK() || h.Stalled || h.Closed {
		t.Errorf("fresh store unhealthy: %+v", h)
	}
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if h := s.Health(); h.MemtableBytes == 0 {
		t.Error("memtable bytes not reflected in health")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if h := s.Health(); h.OK() || !h.Closed {
		t.Errorf("closed store reported healthy: %+v", h)
	}
}
