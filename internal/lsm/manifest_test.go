package lsm

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tpcxiot/internal/wal"
)

// currentManifestPath resolves the live manifest file via CURRENT.
func currentManifestPath(t *testing.T, dir string) string {
	t.Helper()
	cur, err := os.ReadFile(filepath.Join(dir, currentName))
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, strings.TrimSpace(string(cur)))
}

// TestManifestAuthoritativeAfterCompactionCrash simulates a crash between the
// compaction's manifest commit and the unlink of its input files: the inputs
// reappear on disk but the manifest no longer references them. Recovery must
// trust the manifest — the resurrected inputs are orphans to remove, and a
// tombstone the compaction dropped must not come back to life through them.
func TestManifestAuthoritativeAfterCompactionCrash(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, WALSync: wal.SyncNever, DisableAutoFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	// Table 1: doomed holds a value; table 2: its tombstone.
	if err := s.Put([]byte("doomed"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("kept"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Stash the two input tables, compact (dropping the tombstone AND the
	// shadowed value), then put the inputs back: the on-disk state of a crash
	// after the manifest commit but before the input unlink.
	var stash = map[string][]byte{}
	for _, ts := range s.TableStats() {
		data, err := os.ReadFile(ts.Path)
		if err != nil {
			t.Fatal(err)
		}
		stash[ts.Path] = data
	}
	if len(stash) != 2 {
		t.Fatalf("expected 2 input tables, have %d", len(stash))
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s.TableCount(); got != 1 {
		t.Fatalf("TableCount after full compaction = %d, want 1", got)
	}
	crashStore(t, s)
	for path, data := range stash {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	re, err := Open(Options{Dir: dir, WALSync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok, err := re.Get([]byte("doomed")); err != nil || ok {
		t.Fatalf("deleted key resurrected through orphaned compaction input: ok=%v err=%v", ok, err)
	}
	if v, ok, err := re.Get([]byte("kept")); err != nil || !ok || string(v) != "v2" {
		t.Fatalf("Get(kept) = %q,%v,%v", v, ok, err)
	}
	for path := range stash {
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("orphaned compaction input %s not removed at open", filepath.Base(path))
		}
	}
}

// TestRecoveryCleansTempAndSupersededFiles: .tmp residue and manifests CURRENT
// no longer points at are swept at open, and an orphan .sst id advances the id
// allocator so a new table never reuses a name that held different bytes.
func TestRecoveryCleansTempAndSupersededFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, WALSync: wal.SyncNever, DisableAutoFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	live := s.TableStats()[0].Path
	crashStore(t, s)

	// Fabricate interrupted-transition residue: a partial table write, a
	// stale manifest, and a flushed-but-never-committed table (copy of the
	// live one under a higher id).
	tmp := filepath.Join(dir, "000000000099.sst"+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, manifestName(0))
	if err := os.WriteFile(stale, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(live)
	if err != nil {
		t.Fatal(err)
	}
	const orphanID = 42
	orphan := filepath.Join(dir, fmt.Sprintf("%012d.sst", orphanID))
	if err := os.WriteFile(orphan, data, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Options{Dir: dir, WALSync: wal.SyncNever, DisableAutoFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, path := range []string{tmp, stale, orphan} {
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("%s survived recovery", filepath.Base(path))
		}
	}
	if v, ok, err := re.Get([]byte("k")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get(k) = %q,%v,%v", v, ok, err)
	}
	// The next flush must allocate past the orphan's id.
	if err := re.Put([]byte("k2"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := re.Flush(); err != nil {
		t.Fatal(err)
	}
	if id := re.TableStats()[0].ID; id <= orphanID {
		t.Fatalf("new table id %d reuses the orphaned id space (orphan was %d)", id, orphanID)
	}
}

// TestManifestTornTailTruncated: a crash mid-append leaves a partial record at
// the manifest tail; recovery truncates it and the store keeps working.
func TestManifestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, WALSync: wal.SyncNever, DisableAutoFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	crashStore(t, s)

	man := currentManifestPath(t, dir)
	f, err := os.OpenFile(man, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A length prefix promising more bytes than follow: a torn append.
	if _, err := f.Write([]byte{0xc0, 0x08, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := Open(Options{Dir: dir, WALSync: wal.SyncNever, DisableAutoFlush: true})
	if err != nil {
		t.Fatalf("open with torn manifest tail: %v", err)
	}
	defer re.Close()
	for i := 0; i < 3; i++ {
		if v, ok, err := re.Get([]byte(fmt.Sprintf("k%d", i))); err != nil || !ok || string(v) != "v" {
			t.Fatalf("Get(k%d) = %q,%v,%v after torn-tail recovery", i, v, ok, err)
		}
	}
	// The truncated manifest must accept new commits.
	if err := re.Put([]byte("post"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := re.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestLegacyDirectoryMigration: a directory written before the manifest
// existed (tables but no CURRENT) is scanned once and a manifest bootstrapped
// from the findings.
func TestLegacyDirectoryMigration(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, WALSync: wal.SyncNever, DisableAutoFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Strip the manifest machinery: what an old-version directory looks like.
	if err := os.Remove(filepath.Join(dir, currentName)); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, manifestPrefix+"*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			t.Fatal(err)
		}
	}

	re, err := Open(Options{Dir: dir, WALSync: wal.SyncNever})
	if err != nil {
		t.Fatalf("open legacy directory: %v", err)
	}
	defer re.Close()
	for i := 0; i < 3; i++ {
		if v, ok, err := re.Get([]byte(fmt.Sprintf("k%d", i))); err != nil || !ok || string(v) != "v" {
			t.Fatalf("Get(k%d) = %q,%v,%v after migration", i, v, ok, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, currentName)); err != nil {
		t.Fatalf("migration did not bootstrap a manifest: %v", err)
	}
}

// TestManifestRotationBoundsRecoveryCost: after far more edits than the
// rotation threshold, the directory holds exactly one manifest file whose
// replay yields the live table set — recovery cost tracks live tables, not
// store history.
func TestManifestRotationBoundsRecoveryCost(t *testing.T) {
	dir := t.TempDir()
	m := &manifest{dir: dir}
	if err := m.bootstrap(nil); err != nil {
		t.Fatal(err)
	}
	// Churn: add table i, delete table i-1. Live set at any point is one id.
	live := []tableMeta{}
	for i := uint64(1); i <= 3*manifestRotateEvery; i++ {
		edit := manifestEdit{Added: []tableMeta{{ID: i, Size: int64(i)}}}
		if i > 1 {
			edit.Deleted = []uint64{i - 1}
		}
		if err := m.logEdit(edit, live); err != nil {
			t.Fatal(err)
		}
		live = []tableMeta{{ID: i, Size: int64(i)}}
	}
	if err := m.close(); err != nil {
		t.Fatal(err)
	}

	matches, err := filepath.Glob(filepath.Join(dir, manifestPrefix+"*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("%d manifest files after churn, want 1 (rotation broken)", len(matches))
	}
	re, liveSet, err := openManifest(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.close()
	if len(liveSet) != 1 {
		t.Fatalf("replayed live set has %d tables, want 1", len(liveSet))
	}
	want := uint64(3 * manifestRotateEvery)
	if _, ok := liveSet[want]; !ok {
		t.Fatalf("replayed live set %v missing table %d", liveSet, want)
	}
}
