package lsm

import (
	"fmt"
	"sync"
	"testing"
)

func openIterStore(t *testing.T, opts Options) *Store {
	t.Helper()
	opts.Dir = t.TempDir()
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func iterKeys(t *testing.T, it *Iter) []string {
	t.Helper()
	var keys []string
	for ; it.Valid(); it.Next() {
		keys = append(keys, string(it.Key()))
	}
	if err := it.Error(); err != nil {
		t.Fatalf("iterator error: %v", err)
	}
	return keys
}

func TestIteratorStreamsLiveEntriesInRange(t *testing.T) {
	s := openIterStore(t, Options{DisableAutoFlush: true})
	for i := 0; i < 50; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Spread across a table file and the memtable, with a tombstone in range.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 50; i < 100; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete([]byte("k042")); err != nil {
		t.Fatal(err)
	}

	it, err := s.NewIterator([]byte("k010"), []byte("k060"))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	keys := iterKeys(t, it)
	if len(keys) != 49 { // k010..k059 minus deleted k042
		t.Fatalf("iterator returned %d keys, want 49", len(keys))
	}
	for _, k := range keys {
		if k == "k042" {
			t.Fatal("tombstoned key surfaced")
		}
	}
	if keys[0] != "k010" || keys[len(keys)-1] != "k059" {
		t.Fatalf("range bounds violated: first %q last %q", keys[0], keys[len(keys)-1])
	}
}

// TestIteratorSnapshotSurvivesFlushAndCompaction is the acceptance check:
// an iterator opened before a flush and a compaction still returns exactly
// the snapshot's rows — none missing, none duplicated — because it pins the
// memtable views and refcounted table handles captured at open.
func TestIteratorSnapshotSurvivesFlushAndCompaction(t *testing.T) {
	s := openIterStore(t, Options{DisableAutoFlush: true})
	const n = 200
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if i%50 == 49 {
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}

	it, err := s.NewIterator(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	// Drain half, then flush and compact underneath the open iterator, and
	// write rows the snapshot must not see.
	var got []string
	for i := 0; i < n/2 && it.Valid(); i++ {
		got = append(got, string(it.Key()))
		it.Next()
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("zzz-after-snapshot"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	got = append(got, iterKeys(t, it)...)

	if len(got) != n {
		t.Fatalf("snapshot returned %d rows, want %d", len(got), n)
	}
	seen := make(map[string]bool, len(got))
	for i, k := range got {
		if seen[k] {
			t.Fatalf("duplicated row %q", k)
		}
		seen[k] = true
		if want := fmt.Sprintf("k%04d", i); k != want {
			t.Fatalf("row %d = %q, want %q", i, k, want)
		}
	}
}

// TestIteratorConcurrentWithWritesAndMaintenance runs long-lived iterators
// against full-rate writes, flushes and compactions; under -race this is
// the scanner-vs-maintenance safety check at the engine layer.
func TestIteratorConcurrentWithWritesAndMaintenance(t *testing.T) {
	s := openIterStore(t, Options{MemtableSize: 8 << 10, CompactTrigger: 3})
	for i := 0; i < 100; i++ {
		if err := s.Put([]byte(fmt.Sprintf("seed%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Put([]byte(fmt.Sprintf("w%06d", i)), make([]byte, 256)); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for round := 0; round < 20; round++ {
		it, err := s.NewIterator([]byte("seed"), []byte("seed~"))
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for ; it.Valid(); it.Next() {
			count++
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		if count != 100 {
			t.Fatalf("round %d: snapshot saw %d seed rows, want 100", round, count)
		}
	}
	close(stop)
	wg.Wait()
}

func TestIteratorBadRangeAndClosedStore(t *testing.T) {
	s := openIterStore(t, Options{})
	if _, err := s.NewIterator([]byte("b"), []byte("a")); err != ErrBadRange {
		t.Fatalf("inverted range: %v", err)
	}
	it, err := s.NewIterator(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil { // double close is safe
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewIterator(nil, nil); err != ErrClosed {
		t.Fatalf("closed store: %v", err)
	}
}
