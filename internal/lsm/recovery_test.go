package lsm

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"tpcxiot/internal/wal"
)

// crashStore simulates a crash: sync the WAL so the OS-level state is what
// a power loss after the last acknowledged write would leave, then abandon
// the store without flushing memtables or closing cleanly. A real crash
// also kills background flush/compaction goroutines; in-process they would
// keep mutating the directory under the reopened store, so quiesce them
// first — any maintenance pass is then a completed (valid) crash point.
func crashStore(t *testing.T, s *Store) {
	t.Helper()
	s.stopOnce.Do(func() { close(s.quit) }) // stop the background compactor
	s.bg.Wait()
	s.maintMu.Lock()
	s.maintMu.Unlock()
	s.compactMu.Lock()
	s.compactMu.Unlock()
	if err := s.log.Sync(); err != nil {
		t.Fatal(err)
	}
	s.log.Close() // release the file lock-equivalent so reopen works
	s.manifest.close()
}

// TestCrashRecoveryProperty: after any sequence of puts/deletes/explicit
// flushes followed by a crash, reopening the store yields exactly the
// model's state — nothing lost, nothing resurrected.
func TestCrashRecoveryProperty(t *testing.T) {
	type op struct {
		Del   bool
		Flush bool
		K, V  uint8
	}
	f := func(ops []op) bool {
		dir := t.TempDir()
		s, err := Open(Options{Dir: dir, WALSync: wal.SyncNever, DisableAutoFlush: true})
		if err != nil {
			t.Fatal(err)
		}
		model := map[string]string{}
		for _, o := range ops {
			k := fmt.Sprintf("key-%03d", o.K%32) // small keyspace: overwrites happen
			switch {
			case o.Flush:
				if err := s.Flush(); err != nil {
					t.Fatal(err)
				}
			case o.Del:
				if err := s.Delete([]byte(k)); err != nil {
					t.Fatal(err)
				}
				delete(model, k)
			default:
				v := fmt.Sprintf("val-%03d", o.V)
				if err := s.Put([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				model[k] = v
			}
		}
		crashStore(t, s)

		re, err := Open(Options{Dir: dir, WALSync: wal.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()

		// Point reads match the model.
		for k, v := range model {
			got, ok, err := re.Get([]byte(k))
			if err != nil || !ok || string(got) != v {
				t.Logf("lost %q after crash: %q,%v,%v", k, got, ok, err)
				return false
			}
		}
		// Scan yields exactly the model's keys in order.
		want := make([]string, 0, len(model))
		for k := range model {
			want = append(want, k)
		}
		sort.Strings(want)
		i := 0
		scanOK := true
		err = re.Scan(nil, nil, func(k, v []byte) error {
			if i >= len(want) || string(k) != want[i] || string(v) != model[want[i]] {
				scanOK = false
			}
			i++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return scanOK && i == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestCrashDuringHeavyIngest writes a realistic kvp-shaped stream with
// auto-flushes and compactions racing, crashes, and verifies the recovered
// store contains every acknowledged write.
func TestCrashDuringHeavyIngest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{
		Dir:            dir,
		WALSync:        wal.SyncNever,
		MemtableSize:   64 << 10, // force frequent flushes
		CompactTrigger: 3,
		MaxStoreFiles:  6,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	val := make([]byte, 512)
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("reading-%08d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	// Give in-flight background flushes a chance to finish, then crash.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	crashStore(t, s)

	re, err := Open(Options{Dir: dir, WALSync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	count := 0
	if err := re.Scan(nil, nil, func(k, v []byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("recovered %d of %d acknowledged writes", count, n)
	}
}
