package lsm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"tpcxiot/internal/kvp"
	"tpcxiot/internal/sstable"
	"tpcxiot/internal/wal"
)

// sensorKey encodes a benchmark-shaped key for sensor sen at ts unix ms.
func sensorKey(sen string, ts int64) []byte {
	return kvp.Key{Substation: "sub01", Sensor: sen, Timestamp: ts}.Encode()
}

// flushBatch writes one table holding n readings of sensor sen with
// timestamps ts, ts+1, ...
func flushBatch(t *testing.T, s *Store, sen string, ts int64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Put(sensorKey(sen, ts+int64(i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestColdWindowsSettleToOneTable: after CompactPending, every cold window
// holds exactly one table, the hot window is untouched (below its tier
// trigger), the debt gauge reads zero, and a second settle is a no-op.
func TestColdWindowsSettleToOneTable(t *testing.T) {
	s, err := Open(Options{
		Dir:              t.TempDir(),
		WALSync:          wal.SyncNever,
		DisableAutoFlush: true,
		WindowDuration:   time.Second,
		CompactTrigger:   50, // keep the hot window from tier-merging
		MaxStoreFiles:    50,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Two flushes in each of windows 0 and 1 (cold once window 2 exists),
	// one flush in window 2 (hot).
	flushBatch(t, s, "a", 0, 10)
	flushBatch(t, s, "b", 500, 10)
	flushBatch(t, s, "a", 1000, 10)
	flushBatch(t, s, "b", 1500, 10)
	flushBatch(t, s, "a", 2000, 10)
	// (The background compactor may already be settling the cold windows —
	// CompactPending drains whatever is left and returns when nothing is.)
	if err := s.CompactPending(); err != nil {
		t.Fatal(err)
	}
	tiers := s.TierStats()
	if len(tiers) != 3 {
		t.Fatalf("TierStats = %+v, want 3 windows", tiers)
	}
	if !tiers[0].Hot || tiers[0].Window != 2 || tiers[0].Tables != 1 {
		t.Fatalf("hot tier = %+v, want window 2 with 1 table", tiers[0])
	}
	for _, tr := range tiers[1:] {
		if tr.Hot || tr.Tables != 1 {
			t.Fatalf("cold tier %+v did not settle to one table", tr)
		}
	}
	if debt := s.Stats().CompactionDebtBytes; debt != 0 {
		t.Fatalf("settled store owes %d bytes of debt", debt)
	}

	// Settling again must not rewrite anything.
	before := s.Stats().Compactions
	if err := s.CompactPending(); err != nil {
		t.Fatal(err)
	}
	if after := s.Stats().Compactions; after != before {
		t.Fatalf("CompactPending on a settled store ran %d compactions", after-before)
	}

	// Nothing lost: 50 readings across the five batches.
	count := 0
	if err := s.Scan(nil, nil, func(k, v []byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Fatalf("scan found %d readings, want 50", count)
	}
}

// TestHotWindowTierMerge: similar-sized tables inside the hot window merge
// once CompactTrigger of them accumulate.
func TestHotWindowTierMerge(t *testing.T) {
	s, err := Open(Options{
		Dir:              t.TempDir(),
		WALSync:          wal.SyncNever,
		DisableAutoFlush: true,
		WindowDuration:   time.Hour,
		CompactTrigger:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		flushBatch(t, s, fmt.Sprintf("s%d", i), int64(1000+i), 10)
	}
	if err := s.CompactPending(); err != nil {
		t.Fatal(err)
	}
	if got := s.TableCount(); got != 1 {
		t.Fatalf("TableCount after hot-tier merge = %d, want 1", got)
	}
	count := 0
	if err := s.Scan(nil, nil, func(k, v []byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 30 {
		t.Fatalf("scan found %d readings, want 30", count)
	}
}

// TestWindowedCompactionLeavesSettledWindowsAlone: once a cold window has
// settled to one table, further ingest and settling in newer windows must
// never rewrite it — its table file id stays put.
func TestWindowedCompactionLeavesSettledWindowsAlone(t *testing.T) {
	s, err := Open(Options{
		Dir:              t.TempDir(),
		WALSync:          wal.SyncNever,
		DisableAutoFlush: true,
		WindowDuration:   time.Second,
		CompactTrigger:   50,
		MaxStoreFiles:    50,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	flushBatch(t, s, "a", 0, 10)
	flushBatch(t, s, "b", 500, 10)
	flushBatch(t, s, "a", 1000, 10) // window 1 makes window 0 cold
	if err := s.CompactPending(); err != nil {
		t.Fatal(err)
	}
	var settledID uint64
	for _, ts := range s.TableStats() {
		if ts.Window == 0 {
			settledID = ts.ID
		}
	}
	if settledID == 0 {
		t.Fatal("window 0 has no settled table")
	}

	// Keep ingesting across newer windows, settling as we go.
	for w := int64(2); w < 6; w++ {
		flushBatch(t, s, "a", w*1000, 10)
		flushBatch(t, s, "b", w*1000+500, 10)
		if err := s.CompactPending(); err != nil {
			t.Fatal(err)
		}
	}
	for _, ts := range s.TableStats() {
		if ts.Window == 0 && ts.ID != settledID {
			t.Fatalf("settled window 0 was rewritten: table id %d, want %d", ts.ID, settledID)
		}
	}
}

// TestTimeRangeScanMatchesFilteredScan is the pruning correctness property:
// for any time range, ScanTime must yield exactly the entries a full Scan
// yields after per-entry timestamp filtering — file pruning can never change
// results, only skip I/O.
func TestTimeRangeScanMatchesFilteredScan(t *testing.T) {
	s, err := Open(Options{
		Dir:              t.TempDir(),
		WALSync:          wal.SyncNever,
		DisableAutoFlush: true,
		WindowDuration:   time.Second,
		CompactTrigger:   50,
		MaxStoreFiles:    50,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Readings spread over [0, 8s) across two sensors, flushed into many
	// tables with distinct time ranges; plus timestamp-free keys, overwrites
	// and deletes to exercise every merge case.
	rng := rand.New(rand.NewSource(7))
	for batch := 0; batch < 8; batch++ {
		base := int64(batch * 1000)
		for i := 0; i < 40; i++ {
			sen := fmt.Sprintf("s%d", i%2)
			ts := base + rng.Int63n(1000)
			if err := s.Put(sensorKey(sen, ts), []byte(fmt.Sprintf("b%d-%d", batch, i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Put([]byte(fmt.Sprintf("plain-%02d", batch)), []byte("x")); err != nil {
			t.Fatal(err)
		}
		if batch%3 == 2 { // delete something from an earlier window
			if err := s.Delete(sensorKey("s0", int64((batch-2)*1000)+1)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	type entry struct{ k, v string }
	ranges := [][2]int64{{0, 8000}, {0, 1000}, {3000, 5000}, {7500, 8000}, {2500, 2501}, {9000, 9999}}
	for i := 0; i < 20; i++ {
		lo := rng.Int63n(9000)
		ranges = append(ranges, [2]int64{lo, lo + rng.Int63n(4000)})
	}
	for _, r := range ranges {
		tsLo, tsHi := r[0], r[1]
		var want []entry
		err := s.Scan(nil, nil, func(k, v []byte) error {
			if ts, ok := kvp.TimestampOf(k); ok && ts >= tsLo && ts < tsHi {
				want = append(want, entry{string(k), string(v)})
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var got []entry
		err = s.ScanTime(nil, nil, tsLo, tsHi, func(k, v []byte) error {
			got = append(got, entry{string(k), string(v)})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("range [%d,%d): ScanTime yielded %d entries, filtered Scan %d", tsLo, tsHi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("range [%d,%d) entry %d: got %+v, want %+v", tsLo, tsHi, i, got[i], want[i])
			}
		}
	}

	// A narrow range over old data must have pruned table files.
	if skips := s.Stats().PruneTimeSkips; skips == 0 {
		t.Fatal("no table files were time-pruned across disjoint-range scans")
	}
}

// TestTimeRangePruningSurvivesCrash: the time bounds driving pruning come
// from the manifest/footers after recovery, so the property must hold on a
// reopened store too.
func TestTimeRangePruningSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{
		Dir:              dir,
		WALSync:          wal.SyncNever,
		DisableAutoFlush: true,
		WindowDuration:   time.Second,
		CompactTrigger:   50,
		MaxStoreFiles:    50,
	})
	if err != nil {
		t.Fatal(err)
	}
	flushBatch(t, s, "a", 0, 20)
	flushBatch(t, s, "a", 5000, 20)
	crashStore(t, s)

	re, err := Open(Options{Dir: dir, WALSync: wal.SyncNever, WindowDuration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	count := 0
	if err := re.ScanTime(nil, nil, 5000, 6000, func(k, v []byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 20 {
		t.Fatalf("ScanTime after recovery found %d readings, want 20", count)
	}
	if skips := re.Stats().PruneTimeSkips; skips == 0 {
		t.Fatal("recovered table bounds did not prune the disjoint file")
	}
}

// TestStoreCompressionLedger: with flate enabled the flush path compresses
// data blocks, the raw/stored ledger fills in, and the data reads back — also
// through a reopen with compression off (per-table self-description).
func TestStoreCompressionLedger(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{
		Dir:              dir,
		WALSync:          wal.SyncNever,
		DisableAutoFlush: true,
		Compression:      sstable.FlateCompression,
	})
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("23.5C ", 50)
	for i := 0; i < 200; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(pad)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.CompressRawBytes == 0 || st.CompressStoredBytes == 0 {
		t.Fatalf("empty compression ledger: %+v", st)
	}
	if st.CompressStoredBytes >= st.CompressRawBytes {
		t.Fatalf("compressible flush did not shrink: raw=%d stored=%d", st.CompressRawBytes, st.CompressStoredBytes)
	}
	if r := st.CompressionRatio(); r <= 0 || r >= 1 {
		t.Fatalf("CompressionRatio = %v, want in (0,1)", r)
	}
	if got := s.TableStats()[0].Compression; got != "flate" {
		t.Fatalf("table compression = %q, want flate", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Options{Dir: dir, WALSync: wal.SyncNever}) // compression off
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < 200; i++ {
		v, ok, err := re.Get([]byte(fmt.Sprintf("k%04d", i)))
		if err != nil || !ok || string(v) != pad {
			t.Fatalf("Get(k%04d) after reopen: ok=%v err=%v", i, ok, err)
		}
	}
}
