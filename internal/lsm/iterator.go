package lsm

import (
	"bytes"
)

// Iter is a long-lived streaming iterator over a pinned snapshot of the
// store: the memtable views and the table set captured at NewIterator time.
// The snapshot is held by reference — each table handle's refcount is
// incremented for the iterator's lifetime, and memtable nodes are never
// unlinked — so the iterator survives concurrent flushes and compactions
// without rescanning and without observing their effects: a table retired
// by compaction stays readable until Close, and a table installed after the
// snapshot is never consulted (its contents are the pinned memtable's, so
// consulting both would duplicate rows).
//
// Iterators position only on live entries (tombstones are merged away) and
// stop at the exclusive upper bound fixed at open. Key and Value return
// slices owned by the snapshot, valid until the next call to Next or Close;
// callers that retain rows must copy them. An Iter is not safe for
// concurrent use, but any number of iterators may run concurrently with
// each other and with writers.
type Iter struct {
	store  *Store
	held   []*tableHandle
	merged *mergeIterator
	hi     []byte // exclusive upper bound; nil = end of keyspace
	closed bool

	// Time filter, set by NewIteratorTime: only entries whose key timestamp
	// falls in [tsLo, tsHi) are yielded (entries without an extractable
	// timestamp never match a time-range query).
	tsLo, tsHi int64
	tsFilter   bool

	// bytesRead accumulates the user bytes this iterator yielded, counted
	// locally and flushed to the store's read ledger once at Close so long
	// scans cost no per-row atomics.
	bytesRead int64
}

// NewIterator opens a streaming iterator over live entries with
// lo <= key < hi, in ascending key order. A nil hi scans to the end of the
// keyspace. The returned iterator is positioned at the first entry (check
// Valid); it observes a snapshot pinned at this call and MUST be closed to
// release the pinned table files.
//
// Tables whose footer key bounds cannot intersect [lo, hi) are pruned from
// the snapshot — never pinned, never read.
func (s *Store) NewIterator(lo, hi []byte) (*Iter, error) {
	return s.newIter(lo, hi, 0, 0, false)
}

// NewIteratorTime is NewIterator restricted to entries whose key timestamp
// (per Options.KeyTimestamp) satisfies minTS <= ts < maxTS, both unix ms.
// Entries without an extractable timestamp are outside every time range.
// Beyond the per-entry filter, whole table files are pruned when their
// footer time bounds cannot intersect the range, so scans over cold windows
// skip the bulk of the store without any I/O; tables without time bounds
// (legacy format, or no timestamped keys) are conservatively read and
// filtered entry by entry.
func (s *Store) NewIteratorTime(lo, hi []byte, minTS, maxTS int64) (*Iter, error) {
	return s.newIter(lo, hi, minTS, maxTS, true)
}

func (s *Store) newIter(lo, hi []byte, tsLo, tsHi int64, tsFilter bool) (*Iter, error) {
	if hi != nil && bytes.Compare(lo, hi) > 0 {
		return nil, ErrBadRange
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	sources := make([]iterator, 0, 2+len(s.tables))
	ait := s.active.NewIterator()
	ait.Seek(lo)
	sources = append(sources, memIter{ait})
	if s.imm != nil {
		iit := s.imm.NewIterator()
		iit.Seek(lo)
		sources = append(sources, memIter{iit})
	}
	held := make([]*tableHandle, 0, len(s.tables))
	var keyPruned, timePruned int64
	for _, t := range s.tables {
		// Key-range pruning against the footer bounds. lo > last rules the
		// table out below the range; first >= hi rules it out above.
		if bytes.Compare(t.lastKey, lo) < 0 ||
			(hi != nil && bytes.Compare(t.firstKey, hi) >= 0) {
			keyPruned++
			continue
		}
		// Time-range pruning: sound only when the table has bounds (they
		// then cover every timestamped key, and untimestamped keys match no
		// time range anyway).
		if tsFilter && t.hasTS && (t.maxTS < tsLo || t.minTS >= tsHi) {
			timePruned++
			continue
		}
		t.acquire()
		held = append(held, t)
		it := t.reader.NewIterator()
		it.Seek(lo)
		sources = append(sources, it)
	}
	s.mu.RUnlock()
	s.scans.Add(1)
	if keyPruned > 0 {
		s.pruneKey.Add(keyPruned)
		s.met.pruneKeyC.Add(keyPruned)
	}
	if timePruned > 0 {
		s.pruneTime.Add(timePruned)
		s.met.pruneTimeC.Add(timePruned)
	}

	it := &Iter{
		store: s, held: held, merged: newMergeIterator(sources), hi: hi,
		tsLo: tsLo, tsHi: tsHi, tsFilter: tsFilter,
	}
	it.skipDead()
	it.account()
	return it, nil
}

// account charges the entry the iterator currently rests on to the local
// read ledger. Called once per positioning, never per Key/Value access.
func (it *Iter) account() {
	if it.merged.Valid() {
		// len(Value())-1 strips the live tag byte callers never see.
		it.bytesRead += int64(len(it.merged.Key()) + len(it.merged.Value()) - 1)
	}
}

// skipDead advances the merge past tombstones, entries outside the time
// filter, and clamps at the upper bound, so the iterator rests on a live
// in-range entry or exhausts.
func (it *Iter) skipDead() {
	for it.merged.Valid() {
		if it.hi != nil && bytes.Compare(it.merged.Key(), it.hi) >= 0 {
			it.merged.cur = -1 // past the bound: exhaust without erroring
			return
		}
		if v := it.merged.Value(); len(v) > 0 && v[0] == tagValue {
			if !it.tsFilter {
				return
			}
			ts, ok := it.store.opts.KeyTimestamp(it.merged.Key())
			if ok && ts >= it.tsLo && ts < it.tsHi {
				return
			}
		}
		it.merged.Next()
	}
}

// Valid reports whether the iterator is positioned at a live entry.
func (it *Iter) Valid() bool { return !it.closed && it.merged.Valid() }

// Key returns the current key; valid until the next Next or Close.
func (it *Iter) Key() []byte { return it.merged.Key() }

// Value returns the current live value (tag stripped); valid until the
// next Next or Close.
func (it *Iter) Value() []byte { return it.merged.Value()[1:] }

// Next advances to the following live entry.
func (it *Iter) Next() {
	if !it.Valid() {
		return
	}
	it.merged.Next()
	it.skipDead()
	it.account()
}

// Error returns the first source error encountered.
func (it *Iter) Error() error { return it.merged.Error() }

// Close releases the pinned snapshot. Safe to call more than once.
func (it *Iter) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	if it.bytesRead > 0 {
		it.store.logicalReadBytes.Add(it.bytesRead)
		it.store.met.logicalReadC.Add(it.bytesRead)
		it.bytesRead = 0
	}
	for _, t := range it.held {
		t.release()
	}
	it.held = nil
	return it.merged.Error()
}
