package lsm

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"tpcxiot/internal/telemetry"
)

// The manifest is the store's versioned table-set log, replacing the
// implicit scan-the-directory recovery: every flush and compaction commits
// an atomic edit (tables added, tables deleted) to an append-only, fsynced
// manifest file before any input file is unlinked. The manifest commit IS
// the transition — a crash on either side of it replays to a consistent
// table set, and any .sst the replayed manifest does not reference is an
// orphan from an interrupted transition, removed at open.
//
// On-disk layout inside the store directory:
//
//	CURRENT            the file name of the live manifest ("MANIFEST-000042")
//	MANIFEST-NNNNNN    records: uvarint length | JSON edit | CRC32C
//
// Each record is one manifestEdit. Replay applies edits in order; a torn
// final record (crash mid-append) is tolerated and truncated away, exactly
// like the WAL's torn-tail rule. The manifest rotates once it accumulates
// manifestRotateEvery edits: the full live state is snapshotted into a new
// file and CURRENT is atomically redirected, so recovery cost stays
// proportional to the live table count, not store history.
const (
	manifestPrefix      = "MANIFEST-"
	currentName         = "CURRENT"
	manifestRotateEvery = 256
)

var errManifestTorn = errors.New("lsm: torn manifest record")

// tableMeta is the manifest's record of one live table: identity plus the
// metadata recovery would otherwise have to rescan the file for. Key bounds
// and time bounds ride along so the manifest is a complete description of
// the table set's pruning surface.
type tableMeta struct {
	ID         uint64 `json:"id"`
	Size       int64  `json:"size"`
	FirstKey   []byte `json:"first_key,omitempty"`
	LastKey    []byte `json:"last_key,omitempty"`
	MinTS      int64  `json:"min_ts,omitempty"`
	MaxTS      int64  `json:"max_ts,omitempty"`
	HasTS      bool   `json:"has_ts,omitempty"`
	Tombstones int64  `json:"tombstones"`
	CreatedMS  int64  `json:"created_ms"` // unix ms of the creating flush/compaction
}

// manifestEdit is one atomic table-set transition. A flush adds one table;
// a compaction adds its output (when non-empty) and deletes its inputs.
type manifestEdit struct {
	Added   []tableMeta `json:"added,omitempty"`
	Deleted []uint64    `json:"deleted,omitempty"`
}

// manifest is the open handle on the live manifest file. Not safe for
// concurrent use; the store serialises edits through its maintenance locks.
type manifest struct {
	dir     string
	seq     uint64 // sequence number in the live manifest's name
	f       *os.File
	records int // edits in the live file, for rotation
}

func manifestName(seq uint64) string { return fmt.Sprintf("%s%06d", manifestPrefix, seq) }

// openManifest opens the store's manifest and replays it. The returned map
// is the live table set (nil when no manifest exists yet — a fresh or
// legacy directory); the caller bootstraps one via bootstrap in that case.
func openManifest(dir string, elog *telemetry.Logger) (*manifest, map[uint64]tableMeta, error) {
	cur, err := os.ReadFile(filepath.Join(dir, currentName))
	if errors.Is(err, os.ErrNotExist) {
		return &manifest{dir: dir}, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("lsm: read CURRENT: %w", err)
	}
	name := strings.TrimSpace(string(cur))
	seq, perr := strconv.ParseUint(strings.TrimPrefix(name, manifestPrefix), 10, 64)
	if !strings.HasPrefix(name, manifestPrefix) || perr != nil {
		return nil, nil, fmt.Errorf("%w: CURRENT names %q", ErrCorrupt, name)
	}
	path := filepath.Join(dir, name)
	live, n, err := replayManifest(path, elog)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("lsm: open manifest: %w", err)
	}
	return &manifest{dir: dir, seq: seq, f: f, records: n}, live, nil
}

// replayManifest applies every complete edit in path, returning the live
// table set and the number of edits applied. A torn final record is
// truncated away (with a warning) so the next append starts clean.
func replayManifest(path string, elog *telemetry.Logger) (map[uint64]tableMeta, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("lsm: read manifest: %w", err)
	}
	live := map[uint64]tableMeta{}
	off, n := 0, 0
	for off < len(data) {
		edit, rec, derr := decodeManifestRecord(data[off:])
		if derr != nil {
			if errors.Is(derr, errManifestTorn) {
				elog.Warn("truncating torn manifest tail from interrupted commit",
					telemetry.F("file", filepath.Base(path)),
					telemetry.F("offset", off))
				if terr := os.Truncate(path, int64(off)); terr != nil {
					return nil, 0, fmt.Errorf("lsm: truncate torn manifest: %w", terr)
				}
				break
			}
			return nil, 0, derr
		}
		for _, id := range edit.Deleted {
			delete(live, id)
		}
		for _, m := range edit.Added {
			live[m.ID] = m
		}
		off += rec
		n++
	}
	return live, n, nil
}

// decodeManifestRecord parses one record from the head of b, returning the
// edit and the record's total encoded length. errManifestTorn means b holds
// a partial or corrupt record (only acceptable at end of file).
func decodeManifestRecord(b []byte) (manifestEdit, int, error) {
	plen, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < plen+4 {
		return manifestEdit{}, 0, errManifestTorn
	}
	payload := b[n : n+int(plen)]
	want := binary.LittleEndian.Uint32(b[n+int(plen):])
	if crc32.Checksum(payload, crcTable) != want {
		return manifestEdit{}, 0, errManifestTorn
	}
	var edit manifestEdit
	if err := json.Unmarshal(payload, &edit); err != nil {
		return manifestEdit{}, 0, fmt.Errorf("%w: manifest edit: %v", ErrCorrupt, err)
	}
	return edit, n + int(plen) + 4, nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func encodeManifestRecord(edit manifestEdit) ([]byte, error) {
	payload, err := json.Marshal(edit)
	if err != nil {
		return nil, err
	}
	rec := binary.AppendUvarint(nil, uint64(len(payload)))
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.Checksum(payload, crcTable))
	return rec, nil
}

// bootstrap creates the first manifest for a directory, seeded with the
// given table set (empty for a fresh store, the directory scan's findings
// for a legacy one). The manifest file is written and synced before CURRENT
// appears, so a crash mid-bootstrap leaves no CURRENT and the next open
// simply bootstraps again.
func (m *manifest) bootstrap(tables []tableMeta) error {
	if m.f != nil {
		return errors.New("lsm: manifest already open")
	}
	return m.writeSnapshot(m.seq+1, tables)
}

// logEdit appends one committed transition and syncs it to disk. Rotation
// happens before the append when the live file is full, so the edit always
// lands in the file CURRENT points at. The caller supplies the live table
// set for the rotation snapshot.
func (m *manifest) logEdit(edit manifestEdit, live []tableMeta) error {
	if m.records >= manifestRotateEvery {
		if err := m.writeSnapshot(m.seq+1, live); err != nil {
			return err
		}
	}
	rec, err := encodeManifestRecord(edit)
	if err != nil {
		return err
	}
	if _, err := m.f.Write(rec); err != nil {
		return fmt.Errorf("lsm: manifest append: %w", err)
	}
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("lsm: manifest sync: %w", err)
	}
	m.records++
	return nil
}

// writeSnapshot writes the full live state as the single record of a new
// manifest file, atomically redirects CURRENT to it, and removes the old
// file. The commit point is CURRENT's rename.
func (m *manifest) writeSnapshot(seq uint64, tables []tableMeta) error {
	sorted := append([]tableMeta(nil), tables...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	rec, err := encodeManifestRecord(manifestEdit{Added: sorted})
	if err != nil {
		return err
	}
	path := filepath.Join(m.dir, manifestName(seq))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("lsm: create manifest: %w", err)
	}
	if _, err := f.Write(rec); err != nil {
		f.Close()
		return fmt.Errorf("lsm: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("lsm: sync manifest: %w", err)
	}

	// Redirect CURRENT via tmp+rename so it always names a complete,
	// synced manifest.
	curTmp := filepath.Join(m.dir, currentName+tmpSuffix)
	if err := os.WriteFile(curTmp, []byte(manifestName(seq)+"\n"), 0o644); err != nil {
		f.Close()
		return fmt.Errorf("lsm: write CURRENT: %w", err)
	}
	if err := syncFile(curTmp); err != nil {
		f.Close()
		return err
	}
	if err := os.Rename(curTmp, filepath.Join(m.dir, currentName)); err != nil {
		f.Close()
		return fmt.Errorf("lsm: install CURRENT: %w", err)
	}
	syncDir(m.dir)

	if m.f != nil {
		m.f.Close()
		os.Remove(filepath.Join(m.dir, manifestName(m.seq)))
	}
	m.f, m.seq, m.records = f, seq, 1
	return nil
}

func (m *manifest) close() error {
	if m.f == nil {
		return nil
	}
	err := m.f.Close()
	m.f = nil
	return err
}

// syncFile fsyncs one path; syncDir best-effort fsyncs a directory so a
// rename is durable (some filesystems need it, others reject directory
// syncs — those errors are ignored).
func syncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("lsm: sync %s: %w", filepath.Base(path), err)
	}
	return nil
}

func syncDir(dir string) {
	f, err := os.Open(dir)
	if err != nil {
		return
	}
	f.Sync()
	f.Close()
}

// meta renders a handle's manifest record.
func (t *tableHandle) meta() tableMeta {
	return tableMeta{
		ID:         t.id,
		Size:       t.size,
		FirstKey:   t.firstKey,
		LastKey:    t.lastKey,
		MinTS:      t.minTS,
		MaxTS:      t.maxTS,
		HasTS:      t.hasTS,
		Tombstones: t.tombstones,
		CreatedMS:  t.created.UnixMilli(),
	}
}
