package lsm

import (
	"bytes"

	"tpcxiot/internal/memtable"
)

// iterator is the common shape of memtable and sstable iterators.
type iterator interface {
	Valid() bool
	Key() []byte
	Value() []byte
	Next()
}

// errIterator is satisfied by sources that can fail mid-iteration.
type errIterator interface {
	Error() error
}

// memIter adapts a memtable iterator (which cannot fail) to the interface.
type memIter struct {
	*memtable.Iterator
}

// mergeIterator performs an n-way sorted merge over already-positioned
// iterators. Sources are priority-ordered: when several sources hold the
// same key, the one with the LOWEST index wins (callers pass newest data
// first), and the shadowed versions are skipped. This yields exactly the
// newest visible version of every key.
type mergeIterator struct {
	sources []iterator
	cur     int // index of the winning source, -1 when exhausted
	err     error
}

// newMergeIterator merges sources that have already been positioned (Seek
// or SeekToFirst). Pass newer sources before older ones.
func newMergeIterator(sources []iterator) *mergeIterator {
	m := &mergeIterator{sources: sources, cur: -1}
	m.findWinner()
	return m
}

// findWinner selects the smallest current key, preferring earlier sources
// on ties, and advances all tied losers past the duplicate.
func (m *mergeIterator) findWinner() {
	m.cur = -1
	var best []byte
	for i, it := range m.sources {
		if !it.Valid() {
			if e, ok := it.(errIterator); ok && e.Error() != nil {
				m.err = e.Error()
				m.cur = -1
				return
			}
			continue
		}
		if m.cur == -1 || bytes.Compare(it.Key(), best) < 0 {
			m.cur = i
			best = it.Key()
		}
	}
	if m.cur == -1 {
		return
	}
	// Skip shadowed duplicates in older sources.
	for i := range m.sources {
		if i == m.cur {
			continue
		}
		it := m.sources[i]
		for it.Valid() && bytes.Equal(it.Key(), best) {
			it.Next()
		}
	}
}

// Valid reports whether the merge is positioned at an entry.
func (m *mergeIterator) Valid() bool { return m.err == nil && m.cur >= 0 }

// Key returns the current key.
func (m *mergeIterator) Key() []byte { return m.sources[m.cur].Key() }

// Value returns the current (newest) value.
func (m *mergeIterator) Value() []byte { return m.sources[m.cur].Value() }

// Next advances past the current key.
func (m *mergeIterator) Next() {
	if !m.Valid() {
		return
	}
	m.sources[m.cur].Next()
	m.findWinner()
}

// Error returns the first source error encountered.
func (m *mergeIterator) Error() error { return m.err }
