package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"tpcxiot/internal/kvp"
)

// aggPut writes one kvp-format reading into the store.
func aggPut(t testing.TB, s *Store, substation, sensor string, ts int64, reading float64) {
	t.Helper()
	key := kvp.Key{Substation: substation, Sensor: sensor, Timestamp: ts}
	rs := strconv.FormatFloat(reading, 'f', 2, 64)
	pad, err := kvp.PaddingFor(key, rs, "volt")
	if err != nil {
		t.Fatal(err)
	}
	val := kvp.Value{Reading: rs, Unit: "volt", Padding: bytes.Repeat([]byte("p"), pad)}
	if err := s.Put(key.Encode(), val.Encode()); err != nil {
		t.Fatal(err)
	}
}

// aggRange covers every sensor of one substation over [loTS, hiTS).
func aggRange(substation string, loTS, hiTS int64) (lo, hi []byte) {
	lo = append([]byte(substation), 0)
	hi = append([]byte(substation), 1)
	_ = loTS
	_ = hiTS
	return lo, hi
}

const allAggFuncs = AggCount | AggMin | AggMax | AggSum | AggAvg

func TestAggregateTimeWindows(t *testing.T) {
	s := openTest(t, Options{DisableAutoFlush: true})
	// Two sensors, readings at 1 Hz over 10 s. Windows of 5 s should fold
	// each sensor into two partials of five rows.
	for ts := int64(0); ts < 10_000; ts += 1000 {
		aggPut(t, s, "sub0", "sa", ts, float64(ts)/1000)
		aggPut(t, s, "sub0", "sb", ts, 100+float64(ts)/1000)
	}
	lo, hi := aggRange("sub0", 0, 10_000)
	res, err := s.AggregateTime(lo, hi, 0, 10_000, 5000, allAggFuncs)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsFolded != 20 {
		t.Fatalf("RowsFolded = %d, want 20", res.RowsFolded)
	}
	if len(res.Windows) != 4 {
		t.Fatalf("windows = %d, want 4", len(res.Windows))
	}
	// Key order: all of sa's windows before sb's.
	want := []struct {
		sensor string
		start  int64
		min    float64
		max    float64
		sum    float64
	}{
		{"sa", 0, 0, 4, 10},
		{"sa", 5000, 5, 9, 35},
		{"sb", 0, 100, 104, 510},
		{"sb", 5000, 105, 109, 535},
	}
	for i, w := range res.Windows {
		series := string(kvp.SensorPrefix("sub0", want[i].sensor))
		if string(w.Series) != series || w.WindowStart != want[i].start {
			t.Fatalf("window %d = (%q, %d), want (%q, %d)",
				i, w.Series, w.WindowStart, series, want[i].start)
		}
		if w.Count != 5 || w.Min != want[i].min || w.Max != want[i].max ||
			math.Abs(w.Sum-want[i].sum) > 1e-9 {
			t.Fatalf("window %d = count %d min %g max %g sum %g, want 5/%g/%g/%g",
				i, w.Count, w.Min, w.Max, w.Sum, want[i].min, want[i].max, want[i].sum)
		}
		if got, want := w.Avg(), want[i].sum/5; math.Abs(got-want) > 1e-9 {
			t.Fatalf("window %d avg = %g, want %g", i, got, want)
		}
	}
}

func TestAggregateTimeEmptyAndSingleRowWindows(t *testing.T) {
	s := openTest(t, Options{DisableAutoFlush: true})
	// One reading in window 0, none in windows 1..8, one in window 9: empty
	// windows must be omitted, not emitted as zero partials.
	aggPut(t, s, "sub0", "sa", 100, 7)
	aggPut(t, s, "sub0", "sa", 9100, 9)
	lo, hi := aggRange("sub0", 0, 10_000)
	res, err := s.AggregateTime(lo, hi, 0, 10_000, 1000, allAggFuncs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 2 || res.RowsFolded != 2 {
		t.Fatalf("got %d windows / %d rows, want 2 / 2", len(res.Windows), res.RowsFolded)
	}
	for i, want := range []struct {
		start int64
		v     float64
	}{{0, 7}, {9000, 9}} {
		w := res.Windows[i]
		if w.WindowStart != want.start || w.Count != 1 ||
			w.Min != want.v || w.Max != want.v || w.Sum != want.v {
			t.Fatalf("window %d = %+v, want single row %g at %d", i, w, want.v, want.start)
		}
	}

	// A range with no rows at all.
	res, err = s.AggregateTime(lo, hi, 20_000, 30_000, 1000, allAggFuncs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 0 || res.RowsFolded != 0 {
		t.Fatalf("empty range returned %d windows / %d rows", len(res.Windows), res.RowsFolded)
	}
}

func TestAggregateTimeZeroWindowSpansRange(t *testing.T) {
	s := openTest(t, Options{DisableAutoFlush: true})
	for ts := int64(0); ts < 10_000; ts += 1000 {
		aggPut(t, s, "sub0", "sa", ts, 1)
	}
	lo, hi := aggRange("sub0", 0, 10_000)
	res, err := s.AggregateTime(lo, hi, 0, 10_000, 0, allAggFuncs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 1 {
		t.Fatalf("windowMS=0 produced %d windows, want 1", len(res.Windows))
	}
	if w := res.Windows[0]; w.Count != 10 || w.Sum != 10 || w.WindowStart != 0 {
		t.Fatalf("window = %+v, want count 10 sum 10 start 0", w)
	}

	if _, err := s.AggregateTime(lo, hi, 0, 10_000, -1, allAggFuncs); !errors.Is(err, ErrBadWindow) {
		t.Fatalf("negative window: %v, want ErrBadWindow", err)
	}
}

// TestAggregateTimeSpansTierBoundary folds a range whose rows straddle
// SSTable boundaries: some rows flushed (twice, to get two table files), some
// still in the memtable, and a window that spans the flush boundary. The fold
// must see one contiguous per-series run regardless of physical placement.
func TestAggregateTimeSpansTierBoundary(t *testing.T) {
	s := openTest(t, Options{DisableAutoFlush: true})
	for ts := int64(0); ts < 4000; ts += 1000 {
		aggPut(t, s, "sub0", "sa", ts, float64(ts))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for ts := int64(4000); ts < 7000; ts += 1000 {
		aggPut(t, s, "sub0", "sa", ts, float64(ts))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for ts := int64(7000); ts < 10_000; ts += 1000 {
		aggPut(t, s, "sub0", "sa", ts, float64(ts))
	}

	lo, hi := aggRange("sub0", 0, 10_000)
	// 3 s windows: window [3000,6000) spans the first flush boundary and
	// window [6000,9000) spans the second (SSTable -> memtable).
	res, err := s.AggregateTime(lo, hi, 0, 10_000, 3000, allAggFuncs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 4 || res.RowsFolded != 10 {
		t.Fatalf("got %d windows / %d rows, want 4 / 10", len(res.Windows), res.RowsFolded)
	}
	for i, wantCount := range []int64{3, 3, 3, 1} {
		w := res.Windows[i]
		if w.Count != wantCount {
			t.Fatalf("window %d count = %d, want %d", i, w.Count, wantCount)
		}
		wantSum := 0.0
		for ts := w.WindowStart; ts < w.WindowStart+3000 && ts < 10_000; ts += 1000 {
			wantSum += float64(ts)
		}
		if math.Abs(w.Sum-wantSum) > 1e-9 {
			t.Fatalf("window %d sum = %g, want %g", i, w.Sum, wantSum)
		}
	}
}

// TestAggregateCountFastPathSkipsValueDecode plants a row whose value is not
// a kvp payload: a count-only fold must succeed (values never decoded) while
// a sum fold must surface the decode error.
func TestAggregateCountFastPathSkipsValueDecode(t *testing.T) {
	s := openTest(t, Options{DisableAutoFlush: true})
	aggPut(t, s, "sub0", "sa", 1000, 5)
	key := kvp.Key{Substation: "sub0", Sensor: "sa", Timestamp: 2000}
	if err := s.Put(key.Encode(), []byte{}); err != nil {
		t.Fatal(err)
	}
	lo, hi := aggRange("sub0", 0, 10_000)

	res, err := s.AggregateTime(lo, hi, 0, 10_000, 0, AggCount)
	if err != nil {
		t.Fatalf("count-only fold decoded values: %v", err)
	}
	if res.RowsFolded != 2 || res.Windows[0].Count != 2 {
		t.Fatalf("count fold = %+v, want 2 rows", res)
	}

	if _, err := s.AggregateTime(lo, hi, 0, 10_000, 0, AggCount|AggSum); !errors.Is(err, kvp.ErrBadValue) {
		t.Fatalf("sum fold over bad value: %v, want ErrBadValue", err)
	}
}

// TestAggregateTimePrunesColdFiles verifies the fold reuses the iterator's
// file pruning: aggregating a narrow recent time slice over a store whose
// older windows live in separate flushed files must skip those files by
// their footer time bounds.
func TestAggregateTimePrunesColdFiles(t *testing.T) {
	s := openTest(t, Options{DisableAutoFlush: true})
	// Three generations of data, one flushed file each, 100 s apart.
	for gen := int64(0); gen < 3; gen++ {
		base := gen * 100_000
		for ts := base; ts < base+10_000; ts += 1000 {
			aggPut(t, s, "sub0", "sa", ts, 1)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats().PruneTimeSkips
	lo, hi := aggRange("sub0", 200_000, 210_000)
	res, err := s.AggregateTime(lo, hi, 200_000, 210_000, 0, AggCount)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsFolded != 10 {
		t.Fatalf("RowsFolded = %d, want 10", res.RowsFolded)
	}
	if got := s.Stats().PruneTimeSkips - before; got < 2 {
		t.Fatalf("time-pruned files = %d, want >= 2 (the two cold generations)", got)
	}
}

// TestAggregateTimeMatchesStreamedFold is the engine-level parity property:
// for random data spread across memtable and table files, the single-pass
// windowed fold must equal a brute-force fold over the same snapshot
// iterator, window by window and field by field.
func TestAggregateTimeMatchesStreamedFold(t *testing.T) {
	s := openTest(t, Options{DisableAutoFlush: true})
	rng := rand.New(rand.NewSource(1))
	sensors := []string{"sa", "sb", "sc"}
	for i := 0; i < 600; i++ {
		sensor := sensors[rng.Intn(len(sensors))]
		ts := int64(rng.Intn(30_000))
		aggPut(t, s, "sub0", sensor, ts, math.Round(rng.Float64()*1000)/10)
		if i%180 == 179 {
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}

	const minTS, maxTS, windowMS = 2500, 27_500, 4000
	lo, hi := aggRange("sub0", minTS, maxTS)
	res, err := s.AggregateTime(lo, hi, minTS, maxTS, windowMS, allAggFuncs)
	if err != nil {
		t.Fatal(err)
	}

	// Brute-force oracle over the plain iterator.
	it, err := s.NewIteratorTime(lo, hi, minTS, maxTS)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var oracle []WindowAgg
	var rows int64
	for ; it.Valid(); it.Next() {
		series, ok := kvp.SeriesOf(it.Key())
		if !ok {
			t.Fatalf("non-kvp key %q", it.Key())
		}
		ts, _ := kvp.TimestampOf(it.Key())
		v, err := kvp.ReadingOf(it.Value())
		if err != nil {
			t.Fatal(err)
		}
		wstart := minTS + (ts-minTS)/windowMS*windowMS
		n := len(oracle)
		if n == 0 || oracle[n-1].WindowStart != wstart || !bytes.Equal(oracle[n-1].Series, series) {
			oracle = append(oracle, newWindowAgg(append([]byte(nil), series...), wstart))
			n++
		}
		oracle[n-1].Count++
		oracle[n-1].add(v)
		rows++
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}

	if res.RowsFolded != rows {
		t.Fatalf("RowsFolded = %d, oracle folded %d", res.RowsFolded, rows)
	}
	if len(res.Windows) != len(oracle) {
		t.Fatalf("windows = %d, oracle has %d", len(res.Windows), len(oracle))
	}
	for i := range oracle {
		got, want := res.Windows[i], oracle[i]
		if !bytes.Equal(got.Series, want.Series) || got.WindowStart != want.WindowStart ||
			got.Count != want.Count || got.Min != want.Min || got.Max != want.Max ||
			math.Abs(got.Sum-want.Sum) > 1e-6 {
			t.Fatalf("window %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if rows == 0 {
		t.Fatal("oracle folded no rows; test data broken")
	}
}

func TestAggFuncsString(t *testing.T) {
	for _, tc := range []struct {
		f    AggFuncs
		want string
	}{
		{0, "none"},
		{AggCount, "count"},
		{AggCount | AggAvg, "count|avg"},
		{allAggFuncs, "count|min|max|sum|avg"},
	} {
		if got := tc.f.String(); got != tc.want {
			t.Errorf("String(%d) = %q, want %q", tc.f, got, tc.want)
		}
	}
	if AggCount.NeedsValue() {
		t.Error("count-only mask claims to need values")
	}
	if !(AggCount | AggMin).NeedsValue() {
		t.Error("min mask claims not to need values")
	}
	_ = fmt.Sprintf("%v", allAggFuncs)
}
