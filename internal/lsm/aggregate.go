package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"math"
)

// ErrBadWindow rejects aggregation requests whose window width is negative
// (0 means one window spanning the whole time range).
var ErrBadWindow = errors.New("lsm: negative aggregation window")

// AggFuncs is a bitmask selecting which aggregate functions a fold computes.
// Count is always tracked (avg needs it for mergeable partials); the flags
// record what the caller asked for so count-only requests can skip value
// decoding entirely.
type AggFuncs uint8

const (
	AggCount AggFuncs = 1 << iota
	AggMin
	AggMax
	AggSum
	AggAvg
)

// NeedsValue reports whether the fold must decode row values. Count-only
// aggregations fold keys alone — the ScanTime fast path.
func (f AggFuncs) NeedsValue() bool { return f&(AggMin|AggMax|AggSum|AggAvg) != 0 }

// String renders the mask for traces and error messages.
func (f AggFuncs) String() string {
	var b []byte
	add := func(s string) {
		if len(b) > 0 {
			b = append(b, '|')
		}
		b = append(b, s...)
	}
	if f&AggCount != 0 {
		add("count")
	}
	if f&AggMin != 0 {
		add("min")
	}
	if f&AggMax != 0 {
		add("max")
	}
	if f&AggSum != 0 {
		add("sum")
	}
	if f&AggAvg != 0 {
		add("avg")
	}
	if len(b) == 0 {
		return "none"
	}
	return string(b)
}

// WindowAgg is the partial aggregate of one series over one time window.
// Partials merge exactly: count and sum add, min/max take extrema, and avg
// is always derived as Sum/Count — never averaged across partials — so
// merging region- or file-level partials in any order yields the same
// result as a single fold over all rows.
type WindowAgg struct {
	Series      []byte  `json:"series"`
	WindowStart int64   `json:"window_start"` // unix ms, inclusive
	Count       int64   `json:"count"`
	Min         float64 `json:"min"` // +Inf when no value rows folded
	Max         float64 `json:"max"` // -Inf when no value rows folded
	Sum         float64 `json:"sum"`
}

// newWindowAgg returns an empty partial with min/max at their identities.
func newWindowAgg(series []byte, windowStart int64) WindowAgg {
	return WindowAgg{
		Series:      series,
		WindowStart: windowStart,
		Min:         math.Inf(1),
		Max:         math.Inf(-1),
	}
}

// add folds one row's reading into the partial.
func (w *WindowAgg) add(v float64) {
	if v < w.Min {
		w.Min = v
	}
	if v > w.Max {
		w.Max = v
	}
	w.Sum += v
}

// Avg derives the mean from the mergeable (sum, count) pair; 0 for an empty
// partial.
func (w WindowAgg) Avg() float64 {
	if w.Count == 0 {
		return 0
	}
	return w.Sum / float64(w.Count)
}

// Merge folds another partial for the same (series, window) into w.
func (w *WindowAgg) Merge(o WindowAgg) {
	w.Count += o.Count
	if o.Min < w.Min {
		w.Min = o.Min
	}
	if o.Max > w.Max {
		w.Max = o.Max
	}
	w.Sum += o.Sum
}

// AggResult is one fold's output: the per-(series, window) partials in key
// order — series ascending, windows ascending within a series, empty windows
// omitted — plus the number of rows reduced server-side, the measure of how
// many 1 KiB rows never crossed the wire.
type AggResult struct {
	Windows    []WindowAgg
	RowsFolded int64
}

// AggregateTime folds live entries with lo <= key < hi and
// minTS <= timestamp < maxTS into per-series, per-window partial aggregates
// in a single pass over a snapshot-pinned merge iterator. Table files whose
// key or time bounds cannot intersect the request are pruned before any I/O
// (the lsm.prune_key_skips / lsm.prune_time_skips counters), so cold
// windows never leave disk.
//
// windowMS is the window width; windows are aligned to minTS, i.e. window k
// covers [minTS + k*windowMS, minTS + (k+1)*windowMS). windowMS = 0 folds
// the whole range into one window per series.
//
// Because keys sort by (series, timestamp), each (series, window) pair
// arrives as one contiguous run: the fold keeps a single open partial and
// O(1) working state beyond the output slice. When funcs needs no values
// (count-only), row values are never decoded — the fast path that makes
// count queries pure key iteration.
func (s *Store) AggregateTime(lo, hi []byte, minTS, maxTS, windowMS int64, funcs AggFuncs) (AggResult, error) {
	if windowMS < 0 {
		return AggResult{}, ErrBadWindow
	}
	if windowMS == 0 {
		windowMS = maxTS - minTS
		if windowMS <= 0 {
			windowMS = 1
		}
	}
	it, err := s.NewIteratorTime(lo, hi, minTS, maxTS)
	if err != nil {
		return AggResult{}, err
	}
	defer it.Close()

	needValue := funcs.NeedsValue()
	var res AggResult
	var cur WindowAgg
	open := false
	for ; it.Valid(); it.Next() {
		key := it.Key()
		series, ok := s.opts.KeySeries(key)
		if !ok {
			continue
		}
		ts, ok := s.opts.KeyTimestamp(key)
		if !ok {
			continue // unreachable: the time filter already required one
		}
		wstart := minTS + (ts-minTS)/windowMS*windowMS
		if !open || wstart != cur.WindowStart || !bytes.Equal(series, cur.Series) {
			if open {
				res.Windows = append(res.Windows, cur)
			}
			// The iterator owns the series bytes only until Next: copy.
			cur = newWindowAgg(append([]byte(nil), series...), wstart)
			open = true
		}
		cur.Count++
		res.RowsFolded++
		if needValue {
			v, err := s.opts.ValueReading(it.Value())
			if err != nil {
				return AggResult{}, fmt.Errorf("lsm: aggregate %s: %w", funcs, err)
			}
			cur.add(v)
		}
	}
	if err := it.Error(); err != nil {
		return AggResult{}, err
	}
	if open {
		res.Windows = append(res.Windows, cur)
	}
	return res, nil
}
