package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"tpcxiot/internal/wal"
)

func openTest(t testing.TB, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	opts.WALSync = wal.SyncNever // keep tests fast
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetDelete(t *testing.T) {
	s := openTest(t, Options{})
	if err := s.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get([]byte("k1"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get = %q,%v,%v", v, ok, err)
	}
	if err := s.Delete([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get([]byte("k1")); ok {
		t.Fatal("deleted key still visible")
	}
	if _, ok, _ := s.Get([]byte("never")); ok {
		t.Fatal("absent key reported present")
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	s := openTest(t, Options{})
	if err := s.Put(nil, []byte("v")); !errors.Is(err, ErrBadKey) {
		t.Fatalf("Put(empty): %v", err)
	}
	if _, _, err := s.Get(nil); !errors.Is(err, ErrBadKey) {
		t.Fatalf("Get(empty): %v", err)
	}
}

func TestOverwriteAcrossFlush(t *testing.T) {
	s := openTest(t, Options{DisableAutoFlush: true})
	s.Put([]byte("k"), []byte("old"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Put([]byte("k"), []byte("new"))
	v, ok, err := s.Get([]byte("k"))
	if err != nil || !ok || string(v) != "new" {
		t.Fatalf("Get = %q,%v,%v; memtable must shadow table", v, ok, err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	v, ok, _ = s.Get([]byte("k"))
	if !ok || string(v) != "new" {
		t.Fatalf("Get across two tables = %q,%v; newer table must win", v, ok)
	}
}

func TestDeleteAcrossFlushAndCompaction(t *testing.T) {
	s := openTest(t, Options{DisableAutoFlush: true})
	s.Put([]byte("gone"), []byte("v"))
	s.Put([]byte("stays"), []byte("v"))
	s.Flush()
	s.Delete([]byte("gone"))
	s.Flush()

	if _, ok, _ := s.Get([]byte("gone")); ok {
		t.Fatal("tombstone in newer table did not shadow older value")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get([]byte("gone")); ok {
		t.Fatal("key resurrected by compaction")
	}
	if v, ok, _ := s.Get([]byte("stays")); !ok || string(v) != "v" {
		t.Fatal("live key lost in compaction")
	}
	if got := s.TableCount(); got != 1 {
		t.Fatalf("TableCount after full compaction = %d, want 1", got)
	}
}

func TestScanMergesAllSources(t *testing.T) {
	s := openTest(t, Options{DisableAutoFlush: true})
	// Old table
	s.Put([]byte("a"), []byte("1"))
	s.Put([]byte("c"), []byte("old-c"))
	s.Flush()
	// Newer table
	s.Put([]byte("b"), []byte("2"))
	s.Put([]byte("c"), []byte("new-c"))
	s.Flush()
	// Memtable
	s.Put([]byte("d"), []byte("4"))
	s.Delete([]byte("a"))

	var got []string
	err := s.Scan([]byte("a"), nil, func(k, v []byte) error {
		got = append(got, fmt.Sprintf("%s=%s", k, v))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "[b=2 c=new-c d=4]"
	if fmt.Sprint(got) != want {
		t.Fatalf("scan = %v, want %v", got, want)
	}
}

func TestScanBounds(t *testing.T) {
	s := openTest(t, Options{DisableAutoFlush: true})
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	count := 0
	err := s.Scan([]byte("k010"), []byte("k020"), func(k, v []byte) error {
		count++
		return nil
	})
	if err != nil || count != 10 {
		t.Fatalf("scan [k010,k020) = %d entries, err %v; want 10", count, err)
	}
	if err := s.Scan([]byte("z"), []byte("a"), func(k, v []byte) error { return nil }); !errors.Is(err, ErrBadRange) {
		t.Fatalf("inverted scan: %v", err)
	}
}

func TestScanCallbackError(t *testing.T) {
	s := openTest(t, Options{})
	s.Put([]byte("a"), []byte("1"))
	sentinel := errors.New("stop")
	if err := s.Scan(nil, nil, func(k, v []byte) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("callback error not propagated: %v", err)
	}
}

func TestAutoFlushAtThreshold(t *testing.T) {
	s := openTest(t, Options{MemtableSize: 32 << 10})
	val := bytes.Repeat([]byte{'v'}, 1024)
	for i := 0; i < 100; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%06d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil { // drain whatever is pending
		t.Fatal(err)
	}
	if s.Stats().Flushes == 0 {
		t.Fatal("no flush occurred despite exceeding the memtable threshold")
	}
	// All keys must remain visible after flushes.
	for i := 0; i < 100; i += 7 {
		if _, ok, _ := s.Get([]byte(fmt.Sprintf("key-%06d", i))); !ok {
			t.Fatalf("key %d lost across auto-flush", i)
		}
	}
}

func TestRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, WALSync: wal.SyncNever, DisableAutoFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	s.Delete([]byte("k010"))
	// Simulate a crash: close the log without flushing the memtable.
	// (Close() flushes, so reach into the WAL directly by abandoning the
	// store after syncing its log.)
	if err := s.log.Sync(); err != nil {
		t.Fatal(err)
	}
	s.log.Close()

	s2, err := Open(Options{Dir: dir, WALSync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		v, ok, err := s2.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if i == 10 {
			if ok {
				t.Fatal("deleted key resurrected by recovery")
			}
			continue
		}
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("recovery lost %s: %q,%v", k, v, ok)
		}
	}
}

func TestReopenAfterCleanClose(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, WALSync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	s.Put([]byte("persist"), []byte("me"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir, WALSync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, ok, _ := s2.Get([]byte("persist"))
	if !ok || string(v) != "me" {
		t.Fatalf("clean reopen lost data: %q,%v", v, ok)
	}
}

func TestClosedStoreRejectsOps(t *testing.T) {
	s := openTest(t, Options{})
	s.Close()
	if err := s.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close: %v", err)
	}
	if _, _, err := s.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close: %v", err)
	}
	if err := s.Scan(nil, nil, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Scan after close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestDestroyRemovesFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, WALSync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	s.Put([]byte("k"), []byte("v"))
	if err := s.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, WALSync: wal.SyncNever}); err != nil {
		t.Fatalf("reopen after destroy should create empty store: %v", err)
	}
}

func TestCompactionTriggeredByFileCount(t *testing.T) {
	s := openTest(t, Options{DisableAutoFlush: true, CompactTrigger: 3, MaxStoreFiles: 5})
	for f := 0; f < 4; f++ {
		s.Put([]byte(fmt.Sprintf("f%d", f)), []byte("v"))
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s.TableCount(); got != 1 {
		t.Fatalf("TableCount = %d after compaction, want 1", got)
	}
	for f := 0; f < 4; f++ {
		if _, ok, _ := s.Get([]byte(fmt.Sprintf("f%d", f))); !ok {
			t.Fatalf("key f%d lost in compaction", f)
		}
	}
}

func TestBackpressureBlocksAndRecovers(t *testing.T) {
	// Tiny caps force the write path through the stall-and-compact cycle.
	s := openTest(t, Options{
		MemtableSize:   2 << 10,
		MaxStoreFiles:  4,
		CompactTrigger: 2,
	})
	val := bytes.Repeat([]byte{'v'}, 512)
	for i := 0; i < 200; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%06d", i)), val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < 200; i += 13 {
		if _, ok, _ := s.Get([]byte(fmt.Sprintf("key-%06d", i))); !ok {
			t.Fatalf("key %d lost under backpressure", i)
		}
	}
}

func TestConcurrentWritesAndReads(t *testing.T) {
	s := openTest(t, Options{MemtableSize: 64 << 10})
	const writers = 4
	const per = 300
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := []byte(fmt.Sprintf("w%d-%06d", w, i))
				if err := s.Put(k, bytes.Repeat([]byte{'x'}, 256)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if i%10 == 0 {
					if _, _, err := s.Get(k); err != nil {
						t.Errorf("get: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	if err := s.Scan(nil, nil, func(k, v []byte) error { total++; return nil }); err != nil {
		t.Fatal(err)
	}
	if total != writers*per {
		t.Fatalf("scan found %d keys, want %d", total, writers*per)
	}
}

func TestStatsCounters(t *testing.T) {
	s := openTest(t, Options{DisableAutoFlush: true})
	s.Put([]byte("a"), []byte("1"))
	s.Delete([]byte("a"))
	s.Get([]byte("a"))
	s.Scan(nil, nil, func(k, v []byte) error { return nil })
	s.Flush()
	st := s.Stats()
	if st.Puts != 1 || st.Deletes != 1 || st.Gets != 1 || st.Scans != 1 || st.Flushes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPropertyMatchesModel(t *testing.T) {
	type op struct {
		Del bool
		K   uint8
		V   uint16
	}
	f := func(ops []op) bool {
		s := openTest(t, Options{DisableAutoFlush: true, MemtableSize: 1 << 20})
		model := map[string]string{}
		for i, o := range ops {
			k := fmt.Sprintf("key-%03d", o.K)
			if o.Del {
				if s.Delete([]byte(k)) != nil {
					return false
				}
				delete(model, k)
			} else {
				v := fmt.Sprintf("val-%05d", o.V)
				if s.Put([]byte(k), []byte(v)) != nil {
					return false
				}
				model[k] = v
			}
			if i%7 == 3 {
				if s.Flush() != nil {
					return false
				}
			}
		}
		// Verify gets.
		for k, v := range model {
			got, ok, err := s.Get([]byte(k))
			if err != nil || !ok || string(got) != v {
				return false
			}
		}
		// Verify full scan matches the model exactly.
		keys := make([]string, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		err := s.Scan(nil, nil, func(k, v []byte) error {
			if i >= len(keys) || string(k) != keys[i] || string(v) != model[keys[i]] {
				return fmt.Errorf("mismatch at %d", i)
			}
			i++
			return nil
		})
		return err == nil && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut1KiB(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir(), WALSync: wal.SyncNever, MemtableSize: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, 1024)
	key := make([]byte, 0, 32)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key = key[:0]
		key = fmt.Appendf(key, "key-%020d", i)
		if err := s.Put(key, val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan100(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir(), WALSync: wal.SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const n = 20000
	for i := 0; i < n; i++ {
		s.Put([]byte(fmt.Sprintf("key-%012d", i)), bytes.Repeat([]byte{'v'}, 1024))
	}
	s.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := (i * 97) % (n - 100)
		lo := []byte(fmt.Sprintf("key-%012d", start))
		hi := []byte(fmt.Sprintf("key-%012d", start+100))
		count := 0
		if err := s.Scan(lo, hi, func(k, v []byte) error { count++; return nil }); err != nil {
			b.Fatal(err)
		}
		if count != 100 {
			b.Fatalf("scan returned %d", count)
		}
	}
}

// TestScanDuringCompactionKeepsReaders pins the table-handle reference
// counting: a compaction retiring store files must not close their readers
// under an in-flight scan. Before refcounting this raced to "file already
// closed" (and lost rows) whenever a full-store scan overlapped compaction.
func TestScanDuringCompactionKeepsReaders(t *testing.T) {
	s := openTest(t, Options{
		DisableAutoFlush: true,
		MemtableSize:     1 << 20,
		CompactTrigger:   1 << 30, // compactions run only when we ask
	})
	const keys = 2000
	for i := 0; i < keys; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%06d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if i%250 == 249 {
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.TableCount() < 2 {
		t.Fatalf("need several store files, have %d", s.TableCount())
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				n := 0
				if err := s.Scan(nil, nil, func(k, v []byte) error {
					n++
					return nil
				}); err != nil {
					errs <- err
					return
				}
				if n != keys {
					errs <- fmt.Errorf("scan saw %d rows, want %d", n, keys)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := s.Compact(); err != nil {
				errs <- fmt.Errorf("compact: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
