// Time-windowed tiered compaction.
//
// The full-rewrite strategy this replaces merged every table into one file,
// so each compaction re-read and re-wrote the whole store: write
// amplification grew with total data volume and a sustained ingest run
// eventually stalled behind an O(total-data) rewrite. IoT keys carry
// timestamps, and the workload appends in rough time order, so the table
// set is partitioned into fixed-duration time windows (Options.
// WindowDuration): a table belongs to the window of its newest data
// timestamp (falling back to its creation wall-clock time when keys carry
// no timestamps — both are unix milliseconds, so the axis is shared).
//
// Only the hot window — the one holding the newest table — churns. Inside
// it, flushed tables are folded size-tiered: a contiguous group of at least
// CompactTrigger similar-sized tables (within tierSizeRatio of each other)
// merges into one, so amplification per byte is logarithmic in window
// volume rather than linear in store volume. Once ingest moves on and a
// window goes cold, its remaining tables are merged once into a single
// maximally-compacted file that is never rewritten again.
//
// Correctness invariant: a pick is always a contiguous span of the
// newest-first table list, and its output is installed at the span's
// position. Shadowing order is therefore preserved no matter which span is
// chosen. Tombstones may be dropped only when the span reaches the oldest
// table (nothing older remains to resurrect).
package lsm

import (
	"tpcxiot/internal/telemetry"
)

// Compaction picker tuning. The trigger (how many similar-sized tables make
// a tier worth merging) is Options.CompactTrigger; these bound the shape of
// one merge.
const (
	// tierSizeRatio is the max size spread within one tier: a contiguous
	// group counts as a tier only while its largest table is at most this
	// many times its smallest. Keeps a fresh flush from being merged into a
	// settled output thousands of times its size.
	tierSizeRatio = 4
	// maxCompactWidth caps the tables merged in one pass, bounding merge
	// memory and the latency of a single compaction.
	maxCompactWidth = 10
)

// window returns the table's time-window index on the shared unix-ms axis.
func (t *tableHandle) window(windowMS int64) int64 {
	if t.hasTS {
		return t.maxTS / windowMS
	}
	return t.created.UnixMilli() / windowMS
}

// compactionPick is one unit of compaction work: a contiguous span of the
// newest-first table list.
type compactionPick struct {
	start, n       int // span within s.tables at pick time
	inputs         []*tableHandle
	dropTombstones bool
	reason         string // "hot-tier", "cold-window" or "backpressure"
}

// tableRun is a maximal contiguous span of tables sharing a window.
type tableRun struct {
	window   int64
	start, n int
	bytes    int64
}

// runsLocked partitions s.tables (newest first) into window runs. Caller
// holds mu.
func (s *Store) runsLocked() []tableRun {
	windowMS := s.opts.WindowDuration.Milliseconds()
	var runs []tableRun
	for i, t := range s.tables {
		w := t.window(windowMS)
		if len(runs) == 0 || runs[len(runs)-1].window != w {
			runs = append(runs, tableRun{window: w, start: i})
		}
		r := &runs[len(runs)-1]
		r.n++
		r.bytes += t.size
	}
	return runs
}

// pickCompactionLocked chooses the next compaction, or nil when the store
// is settled. Caller holds mu (read suffices; the pick is validated against
// live handles at install time by pointer identity).
//
// Priority: (1) the oldest cold window still holding several tables — one
// merge retires it forever; (2) a size tier inside the hot window;
// (3) under write backpressure only, a full merge as the escape hatch that
// guarantees the file count collapses.
func (s *Store) pickCompactionLocked() *compactionPick {
	if len(s.tables) < 2 {
		return nil
	}
	runs := s.runsLocked()
	hot := s.tables[0].window(s.opts.WindowDuration.Milliseconds())

	// Oldest cold window with more than one table.
	for i := len(runs) - 1; i >= 0; i-- {
		r := runs[i]
		if r.window == hot || r.n < 2 {
			continue
		}
		start, n := r.start, r.n
		if n > maxCompactWidth {
			// Merge the oldest part first; later passes finish the window.
			start, n = r.start+r.n-maxCompactWidth, maxCompactWidth
		}
		return s.pickSpanLocked(start, n, "cold-window")
	}

	// Size tier inside the hot window's run (which, holding the newest
	// table, is always runs[0] when its window is hot).
	if runs[0].window == hot {
		if p := s.pickTierLocked(runs[0]); p != nil {
			return p
		}
	}

	// Escape hatch: writers are stalled on MaxStoreFiles but no tier or
	// cold window qualifies (e.g. a pathological size staircase). A full
	// merge restores the old strategy's guarantee that backpressure always
	// resolves.
	if s.stallWaiters.Load() > 0 {
		return s.pickSpanLocked(0, len(s.tables), "backpressure")
	}
	return nil
}

// pickTierLocked finds the newest contiguous group of at least
// CompactTrigger tables within run whose sizes stay within tierSizeRatio.
func (s *Store) pickTierLocked(run tableRun) *compactionPick {
	end := run.start + run.n
	for i := run.start; i < end; {
		minSz := s.tables[i].size
		maxSz := minSz
		j := i + 1
		for j < end && j-i < maxCompactWidth {
			sz := s.tables[j].size
			nmin, nmax := minSz, maxSz
			if sz < nmin {
				nmin = sz
			}
			if sz > nmax {
				nmax = sz
			}
			if nmax > nmin*tierSizeRatio {
				break
			}
			minSz, maxSz = nmin, nmax
			j++
		}
		if j-i >= s.opts.CompactTrigger {
			return s.pickSpanLocked(i, j-i, "hot-tier")
		}
		i = j
	}
	return nil
}

// pickSpanLocked materialises a span into a pick, acquiring nothing yet.
func (s *Store) pickSpanLocked(start, n int, reason string) *compactionPick {
	return &compactionPick{
		start:  start,
		n:      n,
		inputs: append([]*tableHandle(nil), s.tables[start:start+n]...),
		// Nothing older than the span means no shadowed version a dropped
		// tombstone could resurrect.
		dropTombstones: start+n == len(s.tables),
		reason:         reason,
	}
}

// compactionDebtLocked is the bytes pending compaction would rewrite right
// now: cold windows not yet merged to one table, plus the hot window once
// it holds a mergeable tier. A settled store — every cold window one table,
// hot window below trigger — owes nothing, so the gauge no longer scales
// with total data volume. Caller holds mu.
func (s *Store) compactionDebtLocked() int64 {
	if len(s.tables) < 2 {
		return 0
	}
	runs := s.runsLocked()
	hot := s.tables[0].window(s.opts.WindowDuration.Milliseconds())
	var debt int64
	for _, r := range runs {
		switch {
		case r.window != hot:
			if r.n >= 2 {
				debt += r.bytes
			}
		case r.n >= s.opts.CompactTrigger:
			debt += r.bytes
		}
	}
	return debt
}

// TierStat summarises one time window of the table set for introspection:
// the /storage document and the driver report's Storage section.
type TierStat struct {
	// Window is the window index; WindowStartMS is its inclusive start on
	// the unix-ms axis (WindowStartMS + window duration is the exclusive
	// end).
	Window        int64 `json:"window"`
	WindowStartMS int64 `json:"window_start_ms"`
	Tables        int   `json:"tables"`
	Bytes         int64 `json:"bytes"`
	// Hot marks the window still accepting the newest data; cold windows
	// converge to a single table and are never rewritten again.
	Hot bool `json:"hot"`
	// WallClock marks a window derived from file creation time because the
	// keys carried no timestamps.
	WallClock bool `json:"wall_clock"`
}

// TierStats reports the table set grouped by time window, newest first.
func (s *Store) TierStats() []TierStat {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.tables) == 0 {
		return nil
	}
	windowMS := s.opts.WindowDuration.Milliseconds()
	hot := s.tables[0].window(windowMS)
	var out []TierStat
	for _, r := range s.runsLocked() {
		// Merge runs of the same window (out-of-order flushes can split a
		// window across non-adjacent runs; report them as one tier).
		merged := false
		for i := range out {
			if out[i].Window == r.window {
				out[i].Tables += r.n
				out[i].Bytes += r.bytes
				merged = true
				break
			}
		}
		if merged {
			continue
		}
		out = append(out, TierStat{
			Window:        r.window,
			WindowStartMS: r.window * windowMS,
			Tables:        r.n,
			Bytes:         r.bytes,
			Hot:           r.window == hot,
			WallClock:     !s.tables[r.start].hasTS,
		})
	}
	return out
}

// kickCompactor nudges the background compaction goroutine; a kick is
// merged into one already pending.
func (s *Store) kickCompactor() {
	select {
	case s.compactKick <- struct{}{}:
	default:
	}
}

// compactLoop is the dedicated background compaction goroutine, decoupled
// from flush: flushes (and stalls) kick it, and each kick drains the picker
// until the store owes no compaction work. Budgeting is the debt gauge
// itself — the loop runs exactly while lsm.compaction_debt_bytes is
// nonzero.
func (s *Store) compactLoop() {
	defer s.bg.Done()
	for {
		select {
		case <-s.quit:
			return
		case <-s.compactKick:
		}
		for {
			select {
			case <-s.quit:
				return
			default:
			}
			did, err := s.compactOnce()
			if err != nil {
				s.elog.Error("background compaction failed",
					telemetry.F("error", err))
				break
			}
			if !did {
				break
			}
		}
	}
}

// CompactPending runs compactions in the calling goroutine until the picker
// is satisfied — cold windows merged to one table each, hot window below
// its tier trigger. Unlike Compact it never rewrites settled cold windows,
// so calling it on a settled store is free. It is the synchronous "settle"
// used by benchmarks and tests.
func (s *Store) CompactPending() error {
	for {
		did, err := s.compactOnce()
		if err != nil || !did {
			return err
		}
	}
}
