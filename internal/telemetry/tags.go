package telemetry

import (
	"sort"
	"strings"
)

// Metric tags give registry instruments dimensions: the same logical metric
// ("lsm.batch_applies") can be broken down per region and per region server
// by registering it once untagged (the cluster-wide roll-up) and once per
// dimension value. A tagged instrument is an ordinary registry entry whose
// name carries its tag set in a canonical rendered form —
//
//	lsm.batch_applies{region=iot,00001,server=2}
//
// so tagged metrics flow through every existing surface (snapshots, the
// interval ticker, the CSV export, /metrics) with no schema change, and
// report code that wants the dimensional view parses the names back apart
// with SplitTagged.

// Tag is one metric dimension, e.g. {Key: "region", Value: "iot,00001"}.
type Tag struct {
	Key   string
	Value string
}

// Tagged renders a metric name with its tag set in canonical form: tags
// sorted by key, rendered "name{k1=v1,k2=v2}". With no tags it returns name
// unchanged. Tag keys must not contain '=' or '}'; values may contain
// anything except '}' (region names contain commas, so the parse side splits
// on "=" boundaries, not commas).
func Tagged(name string, tags ...Tag) string {
	if len(tags) == 0 {
		return name
	}
	ts := append([]Tag(nil), tags...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].Key < ts[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, t := range ts {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.Key)
		b.WriteByte('=')
		b.WriteString(t.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// SplitTagged parses a canonical tagged name back into the base metric name
// and its tags. Untagged names return (name, nil). Tag values may contain
// commas (region names do), so a value runs until the ",key=" of the next
// tag or the closing brace.
func SplitTagged(full string) (base string, tags []Tag) {
	open := strings.IndexByte(full, '{')
	if open < 0 || !strings.HasSuffix(full, "}") {
		return full, nil
	}
	base = full[:open]
	body := full[open+1 : len(full)-1]
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return full, nil // malformed; treat as untagged
		}
		key := body[:eq]
		rest := body[eq+1:]
		// The value ends at the next ",k=" boundary or the end of the body.
		end := len(rest)
		for i := 0; i < len(rest); i++ {
			if rest[i] != ',' {
				continue
			}
			if nextEq := strings.IndexByte(rest[i+1:], '='); nextEq >= 0 &&
				!strings.ContainsAny(rest[i+1:i+1+nextEq], ",") {
				end = i
				break
			}
		}
		tags = append(tags, Tag{Key: key, Value: rest[:end]})
		if end == len(rest) {
			break
		}
		body = rest[end+1:]
	}
	return base, tags
}

// TagValue returns the value of key in full's tag set, or "" when absent.
func TagValue(full, key string) string {
	_, tags := SplitTagged(full)
	for _, t := range tags {
		if t.Key == key {
			return t.Value
		}
	}
	return ""
}

// CounterTagged returns the counter for name under the given tag set,
// creating it on first use. A nil registry returns a nil (no-op) counter.
func (r *Registry) CounterTagged(name string, tags ...Tag) *Counter {
	if r == nil {
		return nil
	}
	return r.Counter(Tagged(name, tags...))
}

// TimerTagged returns the stage timer for name under the given tag set. A
// nil registry returns a nil (no-op) timer.
func (r *Registry) TimerTagged(name string, tags ...Tag) *Timer {
	if r == nil {
		return nil
	}
	return r.Timer(Tagged(name, tags...))
}

// GaugeTagged registers a read-on-snapshot gauge under a tagged name. No-op
// on a nil registry.
func (r *Registry) GaugeTagged(name string, fn func() int64, tags ...Tag) {
	if r == nil {
		return
	}
	r.Gauge(Tagged(name, tags...), fn)
}
