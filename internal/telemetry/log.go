package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Level is a log event's severity.
type Level int8

// Severity levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "unknown"
	}
}

// Field is one structured key-value pair on a log event.
type Field struct {
	Key   string
	Value any
}

// F builds a Field; the short name keeps call sites readable.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Logger emits structured, leveled events as JSON Lines: one object per
// event with "ts", "level" and "msg" keys followed by the event's fields.
// It replaces raw log.Printf calls in the storage engine so recovery-path
// warnings stay machine-greppable. Safe for concurrent use; a nil *Logger
// discards everything, so instrumented code never branches on whether
// logging is enabled.
type Logger struct {
	min  Level
	base []Field // fields attached by With, rendered on every event

	sink *logSink
}

// logSink is the shared output half of a logger and all its With children.
type logSink struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time

	// Per-level event counters ("log.events{level=...}"), nil when the
	// logger is not attached to a registry.
	events [4]*Counter
}

// NewLogger returns a logger writing JSONL events at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{min: min, sink: &logSink{w: w, now: time.Now}}
}

// Instrument makes the logger count emitted events per level on reg as the
// tagged counter "log.events{level=...}". Returns the logger for chaining.
func (l *Logger) Instrument(reg *Registry) *Logger {
	if l == nil || reg == nil {
		return l
	}
	for lv := LevelDebug; lv <= LevelError; lv++ {
		l.sink.events[lv] = reg.CounterTagged("log.events", Tag{Key: "level", Value: lv.String()})
	}
	return l
}

// With returns a logger that attaches fields to every event. The child
// shares the parent's sink, level floor and instrumentation.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil || len(fields) == 0 {
		return l
	}
	base := append(append([]Field(nil), l.base...), fields...)
	return &Logger{min: l.min, base: base, sink: l.sink}
}

// Debug emits a debug event. No-op on a nil logger.
func (l *Logger) Debug(msg string, fields ...Field) { l.emit(LevelDebug, msg, fields) }

// Info emits an info event. No-op on a nil logger.
func (l *Logger) Info(msg string, fields ...Field) { l.emit(LevelInfo, msg, fields) }

// Warn emits a warning event. No-op on a nil logger.
func (l *Logger) Warn(msg string, fields ...Field) { l.emit(LevelWarn, msg, fields) }

// Error emits an error event. No-op on a nil logger.
func (l *Logger) Error(msg string, fields ...Field) { l.emit(LevelError, msg, fields) }

func (l *Logger) emit(level Level, msg string, fields []Field) {
	if l == nil || level < l.min {
		return
	}
	// Render outside the sink lock; only the write is serialised.
	line := renderEvent(l.sink.now(), level, msg, l.base, fields)

	s := l.sink
	s.mu.Lock()
	if s.w != nil {
		s.w.Write(line)
	}
	s.mu.Unlock()
	if level >= LevelDebug && level <= LevelError {
		s.events[level].Inc()
	}
}

// renderEvent builds one JSONL line. Keys render in a fixed order — ts,
// level, msg, then fields in the order given — so lines are stable and
// greppable. Values marshal with encoding/json; a value that fails to
// marshal renders as its error string.
func renderEvent(ts time.Time, level Level, msg string, base, fields []Field) []byte {
	buf := make([]byte, 0, 128)
	buf = append(buf, `{"ts":"`...)
	buf = ts.UTC().AppendFormat(buf, time.RFC3339Nano)
	buf = append(buf, `","level":"`...)
	buf = append(buf, level.String()...)
	buf = append(buf, `","msg":`...)
	buf = appendJSON(buf, msg)
	for _, f := range base {
		buf = appendField(buf, f)
	}
	for _, f := range fields {
		buf = appendField(buf, f)
	}
	buf = append(buf, '}', '\n')
	return buf
}

func appendField(buf []byte, f Field) []byte {
	buf = append(buf, ',')
	buf = appendJSON(buf, f.Key)
	buf = append(buf, ':')
	// error values are common fields and do not marshal usefully; render
	// their message instead.
	if err, ok := f.Value.(error); ok && err != nil {
		return appendJSON(buf, err.Error())
	}
	return appendJSON(buf, f.Value)
}

func appendJSON(buf []byte, v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(err.Error())
	}
	return append(buf, b...)
}
