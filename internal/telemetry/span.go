package telemetry

import (
	"time"

	"tpcxiot/internal/histogram"
)

// Timer measures durations of one named pipeline stage into a registry
// histogram. Hot paths resolve their Timer once at construction time; each
// measurement is then one Start/End pair with no map lookups. A nil *Timer
// (from a nil registry) measures nothing and never reads the clock.
type Timer struct {
	h *histogram.Histogram
}

// Timer returns the named stage timer, creating its histogram on first use.
// A nil registry returns a nil (no-op) timer.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	return &Timer{h: r.Histogram(name)}
}

// Start opens a span. On a nil timer the returned span is inert and Start
// does not read the clock, keeping disabled-telemetry hot paths clean.
func (t *Timer) Start() Span {
	if t == nil {
		return Span{}
	}
	return Span{h: t.h, start: time.Now()}
}

// Span is one in-flight timed operation. End it exactly once; an inert span
// (from a nil timer) may be ended safely.
type Span struct {
	h     *histogram.Histogram
	start time.Time
}

// End records the span's elapsed time. No-op on an inert span.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Record(time.Since(s.start).Nanoseconds())
}

// StartSpan opens a span for a named stage directly on a registry: the
// convenience form for cold paths. Hot paths should hold a *Timer instead
// to avoid the per-call name lookup. Safe on a nil registry.
func StartSpan(r *Registry, name string) Span {
	return r.Timer(name).Start()
}
