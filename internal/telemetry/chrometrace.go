package telemetry

import (
	"encoding/json"
	"io"
)

// Chrome trace-event export: completed traces render as a JSON object with a
// "traceEvents" array loadable in chrome://tracing or Perfetto. Each distinct
// service becomes one "thread" (tid), named via "M" (metadata) events, and
// each span becomes one "X" (complete) event with microsecond timestamps.
// Output is deterministic for a fixed input: tids are assigned in first-seen
// span order and events keep span order within each trace.

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts,omitempty"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes traces as Chrome trace-event JSON. Timestamps are
// microseconds since the earliest span across all traces, so the viewer
// timeline starts at zero.
func WriteChromeTrace(w io.Writer, traces []*Trace) error {
	var t0 int64 = -1
	for _, tr := range traces {
		for _, s := range tr.Spans {
			if t0 < 0 || s.StartNs < t0 {
				t0 = s.StartNs
			}
		}
	}
	if t0 < 0 {
		t0 = 0
	}

	tids := make(map[string]int)
	var events []chromeEvent
	for _, tr := range traces {
		for _, s := range tr.Spans {
			tid, ok := tids[s.Service]
			if !ok {
				tid = len(tids)
				tids[s.Service] = tid
				events = append(events, chromeEvent{
					Name: "thread_name",
					Ph:   "M",
					Pid:  1,
					Tid:  tid,
					Args: map[string]any{"name": s.Service},
				})
			}
			events = append(events, chromeEvent{
				Name: s.Name,
				Ph:   "X",
				Pid:  1,
				Tid:  tid,
				Ts:   float64(s.StartNs-t0) / 1e3,
				Dur:  float64(s.DurNs) / 1e3,
				Args: map[string]any{
					"trace_id": s.TraceID,
					"span_id":  s.SpanID,
					"parent":   s.ParentID,
				},
			})
		}
	}
	if events == nil {
		events = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}
