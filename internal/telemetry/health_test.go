package telemetry

import (
	"runtime"
	"testing"
	"time"
)

func gaugeByName(reg *Registry, name string) (int64, bool) {
	for _, g := range reg.Gauges() {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

func TestHealthSamplerGauges(t *testing.T) {
	reg := NewRegistry()
	// A long interval so only explicit Sample calls produce readings and
	// the test is deterministic.
	h := StartHealthSampler(reg, time.Hour)
	defer h.Stop()

	if h.Samples() < 1 {
		t.Fatal("no initial sample taken at start")
	}
	for _, name := range []string{
		"runtime.heap_alloc_bytes",
		"runtime.heap_sys_bytes",
		"runtime.rss_bytes",
		"runtime.goroutines",
		"runtime.gc_count",
		"runtime.gc_pause_total_ns",
	} {
		if _, ok := gaugeByName(reg, name); !ok {
			t.Errorf("gauge %s not registered", name)
		}
	}
	if v, _ := gaugeByName(reg, "runtime.heap_alloc_bytes"); v <= 0 {
		t.Errorf("heap_alloc_bytes = %d, want > 0", v)
	}
	if v, _ := gaugeByName(reg, "runtime.goroutines"); v <= 0 {
		t.Errorf("goroutines = %d, want > 0", v)
	}
	// statm is always present on Linux, where CI runs.
	if v, _ := gaugeByName(reg, "runtime.rss_bytes"); v <= 0 {
		t.Errorf("rss_bytes = %d, want > 0 on linux", v)
	}

	before := h.Samples()
	h.Sample()
	if got := h.Samples(); got != before+1 {
		t.Errorf("samples = %d after explicit Sample, want %d", got, before+1)
	}
}

func TestHealthSamplerGCPauses(t *testing.T) {
	reg := NewRegistry()
	h := StartHealthSampler(reg, time.Hour)
	defer h.Stop()

	startCount, _ := gaugeByName(reg, "runtime.gc_count")
	runtime.GC()
	runtime.GC()
	h.Sample()

	endCount, _ := gaugeByName(reg, "runtime.gc_count")
	if endCount < startCount+2 {
		t.Errorf("gc_count went %d -> %d, want +2 from forced GCs", startCount, endCount)
	}
	// Each completed cycle since start must appear exactly once in the
	// pause histogram (the pre-start seed excludes earlier cycles).
	snap := h.pauseHist.Snapshot()
	if snap.Count() != endCount-startCount {
		t.Errorf("gc.pause entries = %d, want %d (one per cycle since start)",
			snap.Count(), endCount-startCount)
	}
	// Re-sampling without new cycles must not double-record pauses.
	h.Sample()
	if again := h.pauseHist.Snapshot().Count(); again != snap.Count() {
		t.Errorf("gc.pause entries grew %d -> %d without new GC cycles", snap.Count(), again)
	}
}

func TestHealthSamplerNil(t *testing.T) {
	var h *HealthSampler
	if got := StartHealthSampler(nil, time.Second); got != nil {
		t.Errorf("StartHealthSampler(nil) = %v, want nil", got)
	}
	// All methods must be nil-safe: the driver holds a nil sampler when
	// telemetry is off.
	h.Sample()
	h.Stop()
	if h.Samples() != 0 {
		t.Error("nil sampler reported samples")
	}
}

func TestHealthSamplerStopIdempotent(t *testing.T) {
	reg := NewRegistry()
	h := StartHealthSampler(reg, time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	h.Stop()
	h.Stop()
	// Gauges keep serving the final reading after Stop.
	if v, ok := gaugeByName(reg, "runtime.heap_alloc_bytes"); !ok || v <= 0 {
		t.Errorf("heap gauge after stop = %d (ok=%v)", v, ok)
	}
}

func TestSeriesGaugeStats(t *testing.T) {
	s := &Series{Points: []Point{
		{Gauges: []Value{{Name: "g", Value: 10}, {Name: "other", Value: 1}}},
		{Gauges: []Value{{Name: "g", Value: 30}}},
		{Gauges: []Value{{Name: "g", Value: 20}}},
	}}
	peak, mean, ok := s.GaugeStats("g")
	if !ok || peak != 30 || mean != 20 {
		t.Errorf("GaugeStats = (%d, %f, %v), want (30, 20, true)", peak, mean, ok)
	}
	if _, _, ok := s.GaugeStats("absent"); ok {
		t.Error("absent gauge reported ok")
	}
}
