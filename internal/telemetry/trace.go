package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Distributed tracing: one sampled driver-side operation produces one tree
// of spans spanning client → region server → region → lsm → wal →
// replication fan-out, with the server-side spans shipped back piggybacked
// on the RPC response frame and stitched client-side.
//
// The design splits three roles:
//
//   - Tracer owns the sampling decision, the completed-trace ring buffer,
//     and the slow-op log. One Tracer per process (per run).
//   - OpTrace collects the spans of ONE in-flight operation. The client side
//     creates it via Tracer.StartTrace; a server handling a sampled RPC
//     creates a detached one via JoinRemote, drains it with TakeSpans, and
//     the client stitches those spans back in with AddSpans.
//   - TSpan is one open span. It is a small value; Child/ChildIn open
//     sub-spans, End records the span into its OpTrace.
//
// Everything is nil-safe and inert-safe: a nil Tracer samples nothing, a
// nil OpTrace hands out inert TSpans, and an inert TSpan's methods never
// read the clock — an untraced operation pays a handful of pointer tests.

// TraceContext identifies a position in a distributed trace: the trace id,
// the span to parent new work under, and whether the operation is sampled.
// It is what crosses process and wire boundaries (the optional trace header
// on every TCP frame).
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
	Sampled bool
}

// SpanRecord is one completed span of a trace.
type SpanRecord struct {
	TraceID  uint64 `json:"trace_id"`
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id"` // 0 for the root span
	Name     string `json:"name"`
	Service  string `json:"service"`  // emitting component, e.g. "client", "server-2", "node-00/iot,00001"
	StartNs  int64  `json:"start_ns"` // wall clock, nanoseconds since the Unix epoch
	DurNs    int64  `json:"dur_ns"`
}

// Trace is one completed operation's span tree. Spans appear in completion
// order; the root (ParentID == 0) is last to complete and therefore last.
type Trace struct {
	Spans []SpanRecord
}

// Root returns the root span, or a zero record when the trace is malformed.
func (t *Trace) Root() SpanRecord {
	for i := len(t.Spans) - 1; i >= 0; i-- {
		if t.Spans[i].ParentID == 0 {
			return t.Spans[i]
		}
	}
	return SpanRecord{}
}

// Duration is the root span's duration.
func (t *Trace) Duration() time.Duration { return time.Duration(t.Root().DurNs) }

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// SampleEvery samples one in N operations. <= 0 disables tracing
	// entirely (StartTrace never samples).
	SampleEvery int
	// SlowOpThreshold: a completed sampled trace whose root span meets or
	// exceeds it is retained in the slow-trace list and logged (span tree
	// included) through Logger. Negative disables; zero records every
	// sampled operation as slow, which is how smoke tests exercise the path.
	SlowOpThreshold time.Duration
	// SlowOpDisabled must be set to distinguish "threshold 0" from "unset"
	// — the zero TracerOptions value keeps the slow-op log off.
	SlowOpDisabled bool
	// Logger receives slow-op events; nil logs nothing.
	Logger *Logger
	// BufferSize caps the completed-trace ring buffer. Defaults to 256.
	BufferSize int
	// Service names the component starting traces. Defaults to "client".
	Service string
}

// Tracer makes sampling decisions and retains completed traces. Safe for
// concurrent use; a nil *Tracer never samples.
type Tracer struct {
	sampleEvery int64
	slowNs      int64
	slowOn      bool
	logger      *Logger
	service     string

	seq atomic.Int64 // operation counter driving the 1-in-N decision

	mu      sync.Mutex
	ring    []*Trace // completed traces, ring buffer
	ringCap int
	next    int
	slow    []*Trace // most recent slow traces, bounded by slowCap
	total   int64    // completed traces ever recorded
}

// slowCap bounds the retained slow-trace list.
const slowCap = 32

// NewTracer builds a tracer. Returns a tracer even when sampling is
// disabled so callers can hold one unconditionally.
func NewTracer(o TracerOptions) *Tracer {
	if o.BufferSize <= 0 {
		o.BufferSize = 256
	}
	if o.Service == "" {
		o.Service = "client"
	}
	t := &Tracer{
		sampleEvery: int64(o.SampleEvery),
		slowNs:      o.SlowOpThreshold.Nanoseconds(),
		slowOn:      !o.SlowOpDisabled && o.SlowOpThreshold >= 0,
		logger:      o.Logger,
		service:     o.Service,
		ringCap:     o.BufferSize,
	}
	if o.SlowOpThreshold < 0 {
		t.slowOn = false
	}
	return t
}

// spanIDs generates process-wide unique span and trace ids. A counter run
// through a mixing permutation keeps ids unique, non-zero and cheap without
// pulling in math/rand.
var spanIDs atomic.Uint64

func newID() uint64 {
	// splitmix64 finalizer over a strided counter; never returns 0.
	x := spanIDs.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// StartTrace makes the sampling decision for one operation. When sampled it
// returns the operation's collector and its open root span; otherwise both
// returns are inert (nil OpTrace, zero TSpan) and no clock is read.
func (t *Tracer) StartTrace(name string) (*OpTrace, TSpan) {
	if t == nil || t.sampleEvery <= 0 {
		return nil, TSpan{}
	}
	if t.seq.Add(1)%t.sampleEvery != 0 {
		return nil, TSpan{}
	}
	op := &OpTrace{tracer: t, traceID: newID()}
	root := op.StartSpan(t.service, name, TraceContext{TraceID: op.traceID, Sampled: true})
	op.rootID = root.id
	return op, root
}

// OpTrace collects the spans of one in-flight operation. Spans may End from
// multiple goroutines (replication fan-out); the collector is mutex-guarded.
type OpTrace struct {
	tracer  *Tracer // nil for a remote (server-side) collector
	traceID uint64
	rootID  uint64

	mu    sync.Mutex
	spans []SpanRecord
}

// JoinRemote builds a detached collector for the server side of a sampled
// remote operation: spans recorded into it are drained with TakeSpans and
// shipped back to the caller rather than finished locally. Returns nil (an
// inert collector) when ctx is unsampled.
func JoinRemote(ctx TraceContext) *OpTrace {
	if !ctx.Sampled {
		return nil
	}
	return &OpTrace{traceID: ctx.TraceID}
}

// RemoteParent returns a span handle standing in for the remote caller's
// span identified by ctx, so server-side work can be parented under it.
// The handle must not be Ended — the remote caller owns the real span.
// Safe on a nil collector (returns an inert span).
func (o *OpTrace) RemoteParent(ctx TraceContext) TSpan {
	if o == nil {
		return TSpan{}
	}
	return TSpan{op: o, id: ctx.SpanID}
}

// StartSpan opens a span in service under parent. Safe on a nil collector
// (returns an inert span).
func (o *OpTrace) StartSpan(service, name string, parent TraceContext) TSpan {
	if o == nil {
		return TSpan{}
	}
	return TSpan{
		op:      o,
		id:      newID(),
		parent:  parent.SpanID,
		name:    name,
		service: service,
		start:   time.Now(),
	}
}

// TakeSpans drains the collected spans (server side of an RPC). Safe on a
// nil collector.
func (o *OpTrace) TakeSpans() []SpanRecord {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	spans := o.spans
	o.spans = nil
	o.mu.Unlock()
	return spans
}

// AddSpans stitches remotely collected spans into this operation's trace,
// rewriting their trace id to this trace's. Safe on a nil collector.
func (o *OpTrace) AddSpans(spans []SpanRecord) {
	if o == nil || len(spans) == 0 {
		return
	}
	o.mu.Lock()
	for _, s := range spans {
		s.TraceID = o.traceID
		o.spans = append(o.spans, s)
	}
	o.mu.Unlock()
}

// finishRoot completes the operation: the collected spans become a Trace in
// the tracer's ring buffer, and slow operations are retained and logged.
func (o *OpTrace) finishRoot(root SpanRecord) {
	o.mu.Lock()
	o.spans = append(o.spans, root)
	spans := o.spans
	o.spans = nil
	o.mu.Unlock()

	t := o.tracer
	if t == nil {
		return // remote collector: the client side owns completion
	}
	tr := &Trace{Spans: spans}
	slow := t.slowOn && root.DurNs >= t.slowNs

	t.mu.Lock()
	if len(t.ring) < t.ringCap {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.next] = tr
		t.next = (t.next + 1) % t.ringCap
	}
	if slow {
		if len(t.slow) == slowCap {
			copy(t.slow, t.slow[1:])
			t.slow = t.slow[:slowCap-1]
		}
		t.slow = append(t.slow, tr)
	}
	t.total++
	t.mu.Unlock()

	if slow {
		t.logger.Warn("slow operation",
			F("op", root.Name),
			F("trace_id", root.TraceID),
			F("duration_ms", float64(root.DurNs)/1e6),
			F("threshold_ms", float64(t.slowNs)/1e6),
			F("spans", spans),
		)
	}
}

// Traces snapshots the completed-trace ring buffer, oldest first.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// SlowTraces returns the retained slow traces, oldest first.
func (t *Tracer) SlowTraces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Trace(nil), t.slow...)
}

// CompletedCount reports how many traces have finished since start.
func (t *Tracer) CompletedCount() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// SlowOpThreshold reports the active slow-op threshold and whether the slow
// log is enabled.
func (t *Tracer) SlowOpThreshold() (time.Duration, bool) {
	if t == nil {
		return 0, false
	}
	return time.Duration(t.slowNs), t.slowOn
}

// TSpan is one open span: a value handle that ends exactly once. The zero
// TSpan is inert — every method is a cheap no-op that never reads the clock.
type TSpan struct {
	op      *OpTrace
	id      uint64
	parent  uint64
	name    string
	service string
	start   time.Time
}

// Traced reports whether the span is live. Hot paths use it to skip
// building span names for untraced operations.
func (s TSpan) Traced() bool { return s.op != nil }

// Context returns the span's position for propagation (to children, or
// across the wire). The zero TSpan returns an unsampled context.
func (s TSpan) Context() TraceContext {
	if s.op == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.op.traceID, SpanID: s.id, Sampled: true}
}

// Child opens a sub-span in the same service. Inert on an inert span.
func (s TSpan) Child(name string) TSpan {
	return s.ChildIn(s.service, name)
}

// ChildIn opens a sub-span in another service (a different component of the
// same process, e.g. a region applying a replicated batch). Inert on an
// inert span.
func (s TSpan) ChildIn(service, name string) TSpan {
	if s.op == nil {
		return TSpan{}
	}
	return s.op.StartSpan(service, name, s.Context())
}

// AddRemoteSpans stitches spans shipped back from a remote service into
// this span's trace. No-op on an inert span.
func (s TSpan) AddRemoteSpans(spans []SpanRecord) {
	s.op.AddSpans(spans)
}

// End completes the span, recording it into the operation's collector. The
// root span's End completes the whole operation. No-op on an inert span;
// must be called at most once.
func (s TSpan) End() {
	if s.op == nil {
		return
	}
	rec := SpanRecord{
		TraceID:  s.op.traceID,
		SpanID:   s.id,
		ParentID: s.parent,
		Name:     s.name,
		Service:  s.service,
		StartNs:  s.start.UnixNano(),
		DurNs:    time.Since(s.start).Nanoseconds(),
	}
	if s.parent == 0 && s.id == s.op.rootID {
		s.op.finishRoot(rec)
		return
	}
	s.op.mu.Lock()
	s.op.spans = append(s.op.spans, rec)
	s.op.mu.Unlock()
}
