package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleEvery: 3})
	sampled := 0
	for i := 0; i < 9; i++ {
		op, sp := tr.StartTrace("client.put")
		if op != nil {
			sampled++
			sp.End()
		} else if sp.Traced() {
			t.Fatal("unsampled op returned a live span")
		}
	}
	if sampled != 3 {
		t.Fatalf("sampled %d of 9 at 1-in-3", sampled)
	}
	if got := tr.CompletedCount(); got != 3 {
		t.Fatalf("CompletedCount = %d", got)
	}

	var nilTracer *Tracer
	if op, sp := nilTracer.StartTrace("x"); op != nil || sp.Traced() {
		t.Fatal("nil tracer sampled")
	}
}

// TestRemoteStitching drives the full client/server span protocol in
// miniature: the client opens a trace, ships its RPC span's context to a
// "server" which joins the trace, records its own spans, and returns them
// for stitching. The completed trace must be one tree under one trace id.
func TestRemoteStitching(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleEvery: 1})
	op, root := tr.StartTrace("client.put")
	if op == nil {
		t.Fatal("not sampled at 1-in-1")
	}
	rpcSp := root.Child("rpc.mutate")
	ctx := rpcSp.Context()
	if !ctx.Sampled || ctx.TraceID == 0 || ctx.SpanID == 0 {
		t.Fatalf("bad wire context %+v", ctx)
	}

	// Server side: join, work, drain.
	rop := JoinRemote(ctx)
	parent := rop.RemoteParent(ctx)
	srvSp := parent.ChildIn("server-0", "server.mutate")
	walSp := srvSp.ChildIn("node-00/iot,00001", "wal.fsync")
	walSp.End()
	srvSp.End()
	remote := rop.TakeSpans()
	if len(remote) != 2 {
		t.Fatalf("server recorded %d spans, want 2", len(remote))
	}

	// Client side: stitch and finish.
	rpcSp.AddRemoteSpans(remote)
	rpcSp.End()
	root.End()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces", len(traces))
	}
	spans := traces[0].Spans
	if len(spans) != 4 {
		t.Fatalf("trace has %d spans, want 4: %+v", len(spans), spans)
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		if s.TraceID != ctx.TraceID {
			t.Fatalf("span %q has trace id %x, want %x", s.Name, s.TraceID, ctx.TraceID)
		}
		byName[s.Name] = s
	}
	if byName["server.mutate"].ParentID != ctx.SpanID {
		t.Errorf("server.mutate parented under %x, want rpc span %x",
			byName["server.mutate"].ParentID, ctx.SpanID)
	}
	if byName["wal.fsync"].ParentID != byName["server.mutate"].SpanID {
		t.Errorf("wal.fsync parented under %x, want server.mutate %x",
			byName["wal.fsync"].ParentID, byName["server.mutate"].SpanID)
	}
	if byName["client.put"].ParentID != 0 {
		t.Errorf("root has parent %x", byName["client.put"].ParentID)
	}
	if byName["wal.fsync"].Service != "node-00/iot,00001" {
		t.Errorf("service lost in stitching: %+v", byName["wal.fsync"])
	}
	if root := traces[0].Root(); root.Name != "client.put" {
		t.Errorf("Root() = %q", root.Name)
	}
}

func TestSlowOpLogAndRetention(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(TracerOptions{
		SampleEvery:     1,
		SlowOpThreshold: 0, // every sampled op is "slow"
		Logger:          NewLogger(&buf, LevelWarn),
	})
	_, sp := tr.StartTrace("client.put")
	child := sp.Child("rpc.mutate")
	child.End()
	sp.End()

	if got := len(tr.SlowTraces()); got != 1 {
		t.Fatalf("SlowTraces = %d, want 1", got)
	}
	line := buf.String()
	if !strings.Contains(line, `"msg":"slow operation"`) || !strings.Contains(line, `"op":"client.put"`) {
		t.Fatalf("missing slow-op event: %s", line)
	}
	// The span tree ships inside the event, JSON-parseable.
	var ev struct {
		Spans []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(line)), &ev); err != nil {
		t.Fatal(err)
	}
	if len(ev.Spans) != 2 {
		t.Fatalf("event carries %d spans, want 2", len(ev.Spans))
	}

	// Negative threshold disables the slow log entirely.
	tr2 := NewTracer(TracerOptions{SampleEvery: 1, SlowOpThreshold: -1})
	_, sp2 := tr2.StartTrace("client.put")
	sp2.End()
	if len(tr2.SlowTraces()) != 0 {
		t.Fatal("negative threshold retained a slow trace")
	}
	if d, on := tr2.SlowOpThreshold(); on {
		t.Fatalf("slow log reported on (threshold %v)", d)
	}
}

func TestTraceRingBuffer(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleEvery: 1, BufferSize: 4})
	for i := 0; i < 10; i++ {
		_, sp := tr.StartTrace("op")
		sp.End()
	}
	if got := len(tr.Traces()); got != 4 {
		t.Fatalf("ring holds %d, want 4", got)
	}
	if got := tr.CompletedCount(); got != 10 {
		t.Fatalf("CompletedCount = %d", got)
	}
}

func TestInertSpansNeverTouchClock(t *testing.T) {
	var sp TSpan
	if sp.Traced() {
		t.Fatal("zero span traced")
	}
	child := sp.Child("x").ChildIn("svc", "y")
	child.End()
	sp.AddRemoteSpans([]SpanRecord{{SpanID: 1}})
	sp.End()
	if sp.Context().Sampled {
		t.Fatal("zero span sampled")
	}
}

// TestChromeTraceGolden pins the exact trace-event JSON for a fixed span
// set: tids assigned in first-seen service order, microsecond timestamps
// relative to the earliest span, metadata events naming each service.
func TestChromeTraceGolden(t *testing.T) {
	traces := []*Trace{
		{Spans: []SpanRecord{
			{TraceID: 1, SpanID: 2, ParentID: 3, Name: "wal.fsync", Service: "node-00/iot,00001", StartNs: 1500, DurNs: 500},
			{TraceID: 1, SpanID: 3, ParentID: 0, Name: "client.put", Service: "client", StartNs: 1000, DurNs: 2000},
		}},
		{Spans: []SpanRecord{
			{TraceID: 9, SpanID: 4, ParentID: 0, Name: "client.get", Service: "client", StartNs: 4000, DurNs: 1000},
		}},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, traces); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[` +
		`{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"node-00/iot,00001"}},` +
		`{"name":"wal.fsync","ph":"X","pid":1,"tid":0,"ts":0.5,"dur":0.5,"args":{"parent":3,"span_id":2,"trace_id":1}},` +
		`{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"client"}},` +
		`{"name":"client.put","ph":"X","pid":1,"tid":1,"dur":2,"args":{"parent":0,"span_id":3,"trace_id":1}},` +
		`{"name":"client.get","ph":"X","pid":1,"tid":1,"ts":3,"dur":1,"args":{"parent":0,"span_id":4,"trace_id":9}}` +
		`]}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("golden mismatch:\n got: %s\nwant: %s", got, want)
	}

	// Empty input still yields a valid document with an array, not null.
	buf.Reset()
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != `{"traceEvents":[]}` {
		t.Fatalf("empty export = %s", got)
	}
}

func TestTraceHandlerServesJSON(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleEvery: 1})
	_, sp := tr.StartTrace("client.put")
	sp.Child("rpc.mutate").End()
	sp.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Traces()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	// One metadata event for the "client" service plus two X events.
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
}
