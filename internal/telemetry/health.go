// Runtime health sampling: a background goroutine that periodically reads
// runtime.ReadMemStats and process state into registry gauges and a GC-pause
// histogram, so the interval series and the final report can correlate
// throughput dips with GC activity, heap growth, or goroutine leaks.
//
// Sampling is pull-push hybrid: ReadMemStats is too expensive to run inside
// a gauge function (it stops the world briefly, and several gauges would
// each pay it per snapshot), so the sampler caches one reading per period in
// atomics and the gauges serve the cached values. The sampler is off unless
// started — benchmarks that want a silent process simply never start it.

package telemetry

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tpcxiot/internal/histogram"
)

// DefaultHealthInterval is the sampling period when none is given.
const DefaultHealthInterval = time.Second

// HealthSampler periodically samples Go runtime and process health into a
// registry. Create with StartHealthSampler; stop with Stop.
type HealthSampler struct {
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	once     sync.Once

	// Cached readings, refreshed each period, served by gauges.
	heapAlloc    atomic.Int64 // bytes in live heap objects
	heapSys      atomic.Int64 // bytes obtained from the OS for the heap
	rss          atomic.Int64 // resident set size; 0 where unavailable
	goroutines   atomic.Int64
	gcCount      atomic.Int64 // cumulative GC cycles
	gcPauseTotal atomic.Int64 // cumulative stop-the-world ns
	samples      atomic.Int64

	pauseHist *histogram.Histogram // gc.pause distribution, ns

	recordMu  sync.Mutex // serialises record: Sample may race the loop
	lastNumGC uint32
}

// StartHealthSampler begins sampling every interval (DefaultHealthInterval
// when non-positive) and registers on reg:
//
//   - gauges "runtime.heap_alloc_bytes", "runtime.heap_sys_bytes",
//     "runtime.rss_bytes", "runtime.goroutines", "runtime.gc_count" and
//     "runtime.gc_pause_total_ns", all served from the latest sample,
//   - the histogram "gc.pause" holding one entry per observed GC pause, so
//     the report's quantile machinery works on pauses like on op latencies.
//
// Returns nil on a nil registry: health sampling without a registry to
// publish into has no observable effect, so none is started.
func StartHealthSampler(reg *Registry, interval time.Duration) *HealthSampler {
	if reg == nil {
		return nil
	}
	if interval <= 0 {
		interval = DefaultHealthInterval
	}
	h := &HealthSampler{
		interval:  interval,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		pauseHist: reg.Histogram("gc.pause"),
	}
	reg.Gauge("runtime.heap_alloc_bytes", h.heapAlloc.Load)
	reg.Gauge("runtime.heap_sys_bytes", h.heapSys.Load)
	reg.Gauge("runtime.rss_bytes", h.rss.Load)
	reg.Gauge("runtime.goroutines", h.goroutines.Load)
	reg.Gauge("runtime.gc_count", h.gcCount.Load)
	reg.Gauge("runtime.gc_pause_total_ns", h.gcPauseTotal.Load)

	// Seed NumGC so pauses from before the sampler started are not recorded.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	h.lastNumGC = ms.NumGC
	h.record(&ms)

	go h.run()
	return h
}

func (h *HealthSampler) run() {
	defer close(h.done)
	t := time.NewTicker(h.interval)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
			h.Sample()
		}
	}
}

// Sample takes one reading immediately. The background loop calls this each
// period; tests call it directly for determinism. Nil-safe.
func (h *HealthSampler) Sample() {
	if h == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	h.record(&ms)
}

func (h *HealthSampler) record(ms *runtime.MemStats) {
	h.recordMu.Lock()
	defer h.recordMu.Unlock()
	h.heapAlloc.Store(int64(ms.HeapAlloc))
	h.heapSys.Store(int64(ms.HeapSys))
	h.goroutines.Store(int64(runtime.NumGoroutine()))
	h.gcCount.Store(int64(ms.NumGC))
	h.gcPauseTotal.Store(int64(ms.PauseTotalNs))
	if rss := readRSSBytes(); rss > 0 {
		h.rss.Store(rss)
	}

	// PauseNs is a ring of the last 256 pause durations indexed by GC cycle;
	// record each cycle completed since the previous sample, once. A burst of
	// more than 256 cycles per period overflows the ring and the overwritten
	// pauses are lost — acceptable for a health signal.
	n := ms.NumGC - h.lastNumGC
	if n > uint32(len(ms.PauseNs)) {
		n = uint32(len(ms.PauseNs))
	}
	for i := ms.NumGC - n; i < ms.NumGC; i++ {
		h.pauseHist.Record(int64(ms.PauseNs[i%uint32(len(ms.PauseNs))]))
	}
	h.lastNumGC = ms.NumGC
	h.samples.Add(1)
}

// Samples reports how many readings have been taken; 0 on nil.
func (h *HealthSampler) Samples() int64 {
	if h == nil {
		return 0
	}
	return h.samples.Load()
}

// Stop halts the sampling goroutine and waits for it to exit. Idempotent
// and nil-safe; the registered gauges keep serving the final reading.
func (h *HealthSampler) Stop() {
	if h == nil {
		return
	}
	h.once.Do(func() {
		close(h.stop)
		<-h.done
	})
}

// readRSSBytes returns the process resident set size from /proc/self/statm,
// or 0 where the proc filesystem is unavailable (non-Linux).
func readRSSBytes() int64 {
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(b))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * int64(os.Getpagesize())
}
