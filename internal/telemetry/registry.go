// Package telemetry is the kit's observability subsystem: cheap atomic
// counters and gauges collected in a Registry, latency histograms for
// operation kinds and pipeline stages, a lightweight span API for tracing
// the put and query paths, a Ticker that turns cumulative state into a
// per-interval time series, and an expvar-style HTTP surface.
//
// The paper's evaluation is time-resolved — throughput-over-time curves and
// latency distributions with coefficients of variation (Figure 14) — so the
// benchmark needs continuous client-side and server-side measurement, not
// just end-of-run aggregates. Everything here is standard library only and
// global-free: a Registry is created per run and threaded through the
// stack's Options structs.
//
// Every entry point is nil-safe. A nil *Registry hands out nil *Counter and
// *Timer values whose methods do nothing and, crucially, never read the
// clock — so a run with telemetry disabled pays only a pointer test on the
// hot paths.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"

	"tpcxiot/internal/histogram"
)

// Counter is a cumulative atomic counter. The zero value is ready to use;
// a nil *Counter is a no-op sink, so instrumented code never branches on
// whether telemetry is enabled.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value; 0 on a nil receiver.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Value is one named scalar in a snapshot.
type Value struct {
	Name  string
	Value int64
}

// NamedSnapshot pairs a histogram name with its statistics.
type NamedSnapshot struct {
	Name string
	Snap histogram.Snapshot
}

// Registry holds a run's named counters, gauges and histograms. Safe for
// concurrent use. Registration is idempotent: asking for the same name
// twice returns the same instrument, so every LSM store in a cluster
// incrementing "lsm.flushes" feeds one cluster-wide counter.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string][]func() int64
	hists    map[string]*histogram.Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string][]func() int64),
		hists:    make(map[string]*histogram.Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge registers a read-on-snapshot gauge. Multiple registrations under
// one name sum their readings — each LSM store registers its own
// "lsm.memtable_bytes" function and the snapshot reports the total. No-op
// on a nil registry.
func (r *Registry) Gauge(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = append(r.gauges[name], fn)
	r.mu.Unlock()
}

// GaugeOnce registers fn under name only when no gauge with that name
// exists yet, and reports whether it registered. Derived gauges that
// compute ratios over shared counters (write amplification, read
// amplification) use it so opening several stores against one registry
// does not sum N copies of the same ratio.
func (r *Registry) GaugeOnce(name string, fn func() int64) bool {
	if r == nil || fn == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gauges[name]; ok {
		return false
	}
	r.gauges[name] = append(r.gauges[name], fn)
	return true
}

// GaugeValue reads one named gauge — the sum of its registered functions —
// returning 0 when absent or on a nil registry. The functions run outside
// the registry lock, so a gauge may itself call GaugeValue for a different
// name (derived ratio gauges do).
func (r *Registry) GaugeValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	fns := append([]func() int64(nil), r.gauges[name]...)
	r.mu.Unlock()
	var sum int64
	for _, fn := range fns {
		sum += fn()
	}
	return sum
}

// Histogram returns the named histogram, creating it on first use. A nil
// registry returns nil; prefer Timer for nil-safe duration recording.
func (r *Registry) Histogram(name string) *histogram.Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = histogram.New()
		r.hists[name] = h
	}
	return h
}

// Counters snapshots every counter, sorted by name.
func (r *Registry) Counters() []Value {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Value, 0, len(r.counters))
	for name, c := range r.counters {
		out = append(out, Value{Name: name, Value: c.Load()})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Gauges reads every gauge, sorted by name. Gauge functions run outside the
// registry lock so they may take their own locks freely.
func (r *Registry) Gauges() []Value {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type entry struct {
		name string
		fns  []func() int64
	}
	entries := make([]entry, 0, len(r.gauges))
	for name, fns := range r.gauges {
		entries = append(entries, entry{name, append([]func() int64(nil), fns...)})
	}
	r.mu.Unlock()

	out := make([]Value, 0, len(entries))
	for _, e := range entries {
		var sum int64
		for _, fn := range e.fns {
			sum += fn()
		}
		out = append(out, Value{Name: e.name, Value: sum})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Histograms snapshots every histogram, sorted by name.
func (r *Registry) Histograms() []NamedSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type entry struct {
		name string
		h    *histogram.Histogram
	}
	entries := make([]entry, 0, len(r.hists))
	for name, h := range r.hists {
		entries = append(entries, entry{name, h})
	}
	r.mu.Unlock()

	out := make([]NamedSnapshot, 0, len(entries))
	for _, e := range entries {
		out = append(out, NamedSnapshot{Name: e.name, Snap: e.h.Snapshot()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Summary is a complete point-in-time view of a registry, attached to the
// benchmark result so reports can render engine counters and per-stage
// latency breakdowns.
type Summary struct {
	// Counters and Gauges are scalar readings, sorted by name.
	Counters, Gauges []Value
	// Histograms holds every latency distribution (operation kinds, put-path
	// stages, query templates), sorted by name.
	Histograms []NamedSnapshot
}

// Summary captures the registry's current state; nil on a nil registry.
func (r *Registry) Summary() *Summary {
	if r == nil {
		return nil
	}
	return &Summary{
		Counters:   r.Counters(),
		Gauges:     r.Gauges(),
		Histograms: r.Histograms(),
	}
}

// Histogram returns the named snapshot and whether it exists.
func (s *Summary) Histogram(name string) (histogram.Snapshot, bool) {
	if s == nil {
		return histogram.Snapshot{}, false
	}
	for _, h := range s.Histograms {
		if h.Name == name {
			return h.Snap, true
		}
	}
	return histogram.Snapshot{}, false
}

// Counter returns the named counter value, or 0 when absent.
func (s *Summary) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}
