package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// histJSON is the wire shape of one histogram on the /metrics endpoint.
type histJSON struct {
	Count int64   `json:"count"`
	Min   int64   `json:"min_ns"`
	Mean  float64 `json:"mean_ns"`
	P50   int64   `json:"p50_ns"`
	P95   int64   `json:"p95_ns"`
	P99   int64   `json:"p99_ns"`
	Max   int64   `json:"max_ns"`
	CV    float64 `json:"cv"`
}

// metricsJSON is the /metrics document: expvar-style cumulative state.
type metricsJSON struct {
	Timestamp  time.Time           `json:"timestamp"`
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]int64    `json:"gauges"`
	Histograms map[string]histJSON `json:"histograms"`
}

// Handler serves the registry's live state as a JSON document, expvar-style:
// cumulative counters, instantaneous gauges, and per-histogram latency
// summaries. Map keys are emitted in sorted order by encoding/json, so the
// document is deterministic for a given state.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		doc := metricsJSON{
			Timestamp:  time.Now(),
			Counters:   make(map[string]int64),
			Gauges:     make(map[string]int64),
			Histograms: make(map[string]histJSON),
		}
		for _, c := range r.Counters() {
			doc.Counters[c.Name] = c.Value
		}
		for _, g := range r.Gauges() {
			doc.Gauges[g.Name] = g.Value
		}
		for _, h := range r.Histograms() {
			doc.Histograms[h.Name] = histJSON{
				Count: h.Snap.Count(),
				Min:   h.Snap.Min(),
				Mean:  h.Snap.Mean(),
				P50:   h.Snap.Percentile(50),
				P95:   h.Snap.Percentile(95),
				P99:   h.Snap.Percentile(99),
				Max:   h.Snap.Max(),
				CV:    h.Snap.CV(),
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
}

// NewServeMux mounts the observability surface: /metrics (the registry
// JSON) and the standard net/http/pprof profiling endpoints under
// /debug/pprof/.
func NewServeMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// TraceHandler serves the tracer's completed-trace ring buffer as Chrome
// trace-event JSON, loadable in chrome://tracing or Perfetto. A nil tracer
// serves an empty (but valid) document.
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		WriteChromeTrace(w, t.Traces())
	})
}

// MountTrace adds the /trace endpoint to a mux built by NewServeMux.
func MountTrace(mux *http.ServeMux, t *Tracer) {
	mux.Handle("/trace", TraceHandler(t))
}

// MountJSON mounts a handler at pattern that serves snapshot()'s result as
// an indented JSON document, computed per request. The storage layer's
// /storage endpoint is mounted this way; any introspection document works.
// A nil snapshot mounts nothing.
func MountJSON(mux *http.ServeMux, pattern string, snapshot func() any) {
	if snapshot == nil {
		return
	}
	mux.HandleFunc(pattern, func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snapshot())
	})
}

// MountHealth mounts a health endpoint at pattern: check() returns the body
// document and whether the system is healthy; unhealthy responses carry
// status 503 so load balancers and probes need only the status code. A nil
// check mounts nothing.
func MountHealth(mux *http.ServeMux, pattern string, check func() (doc any, ok bool)) {
	if check == nil {
		return
	}
	mux.HandleFunc(pattern, func(w http.ResponseWriter, req *http.Request) {
		doc, ok := check()
		w.Header().Set("Content-Type", "application/json")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
}

// Serve starts the observability HTTP server on addr (e.g. ":9090" or
// "127.0.0.1:0") in a background goroutine and returns the server and the
// bound address. The caller owns shutdown via srv.Close.
func Serve(addr string, r *Registry) (*http.Server, net.Addr, error) {
	return ServeTraced(addr, r, nil)
}

// ServeTraced is Serve with the /trace endpoint mounted too: the tracer's
// completed-trace buffer as Chrome trace-event JSON. A nil tracer serves an
// empty document.
func ServeTraced(addr string, r *Registry, t *Tracer) (*http.Server, net.Addr, error) {
	mux := NewServeMux(r)
	MountTrace(mux, t)
	return ServeMux(addr, mux)
}

// ServeMux starts the observability HTTP server on addr with a caller-built
// mux — NewServeMux plus whatever MountTrace/MountJSON/MountHealth endpoints
// the caller added — in a background goroutine, returning the server and the
// bound address. The caller owns shutdown via srv.Close.
func ServeMux(addr string, mux *http.ServeMux) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}
