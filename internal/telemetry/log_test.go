package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestLoggerJSONL(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)

	l.Debug("below the floor") // filtered
	l.Info("segment opened", F("segment", "wal-000001.log"))
	l.Warn("torn tail", F("records_replayed", 42), F("err", errors.New("checksum mismatch")))

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("invalid JSON line: %s", line)
		}
	}
	// Fixed key order keeps lines greppable.
	if !strings.HasPrefix(lines[0], `{"ts":"`) || !strings.Contains(lines[0], `"level":"info","msg":"segment opened","segment":"wal-000001.log"`) {
		t.Errorf("unexpected info line: %s", lines[0])
	}
	// error values render as their message.
	if !strings.Contains(lines[1], `"err":"checksum mismatch"`) {
		t.Errorf("error field not rendered: %s", lines[1])
	}

	var ev struct {
		TS    string `json:"ts"`
		Level string `json:"level"`
		Msg   string `json:"msg"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Level != "warn" || ev.Msg != "torn tail" || ev.TS == "" {
		t.Errorf("parsed event = %+v", ev)
	}
}

func TestLoggerWithAndInstrument(t *testing.T) {
	var buf bytes.Buffer
	reg := NewRegistry()
	base := NewLogger(&buf, LevelDebug).Instrument(reg)
	child := base.With(F("region", "iot,00001"), F("server", "2"))

	child.Warn("memtable flush failed", F("attempt", 1))

	line := buf.String()
	// With-fields render before call-site fields.
	if !strings.Contains(line, `"region":"iot,00001","server":"2","attempt":1`) {
		t.Errorf("unexpected field order: %s", line)
	}
	if got := reg.Counter(Tagged("log.events", Tag{Key: "level", Value: "warn"})).Load(); got != 1 {
		t.Errorf("warn counter = %d, want 1", got)
	}
	if got := reg.Counter(Tagged("log.events", Tag{Key: "level", Value: "info"})).Load(); got != 0 {
		t.Errorf("info counter = %d, want 0", got)
	}
}

func TestNilLoggerIsNoop(t *testing.T) {
	var l *Logger
	l.Info("into the void", F("k", "v"))
	l.With(F("k", "v")).Error("still nothing")
	// No panic is the assertion.
}
