package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterNilSafety(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if got := c.Load(); got != 0 {
		t.Fatalf("nil counter Load = %d, want 0", got)
	}

	var r *Registry
	if r.Counter("x") != nil {
		t.Fatal("nil registry must hand out nil counters")
	}
	if r.Timer("x") != nil {
		t.Fatal("nil registry must hand out nil timers")
	}
	r.Gauge("g", func() int64 { return 1 })
	if r.Counters() != nil || r.Gauges() != nil || r.Histograms() != nil {
		t.Fatal("nil registry snapshots must be nil")
	}
	if r.Summary() != nil {
		t.Fatal("nil registry summary must be nil")
	}
	// Inert span from a nil timer must be endable.
	r.Timer("x").Start().End()
	StartSpan(r, "y").End()
}

func TestRegistryCounterIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("lsm.flushes")
	b := r.Counter("lsm.flushes")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Add(2)
	b.Inc()
	if got := r.Counter("lsm.flushes").Load(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
}

func TestRegistrySnapshotDeterminism(t *testing.T) {
	r := NewRegistry()
	// Register in non-sorted order; snapshots must come back sorted.
	for _, name := range []string{"wal.syncs", "lsm.flushes", "wal.appends", "hbase.buffer_flushes"} {
		r.Counter(name).Inc()
	}
	first := r.Counters()
	for i := 0; i < 10; i++ {
		again := r.Counters()
		if len(again) != len(first) {
			t.Fatalf("snapshot length changed: %d vs %d", len(again), len(first))
		}
		for j := range again {
			if again[j] != first[j] {
				t.Fatalf("snapshot order not deterministic: %v vs %v", again, first)
			}
		}
	}
	want := []string{"hbase.buffer_flushes", "lsm.flushes", "wal.appends", "wal.syncs"}
	for i, v := range first {
		if v.Name != want[i] {
			t.Fatalf("snapshot[%d] = %q, want %q (sorted order)", i, v.Name, want[i])
		}
	}
}

func TestGaugeSumsRegistrations(t *testing.T) {
	r := NewRegistry()
	r.Gauge("lsm.memtable_bytes", func() int64 { return 100 })
	r.Gauge("lsm.memtable_bytes", func() int64 { return 42 })
	gs := r.Gauges()
	if len(gs) != 1 || gs[0].Name != "lsm.memtable_bytes" || gs[0].Value != 142 {
		t.Fatalf("gauges = %v, want one summed entry of 142", gs)
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("wal.appends").Inc()
				r.Counter("wal.bytes").Add(10)
				_ = r.Counters()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("wal.appends").Load(); got != 8000 {
		t.Fatalf("wal.appends = %d, want 8000", got)
	}
	if got := r.Counter("wal.bytes").Load(); got != 80000 {
		t.Fatalf("wal.bytes = %d, want 80000", got)
	}
}

func TestTimerRecordsSpans(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("put.wal_append")
	for i := 0; i < 5; i++ {
		sp := tm.Start()
		time.Sleep(time.Millisecond)
		sp.End()
	}
	StartSpan(r, "put.wal_append").End()
	snap, ok := r.Summary().Histogram("put.wal_append")
	if !ok {
		t.Fatal("span histogram missing from summary")
	}
	if snap.Count() != 6 {
		t.Fatalf("span count = %d, want 6", snap.Count())
	}
	if snap.Percentile(95) < int64(time.Millisecond)/2 {
		t.Fatalf("p95 = %dns, expected at least ~1ms from the slept spans", snap.Percentile(95))
	}
}

func TestTickerEmitsIntervalSeries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("op.INSERT")
	flushes := r.Counter("lsm.flushes")
	r.Gauge("lsm.memtable_bytes", func() int64 { return 512 })

	// Pre-ticker activity must be excluded by the baseline.
	h.Record(1e6)
	flushes.Inc()

	var streamed []Point
	var mu sync.Mutex
	tk := NewTicker(r, 20*time.Millisecond, func(p Point) {
		mu.Lock()
		streamed = append(streamed, p)
		mu.Unlock()
	})
	tk.Start()
	for i := 0; i < 100; i++ {
		h.Record(int64(i+1) * 1e5)
	}
	flushes.Add(3)
	time.Sleep(50 * time.Millisecond)
	series := tk.Stop()

	if len(series.Points) == 0 {
		t.Fatal("no points emitted")
	}
	var ops, ctr int64
	for _, p := range series.Points {
		for _, o := range p.Ops {
			if o.Name != "op.INSERT" {
				t.Fatalf("unexpected op %q", o.Name)
			}
			ops += o.Count
			if o.P50 <= 0 || o.P95 < o.P50 || o.P99 < o.P95 {
				t.Fatalf("bad interval percentiles: %+v", o)
			}
		}
		for _, c := range p.Counters {
			if c.Name == "lsm.flushes" {
				ctr += c.Value
			}
		}
		if len(p.Gauges) != 1 || p.Gauges[0].Value != 512 {
			t.Fatalf("gauges = %v, want lsm.memtable_bytes=512", p.Gauges)
		}
	}
	if ops != 100 {
		t.Fatalf("interval op counts sum to %d, want 100 (baseline must exclude pre-start records)", ops)
	}
	if ctr != 3 {
		t.Fatalf("interval counter deltas sum to %d, want 3", ctr)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(streamed) != len(series.Points) {
		t.Fatalf("onPoint saw %d points, series has %d", len(streamed), len(series.Points))
	}
}

func TestTickerTailPoint(t *testing.T) {
	r := NewRegistry()
	tk := NewTicker(r, time.Hour, nil) // period far longer than the run
	tk.Start()
	r.Histogram("op.QUERY").Record(2e6)
	series := tk.Stop()
	if len(series.Points) != 1 {
		t.Fatalf("want exactly one tail point, got %d", len(series.Points))
	}
	if got := series.Points[0].Ops[0].Count; got != 1 {
		t.Fatalf("tail point count = %d, want 1", got)
	}

	// A run with zero activity yields an empty series, not a zero point.
	tk2 := NewTicker(r, time.Hour, nil)
	tk2.Start()
	if s := tk2.Stop(); len(s.Points) != 0 {
		t.Fatalf("idle ticker emitted %d points, want 0", len(s.Points))
	}
}

func TestSeriesCompleteExcludesPartialTail(t *testing.T) {
	point := func(interval time.Duration, count int64) Point {
		return Point{
			Interval: interval,
			Ops:      []OpPoint{{Name: "op.INSERT", Count: count}},
		}
	}
	s := &Series{
		Interval: time.Second,
		Points: []Point{
			point(time.Second, 1000),
			point(1100*time.Millisecond, 1200), // ticker fired late: still complete
			point(time.Second, 800),
			point(100*time.Millisecond, 30), // Stop/Snapshot tail: partial
		},
	}
	if got := len(s.Complete()); got != 3 {
		t.Fatalf("Complete() = %d points, want 3 (tail excluded)", got)
	}
	// PeakRate must not report the 300 ops/s tail as the trough.
	peak, trough := s.PeakRate()
	if trough != 800 {
		t.Fatalf("trough = %.1f, want 800 (partial tail must not count)", trough)
	}
	if want := 1200 / 1.1; peak < want-1 || peak > want+1 {
		t.Fatalf("peak = %.1f, want ~%.1f", peak, want)
	}

	// All-partial series: nothing to summarise.
	empty := &Series{Interval: time.Second, Points: []Point{point(50*time.Millisecond, 5)}}
	if p, tr := empty.PeakRate(); p != 0 || tr != 0 {
		t.Fatalf("all-partial series PeakRate = %v, %v; want zeros", p, tr)
	}
}

func TestSeriesCSV(t *testing.T) {
	r := NewRegistry()
	tk := NewTicker(r, time.Hour, nil)
	tk.Start()
	r.Histogram("op.INSERT").Record(5e5)
	r.Counter("wal.appends").Add(7)
	series := tk.Stop()

	var b strings.Builder
	if err := series.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "elapsed_seconds,metric,events,") {
		t.Fatalf("missing CSV header:\n%s", out)
	}
	if !strings.Contains(out, "op.INSERT,1,") {
		t.Fatalf("missing op row:\n%s", out)
	}
	if !strings.Contains(out, "wal.appends,7,") {
		t.Fatalf("missing counter row:\n%s", out)
	}
}

func TestPointString(t *testing.T) {
	p := Point{
		Elapsed:  10 * time.Second,
		Interval: time.Second,
		Ops:      []OpPoint{{Name: "op.INSERT", Count: 500, P50: 8e5, P95: 19e5, P99: 31e5}},
	}
	s := p.String()
	for _, want := range []string{"10.0s", "500 ops", "op.INSERT", "p95=1.9ms"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Point.String() = %q, missing %q", s, want)
		}
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("lsm.flushes").Add(4)
	r.Gauge("lsm.memtable_bytes", func() int64 { return 99 })
	r.Histogram("op.INSERT").Record(1e6)

	mux := NewServeMux(r)
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	var doc struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count int64 `json:"count"`
			P95   int64 `json:"p95_ns"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if doc.Counters["lsm.flushes"] != 4 {
		t.Fatalf("counters = %v", doc.Counters)
	}
	if doc.Gauges["lsm.memtable_bytes"] != 99 {
		t.Fatalf("gauges = %v", doc.Gauges)
	}
	if h := doc.Histograms["op.INSERT"]; h.Count != 1 || h.P95 <= 0 {
		t.Fatalf("histograms = %v", doc.Histograms)
	}

	// pprof index must be mounted.
	rec2 := httptest.NewRecorder()
	mux.ServeHTTP(rec2, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec2.Code != 200 {
		t.Fatalf("GET /debug/pprof/ = %d", rec2.Code)
	}
}
