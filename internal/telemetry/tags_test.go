package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestTaggedCanonical(t *testing.T) {
	cases := []struct {
		name string
		tags []Tag
		want string
	}{
		{"lsm.flushes", nil, "lsm.flushes"},
		{"lsm.flushes", []Tag{{Key: "region", Value: "iot,00001"}}, "lsm.flushes{region=iot,00001}"},
		// Tags render sorted by key regardless of argument order.
		{"lsm.flushes", []Tag{{Key: "server", Value: "2"}, {Key: "region", Value: "iot,00001"}},
			"lsm.flushes{region=iot,00001,server=2}"},
	}
	for _, c := range cases {
		if got := Tagged(c.name, c.tags...); got != c.want {
			t.Errorf("Tagged(%q, %v) = %q, want %q", c.name, c.tags, got, c.want)
		}
	}
}

func TestSplitTaggedRoundTrip(t *testing.T) {
	tags := []Tag{{Key: "region", Value: "iot,00001"}, {Key: "server", Value: "2"}}
	full := Tagged("lsm.batch_applies", tags...)
	base, got := SplitTagged(full)
	if base != "lsm.batch_applies" {
		t.Fatalf("base = %q", base)
	}
	if len(got) != 2 || got[0] != tags[0] || got[1] != tags[1] {
		t.Fatalf("tags = %v, want %v", got, tags)
	}
	if v := TagValue(full, "region"); v != "iot,00001" {
		t.Fatalf("TagValue(region) = %q", v)
	}
	if v := TagValue(full, "missing"); v != "" {
		t.Fatalf("TagValue(missing) = %q", v)
	}

	// Untagged names pass through.
	base, got = SplitTagged("wal.appends")
	if base != "wal.appends" || got != nil {
		t.Fatalf("SplitTagged(untagged) = %q, %v", base, got)
	}
}

// TestTaggedCountersConcurrent hammers tagged counters from many goroutines
// while the HTTP /metrics handler scrapes the registry — the per-region
// write path racing the observability surface. Run under -race.
func TestTaggedCountersConcurrent(t *testing.T) {
	reg := NewRegistry()
	mux := NewServeMux(reg)

	const writers = 8
	const perWriter = 1000

	var writerWG sync.WaitGroup
	writerWG.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer writerWG.Done()
			region := Tag{Key: "region", Value: fmt.Sprintf("iot,%05d", w)}
			for i := 0; i < perWriter; i++ {
				reg.CounterTagged("lsm.batch_applies", region).Inc()
			}
		}(w)
	}

	stop := make(chan struct{})
	var scraperWG sync.WaitGroup
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
			if !json.Valid(rec.Body.Bytes()) {
				t.Error("scrape returned invalid JSON")
				return
			}
		}
	}()

	writerWG.Wait()
	close(stop)
	scraperWG.Wait()

	for w := 0; w < writers; w++ {
		name := Tagged("lsm.batch_applies", Tag{Key: "region", Value: fmt.Sprintf("iot,%05d", w)})
		if got := reg.Counter(name).Load(); got != perWriter {
			t.Errorf("%s = %d, want %d", name, got, perWriter)
		}
	}
}
