package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"tpcxiot/internal/histogram"
)

// OpPoint is one histogram-backed metric's interval statistics within a
// Point: how many events completed during the interval and the latency
// distribution of exactly those events.
type OpPoint struct {
	// Name is the histogram's registry name, e.g. "op.INSERT".
	Name string
	// Count is the number of completions in the interval.
	Count int64
	// Rate is Count divided by the interval length, per second.
	Rate float64
	// Mean and the percentiles describe the interval's latency in
	// nanoseconds.
	Mean          float64
	P50, P95, P99 int64
}

// Point is one sample of the time series: everything that happened between
// the previous tick and this one.
type Point struct {
	// Time is the sample's wall-clock timestamp.
	Time time.Time
	// Elapsed is the time since the ticker started.
	Elapsed time.Duration
	// Interval is the span this point covers (the final point of a run may
	// cover less than the configured period).
	Interval time.Duration
	// Ops holds per-histogram interval statistics, sorted by name. Only
	// histograms with activity in the interval appear.
	Ops []OpPoint
	// Counters holds per-counter interval deltas, sorted by name. Only
	// counters that moved during the interval appear.
	Counters []Value
	// Gauges holds instantaneous gauge readings, sorted by name.
	Gauges []Value
}

// TotalOps sums completions across all "op."-prefixed entries — the
// benchmark operations, excluding pipeline-stage spans.
func (p Point) TotalOps() int64 {
	var n int64
	for _, o := range p.Ops {
		if strings.HasPrefix(o.Name, "op.") {
			n += o.Count
		}
	}
	return n
}

// String renders the point as a YCSB-status-style line:
//
//	10.0s: 5210 ops (521.0 ops/s) | op.INSERT n=5200 p50=0.8ms p95=1.9ms p99=3.1ms | ...
func (p Point) String() string {
	var b strings.Builder
	secs := p.Interval.Seconds()
	var rate float64
	if secs > 0 {
		rate = float64(p.TotalOps()) / secs
	}
	fmt.Fprintf(&b, "%6.1fs: %d ops (%.1f ops/s)", p.Elapsed.Seconds(), p.TotalOps(), rate)
	for _, o := range p.Ops {
		fmt.Fprintf(&b, " | %s n=%d p50=%.1fms p95=%.1fms p99=%.1fms",
			o.Name, o.Count, float64(o.P50)/1e6, float64(o.P95)/1e6, float64(o.P99)/1e6)
	}
	return b.String()
}

// Series is an ordered sequence of Points: the run's time-resolved view.
type Series struct {
	// Interval is the configured sampling period.
	Interval time.Duration
	// Points are the samples in emission order.
	Points []Point
}

// csvHeader is the long-format schema: one row per (interval, metric).
// Counter rows carry the interval delta in events and leave the latency
// columns empty; gauge rows carry the instantaneous value.
const csvHeader = "elapsed_seconds,metric,events,events_per_sec,mean_ns,p50_ns,p95_ns,p99_ns\n"

// WriteCSV writes the series in long format, one row per metric per
// interval, so spreadsheet tools and plotting scripts can pivot freely.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, csvHeader); err != nil {
		return err
	}
	for _, p := range s.Points {
		el := p.Elapsed.Seconds()
		for _, o := range p.Ops {
			if _, err := fmt.Fprintf(w, "%.3f,%s,%d,%.1f,%.0f,%d,%d,%d\n",
				el, o.Name, o.Count, o.Rate, o.Mean, o.P50, o.P95, o.P99); err != nil {
				return err
			}
		}
		for _, c := range p.Counters {
			var rate float64
			if secs := p.Interval.Seconds(); secs > 0 {
				rate = float64(c.Value) / secs
			}
			if _, err := fmt.Fprintf(w, "%.3f,%s,%d,%.1f,,,,\n",
				el, c.Name, c.Value, rate); err != nil {
				return err
			}
		}
		for _, g := range p.Gauges {
			if _, err := fmt.Fprintf(w, "%.3f,%s,%d,,,,,\n", el, g.Name, g.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// GaugeStats returns the peak and mean of one gauge across the series —
// the report's "heap peaked at X, averaged Y" lines. The mean is over the
// points where the gauge appears; ok is false when it never does.
func (s *Series) GaugeStats(name string) (peak int64, mean float64, ok bool) {
	var sum, n int64
	for _, p := range s.Points {
		for _, g := range p.Gauges {
			if g.Name != name {
				continue
			}
			if !ok || g.Value > peak {
				peak = g.Value
			}
			sum += g.Value
			n++
			ok = true
		}
	}
	if n > 0 {
		mean = float64(sum) / float64(n)
	}
	return peak, mean, ok
}

// completeIntervalFraction is the floor below which a point counts as a
// partial interval. Regular ticks cover at least the configured period
// (time.Ticker never fires early), so only the tail point emitted by
// Stop/Snapshot — which covers whatever remains since the last tick — falls
// under it.
const completeIntervalFraction = 0.9

// Complete returns the points that cover a full sampling period. The final
// point of a run spans only the tail since the last tick; folding it into
// per-interval rate statistics makes a short tail read as a throughput
// collapse, so peak/trough summaries and run-validity evaluation operate on
// complete intervals only.
func (s *Series) Complete() []Point {
	floor := time.Duration(completeIntervalFraction * float64(s.Interval))
	out := make([]Point, 0, len(s.Points))
	for _, p := range s.Points {
		if p.Interval >= floor {
			out = append(out, p)
		}
	}
	return out
}

// PeakRate returns the highest and lowest per-interval total op rates over
// the complete intervals, for compact report summaries. The trailing
// partial interval is excluded — a 0.3 s tail at steady load would
// otherwise report a bogus trough. Zeroes when no interval is complete.
func (s *Series) PeakRate() (peak, trough float64) {
	first := true
	for _, p := range s.Complete() {
		secs := p.Interval.Seconds()
		if secs <= 0 {
			continue
		}
		r := float64(p.TotalOps()) / secs
		if first {
			peak, trough = r, r
			first = false
			continue
		}
		if r > peak {
			peak = r
		}
		if r < trough {
			trough = r
		}
	}
	return peak, trough
}

// Ticker samples a Registry on a fixed period, converting cumulative
// counters and histograms into per-interval Points. Stop emits one final
// point covering the tail since the last tick, so even runs shorter than
// one period produce a series.
type Ticker struct {
	reg      *Registry
	interval time.Duration
	onPoint  func(Point)

	// mu guards the sampling state below: sample runs on the ticker
	// goroutine, but Snapshot may be called from a signal handler while
	// the run is still in flight.
	mu       sync.Mutex
	start    time.Time
	lastTick time.Time
	prevHist map[string]histogram.Snapshot
	prevCtr  map[string]int64
	series   *Series

	stop    chan struct{}
	stopped chan struct{}
}

// NewTicker builds a ticker over reg. interval must be positive. onPoint,
// when non-nil, receives each point as it is emitted (the driver uses it to
// stream YCSB-style status lines); it is called from the ticker goroutine.
func NewTicker(reg *Registry, interval time.Duration, onPoint func(Point)) *Ticker {
	if interval <= 0 {
		interval = time.Second
	}
	return &Ticker{
		reg:      reg,
		interval: interval,
		onPoint:  onPoint,
		prevHist: make(map[string]histogram.Snapshot),
		prevCtr:  make(map[string]int64),
		series:   &Series{Interval: interval},
		stop:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
}

// Start baselines the registry and begins sampling. Call Stop exactly once
// afterwards.
func (t *Ticker) Start() {
	t.start = time.Now()
	t.lastTick = t.start
	t.baseline()
	go t.loop()
}

// baseline records current cumulative state so the first interval reports
// only activity after Start.
func (t *Ticker) baseline() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, h := range t.reg.Histograms() {
		t.prevHist[h.Name] = h.Snap
	}
	for _, c := range t.reg.Counters() {
		t.prevCtr[c.Name] = c.Value
	}
}

func (t *Ticker) loop() {
	defer close(t.stopped)
	tick := time.NewTicker(t.interval)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case now := <-tick.C:
			t.sample(now)
		}
	}
}

// sample emits one point covering [lastTick, now).
func (t *Ticker) sample(now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sampleLocked(now)
}

func (t *Ticker) sampleLocked(now time.Time) {
	p := Point{
		Time:     now,
		Elapsed:  now.Sub(t.start),
		Interval: now.Sub(t.lastTick),
	}
	t.lastTick = now
	secs := p.Interval.Seconds()

	for _, h := range t.reg.Histograms() {
		delta := h.Snap.Sub(t.prevHist[h.Name])
		t.prevHist[h.Name] = h.Snap
		if delta.Count() == 0 {
			continue
		}
		op := OpPoint{
			Name:  h.Name,
			Count: delta.Count(),
			Mean:  delta.Mean(),
			P50:   delta.Percentile(50),
			P95:   delta.Percentile(95),
			P99:   delta.Percentile(99),
		}
		if secs > 0 {
			op.Rate = float64(op.Count) / secs
		}
		p.Ops = append(p.Ops, op)
	}
	for _, c := range t.reg.Counters() {
		delta := c.Value - t.prevCtr[c.Name]
		t.prevCtr[c.Name] = c.Value
		if delta != 0 {
			p.Counters = append(p.Counters, Value{Name: c.Name, Value: delta})
		}
	}
	// Intervals with no activity at all are elided: they carry no signal
	// and would dominate the series of an idle tail.
	if len(p.Ops) == 0 && len(p.Counters) == 0 {
		return
	}
	p.Gauges = t.reg.Gauges()
	sort.Slice(p.Ops, func(i, j int) bool { return p.Ops[i].Name < p.Ops[j].Name })

	t.series.Points = append(t.series.Points, p)
	if t.onPoint != nil {
		t.onPoint(p)
	}
}

// Stop halts sampling, emits a final tail point when any activity happened
// since the last tick, and returns the collected series.
func (t *Ticker) Stop() *Series {
	close(t.stop)
	<-t.stopped
	t.sample(time.Now())
	return t.series
}

// Snapshot samples the tail since the last tick and returns a copy of the
// series so far, without stopping the ticker. Safe to call concurrently with
// sampling — a SIGINT handler uses it to flush the partial time series of an
// interrupted run.
func (t *Ticker) Snapshot() *Series {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sampleLocked(time.Now())
	return &Series{
		Interval: t.series.Interval,
		Points:   append([]Point(nil), t.series.Points...),
	}
}
