// Package bloom implements the block-level Bloom filters embedded in
// SSTables. The design follows the classic LevelDB/HBase approach: a filter
// is built once from the full key set of a table (or block), serialised
// alongside the data, and consulted on point reads to skip tables that
// cannot contain a key.
package bloom

import "encoding/binary"

// Filter is a serialised Bloom filter. The last byte stores the number of
// probe functions; the rest is the bit array.
type Filter []byte

// DefaultBitsPerKey gives a ~1% false-positive rate, the HBase default
// (ROWCOL filters use roughly 10 bits per entry).
const DefaultBitsPerKey = 10

// New builds a filter over the given keys using bitsPerKey bits per entry.
// A non-positive bitsPerKey falls back to DefaultBitsPerKey.
func New(keys [][]byte, bitsPerKey int) Filter {
	if bitsPerKey <= 0 {
		bitsPerKey = DefaultBitsPerKey
	}
	// k = bitsPerKey * ln2 probe functions minimises the false-positive
	// rate; clamp to a sane range.
	k := uint8(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}

	nBits := len(keys) * bitsPerKey
	if nBits < 64 {
		nBits = 64
	}
	nBytes := (nBits + 7) / 8
	nBits = nBytes * 8

	filter := make(Filter, nBytes+1)
	for _, key := range keys {
		h := hash(key)
		delta := h>>33 | h<<31 // rotate to derive the second hash
		for i := uint8(0); i < k; i++ {
			pos := h % uint64(nBits)
			filter[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	filter[nBytes] = k
	return filter
}

// MayContain reports whether the key may be present. False means the key is
// definitely absent; true means it is present with high probability.
func (f Filter) MayContain(key []byte) bool {
	if len(f) < 2 {
		return false
	}
	k := f[len(f)-1]
	if k > 30 {
		// Reserved: treat unknown encodings as "maybe" so newer formats
		// degrade to extra reads instead of lost keys.
		return true
	}
	nBits := uint64((len(f) - 1) * 8)
	h := hash(key)
	delta := h>>33 | h<<31
	for i := uint8(0); i < k; i++ {
		pos := h % nBits
		if f[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// hash is a 64-bit variant of the FNV-1a/Murmur-style mixing used by
// LevelDB's bloom hash, inlined for speed on the read path.
func hash(b []byte) uint64 {
	const (
		seed = 0xbc9f1d34dcb77f2b
		m    = 0xc6a4a7935bd1e995
	)
	h := uint64(seed) ^ uint64(len(b))*m
	for len(b) >= 8 {
		k := binary.LittleEndian.Uint64(b)
		k *= m
		k ^= k >> 47
		k *= m
		h ^= k
		h *= m
		b = b[8:]
	}
	for i := len(b) - 1; i >= 0; i-- {
		h ^= uint64(b[i]) << (8 * uint(i))
	}
	h *= m
	h ^= h >> 47
	h *= m
	h ^= h >> 47
	return h
}
