package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func keysN(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%08d", i))
	}
	return keys
}

func TestNoFalseNegatives(t *testing.T) {
	keys := keysN(10000)
	f := New(keys, DefaultBitsPerKey)
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	keys := keysN(10000)
	f := New(keys, DefaultBitsPerKey)
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.MayContain([]byte(fmt.Sprintf("absent-%08d", i))) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.03 {
		t.Fatalf("false-positive rate %.4f too high for 10 bits/key", rate)
	}
}

func TestEmptyKeySet(t *testing.T) {
	f := New(nil, DefaultBitsPerKey)
	if f.MayContain([]byte("anything")) {
		t.Fatal("empty filter claimed to contain a key")
	}
}

func TestShortFilterIsSafe(t *testing.T) {
	if Filter(nil).MayContain([]byte("x")) {
		t.Fatal("nil filter must report absent")
	}
	if (Filter{1}).MayContain([]byte("x")) {
		t.Fatal("1-byte filter must report absent")
	}
}

func TestUnknownEncodingDegradesToMaybe(t *testing.T) {
	f := make(Filter, 9)
	f[8] = 31 // k > 30: future encoding
	if !f.MayContain([]byte("x")) {
		t.Fatal("unknown encoding must degrade to maybe, not lose keys")
	}
}

func TestDefaultBitsFallback(t *testing.T) {
	keys := keysN(100)
	a := New(keys, 0)
	b := New(keys, DefaultBitsPerKey)
	if len(a) != len(b) {
		t.Fatalf("fallback filter size %d != default size %d", len(a), len(b))
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	f := func(raw [][]byte) bool {
		if len(raw) == 0 {
			return true
		}
		filter := New(raw, DefaultBitsPerKey)
		for _, k := range raw {
			if !filter.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashDistribution(t *testing.T) {
	// Adjacent keys should not collide in the low bits used for placement.
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		h := hash([]byte(fmt.Sprintf("k%d", i)))
		if seen[h] {
			t.Fatalf("hash collision at key k%d", i)
		}
		seen[h] = true
	}
}

func BenchmarkMayContain(b *testing.B) {
	keys := keysN(100000)
	f := New(keys, DefaultBitsPerKey)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(keys[i%len(keys)])
	}
}
