package experiments

import (
	"fmt"
	"os"

	"tpcxiot/internal/driver"
	"tpcxiot/internal/hbase"
	"tpcxiot/internal/lsm"
	"tpcxiot/internal/wal"
)

// Live runs the REAL benchmark end to end at laptop scale — actual WAL
// appends, memtable inserts, SSTable flushes, 3-way replication, scans —
// and prints the outcome. It verifies the kit's mechanics on the live
// engine; the simulated experiments reproduce the paper's scale.
func (s *Suite) Live() error {
	w := s.opts.Out
	fmt.Fprintf(w, "Live benchmark: real in-process mini-HBase cluster (laptop scale)\n")

	dir, err := os.MkdirTemp("", "tpcxiot-live-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	cluster, err := hbase.NewCluster(hbase.Config{
		Nodes:   3,
		DataDir: dir,
		Store:   lsm.Options{WALSync: wal.SyncNever, MemtableSize: 32 << 20},
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	const drivers = 2
	sut, err := driver.NewClusterSUT(cluster, drivers, 256<<10)
	if err != nil {
		return err
	}
	res, err := driver.Run(driver.Config{
		Drivers:            drivers,
		TotalKVPs:          20_000,
		ThreadsPerDriver:   4,
		Seed:               s.opts.Seed,
		SUT:                sut,
		MinWorkloadSeconds: 0.001, // laptop-scale: mechanics, not compliance
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  substations: %d, kvps per run: %d\n", drivers, res.TotalKVPs)
	for i, it := range res.Iterations {
		fmt.Fprintf(w, "  iteration %d: %8.1f IoTps over %.2fs (queries: %d, avg %.1fms)\n",
			i+1, it.Measured.IoTps(), it.Measured.Elapsed().Seconds(),
			it.Measured.QueryLatency.Count(), it.Measured.QueryLatency.Mean()/1e6)
	}
	fmt.Fprintf(w, "  reported metric: %.1f IoTps; mechanical checks (data, stored-rows) passed: %v\n",
		res.IoTps(), resMechanicalChecksPassed(res))
	fmt.Fprintln(w)
	return nil
}

// resMechanicalChecksPassed reports whether the checks a scaled-down run
// can meaningfully satisfy all passed. The rate floors and the
// repeatability bound are scale-dependent: second-long runs are dominated
// by runtime warm-up and GC variance, which is exactly why the
// specification demands 1800-second executions. The stored-rows check is
// exact at any scale: the workload's timestamp sequencer guarantees every
// generated key is unique even when a compressed run would land two
// readings of one sensor in the same millisecond.
func resMechanicalChecksPassed(res *driver.Result) bool {
	for _, c := range res.Checks() {
		switch c.Name {
		case "per-sensor-ingest-rate", "readings-per-query", "repeatability":
			continue // scale-dependent; not meaningful at laptop scale
		}
		if !c.Passed {
			return false
		}
	}
	return true
}
