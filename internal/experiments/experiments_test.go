package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testSuite(t *testing.T, buf *bytes.Buffer) *Suite {
	t.Helper()
	return NewSuite(Options{
		Out:          buf,
		Seed:         11,
		ScaleDivisor: 400, // keep tests fast; rates are scale-free
	})
}

func TestSweepCachesRuns(t *testing.T) {
	var buf bytes.Buffer
	s := testSuite(t, &buf)
	a, err := s.Sweep(8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Sweep(8)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("sweep not cached")
	}
	if len(a) != len(SubstationCounts) {
		t.Fatalf("sweep has %d points", len(a))
	}
	for i, pt := range a {
		if pt.Substations != SubstationCounts[i] {
			t.Fatalf("point %d has %d substations", i, pt.Substations)
		}
		if pt.Measured.KVPs != pt.KVPs {
			t.Fatalf("point %d ingested %d of %d", i, pt.Measured.KVPs, pt.KVPs)
		}
	}
}

func TestAllExperimentsRender(t *testing.T) {
	var buf bytes.Buffer
	s := testSuite(t, &buf)
	if err := s.All(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 8", "Table I", "Figure 10", "Figure 11", "Figure 12",
		"Figure 13", "Figure 14", "Table II", "Table III",
		"scaling factors", "per-sensor", "paper",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("combined output missing %q", want)
		}
	}
}

func TestRunByID(t *testing.T) {
	ids := []string{"fig8", "table1", "fig10", "fig11", "fig12", "fig13",
		"fig14", "table2", "fig15", "table3", "fig16"}
	var buf bytes.Buffer
	s := testSuite(t, &buf)
	for _, id := range ids {
		if err := s.Run(id); err != nil {
			t.Fatalf("Run(%q): %v", id, err)
		}
	}
	if err := s.Run("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTable1MarksFloorViolation(t *testing.T) {
	var buf bytes.Buffer
	s := testSuite(t, &buf)
	if err := s.Table1(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The 48-substation row must be flagged as violating the 20 kvps/s
	// floor, like the paper's run.
	lines := strings.Split(out, "\n")
	var row48 string
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "48 ") {
			row48 = l
		}
	}
	if row48 == "" {
		t.Fatalf("no 48-substation row:\n%s", out)
	}
	if !strings.Contains(row48, "NO") {
		t.Fatalf("48-substation row not flagged: %s", row48)
	}
}

func TestFig10ScalingSuperLinear(t *testing.T) {
	var buf bytes.Buffer
	s := testSuite(t, &buf)
	pts, err := s.Sweep(8)
	if err != nil {
		t.Fatal(err)
	}
	s2 := pts[1].Measured.IoTps() / pts[0].Measured.IoTps()
	if s2 < 2.0 {
		t.Fatalf("S_2 = %.2f in the experiment harness, want super-linear", s2)
	}
}

func TestScaleDivisorDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.ScaleDivisor != 100 {
		t.Fatalf("default ScaleDivisor = %d", o.ScaleDivisor)
	}
	oFull := Options{FullScale: true}.withDefaults()
	if oFull.kvpsFor(1) != PaperKVPs[1] {
		t.Fatal("full scale must use the paper volumes")
	}
	if o.kvpsFor(1) != PaperKVPs[1]/100 {
		t.Fatal("scaled volume wrong")
	}
	if o.kvpsFor(99) != 400_000_000/100 {
		t.Fatal("unknown substation count should fall back to 400M")
	}
}

func TestLiveExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("live run")
	}
	var buf bytes.Buffer
	s := testSuite(t, &buf)
	if err := s.Run("live"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Live benchmark", "IoTps", "iteration 2", "passed: true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("live output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	s := testSuite(t, &buf)
	dir := t.TempDir()
	if err := s.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig8.csv", "table1.csv", "fig10.csv", "fig11.csv", "fig12.csv",
		"fig13.csv", "fig14.csv", "table2.csv", "table3.csv",
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Count(string(data), "\n")
		if lines < 2 {
			t.Fatalf("%s has %d lines", name, lines)
		}
		// Header plus one row per sweep point for the sweep files.
		if name != "fig8.csv" && lines != len(SubstationCounts)+1 {
			t.Fatalf("%s has %d lines, want %d", name, lines, len(SubstationCounts)+1)
		}
	}
	// Spot-check a value: fig11's first row carries the paper reference.
	data, _ := os.ReadFile(filepath.Join(dir, "fig11.csv"))
	if !strings.Contains(string(data), "49.000") {
		t.Fatalf("fig11.csv missing paper reference:\n%s", data)
	}
}
