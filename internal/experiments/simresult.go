package experiments

import (
	"fmt"
	"time"

	"tpcxiot/internal/audit"
	"tpcxiot/internal/driver"
	"tpcxiot/internal/metrics"
	"tpcxiot/internal/testbed"
	"tpcxiot/internal/workload"
)

// SimulatedResult runs a complete two-iteration TPCx-IoT benchmark on the
// simulated testbed and packages it as a driver.Result, so the FDR and
// pricing tooling can report on paper-scale configurations that do not fit
// on a laptop. Virtual times are anchored at the given start instant.
func SimulatedResult(nodes, substations int, totalKVPs int64, seed uint64, start time.Time) (*driver.Result, error) {
	res := &driver.Result{
		Drivers:   substations,
		TotalKVPs: totalKVPs,
		SUTDescription: fmt.Sprintf(
			"simulated testbed: %d-node HBase 1.2.0 cluster (Cisco UCS B200 M4 model), 3-way replication",
			nodes),
		Prerequisites: audit.Checklist{audit.ReplicationCheck(3)},
		Compliant:     true,
	}
	clock := start
	for it := 0; it < 2; it++ {
		bench, err := testbed.RunBenchmark(testbed.Config{
			Nodes:       nodes,
			Substations: substations,
			TotalKVPs:   totalKVPs,
			Seed:        seed + uint64(it)*7919,
		})
		if err != nil {
			return nil, err
		}
		iter := driver.Iteration{
			Warmup:   toDriverExecution(bench.Warmup, substations, clock),
			Measured: toDriverExecution(bench.Measured, substations, clock.Add(bench.Warmup.Elapsed)),
		}
		iter.Checks = bench.Checks
		res.Iterations = append(res.Iterations, iter)
		res.Metric.Runs = append(res.Metric.Runs, metrics.Run{
			KVPs:  bench.Measured.KVPs,
			Start: iter.Measured.Start,
			End:   iter.Measured.End,
		})
		clock = iter.Measured.End
	}
	res.Iterations[1].Checks = append(res.Iterations[1].Checks,
		audit.RepeatabilityCheck(
			res.Iterations[0].Measured.IoTps(),
			res.Iterations[1].Measured.IoTps(), 0.10))
	return res, nil
}

// toDriverExecution maps a simulated execution onto the driver package's
// result shape.
func toDriverExecution(e testbed.Execution, substations int, start time.Time) driver.Execution {
	out := driver.Execution{
		Start:         start,
		End:           start.Add(e.Elapsed),
		KVPs:          e.KVPs,
		InsertLatency: e.InsertLatency,
		QueryLatency:  e.QueryLatency,
	}
	perDriverQueries := int64(0)
	if substations > 0 {
		perDriverQueries = e.Queries / int64(substations)
	}
	for i, elapsed := range e.DriverElapsed {
		share := workload.KVPShare(e.KVPs, substations, i+1)
		out.Drivers = append(out.Drivers, driver.DriverOutcome{
			Substation: workload.SubstationName(i),
			Share:      share,
			Elapsed:    elapsed,
			Stats: workload.InstanceStats{
				Inserted:       share,
				Queries:        perDriverQueries,
				RowsAggregated: int64(e.AvgRowsPerQuery / 2 * float64(perDriverQueries)),
				HistoricalRows: int64(e.AvgRowsPerQuery / 2 * float64(perDriverQueries)),
			},
		})
	}
	return out
}
