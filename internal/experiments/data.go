// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V plus the Figure 8 driver-host experiment): it runs
// the calibrated testbed simulation (or, for the extra "live" experiment,
// the real in-process cluster), formats the same rows and series the paper
// reports, and prints the paper's published values alongside for
// comparison.
package experiments

// SubstationCounts is the substation sweep of the evaluation: powers of two
// from 1 to 32, then 48.
var SubstationCounts = []int{1, 2, 4, 8, 16, 32, 48}

// PaperKVPs is Table I's "Rows Ingested" column: the kvp volume the authors
// chose per substation count so runs exceed 1 800 s.
var PaperKVPs = map[int]int64{
	1:  50_000_000,
	2:  60_000_000,
	4:  100_000_000,
	8:  240_000_000,
	16: 400_000_000,
	32: 400_000_000,
	48: 400_000_000,
}

// PaperIoTps holds the published system-wide throughput per cluster size
// and substation count (Tables I and III).
var PaperIoTps = map[int]map[int]float64{
	8: {1: 9_806, 2: 26_999, 4: 56_822, 8: 84_602, 16: 133_940, 32: 186_109, 48: 182_815},
	4: {1: 15_706, 2: 33_612, 4: 57_113, 8: 90_160, 16: 125_603, 32: 132_100, 48: 134_248},
	2: {1: 21_909, 2: 38_939, 4: 63_076, 8: 105_877, 16: 114_508, 32: 114_764, 48: 115_486},
}

// PaperPerSensor is Table I's per-sensor rate column (8 nodes).
var PaperPerSensor = map[int]float64{
	1: 49.0, 2: 67.5, 4: 71.0, 8: 52.9, 16: 41.9, 32: 29.1, 48: 19.0,
}

// PaperElapsed holds Table I's warmup and measured elapsed times in seconds
// (8 nodes).
var PaperElapsed = map[int][2]float64{
	1:  {4795, 5099},
	2:  {2024, 2222},
	4:  {1813, 1812},
	8:  {2606, 2837},
	16: {2822, 2986},
	32: {1897, 2149},
	48: {1992, 2188},
}

// PaperIngestSkew holds Table II's per-substation ingest times in seconds:
// min, max, avg.
var PaperIngestSkew = map[int][3]float64{
	1:  {5099, 5099, 5099},
	2:  {2109, 2222, 2166},
	4:  {1637, 1845, 1757},
	8:  {2524, 2837, 2683},
	16: {2497, 2848, 2689},
	32: {1563, 2149, 1877},
	48: {1212, 2188, 1889},
}

// PaperQueryAvgMS is Figure 13's average query elapsed time in ms.
var PaperQueryAvgMS = map[int]float64{
	1: 12.3, 2: 11.8, 4: 14.4, 8: 13.6, 16: 33.1, 32: 29.1, 48: 25.4,
}

// PaperQueryP95MS summarises the 95th percentiles the paper discusses with
// Figure 14: "below 25 ms up to 16 power substations", then 185 ms at 32
// and 143 ms at 48.
var PaperQueryP95MS = map[int]float64{
	1: 25, 2: 25, 4: 25, 8: 25, 16: 25, 32: 185, 48: 143,
}

// PaperFig8 holds Figure 8's anchors: drivers -> {throughput kvps/s, CPU %}.
var PaperFig8 = map[int][2]float64{
	1:  {120_000, 4},
	32: {1_100_000, 75},
	64: {900_000, 100},
}

// ScalingBase is the substation count normalising Figure 10's S_i factors.
const ScalingBase = 1
