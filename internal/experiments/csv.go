package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"tpcxiot/internal/metrics"
	"tpcxiot/internal/testbed"
)

// WriteCSV emits every experiment's data series as CSV files under dir
// (created if absent), one file per table/figure, ready for plotting. The
// same sweeps feed the textual tables, so a combined run simulates each
// configuration once.
func (s *Suite) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: create csv dir: %w", err)
	}

	if err := s.csvFig8(dir); err != nil {
		return err
	}
	pts8, err := s.Sweep(8)
	if err != nil {
		return err
	}
	if err := s.csvSweep8(dir, pts8); err != nil {
		return err
	}
	return s.csvTable3(dir)
}

func writeCSV(dir, name string, header []string, rows [][]string) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("experiments: create %s: %w", name, err)
	}
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		f.Close()
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
func itoa(v int64) string   { return strconv.FormatInt(v, 10) }

func (s *Suite) csvFig8(dir string) error {
	var rows [][]string
	for _, pt := range testbed.HostGenerationSweep(testbed.DefaultHostGenParams()) {
		paper := ""
		if ref, ok := PaperFig8[pt.Drivers]; ok {
			paper = ftoa(ref[0])
		}
		rows = append(rows, []string{
			itoa(int64(pt.Drivers)), itoa(int64(pt.Threads)),
			ftoa(pt.ThroughputKVPs), paper, ftoa(pt.CPUUtilPct), ftoa(pt.SystemPct),
		})
	}
	return writeCSV(dir, "fig8.csv",
		[]string{"drivers", "threads", "kvps_per_sec", "paper_kvps_per_sec", "cpu_pct", "sys_pct"},
		rows)
}

// csvSweep8 writes every 8-node series: Table I, Figures 10-14, Table II.
func (s *Suite) csvSweep8(dir string, pts []Point) error {
	base := pts[0].Measured.IoTps()
	var t1, f10, f11, f12, f13, f14, t2 [][]string
	for _, pt := range pts {
		sub := itoa(int64(pt.Substations))
		iotps := pt.Measured.IoTps()
		perSensor := pt.Measured.PerSensorIoTps(pt.Substations)
		q := pt.Measured.QueryLatency

		t1 = append(t1, []string{sub, itoa(pt.KVPs),
			ftoa(seconds(pt.Warmup.Elapsed)), ftoa(seconds(pt.Measured.Elapsed)),
			ftoa(iotps), ftoa(PaperIoTps[8][pt.Substations]), ftoa(perSensor)})
		f10 = append(f10, []string{sub, ftoa(iotps),
			ftoa(metrics.ScalingFactor(iotps, base)),
			ftoa(PaperIoTps[8][pt.Substations]),
			ftoa(metrics.ScalingFactor(PaperIoTps[8][pt.Substations], PaperIoTps[8][1]))})
		f11 = append(f11, []string{sub, ftoa(perSensor), ftoa(PaperPerSensor[pt.Substations])})
		f12 = append(f12, []string{sub, ftoa(pt.Measured.AvgRowsPerQuery), itoa(pt.Measured.Queries)})
		f13 = append(f13, []string{sub, ftoa(q.Mean() / 1e6), ftoa(PaperQueryAvgMS[pt.Substations])})
		f14 = append(f14, []string{sub,
			ftoa(float64(q.Min()) / 1e6), ftoa(q.Mean() / 1e6), ftoa(float64(q.Max()) / 1e6),
			ftoa(q.CV()), ftoa(float64(q.Percentile(95)) / 1e6),
			ftoa(PaperQueryP95MS[pt.Substations])})
		min, max, avg := pt.Measured.IngestSkew()
		t2 = append(t2, []string{sub, ftoa(seconds(min)), ftoa(seconds(max)), ftoa(seconds(avg))})
	}
	steps := []struct {
		name   string
		header []string
		rows   [][]string
	}{
		{"table1.csv", []string{"substations", "kvps", "warmup_s", "measured_s", "iotps", "paper_iotps", "per_sensor"}, t1},
		{"fig10.csv", []string{"substations", "iotps", "scaling", "paper_iotps", "paper_scaling"}, f10},
		{"fig11.csv", []string{"substations", "per_sensor_iotps", "paper_per_sensor"}, f11},
		{"fig12.csv", []string{"substations", "rows_per_query", "queries"}, f12},
		{"fig13.csv", []string{"substations", "avg_ms", "paper_avg_ms"}, f13},
		{"fig14.csv", []string{"substations", "min_ms", "avg_ms", "max_ms", "cv", "p95_ms", "paper_p95_ms"}, f14},
		{"table2.csv", []string{"substations", "min_s", "max_s", "avg_s"}, t2},
	}
	for _, st := range steps {
		if err := writeCSV(dir, st.name, st.header, st.rows); err != nil {
			return err
		}
	}
	return nil
}

func (s *Suite) csvTable3(dir string) error {
	sweeps := map[int][]Point{}
	for _, n := range []int{2, 4, 8} {
		pts, err := s.Sweep(n)
		if err != nil {
			return err
		}
		sweeps[n] = pts
	}
	var rows [][]string
	for i, sub := range SubstationCounts {
		row := []string{itoa(int64(sub))}
		for _, n := range []int{2, 4, 8} {
			row = append(row,
				ftoa(sweeps[n][i].Measured.IoTps()),
				ftoa(PaperIoTps[n][sub]),
				ftoa(sweeps[n][i].Measured.PerSensorIoTps(sub)))
		}
		rows = append(rows, row)
	}
	return writeCSV(dir, "table3.csv",
		[]string{"substations",
			"iotps_2node", "paper_2node", "per_sensor_2node",
			"iotps_4node", "paper_4node", "per_sensor_4node",
			"iotps_8node", "paper_8node", "per_sensor_8node"},
		rows)
}
