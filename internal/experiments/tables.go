package experiments

import (
	"fmt"

	"tpcxiot/internal/audit"
	"tpcxiot/internal/metrics"
	"tpcxiot/internal/testbed"
)

// Fig8 regenerates Figure 8: bare driver generation throughput and CPU
// utilisation versus driver count on the paper's 28-core driver host.
func (s *Suite) Fig8() error {
	w := s.opts.Out
	fmt.Fprintf(w, "Figure 8: TPCx-IoT driver generation speed (output to /dev/null)\n")
	fmt.Fprintf(w, "%8s %8s %16s %16s %10s %8s\n",
		"drivers", "threads", "kvps/s", "paper kvps/s", "cpu%", "sys%")
	p := testbed.DefaultHostGenParams()
	for _, pt := range testbed.HostGenerationSweep(p) {
		paper := "-"
		if ref, ok := PaperFig8[pt.Drivers]; ok {
			paper = fmt.Sprintf("%.0f", ref[0])
		}
		fmt.Fprintf(w, "%8d %8d %16.0f %16s %9.1f%% %7.1f%%\n",
			pt.Drivers, pt.Threads, pt.ThroughputKVPs, paper, pt.CPUUtilPct, pt.SystemPct)
	}
	fmt.Fprintln(w)
	return nil
}

// Table1 regenerates Table I: experiment parameters and requirement
// fulfilment for the 8-node substation sweep.
func (s *Suite) Table1() error {
	pts, err := s.Sweep(8)
	if err != nil {
		return err
	}
	w := s.opts.Out
	fmt.Fprintf(w, "Table I: experiment parameters & requirement fulfilment (8 nodes; %s)\n", s.scaleNote())
	fmt.Fprintf(w, "%6s %12s %10s %10s %12s %12s %10s %10s\n",
		"substa", "rows", "warmup[s]", "meas[s]", "IoTps", "paperIoTps", "per-sensor", ">=20?")
	for _, pt := range pts {
		iotps := pt.Measured.IoTps()
		perSensor := pt.Measured.PerSensorIoTps(pt.Substations)
		mark := "yes"
		if perSensor < audit.MinPerSensorRate {
			mark = "NO"
		}
		fmt.Fprintf(w, "%6d %12d %10.0f %10.0f %12.0f %12.0f %10.1f %10s\n",
			pt.Substations, pt.KVPs,
			seconds(pt.Warmup.Elapsed), seconds(pt.Measured.Elapsed),
			iotps, PaperIoTps[8][pt.Substations], perSensor, mark)
	}
	fmt.Fprintln(w)
	return nil
}

// Fig10 regenerates Figure 10: system-wide IoTps with scaling factors S_i.
func (s *Suite) Fig10() error {
	pts, err := s.Sweep(8)
	if err != nil {
		return err
	}
	w := s.opts.Out
	base := pts[0].Measured.IoTps()
	fmt.Fprintf(w, "Figure 10: system-wide IoTps and scaling factors (8 nodes)\n")
	fmt.Fprintf(w, "%6s %12s %8s %12s %10s %8s\n",
		"substa", "IoTps", "S_i", "paperIoTps", "paper S_i", "delta")
	for _, pt := range pts {
		iotps := pt.Measured.IoTps()
		paper := PaperIoTps[8][pt.Substations]
		fmt.Fprintf(w, "%6d %12.0f %8.1f %12.0f %10.1f %8s\n",
			pt.Substations, iotps, metrics.ScalingFactor(iotps, base),
			paper, metrics.ScalingFactor(paper, PaperIoTps[8][1]), pct(iotps, paper))
	}
	fmt.Fprintln(w)
	return nil
}

// Fig11 regenerates Figure 11: per-sensor IoTps against the 20 kvps/s rule.
func (s *Suite) Fig11() error {
	pts, err := s.Sweep(8)
	if err != nil {
		return err
	}
	w := s.opts.Out
	fmt.Fprintf(w, "Figure 11: average per-sensor IoTps (8 nodes; execution-rule floor %.0f)\n",
		audit.MinPerSensorRate)
	fmt.Fprintf(w, "%6s %12s %12s %8s\n", "substa", "per-sensor", "paper", "valid")
	for _, pt := range pts {
		got := pt.Measured.PerSensorIoTps(pt.Substations)
		valid := "yes"
		if got < audit.MinPerSensorRate {
			valid = "NO"
		}
		fmt.Fprintf(w, "%6d %12.1f %12.1f %8s\n",
			pt.Substations, got, PaperPerSensor[pt.Substations], valid)
	}
	fmt.Fprintln(w)
	return nil
}

// Fig12 regenerates Figure 12: average kvps aggregated per query.
func (s *Suite) Fig12() error {
	pts, err := s.Sweep(8)
	if err != nil {
		return err
	}
	w := s.opts.Out
	fmt.Fprintf(w, "Figure 12: average readings aggregated per query (8 nodes; floor %.0f)\n",
		audit.MinRowsPerQuery)
	fmt.Fprintf(w, "%6s %12s %12s %8s\n", "substa", "rows/query", "queries", "valid")
	for _, pt := range pts {
		rows := pt.Measured.AvgRowsPerQuery
		valid := "yes"
		if rows < audit.MinRowsPerQuery {
			valid = "NO"
		}
		fmt.Fprintf(w, "%6d %12.1f %12d %8s\n",
			pt.Substations, rows, pt.Measured.Queries, valid)
	}
	fmt.Fprintln(w)
	return nil
}

// Fig13 regenerates Figure 13: average system-wide query elapsed time.
func (s *Suite) Fig13() error {
	pts, err := s.Sweep(8)
	if err != nil {
		return err
	}
	w := s.opts.Out
	fmt.Fprintf(w, "Figure 13: average query elapsed time (8 nodes)\n")
	fmt.Fprintf(w, "%6s %12s %12s %8s\n", "substa", "avg[ms]", "paper[ms]", "delta")
	for _, pt := range pts {
		got := pt.Measured.QueryLatency.Mean() / 1e6
		paper := PaperQueryAvgMS[pt.Substations]
		fmt.Fprintf(w, "%6d %12.1f %12.1f %8s\n", pt.Substations, got, paper, pct(got, paper))
	}
	fmt.Fprintln(w)
	return nil
}

// Fig14 regenerates Figure 14: min/max/avg query latency with the
// coefficient of variation, plus the 95th percentiles the paper discusses.
func (s *Suite) Fig14() error {
	pts, err := s.Sweep(8)
	if err != nil {
		return err
	}
	w := s.opts.Out
	fmt.Fprintf(w, "Figure 14: query latency distribution (8 nodes)\n")
	fmt.Fprintf(w, "%6s %10s %10s %10s %8s %10s %12s\n",
		"substa", "min[ms]", "avg[ms]", "max[ms]", "CV", "p95[ms]", "paper p95")
	for _, pt := range pts {
		q := pt.Measured.QueryLatency
		fmt.Fprintf(w, "%6d %10.1f %10.1f %10.0f %8.2f %10.1f %12.0f\n",
			pt.Substations,
			float64(q.Min())/1e6, q.Mean()/1e6, float64(q.Max())/1e6,
			q.CV(), float64(q.Percentile(95))/1e6, PaperQueryP95MS[pt.Substations])
	}
	fmt.Fprintln(w)
	return nil
}

// Table2 regenerates Table II (and Figure 15): per-substation ingest-time
// skew.
func (s *Suite) Table2() error {
	pts, err := s.Sweep(8)
	if err != nil {
		return err
	}
	w := s.opts.Out
	fmt.Fprintf(w, "Table II / Figure 15: per-substation ingest time skew (8 nodes; %s)\n", s.scaleNote())
	fmt.Fprintf(w, "%6s %10s %10s %10s %10s %10s %12s\n",
		"substa", "min[s]", "max[s]", "avg[s]", "diff[s]", "diff%", "paper diff%")
	for _, pt := range pts {
		min, max, avg := pt.Measured.IngestSkew()
		rel := 0.0
		if min > 0 {
			rel = 100 * float64(max-min) / float64(min)
		}
		ps := PaperIngestSkew[pt.Substations]
		paperRel := 0.0
		if ps[0] > 0 {
			paperRel = 100 * (ps[1] - ps[0]) / ps[0]
		}
		fmt.Fprintf(w, "%6d %10.0f %10.0f %10.0f %10.0f %9.0f%% %11.0f%%\n",
			pt.Substations, seconds(min), seconds(max), seconds(avg),
			seconds(max-min), rel, paperRel)
	}
	fmt.Fprintln(w)
	return nil
}

// Table3 regenerates Table III (and Figure 16): the scale-out comparison of
// 2-, 4- and 8-node clusters.
func (s *Suite) Table3() error {
	w := s.opts.Out
	fmt.Fprintf(w, "Table III / Figure 16: system-wide and per-sensor IoTps, 2/4/8 nodes (%s)\n", s.scaleNote())
	fmt.Fprintf(w, "%6s | %10s %10s %8s | %10s %10s %8s | %10s %10s %8s\n",
		"substa",
		"2-node", "paper", "delta",
		"4-node", "paper", "delta",
		"8-node", "paper", "delta")
	sweeps := map[int][]Point{}
	for _, n := range []int{2, 4, 8} {
		pts, err := s.Sweep(n)
		if err != nil {
			return err
		}
		sweeps[n] = pts
	}
	for i, sub := range SubstationCounts {
		row := fmt.Sprintf("%6d", sub)
		for _, n := range []int{2, 4, 8} {
			got := sweeps[n][i].Measured.IoTps()
			paper := PaperIoTps[n][sub]
			row += fmt.Sprintf(" | %10.0f %10.0f %8s", got, paper, pct(got, paper))
		}
		fmt.Fprintln(w, row)
	}
	fmt.Fprintf(w, "\nper-sensor IoTps:\n")
	for i, sub := range SubstationCounts {
		row := fmt.Sprintf("%6d", sub)
		for _, n := range []int{2, 4, 8} {
			row += fmt.Sprintf(" | %10.1f", sweeps[n][i].Measured.PerSensorIoTps(sub))
		}
		fmt.Fprintln(w, row)
	}
	fmt.Fprintln(w)
	return nil
}

// All regenerates every table and figure in paper order.
func (s *Suite) All() error {
	steps := []func() error{
		s.Fig8, s.Table1, s.Fig10, s.Fig11, s.Fig12, s.Fig13, s.Fig14,
		s.Table2, s.Table3,
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the experiment with the given id ("fig8", "table1", "fig10",
// "fig11", "fig12", "fig13", "fig14", "table2", "fig15", "table3", "fig16",
// or "all").
func (s *Suite) Run(id string) error {
	switch id {
	case "fig8":
		return s.Fig8()
	case "table1":
		return s.Table1()
	case "fig10":
		return s.Fig10()
	case "fig11":
		return s.Fig11()
	case "fig12":
		return s.Fig12()
	case "fig13":
		return s.Fig13()
	case "fig14":
		return s.Fig14()
	case "table2", "fig15":
		return s.Table2()
	case "table3", "fig16":
		return s.Table3()
	case "live":
		return s.Live()
	case "all":
		return s.All()
	default:
		return fmt.Errorf("experiments: unknown experiment %q", id)
	}
}
