package experiments

import (
	"fmt"
	"io"
	"time"

	"tpcxiot/internal/testbed"
)

// Options configures experiment regeneration.
type Options struct {
	// Out receives the formatted tables. Required.
	Out io.Writer
	// FullScale runs the paper's kvp volumes (hundreds of millions;
	// minutes of wall time across the whole suite). When false, volumes
	// are divided by ScaleDivisor and each run takes well under a second;
	// throughput and rate columns are unaffected by the scaling, but
	// elapsed times shrink proportionally and the 1800 s rule is then
	// reported against the scaled volume.
	FullScale bool
	// ScaleDivisor divides the paper volumes when FullScale is false.
	// Defaults to 100.
	ScaleDivisor int64
	// Seed drives all stochastic elements.
	Seed uint64
	// Params overrides the calibrated testbed model.
	Params *testbed.Params
}

func (o Options) withDefaults() Options {
	if o.ScaleDivisor <= 0 {
		o.ScaleDivisor = 100
	}
	if !o.FullScale && o.Params == nil {
		// Compaction/GC stalls are physical-time events (seconds each); a
		// scaled-down run lasts only tens of virtual seconds, so a single
		// stall would dominate it, whereas the paper's 30-minute runs
		// amortise stalls into the latency tail. Scaled runs therefore
		// disable them; -full keeps the complete model.
		p := testbed.DefaultParams()
		p.StallMeanInterval = 0
		o.Params = &p
	}
	return o
}

// kvpsFor returns the ingest volume for a substation count under the
// configured scale.
func (o Options) kvpsFor(substations int) int64 {
	k := PaperKVPs[substations]
	if k == 0 {
		k = 400_000_000
	}
	if !o.FullScale {
		k /= o.ScaleDivisor
	}
	return k
}

// Point is one sweep measurement: a warmup and measured execution at one
// (cluster size, substation count) coordinate.
type Point struct {
	Nodes       int
	Substations int
	KVPs        int64
	Warmup      testbed.Execution
	Measured    testbed.Execution
}

// Suite runs and caches the sweeps shared by several experiments, so
// regenerating all tables and figures simulates each configuration once.
type Suite struct {
	opts  Options
	cache map[int][]Point // keyed by cluster size
}

// NewSuite returns a Suite for the options.
func NewSuite(opts Options) *Suite {
	return &Suite{opts: opts.withDefaults(), cache: make(map[int][]Point)}
}

// Sweep returns the full substation sweep for a cluster size, simulating it
// on first use.
func (s *Suite) Sweep(nodes int) ([]Point, error) {
	if pts, ok := s.cache[nodes]; ok {
		return pts, nil
	}
	var pts []Point
	for _, sub := range SubstationCounts {
		k := s.opts.kvpsFor(sub)
		res, err := testbed.RunBenchmark(testbed.Config{
			Nodes:       nodes,
			Substations: sub,
			TotalKVPs:   k,
			Seed:        s.opts.Seed ^ uint64(nodes*1000+sub),
			Params:      s.opts.Params,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: %d nodes, %d substations: %w", nodes, sub, err)
		}
		pts = append(pts, Point{
			Nodes: nodes, Substations: sub, KVPs: k,
			Warmup: res.Warmup, Measured: res.Measured,
		})
	}
	s.cache[nodes] = pts
	return pts, nil
}

// scaleNote renders the footnote explaining volume scaling.
func (s *Suite) scaleNote() string {
	if s.opts.FullScale {
		return "volumes and durations at full paper scale"
	}
	return fmt.Sprintf("volumes scaled down %dx from the paper's (rates unaffected; durations scale with volume; stall events disabled — use -full for latency-tail fidelity)", s.opts.ScaleDivisor)
}

func seconds(d time.Duration) float64 { return d.Seconds() }

// pct renders a relative deviation from a reference.
func pct(got, ref float64) string {
	if ref == 0 {
		return "    n/a"
	}
	return fmt.Sprintf("%+6.1f%%", 100*(got-ref)/ref)
}
