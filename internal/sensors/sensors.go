// Package sensors models the instrumentation of a power substation.
//
// TPCx-IoT fixes each simulated substation at 200 sensors. The paper's use
// case (Section III-A, Figure 3) names the sensor families found in real
// power substations — phasor measurement units, load-tap-changer gassing
// sensors, metal-insulator-semiconductor gas sensors, and leakage-current
// sensors — and this package provides a deterministic catalogue of 200
// concrete sensors built from those families, each with a realistic value
// range, unit, and sampling behaviour.
package sensors

import (
	"fmt"

	"tpcxiot/internal/gen"
)

// PerSubstation is the number of sensors in every simulated substation,
// fixed by the TPCx-IoT specification.
const PerSubstation = 200

// Family describes one class of substation instrumentation.
type Family struct {
	// Name is the short family identifier used in sensor keys.
	Name string
	// Description says what the physical sensor measures.
	Description string
	// Unit is the measurement unit reported with every reading
	// (4-34 characters per the kvp specification).
	Unit string
	// Min and Max bound the nominal reading range.
	Min, Max float64
	// Jitter is the standard deviation of reading-to-reading movement as a
	// fraction of the range; readings follow a mean-reverting walk.
	Jitter float64
	// TypicalRate is the sensor's natural sampling rate in samples/second,
	// documentation of the real-world source (PMUs: 60-121 sps; vibration:
	// thousands of sps). The benchmark drives sensors as fast as the gateway
	// accepts, so this is informational.
	TypicalRate float64
}

// Families is the catalogue of sensor classes, drawn from the substation
// equipment the paper describes.
var Families = []Family{
	{
		Name:        "pmu-freq",
		Description: "phasor measurement unit: grid frequency via synchrophasors",
		Unit:        "hertz",
		Min:         59.90, Max: 60.10, Jitter: 0.02, TypicalRate: 60,
	},
	{
		Name:        "pmu-vmag",
		Description: "phasor measurement unit: positive-sequence voltage magnitude",
		Unit:        "kilovolt",
		Min:         110, Max: 125, Jitter: 0.01, TypicalRate: 60,
	},
	{
		Name:        "pmu-angle",
		Description: "phasor measurement unit: voltage phase angle",
		Unit:        "degree",
		Min:         -180, Max: 180, Jitter: 0.05, TypicalRate: 121,
	},
	{
		Name:        "ltc-gas",
		Description: "load tap changer gassing sensor: dissolved combustible gas",
		Unit:        "ppm combustible",
		Min:         0, Max: 2000, Jitter: 0.005, TypicalRate: 1,
	},
	{
		Name:        "mis-h2",
		Description: "metal-insulator-semiconductor gas sensor: hydrogen level",
		Unit:        "ppm hydrogen",
		Min:         0, Max: 1500, Jitter: 0.004, TypicalRate: 1,
	},
	{
		Name:        "mis-c2h2",
		Description: "metal-insulator-semiconductor gas sensor: acetylene level",
		Unit:        "ppm acetylene",
		Min:         0, Max: 35, Jitter: 0.004, TypicalRate: 1,
	},
	{
		Name:        "leakage",
		Description: "leakage current sensor: current leakage to earth",
		Unit:        "milliampere",
		Min:         0, Max: 500, Jitter: 0.01, TypicalRate: 10,
	},
	{
		Name:        "xfmr-temp",
		Description: "transformer top-oil temperature",
		Unit:        "degree celsius",
		Min:         20, Max: 110, Jitter: 0.002, TypicalRate: 1,
	},
	{
		Name:        "xfmr-load",
		Description: "transformer load current",
		Unit:        "ampere",
		Min:         0, Max: 3000, Jitter: 0.01, TypicalRate: 10,
	},
	{
		Name:        "breaker-sf6",
		Description: "circuit breaker SF6 gas density",
		Unit:        "kilopascal",
		Min:         500, Max: 700, Jitter: 0.001, TypicalRate: 1,
	},
	{
		Name:        "bus-vibration",
		Description: "busbar vibration for predictive maintenance",
		Unit:        "millimetre per second",
		Min:         0, Max: 25, Jitter: 0.05, TypicalRate: 2000,
	},
	{
		Name:        "ambient-temp",
		Description: "switchyard ambient temperature",
		Unit:        "degree celsius",
		Min:         -30, Max: 50, Jitter: 0.001, TypicalRate: 0.1,
	},
}

// Sensor is one concrete instrument within a substation.
type Sensor struct {
	// Key uniquely identifies the sensor within its substation, e.g.
	// "pmu-freq-003". Keys are 1-64 characters per the kvp specification.
	Key string
	// Family indexes into Families.
	Family int
}

// Unit returns the sensor's measurement unit.
func (s Sensor) Unit() string { return Families[s.Family].Unit }

// Catalogue returns the deterministic complement of PerSubstation sensors
// for one substation. Sensors are spread round-robin across the families so
// every substation carries the full instrument mix; the same index always
// yields the same sensor key.
func Catalogue() []Sensor {
	out := make([]Sensor, PerSubstation)
	counts := make([]int, len(Families))
	for i := range out {
		f := i % len(Families)
		out[i] = Sensor{
			Key:    fmt.Sprintf("%s-%03d", Families[f].Name, counts[f]),
			Family: f,
		}
		counts[f]++
	}
	return out
}

// Reader produces a stream of readings for one sensor as a mean-reverting
// random walk inside the family's nominal range. Readings are rendered as
// short decimal strings for the kvp sensor-value field.
type Reader struct {
	sensor Sensor
	rng    *gen.RNG
	value  float64
}

// NewReader returns a reading stream for the sensor, seeded deterministically.
func NewReader(s Sensor, seed uint64) *Reader {
	f := Families[s.Family]
	r := &Reader{sensor: s, rng: gen.NewRNG(seed)}
	r.value = f.Min + r.rng.Float64()*(f.Max-f.Min)
	return r
}

// Sensor returns the instrument this reader simulates.
func (r *Reader) Sensor() Sensor { return r.sensor }

// Next advances the walk and returns the new raw reading.
func (r *Reader) Next() float64 {
	f := Families[r.sensor.Family]
	span := f.Max - f.Min
	mid := f.Min + span/2
	// Mean-reverting step: drift toward the midpoint plus Gaussian noise.
	r.value += 0.01*(mid-r.value) + r.rng.NormFloat64()*f.Jitter*span
	if r.value < f.Min {
		r.value = f.Min
	}
	if r.value > f.Max {
		r.value = f.Max
	}
	return r.value
}

// NextString advances the walk and renders the reading as a decimal string
// of at most kvp.MaxSensorValueLen characters.
func (r *Reader) NextString() string {
	return FormatReading(r.Next())
}

// FormatReading renders a raw reading as a sensor-value field: a compact
// decimal with two fractional digits, guaranteed 1-20 characters for any
// value the catalogue's families can produce.
func FormatReading(v float64) string {
	return fmt.Sprintf("%.2f", v)
}
