package sensors

import (
	"testing"
	"testing/quick"

	"tpcxiot/internal/kvp"
)

func TestCatalogueSize(t *testing.T) {
	if got := len(Catalogue()); got != PerSubstation {
		t.Fatalf("catalogue has %d sensors, want %d", got, PerSubstation)
	}
}

func TestCatalogueKeysUniqueAndValid(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Catalogue() {
		if seen[s.Key] {
			t.Fatalf("duplicate sensor key %q", s.Key)
		}
		seen[s.Key] = true
		if len(s.Key) < 1 || len(s.Key) > kvp.MaxSensorKeyLen {
			t.Fatalf("sensor key %q length %d outside kvp limits", s.Key, len(s.Key))
		}
	}
}

func TestCatalogueDeterministic(t *testing.T) {
	a, b := Catalogue(), Catalogue()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("catalogue not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCatalogueCoversAllFamilies(t *testing.T) {
	present := make([]bool, len(Families))
	for _, s := range Catalogue() {
		present[s.Family] = true
	}
	for i, p := range present {
		if !p {
			t.Fatalf("family %q missing from catalogue", Families[i].Name)
		}
	}
}

func TestFamilyUnitsWithinKvpLimits(t *testing.T) {
	for _, f := range Families {
		if len(f.Unit) < kvp.MinSensorUnitLen || len(f.Unit) > kvp.MaxSensorUnitLen {
			t.Fatalf("family %q unit %q length %d outside [%d,%d]",
				f.Name, f.Unit, len(f.Unit), kvp.MinSensorUnitLen, kvp.MaxSensorUnitLen)
		}
		if f.Max <= f.Min {
			t.Fatalf("family %q has empty range [%v,%v]", f.Name, f.Min, f.Max)
		}
	}
}

func TestReaderStaysInRange(t *testing.T) {
	for fi := range Families {
		s := Sensor{Key: "t", Family: fi}
		r := NewReader(s, 99)
		f := Families[fi]
		for i := 0; i < 5000; i++ {
			v := r.Next()
			if v < f.Min || v > f.Max {
				t.Fatalf("family %q reading %v outside [%v,%v]", f.Name, v, f.Min, f.Max)
			}
		}
	}
}

func TestReaderDeterministic(t *testing.T) {
	s := Catalogue()[0]
	a := NewReader(s, 7)
	b := NewReader(s, 7)
	for i := 0; i < 100; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("readers with equal seeds diverged at %d", i)
		}
	}
}

func TestReaderSeedsDiffer(t *testing.T) {
	s := Catalogue()[0]
	a := NewReader(s, 1)
	b := NewReader(s, 2)
	identical := true
	for i := 0; i < 50; i++ {
		if a.Next() != b.Next() {
			identical = false
			break
		}
	}
	if identical {
		t.Fatal("readers with different seeds produced identical streams")
	}
}

func TestFormatReadingWithinValueLimits(t *testing.T) {
	f := func(raw float64) bool {
		// Clamp into the widest catalogue range to mirror Reader behaviour.
		if raw < -1e6 || raw > 1e6 {
			return true // out of modelled space; skip
		}
		s := FormatReading(raw)
		return len(s) >= kvp.MinSensorValueLen && len(s) <= kvp.MaxSensorValueLen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadingStringsFitPair(t *testing.T) {
	// Every sensor's rendered reading must leave room for padding in a
	// 1 KiB pair with a realistic key.
	for _, s := range Catalogue() {
		r := NewReader(s, 5)
		k := kvp.Key{Substation: "substation-00001", Sensor: s.Key, Timestamp: 1700000000000}
		for i := 0; i < 10; i++ {
			reading := r.NextString()
			if _, err := kvp.PaddingFor(k, reading, s.Unit()); err != nil {
				t.Fatalf("sensor %s reading %q does not fit a pair: %v", s.Key, reading, err)
			}
		}
	}
}
