// Aggregation-pushdown query paths: the dashboard templates re-expressed
// over the binding's server-side windowed aggregation (ycsb.Aggregator),
// plus the analytic templates (downsampling, group-by-window) that the
// pushdown primitive makes affordable. Every entry point falls back to the
// streamed scan-and-fold path when the binding lacks the capability, so the
// same workload runs against any DB.
package workload

import (
	"fmt"
	"math"
	"time"

	"tpcxiot/internal/kvp"
	"tpcxiot/internal/ycsb"
)

// aggFuncsFor maps a dashboard template to the functions its pushed-down
// form needs. Count-only templates ride the server's key-iteration fast
// path (no value decode); the others carry count too, both for the Rows
// statistic and because avg must merge as (sum, count).
func aggFuncsFor(kind QueryKind) ycsb.AggFuncs {
	switch kind {
	case QueryMax:
		return ycsb.AggCount | ycsb.AggMax
	case QueryMin:
		return ycsb.AggCount | ycsb.AggMin
	case QueryAvg:
		return ycsb.AggCount | ycsb.AggSum | ycsb.AggAvg
	default:
		return ycsb.AggCount
	}
}

// windowAggregate converts the partials of one single-window interval query
// (one sensor, windowMS = 0 → at most one window) to the dashboard
// Aggregate. Only the fields funcs covers are populated; Value() reads
// exactly those.
func windowAggregate(windows []ycsb.AggWindow, funcs ycsb.AggFuncs) Aggregate {
	var agg Aggregate
	for _, w := range windows {
		agg.Rows += int(w.Count)
		if funcs&ycsb.AggMax != 0 && (agg.Rows == int(w.Count) || w.Max > agg.Max) {
			agg.Max = w.Max
		}
		if funcs&ycsb.AggMin != 0 && (agg.Rows == int(w.Count) || w.Min < agg.Min) {
			agg.Min = w.Min
		}
		if funcs&(ycsb.AggSum|ycsb.AggAvg) != 0 {
			agg.Avg += w.Sum // settled to the mean below
		}
	}
	if agg.Rows > 0 && funcs&(ycsb.AggSum|ycsb.AggAvg) != 0 {
		agg.Avg /= float64(agg.Rows) // mean from (sum, count), never of means
	}
	return agg
}

// pushAggregate runs one 5-second-interval aggregation for a single sensor
// through the binding's server-side path.
func pushAggregate(agg ycsb.Aggregator, substation, sensor string, minTS, maxTS int64, funcs ycsb.AggFuncs) (Aggregate, error) {
	lo, hi := kvp.RangeFor(substation, sensor, minTS, maxTS)
	windows, _, err := agg.Aggregate(lo, hi, minTS, maxTS, 0, funcs)
	if err != nil {
		return Aggregate{}, err
	}
	return windowAggregate(windows, funcs), nil
}

// RunQueryPushdown executes one dashboard query template with the
// aggregation pushed into the storage tier: the two 5-second intervals are
// reduced to partial aggregates inside the region servers and only a
// handful of floats cross the client boundary, instead of every 1 KiB row.
// The result carries the statistics the template needs (plus Rows); fields
// other templates would read are zero. When db does not implement
// ycsb.Aggregator the call transparently degrades to the streamed RunQuery.
func RunQueryPushdown(db ycsb.DB, kind QueryKind, substation, sensor string,
	now time.Time, histStart time.Time) (QueryResult, error) {

	agg, ok := db.(ycsb.Aggregator)
	if !ok {
		return RunQuery(db, kind, substation, sensor, now, histStart)
	}
	res := QueryResult{Kind: kind, Substation: substation, Sensor: sensor}
	funcs := aggFuncsFor(kind)

	nowMS := now.UnixMilli()
	var err error
	res.Recent, err = pushAggregate(agg, substation, sensor, nowMS-RecentWindow.Milliseconds(), nowMS, funcs)
	if err != nil {
		return res, fmt.Errorf("workload: recent aggregate: %w", err)
	}
	hs := histStart.UnixMilli()
	res.Historical, err = pushAggregate(agg, substation, sensor, hs, hs+RecentWindow.Milliseconds(), funcs)
	if err != nil {
		return res, fmt.Errorf("workload: historical aggregate: %w", err)
	}
	return res, nil
}

// RunWindowQuery executes one multi-window aggregation for a single sensor:
// per-window partials over [minTS, maxTS) with the given window width —
// the shape of the downsampling and group-by-window analytic templates.
// With pushdown set and an aggregating binding, the fold happens inside the
// storage tier and rowsFolded reports how many rows were reduced there;
// otherwise the rows stream to the client and fold locally (rowsFolded
// counts the same rows, but every one crossed the wire). Empty windows are
// omitted in both paths.
func RunWindowQuery(db ycsb.DB, substation, sensor string,
	minTS, maxTS, windowMS int64, funcs ycsb.AggFuncs, pushdown bool) (windows []ycsb.AggWindow, rowsFolded int64, err error) {

	lo, hi := kvp.RangeFor(substation, sensor, minTS, maxTS)
	if agg, ok := db.(ycsb.Aggregator); ok && pushdown {
		return agg.Aggregate(lo, hi, minTS, maxTS, windowMS, funcs)
	}
	return streamWindows(db, lo, hi, minTS, maxTS, windowMS, funcs)
}

// streamWindows is the client-side baseline for multi-window aggregation:
// a streamed scan folded into windows as rows arrive. It mirrors the
// engine-side fold exactly (same windowing, same merge identities), which
// makes it both the fallback for non-aggregating bindings and the oracle
// the parity property tests compare the pushed-down path against.
func streamWindows(db ycsb.DB, lo, hi []byte, minTS, maxTS, windowMS int64, funcs ycsb.AggFuncs) ([]ycsb.AggWindow, int64, error) {
	if windowMS <= 0 {
		windowMS = maxTS - minTS
		if windowMS <= 0 {
			windowMS = 1
		}
	}
	it, err := db.ScanIter(lo, hi, 0)
	if err != nil {
		return nil, 0, err
	}
	defer it.Close()

	needValue := funcs&(ycsb.AggMin|ycsb.AggMax|ycsb.AggSum|ycsb.AggAvg) != 0
	var out []ycsb.AggWindow
	var folded int64
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			break
		}
		series, ok := kvp.SeriesOf(row.Key)
		if !ok {
			continue
		}
		ts, ok := kvp.TimestampOf(row.Key)
		if !ok || ts < minTS || ts >= maxTS {
			continue
		}
		wstart := minTS + (ts-minTS)/windowMS*windowMS
		n := len(out)
		if n == 0 || out[n-1].WindowStart != wstart || string(out[n-1].Series) != string(series) {
			out = append(out, ycsb.AggWindow{
				Series:      append([]byte(nil), series...),
				WindowStart: wstart,
				Min:         math.Inf(1),
				Max:         math.Inf(-1),
			})
			n++
		}
		w := &out[n-1]
		w.Count++
		folded++
		if needValue {
			v, err := kvp.ReadingOf(row.Value)
			if err != nil {
				return nil, 0, fmt.Errorf("workload: bad stored value: %w", err)
			}
			if v < w.Min {
				w.Min = v
			}
			if v > w.Max {
				w.Max = v
			}
			w.Sum += v
		}
	}
	return out, folded, it.Close()
}
