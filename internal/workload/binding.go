package workload

import (
	"errors"

	"tpcxiot/internal/hbase"
	"tpcxiot/internal/lsm"
	"tpcxiot/internal/ycsb"
)

// clientDB adapts an hbase.Client to the ycsb.DB interface. Each worker
// thread receives its own client (and thus its own write buffer), matching
// how YCSB binds one HBase connection per thread.
type clientDB struct {
	c *hbase.Client
}

// Insert implements ycsb.DB.
func (d clientDB) Insert(key, value []byte) error { return d.c.Put(key, value) }

// Read implements ycsb.DB.
func (d clientDB) Read(key []byte) ([]byte, bool, error) { return d.c.Get(key) }

// Scan implements ycsb.DB.
func (d clientDB) Scan(lo, hi []byte, limit int) ([]ycsb.KV, error) {
	rows, err := d.c.Scan(lo, hi, limit)
	if err != nil {
		return nil, err
	}
	out := make([]ycsb.KV, len(rows))
	for i, r := range rows {
		out[i] = ycsb.KV{Key: r.Key, Value: r.Value}
	}
	return out, nil
}

// ScanIter implements ycsb.DB over the client's streaming Scanner: rows
// arrive chunk by chunk from the server-side scanner sessions, so the
// binding holds O(chunk) memory however large the range is.
func (d clientDB) ScanIter(lo, hi []byte, limit int) (ycsb.RowIter, error) {
	sc, err := d.c.NewScanner(lo, hi, limit)
	if err != nil {
		return nil, err
	}
	return scannerIter{sc: sc}, nil
}

// scannerIter adapts hbase.Scanner to ycsb.RowIter.
type scannerIter struct{ sc *hbase.Scanner }

func (it scannerIter) Next() (ycsb.KV, bool, error) {
	row, ok, err := it.sc.Next()
	return ycsb.KV{Key: row.Key, Value: row.Value}, ok, err
}

func (it scannerIter) Close() error { return it.sc.Close() }

// Aggregate implements ycsb.Aggregator over the cluster's aggregation-
// pushdown RPC: each overlapping region folds its rows server-side and only
// per-window partials cross the client boundary, merged exactly by the
// hbase client ((sum, count) for avg, never mean-of-means).
func (d clientDB) Aggregate(lo, hi []byte, minTS, maxTS, windowMS int64, funcs ycsb.AggFuncs) ([]ycsb.AggWindow, int64, error) {
	res, err := d.c.Aggregate(lo, hi, minTS, maxTS, windowMS, lsm.AggFuncs(funcs))
	if err != nil {
		return nil, 0, err
	}
	return aggWindows(res.Windows), res.RowsFolded, nil
}

// aggWindows converts engine partials to the framework's binding-neutral
// form.
func aggWindows(ws []lsm.WindowAgg) []ycsb.AggWindow {
	out := make([]ycsb.AggWindow, len(ws))
	for i, w := range ws {
		out[i] = ycsb.AggWindow{
			Series:      w.Series,
			WindowStart: w.WindowStart,
			Count:       w.Count,
			Min:         w.Min,
			Max:         w.Max,
			Sum:         w.Sum,
		}
	}
	return out
}

// Close implements ycsb.DB, flushing buffered writes.
func (d clientDB) Close() error { return d.c.Close() }

// ClusterBinding returns a ycsb.Binding that opens one buffered client per
// worker thread against the given cluster table. writeBufferBytes is the
// client-side buffer threshold (hbase.client.write.buffer); 0 disables
// buffering.
func ClusterBinding(cl *hbase.Cluster, table string, writeBufferBytes int64) ycsb.Binding {
	return func(thread int) (ycsb.DB, error) {
		c, err := cl.NewClient(table, writeBufferBytes)
		if err != nil {
			return nil, err
		}
		return clientDB{c: c}, nil
	}
}

// ClusterBindingTCP is ClusterBinding over the cluster's loopback TCP wire
// protocol: each worker thread gets its own connections to the region
// servers, exercising the client-to-server network path of the SUT. The
// cluster must already be serving TCP.
func ClusterBindingTCP(cl *hbase.Cluster, table string, writeBufferBytes int64) ycsb.Binding {
	return func(thread int) (ycsb.DB, error) {
		c, err := cl.NewTCPClient(table, writeBufferBytes)
		if err != nil {
			return nil, err
		}
		return clientDB{c: c}, nil
	}
}

// storeDB adapts a single embedded LSM store to ycsb.DB — the smallest
// possible gateway: one node, no replication, no network. Useful for
// embedded deployments and for isolating the storage engine in benchmarks.
type storeDB struct {
	s *lsm.Store
}

// Insert implements ycsb.DB.
func (d storeDB) Insert(key, value []byte) error { return d.s.Put(key, value) }

// Read implements ycsb.DB.
func (d storeDB) Read(key []byte) ([]byte, bool, error) { return d.s.Get(key) }

// Scan implements ycsb.DB.
func (d storeDB) Scan(lo, hi []byte, limit int) ([]ycsb.KV, error) {
	var out []ycsb.KV
	err := d.s.Scan(lo, hi, func(k, v []byte) error {
		out = append(out, ycsb.KV{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), v...),
		})
		if limit > 0 && len(out) >= limit {
			return errStopScan
		}
		return nil
	})
	if err == errStopScan {
		err = nil
	}
	return out, err
}

// ScanIter implements ycsb.DB directly over the engine's snapshot-pinned
// iterator — the zero-copy embedded path: rows are borrowed from the LSM
// snapshot until the next call, exactly the RowIter contract.
func (d storeDB) ScanIter(lo, hi []byte, limit int) (ycsb.RowIter, error) {
	it, err := d.s.NewIterator(lo, hi)
	if err != nil {
		return nil, err
	}
	return &lsmIter{it: it, limited: limit > 0, remaining: limit}, nil
}

// lsmIter adapts lsm.Iter to ycsb.RowIter with a client-side row limit.
type lsmIter struct {
	it        *lsm.Iter
	started   bool
	limited   bool
	remaining int
}

func (l *lsmIter) Next() (ycsb.KV, bool, error) {
	if l.limited && l.remaining <= 0 {
		return ycsb.KV{}, false, nil
	}
	// Advance lazily so the previously returned borrowed slices stay valid
	// until this call, per the RowIter contract.
	if l.started {
		l.it.Next()
	} else {
		l.started = true
	}
	if !l.it.Valid() {
		return ycsb.KV{}, false, l.it.Error()
	}
	if l.limited {
		l.remaining--
	}
	return ycsb.KV{Key: l.it.Key(), Value: l.it.Value()}, true, nil
}

func (l *lsmIter) Close() error { return l.it.Close() }

// Aggregate implements ycsb.Aggregator directly over the engine's windowed
// fold — the embedded pushdown path (no RPC, but the same snapshot-pinned,
// file-pruned single-pass reduction).
func (d storeDB) Aggregate(lo, hi []byte, minTS, maxTS, windowMS int64, funcs ycsb.AggFuncs) ([]ycsb.AggWindow, int64, error) {
	res, err := d.s.AggregateTime(lo, hi, minTS, maxTS, windowMS, lsm.AggFuncs(funcs))
	if err != nil {
		return nil, 0, err
	}
	return aggWindows(res.Windows), res.RowsFolded, nil
}

// Close implements ycsb.DB; the store is shared, so this is a no-op.
func (d storeDB) Close() error { return nil }

var errStopScan = errors.New("workload: scan limit reached")

// StoreBinding returns a ycsb.Binding over one embedded LSM store shared by
// all worker threads (the store is safe for concurrent use).
func StoreBinding(s *lsm.Store) ycsb.Binding {
	return func(thread int) (ycsb.DB, error) { return storeDB{s: s}, nil }
}
