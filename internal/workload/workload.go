// Package workload implements the TPCx-IoT workload: sensor-data ingestion
// for simulated power substations and the four concurrent dashboard query
// templates, layered on the ycsb framework exactly as the paper describes
// (Sections III-C and III-D).
//
// One Instance corresponds to one TPCx-IoT driver instance, which simulates
// one power substation with 200 sensors. Threads within the instance own
// disjoint sensor subsets and interleave inserts with queries at the
// specified ratio (five queries per 10 000 sensor readings).
package workload

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tpcxiot/internal/gen"
	"tpcxiot/internal/hbase"
	"tpcxiot/internal/kvp"
	"tpcxiot/internal/sensors"
	"tpcxiot/internal/telemetry"
	"tpcxiot/internal/ycsb"
)

// Specification constants.
const (
	// ReadingsPerQueryPair is the ingest-to-query ratio: the paper executes
	// five queries for every 10 000 sensor readings, i.e. one per 2 000.
	ReadingsPerQueryPair = 2000

	// RecentWindow is the "last 5 seconds" interval every query reads.
	RecentWindow = 5 * time.Second

	// HistoryWindow is the range from which the comparison interval is
	// drawn: a random 5-second window within the previous 1 800 seconds.
	HistoryWindow = 1800 * time.Second

	// DefaultThreads is the worker-thread count per driver instance; the
	// paper's Figure 8 discussion (64 drivers spawning 640 threads) implies
	// ten threads per driver.
	DefaultThreads = 10
)

// SubstationName renders the canonical substation key for driver instance i.
func SubstationName(i int) string {
	return fmt.Sprintf("substation-%05d", i)
}

// SubstationNames returns the keys for driver instances 0..n-1.
func SubstationNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = SubstationName(i)
	}
	return out
}

// SplitKeys returns table pre-split points that give every substation its
// own region: one boundary at each substation's key prefix except the first.
func SplitKeys(substations []string) [][]byte {
	var out [][]byte
	for i, s := range substations {
		if i == 0 {
			continue
		}
		out = append(out, kvp.SensorPrefix(s, "")[:len(s)+1])
	}
	return out
}

// KVPShare implements Equation 3: the number of kvps driver instance i
// (1-based, i in [1, p]) must generate when k total kvps are spread over p
// instances. The final instance absorbs the remainder.
func KVPShare(k int64, p int, i int) int64 {
	if p <= 0 || i < 1 || i > p {
		return 0
	}
	share := k / int64(p)
	if i == p {
		share += k % int64(p)
	}
	return share
}

// QueryKind names the query templates: the four dashboard templates of
// Section III-D plus the two analytic templates (downsampling and
// group-by-window counting, the first-class IoT query shapes of
// IoTDB-Benchmark) that ride the aggregation-pushdown path.
type QueryKind int

// The templates. The first dashboardKinds are the paper's rotation; the
// analytic templates join the rotation only when InstanceConfig.Analytics
// is set.
const (
	QueryMax QueryKind = iota
	QueryMin
	QueryAvg
	QueryCount
	QueryDownsample  // per-second averages over the trailing minute
	QueryWindowCount // per-5s reading counts over the trailing 5 minutes
	queryKinds
)

// dashboardKinds is the size of the default template rotation (the paper's
// four dashboard templates).
const dashboardKinds = QueryDownsample

// Analytic template windowing.
const (
	// DownsampleSpan and DownsampleWindow shape the downsampling template:
	// per-DownsampleWindow averages over the trailing DownsampleSpan.
	DownsampleSpan   = 60 * time.Second
	DownsampleWindow = 1 * time.Second
	// WindowCountSpan and WindowCountWindow shape the group-by-window
	// template: per-WindowCountWindow reading counts over the trailing
	// WindowCountSpan.
	WindowCountSpan   = 300 * time.Second
	WindowCountWindow = 5 * time.Second
)

// String names the template.
func (q QueryKind) String() string {
	switch q {
	case QueryMax:
		return "max-reading"
	case QueryMin:
		return "min-reading"
	case QueryAvg:
		return "average-reading"
	case QueryCount:
		return "reading-count"
	case QueryDownsample:
		return "downsample"
	case QueryWindowCount:
		return "window-count"
	default:
		return fmt.Sprintf("QueryKind(%d)", int(q))
	}
}

// Aggregate is the dashboard value computed over one 5-second interval.
type Aggregate struct {
	// Rows is the number of readings in the interval.
	Rows int
	// Max, Min, Avg are reading statistics; zero when Rows is 0.
	Max, Min, Avg float64
}

// QueryResult compares the aggregates of the two intervals, as every
// template does.
type QueryResult struct {
	Kind       QueryKind
	Substation string
	Sensor     string
	// Recent covers [now-5s, now); Historical a random 5 s window from the
	// previous 1 800 s.
	Recent, Historical Aggregate
}

// Value returns the dashboard comparison value for the template: the
// recent-interval statistic minus the historical one (count difference for
// QueryCount).
func (r QueryResult) Value() float64 {
	switch r.Kind {
	case QueryMax:
		return r.Recent.Max - r.Historical.Max
	case QueryMin:
		return r.Recent.Min - r.Historical.Min
	case QueryAvg:
		return r.Recent.Avg - r.Historical.Avg
	default:
		return float64(r.Recent.Rows - r.Historical.Rows)
	}
}

// aggregateRow folds one reading into the running aggregate. sum carries
// the mean's accumulator between calls; finishAggregate settles it.
func aggregateRow(agg *Aggregate, sum *float64, value []byte) error {
	val, err := kvp.DecodeValue(value)
	if err != nil {
		return fmt.Errorf("workload: bad stored value: %w", err)
	}
	f, err := strconv.ParseFloat(val.Reading, 64)
	if err != nil {
		return fmt.Errorf("workload: non-numeric reading %q: %w", val.Reading, err)
	}
	if agg.Rows == 0 || f > agg.Max {
		agg.Max = f
	}
	if agg.Rows == 0 || f < agg.Min {
		agg.Min = f
	}
	*sum += f
	agg.Rows++
	return nil
}

// scanAggregate streams one 5-second interval through the binding's
// iterator and folds each row as it arrives: the query holds O(chunk)
// memory however many readings the interval contains, instead of
// materializing the whole interval before aggregating.
func scanAggregate(db ycsb.DB, lo, hi []byte) (Aggregate, error) {
	it, err := db.ScanIter(lo, hi, 0)
	if err != nil {
		return Aggregate{}, err
	}
	defer it.Close()
	var agg Aggregate
	sum := 0.0
	for {
		row, ok, err := it.Next()
		if err != nil {
			return Aggregate{}, err
		}
		if !ok {
			break
		}
		if err := aggregateRow(&agg, &sum, row.Value); err != nil {
			return Aggregate{}, err
		}
	}
	if agg.Rows > 0 {
		agg.Avg = sum / float64(agg.Rows)
	}
	return agg, it.Close()
}

// RunQuery executes one dashboard query template against db at time now:
// two streaming range scans (recent and historical 5 s intervals for one
// sensor of one substation) with on-the-fly aggregation. Exported so
// examples and the query tooling can issue standalone dashboard queries.
func RunQuery(db ycsb.DB, kind QueryKind, substation, sensor string,
	now time.Time, histStart time.Time) (QueryResult, error) {

	res := QueryResult{Kind: kind, Substation: substation, Sensor: sensor}

	nowMS := now.UnixMilli()
	lo, hi := kvp.RangeFor(substation, sensor, nowMS-RecentWindow.Milliseconds(), nowMS)
	var err error
	if res.Recent, err = scanAggregate(db, lo, hi); err != nil {
		return res, fmt.Errorf("workload: recent scan: %w", err)
	}

	hs := histStart.UnixMilli()
	lo, hi = kvp.RangeFor(substation, sensor, hs, hs+RecentWindow.Milliseconds())
	if res.Historical, err = scanAggregate(db, lo, hi); err != nil {
		return res, fmt.Errorf("workload: historical scan: %w", err)
	}
	return res, nil
}

// Sequencer allocates collision-free per-sensor timestamps. Readings are
// keyed by (substation, sensor, unix-ms timestamp); at laptop-scale ingest
// a thread outruns the wall clock and bumps timestamps ahead of it, and a
// later workload execution starting from the wall clock again would reuse
// the bumped range — silently overwriting rows and undercounting the
// stored-rows check. A Sequencer shared across executions (the driver wires
// one through warmup and measured runs) remembers each sensor's last issued
// timestamp, so every generated key is unique for the process lifetime:
// next = max(wallMS, last+1).
//
// Threads own disjoint sensors, so the per-sensor counters are effectively
// uncontended; the CAS loop exists for correctness when a sensor is shared.
type Sequencer struct {
	mu   sync.Mutex
	last map[string]*atomic.Int64
}

// NewSequencer returns an empty timestamp sequencer.
func NewSequencer() *Sequencer {
	return &Sequencer{last: make(map[string]*atomic.Int64)}
}

// counter returns the sensor's last-issued-timestamp cell, creating it on
// first use. Threads resolve their sensors' cells once at NewThread.
func (q *Sequencer) counter(substation, sensor string) *atomic.Int64 {
	key := substation + "\x00" + sensor
	q.mu.Lock()
	defer q.mu.Unlock()
	c, ok := q.last[key]
	if !ok {
		c = new(atomic.Int64)
		q.last[key] = c
	}
	return c
}

// next issues the sensor's next timestamp: the wall clock when it has moved
// past the last issued value, otherwise last+1.
func nextTimestamp(c *atomic.Int64, wallMS int64) int64 {
	for {
		last := c.Load()
		ts := wallMS
		if ts <= last {
			ts = last + 1
		}
		if c.CompareAndSwap(last, ts) {
			return ts
		}
	}
}

// InstanceStats aggregates what one driver instance did, beyond the latency
// measurement the ycsb layer records.
type InstanceStats struct {
	// Inserted is the number of sensor readings ingested.
	Inserted int64
	// Queries is the number of dashboard queries executed.
	Queries int64
	// RowsAggregated is the total readings aggregated from the RECENT
	// interval across all queries.
	RowsAggregated int64
	// HistoricalRows is the same for the random historical interval.
	HistoricalRows int64
	// Shed counts inserts whose flush was load-shed by the cluster after
	// the client exhausted its retries. The shed batch stays buffered on
	// the client, so the readings are deferred to a later flush — counted
	// here, not lost.
	Shed int64
	// AnalyticQueries counts executions of the analytic templates
	// (downsample, window-count); AnalyticWindows is the window partials
	// they returned. Tracked separately from Queries so the dashboard
	// validity metrics (AvgRowsPerQuery) keep their Figure 12 meaning.
	AnalyticQueries int64
	// AnalyticWindows counts window partials returned by analytic queries.
	AnalyticWindows int64
	// PushdownRows counts rows reduced server-side by pushed-down queries
	// (rows that never crossed the client boundary as 1 KiB pairs).
	PushdownRows int64
}

// AvgRowsPerQuery is Figure 12's y-axis: mean readings aggregated per
// query over both 5-second intervals. A benchmark run is invalid below
// 200, which is Equation 2's 100-reading floor applied to each interval.
func (s InstanceStats) AvgRowsPerQuery() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.RowsAggregated+s.HistoricalRows) / float64(s.Queries)
}

// InstanceConfig configures one driver instance (one simulated substation).
type InstanceConfig struct {
	// Substation is the substation key. Required.
	Substation string
	// Readings is SR, the number of sensor readings to generate (the
	// instance's KVPShare). Required.
	Readings int64
	// Threads is the worker count; informational here (the ycsb RunConfig
	// carries the actual count) — retained for report rendering.
	Threads int
	// Seed makes the generated data deterministic.
	Seed uint64
	// Now supplies the clock; defaults to time.Now. The testbed injects a
	// virtual clock.
	Now func() time.Time
	// DisableQueries turns off query injection (pure-ingest experiments
	// such as Figure 8's generation-speed measurement).
	DisableQueries bool
	// Pushdown routes dashboard queries through the binding's server-side
	// aggregation (ycsb.Aggregator) instead of streaming raw rows and
	// folding client-side. Bindings without the capability silently fall
	// back to the streamed path, so the flag is safe on any DB.
	Pushdown bool
	// Analytics adds the downsampling and group-by-window templates to the
	// query rotation. They honour Pushdown the same way the dashboard
	// templates do.
	Analytics bool
	// Sequencer allocates per-sensor timestamps. Share one across workload
	// executions (the driver does) so keys never collide between runs; nil
	// gives the instance a private one.
	Sequencer *Sequencer
	// Registry, when non-nil, times each dashboard query template in the
	// histograms "query.max-reading", "query.min-reading",
	// "query.average-reading" and "query.reading-count".
	Registry *telemetry.Registry
}

// Instance is one TPCx-IoT driver instance: a ycsb.Workload that generates
// the substation's sensor readings and interleaved dashboard queries.
type Instance struct {
	cfg         InstanceConfig
	catalog     []sensors.Sensor
	clock       func() time.Time
	queryTimers [queryKinds]*telemetry.Timer
	shedC       *telemetry.Counter // workload.shed_ops
	inserted    atomic.Int64
	queries     atomic.Int64
	aggRows     atomic.Int64
	histRows    atomic.Int64
	shed        atomic.Int64
	analyticQ   atomic.Int64
	analyticW   atomic.Int64
	pushedRows  atomic.Int64
}

// NewInstance validates the configuration and builds the driver instance.
func NewInstance(cfg InstanceConfig) (*Instance, error) {
	if cfg.Substation == "" {
		return nil, fmt.Errorf("workload: Substation is required")
	}
	if err := (kvp.Key{Substation: cfg.Substation, Sensor: "x", Timestamp: 0}).Validate(); err != nil {
		return nil, fmt.Errorf("workload: bad substation key: %w", err)
	}
	if cfg.Readings <= 0 {
		return nil, fmt.Errorf("workload: Readings must be positive, got %d", cfg.Readings)
	}
	if cfg.Threads <= 0 {
		cfg.Threads = DefaultThreads
	}
	clock := cfg.Now
	if clock == nil {
		clock = time.Now
	}
	if cfg.Sequencer == nil {
		cfg.Sequencer = NewSequencer()
	}
	in := &Instance{cfg: cfg, catalog: sensors.Catalogue(), clock: clock}
	for q := QueryKind(0); q < queryKinds; q++ {
		in.queryTimers[q] = cfg.Registry.Timer("query." + q.String())
	}
	in.shedC = cfg.Registry.Counter("workload.shed_ops")
	return in, nil
}

// Stats snapshots the instance's progress counters.
func (in *Instance) Stats() InstanceStats {
	return InstanceStats{
		Inserted:        in.inserted.Load(),
		Queries:         in.queries.Load(),
		RowsAggregated:  in.aggRows.Load(),
		HistoricalRows:  in.histRows.Load(),
		Shed:            in.shed.Load(),
		AnalyticQueries: in.analyticQ.Load(),
		AnalyticWindows: in.analyticW.Load(),
		PushdownRows:    in.pushedRows.Load(),
	}
}

// Substation returns the configured substation key.
func (in *Instance) Substation() string { return in.cfg.Substation }

// Readings returns the configured SR.
func (in *Instance) Readings() int64 { return in.cfg.Readings }

// NewThread implements ycsb.Workload. Thread t of n owns the sensors whose
// catalogue index is congruent to t mod n and generates its share of SR.
func (in *Instance) NewThread(id, of int) ycsb.ThreadWorkload {
	quota := in.cfg.Readings / int64(of)
	if int64(id) < in.cfg.Readings%int64(of) {
		quota++
	}
	var mine []sensors.Sensor
	for i := id; i < len(in.catalog); i += of {
		mine = append(mine, in.catalog[i])
	}
	rng := gen.NewRNG(in.cfg.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15)
	t := &instanceThread{
		inst:    in,
		rng:     rng,
		quota:   quota,
		sensors: mine,
		readers: make([]*sensors.Reader, len(mine)),
		seq:     make([]*atomic.Int64, len(mine)),
	}
	for i, s := range mine {
		t.readers[i] = sensors.NewReader(s, rng.Uint64())
		t.seq[i] = in.cfg.Sequencer.counter(in.cfg.Substation, s.Key)
	}
	return t
}

type instanceThread struct {
	inst    *Instance
	rng     *gen.RNG
	quota   int64
	done    int64
	sensors []sensors.Sensor
	readers []*sensors.Reader
	seq     []*atomic.Int64 // per-sensor timestamp cells (see Sequencer)
	cursor  int             // round-robin sensor index

	sinceQuery int64
	keyBuf     []byte
	valBuf     []byte
	padBuf     []byte
}

// Next implements ycsb.ThreadWorkload: mostly inserts, with one dashboard
// query injected after every ReadingsPerQueryPair readings.
func (t *instanceThread) Next(db ycsb.DB) (ycsb.OpKind, bool, error) {
	if !t.inst.cfg.DisableQueries && t.sinceQuery >= ReadingsPerQueryPair {
		// The query owed for the last full batch of readings fires before
		// the quota check so the final batch is also followed by its query.
		t.sinceQuery = 0
		return ycsb.OpQuery, false, t.runQuery(db)
	}
	if t.done >= t.quota {
		return 0, true, nil
	}
	t.done++
	t.sinceQuery++
	return ycsb.OpInsert, false, t.insert(db)
}

func (t *instanceThread) insert(db ycsb.DB) error {
	if len(t.sensors) == 0 {
		return fmt.Errorf("workload: thread owns no sensors (more threads than sensors)")
	}
	i := t.cursor
	t.cursor = (t.cursor + 1) % len(t.sensors)
	s := t.sensors[i]

	// The sequencer keeps per-sensor keys unique at high generation rates
	// AND across workload executions: a previous run that outran the wall
	// clock leaves its high-water mark behind, so this run continues past it
	// instead of overwriting.
	ts := nextTimestamp(t.seq[i], t.inst.clock().UnixMilli())

	key := kvp.Key{Substation: t.inst.cfg.Substation, Sensor: s.Key, Timestamp: ts}
	reading := t.readers[i].NextString()
	unit := s.Unit()
	padLen, err := kvp.PaddingFor(key, reading, unit)
	if err != nil {
		return err
	}
	if cap(t.padBuf) < padLen {
		t.padBuf = make([]byte, padLen)
	}
	pad := gen.Text(t.rng, t.padBuf[:padLen])

	t.keyBuf = key.Append(t.keyBuf[:0])
	v := kvp.Value{Reading: reading, Unit: unit, Padding: pad}
	t.valBuf = v.Append(t.valBuf[:0])

	if err := db.Insert(t.keyBuf, t.valBuf); err != nil {
		if errors.Is(err, hbase.ErrOverloaded) {
			// The cluster shed the flush even after the client's retries.
			// The batch stays buffered client-side and ships on a later
			// flush, so the reading is deferred, not lost: count the shed
			// and keep generating — graceful degradation, not a run abort.
			t.inst.shed.Add(1)
			t.inst.shedC.Inc()
			t.inst.inserted.Add(1)
			return nil
		}
		return fmt.Errorf("workload: insert: %w", err)
	}
	t.inst.inserted.Add(1)
	return nil
}

func (t *instanceThread) runQuery(db ycsb.DB) error {
	s := t.sensors[t.rng.Intn(len(t.sensors))]
	rotation := int(dashboardKinds)
	if t.inst.cfg.Analytics {
		rotation = int(queryKinds)
	}
	kind := QueryKind(t.rng.Intn(rotation))
	now := t.inst.clock()

	if kind >= dashboardKinds {
		return t.runAnalyticQuery(db, kind, s.Key, now)
	}

	// Random 5 s window inside the previous 1 800 s (excluding the recent
	// window itself).
	span := (HistoryWindow - RecentWindow).Milliseconds()
	offset := t.rng.Int63n(span) + RecentWindow.Milliseconds()
	histStart := now.Add(-time.Duration(offset) * time.Millisecond)

	sp := t.inst.queryTimers[kind].Start()
	var res QueryResult
	var err error
	if t.inst.cfg.Pushdown {
		res, err = RunQueryPushdown(db, kind, t.inst.cfg.Substation, s.Key, now, histStart)
	} else {
		res, err = RunQuery(db, kind, t.inst.cfg.Substation, s.Key, now, histStart)
	}
	sp.End()
	if err != nil {
		return err
	}
	if t.inst.cfg.Pushdown {
		t.inst.pushedRows.Add(int64(res.Recent.Rows + res.Historical.Rows))
	}
	t.inst.queries.Add(1)
	t.inst.aggRows.Add(int64(res.Recent.Rows))
	t.inst.histRows.Add(int64(res.Historical.Rows))
	return nil
}

// runAnalyticQuery executes one analytic template (downsample or
// window-count) over the sensor's trailing span, pushed down when
// configured and the binding supports it.
func (t *instanceThread) runAnalyticQuery(db ycsb.DB, kind QueryKind, sensor string, now time.Time) error {
	span, window := DownsampleSpan, DownsampleWindow
	funcs := ycsb.AggCount | ycsb.AggSum | ycsb.AggAvg
	if kind == QueryWindowCount {
		span, window = WindowCountSpan, WindowCountWindow
		funcs = ycsb.AggCount
	}
	nowMS := now.UnixMilli()
	sp := t.inst.queryTimers[kind].Start()
	windows, folded, err := RunWindowQuery(db, t.inst.cfg.Substation, sensor,
		nowMS-span.Milliseconds(), nowMS, window.Milliseconds(), funcs, t.inst.cfg.Pushdown)
	sp.End()
	if err != nil {
		return err
	}
	t.inst.analyticQ.Add(1)
	t.inst.analyticW.Add(int64(len(windows)))
	if t.inst.cfg.Pushdown {
		t.inst.pushedRows.Add(folded)
	}
	return nil
}
