package workload

import (
	"testing"
	"time"

	"tpcxiot/internal/lsm"
	"tpcxiot/internal/wal"
	"tpcxiot/internal/ycsb"
)

func TestStoreBindingEndToEnd(t *testing.T) {
	s, err := lsm.Open(lsm.Options{Dir: t.TempDir(), WALSync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	clock := newVirtualClock(time.UnixMilli(1_700_000_000_000), time.Millisecond)
	inst, err := NewInstance(InstanceConfig{
		Substation: "substation-00000",
		Readings:   4_000,
		Seed:       9,
		Now:        clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ycsb.Run(ycsb.RunConfig{Threads: 2}, StoreBinding(s), inst)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops[ycsb.OpInsert] != 4_000 {
		t.Fatalf("inserted %d", rep.Ops[ycsb.OpInsert])
	}
	if inst.Stats().Queries == 0 {
		t.Fatal("no queries ran against the embedded store")
	}
	// Everything readable directly from the store.
	count := 0
	if err := s.Scan(nil, nil, func(k, v []byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 4_000 {
		t.Fatalf("store holds %d rows", count)
	}
}

func TestStoreBindingScanLimit(t *testing.T) {
	s, err := lsm.Open(lsm.Options{Dir: t.TempDir(), WALSync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	db, _ := StoreBinding(s)(0)
	for i := 0; i < 50; i++ {
		db.Insert([]byte{byte(i)}, []byte("v"))
	}
	rows, err := db.Scan(nil, nil, 10)
	if err != nil || len(rows) != 10 {
		t.Fatalf("limited scan: %d rows, %v", len(rows), err)
	}
	rows, err = db.Scan([]byte{5}, []byte{15}, 0)
	if err != nil || len(rows) != 10 {
		t.Fatalf("bounded scan: %d rows, %v", len(rows), err)
	}
}
