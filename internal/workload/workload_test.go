package workload

import (
	"strings"
	"testing"
	"time"

	"tpcxiot/internal/kvp"
	"tpcxiot/internal/sensors"
	"tpcxiot/internal/ycsb"
)

// virtualClock advances a fixed amount per call, so tests are deterministic
// and "time" passes fast enough for interval queries to see data.
type virtualClock struct {
	mu   chan struct{}
	now  time.Time
	step time.Duration
}

func newVirtualClock(start time.Time, step time.Duration) *virtualClock {
	c := &virtualClock{mu: make(chan struct{}, 1), now: start, step: step}
	c.mu <- struct{}{}
	return c
}

func (c *virtualClock) Now() time.Time {
	<-c.mu
	c.now = c.now.Add(c.step)
	t := c.now
	c.mu <- struct{}{}
	return t
}

func TestKVPShare(t *testing.T) {
	// Equation 3: every instance gets floor(K/P); the last also takes the
	// remainder.
	cases := []struct {
		k    int64
		p    int
		want []int64
	}{
		{10, 3, []int64{3, 3, 4}},
		{9, 3, []int64{3, 3, 3}},
		{1000000007, 4, []int64{250000001, 250000001, 250000001, 250000004}},
		{5, 1, []int64{5}},
	}
	for _, tc := range cases {
		var total int64
		for i := 1; i <= tc.p; i++ {
			got := KVPShare(tc.k, tc.p, i)
			if got != tc.want[i-1] {
				t.Fatalf("KVPShare(%d,%d,%d) = %d, want %d", tc.k, tc.p, i, got, tc.want[i-1])
			}
			total += got
		}
		if total != tc.k {
			t.Fatalf("shares of K=%d sum to %d", tc.k, total)
		}
	}
	if KVPShare(10, 0, 1) != 0 || KVPShare(10, 3, 0) != 0 || KVPShare(10, 3, 4) != 0 {
		t.Fatal("out-of-range arguments should yield 0")
	}
}

func TestSubstationNames(t *testing.T) {
	names := SubstationNames(3)
	if len(names) != 3 || names[0] != "substation-00000" || names[2] != "substation-00002" {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		if len(n) > kvp.MaxSubstationKeyLen {
			t.Fatalf("name %q too long", n)
		}
	}
}

func TestSplitKeysSeparateSubstations(t *testing.T) {
	names := SubstationNames(4)
	splits := SplitKeys(names)
	if len(splits) != 3 {
		t.Fatalf("%d splits for 4 substations", len(splits))
	}
	// Any key of substation i must sort below the split for substation i+1.
	for i := 0; i < 3; i++ {
		k := kvp.Key{Substation: names[i], Sensor: "zzz", Timestamp: 1 << 40}.Encode()
		if kvp.Compare(k, splits[i]) >= 0 {
			t.Fatalf("substation %d key crosses split %d", i, i)
		}
		k2 := kvp.Key{Substation: names[i+1], Sensor: "aaa", Timestamp: 0}.Encode()
		if kvp.Compare(k2, splits[i]) < 0 {
			t.Fatalf("substation %d key sorts below its region start", i+1)
		}
	}
}

func TestInstanceValidation(t *testing.T) {
	if _, err := NewInstance(InstanceConfig{Readings: 10}); err == nil {
		t.Fatal("missing substation accepted")
	}
	if _, err := NewInstance(InstanceConfig{Substation: "s", Readings: 0}); err == nil {
		t.Fatal("zero readings accepted")
	}
	if _, err := NewInstance(InstanceConfig{Substation: strings.Repeat("x", 65), Readings: 1}); err == nil {
		t.Fatal("oversized substation key accepted")
	}
}

func TestInstanceGeneratesExactReadingCount(t *testing.T) {
	clock := newVirtualClock(time.UnixMilli(1_700_000_000_000), time.Millisecond)
	inst, err := NewInstance(InstanceConfig{
		Substation: "substation-00000",
		Readings:   10_000,
		Seed:       1,
		Now:        clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := ycsb.NewMemDB()
	rep, err := ycsb.Run(ycsb.RunConfig{Threads: 4},
		func(int) (ycsb.DB, error) { return db, nil }, inst)
	if err != nil {
		t.Fatal(err)
	}
	st := inst.Stats()
	if st.Inserted != 10_000 {
		t.Fatalf("inserted %d readings, want exactly 10000", st.Inserted)
	}
	if db.Len() != 10_000 {
		t.Fatalf("db holds %d rows; keys were not unique", db.Len())
	}
	if rep.Ops[ycsb.OpInsert] != 10_000 {
		t.Fatalf("measured %d inserts", rep.Ops[ycsb.OpInsert])
	}
	// 5 queries per 10 000 readings, issued per thread after each 2 000
	// readings; 4 threads of 2 500 readings each yield 4 queries (the
	// trailing partial interval does not trigger one).
	if st.Queries == 0 {
		t.Fatal("no queries executed")
	}
	if rep.Ops[ycsb.OpQuery] != st.Queries {
		t.Fatalf("report queries %d != instance queries %d", rep.Ops[ycsb.OpQuery], st.Queries)
	}
}

func TestQueryToInsertRatio(t *testing.T) {
	clock := newVirtualClock(time.UnixMilli(1_700_000_000_000), time.Millisecond)
	inst, err := NewInstance(InstanceConfig{
		Substation: "substation-00000",
		Readings:   20_000,
		Seed:       2,
		Now:        clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := ycsb.NewMemDB()
	if _, err := ycsb.Run(ycsb.RunConfig{Threads: 1},
		func(int) (ycsb.DB, error) { return db, nil }, inst); err != nil {
		t.Fatal(err)
	}
	st := inst.Stats()
	// One thread, 20 000 readings: a query fires after each 2 000 => 10.
	if st.Queries != 10 {
		t.Fatalf("queries = %d, want 10 (five per 10k readings)", st.Queries)
	}
}

func TestGeneratedPairsAreSpecCompliant(t *testing.T) {
	clock := newVirtualClock(time.UnixMilli(1_700_000_000_000), time.Millisecond)
	inst, err := NewInstance(InstanceConfig{
		Substation:     "substation-00007",
		Readings:       500,
		Seed:           3,
		Now:            clock.Now,
		DisableQueries: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := ycsb.NewMemDB()
	if _, err := ycsb.Run(ycsb.RunConfig{Threads: 2},
		func(int) (ycsb.DB, error) { return db, nil }, inst); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 500 {
		t.Fatalf("stored %d rows", len(rows))
	}
	sensorSeen := map[string]bool{}
	for _, row := range rows {
		if got := len(row.Key) + len(row.Value); got != kvp.PairSize {
			t.Fatalf("pair is %d bytes, want %d", got, kvp.PairSize)
		}
		k, err := kvp.DecodeKey(row.Key)
		if err != nil {
			t.Fatal(err)
		}
		if k.Substation != "substation-00007" {
			t.Fatalf("wrong substation %q", k.Substation)
		}
		v, err := kvp.DecodeValue(row.Value)
		if err != nil {
			t.Fatal(err)
		}
		if err := (kvp.Pair{Key: k, Value: v}).Validate(); err != nil {
			t.Fatalf("pair fails spec validation: %v", err)
		}
		sensorSeen[k.Sensor] = true
	}
	// 500 readings round-robin over 200 sensors must touch every sensor.
	if len(sensorSeen) != sensors.PerSubstation {
		t.Fatalf("readings covered %d sensors, want %d", len(sensorSeen), sensors.PerSubstation)
	}
}

func TestQueriesAggregateRecentData(t *testing.T) {
	// Step the clock ~1ms per operation so 2 000 inserts span ~2 s and the
	// 5 s recent window always covers a healthy population.
	clock := newVirtualClock(time.UnixMilli(1_700_000_000_000), time.Millisecond)
	inst, err := NewInstance(InstanceConfig{
		Substation: "substation-00000",
		Readings:   8_000,
		Seed:       4,
		Now:        clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := ycsb.NewMemDB()
	if _, err := ycsb.Run(ycsb.RunConfig{Threads: 1},
		func(int) (ycsb.DB, error) { return db, nil }, inst); err != nil {
		t.Fatal(err)
	}
	st := inst.Stats()
	if st.Queries != 4 {
		t.Fatalf("queries = %d", st.Queries)
	}
	if st.RowsAggregated == 0 {
		t.Fatal("queries aggregated zero recent rows despite dense ingest")
	}
	if st.AvgRowsPerQuery() <= 0 {
		t.Fatal("AvgRowsPerQuery not positive")
	}
}

func TestRunQueryTemplates(t *testing.T) {
	db := ycsb.NewMemDB()
	sub, sensor := "ps", "pmu-freq-000"
	base := time.UnixMilli(1_700_000_000_000)
	unit := "hertz"
	put := func(tsOffsetMS int64, reading string) {
		k := kvp.Key{Substation: sub, Sensor: sensor, Timestamp: base.UnixMilli() + tsOffsetMS}
		padLen, err := kvp.PaddingFor(k, reading, unit)
		if err != nil {
			t.Fatal(err)
		}
		v := kvp.Value{Reading: reading, Unit: unit, Padding: make([]byte, padLen)}
		for i := range v.Padding {
			v.Padding[i] = 'p'
		}
		if err := db.Insert(k.Encode(), v.Encode()); err != nil {
			t.Fatal(err)
		}
	}
	// Historical interval [base, base+5s): readings 10, 20.
	put(0, "10.00")
	put(1000, "20.00")
	// Recent interval [now-5s, now) with now = base+100s: 30, 40, 50.
	now := base.Add(100 * time.Second)
	put(96_000, "30.00")
	put(97_000, "40.00")
	put(98_000, "50.00")

	res, err := RunQuery(db, QueryMax, sub, sensor, now, base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recent.Rows != 3 || res.Historical.Rows != 2 {
		t.Fatalf("row counts: recent %d, hist %d", res.Recent.Rows, res.Historical.Rows)
	}
	if res.Recent.Max != 50 || res.Historical.Max != 20 {
		t.Fatalf("max: %v vs %v", res.Recent.Max, res.Historical.Max)
	}
	if res.Value() != 30 {
		t.Fatalf("max comparison = %v, want 30", res.Value())
	}

	res, _ = RunQuery(db, QueryMin, sub, sensor, now, base)
	if res.Recent.Min != 30 || res.Historical.Min != 10 || res.Value() != 20 {
		t.Fatalf("min template: %+v", res)
	}
	res, _ = RunQuery(db, QueryAvg, sub, sensor, now, base)
	if res.Recent.Avg != 40 || res.Historical.Avg != 15 || res.Value() != 25 {
		t.Fatalf("avg template: %+v", res)
	}
	res, _ = RunQuery(db, QueryCount, sub, sensor, now, base)
	if res.Value() != 1 {
		t.Fatalf("count template: %v", res.Value())
	}
}

func TestRunQueryEmptyIntervals(t *testing.T) {
	db := ycsb.NewMemDB()
	res, err := RunQuery(db, QueryAvg, "ps", "s", time.UnixMilli(10_000_000), time.UnixMilli(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Recent.Rows != 0 || res.Historical.Rows != 0 || res.Value() != 0 {
		t.Fatalf("empty-interval query: %+v", res)
	}
}

func TestQueryKindString(t *testing.T) {
	for q, want := range map[QueryKind]string{
		QueryMax: "max-reading", QueryMin: "min-reading",
		QueryAvg: "average-reading", QueryCount: "reading-count",
	} {
		if q.String() != want {
			t.Fatalf("%d.String() = %q", q, q.String())
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []ycsb.KV {
		clock := newVirtualClock(time.UnixMilli(1_700_000_000_000), time.Millisecond)
		inst, err := NewInstance(InstanceConfig{
			Substation:     "substation-00000",
			Readings:       300,
			Seed:           42,
			Now:            clock.Now,
			DisableQueries: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		db := ycsb.NewMemDB()
		if _, err := ycsb.Run(ycsb.RunConfig{Threads: 1},
			func(int) (ycsb.DB, error) { return db, nil }, inst); err != nil {
			t.Fatal(err)
		}
		rows, _ := db.Scan(nil, nil, 0)
		return rows
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if string(a[i].Key) != string(b[i].Key) || string(a[i].Value) != string(b[i].Value) {
			t.Fatalf("row %d differs between identical seeded runs", i)
		}
	}
}
