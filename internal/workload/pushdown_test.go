package workload

import (
	"bytes"
	"math"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"tpcxiot/internal/kvp"
	"tpcxiot/internal/lsm"
	"tpcxiot/internal/wal"
	"tpcxiot/internal/ycsb"
)

// newAggStoreDB opens an embedded LSM store binding (which implements
// ycsb.Aggregator) seeded with random kvp rows for one sensor.
func newAggStoreDB(t *testing.T, sub, sensor string, base time.Time, n int, spanMS int64) ycsb.DB {
	t.Helper()
	s, err := lsm.Open(lsm.Options{Dir: t.TempDir(), WALSync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	db, err := StoreBinding(s)(0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		ts := base.UnixMilli() + rng.Int63n(spanMS)
		reading := strconv.FormatFloat(math.Round(rng.Float64()*1e4)/100, 'f', 2, 64)
		k := kvp.Key{Substation: sub, Sensor: sensor, Timestamp: ts}
		pad, err := kvp.PaddingFor(k, reading, "volt")
		if err != nil {
			t.Fatal(err)
		}
		v := kvp.Value{Reading: reading, Unit: "volt", Padding: bytes.Repeat([]byte("p"), pad)}
		if err := db.Insert(k.Encode(), v.Encode()); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestRunQueryPushdownMatchesStreamed: for every dashboard template, the
// pushed-down query must agree with the streamed RunQuery on the fields the
// template reads — row counts, the template's statistic, and Value().
func TestRunQueryPushdownMatchesStreamed(t *testing.T) {
	sub, sensor := "ps", "pmu-freq-000"
	base := time.UnixMilli(1_700_000_000_000)
	db := newAggStoreDB(t, sub, sensor, base, 500, 100_000)
	if _, ok := db.(ycsb.Aggregator); !ok {
		t.Fatal("store binding must implement ycsb.Aggregator")
	}
	now := base.Add(100 * time.Second)
	histStart := base.Add(20 * time.Second)

	for kind := QueryKind(0); kind < dashboardKinds; kind++ {
		streamed, err := RunQuery(db, kind, sub, sensor, now, histStart)
		if err != nil {
			t.Fatal(err)
		}
		pushed, err := RunQueryPushdown(db, kind, sub, sensor, now, histStart)
		if err != nil {
			t.Fatal(err)
		}
		if pushed.Recent.Rows != streamed.Recent.Rows ||
			pushed.Historical.Rows != streamed.Historical.Rows {
			t.Fatalf("%v rows: pushed %d/%d, streamed %d/%d", kind,
				pushed.Recent.Rows, pushed.Historical.Rows,
				streamed.Recent.Rows, streamed.Historical.Rows)
		}
		if streamed.Recent.Rows == 0 {
			t.Fatalf("%v: recent interval empty; test data broken", kind)
		}
		check := func(name string, got, want float64) {
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("%v %s: pushed %g, streamed %g", kind, name, got, want)
			}
		}
		switch kind {
		case QueryMax:
			check("recent max", pushed.Recent.Max, streamed.Recent.Max)
			check("hist max", pushed.Historical.Max, streamed.Historical.Max)
		case QueryMin:
			check("recent min", pushed.Recent.Min, streamed.Recent.Min)
			check("hist min", pushed.Historical.Min, streamed.Historical.Min)
		case QueryAvg:
			check("recent avg", pushed.Recent.Avg, streamed.Recent.Avg)
			check("hist avg", pushed.Historical.Avg, streamed.Historical.Avg)
		}
		check("value", pushed.Value(), streamed.Value())
	}
}

// TestRunQueryPushdownFallsBack: a binding without the Aggregator capability
// must be served by the streamed path transparently.
func TestRunQueryPushdownFallsBack(t *testing.T) {
	var db ycsb.DB = ycsb.NewMemDB()
	if _, ok := db.(ycsb.Aggregator); ok {
		t.Fatal("memdb unexpectedly implements Aggregator; pick another fallback DB")
	}
	sub, sensor := "ps", "s0"
	base := time.UnixMilli(1_700_000_000_000)
	k := kvp.Key{Substation: sub, Sensor: sensor, Timestamp: base.UnixMilli() - 1000}
	pad, _ := kvp.PaddingFor(k, "5.00", "volt")
	v := kvp.Value{Reading: "5.00", Unit: "volt", Padding: bytes.Repeat([]byte("p"), pad)}
	if err := db.Insert(k.Encode(), v.Encode()); err != nil {
		t.Fatal(err)
	}
	res, err := RunQueryPushdown(db, QueryAvg, sub, sensor, base, base.Add(-time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if res.Recent.Rows != 1 || res.Recent.Avg != 5 {
		t.Fatalf("fallback result = %+v, want 1 row avg 5", res.Recent)
	}
}

// TestRunWindowQueryParity: the pushed-down multi-window path and the
// streamed client-side fold must produce identical windows — same series,
// starts, counts, extrema and sums — and the same rowsFolded.
func TestRunWindowQueryParity(t *testing.T) {
	sub, sensor := "ps", "pmu-freq-000"
	base := time.UnixMilli(1_700_000_000_000)
	db := newAggStoreDB(t, sub, sensor, base, 300, 60_000)

	minTS := base.UnixMilli()
	maxTS := minTS + 60_000
	for _, windowMS := range []int64{0, 1000, 7000} {
		funcs := ycsb.AggCount | ycsb.AggMin | ycsb.AggMax | ycsb.AggSum | ycsb.AggAvg
		pushed, pFolded, err := RunWindowQuery(db, sub, sensor, minTS, maxTS, windowMS, funcs, true)
		if err != nil {
			t.Fatal(err)
		}
		streamed, sFolded, err := RunWindowQuery(db, sub, sensor, minTS, maxTS, windowMS, funcs, false)
		if err != nil {
			t.Fatal(err)
		}
		if pFolded != sFolded || len(pushed) != len(streamed) {
			t.Fatalf("window %dms: pushed %d rows / %d windows, streamed %d / %d",
				windowMS, pFolded, len(pushed), sFolded, len(streamed))
		}
		if pFolded == 0 {
			t.Fatalf("window %dms folded no rows", windowMS)
		}
		for i := range streamed {
			p, s := pushed[i], streamed[i]
			if !bytes.Equal(p.Series, s.Series) || p.WindowStart != s.WindowStart ||
				p.Count != s.Count || p.Min != s.Min || p.Max != s.Max ||
				math.Abs(p.Sum-s.Sum) > 1e-6 || math.Abs(p.Avg()-s.Avg()) > 1e-9 {
				t.Fatalf("window %dms #%d:\n pushed   %+v\n streamed %+v", windowMS, i, p, s)
			}
		}
	}

	// Count-only masks the value fields in both paths equally.
	pushed, _, err := RunWindowQuery(db, sub, sensor, minTS, maxTS, 5000, ycsb.AggCount, true)
	if err != nil {
		t.Fatal(err)
	}
	streamed, _, err := RunWindowQuery(db, sub, sensor, minTS, maxTS, 5000, ycsb.AggCount, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range streamed {
		if pushed[i].Count != streamed[i].Count {
			t.Fatalf("count-only window %d: pushed %d, streamed %d",
				i, pushed[i].Count, streamed[i].Count)
		}
	}
}

// TestSequencerUniqueAcrossExecutions is the timestamp-collision regression:
// two workload executions (fresh Instances) sharing one Sequencer against
// the same store must never overwrite each other's keys, even under a clock
// that barely advances — the condition that used to alias keys because each
// execution restarted from the wall clock.
func TestSequencerUniqueAcrossExecutions(t *testing.T) {
	s, err := lsm.Open(lsm.Options{Dir: t.TempDir(), WALSync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const perRun = 3000
	seq := NewSequencer()
	// A near-frozen clock: advances far slower than the ingest rate, so
	// within a run threads outrun it and across runs the wall clock has not
	// caught up with the bumped timestamps — the old collision trigger.
	clock := newVirtualClock(time.UnixMilli(1_700_000_000_000), time.Microsecond/10)
	for run := 0; run < 2; run++ {
		inst, err := NewInstance(InstanceConfig{
			Substation:     "substation-00000",
			Readings:       perRun,
			Seed:           uint64(run + 1),
			Now:            clock.Now,
			Sequencer:      seq,
			DisableQueries: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ycsb.Run(ycsb.RunConfig{Threads: 4}, StoreBinding(s), inst); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	if err := s.Scan(nil, nil, func(k, v []byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 2*perRun {
		t.Fatalf("store holds %d rows after two %d-row executions: %d keys collided",
			count, perRun, 2*perRun-count)
	}
}

// TestNextTimestampMonotonic pins the sequencing rule itself:
// next = max(wall, last+1), per (substation, sensor).
func TestNextTimestampMonotonic(t *testing.T) {
	seq := NewSequencer()
	c := seq.counter("ps", "s0")
	last := int64(0)
	for i := 0; i < 1000; i++ {
		wall := int64(500) // frozen wall clock
		ts := nextTimestamp(c, wall)
		if ts <= last {
			t.Fatalf("timestamp %d not monotonic after %d", ts, last)
		}
		last = ts
	}
	// A wall clock ahead of the counter wins.
	if ts := nextTimestamp(c, 1_000_000); ts != 1_000_000 {
		t.Fatalf("wall-clock jump: got %d, want 1000000", ts)
	}
	// Same sensor key resolves to the same cell.
	if seq.counter("ps", "s0") != c {
		t.Fatal("counter not shared for the same (substation, sensor)")
	}
	if seq.counter("ps", "s1") == c {
		t.Fatal("distinct sensors share a cell")
	}
}

// TestAnalyticTemplatesRun exercises the downsample and window-count
// templates through a full instance run with Analytics (and Pushdown) on:
// analytic counters tick, and the dashboard validity statistics stay
// untouched by analytic work.
func TestAnalyticTemplatesRun(t *testing.T) {
	s, err := lsm.Open(lsm.Options{Dir: t.TempDir(), WALSync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	clock := newVirtualClock(time.UnixMilli(1_700_000_000_000), time.Millisecond)
	inst, err := NewInstance(InstanceConfig{
		Substation: "substation-00000",
		Readings:   20_000,
		Seed:       3,
		Now:        clock.Now,
		Analytics:  true,
		Pushdown:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ycsb.Run(ycsb.RunConfig{Threads: 2}, StoreBinding(s), inst); err != nil {
		t.Fatal(err)
	}
	st := inst.Stats()
	if st.AnalyticQueries == 0 {
		t.Fatal("no analytic queries ran with Analytics enabled")
	}
	if st.AnalyticWindows == 0 {
		t.Fatal("analytic queries returned no windows")
	}
	if st.Queries == 0 {
		t.Fatal("dashboard queries stopped running alongside analytics")
	}
	if st.PushdownRows == 0 {
		t.Fatal("pushdown ran no server-side folds")
	}
	// The Figure 12 validity metric must count only dashboard intervals.
	if st.AvgRowsPerQuery() == 0 {
		t.Fatal("AvgRowsPerQuery is zero; analytic work may have perturbed it")
	}
}

// TestAnalyticsOffKeepsDashboardRotation: without Analytics the rotation
// must stay the four dashboard templates only.
func TestAnalyticsOffKeepsDashboardRotation(t *testing.T) {
	s, err := lsm.Open(lsm.Options{Dir: t.TempDir(), WALSync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	clock := newVirtualClock(time.UnixMilli(1_700_000_000_000), time.Millisecond)
	inst, err := NewInstance(InstanceConfig{
		Substation: "substation-00000",
		Readings:   8_000,
		Seed:       4,
		Now:        clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ycsb.Run(ycsb.RunConfig{Threads: 2}, StoreBinding(s), inst); err != nil {
		t.Fatal(err)
	}
	st := inst.Stats()
	if st.AnalyticQueries != 0 {
		t.Fatalf("analytic queries ran with Analytics off: %d", st.AnalyticQueries)
	}
	if st.PushdownRows != 0 {
		t.Fatalf("PushdownRows = %d with Pushdown off", st.PushdownRows)
	}
	if st.Queries == 0 {
		t.Fatal("no dashboard queries ran")
	}
}
