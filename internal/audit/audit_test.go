package audit

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestChecklistPassedAndFailed(t *testing.T) {
	cl := Checklist{
		{Name: "a", Passed: true},
		{Name: "b", Passed: true},
	}
	if !cl.Passed() {
		t.Fatal("all-pass checklist reported failure")
	}
	cl = append(cl, Check{Name: "c", Passed: false, Detail: "boom"})
	if cl.Passed() {
		t.Fatal("failing checklist reported success")
	}
	failed := cl.Failed()
	if len(failed) != 1 || failed[0].Name != "c" {
		t.Fatalf("Failed() = %v", failed)
	}
	s := cl.String()
	if !strings.Contains(s, "PASS") || !strings.Contains(s, "FAIL") || !strings.Contains(s, "boom") {
		t.Fatalf("report rendering: %q", s)
	}
}

func TestFileCheck(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "driver.jar")
	b := filepath.Join(dir, "run.sh")
	os.WriteFile(a, []byte("kit contents A"), 0o644)
	os.WriteFile(b, []byte("kit contents B"), 0o644)

	m, err := BuildManifest([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if c := FileCheck(m); !c.Passed {
		t.Fatalf("pristine kit failed: %s", c.Detail)
	}

	// Alter a file: the check must fail and name the file.
	os.WriteFile(b, []byte("tampered"), 0o644)
	c := FileCheck(m)
	if c.Passed {
		t.Fatal("tampered kit passed the file check")
	}
	if !strings.Contains(c.Detail, "run.sh") {
		t.Fatalf("detail does not name the altered file: %s", c.Detail)
	}

	// Remove a file: also a failure.
	os.Remove(a)
	if c := FileCheck(m); c.Passed {
		t.Fatal("missing kit file passed the file check")
	}
}

func TestBuildManifestMissingFile(t *testing.T) {
	if _, err := BuildManifest([]string{filepath.Join(t.TempDir(), "absent")}); err == nil {
		t.Fatal("manifest over missing file succeeded")
	}
}

func TestReplicationCheck(t *testing.T) {
	if c := ReplicationCheck(3); !c.Passed {
		t.Fatalf("factor 3 failed: %s", c.Detail)
	}
	if c := ReplicationCheck(4); !c.Passed {
		t.Fatal("factor 4 failed")
	}
	if c := ReplicationCheck(2); c.Passed {
		t.Fatal("factor 2 passed")
	}
}

func TestDurationCheck(t *testing.T) {
	if c := DurationCheck("measured-duration", 1801*time.Second, MinWorkloadSeconds); !c.Passed {
		t.Fatalf("1801s failed: %s", c.Detail)
	}
	if c := DurationCheck("measured-duration", 1799*time.Second, MinWorkloadSeconds); c.Passed {
		t.Fatal("1799s passed")
	}
	// Scaled-down bound for laptop experiments.
	if c := DurationCheck("measured-duration", 3*time.Second, 2); !c.Passed {
		t.Fatal("scaled bound not honoured")
	}
}

func TestPerSensorRateCheck(t *testing.T) {
	// Paper Table I: 29.1/sensor at 32 substations passes; 19.0 at 48 fails.
	if c := PerSensorRateCheck(29.1, MinPerSensorRate); !c.Passed {
		t.Fatalf("29.1 failed: %s", c.Detail)
	}
	if c := PerSensorRateCheck(19.0, MinPerSensorRate); c.Passed {
		t.Fatal("19.0 passed the 20 kvps/s floor")
	}
	if c := PerSensorRateCheck(20.0, MinPerSensorRate); !c.Passed {
		t.Fatal("exact threshold should pass")
	}
}

func TestQueryAggregateCheck(t *testing.T) {
	if c := QueryAggregateCheck(250, MinRowsPerQuery); !c.Passed {
		t.Fatal("250 rows/query failed")
	}
	if c := QueryAggregateCheck(150, MinRowsPerQuery); c.Passed {
		t.Fatal("150 rows/query passed the 200 floor")
	}
}

func TestDataCheck(t *testing.T) {
	if c := DataCheck(1_000_000, 1_000_000); !c.Passed {
		t.Fatal("exact ingestion failed")
	}
	if c := DataCheck(999_999, 1_000_000); c.Passed {
		t.Fatal("shortfall passed the data check")
	}
	if c := DataCheck(1_000_001, 1_000_000); c.Passed {
		t.Fatal("overrun passed the data check")
	}
}

func TestRepeatabilityCheck(t *testing.T) {
	if c := RepeatabilityCheck(100_000, 103_000, 0.10); !c.Passed {
		t.Fatalf("3%% difference failed: %s", c.Detail)
	}
	if c := RepeatabilityCheck(100_000, 80_000, 0.10); c.Passed {
		t.Fatal("20% difference passed a 10% tolerance")
	}
	if c := RepeatabilityCheck(0, 100, 0.10); c.Passed {
		t.Fatal("zero throughput passed")
	}
	// Symmetry.
	a := RepeatabilityCheck(90, 100, 0.15)
	b := RepeatabilityCheck(100, 90, 0.15)
	if a.Passed != b.Passed {
		t.Fatal("repeatability check is order-dependent")
	}
}

func TestAuditRecordValidate(t *testing.T) {
	good := Record{Method: IndependentAudit, Auditors: []string{"auditor-1"}, Date: time.Now()}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Record{Method: IndependentAudit}).Validate(); err == nil {
		t.Fatal("independent audit without auditor accepted")
	}
	peer := Record{Method: PeerAudit, Auditors: []string{"a", "b", "c"}}
	if err := peer.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Record{Method: PeerAudit, Auditors: []string{"a", "b"}}).Validate(); err == nil {
		t.Fatal("two-member peer committee accepted")
	}
	if err := (Record{Method: Method(9)}).Validate(); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestMethodString(t *testing.T) {
	if IndependentAudit.String() != "independent audit" || PeerAudit.String() != "peer audit" {
		t.Fatal("method names wrong")
	}
}
