// auditor.go implements the live run-validity auditor: where audit.go holds
// the specification's static checklist items, the Auditor consumes what a
// run actually produced — the per-interval telemetry series plus run
// metadata — and evaluates named validity rules into a structured verdict.
//
// The motivating rule is sustained performance: TPCx-IoT's IoTps is only
// reportable from a run whose throughput held steady, and a run-average
// number happily hides a mid-run collapse. The auditor therefore checks
// every complete telemetry interval against a tolerance band around the run
// mean, and joins each violating interval to the co-occurring signals the
// telemetry layer already collects (shed streaks, compaction debt, GC
// pauses, replication catch-up lag) so the report can say not just *that*
// an interval failed but *what else was happening* when it did.
package audit

import (
	"fmt"
	"strings"
	"time"

	"tpcxiot/internal/benchfmt"
	"tpcxiot/internal/telemetry"
)

// Rule names. Every verdict entry carries one of these, so consumers (the
// report's audit table, the CI gate, the /audit endpoint) match on names
// rather than positions.
const (
	// RuleSustainedThroughput: each complete telemetry interval's operation
	// rate must stay within the tolerance band around the run mean.
	RuleSustainedThroughput = "sustained-throughput"
	// RuleMinDuration: the measured run must last at least the configured
	// floor (the specification's 1 800 s for a publishable run).
	RuleMinDuration = "min-duration"
	// RuleWarmupExclusion: an untimed warmup execution must precede the
	// measured run, so the measurement starts from a warmed system.
	RuleWarmupExclusion = "warmup-exclusion"
	// RuleDataCheck: the measured run must ingest exactly the requested
	// kvps — TPCx-IoT is a fixed-workload benchmark.
	RuleDataCheck = "data-check"
	// RuleShedBudget: the fraction of operations deferred by load shedding
	// (after the client exhausted its retries) must stay under budget.
	RuleShedBudget = "shed-budget"
)

// Config parametrises the Auditor. The zero value selects the defaults.
type Config struct {
	// Tolerance is the sustained-performance band: a complete interval's
	// rate must satisfy |rate - mean| <= Tolerance * mean. Defaults to
	// 0.20; the band boundary itself passes.
	Tolerance float64
	// MinSeconds is the measured-duration floor. Defaults to
	// MinWorkloadSeconds; scaled-down experiments pass their disclosed
	// floor, exactly as DurationCheck does.
	MinSeconds float64
	// ShedBudget is the allowed shed-operation fraction. Defaults to 0.05;
	// the budget boundary itself passes.
	ShedBudget float64
}

func (c Config) withDefaults() Config {
	if c.Tolerance == 0 {
		c.Tolerance = 0.20
	}
	if c.MinSeconds == 0 {
		c.MinSeconds = MinWorkloadSeconds
	}
	if c.ShedBudget == 0 {
		c.ShedBudget = 0.05
	}
	return c
}

// RunInfo is the evidence one measured run leaves behind: the metadata the
// run-level rules need plus the interval series the sustained-performance
// rule walks.
type RunInfo struct {
	// WarmupSeconds is the untimed warmup execution's elapsed time; 0 when
	// no warmup ran.
	WarmupSeconds float64
	// MeasuredSeconds is the measured run's elapsed time.
	MeasuredSeconds float64
	// KVPs is what the measured run ingested; ExpectedKVPs what it was
	// asked to.
	KVPs, ExpectedKVPs int64
	// TotalOps counts every operation the measured run completed; ShedOps
	// the ones deferred by load shedding after retry exhaustion.
	TotalOps, ShedOps int64
	// TargetRate is the paced intended rate in ops/s; 0 for an open-loop
	// run (recorded in the verdict so the artifact says how load was
	// offered).
	TargetRate float64
	// Series is the measured run's telemetry time series; nil when
	// telemetry was off, which skips the sustained-performance rule.
	Series *telemetry.Series
}

// IntervalViolation pins one rule violation to one telemetry interval:
// which interval, what was observed, what band it broke, and the signals
// that co-occurred in the same interval.
type IntervalViolation struct {
	// Interval is the point's index within the measured run's series.
	Interval int `json:"interval"`
	// ElapsedSeconds is the interval's end relative to the run start.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// Observed is the interval's measured value (ops/s for the sustained
	// rule).
	Observed float64 `json:"observed"`
	// Lo and Hi bound the allowed band the observation fell outside of.
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// Signals names the co-occurring telemetry signals (shed counts,
	// compaction debt, GC pauses, catch-up lag) active in this interval.
	Signals []string `json:"signals,omitempty"`
}

// RuleResult is one named rule's outcome: the structured form of "rule,
// interval, observed, bound" the report and CI gate consume.
type RuleResult struct {
	Rule   string `json:"rule"`
	Passed bool   `json:"passed"`
	// Observed and Bound are the rule's headline numbers (run-level value
	// against its limit; for the sustained rule the mean rate against the
	// tolerance fraction).
	Observed float64 `json:"observed"`
	Bound    float64 `json:"bound"`
	// Detail is the human-readable one-liner.
	Detail string `json:"detail,omitempty"`
	// Violations pins interval-scoped failures; empty for run-level rules.
	Violations []IntervalViolation `json:"violations,omitempty"`
}

// Verdict is the auditor's structured output for one measured run.
type Verdict struct {
	// Valid reports whether every evaluated rule passed.
	Valid bool `json:"valid"`
	// Interrupted marks a partial verdict flushed on SIGINT: only the
	// interval-scoped rules were evaluated against the in-flight series.
	Interrupted bool `json:"interrupted,omitempty"`
	// TargetRate echoes the paced rate (0 = open loop).
	TargetRate float64 `json:"target_rate_ops_per_s,omitempty"`
	// MeanRate is the mean ops/s over the complete intervals.
	MeanRate float64 `json:"mean_interval_ops_per_s,omitempty"`
	// Intervals counts the complete intervals evaluated.
	Intervals int `json:"complete_intervals"`
	// Rules holds every evaluated rule, in evaluation order.
	Rules []RuleResult `json:"rules"`
}

// Failed returns the rules that did not pass.
func (v Verdict) Failed() []RuleResult {
	var out []RuleResult
	for _, r := range v.Rules {
		if !r.Passed {
			out = append(out, r)
		}
	}
	return out
}

// Rule returns the named rule's result and whether it was evaluated.
func (v Verdict) Rule(name string) (RuleResult, bool) {
	for _, r := range v.Rules {
		if r.Rule == name {
			return r, true
		}
	}
	return RuleResult{}, false
}

// Violations flattens every interval violation across rules.
func (v Verdict) Violations() []IntervalViolation {
	var out []IntervalViolation
	for _, r := range v.Rules {
		out = append(out, r.Violations...)
	}
	return out
}

// Check bridges the verdict into the run's audit checklist, so Result.Valid
// (and the CLI's exit code, and through it the CI gate) fold the live audit
// in with the specification's static checks.
func (v Verdict) Check() Check {
	detail := fmt.Sprintf("%d rules evaluated over %d complete intervals", len(v.Rules), v.Intervals)
	if failed := v.Failed(); len(failed) > 0 {
		names := make([]string, len(failed))
		for i, r := range failed {
			names[i] = r.Rule
		}
		detail = fmt.Sprintf("violated: %s (%d interval violations)",
			strings.Join(names, ", "), len(v.Violations()))
	}
	return Check{Name: "run-validity-audit", Passed: v.Valid, Detail: detail}
}

// Benchfmt renders the verdict in the repository's canonical benchmark
// result schema (results/BENCH_*.json): one result per rule with passed /
// observed / bound / violation-count metrics, so the CI artifact diffing
// and tooling that already understand benchfmt read audit verdicts too.
func (v Verdict) Benchfmt() *benchfmt.File {
	f := &benchfmt.File{
		Benchmark:   "RunValidityAudit",
		Description: "live run-validity audit verdict (per-rule pass, observed value, bound, interval violations)",
		Summary: map[string]any{
			"valid":              v.Valid,
			"interrupted":        v.Interrupted,
			"complete_intervals": v.Intervals,
		},
	}
	if v.TargetRate > 0 {
		f.Summary["target_rate_ops_per_s"] = v.TargetRate
	}
	for _, r := range v.Rules {
		passed := 0.0
		if r.Passed {
			passed = 1
		}
		f.Results = append(f.Results, benchfmt.Result{
			Variant: map[string]string{"rule": r.Rule},
			Metrics: map[string]float64{
				"passed":     passed,
				"observed":   r.Observed,
				"bound":      r.Bound,
				"violations": float64(len(r.Violations)),
			},
		})
	}
	return f
}

// Auditor evaluates validity rules over a run's evidence.
type Auditor struct {
	cfg Config
}

// NewAuditor builds an auditor with cfg's thresholds (zero values select
// the defaults).
func NewAuditor(cfg Config) *Auditor {
	return &Auditor{cfg: cfg.withDefaults()}
}

// Evaluate runs every rule against one measured run and returns the
// structured verdict.
func (a *Auditor) Evaluate(run RunInfo) Verdict {
	v := Verdict{TargetRate: run.TargetRate}
	v.Rules = append(v.Rules, a.sustainedThroughput(run.Series, &v))
	v.Rules = append(v.Rules, RuleResult{
		Rule:     RuleMinDuration,
		Passed:   run.MeasuredSeconds >= a.cfg.MinSeconds,
		Observed: run.MeasuredSeconds,
		Bound:    a.cfg.MinSeconds,
		Detail: fmt.Sprintf("measured run %.1fs (require >= %.0fs)",
			run.MeasuredSeconds, a.cfg.MinSeconds),
	})
	v.Rules = append(v.Rules, RuleResult{
		Rule:     RuleWarmupExclusion,
		Passed:   run.WarmupSeconds > 0,
		Observed: run.WarmupSeconds,
		Bound:    0,
		Detail: fmt.Sprintf("untimed warmup ran %.1fs before the measured window",
			run.WarmupSeconds),
	})
	v.Rules = append(v.Rules, RuleResult{
		Rule:     RuleDataCheck,
		Passed:   run.KVPs == run.ExpectedKVPs,
		Observed: float64(run.KVPs),
		Bound:    float64(run.ExpectedKVPs),
		Detail:   fmt.Sprintf("ingested %d of %d kvps", run.KVPs, run.ExpectedKVPs),
	})
	shedFrac := 0.0
	if run.TotalOps > 0 {
		shedFrac = float64(run.ShedOps) / float64(run.TotalOps)
	}
	v.Rules = append(v.Rules, RuleResult{
		Rule:     RuleShedBudget,
		Passed:   shedFrac <= a.cfg.ShedBudget,
		Observed: shedFrac,
		Bound:    a.cfg.ShedBudget,
		Detail: fmt.Sprintf("%.2f%% of ops deferred by shedding (budget %.0f%%)",
			shedFrac*100, a.cfg.ShedBudget*100),
	})
	v.Valid = allPassed(v.Rules)
	return v
}

// EvaluatePartial evaluates only the interval-scoped rules against an
// in-flight series snapshot — the SIGINT path, where the run-level metadata
// (final kvp counts, measured duration) does not exist yet. The verdict is
// marked Interrupted and is never Valid: an interrupted run has no
// reportable result, but its interval evidence is still auditable.
func (a *Auditor) EvaluatePartial(series *telemetry.Series, targetRate float64) Verdict {
	v := Verdict{Interrupted: true, TargetRate: targetRate}
	v.Rules = append(v.Rules, a.sustainedThroughput(series, &v))
	return v
}

// sustainedThroughput walks the complete intervals and flags every one
// whose rate leaves the tolerance band around the mean, attaching the
// interval's co-occurring signals to each violation. The trailing partial
// interval is excluded (Series.Complete), so a short tail never reads as a
// collapse. With fewer than two complete intervals there is no deviation to
// measure and the rule passes vacuously, with the detail saying so.
func (a *Auditor) sustainedThroughput(series *telemetry.Series, v *Verdict) RuleResult {
	res := RuleResult{Rule: RuleSustainedThroughput, Bound: a.cfg.Tolerance}
	if series == nil {
		res.Passed = true
		res.Detail = "telemetry disabled; no interval series to evaluate"
		return res
	}
	complete := series.Complete()
	v.Intervals = len(complete)

	type rated struct {
		idx  int
		rate float64
	}
	var rates []rated
	var sum float64
	for i, p := range series.Points {
		secs := p.Interval.Seconds()
		if secs <= 0 || !isComplete(p, series.Interval) {
			continue
		}
		r := float64(p.TotalOps()) / secs
		rates = append(rates, rated{idx: i, rate: r})
		sum += r
	}
	if len(rates) < 2 {
		res.Passed = true
		res.Detail = fmt.Sprintf("%d complete interval(s); need >= 2 to measure deviation", len(rates))
		return res
	}
	mean := sum / float64(len(rates))
	v.MeanRate = mean
	res.Observed = mean
	lo := mean * (1 - a.cfg.Tolerance)
	hi := mean * (1 + a.cfg.Tolerance)
	for _, r := range rates {
		if r.rate >= lo && r.rate <= hi {
			continue
		}
		p := series.Points[r.idx]
		res.Violations = append(res.Violations, IntervalViolation{
			Interval:       r.idx,
			ElapsedSeconds: p.Elapsed.Seconds(),
			Observed:       r.rate,
			Lo:             lo,
			Hi:             hi,
			Signals:        IntervalSignals(p),
		})
	}
	res.Passed = len(res.Violations) == 0
	res.Detail = fmt.Sprintf("mean %.1f ops/s over %d intervals, band ±%.0f%% [%.1f, %.1f], %d violating",
		mean, len(rates), a.cfg.Tolerance*100, lo, hi, len(res.Violations))
	return res
}

func isComplete(p telemetry.Point, period time.Duration) bool {
	return p.Interval >= time.Duration(completeFraction*float64(period))
}

// completeFraction mirrors telemetry's complete-interval floor; kept as a
// named constant here so the rule's inclusion criterion is explicit at the
// point of use.
const completeFraction = 0.9

// IntervalSignals names the telemetry signals active in one interval point
// — the co-occurring evidence the report's attribution table joins to each
// violation. Counters are interval deltas, gauges instantaneous; the
// catalogue covers the signals the engine already exports for the failure
// shapes the paper discusses: admission-control sheds, client retry storms,
// compaction debt, GC pauses, and replication catch-up lag.
func IntervalSignals(p telemetry.Point) []string {
	var out []string
	if n := pointCounter(p, "hbase.sheds"); n > 0 {
		out = append(out, fmt.Sprintf("sheds=+%d", n))
	}
	if n := pointCounter(p, "hbase.client_retries"); n > 0 {
		out = append(out, fmt.Sprintf("client_retries=+%d", n))
	}
	if n := pointCounter(p, "workload.shed_ops"); n > 0 {
		out = append(out, fmt.Sprintf("shed_ops=+%d", n))
	}
	if n := pointCounter(p, "lsm.write_stalls"); n > 0 {
		out = append(out, fmt.Sprintf("write_stalls=+%d", n))
	}
	if n := pointGauge(p, "lsm.compaction_debt_bytes"); n > 0 {
		out = append(out, fmt.Sprintf("compaction_debt=%.1fMiB", float64(n)/(1<<20)))
	}
	if n := pointGauge(p, "replication.catchup_depth"); n > 0 {
		out = append(out, fmt.Sprintf("catchup_depth=%d", n))
	}
	if n := pointGauge(p, "replication.quorum_lag"); n > 0 {
		out = append(out, fmt.Sprintf("quorum_lag=%d", n))
	}
	for _, o := range p.Ops {
		if o.Name == "gc.pause" && o.Count > 0 {
			out = append(out, fmt.Sprintf("gc_pauses=%d(p99=%.2fms)", o.Count, float64(o.P99)/1e6))
		}
	}
	return out
}

// pointCounter reads one counter delta from a point. The untagged aggregate
// is preferred when present (tagged per-server/per-region copies would
// double-count it); otherwise tagged entries with the base name are summed.
func pointCounter(p telemetry.Point, base string) int64 {
	var tagged int64
	for _, c := range p.Counters {
		if c.Name == base {
			return c.Value
		}
		if b, _ := telemetry.SplitTagged(c.Name); b == base {
			tagged += c.Value
		}
	}
	return tagged
}

// pointGauge reads one instantaneous gauge from a point (0 when absent).
func pointGauge(p telemetry.Point, name string) int64 {
	for _, g := range p.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

func allPassed(rules []RuleResult) bool {
	for _, r := range rules {
		if !r.Passed {
			return false
		}
	}
	return true
}
