package audit

import (
	"strings"
	"testing"
	"time"

	"tpcxiot/internal/telemetry"
)

// seriesOf builds a telemetry series with one complete interval per count:
// point i carries count[i] benchmark ops over exactly one period.
func seriesOf(period time.Duration, counts ...int64) *telemetry.Series {
	s := &telemetry.Series{Interval: period}
	for i, n := range counts {
		s.Points = append(s.Points, telemetry.Point{
			Elapsed:  time.Duration(i+1) * period,
			Interval: period,
			Ops:      []telemetry.OpPoint{{Name: "op.INSERT", Count: n}},
		})
	}
	return s
}

// healthyRun wraps a series in metadata that passes every run-level rule.
func healthyRun(s *telemetry.Series) RunInfo {
	return RunInfo{
		WarmupSeconds:   5,
		MeasuredSeconds: 10,
		KVPs:            1000,
		ExpectedKVPs:    1000,
		TotalOps:        1000,
		Series:          s,
	}
}

func TestSustainedThroughputExactBoundaryPasses(t *testing.T) {
	// Counts 1200/1000/800 over 1 s intervals: mean 1000 ops/s, default
	// ±20% band [800, 1200]. Both extremes sit exactly on the band edge —
	// the boundary is inclusive, so the rule passes with no violations.
	a := NewAuditor(Config{MinSeconds: 1})
	v := a.Evaluate(healthyRun(seriesOf(time.Second, 1200, 1000, 800)))
	r, ok := v.Rule(RuleSustainedThroughput)
	if !ok || !r.Passed {
		t.Fatalf("exact-boundary intervals must pass: %+v", r)
	}
	if len(r.Violations) != 0 {
		t.Fatalf("expected no violations, got %+v", r.Violations)
	}
	if !v.Valid {
		t.Fatalf("verdict invalid: %+v", v)
	}
	if v.MeanRate != 1000 {
		t.Fatalf("mean rate = %v, want 1000", v.MeanRate)
	}
}

func TestSustainedThroughputJustOutsideBoundaryFails(t *testing.T) {
	// Counts 1201/1000/799: mean stays 1000 (sum 3000), band [800, 1200],
	// so both extremes are one op/s outside it and each must be flagged.
	a := NewAuditor(Config{MinSeconds: 1})
	v := a.Evaluate(healthyRun(seriesOf(time.Second, 1201, 1000, 799)))
	r, _ := v.Rule(RuleSustainedThroughput)
	if r.Passed {
		t.Fatalf("out-of-band intervals must fail: %+v", r)
	}
	if len(r.Violations) != 2 {
		t.Fatalf("expected 2 violations, got %+v", r.Violations)
	}
	if v.Valid {
		t.Fatal("verdict must be invalid when a rule fails")
	}
	// The violation is structured: interval index, observed rate, band.
	first := r.Violations[0]
	if first.Interval != 0 || first.Observed != 1201 || first.Lo != 800 || first.Hi != 1200 {
		t.Fatalf("violation structure wrong: %+v", first)
	}
	// And the failure surfaces through the checklist bridge.
	check := v.Check()
	if check.Passed || !strings.Contains(check.Detail, RuleSustainedThroughput) {
		t.Fatalf("check must carry the failed rule name: %+v", check)
	}
}

func TestSustainedThroughputSingleIntervalVacuous(t *testing.T) {
	// One complete interval has no deviation to measure: the rule passes
	// vacuously and says so rather than inventing a verdict.
	a := NewAuditor(Config{MinSeconds: 1})
	v := a.Evaluate(healthyRun(seriesOf(time.Second, 1000)))
	r, _ := v.Rule(RuleSustainedThroughput)
	if !r.Passed {
		t.Fatalf("single-interval run must pass vacuously: %+v", r)
	}
	if !strings.Contains(r.Detail, "need >= 2") {
		t.Fatalf("vacuous pass must explain itself: %q", r.Detail)
	}
	if v.Intervals != 1 {
		t.Fatalf("intervals = %d, want 1", v.Intervals)
	}
}

func TestSustainedThroughputNilSeries(t *testing.T) {
	a := NewAuditor(Config{MinSeconds: 1})
	v := a.Evaluate(healthyRun(nil))
	r, _ := v.Rule(RuleSustainedThroughput)
	if !r.Passed || !strings.Contains(r.Detail, "telemetry disabled") {
		t.Fatalf("nil series must pass with explanation: %+v", r)
	}
}

func TestSustainedThroughputExcludesPartialTail(t *testing.T) {
	// Three steady intervals plus a 100 ms tail (the Stop/Snapshot point):
	// folding the tail in would read as an 80% throughput collapse, but it
	// is a partial interval and must be excluded from the rule.
	s := seriesOf(time.Second, 1000, 1000, 1000)
	s.Points = append(s.Points, telemetry.Point{
		Elapsed:  3100 * time.Millisecond,
		Interval: 100 * time.Millisecond,
		Ops:      []telemetry.OpPoint{{Name: "op.INSERT", Count: 20}}, // 200 ops/s
	})
	a := NewAuditor(Config{MinSeconds: 1})
	v := a.Evaluate(healthyRun(s))
	r, _ := v.Rule(RuleSustainedThroughput)
	if !r.Passed {
		t.Fatalf("partial tail must not count as a collapse: %+v", r)
	}
	if v.Intervals != 3 {
		t.Fatalf("complete intervals = %d, want 3", v.Intervals)
	}
}

func TestViolationSignalAttribution(t *testing.T) {
	// The collapsed interval carries co-occurring signals — sheds, client
	// retries, compaction debt, a GC pause — and the violation must name
	// them. The untagged sheds aggregate is preferred over tagged copies
	// (no double counting).
	// Eight steady intervals and one collapse: mean (8*1000+100)/9 = 900,
	// band [720, 1080], so only the collapsed interval violates.
	s := seriesOf(time.Second, 1000, 1000, 1000, 1000, 1000, 1000, 1000, 1000)
	s.Points = append(s.Points, telemetry.Point{
		Elapsed:  9 * time.Second,
		Interval: time.Second,
		Ops: []telemetry.OpPoint{
			{Name: "op.INSERT", Count: 100},
			{Name: "gc.pause", Count: 3, P99: 12_000_000},
		},
		Counters: []telemetry.Value{
			{Name: "hbase.client_retries", Value: 17},
			{Name: "hbase.sheds", Value: 42},
			{Name: "hbase.sheds{server=1}", Value: 40},
		},
		Gauges: []telemetry.Value{
			{Name: "lsm.compaction_debt_bytes", Value: 8 << 20},
			{Name: "replication.catchup_depth", Value: 5},
		},
	})
	a := NewAuditor(Config{MinSeconds: 1})
	v := a.Evaluate(healthyRun(s))
	r, _ := v.Rule(RuleSustainedThroughput)
	if len(r.Violations) != 1 {
		t.Fatalf("expected 1 violation, got %+v", r.Violations)
	}
	sig := strings.Join(r.Violations[0].Signals, " ")
	for _, want := range []string{"sheds=+42", "client_retries=+17", "compaction_debt=8.0MiB", "catchup_depth=5", "gc_pauses=3"} {
		if !strings.Contains(sig, want) {
			t.Fatalf("signals %q missing %q", sig, want)
		}
	}
	if strings.Contains(sig, "sheds=+82") || strings.Contains(sig, "sheds=+40") {
		t.Fatalf("tagged sheds double-counted: %q", sig)
	}
}

func TestTaggedCountersSummedWithoutAggregate(t *testing.T) {
	p := telemetry.Point{Counters: []telemetry.Value{
		{Name: "lsm.write_stalls{region=iot,00000,server=0}", Value: 2},
		{Name: "lsm.write_stalls{region=iot,00001,server=1}", Value: 3},
	}}
	sig := strings.Join(IntervalSignals(p), " ")
	if !strings.Contains(sig, "write_stalls=+5") {
		t.Fatalf("tagged-only counter must sum across tags: %q", sig)
	}
}

func TestRunLevelRuleBoundaries(t *testing.T) {
	a := NewAuditor(Config{MinSeconds: 10, ShedBudget: 0.05})

	t.Run("duration exactly on floor passes", func(t *testing.T) {
		run := healthyRun(nil)
		run.MeasuredSeconds = 10
		r, _ := a.Evaluate(run).Rule(RuleMinDuration)
		if !r.Passed {
			t.Fatalf("boundary duration must pass: %+v", r)
		}
	})
	t.Run("duration below floor fails", func(t *testing.T) {
		run := healthyRun(nil)
		run.MeasuredSeconds = 9.99
		v := a.Evaluate(run)
		if r, _ := v.Rule(RuleMinDuration); r.Passed || v.Valid {
			t.Fatalf("short run must fail min-duration: %+v", r)
		}
	})
	t.Run("missing warmup fails", func(t *testing.T) {
		run := healthyRun(nil)
		run.WarmupSeconds = 0
		if r, _ := a.Evaluate(run).Rule(RuleWarmupExclusion); r.Passed {
			t.Fatalf("run without warmup must fail: %+v", r)
		}
	})
	t.Run("kvp mismatch fails data check", func(t *testing.T) {
		run := healthyRun(nil)
		run.KVPs = 999
		if r, _ := a.Evaluate(run).Rule(RuleDataCheck); r.Passed {
			t.Fatalf("kvp mismatch must fail: %+v", r)
		}
	})
	t.Run("shed fraction exactly on budget passes", func(t *testing.T) {
		run := healthyRun(nil)
		run.TotalOps, run.ShedOps = 1000, 50 // exactly 5%
		if r, _ := a.Evaluate(run).Rule(RuleShedBudget); !r.Passed {
			t.Fatalf("boundary shed budget must pass: %+v", r)
		}
	})
	t.Run("shed fraction above budget fails", func(t *testing.T) {
		run := healthyRun(nil)
		run.TotalOps, run.ShedOps = 1000, 51
		if r, _ := a.Evaluate(run).Rule(RuleShedBudget); r.Passed {
			t.Fatalf("over-budget shedding must fail: %+v", r)
		}
	})
}

func TestEvaluatePartialIsInterruptedAndNeverValid(t *testing.T) {
	a := NewAuditor(Config{MinSeconds: 1})
	v := a.EvaluatePartial(seriesOf(time.Second, 1000, 1000), 2000)
	if !v.Interrupted {
		t.Fatal("partial verdict must be marked interrupted")
	}
	if v.Valid {
		t.Fatal("an interrupted run has no reportable result")
	}
	if v.TargetRate != 2000 {
		t.Fatalf("target rate = %v, want 2000", v.TargetRate)
	}
	if _, ok := v.Rule(RuleSustainedThroughput); !ok {
		t.Fatal("partial verdict must still evaluate the interval rules")
	}
	if _, ok := v.Rule(RuleDataCheck); ok {
		t.Fatal("partial verdict must not invent run-level rule outcomes")
	}
}

func TestVerdictBenchfmtExport(t *testing.T) {
	a := NewAuditor(Config{MinSeconds: 1})
	v := a.Evaluate(healthyRun(seriesOf(time.Second, 1201, 1000, 799)))
	f := v.Benchfmt()
	if f.Benchmark != "RunValidityAudit" {
		t.Fatalf("benchmark name = %q", f.Benchmark)
	}
	if len(f.Results) != len(v.Rules) {
		t.Fatalf("results = %d, want one per rule (%d)", len(f.Results), len(v.Rules))
	}
	byRule := map[string]map[string]float64{}
	for _, r := range f.Results {
		byRule[r.Variant["rule"]] = r.Metrics
	}
	m, ok := byRule[RuleSustainedThroughput]
	if !ok {
		t.Fatalf("missing sustained-throughput result: %+v", byRule)
	}
	if m["passed"] != 0 || m["violations"] != 2 {
		t.Fatalf("sustained metrics wrong: %+v", m)
	}
	if valid, _ := f.Summary["valid"].(bool); valid {
		t.Fatalf("summary.valid must be false: %+v", f.Summary)
	}
}
