// Package audit implements the prerequisite, validity and audit checks of
// the TPCx-IoT execution rules (Sections III-B and IV-D).
//
// Before the warmup run the benchmark driver performs the file check
// (md5 checksums of all non-changeable kit files against a reference
// manifest) and the data-replication check (three-way replication). After
// each measured run the data check verifies the runtime requirements:
// at least 1 800 s of workload execution, at least 20 kvps/s ingested per
// sensor, and a healthy number of readings aggregated per query. Results
// must additionally be audited — independently or by a peer review
// committee — before publication.
package audit

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// Specification thresholds.
const (
	// MinWorkloadSeconds is the minimum elapsed time for both the warmup
	// and the measured workload execution.
	MinWorkloadSeconds = 1800.0
	// MinPerSensorRate is the minimum average ingest rate per sensor in
	// kvps/s.
	MinPerSensorRate = 20.0
	// MinRowsPerQuery is the floor on the average number of readings
	// aggregated per query; the paper states a run is invalid below 200.
	MinRowsPerQuery = 200.0
	// RequiredReplication is the storage replication factor the
	// prerequisite check demands.
	RequiredReplication = 3
)

// Check is the outcome of one audit item.
type Check struct {
	// Name identifies the check, e.g. "file-check".
	Name string
	// Passed reports the verdict.
	Passed bool
	// Detail is a human-readable explanation with the measured values.
	Detail string
}

// Checklist aggregates checks for a run.
type Checklist []Check

// Passed reports whether every check passed.
func (cl Checklist) Passed() bool {
	for _, c := range cl {
		if !c.Passed {
			return false
		}
	}
	return true
}

// Failed returns the checks that did not pass.
func (cl Checklist) Failed() Checklist {
	var out Checklist
	for _, c := range cl {
		if !c.Passed {
			out = append(out, c)
		}
	}
	return out
}

// String renders the checklist as a report section.
func (cl Checklist) String() string {
	var b strings.Builder
	for _, c := range cl {
		mark := "PASS"
		if !c.Passed {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %-24s %s\n", mark, c.Name, c.Detail)
	}
	return b.String()
}

// Manifest maps kit file paths to their reference MD5 checksums (hex).
type Manifest map[string]string

// BuildManifest computes the manifest for the given files; used when
// producing a kit release.
func BuildManifest(paths []string) (Manifest, error) {
	m := make(Manifest, len(paths))
	for _, p := range paths {
		sum, err := fileMD5(p)
		if err != nil {
			return nil, err
		}
		m[p] = sum
	}
	return m, nil
}

func fileMD5(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("audit: open %s: %w", path, err)
	}
	defer f.Close()
	h := md5.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("audit: hash %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// FileCheck verifies every manifest entry against the file on disk: the
// prerequisite that no non-changeable kit file was altered.
func FileCheck(m Manifest) Check {
	paths := make([]string, 0, len(m))
	for p := range m {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var bad []string
	for _, p := range paths {
		sum, err := fileMD5(p)
		if err != nil {
			bad = append(bad, fmt.Sprintf("%s (unreadable: %v)", p, err))
			continue
		}
		if sum != m[p] {
			bad = append(bad, fmt.Sprintf("%s (checksum mismatch)", p))
		}
	}
	if len(bad) > 0 {
		return Check{Name: "file-check", Passed: false,
			Detail: fmt.Sprintf("%d of %d kit files altered or missing: %s",
				len(bad), len(m), strings.Join(bad, ", "))}
	}
	return Check{Name: "file-check", Passed: true,
		Detail: fmt.Sprintf("%d kit files match the reference checksums", len(m))}
}

// ReplicationCheck verifies the storage tier's replication factor.
func ReplicationCheck(factor int) Check {
	return Check{
		Name:   "data-replication-check",
		Passed: factor >= RequiredReplication,
		Detail: fmt.Sprintf("replication factor %d (require >= %d)", factor, RequiredReplication),
	}
}

// DurationCheck verifies a workload execution ran at least minSeconds
// (pass MinWorkloadSeconds for a compliant run; scaled-down experiments may
// pass a smaller bound and must disclose it).
func DurationCheck(name string, elapsed time.Duration, minSeconds float64) Check {
	return Check{
		Name:   name,
		Passed: elapsed.Seconds() >= minSeconds,
		Detail: fmt.Sprintf("elapsed %.1fs (require >= %.0fs)", elapsed.Seconds(), minSeconds),
	}
}

// PerSensorRateCheck verifies the average per-sensor ingest rate.
func PerSensorRateCheck(perSensorRate, min float64) Check {
	return Check{
		Name:   "per-sensor-ingest-rate",
		Passed: perSensorRate >= min,
		Detail: fmt.Sprintf("%.1f kvps/s per sensor (require >= %.0f)", perSensorRate, min),
	}
}

// QueryAggregateCheck verifies the mean readings aggregated per query.
func QueryAggregateCheck(avgRows, min float64) Check {
	return Check{
		Name:   "readings-per-query",
		Passed: avgRows >= min,
		Detail: fmt.Sprintf("%.1f readings aggregated per query (require >= %.0f)", avgRows, min),
	}
}

// DataCheck verifies the measured run ingested exactly the requested kvps —
// TPCx-IoT is a fixed-workload benchmark, so a shortfall means lost data.
func DataCheck(ingested, expected int64) Check {
	return Check{
		Name:   "data-check",
		Passed: ingested == expected,
		Detail: fmt.Sprintf("ingested %d of %d kvps", ingested, expected),
	}
}

// StoredRowsCheck verifies the storage tier holds every reading ingested
// during the iteration (warmup plus measured run) — the storage-level
// complement of DataCheck's client-side accounting.
func StoredRowsCheck(stored, expected int64) Check {
	return Check{
		Name:   "stored-rows",
		Passed: stored == expected,
		Detail: fmt.Sprintf("storage holds %d of %d ingested readings", stored, expected),
	}
}

// RepeatabilityCheck compares the two iterations' throughput. The TPC
// requires a repetition run to demonstrate repeatability; tolerance is the
// allowed relative difference (e.g. 0.10 for 10%).
func RepeatabilityCheck(iotps1, iotps2, tolerance float64) Check {
	if iotps1 <= 0 || iotps2 <= 0 {
		return Check{Name: "repeatability", Passed: false,
			Detail: fmt.Sprintf("non-positive throughput: %.1f vs %.1f", iotps1, iotps2)}
	}
	lo, hi := iotps1, iotps2
	if lo > hi {
		lo, hi = hi, lo
	}
	diff := (hi - lo) / hi
	return Check{
		Name:   "repeatability",
		Passed: diff <= tolerance,
		Detail: fmt.Sprintf("iterations differ by %.1f%% (allow <= %.0f%%)", diff*100, tolerance*100),
	}
}

// Method is how a result is audited before publication.
type Method int

// Audit methods permitted by the specification.
const (
	// IndependentAudit is review by a third party with no interest in the
	// benchmark sponsor.
	IndependentAudit Method = iota
	// PeerAudit is review by a committee of three members from TPC
	// companies other than the sponsor.
	PeerAudit
)

// String names the method.
func (m Method) String() string {
	if m == PeerAudit {
		return "peer audit"
	}
	return "independent audit"
}

// Record documents the audit of a result.
type Record struct {
	Method    Method
	Auditors  []string
	Date      time.Time
	Checklist Checklist
}

// Validate enforces the specification's composition rules: an independent
// audit needs at least one auditor; a peer audit needs a three-member
// committee.
func (r Record) Validate() error {
	switch r.Method {
	case IndependentAudit:
		if len(r.Auditors) < 1 {
			return fmt.Errorf("audit: independent audit requires an auditor")
		}
	case PeerAudit:
		if len(r.Auditors) != 3 {
			return fmt.Errorf("audit: peer audit requires exactly 3 committee members, have %d", len(r.Auditors))
		}
	default:
		return fmt.Errorf("audit: unknown method %d", r.Method)
	}
	return nil
}
