package memtable

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	m := New(1)
	m.Put([]byte("b"), []byte("2"))
	m.Put([]byte("a"), []byte("1"))
	m.Put([]byte("c"), []byte("3"))

	for k, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		got, ok := m.Get([]byte(k))
		if !ok || string(got) != want {
			t.Fatalf("Get(%q) = %q,%v; want %q", k, got, ok, want)
		}
	}
	if _, ok := m.Get([]byte("missing")); ok {
		t.Fatal("Get of absent key reported present")
	}
}

func TestOverwrite(t *testing.T) {
	m := New(2)
	m.Put([]byte("k"), []byte("old"))
	m.Put([]byte("k"), []byte("newer"))
	got, ok := m.Get([]byte("k"))
	if !ok || string(got) != "newer" {
		t.Fatalf("Get after overwrite = %q,%v", got, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len after overwrite = %d, want 1", m.Len())
	}
	if m.Size() != int64(len("k")+len("newer")) {
		t.Fatalf("Size after overwrite = %d", m.Size())
	}
}

func TestPutCopiesInputs(t *testing.T) {
	m := New(3)
	k := []byte("key")
	v := []byte("val")
	m.Put(k, v)
	k[0], v[0] = 'X', 'X'
	got, ok := m.Get([]byte("key"))
	if !ok || string(got) != "val" {
		t.Fatalf("stored data aliased caller's slices: %q,%v", got, ok)
	}
}

func TestGetCopiesOutput(t *testing.T) {
	m := New(4)
	m.Put([]byte("k"), []byte("val"))
	got, _ := m.Get([]byte("k"))
	got[0] = 'X'
	again, _ := m.Get([]byte("k"))
	if string(again) != "val" {
		t.Fatal("Get returned an aliased internal slice")
	}
}

func TestIterationSorted(t *testing.T) {
	m := New(5)
	keys := []string{"delta", "alpha", "echo", "charlie", "bravo"}
	for _, k := range keys {
		m.Put([]byte(k), []byte("v-"+k))
	}
	it := m.NewIterator()
	it.SeekToFirst()
	var got []string
	for ; it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("iteration order %v, want %v", got, want)
	}
}

func TestSeek(t *testing.T) {
	m := New(6)
	for i := 0; i < 100; i += 2 {
		m.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	it := m.NewIterator()

	it.Seek([]byte("k051")) // between k050 and k052
	if !it.Valid() || string(it.Key()) != "k052" {
		t.Fatalf("Seek(k051) landed on %q", it.Key())
	}

	it.Seek([]byte("k050")) // exact hit
	if !it.Valid() || string(it.Key()) != "k050" {
		t.Fatalf("Seek(k050) landed on %q", it.Key())
	}

	it.Seek([]byte("k999")) // past the end
	if it.Valid() {
		t.Fatal("Seek past end should be invalid")
	}

	it.Seek([]byte("")) // before the beginning
	if !it.Valid() || string(it.Key()) != "k000" {
		t.Fatalf("Seek(empty) landed on %q", it.Key())
	}
}

func TestEmptyTable(t *testing.T) {
	m := New(7)
	if m.Len() != 0 || m.Size() != 0 {
		t.Fatal("fresh table not empty")
	}
	it := m.NewIterator()
	it.SeekToFirst()
	if it.Valid() {
		t.Fatal("iterator over empty table is valid")
	}
	it.Next() // must not panic
}

func TestSizeAccounting(t *testing.T) {
	m := New(8)
	m.Put([]byte("abc"), []byte("12345"))
	if m.Size() != 8 {
		t.Fatalf("Size = %d, want 8", m.Size())
	}
	m.Put([]byte("x"), []byte("y"))
	if m.Size() != 10 {
		t.Fatalf("Size = %d, want 10", m.Size())
	}
}

func TestConcurrentWritersReaders(t *testing.T) {
	m := New(9)
	const writers = 4
	const perWriter = 2000
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := []byte(fmt.Sprintf("w%d-%06d", w, i))
				m.Put(k, k)
			}
		}(w)
	}
	// Concurrent scanners must never observe unsorted order or crash.
	stop := make(chan struct{})
	var scanErr error
	var scanWg sync.WaitGroup
	for r := 0; r < 2; r++ {
		scanWg.Add(1)
		go func() {
			defer scanWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				it := m.NewIterator()
				it.SeekToFirst()
				var prev []byte
				for ; it.Valid(); it.Next() {
					if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
						scanErr = fmt.Errorf("unsorted scan: %q then %q", prev, it.Key())
						return
					}
					prev = append(prev[:0], it.Key()...)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	scanWg.Wait()
	if scanErr != nil {
		t.Fatal(scanErr)
	}

	if m.Len() != writers*perWriter {
		t.Fatalf("Len = %d, want %d", m.Len(), writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i += 97 {
			k := []byte(fmt.Sprintf("w%d-%06d", w, i))
			if _, ok := m.Get(k); !ok {
				t.Fatalf("lost key %q", k)
			}
		}
	}
}

func TestPropertyMatchesSortedMap(t *testing.T) {
	f := func(ops [][2][]byte) bool {
		m := New(10)
		model := map[string]string{}
		for _, op := range ops {
			k, v := op[0], op[1]
			if len(k) == 0 {
				continue
			}
			m.Put(k, v)
			model[string(k)] = string(v)
		}
		// Every model entry must be retrievable.
		for k, v := range model {
			got, ok := m.Get([]byte(k))
			if !ok || string(got) != v {
				return false
			}
		}
		// Iteration must yield the model's keys in sorted order.
		want := make([]string, 0, len(model))
		for k := range model {
			want = append(want, k)
		}
		sort.Strings(want)
		it := m.NewIterator()
		it.SeekToFirst()
		i := 0
		for ; it.Valid(); it.Next() {
			if i >= len(want) || string(it.Key()) != want[i] {
				return false
			}
			i++
		}
		return i == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut(b *testing.B) {
	m := New(11)
	key := make([]byte, 32)
	val := make([]byte, 1024)
	b.SetBytes(int64(len(key) + len(val)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(key, fmt.Sprintf("key-%020d", i))
		m.Put(key, val)
	}
}

func BenchmarkGet(b *testing.B) {
	m := New(12)
	const n = 100000
	for i := 0; i < n; i++ {
		m.Put([]byte(fmt.Sprintf("key-%08d", i)), []byte("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get([]byte(fmt.Sprintf("key-%08d", i%n)))
	}
}
