// Package memtable implements the in-memory write buffer of the storage
// engine: a sorted skiplist mapping byte-slice keys to values.
//
// The design mirrors the memstore of an HBase region server (and the
// memtable of LevelDB-family engines): writes are serialised by a mutex and
// publish new nodes with atomic stores, so readers — point gets and range
// scans — traverse the list without taking any lock. Nodes are never
// unlinked; deletion is expressed by writing a tombstone at a higher layer
// (see the lsm package), and the whole table is discarded after a flush.
package memtable

import (
	"bytes"
	"sync"
	"sync/atomic"

	"tpcxiot/internal/gen"
)

const maxHeight = 18 // supports hundreds of millions of entries at p=1/4

// Memtable is a sorted in-memory key-value buffer. The zero value is not
// usable; call New.
type Memtable struct {
	head *node

	mu     sync.Mutex // serialises writers
	rng    *gen.RNG   // guarded by mu; tower height source
	height atomic.Int32

	size    atomic.Int64 // approximate bytes of keys+values
	entries atomic.Int64
}

type node struct {
	key   []byte
	value atomic.Pointer[[]byte]
	tower [maxHeight]atomic.Pointer[node]
}

// New returns an empty memtable. The seed makes tower heights (and thus the
// exact structure) deterministic for tests; any value is fine in production.
func New(seed uint64) *Memtable {
	m := &Memtable{head: &node{}, rng: gen.NewRNG(seed)}
	m.height.Store(1)
	return m
}

// Put inserts or overwrites key with value. The key and value slices are
// copied on first insert; overwrites copy only the value. Safe for
// concurrent use with readers and other writers.
func (m *Memtable) Put(key, value []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()

	var prev [maxHeight]*node
	n := m.findGE(key, &prev)
	if n != nil && bytes.Equal(n.key, key) {
		old := n.value.Load()
		v := append([]byte(nil), value...)
		n.value.Store(&v)
		m.size.Add(int64(len(value) - len(*old)))
		return
	}

	h := m.randomHeight()
	if int32(h) > m.height.Load() {
		for i := m.height.Load(); i < int32(h); i++ {
			prev[i] = m.head
		}
		m.height.Store(int32(h))
	}

	nn := &node{key: append([]byte(nil), key...)}
	v := append([]byte(nil), value...)
	nn.value.Store(&v)
	for i := 0; i < h; i++ {
		nn.tower[i].Store(prev[i].tower[i].Load())
		// Publish bottom-up so a reader that sees the node at level i can
		// always reach it at level 0.
		prev[i].tower[i].Store(nn)
	}
	m.size.Add(int64(len(key) + len(value)))
	m.entries.Add(1)
}

// Get returns a copy of the value stored for key, or ok=false if absent.
func (m *Memtable) Get(key []byte) (value []byte, ok bool) {
	n := m.findGE(key, nil)
	if n == nil || !bytes.Equal(n.key, key) {
		return nil, false
	}
	v := n.value.Load()
	return append([]byte(nil), *v...), true
}

// Size returns the approximate memory footprint in bytes of stored keys and
// values (excluding node overhead).
func (m *Memtable) Size() int64 { return m.size.Load() }

// Len returns the number of distinct keys.
func (m *Memtable) Len() int64 { return m.entries.Load() }

// findGE returns the first node with key >= target, filling prev (if
// non-nil) with the rightmost node before target at every level.
func (m *Memtable) findGE(target []byte, prev *[maxHeight]*node) *node {
	x := m.head
	for level := int(m.height.Load()) - 1; level >= 0; level-- {
		for {
			next := x.tower[level].Load()
			if next == nil || bytes.Compare(next.key, target) >= 0 {
				break
			}
			x = next
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.tower[0].Load()
}

func (m *Memtable) randomHeight() int {
	h := 1
	// p = 1/4 per extra level, LevelDB-style.
	for h < maxHeight && m.rng.Uint64()%4 == 0 {
		h++
	}
	return h
}

// Iterator walks entries in ascending key order. Iterators observe entries
// inserted concurrently with iteration (same semantics as scanning an HBase
// memstore); for a frozen view, stop writing to the table first.
type Iterator struct {
	m *Memtable
	n *node
}

// NewIterator returns an iterator positioned before the first entry; call
// Seek or Next to position it.
func (m *Memtable) NewIterator() *Iterator {
	return &Iterator{m: m}
}

// Seek positions the iterator at the first entry with key >= target.
func (it *Iterator) Seek(target []byte) {
	it.n = it.m.findGE(target, nil)
}

// SeekToFirst positions the iterator at the smallest key.
func (it *Iterator) SeekToFirst() {
	it.n = it.m.head.tower[0].Load()
}

// Next advances to the following entry. Valid must be consulted afterwards.
func (it *Iterator) Next() {
	if it.n != nil {
		it.n = it.n.tower[0].Load()
	}
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.n != nil }

// Key returns the current key. The slice must not be modified.
func (it *Iterator) Key() []byte { return it.n.key }

// Value returns the current value. The slice must not be modified.
func (it *Iterator) Value() []byte { return *it.n.value.Load() }
