package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openTest(t *testing.T, opts Options) *Log {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	if opts.Sync == SyncOnAppend {
		opts.Sync = SyncNever // keep tests fast; durability tested explicitly
	}
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func replayAll(t *testing.T, dir string) [][]byte {
	t.Helper()
	var recs [][]byte
	if err := Replay(dir, func(rec []byte) error {
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestAppendReplay(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir})
	want := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAppendGroup(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir})
	if err := l.Append([]byte("a"), []byte("b"), []byte("c")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if got := replayAll(t, dir); len(got) != 3 {
		t.Fatalf("group append replayed %d records, want 3", len(got))
	}
}

func TestEmptyRecord(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir})
	if err := l.Append([]byte{}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got := replayAll(t, dir)
	if len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("empty record mishandled: %v", got)
	}
}

func TestRotation(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir, SegmentSize: 1024})
	rec := make([]byte, 300)
	for i := 0; i < 10; i++ {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if l.SegmentCount() < 2 {
		t.Fatalf("expected rotation, have %d segments", l.SegmentCount())
	}
	l.Close()
	if got := replayAll(t, dir); len(got) != 10 {
		t.Fatalf("replayed %d records across segments, want 10", len(got))
	}
}

func TestMaxSegmentsBackpressure(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir, SegmentSize: 1024, MaxSegments: 3})
	rec := make([]byte, 600)
	var full bool
	for i := 0; i < 20; i++ {
		if err := l.Append(rec); err != nil {
			if errors.Is(err, ErrLogFull) {
				full = true
				break
			}
			t.Fatal(err)
		}
	}
	if !full {
		t.Fatal("never hit ErrLogFull with a 3-segment cap")
	}
	// Truncating old segments must unblock appends.
	if err := l.Truncate(l.ActiveSegment()); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	l.Close()
}

func TestTruncateRemovesFiles(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir, SegmentSize: 1024})
	rec := make([]byte, 500)
	for i := 0; i < 8; i++ {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	before := l.SegmentCount()
	active := l.ActiveSegment()
	if err := l.Truncate(active); err != nil {
		t.Fatal(err)
	}
	if l.SegmentCount() >= before {
		t.Fatalf("truncate kept %d of %d segments", l.SegmentCount(), before)
	}
	// Replay must still work over the surviving tail.
	l.Close()
	if err := Replay(dir, func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestReopenContinues(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir})
	l.Append([]byte("first"))
	l.Close()

	l2 := openTest(t, Options{Dir: dir})
	l2.Append([]byte("second"))
	l2.Close()

	got := replayAll(t, dir)
	if len(got) != 2 || string(got[0]) != "first" || string(got[1]) != "second" {
		t.Fatalf("replay after reopen: %q", got)
	}
}

func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir})
	l.Append([]byte("intact"))
	l.Append([]byte("to-be-torn"))
	l.Close()

	// Chop the final record mid-body to simulate a torn write.
	seg := filepath.Join(dir, segmentName(1))
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-4); err != nil {
		t.Fatal(err)
	}

	got := replayAll(t, dir)
	if len(got) != 1 || string(got[0]) != "intact" {
		t.Fatalf("torn-tail replay = %q, want just [intact]", got)
	}
}

func TestMidSegmentCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir, SegmentSize: 1024})
	rec := make([]byte, 400)
	for i := 0; i < 6; i++ { // spans multiple segments
		l.Append(rec)
	}
	l.Close()

	// Flip a byte in the body of the first record of the FIRST segment
	// (not the last): replay must fail loudly.
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = Replay(dir, func([]byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay error = %v, want ErrCorrupt", err)
	}
}

func TestCorruptTailOfLastSegmentTolerated(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir})
	l.Append([]byte("good"))
	l.Append([]byte("bad-tail"))
	l.Close()

	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	os.WriteFile(seg, data, 0o644)

	got := replayAll(t, dir)
	if len(got) != 1 || string(got[0]) != "good" {
		t.Fatalf("corrupt-tail replay = %q", got)
	}
}

func TestReplayCallbackError(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir})
	l.Append([]byte("x"))
	l.Close()
	sentinel := errors.New("stop")
	if err := Replay(dir, func([]byte) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("callback error not propagated: %v", err)
	}
}

func TestReplayMissingDir(t *testing.T) {
	if err := Replay(filepath.Join(t.TempDir(), "absent"), func([]byte) error { return nil }); err != nil {
		t.Fatalf("replay of missing dir: %v", err)
	}
}

func TestClosedLogRejectsOps(t *testing.T) {
	l := openTest(t, Options{})
	l.Close()
	if err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after close: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	l := openTest(t, Options{})
	defer l.Close()
	if err := l.Append(make([]byte, MaxRecordSize+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize append: %v", err)
	}
}

func TestBadOptions(t *testing.T) {
	if _, err := Open(Options{}); !errors.Is(err, ErrBadOption) {
		t.Fatalf("missing dir: %v", err)
	}
	if _, err := Open(Options{Dir: t.TempDir(), SegmentSize: 10}); !errors.Is(err, ErrBadOption) {
		t.Fatalf("tiny segment: %v", err)
	}
	if _, err := Open(Options{Dir: t.TempDir(), MaxSegments: -1}); !errors.Is(err, ErrBadOption) {
		t.Fatalf("negative cap: %v", err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir, SegmentSize: 64 << 10})
	const workers = 8
	const per = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	l.Close()
	if got := replayAll(t, dir); len(got) != workers*per {
		t.Fatalf("replayed %d records, want %d", len(got), workers*per)
	}
}

func TestSyncOnAppendDurable(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncOnAppend})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	// Without closing, the record must already be on disk (flushed through
	// the bufio layer at minimum).
	got := replayAll(t, dir)
	if len(got) != 1 || string(got[0]) != "durable" {
		t.Fatalf("record not durable before close: %q", got)
	}
	l.Close()
}

func BenchmarkAppend1KiB(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGroupCommitSharesSyncs(t *testing.T) {
	// Deterministic leader/follower scenario: hold syncMu as a fake
	// in-flight leader, let followers append and queue behind it, cover
	// their offsets, then release — every follower must return without an
	// fsync of its own. (A purely concurrent version is timing-dependent:
	// on fast filesystems fsync completes before a cohort can form.)
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncOnAppend})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	l.syncMu.Lock() // fake in-flight leader
	const followers = 3
	done := make(chan error, followers)
	for i := 0; i < followers; i++ {
		go func(i int) {
			done <- l.Append([]byte(fmt.Sprintf("follower-%d", i)))
		}(i)
	}
	// Wait until every follower has written its record and is blocked on
	// the sync.
	for {
		l.mu.Lock()
		appended := l.appended
		l.mu.Unlock()
		if appended >= int64(followers)*(headerLen+int64(len("follower-0"))) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// The "leader" makes everything durable and publishes the offset.
	l.mu.Lock()
	if err := l.w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.f.Sync(); err != nil {
		t.Fatal(err)
	}
	l.synced.Store(l.appended)
	l.mu.Unlock()
	l.syncMu.Unlock()

	for i := 0; i < followers; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	_, shared := l.GroupCommitStats()
	if shared != followers {
		t.Fatalf("shared = %d, want %d (all followers covered by the leader)", shared, followers)
	}
	// Durability: everything replays.
	l.Close()
	count := 0
	if err := Replay(dir, func([]byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != followers {
		t.Fatalf("replayed %d of %d records", count, followers)
	}
}

func TestGroupCommitSingleWriterSyncsEachAppend(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), Sync: SyncOnAppend})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 20; i++ {
		if err := l.Append([]byte("solo")); err != nil {
			t.Fatal(err)
		}
	}
	syncs, shared := l.GroupCommitStats()
	if shared != 0 {
		t.Fatalf("solo writer shared %d syncs", shared)
	}
	if syncs != 20 {
		t.Fatalf("solo writer performed %d syncs for 20 appends", syncs)
	}
}

func TestGroupCommitAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncOnAppend, SegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, 300)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if err := l.Append(rec); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if l.SegmentCount() < 2 {
		t.Fatal("no rotation occurred")
	}
	l.Close()
	count := 0
	if err := Replay(dir, func([]byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 120 {
		t.Fatalf("replayed %d of 120 records across rotations", count)
	}
}

// BenchmarkGroupCommit measures durable append throughput as concurrency
// grows: group commit should lift aggregate throughput well above a single
// writer's fsync-bound rate.
func BenchmarkGroupCommit(b *testing.B) {
	for _, writers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			l, err := Open(Options{Dir: b.TempDir(), Sync: SyncOnAppend})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			rec := make([]byte, 1024)
			b.SetBytes(1024)
			b.SetParallelism(writers)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := l.Append(rec); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
