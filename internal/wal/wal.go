// Package wal implements a segmented write-ahead log.
//
// Every mutation of a region is appended to the log before it is applied to
// the memstore, so a crash between acknowledgement and flush loses nothing.
// The log is a sequence of fixed-capacity segment files; once the memstore
// contents covered by a segment have been flushed into SSTables the segment
// can be truncated away. The paper's HBase tuning caps the number of WAL
// files at 128 — Options.MaxSegments models the same backpressure: when the
// cap is hit, appends fail with ErrLogFull until the engine flushes and
// truncates (HBase reacts by forcing memstore flushes).
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"tpcxiot/internal/telemetry"
)

// Sentinel errors.
var (
	ErrClosed    = errors.New("wal: log is closed")
	ErrCorrupt   = errors.New("wal: corrupt record")
	ErrLogFull   = errors.New("wal: segment cap reached; flush and truncate first")
	ErrTooLarge  = errors.New("wal: record exceeds maximum size")
	ErrBadOption = errors.New("wal: invalid option")
)

// MaxRecordSize bounds a single record. TPCx-IoT pairs are 1 KiB; batched
// appends of a full client write buffer stay well under this.
const MaxRecordSize = 64 << 20

// RecordOverhead is the per-record framing cost (length + CRC32C header)
// the log adds on top of the record payload. Engines accounting their own
// WAL byte volume add this per record appended.
const RecordOverhead = headerLen

// SyncPolicy controls when appended records are forced to stable storage.
type SyncPolicy int

const (
	// SyncOnAppend fsyncs after every Append call (group committing all
	// records in the call). Durable and slow; the default.
	SyncOnAppend SyncPolicy = iota
	// SyncOnRotate fsyncs only when a segment fills or the log closes.
	// Models running the storage layer with deferred log sync.
	SyncOnRotate
	// SyncNever never fsyncs; for tests and benchmarks that measure the
	// engine above the disk.
	SyncNever
)

// Options configures a log.
type Options struct {
	// Dir is the directory holding segment files. Created if absent.
	Dir string
	// SegmentSize is the rotation threshold in bytes. Defaults to 64 MiB.
	SegmentSize int64
	// MaxSegments caps live (untruncated) segments; 0 means unlimited.
	MaxSegments int
	// Sync selects the durability policy.
	Sync SyncPolicy
	// Registry, when non-nil, receives the log's telemetry: the counters
	// "wal.appends", "wal.bytes", "wal.syncs", "wal.group_commit_syncs" and
	// "wal.group_commit_shared" plus the "put.wal_append" stage histogram. A
	// nil registry costs one pointer test per append.
	Registry *telemetry.Registry
	// Logger, when non-nil, receives structured events from rare paths
	// (recovery warnings). The hot append path never logs.
	Logger *telemetry.Logger
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.Dir == "" {
		return out, fmt.Errorf("%w: Dir is required", ErrBadOption)
	}
	if out.SegmentSize == 0 {
		out.SegmentSize = 64 << 20
	}
	if out.SegmentSize < 1024 {
		return out, fmt.Errorf("%w: SegmentSize %d too small", ErrBadOption, out.SegmentSize)
	}
	if out.MaxSegments < 0 {
		return out, fmt.Errorf("%w: negative MaxSegments", ErrBadOption)
	}
	return out, nil
}

// Log is a segmented write-ahead log. Safe for concurrent use.
//
// Under SyncOnAppend, concurrent appenders GROUP COMMIT: one fsync covers
// every record written before it started, so N concurrent writers share
// syncs instead of paying one each — the amortisation behind the paper's
// super-linear low-concurrency scaling.
type Log struct {
	opts Options

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	written  int64 // bytes in the active segment
	seq      uint64
	segments []uint64   // live segment sequence numbers, ascending; includes active
	retired  []*os.File // rotated-out segment files kept open until Close/Truncate
	closed   bool

	// Group-commit state: monotone byte counters across all segments.
	// appended is advanced under mu; synced is atomic (written by sync
	// leaders under syncMu and by rotation under mu). A writer whose
	// records are at offset <= synced is durable without syncing itself.
	appended int64
	synced   atomic.Int64
	syncMu   sync.Mutex // serialises sync leaders

	groupSyncs  int64 // fsyncs performed (telemetry)
	groupShared int64 // appends whose sync was covered by another writer

	// Registry-backed instruments, resolved once at Open; all nil-safe.
	appendsC     *telemetry.Counter
	bytesC       *telemetry.Counter
	syncsC       *telemetry.Counter
	groupSyncsC  *telemetry.Counter // wal.group_commit_syncs: leader fsyncs
	groupSharedC *telemetry.Counter // wal.group_commit_shared: fsyncs saved
	appendSpan   *telemetry.Timer
}

const (
	headerLen  = 8 // 4-byte length + 4-byte CRC32C
	filePrefix = "wal-"
	fileSuffix = ".log"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func segmentName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", filePrefix, seq, fileSuffix)
}

func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
		return 0, false
	}
	mid := name[len(filePrefix) : len(name)-len(fileSuffix)]
	seq, err := strconv.ParseUint(mid, 10, 64)
	return seq, err == nil
}

// Open opens (creating if necessary) the log in opts.Dir. Existing segments
// are retained; new appends go to a fresh segment after the highest existing
// sequence number.
func Open(opts Options) (*Log, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	segs, err := listSegments(o.Dir)
	if err != nil {
		return nil, err
	}
	l := &Log{
		opts:         o,
		segments:     segs,
		appendsC:     o.Registry.Counter("wal.appends"),
		bytesC:       o.Registry.Counter("wal.bytes"),
		syncsC:       o.Registry.Counter("wal.syncs"),
		groupSyncsC:  o.Registry.Counter("wal.group_commit_syncs"),
		groupSharedC: o.Registry.Counter("wal.group_commit_shared"),
		appendSpan:   o.Registry.Timer("put.wal_append"),
	}
	next := uint64(1)
	if n := len(segs); n > 0 {
		next = segs[n-1] + 1
	}
	if err := l.openSegmentLocked(next); err != nil {
		return nil, err
	}
	return l, nil
}

func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var segs []uint64
	for _, e := range entries {
		if seq, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

func (l *Log) openSegmentLocked(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, segmentName(seq)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 256<<10)
	l.written = 0
	l.seq = seq
	l.segments = append(l.segments, seq)
	return nil
}

// Append writes the records as one atomic group: either all records are
// durable after a successful return (under SyncOnAppend) or, after a crash,
// replay stops at the first incomplete record. Returns ErrLogFull when the
// segment cap is reached. Concurrent appenders under SyncOnAppend share
// fsyncs via group commit.
func (l *Log) Append(records ...[]byte) error {
	return l.AppendTraced(telemetry.TSpan{}, records...)
}

// AppendTraced is Append under a trace span: when parent is live, the fsync
// performed by a group-commit leader appears as a "wal.fsync" child span (a
// follower whose durability another writer's fsync covered records none).
func (l *Log) AppendTraced(parent telemetry.TSpan, records ...[]byte) error {
	sp := l.appendSpan.Start()
	err := l.append(records, parent)
	sp.End()
	if err == nil && l.appendsC != nil {
		l.appendsC.Add(int64(len(records)))
		var total int64
		for _, rec := range records {
			total += int64(headerLen + len(rec))
		}
		l.bytesC.Add(total)
	}
	return err
}

// append is the uninstrumented body of Append.
func (l *Log) append(records [][]byte, trace telemetry.TSpan) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	for _, rec := range records {
		if len(rec) > MaxRecordSize {
			l.mu.Unlock()
			return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(rec))
		}
	}
	if l.opts.MaxSegments > 0 && len(l.segments) > l.opts.MaxSegments {
		l.mu.Unlock()
		return ErrLogFull
	}
	for _, rec := range records {
		var hdr [headerLen]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(rec)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(rec, crcTable))
		if _, err := l.w.Write(hdr[:]); err != nil {
			l.mu.Unlock()
			return fmt.Errorf("wal: write header: %w", err)
		}
		if _, err := l.w.Write(rec); err != nil {
			l.mu.Unlock()
			return fmt.Errorf("wal: write record: %w", err)
		}
		l.written += int64(headerLen + len(rec))
		l.appended += int64(headerLen + len(rec))
	}
	myOffset := l.appended
	if l.written >= l.opts.SegmentSize {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
		// Rotation flushed and (policy permitting) synced everything.
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()

	if l.opts.Sync == SyncOnAppend {
		return l.groupSync(myOffset, trace)
	}
	return nil
}

// groupSync makes everything up to myOffset durable, sharing fsyncs between
// concurrent appenders: whoever holds syncMu is the leader; followers that
// arrive later find their offset already covered and return without an
// fsync of their own.
func (l *Log) groupSync(myOffset int64, trace telemetry.TSpan) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.synced.Load() >= myOffset {
		l.groupShared++
		l.groupSharedC.Inc()
		return nil // a leader's fsync already covered these records
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: flush: %w", err)
	}
	target := l.appended
	f := l.f
	l.mu.Unlock()

	// fsync without holding mu, so new appends accumulate into the next
	// cohort while the disk works. The file handle cannot be closed
	// concurrently: rotation retires handles without closing them.
	fsyncSpan := trace.Child("wal.fsync")
	err := f.Sync()
	fsyncSpan.End()
	if err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.groupSyncs++
	l.groupSyncsC.Inc()
	l.syncsC.Inc()
	if target > l.synced.Load() {
		l.synced.Store(target)
	}
	return nil
}

// GroupCommitStats reports fsyncs performed and appends whose durability
// was covered by another writer's fsync.
func (l *Log) GroupCommitStats() (syncs, shared int64) {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	return l.groupSyncs, l.groupShared
}

func (l *Log) flushLocked(sync bool) error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
		l.syncsC.Inc()
	}
	return nil
}

func (l *Log) rotateLocked() error {
	if err := l.flushLocked(l.opts.Sync != SyncNever); err != nil {
		return err
	}
	if l.opts.Sync == SyncOnAppend {
		// Everything appended so far is on disk; record it so waiting
		// group-commit followers return immediately. synced only grows, and
		// a concurrently stored smaller leader value merely causes one
		// redundant fsync later.
		if l.appended > l.synced.Load() {
			l.synced.Store(l.appended)
		}
	}
	// Retire rather than close: a group-commit leader may be fsyncing this
	// handle right now. Retired handles are closed on Truncate and Close.
	l.retired = append(l.retired, l.f)
	return l.openSegmentLocked(l.seq + 1)
}

// Sync forces buffered records to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.flushLocked(true)
}

// ActiveSegment returns the sequence number of the segment receiving
// appends. Records appended so far are covered by segments <= this value.
func (l *Log) ActiveSegment() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// SegmentCount returns the number of live segment files.
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segments)
}

// Truncate removes all segments with sequence numbers strictly below upTo.
// The engine calls it after flushing memstore contents covered by those
// segments. The active segment is never removed.
func (l *Log) Truncate(upTo uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	keep := l.segments[:0]
	for _, seq := range l.segments {
		if seq >= upTo || seq == l.seq {
			keep = append(keep, seq)
			continue
		}
		if err := os.Remove(filepath.Join(l.opts.Dir, segmentName(seq))); err != nil {
			return fmt.Errorf("wal: remove segment %d: %w", seq, err)
		}
	}
	l.segments = keep
	// Retired handles belong to rotated-out segments; with the tail
	// truncated they can be closed (removing an open file is fine on
	// POSIX, and any in-flight group-commit fsync has completed by the
	// time the flush that preceded this call returned).
	for _, f := range l.retired {
		f.Close()
	}
	l.retired = nil
	return nil
}

// Close flushes, syncs and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.flushLocked(l.opts.Sync != SyncNever); err != nil {
		l.f.Close()
		return err
	}
	for _, f := range l.retired {
		f.Close()
	}
	l.retired = nil
	return l.f.Close()
}

// Replay invokes fn for every intact record across all segments in append
// order. A torn or corrupt tail record ends replay without error (that is
// the crash-recovery contract); corruption in the middle of a segment
// returns ErrCorrupt.
func Replay(dir string, fn func(record []byte) error) error {
	return ReplayLog(dir, nil, fn)
}

// ReplayLog is Replay with a structured logger: tolerated torn-tail records
// — silently dropped by Replay — are reported as warn events so operators
// can tell a clean recovery from one that discarded an unacknowledged tail.
func ReplayLog(dir string, logger *telemetry.Logger, fn func(record []byte) error) error {
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) || errors.Is(err, os.ErrNotExist) {
			return nil
		}
		// Directory may simply not exist yet: treat as empty log.
		if _, statErr := os.Stat(dir); os.IsNotExist(statErr) {
			return nil
		}
		return err
	}
	for i, seq := range segs {
		last := i == len(segs)-1
		if err := replaySegment(filepath.Join(dir, segmentName(seq)), last, logger, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(path string, tolerateTornTail bool, logger *telemetry.Logger, fn func([]byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: open for replay: %w", err)
	}
	defer f.Close()
	tornTail := func(reason string, recs int64) {
		logger.Warn("wal replay stopped at torn tail record",
			telemetry.F("segment", filepath.Base(path)),
			telemetry.F("reason", reason),
			telemetry.F("records_replayed", recs))
	}
	r := bufio.NewReaderSize(f, 256<<10)
	var replayed int64
	for {
		var hdr [headerLen]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			if err == io.ErrUnexpectedEOF && tolerateTornTail {
				tornTail("truncated header", replayed)
				return nil
			}
			return fmt.Errorf("%w: truncated header in %s", ErrCorrupt, filepath.Base(path))
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n > MaxRecordSize {
			return fmt.Errorf("%w: record length %d in %s", ErrCorrupt, n, filepath.Base(path))
		}
		rec := make([]byte, n)
		if _, err := io.ReadFull(r, rec); err != nil {
			if (err == io.EOF || err == io.ErrUnexpectedEOF) && tolerateTornTail {
				tornTail("truncated record body", replayed)
				return nil
			}
			return fmt.Errorf("%w: truncated record in %s", ErrCorrupt, filepath.Base(path))
		}
		if crc32.Checksum(rec, crcTable) != binary.LittleEndian.Uint32(hdr[4:8]) {
			if tolerateTornTail {
				// A torn write can scramble the final record; stop replay.
				tornTail("checksum mismatch", replayed)
				return nil
			}
			return fmt.Errorf("%w: checksum mismatch in %s", ErrCorrupt, filepath.Base(path))
		}
		if err := fn(rec); err != nil {
			return err
		}
		replayed++
	}
}
