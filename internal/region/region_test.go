package region

import (
	"errors"
	"fmt"
	"testing"

	"tpcxiot/internal/lsm"
	"tpcxiot/internal/wal"
)

func testOpts() lsm.Options {
	return lsm.Options{WALSync: wal.SyncNever}
}

func openRegion(t *testing.T, start, end []byte) *Region {
	t.Helper()
	r, err := Open(Info{Table: "iot", Name: "iot-test", StartKey: start, EndKey: end},
		t.TempDir(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestContains(t *testing.T) {
	cases := []struct {
		start, end string
		key        string
		want       bool
	}{
		{"", "", "anything", true}, // unbounded
		{"b", "", "a", false},      // below start
		{"b", "", "b", true},       // at start (inclusive)
		{"", "m", "m", false},      // at end (exclusive)
		{"", "m", "lzz", true},     // just below end
		{"b", "m", "f", true},      // inside
		{"b", "m", "z", false},     // above end
	}
	for _, tc := range cases {
		var start, end []byte
		if tc.start != "" {
			start = []byte(tc.start)
		}
		if tc.end != "" {
			end = []byte(tc.end)
		}
		in := Info{StartKey: start, EndKey: end}
		if got := in.Contains([]byte(tc.key)); got != tc.want {
			t.Errorf("Contains(%q) in [%q,%q) = %v, want %v", tc.key, tc.start, tc.end, got, tc.want)
		}
	}
}

func TestBoundsEnforced(t *testing.T) {
	r := openRegion(t, []byte("b"), []byte("m"))
	if err := r.Put([]byte("z"), []byte("v")); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Put outside bounds: %v", err)
	}
	if err := r.Delete([]byte("a")); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Delete outside bounds: %v", err)
	}
	if _, _, err := r.Get([]byte("z")); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Get outside bounds: %v", err)
	}
	if err := r.Put([]byte("f"), []byte("v")); err != nil {
		t.Fatalf("Put inside bounds: %v", err)
	}
	v, ok, err := r.Get([]byte("f"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get inside bounds = %q,%v,%v", v, ok, err)
	}
}

func TestScanClipsToBounds(t *testing.T) {
	r := openRegion(t, []byte("k100"), []byte("k200"))
	for i := 100; i < 200; i++ {
		if err := r.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// A scan wider than the region must be clipped, not error.
	count := 0
	if err := r.Scan(nil, nil, func(k, v []byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("unbounded scan returned %d, want 100", count)
	}
	count = 0
	if err := r.Scan([]byte("k000"), []byte("k150"), func(k, v []byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Fatalf("clipped scan returned %d, want 50", count)
	}
}

func TestSplit(t *testing.T) {
	parent := openRegion(t, nil, nil)
	const n = 100
	for i := 0; i < n; i++ {
		if err := parent.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	split, err := parent.SplitPoint()
	if err != nil {
		t.Fatal(err)
	}
	if string(split) != "k050" {
		t.Fatalf("median split point = %q, want k050", split)
	}
	left, right, err := parent.Split(split, t.TempDir(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer left.Close()
	defer right.Close()

	countRegion := func(r *Region) int {
		count := 0
		if err := r.Scan(nil, nil, func(k, v []byte) error { count++; return nil }); err != nil {
			t.Fatal(err)
		}
		return count
	}
	if l, rr := countRegion(left), countRegion(right); l != 50 || rr != 50 {
		t.Fatalf("split children hold %d + %d entries, want 50 + 50", l, rr)
	}
	// Children's bounds partition the parent's range.
	if string(left.Info().EndKey) != string(split) || string(right.Info().StartKey) != string(split) {
		t.Fatal("split children bounds do not meet at the split key")
	}
	// Every key readable from exactly its child.
	if _, ok, _ := left.Get([]byte("k010")); !ok {
		t.Fatal("left child missing k010")
	}
	if _, ok, _ := right.Get([]byte("k070")); !ok {
		t.Fatal("right child missing k070")
	}
	if _, _, err := left.Get([]byte("k070")); !errors.Is(err, ErrOutOfRange) {
		t.Fatal("left child accepted right-half key")
	}
}

func TestSplitRejectsBadKeyAndSmallRegion(t *testing.T) {
	r := openRegion(t, []byte("b"), []byte("m"))
	if _, _, err := r.Split([]byte("z"), t.TempDir(), testOpts()); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("split outside bounds: %v", err)
	}
	if _, err := r.SplitPoint(); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("split point of empty region: %v", err)
	}
	r.Put([]byte("c"), []byte("v"))
	if _, err := r.SplitPoint(); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("split point of single-key region: %v", err)
	}
}

func TestDestroy(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(Info{Table: "iot", Name: "gone"}, dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r.Put([]byte("k"), []byte("v"))
	if err := r.Destroy(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(Info{Table: "iot", Name: "gone"}, dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, ok, _ := r2.Get([]byte("k")); ok {
		t.Fatal("destroyed region retained data")
	}
}

func TestApplyBatchBoundsCheckedBeforeApply(t *testing.T) {
	r := openRegion(t, []byte("b"), []byte("m"))
	good := []lsm.Write{
		{Key: []byte("banana"), Value: []byte("1")},
		{Key: []byte("grape"), Value: []byte("2")},
		{Key: []byte("fig"), Delete: true},
	}
	if err := r.ApplyBatch(good); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := r.Get([]byte("grape")); err != nil || !ok || string(v) != "2" {
		t.Fatalf("Get(grape) = %q,%v,%v", v, ok, err)
	}

	// One out-of-range key rejects the whole batch before anything applies.
	bad := []lsm.Write{
		{Key: []byte("cherry"), Value: []byte("in")},
		{Key: []byte("zebra"), Value: []byte("out")},
	}
	if err := r.ApplyBatch(bad); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range batch: %v", err)
	}
	if _, ok, _ := r.Get([]byte("cherry")); ok {
		t.Fatal("rejected batch partially applied")
	}
}
