// Package region implements key-range regions, the unit of distribution and
// load balancing in the gateway's storage tier.
//
// As in HBase, a table's keyspace is partitioned into contiguous key ranges.
// Each region owns the half-open interval [StartKey, EndKey) — a nil
// StartKey means "from the beginning", a nil EndKey "to the end" — and is
// backed by its own LSM store. Regions can split when they grow beyond a
// threshold; the TPCx-IoT deployment pre-splits the table on substation-key
// boundaries instead, which is the documented best practice for the
// benchmark's uniform ingest.
package region

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"

	"tpcxiot/internal/lsm"
	"tpcxiot/internal/telemetry"
)

// Sentinel errors.
var (
	ErrOutOfRange = errors.New("region: key outside region bounds")
	ErrTooSmall   = errors.New("region: not enough data to split")
)

// Info is a region's identity and bounds.
type Info struct {
	// Table is the owning table's name.
	Table string
	// Name uniquely identifies the region, e.g. "iot,0003".
	Name string
	// StartKey is the inclusive lower bound; nil means the keyspace start.
	StartKey []byte
	// EndKey is the exclusive upper bound; nil means the keyspace end.
	EndKey []byte
}

// Contains reports whether key falls inside the region's bounds.
func (in Info) Contains(key []byte) bool {
	if in.StartKey != nil && bytes.Compare(key, in.StartKey) < 0 {
		return false
	}
	if in.EndKey != nil && bytes.Compare(key, in.EndKey) >= 0 {
		return false
	}
	return true
}

// String renders the region identity with its bounds.
func (in Info) String() string {
	return fmt.Sprintf("%s[%q,%q)", in.Name, in.StartKey, in.EndKey)
}

// Region is a live key range backed by an LSM store.
type Region struct {
	info    Info
	store   *lsm.Store
	service string // trace-span service label, e.g. "node-02/iot,00001"

	// watermark is the replication sequence this replica last durably
	// applied (see replication.WatermarkObserver). Zero for a region that
	// never received replicated writes.
	watermark atomic.Uint64
}

// Open creates or reopens the region's store under dir.
func Open(info Info, dir string, storeOpts lsm.Options) (*Region, error) {
	storeOpts.Dir = filepath.Join(dir, info.Name)
	s, err := lsm.Open(storeOpts)
	if err != nil {
		return nil, fmt.Errorf("region %s: %w", info.Name, err)
	}
	return &Region{
		info:    info,
		store:   s,
		service: filepath.Base(dir) + "/" + info.Name,
	}, nil
}

// Info returns the region's identity.
func (r *Region) Info() Info { return r.info }

// NoteApplied records the replication sequence this replica has durably
// applied through — the replication worker calls it after each batch, and
// the monotonic guard makes stale notifications harmless.
func (r *Region) NoteApplied(seq uint64) {
	for {
		cur := r.watermark.Load()
		if seq <= cur || r.watermark.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// AppliedWatermark returns the replica's applied replication sequence, for
// the cluster's /storage document and replica-read gating.
func (r *Region) AppliedWatermark() uint64 { return r.watermark.Load() }

// Store exposes the backing store for engine stats and tests.
func (r *Region) Store() *lsm.Store { return r.store }

// Put writes a key-value pair, rejecting keys outside the region.
func (r *Region) Put(key, value []byte) error {
	if !r.info.Contains(key) {
		return fmt.Errorf("%w: %q not in %s", ErrOutOfRange, key, r.info)
	}
	return r.store.Put(key, value)
}

// Delete tombstones a key, rejecting keys outside the region.
func (r *Region) Delete(key []byte) error {
	if !r.info.Contains(key) {
		return fmt.Errorf("%w: %q not in %s", ErrOutOfRange, key, r.info)
	}
	return r.store.Delete(key)
}

// ApplyBatch applies a batch of writes in one engine round: a single
// bounds-check pass over every key, then the store's batched WAL group
// append and memtable apply. Rejecting before any write keeps the batch
// all-or-nothing with respect to region bounds.
func (r *Region) ApplyBatch(writes []lsm.Write) error {
	return r.ApplyBatchTraced(telemetry.TSpan{}, writes)
}

// ApplyBatchTraced is ApplyBatch under a trace span: when parent is live the
// apply appears as a "region.apply" span in the region's own service (the
// node dir plus region name, e.g. "node-02/iot,00001"), with the engine's
// WAL/memtable children beneath it.
func (r *Region) ApplyBatchTraced(parent telemetry.TSpan, writes []lsm.Write) error {
	for i := range writes {
		if !r.info.Contains(writes[i].Key) {
			return fmt.Errorf("%w: %q not in %s", ErrOutOfRange, writes[i].Key, r.info)
		}
	}
	sp := parent.ChildIn(r.service, "region.apply")
	err := r.store.ApplyBatchTraced(sp, writes)
	sp.End()
	return err
}

// Get reads a key, rejecting keys outside the region.
func (r *Region) Get(key []byte) ([]byte, bool, error) {
	if !r.info.Contains(key) {
		return nil, false, fmt.Errorf("%w: %q not in %s", ErrOutOfRange, key, r.info)
	}
	return r.store.Get(key)
}

// clampRange clips a scan range to the region bounds.
func (r *Region) clampRange(lo, hi []byte) (clo, chi []byte) {
	if r.info.StartKey != nil && (lo == nil || bytes.Compare(lo, r.info.StartKey) < 0) {
		lo = r.info.StartKey
	}
	if r.info.EndKey != nil && (hi == nil || bytes.Compare(hi, r.info.EndKey) > 0) {
		hi = r.info.EndKey
	}
	return lo, hi
}

// Scan iterates live entries in [lo, hi) clipped to the region bounds.
func (r *Region) Scan(lo, hi []byte, fn func(key, value []byte) error) error {
	lo, hi = r.clampRange(lo, hi)
	return r.store.Scan(lo, hi, fn)
}

// NewIterator opens a streaming snapshot iterator over [lo, hi) clipped to
// the region bounds. The iterator pins the store snapshot captured here —
// it survives concurrent flushes and compactions — and must be closed.
func (r *Region) NewIterator(lo, hi []byte) (*lsm.Iter, error) {
	lo, hi = r.clampRange(lo, hi)
	it, err := r.store.NewIterator(lo, hi)
	if err != nil {
		return nil, fmt.Errorf("region %s: %w", r.info.Name, err)
	}
	return it, nil
}

// SizeBytes approximates the region's unflushed data volume.
func (r *Region) SizeBytes() int64 { return r.store.MemtableBytes() }

// Stats snapshots the backing store's cumulative activity and amplification
// ledger.
func (r *Region) Stats() lsm.Stats { return r.store.Stats() }

// TableStats reports the backing store's live table files, newest first.
func (r *Region) TableStats() []lsm.TableStat { return r.store.TableStats() }

// TierStats reports the backing store's table set grouped by compaction
// time window, newest first.
func (r *Region) TierStats() []lsm.TierStat { return r.store.TierStats() }

// ScanTime iterates live entries in [lo, hi) clipped to the region bounds,
// restricted to key timestamps in [minTS, maxTS) unix ms. Table files whose
// time bounds fall outside the range are pruned without I/O.
func (r *Region) ScanTime(lo, hi []byte, minTS, maxTS int64, fn func(key, value []byte) error) error {
	lo, hi = r.clampRange(lo, hi)
	return r.store.ScanTime(lo, hi, minTS, maxTS, fn)
}

// AggregateTime folds live entries in [lo, hi) clipped to the region
// bounds, restricted to key timestamps in [minTS, maxTS), into per-series
// per-window partial aggregates evaluated inside the store — the region
// half of aggregation pushdown. The fold runs over a snapshot-pinned
// iterator with file-level key/time/Bloom pruning; see lsm.AggregateTime
// for windowing semantics.
func (r *Region) AggregateTime(lo, hi []byte, minTS, maxTS, windowMS int64, funcs lsm.AggFuncs) (lsm.AggResult, error) {
	lo, hi = r.clampRange(lo, hi)
	res, err := r.store.AggregateTime(lo, hi, minTS, maxTS, windowMS, funcs)
	if err != nil {
		return lsm.AggResult{}, fmt.Errorf("region %s: %w", r.info.Name, err)
	}
	return res, nil
}

// Health reports the backing store's liveness (stall, flush pressure).
func (r *Region) Health() lsm.Health { return r.store.Health() }

// Flush persists buffered writes to table files.
func (r *Region) Flush() error { return r.store.Flush() }

// Close shuts the region down, flushing first.
func (r *Region) Close() error { return r.store.Close() }

// Destroy closes the region and removes its files.
func (r *Region) Destroy() error { return r.store.Destroy() }

// SplitPoint scans the region and returns the median key, the split point a
// size-based split policy would choose. Returns ErrTooSmall with fewer than
// two distinct keys.
func (r *Region) SplitPoint() ([]byte, error) {
	var keys [][]byte
	if err := r.Scan(nil, nil, func(k, _ []byte) error {
		keys = append(keys, append([]byte(nil), k...))
		return nil
	}); err != nil {
		return nil, err
	}
	if len(keys) < 2 {
		return nil, ErrTooSmall
	}
	return keys[len(keys)/2], nil
}

// Split divides the region at split into two children, rewriting the data
// into fresh stores under dir (a compacting split). The parent remains open;
// the caller is responsible for retiring it after installing the children.
func (r *Region) Split(split []byte, dir string, storeOpts lsm.Options) (left, right *Region, err error) {
	if !r.info.Contains(split) {
		return nil, nil, fmt.Errorf("%w: split key %q", ErrOutOfRange, split)
	}
	leftInfo := Info{
		Table:    r.info.Table,
		Name:     r.info.Name + "-l",
		StartKey: r.info.StartKey,
		EndKey:   append([]byte(nil), split...),
	}
	rightInfo := Info{
		Table:    r.info.Table,
		Name:     r.info.Name + "-r",
		StartKey: append([]byte(nil), split...),
		EndKey:   r.info.EndKey,
	}
	left, err = Open(leftInfo, dir, storeOpts)
	if err != nil {
		return nil, nil, err
	}
	right, err = Open(rightInfo, dir, storeOpts)
	if err != nil {
		left.Destroy()
		return nil, nil, err
	}
	err = r.Scan(nil, nil, func(k, v []byte) error {
		if bytes.Compare(k, split) < 0 {
			return left.Put(k, v)
		}
		return right.Put(k, v)
	})
	if err != nil {
		left.Destroy()
		right.Destroy()
		return nil, nil, err
	}
	return left, right, nil
}
