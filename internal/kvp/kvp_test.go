package kvp

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestKeyRoundTrip(t *testing.T) {
	k := Key{Substation: "PS-0042", Sensor: "pmu-17", Timestamp: 1514764800123}
	got, err := DecodeKey(k.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != k {
		t.Fatalf("round trip: got %+v, want %+v", got, k)
	}
}

func TestKeyRoundTripProperty(t *testing.T) {
	f := func(sub, sen uint32, ts int64) bool {
		k := Key{
			Substation: identFrom("S", sub, MaxSubstationKeyLen),
			Sensor:     identFrom("x", sen, MaxSensorKeyLen),
			Timestamp:  ts,
		}
		got, err := DecodeKey(k.Encode())
		return err == nil && got == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// identFrom builds a valid identifier deterministically from a seed value.
func identFrom(prefix string, v uint32, maxLen int) string {
	const chars = "abcdefghijklmnopqrstuvwxyz0123456789-"
	var b strings.Builder
	b.WriteString(prefix)
	n := int(v%uint32(maxLen-len(prefix))) + 1
	for i := 0; i < n && b.Len() < maxLen; i++ {
		b.WriteByte(chars[(v+uint32(i)*2654435761)%uint32(len(chars))])
	}
	return b.String()
}

func TestKeyOrderPreservesTimestamp(t *testing.T) {
	f := func(a, b int64) bool {
		ka := Key{Substation: "PS", Sensor: "s1", Timestamp: a}.Encode()
		kb := Key{Substation: "PS", Sensor: "s1", Timestamp: b}.Encode()
		switch {
		case a < b:
			return Compare(ka, kb) < 0
		case a > b:
			return Compare(ka, kb) > 0
		default:
			return Compare(ka, kb) == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyOrderGroupsBySensor(t *testing.T) {
	// All readings of sensor "a" sort before any reading of sensor "b"
	// within a substation, regardless of timestamp.
	early := Key{Substation: "PS", Sensor: "a", Timestamp: 1 << 40}.Encode()
	late := Key{Substation: "PS", Sensor: "b", Timestamp: 0}.Encode()
	if Compare(early, late) >= 0 {
		t.Fatal("sensor grouping violated: a@high sorts after b@0")
	}
}

func TestKeyPrefixFreedom(t *testing.T) {
	// Substation "PS1" must not interleave with "PS10": the separator makes
	// the encoding prefix-free.
	a := Key{Substation: "PS1", Sensor: "z", Timestamp: 0}.Encode()
	b := Key{Substation: "PS10", Sensor: "a", Timestamp: 0}.Encode()
	if Compare(a, b) >= 0 {
		t.Fatal("PS1 keys must sort before PS10 keys")
	}
}

func TestKeyValidate(t *testing.T) {
	valid := Key{Substation: "PS", Sensor: "s", Timestamp: 5}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid key rejected: %v", err)
	}
	cases := []struct {
		name string
		k    Key
		want error
	}{
		{"empty substation", Key{Sensor: "s"}, ErrFieldLength},
		{"long substation", Key{Substation: strings.Repeat("x", 65), Sensor: "s"}, ErrFieldLength},
		{"empty sensor", Key{Substation: "PS"}, ErrFieldLength},
		{"long sensor", Key{Substation: "PS", Sensor: strings.Repeat("x", 65)}, ErrFieldLength},
		{"nul in substation", Key{Substation: "P\x00S", Sensor: "s"}, ErrFieldContent},
		{"nul in sensor", Key{Substation: "PS", Sensor: "s\x00"}, ErrFieldContent},
		{"negative timestamp", Key{Substation: "PS", Sensor: "s", Timestamp: -1}, ErrBadKey},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.k.Validate(); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestDecodeKeyErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("nosep"),
		[]byte("sub\x00sensoronly"),
		[]byte("sub\x00sen\x00short"),
		append([]byte("sub\x00sen\x00"), make([]byte, 9)...),
	}
	for _, b := range cases {
		if _, err := DecodeKey(b); !errors.Is(err, ErrBadKey) {
			t.Fatalf("DecodeKey(%q) error = %v, want ErrBadKey", b, err)
		}
	}
}

func TestRangeFor(t *testing.T) {
	lo, hi := RangeFor("PS", "s1", 1000, 6000)
	inside := Key{Substation: "PS", Sensor: "s1", Timestamp: 3000}.Encode()
	before := Key{Substation: "PS", Sensor: "s1", Timestamp: 999}.Encode()
	atHi := Key{Substation: "PS", Sensor: "s1", Timestamp: 6000}.Encode()
	otherSensor := Key{Substation: "PS", Sensor: "s2", Timestamp: 3000}.Encode()

	if !(Compare(lo, inside) <= 0 && Compare(inside, hi) < 0) {
		t.Fatal("inside key not within [lo,hi)")
	}
	if Compare(before, lo) >= 0 {
		t.Fatal("key before range not below lo")
	}
	if Compare(atHi, hi) < 0 {
		t.Fatal("key at hi bound must be excluded")
	}
	if Compare(otherSensor, hi) < 0 && Compare(otherSensor, lo) >= 0 {
		t.Fatal("other sensor's key leaked into range")
	}
}

func TestSensorPrefixIsKeyPrefix(t *testing.T) {
	p := SensorPrefix("PS", "s1")
	k := Key{Substation: "PS", Sensor: "s1", Timestamp: 12345}.Encode()
	if !bytes.HasPrefix(k, p) {
		t.Fatal("SensorPrefix is not a prefix of the encoded key")
	}
}

func TestValueRoundTrip(t *testing.T) {
	v := Value{Reading: "230.17", Unit: "volt", Padding: bytes.Repeat([]byte{'p'}, 100)}
	got, err := DecodeValue(v.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Reading != v.Reading || got.Unit != v.Unit || !bytes.Equal(got.Padding, v.Padding) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestValueRoundTripProperty(t *testing.T) {
	f := func(r, u uint8, padLen uint16) bool {
		v := Value{
			Reading: strings.Repeat("9", int(r%MaxSensorValueLen)+1),
			Unit:    strings.Repeat("u", int(u%(MaxSensorUnitLen-MinSensorUnitLen+1))+MinSensorUnitLen),
			Padding: bytes.Repeat([]byte{'x'}, int(padLen%1000)),
		}
		got, err := DecodeValue(v.Encode())
		return err == nil &&
			got.Reading == v.Reading &&
			got.Unit == v.Unit &&
			bytes.Equal(got.Padding, v.Padding)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueValidate(t *testing.T) {
	good := Value{Reading: "1", Unit: "volt"}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid value rejected: %v", err)
	}
	bad := []Value{
		{Reading: "", Unit: "volt"},
		{Reading: strings.Repeat("1", 21), Unit: "volt"},
		{Reading: "1", Unit: "v"},
		{Reading: "1", Unit: strings.Repeat("u", 35)},
	}
	for i, v := range bad {
		if err := v.Validate(); !errors.Is(err, ErrFieldLength) {
			t.Fatalf("case %d: got %v, want ErrFieldLength", i, err)
		}
	}
}

func TestDecodeValueErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{5},
		{10, 10, 'a'},
	}
	for _, b := range cases {
		if _, err := DecodeValue(b); !errors.Is(err, ErrBadValue) {
			t.Fatalf("DecodeValue(%v) error = %v, want ErrBadValue", b, err)
		}
	}
}

func TestPairSizeInvariant(t *testing.T) {
	k := Key{Substation: "PS-001", Sensor: "pmu-0", Timestamp: 1700000000000}
	pad, err := PaddingFor(k, "230.17", "volt")
	if err != nil {
		t.Fatal(err)
	}
	p := Pair{
		Key:   k,
		Value: Value{Reading: "230.17", Unit: "volt", Padding: make([]byte, pad)},
	}
	for i := range p.Value.Padding {
		p.Value.Padding[i] = 'q'
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Key.EncodedLen() + p.Value.EncodedLen(); got != PairSize {
		t.Fatalf("encoded pair is %d bytes, want %d", got, PairSize)
	}
}

func TestPairSizeInvariantProperty(t *testing.T) {
	f := func(sub, sen uint32, rd, un uint8) bool {
		k := Key{
			Substation: identFrom("PS", sub, MaxSubstationKeyLen),
			Sensor:     identFrom("s", sen, MaxSensorKeyLen),
			Timestamp:  1700000000000,
		}
		reading := strings.Repeat("7", int(rd%MaxSensorValueLen)+1)
		unit := strings.Repeat("u", int(un%(MaxSensorUnitLen-MinSensorUnitLen+1))+MinSensorUnitLen)
		pad, err := PaddingFor(k, reading, unit)
		if err != nil {
			return false
		}
		p := Pair{Key: k, Value: Value{Reading: reading, Unit: unit, Padding: make([]byte, pad)}}
		return p.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaddingForOverflow(t *testing.T) {
	k := Key{
		Substation: strings.Repeat("s", 64),
		Sensor:     strings.Repeat("x", 64),
		Timestamp:  0,
	}
	// 64+1+64+1+8 = 138 key bytes; cannot overflow 1024 with legal fields,
	// so force it with an oversized synthetic reading.
	if _, err := PaddingFor(k, strings.Repeat("9", 900), "volt"); !errors.Is(err, ErrBadValue) {
		t.Fatalf("expected ErrBadValue, got %v", err)
	}
}

func TestPairValidateRejectsWrongSize(t *testing.T) {
	k := Key{Substation: "PS", Sensor: "s", Timestamp: 1}
	p := Pair{Key: k, Value: Value{Reading: "1", Unit: "volt", Padding: make([]byte, 10)}}
	if err := p.Validate(); !errors.Is(err, ErrBadValue) {
		t.Fatalf("expected size violation, got %v", err)
	}
}
