// Package kvp implements the TPCx-IoT key-value-pair format.
//
// Figure 7 of the paper defines a sensor reading as a key-value pair:
//
//	key   = power-substation key (1-64 chars) |
//	        sensor key           (1-64 chars) |
//	        timestamp            (POSIX time)
//	value = sensor value         (1-20 chars) |
//	        sensor unit          (4-34 chars) |
//	        padding              (fills the kvp to one KByte)
//
// The key encoding is order-preserving: for a fixed substation and sensor,
// encoded keys sort by timestamp. Every TPCx-IoT query template is therefore
// a single range scan per 5-second interval, exactly the "random key range"
// read the paper adds to YCSB.
package kvp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
)

// PairSize is the total size in bytes of one encoded sensor reading. The
// specification fills every kvp to one KByte with random padding text.
const PairSize = 1024

// Field length limits from Figure 7.
const (
	MaxSubstationKeyLen = 64
	MaxSensorKeyLen     = 64
	MinSensorValueLen   = 1
	MaxSensorValueLen   = 20
	MinSensorUnitLen    = 4
	MaxSensorUnitLen    = 34
)

// Sentinel errors returned by the validators and decoders.
var (
	ErrBadKey       = errors.New("kvp: malformed key")
	ErrBadValue     = errors.New("kvp: malformed value")
	ErrFieldLength  = errors.New("kvp: field length out of specification range")
	ErrFieldContent = errors.New("kvp: field contains reserved separator byte")
)

// sep separates the textual key components. 0x00 never appears in substation
// or sensor keys (they are printable identifiers), so the encoding remains
// prefix-free and order-preserving.
const sep = 0x00

// Key identifies a single sensor reading: which substation, which sensor,
// and when the reading was taken. Timestamp is POSIX time in milliseconds;
// the paper's ingest rates (tens of readings per second per sensor) need
// sub-second resolution to keep keys unique.
type Key struct {
	Substation string
	Sensor     string
	Timestamp  int64
}

// Validate checks the key fields against the Figure 7 limits.
func (k Key) Validate() error {
	if err := validateIdent("substation key", k.Substation, 1, MaxSubstationKeyLen); err != nil {
		return err
	}
	if err := validateIdent("sensor key", k.Sensor, 1, MaxSensorKeyLen); err != nil {
		return err
	}
	if k.Timestamp < 0 {
		return fmt.Errorf("%w: negative timestamp %d", ErrBadKey, k.Timestamp)
	}
	return nil
}

func validateIdent(what, s string, minLen, maxLen int) error {
	if len(s) < minLen || len(s) > maxLen {
		return fmt.Errorf("%w: %s length %d outside [%d,%d]", ErrFieldLength, what, len(s), minLen, maxLen)
	}
	for i := 0; i < len(s); i++ {
		if s[i] == sep {
			return fmt.Errorf("%w: %s", ErrFieldContent, what)
		}
	}
	return nil
}

// EncodedLen returns the length of the encoded form of k.
func (k Key) EncodedLen() int {
	return len(k.Substation) + 1 + len(k.Sensor) + 1 + 8
}

// Append encodes k in order-preserving form onto dst and returns the
// extended slice. Layout: substation, 0x00, sensor, 0x00, big-endian uint64
// timestamp (offset so that negative timestamps still sort correctly).
func (k Key) Append(dst []byte) []byte {
	dst = append(dst, k.Substation...)
	dst = append(dst, sep)
	dst = append(dst, k.Sensor...)
	dst = append(dst, sep)
	var ts [8]byte
	binary.BigEndian.PutUint64(ts[:], uint64(k.Timestamp)^(1<<63))
	return append(dst, ts[:]...)
}

// Encode returns the order-preserving encoded form of k.
func (k Key) Encode() []byte {
	return k.Append(make([]byte, 0, k.EncodedLen()))
}

// DecodeKey parses an encoded key. It is the inverse of Encode.
func DecodeKey(b []byte) (Key, error) {
	i := bytes.IndexByte(b, sep)
	if i < 0 {
		return Key{}, fmt.Errorf("%w: missing substation separator", ErrBadKey)
	}
	rest := b[i+1:]
	j := bytes.IndexByte(rest, sep)
	if j < 0 {
		return Key{}, fmt.Errorf("%w: missing sensor separator", ErrBadKey)
	}
	if len(rest[j+1:]) != 8 {
		return Key{}, fmt.Errorf("%w: timestamp field is %d bytes, want 8", ErrBadKey, len(rest[j+1:]))
	}
	ts := binary.BigEndian.Uint64(rest[j+1:]) ^ (1 << 63)
	return Key{
		Substation: string(b[:i]),
		Sensor:     string(rest[:j]),
		Timestamp:  int64(ts),
	}, nil
}

// TimestampOf extracts the timestamp from an encoded key without decoding
// the string fields, so storage layers can derive per-file time bounds on
// the flush and compaction hot paths allocation-free. The second return is
// false when b does not have the kvp key shape (two separator bytes followed
// by an 8-byte timestamp).
func TimestampOf(b []byte) (int64, bool) {
	i := bytes.IndexByte(b, sep)
	if i < 0 {
		return 0, false
	}
	rest := b[i+1:]
	j := bytes.IndexByte(rest, sep)
	if j < 0 || len(rest[j+1:]) != 8 {
		return 0, false
	}
	return int64(binary.BigEndian.Uint64(rest[j+1:]) ^ (1 << 63)), true
}

// SeriesOf returns the series prefix of an encoded key — the bytes through
// the second separator, i.e. substation|0x00|sensor|0x00 — without decoding
// the string fields. All readings of one sensor share a series prefix, and
// because the key encoding is order-preserving, a key-ordered scan yields
// each series as one contiguous run. The returned slice aliases b. The
// second return is false when b does not have the kvp key shape.
func SeriesOf(b []byte) ([]byte, bool) {
	i := bytes.IndexByte(b, sep)
	if i < 0 {
		return nil, false
	}
	rest := b[i+1:]
	j := bytes.IndexByte(rest, sep)
	if j < 0 || len(rest[j+1:]) != 8 {
		return nil, false
	}
	return b[:i+1+j+1], true
}

// ReadingOf extracts the numeric sensor reading from an encoded value
// without materialising the unit or padding. It is the decode the
// aggregation fold runs per row, so it avoids the full DecodeValue
// allocation.
func ReadingOf(b []byte) (float64, error) {
	if len(b) < valueHeaderLen {
		return 0, fmt.Errorf("%w: %d bytes, want at least %d", ErrBadValue, len(b), valueHeaderLen)
	}
	rl := int(b[0])
	if valueHeaderLen+rl > len(b) {
		return 0, fmt.Errorf("%w: declared reading length %d exceeds %d bytes", ErrBadValue, rl, len(b))
	}
	f, err := strconv.ParseFloat(string(b[valueHeaderLen:valueHeaderLen+rl]), 64)
	if err != nil {
		return 0, fmt.Errorf("%w: reading is not numeric: %v", ErrBadValue, err)
	}
	return f, nil
}

// SensorPrefix returns the encoded prefix shared by all readings of one
// sensor. Appending an encoded timestamp to it yields a full key; it is the
// lower bound of a time-range scan starting at timestamp 0.
func SensorPrefix(substation, sensor string) []byte {
	b := make([]byte, 0, len(substation)+1+len(sensor)+1)
	b = append(b, substation...)
	b = append(b, sep)
	b = append(b, sensor...)
	b = append(b, sep)
	return b
}

// RangeFor returns the encoded [lo, hi) key bounds covering readings of the
// given sensor with lo <= Timestamp < hi. It is the scan the four query
// templates issue for each 5-second interval.
func RangeFor(substation, sensor string, loTS, hiTS int64) (lo, hi []byte) {
	lo = Key{Substation: substation, Sensor: sensor, Timestamp: loTS}.Encode()
	hi = Key{Substation: substation, Sensor: sensor, Timestamp: hiTS}.Encode()
	return lo, hi
}

// Compare orders two encoded keys. Because the encoding is order-preserving
// this is plain bytewise comparison; the function exists to document the
// invariant and anchor the property tests.
func Compare(a, b []byte) int { return bytes.Compare(a, b) }

// Value is the payload of a sensor reading: the reading itself rendered as
// a short decimal string, the measurement unit, and padding that fills the
// encoded pair to exactly PairSize bytes.
type Value struct {
	Reading string
	Unit    string
	Padding []byte
}

// Validate checks the value fields against the Figure 7 limits.
func (v Value) Validate() error {
	if len(v.Reading) < MinSensorValueLen || len(v.Reading) > MaxSensorValueLen {
		return fmt.Errorf("%w: sensor value length %d outside [%d,%d]",
			ErrFieldLength, len(v.Reading), MinSensorValueLen, MaxSensorValueLen)
	}
	if len(v.Unit) < MinSensorUnitLen || len(v.Unit) > MaxSensorUnitLen {
		return fmt.Errorf("%w: sensor unit length %d outside [%d,%d]",
			ErrFieldLength, len(v.Unit), MinSensorUnitLen, MaxSensorUnitLen)
	}
	return nil
}

// valueHeaderLen is the fixed overhead of an encoded value: one length byte
// for the reading and one for the unit.
const valueHeaderLen = 2

// PaddingFor returns the padding length that makes a pair with the given
// key exactly PairSize bytes, or an error if the fixed fields already
// exceed the budget.
func PaddingFor(k Key, reading, unit string) (int, error) {
	used := k.EncodedLen() + valueHeaderLen + len(reading) + len(unit)
	if used > PairSize {
		return 0, fmt.Errorf("%w: fixed fields use %d bytes, budget %d", ErrBadValue, used, PairSize)
	}
	return PairSize - used, nil
}

// EncodedLen returns the length of the encoded form of v.
func (v Value) EncodedLen() int {
	return valueHeaderLen + len(v.Reading) + len(v.Unit) + len(v.Padding)
}

// Append encodes v onto dst and returns the extended slice. Layout: reading
// length byte, unit length byte, reading, unit, padding (to end of buffer).
func (v Value) Append(dst []byte) []byte {
	dst = append(dst, byte(len(v.Reading)), byte(len(v.Unit)))
	dst = append(dst, v.Reading...)
	dst = append(dst, v.Unit...)
	return append(dst, v.Padding...)
}

// Encode returns the encoded form of v.
func (v Value) Encode() []byte {
	return v.Append(make([]byte, 0, v.EncodedLen()))
}

// DecodeValue parses an encoded value. The padding is aliased, not copied.
func DecodeValue(b []byte) (Value, error) {
	if len(b) < valueHeaderLen {
		return Value{}, fmt.Errorf("%w: %d bytes, want at least %d", ErrBadValue, len(b), valueHeaderLen)
	}
	rl, ul := int(b[0]), int(b[1])
	if valueHeaderLen+rl+ul > len(b) {
		return Value{}, fmt.Errorf("%w: declared field lengths %d+%d exceed %d bytes", ErrBadValue, rl, ul, len(b))
	}
	body := b[valueHeaderLen:]
	return Value{
		Reading: string(body[:rl]),
		Unit:    string(body[rl : rl+ul]),
		Padding: body[rl+ul:],
	}, nil
}

// Pair is one complete sensor reading.
type Pair struct {
	Key   Key
	Value Value
}

// Validate checks both halves and the total encoded size.
func (p Pair) Validate() error {
	if err := p.Key.Validate(); err != nil {
		return err
	}
	if err := p.Value.Validate(); err != nil {
		return err
	}
	if total := p.Key.EncodedLen() + p.Value.EncodedLen(); total != PairSize {
		return fmt.Errorf("%w: encoded pair is %d bytes, want %d", ErrBadValue, total, PairSize)
	}
	return nil
}
