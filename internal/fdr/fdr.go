// Package fdr produces the Full Disclosure Report (FDR) and Executive
// Summary every TPCx-IoT result must publish (Section IV-C).
//
// The FDR exists so a result can be compared and replicated: it discloses
// every customer-tunable parameter changed from its default, any special
// compilation flags, diagrams of the measured and priced configurations
// with their differences, the complete price sheet, the benchmark report,
// and the audit record.
package fdr

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"tpcxiot/internal/audit"
	"tpcxiot/internal/driver"
	"tpcxiot/internal/pricing"
)

// Sentinel errors for missing disclosures.
var (
	ErrNoSponsor = errors.New("fdr: benchmark sponsor not disclosed")
	ErrNoSystem  = errors.New("fdr: system name not disclosed")
	ErrNoResult  = errors.New("fdr: benchmark result missing")
	ErrNoPricing = errors.New("fdr: priced configuration missing")
	ErrNoDiagram = errors.New("fdr: measured configuration not described")
	ErrBadAudit  = errors.New("fdr: audit record invalid")
)

// SystemDescription captures the configuration details the FDR's diagrams
// must show: node counts, processors with cache sizes, memory, disks,
// network, and the software stack.
type SystemDescription struct {
	Nodes             int
	ProcessorsPerNode string // e.g. "2x Intel Xeon E5-2680 v4, 14c/28t, 2.4 GHz"
	L2Cache           string
	L3Cache           string
	MemoryPerNode     string
	DisksPerNode      string
	Network           string
	Software          []string
}

// Diagram renders the configuration as the text equivalent of the FDR's
// required diagram.
func (d SystemDescription) Diagram() string {
	var b strings.Builder
	fmt.Fprintf(&b, "+------------------------------------------------------------+\n")
	fmt.Fprintf(&b, "| %d node(s), each:\n", d.Nodes)
	fmt.Fprintf(&b, "|   processors: %s\n", d.ProcessorsPerNode)
	fmt.Fprintf(&b, "|   caches:     L2 %s, L3 %s\n", d.L2Cache, d.L3Cache)
	fmt.Fprintf(&b, "|   memory:     %s\n", d.MemoryPerNode)
	fmt.Fprintf(&b, "|   disks:      %s\n", d.DisksPerNode)
	fmt.Fprintf(&b, "|   network:    %s\n", d.Network)
	for i, sw := range d.Software {
		if i == 0 {
			fmt.Fprintf(&b, "|   software:   %s\n", sw)
		} else {
			fmt.Fprintf(&b, "|               %s\n", sw)
		}
	}
	fmt.Fprintf(&b, "+------------------------------------------------------------+\n")
	return b.String()
}

// complete reports whether the description carries the required fields.
func (d SystemDescription) complete() bool {
	return d.Nodes > 0 && d.ProcessorsPerNode != "" && d.MemoryPerNode != "" &&
		d.DisksPerNode != "" && d.Network != ""
}

// Report is a Full Disclosure Report.
type Report struct {
	// Sponsor is the company publishing the result.
	Sponsor string
	// SystemName names the SUT product.
	SystemName string
	// BenchmarkVersion is the kit version used.
	BenchmarkVersion string
	// Date is the publication date.
	Date time.Time
	// Tunables lists every customer-tunable parameter changed from the
	// product default, as the FDR rules require.
	Tunables map[string]string
	// CompilerFlags discloses optimisation flags of specially compiled
	// software.
	CompilerFlags []string
	// Measured and Priced describe the two configurations; Differences
	// explains any gap between them.
	Measured, Priced SystemDescription
	Differences      string
	// Result is the benchmark outcome.
	Result *driver.Result
	// Pricing is the priced configuration.
	Pricing pricing.Configuration
	// Audit documents the pre-publication audit.
	Audit audit.Record
}

// PaperTunables returns the HBase tuning the paper's evaluation discloses,
// the worked example used by the report tooling.
func PaperTunables() map[string]string {
	return map[string]string{
		"hbase.client.write.buffer":        "8589934592", // 8 GB
		"hbase.regionserver.handler.count": "224",
		"hbase.regionserver.maxlogs":       "128",
		"hbase.hstore.blockingStoreFiles":  "28",
		"hbase_regionserver_java_heap":     "32g",
		"client_java_heap":                 "8g",
	}
}

// Validate checks the FDR carries every required disclosure.
func (r *Report) Validate() error {
	switch {
	case r.Sponsor == "":
		return ErrNoSponsor
	case r.SystemName == "":
		return ErrNoSystem
	case r.Result == nil:
		return ErrNoResult
	case !r.Measured.complete():
		return ErrNoDiagram
	}
	if err := r.Pricing.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrNoPricing, err)
	}
	if err := r.Audit.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadAudit, err)
	}
	return nil
}

// ExecutiveSummary renders the condensed publication page: the three
// primary metrics plus the headline configuration.
func (r *Report) ExecutiveSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TPCx-IoT Executive Summary\n")
	fmt.Fprintf(&b, "==========================\n")
	fmt.Fprintf(&b, "Sponsor:          %s\n", r.Sponsor)
	fmt.Fprintf(&b, "System:           %s\n", r.SystemName)
	fmt.Fprintf(&b, "Report date:      %s\n", r.Date.Format(time.DateOnly))
	if r.Result != nil {
		if iotps, err := r.Result.Metric.IoTps(); err == nil {
			fmt.Fprintf(&b, "Performance:      %.2f IoTps\n", iotps)
			if cost := r.Pricing.TotalCost(); cost > 0 && iotps > 0 {
				fmt.Fprintf(&b, "Price/IoTps:      %.2f %s/IoTps\n", cost/iotps, r.Pricing.Currency)
			}
		}
		fmt.Fprintf(&b, "Result valid:     %v (compliant: %v)\n", r.Result.Valid(), r.Result.Compliant)
	}
	if a := r.Pricing.Availability(); !a.IsZero() {
		fmt.Fprintf(&b, "Availability:     %s\n", a.Format(time.DateOnly))
	}
	fmt.Fprintf(&b, "Total system cost: %.2f %s\n", r.Pricing.TotalCost(), r.Pricing.Currency)
	fmt.Fprintf(&b, "Audit:            %s\n", r.Audit.Method)
	return b.String()
}

// Render produces the complete FDR text.
func (r *Report) Render() string {
	var b strings.Builder
	b.WriteString(r.ExecutiveSummary())
	b.WriteString("\n")

	fmt.Fprintf(&b, "1. Changed customer-tunable parameters\n")
	fmt.Fprintf(&b, "--------------------------------------\n")
	if len(r.Tunables) == 0 {
		b.WriteString("(all defaults)\n")
	} else {
		keys := make([]string, 0, len(r.Tunables))
		for k := range r.Tunables {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%-40s = %s\n", k, r.Tunables[k])
		}
	}
	if len(r.CompilerFlags) > 0 {
		fmt.Fprintf(&b, "\nCompiler optimisation flags: %s\n", strings.Join(r.CompilerFlags, " "))
	}

	fmt.Fprintf(&b, "\n2. Measured configuration\n-------------------------\n%s", r.Measured.Diagram())
	fmt.Fprintf(&b, "\n3. Priced configuration\n-----------------------\n%s", r.Priced.Diagram())
	if r.Differences != "" {
		fmt.Fprintf(&b, "Differences: %s\n", r.Differences)
	} else {
		fmt.Fprintf(&b, "Differences: none — measured and priced configurations are identical\n")
	}

	fmt.Fprintf(&b, "\n4. Price sheet\n--------------\n%s", r.Pricing.String())

	if r.Result != nil {
		fmt.Fprintf(&b, "\n5. Benchmark report\n-------------------\n%s", r.Result.Report())
	}

	fmt.Fprintf(&b, "\n6. Audit\n--------\nMethod: %s\n", r.Audit.Method)
	for _, a := range r.Audit.Auditors {
		fmt.Fprintf(&b, "Auditor: %s\n", a)
	}
	if !r.Audit.Date.IsZero() {
		fmt.Fprintf(&b, "Audited: %s\n", r.Audit.Date.Format(time.DateOnly))
	}
	if len(r.Audit.Checklist) > 0 {
		b.WriteString(r.Audit.Checklist.String())
	}
	return b.String()
}

// ReferenceSystem describes the paper's 8-blade testbed, reusable by the
// examples and the report command.
func ReferenceSystem(nodes int) SystemDescription {
	return SystemDescription{
		Nodes:             nodes,
		ProcessorsPerNode: "2x Intel Xeon E5-2680 v4 @ 2.40 GHz (14 cores / 28 threads each)",
		L2Cache:           "256 KiB per core",
		L3Cache:           "35 MiB shared",
		MemoryPerNode:     "256 GB DDR4",
		DisksPerNode:      "2x Samsung 3.8 TB 2.5\" Enterprise Value 6G SATA SSD",
		Network:           "2x Cisco UCS 6324 fabric interconnect, 10 Gbps per node",
		Software: []string{
			"Linux (x86-64)",
			"HBase 1.2.0 (3-way HDFS replication)",
			"TPCx-IoT kit (YCSB-based workload driver)",
		},
	}
}
