package fdr

import (
	"errors"
	"strings"
	"testing"
	"time"

	"tpcxiot/internal/audit"
	"tpcxiot/internal/driver"
	"tpcxiot/internal/metrics"
	"tpcxiot/internal/pricing"
)

func sampleResult() *driver.Result {
	start := time.Date(2017, time.June, 1, 0, 0, 0, 0, time.UTC)
	res := &driver.Result{
		Drivers:        32,
		TotalKVPs:      400_000_000,
		SUTDescription: "8-node HBase cluster",
		Prerequisites: audit.Checklist{
			audit.ReplicationCheck(3),
		},
		Compliant: true,
	}
	res.Metric = metrics.Result{
		Runs: []metrics.Run{
			{KVPs: 400_000_000, Start: start, End: start.Add(2149 * time.Second)},
			{KVPs: 400_000_000, Start: start.Add(3 * time.Hour), End: start.Add(3*time.Hour + 2160*time.Second)},
		},
	}
	return res
}

func sampleReport() *Report {
	return &Report{
		Sponsor:          "Example Corp",
		SystemName:       "Example IoT Gateway G1",
		BenchmarkVersion: "1.0.3",
		Date:             time.Date(2017, time.July, 1, 0, 0, 0, 0, time.UTC),
		Tunables:         PaperTunables(),
		Measured:         ReferenceSystem(8),
		Priced:           ReferenceSystem(8),
		Result:           sampleResult(),
		Pricing:          pricing.ReferenceConfiguration(8),
		Audit: audit.Record{
			Method:   audit.PeerAudit,
			Auditors: []string{"member-a", "member-b", "member-c"},
			Date:     time.Date(2017, time.June, 20, 0, 0, 0, 0, time.UTC),
		},
	}
}

func TestValidateComplete(t *testing.T) {
	if err := sampleReport().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateMissingDisclosures(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
		want   error
	}{
		{"sponsor", func(r *Report) { r.Sponsor = "" }, ErrNoSponsor},
		{"system", func(r *Report) { r.SystemName = "" }, ErrNoSystem},
		{"result", func(r *Report) { r.Result = nil }, ErrNoResult},
		{"diagram", func(r *Report) { r.Measured = SystemDescription{} }, ErrNoDiagram},
		{"pricing", func(r *Report) { r.Pricing = pricing.Configuration{} }, ErrNoPricing},
		{"audit", func(r *Report) { r.Audit = audit.Record{Method: audit.PeerAudit} }, ErrBadAudit},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := sampleReport()
			tc.mutate(r)
			if err := r.Validate(); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestExecutiveSummaryContents(t *testing.T) {
	es := sampleReport().ExecutiveSummary()
	for _, want := range []string{
		"Executive Summary", "Example Corp", "IoTps", "Availability",
		"peer audit", "Total system cost",
	} {
		if !strings.Contains(es, want) {
			t.Fatalf("summary missing %q:\n%s", want, es)
		}
	}
	// Reported metric is the slower of the two equal-N runs: 400M/2160s.
	if !strings.Contains(es, "185185") {
		t.Fatalf("summary does not show the conservative IoTps:\n%s", es)
	}
}

func TestRenderFullFDR(t *testing.T) {
	out := sampleReport().Render()
	for _, want := range []string{
		"Changed customer-tunable parameters",
		"hbase.regionserver.handler.count",
		"Measured configuration",
		"Priced configuration",
		"Price sheet",
		"Benchmark report",
		"Audit",
		"member-b",
		"E5-2680 v4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("FDR missing %q", want)
		}
	}
}

func TestDiagramShowsRequiredDetails(t *testing.T) {
	d := ReferenceSystem(4).Diagram()
	for _, want := range []string{"4 node(s)", "L2", "L3", "256 GB", "SSD", "10 Gbps", "HBase"} {
		if !strings.Contains(d, want) {
			t.Fatalf("diagram missing %q:\n%s", want, d)
		}
	}
}

func TestTunablesSortedInRender(t *testing.T) {
	out := sampleReport().Render()
	first := strings.Index(out, "hbase.client.write.buffer")
	second := strings.Index(out, "hbase.regionserver.handler.count")
	if first == -1 || second == -1 || first > second {
		t.Fatal("tunables not rendered in sorted order")
	}
}

func TestRenderDefaultsWhenEmpty(t *testing.T) {
	r := sampleReport()
	r.Tunables = nil
	out := r.Render()
	if !strings.Contains(out, "(all defaults)") {
		t.Fatal("empty tunables not rendered as defaults")
	}
	if !strings.Contains(out, "identical") {
		t.Fatal("missing differences default text")
	}
}

func TestPaperTunablesMatchPaper(t *testing.T) {
	tn := PaperTunables()
	if tn["hbase.regionserver.handler.count"] != "224" {
		t.Fatal("handler count differs from the paper's tuning")
	}
	if tn["hbase.hstore.blockingStoreFiles"] != "28" {
		t.Fatal("blocking store files differs from the paper's tuning")
	}
}
