package pricing

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

var avail = time.Date(2017, time.May, 1, 0, 0, 0, 0, time.UTC)

func item(desc string, cat Category, price float64, qty int) LineItem {
	return LineItem{
		Description: desc, PartNumber: "PN-" + desc, Category: cat,
		UnitPrice: price, Quantity: qty, Available: avail,
	}
}

func TestExtendedPrice(t *testing.T) {
	li := item("srv", Server, 1000, 4)
	if li.ExtendedPrice() != 4000 {
		t.Fatalf("extended = %v", li.ExtendedPrice())
	}
	li.DiscountPct = 25
	if li.ExtendedPrice() != 3000 {
		t.Fatalf("discounted = %v", li.ExtendedPrice())
	}
}

func TestLineItemValidate(t *testing.T) {
	good := item("srv", Server, 1000, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		mutate func(*LineItem)
	}{
		{func(li *LineItem) { li.Description = "" }},
		{func(li *LineItem) { li.PartNumber = "" }},
		{func(li *LineItem) { li.UnitPrice = -1 }},
		{func(li *LineItem) { li.Quantity = 0 }},
		{func(li *LineItem) { li.DiscountPct = 100 }},
		{func(li *LineItem) { li.DiscountPct = -5 }},
		{func(li *LineItem) { li.Available = time.Time{} }},
	}
	for i, tc := range cases {
		li := good
		tc.mutate(&li)
		if err := li.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	// Excluded equipment may omit availability.
	excl := item("console", ExcludedEquipment, 100, 1)
	excl.Available = time.Time{}
	if err := excl.Validate(); err != nil {
		t.Fatalf("excluded equipment needs no availability: %v", err)
	}
}

func maintenance() LineItem {
	li := item("support", Maintenance, 500, 1)
	li.MaintenanceYears = 3
	return li
}

func TestConfigurationValidate(t *testing.T) {
	if err := (Configuration{}).Validate(); !errors.Is(err, ErrNoItems) {
		t.Fatalf("empty config: %v", err)
	}
	noMaint := Configuration{Items: []LineItem{item("srv", Server, 1000, 1)}}
	if err := noMaint.Validate(); !errors.Is(err, ErrNoMaintenance) {
		t.Fatalf("missing maintenance: %v", err)
	}
	shortMaint := maintenance()
	shortMaint.MaintenanceYears = 1
	cfg := Configuration{Items: []LineItem{item("srv", Server, 1000, 1), shortMaint}}
	if err := cfg.Validate(); !errors.Is(err, ErrNoMaintenance) {
		t.Fatalf("1-year maintenance accepted: %v", err)
	}
	cfg = Configuration{Items: []LineItem{item("srv", Server, 1000, 1), maintenance()}}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTotalCostExcludesEquipment(t *testing.T) {
	cfg := Configuration{Items: []LineItem{
		item("srv", Server, 1000, 2),
		item("console", ExcludedEquipment, 9999, 1),
		maintenance(),
	}}
	if got := cfg.TotalCost(); got != 2500 {
		t.Fatalf("TotalCost = %v, want 2500 (console excluded)", got)
	}
}

func TestAvailabilityIsLatest(t *testing.T) {
	late := item("gpu", Server, 1, 1)
	late.Available = avail.AddDate(0, 3, 0)
	excluded := item("console", ExcludedEquipment, 1, 1)
	excluded.Available = avail.AddDate(1, 0, 0) // must not count
	cfg := Configuration{Items: []LineItem{item("srv", Server, 1, 1), late, excluded, maintenance()}}
	if got := cfg.Availability(); !got.Equal(avail.AddDate(0, 3, 0)) {
		t.Fatalf("Availability = %v", got)
	}
}

func TestSubstitutionRules(t *testing.T) {
	oldCPU := item("cpu-a", Server, 100, 1)
	newCPU := item("cpu-b", Server, 90, 1)

	// Identical part numbers: a correction, always allowed.
	same := Substitution{Old: oldCPU, New: oldCPU, PerfImpactPct: 50}
	if err := same.Validate(); err != nil {
		t.Fatalf("correction rejected: %v", err)
	}
	// Same category, small impact: allowed.
	ok := Substitution{Old: oldCPU, New: newCPU, PerfImpactPct: 1.5}
	if err := ok.Validate(); err != nil {
		t.Fatalf("comparable substitution rejected: %v", err)
	}
	// Too much impact: rejected.
	bad := Substitution{Old: oldCPU, New: newCPU, PerfImpactPct: 2.5}
	if err := bad.Validate(); !errors.Is(err, ErrNotSubstitutable) {
		t.Fatalf("2.5%% impact accepted: %v", err)
	}
	// Cross-category: rejected.
	cross := Substitution{Old: oldCPU, New: item("switch", Network, 50, 1)}
	if err := cross.Validate(); !errors.Is(err, ErrNotSubstitutable) {
		t.Fatalf("cross-category accepted: %v", err)
	}
	// Durable media: freely substitutable regardless of impact.
	disks := Substitution{
		Old: item("ssd-a", Storage, 10, 1), New: item("ssd-b", Storage, 12, 1),
		PerfImpactPct: 5,
	}
	if err := disks.Validate(); err != nil {
		t.Fatalf("durable-media substitution rejected: %v", err)
	}
}

func TestReferenceConfiguration(t *testing.T) {
	for _, nodes := range []int{2, 4, 8} {
		cfg := ReferenceConfiguration(nodes)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%d-node reference invalid: %v", nodes, err)
		}
		if cfg.TotalCost() <= 0 {
			t.Fatalf("%d-node reference has zero cost", nodes)
		}
		if cfg.Availability().IsZero() {
			t.Fatal("reference has no availability date")
		}
	}
	// Cost must grow with node count.
	if ReferenceConfiguration(8).TotalCost() <= ReferenceConfiguration(2).TotalCost() {
		t.Fatal("8-node SUT not costlier than 2-node")
	}
	// SSD count scales 2 per node.
	cfg := ReferenceConfiguration(8)
	found := false
	for _, li := range cfg.Items {
		if li.Category == Storage && li.Quantity == 16 {
			found = true
		}
	}
	if !found {
		t.Fatal("8-node reference should price 16 SSDs")
	}
}

func TestPriceSheetRendering(t *testing.T) {
	cfg := ReferenceConfiguration(4)
	s := cfg.String()
	for _, want := range []string{"DESCRIPTION", "TOTAL", "USD", "UCSB-B200-M4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("price sheet missing %q:\n%s", want, s)
		}
	}
}

func TestCategoryString(t *testing.T) {
	names := map[Category]string{
		Server: "server", Storage: "storage", Network: "network",
		Software: "software", Maintenance: "maintenance", ExcludedEquipment: "excluded",
	}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("%d.String() = %q", c, c.String())
		}
	}
	if Category(42).String() == "" {
		t.Fatal("unknown category should render")
	}
}

func TestCostOfOwnershipMatchesHandComputation(t *testing.T) {
	cfg := ReferenceConfiguration(8)
	var want float64
	for _, li := range cfg.Items {
		if li.Category == ExcludedEquipment {
			continue
		}
		want += li.UnitPrice * float64(li.Quantity)
	}
	if math.Abs(cfg.TotalCost()-want) > 1e-9 {
		t.Fatalf("TotalCost = %v, want %v", cfg.TotalCost(), want)
	}
}
